# NEVERMIND reproduction — standard workflows.

GO ?= go

.PHONY: all check build vet test race bench experiments examples fuzz clean

all: build vet test

# The full gate: compile, static checks, tests, and the race detector over
# the parallel hot paths.
check: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detect the worker-pool paths: the parallel package itself plus the
# cross-worker determinism tests in ml and core.
race:
	$(GO) test -race ./internal/parallel/ ./internal/ml/
	$(GO) test -race -run 'AcrossWorkers' ./internal/core/

# One benchmark per paper table/figure plus ablations; writes the artifacts
# the repository documents.
bench:
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

# Regenerate every table and figure at full scale (~2 min on one core).
experiments:
	$(GO) run ./cmd/experiments -exp all

# Run every example end to end.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/troubleshoot
	$(GO) run ./examples/outagewatch
	$(GO) run ./examples/capacity
	$(GO) run ./examples/weeklyloop

# Short fuzzing pass over the CSV importers.
fuzz:
	$(GO) test ./internal/data/ -fuzz FuzzReadMeasurementsCSV -fuzztime 20s
	$(GO) test ./internal/data/ -fuzz FuzzReadTicketsCSV -fuzztime 20s

clean:
	rm -f test_output.txt bench_output.txt dsl-year.gob.gz

# NEVERMIND reproduction — standard workflows.

GO ?= go

.PHONY: all check build vet test test-repeat race bench bench-json bench-diff bench-smoke serve-smoke fleet-smoke restart-smoke replica-smoke chaos-smoke chaos-soak drift-smoke experiments examples fuzz fuzz-smoke clean

all: build vet test

# The full gate: compile, static checks, tests (plus a repeat-count pass
# over the serving subsystem to catch leaked process-global state), the
# race detector over the parallel hot paths, a one-iteration pass over
# every benchmark so the bench code itself cannot rot, the perf-regression
# diff against the committed baseline, end-to-end smokes of the daemon, of
# the sharded fleet, and of a kill -9/restart over the write-ahead log, a
# short fuzz pass over the API decoders, the chaos smoke (daemon under
# injected faults), and the drift smoke (the monitor/retrain/promote loop
# end to end over HTTP).
check: build vet test test-repeat race bench-smoke bench-diff serve-smoke fleet-smoke restart-smoke replica-smoke fuzz-smoke chaos-smoke drift-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Run the serving tests twice in one binary: any state a test leaks into a
# process-global (the ml score-observer hook, registry bindings, caches)
# poisons the second pass. -count=2 also defeats test result caching.
test-repeat:
	$(GO) test -count=2 ./internal/serve/

# Race-detect the worker-pool paths: the parallel package itself plus the
# cross-worker determinism, compiled-scoring, and encode-cache tests in the
# packages that share state across goroutines, and the serving subsystem
# whose store is hammered by concurrent ingest and score requests.
race:
	$(GO) test -race ./internal/parallel/ ./internal/ml/ ./internal/obs/
	$(GO) test -race -run 'AcrossWorkers|Compiled|Cache' ./internal/core/ ./internal/eval/
	$(GO) test -race -timeout 30m ./internal/serve/ ./internal/chaos/ ./internal/replica/ ./internal/drift/

# One benchmark per paper table/figure plus ablations; writes the artifacts
# the repository documents.
bench:
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

# Machine-readable numbers for the ML and serving hot paths (reference vs
# compiled scoring, training, transform, the serve endpoint, the
# full-vs-delta snapshot rebuild, the fleet gateway's scatter-gather
# score/rank paths, the durability axis: ingest with the WAL off vs on
# plus cold-restart recovery, the replication axis: follower catch-up
# over HTTP plus gateway scoring through a replica, and the drift loop:
# the per-week monitor fold plus one week of challenger shadow scoring);
# BENCH_ml.json is committed so perf diffs show up in review.
bench-json:
	$(GO) test -run '^$$' -bench 'ScoreAllWorkers|ScoreCompiled|CompileBStump|TrainBStump|Transform|FeatureScores|ServeScore|Snapshot|FleetScore|FleetRank|IngestWAL|Recovery|ReplicaCatchup|GatewayScoreReplicas|DriftMonitors|ShadowScore' -benchmem . 2>&1 | tee bench_output.txt | $(GO) run ./cmd/benchjson > BENCH_ml.json

# Perf gate: rerun the compiled-scoring and serve-score benchmarks and fail
# on a >25% ns/op regression — or an allocs/op regression past the same
# margin plus two allocs of slack — against the committed BENCH_ml.json.
bench-diff:
	./scripts/bench_diff.sh

# One iteration of every benchmark — a compile-and-run smoke gate, not a
# measurement.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# End-to-end smoke of the nevermindd daemon: boot it on a random port,
# ingest a batch over HTTP, assert /healthz and /v1/rank answer, and shut
# it down cleanly.
serve-smoke:
	./scripts/serve_smoke.sh

# End-to-end smoke of the sharded fleet: a gateway over two nevermindd
# shards, fed the same batch as a bare single daemon, must answer /v1/rank
# and /v1/score identically (modulo the summed version clock) and drain
# cleanly on SIGTERM.
fleet-smoke:
	./scripts/fleet_smoke.sh

# Durability smoke: a daemon with the WAL on is SIGKILLed mid-week and
# restarted over the same directory; it must recover every acked batch
# (-wal.fsync=always) and answer /v1/rank and /v1/score byte-identically to
# a never-killed reference, and `nevermindwal verify` must prove the
# directory recovers offline.
restart-smoke:
	./scripts/restart_smoke.sh

# Replication smoke: a leader, a -replica.of follower, and a gateway routing
# reads to the replica over real HTTP. The replica bootstraps mid-stream and
# answers byte-identically to the leader; SIGKILLing it must leave gateway
# reads answering via the leader, and a restart must converge again.
replica-smoke:
	./scripts/replica_smoke.sh

# Chaos smoke: the daemon boots with every fault mode armed and must ride
# the storm out — weeks complete exactly once, /healthz never fails, and
# SIGTERM still drains. (The in-process equivalent, TestChaosSoak, runs in
# plain `make test`.)
chaos-smoke:
	./scripts/chaos_soak.sh --smoke

# Drift smoke: the daemon boots with a firmware drift scenario and the
# drift loop armed; the monitors must trip on the scenario, retrain and
# shadow-score a challenger, and surface the loop over /v1/drift,
# /healthz and /metrics. (The in-process equivalent, TestDriftSoak, runs
# in plain `make test`.)
drift-smoke:
	./scripts/drift_smoke.sh

# Full chaos soak: the long-mode Go soak (five fault seeds over the whole
# simulated year, convergence to a clean replay asserted bit for bit)
# plus a 12-week daemon-level storm.
chaos-soak:
	./scripts/chaos_soak.sh

# Regenerate every table and figure at full scale (~2 min on one core).
experiments:
	$(GO) run ./cmd/experiments -exp all

# Run every example end to end.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/troubleshoot
	$(GO) run ./examples/outagewatch
	$(GO) run ./examples/capacity
	$(GO) run ./examples/weeklyloop

# Short fuzzing pass over the CSV importers.
fuzz:
	$(GO) test ./internal/data/ -fuzz FuzzReadMeasurementsCSV -fuzztime 20s
	$(GO) test ./internal/data/ -fuzz FuzzReadTicketsCSV -fuzztime 20s

# Fuzz the serving API's decoders — the ingest body decoder and the rank
# query parser — plus the WAL segment decoder, the replication stream
# decoder (arbitrary bytes must decode consistently and never panic or
# corrupt a store), and the drift loop's two parsers: /v1/drift query
# params and the -drift.thresholds spec. Seed corpora for all six also
# run (instantly) in plain `make test`.
fuzz-smoke:
	$(GO) test ./internal/serve/ -fuzz FuzzIngestJSON -fuzztime 30s -run '^$$'
	$(GO) test ./internal/serve/ -fuzz FuzzRankParams -fuzztime 30s -run '^$$'
	$(GO) test ./internal/wal/ -fuzz FuzzWALDecode -fuzztime 20s -run '^$$'
	$(GO) test ./internal/replica/ -fuzz FuzzReplStream -fuzztime 20s -run '^$$'
	$(GO) test ./internal/drift/ -fuzz FuzzDriftParams -fuzztime 20s -run '^$$'
	$(GO) test ./internal/drift/ -fuzz FuzzThresholds -fuzztime 20s -run '^$$'

clean:
	rm -f test_output.txt bench_output.txt dsl-year.gob.gz

# NEVERMIND reproduction — standard workflows.

GO ?= go

.PHONY: all build vet test bench experiments examples fuzz clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# One benchmark per paper table/figure plus ablations; writes the artifacts
# the repository documents.
bench:
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

# Regenerate every table and figure at full scale (~2 min on one core).
experiments:
	$(GO) run ./cmd/experiments -exp all

# Run every example end to end.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/troubleshoot
	$(GO) run ./examples/outagewatch
	$(GO) run ./examples/capacity
	$(GO) run ./examples/weeklyloop

# Short fuzzing pass over the CSV importers.
fuzz:
	$(GO) test ./internal/data/ -fuzz FuzzReadMeasurementsCSV -fuzztime 20s
	$(GO) test ./internal/data/ -fuzz FuzzReadTicketsCSV -fuzztime 20s

clean:
	rm -f test_output.txt bench_output.txt dsl-year.gob.gz

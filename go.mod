module nevermind

go 1.24

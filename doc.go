// Package nevermind reproduces "NEVERMIND, the problem is already fixed:
// proactively detecting and troubleshooting customer DSL problems" (Jin,
// Duffield, Gerber, Haffner, Sen, Zhang — ACM CoNEXT 2010) as a Go library
// on a synthetic DSL-network substrate.
//
// The implementation lives under internal/: the access-network and
// physical-layer simulator (internal/dsl), the fault and disposition model
// (internal/faults), the operational-year simulator (internal/sim), the
// Table 3 feature encoders (internal/features), the from-scratch ML
// substrate — confidence-rated AdaBoost over decision stumps, logistic
// regression, PCA, ranking metrics, feature selection (internal/ml) — the
// NEVERMIND ticket predictor and trouble locator (internal/core), and the
// experiment harness that regenerates every table and figure of the paper's
// evaluation (internal/eval).
//
// Entry points: cmd/nevermind (weekly operator report), cmd/experiments
// (regenerate the paper's tables and figures), cmd/dslsim (dataset
// generator), and the runnable walkthroughs under examples/.
//
// The benchmarks in this package (bench_test.go) regenerate each paper
// artifact at reduced scale and report its headline number as a custom
// benchmark metric.
package nevermind

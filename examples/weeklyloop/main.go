// Weeklyloop: the production cadence of NEVERMIND.
//
// In deployment the system retrains as labels mature and re-ranks every
// Saturday (§3.3). This example runs that loop over the last quarter of the
// year: each week it trains on the trailing window whose labels are fully
// observed (a ranking at week W may only learn from examples at weeks
// ≤ W−4, whose four-week label horizon has closed), ranks the population,
// and scores the budgeted predictions against the tickets that actually
// arrived. The output is the drift view an operator would watch.
//
// Run with:
//
//	go run ./examples/weeklyloop
package main

import (
	"fmt"
	"log"

	"nevermind/internal/core"
	"nevermind/internal/data"
	"nevermind/internal/features"
	"nevermind/internal/ml"
	"nevermind/internal/sim"
)

func main() {
	res, err := sim.Run(sim.DefaultConfig(8000, 33))
	if err != nil {
		log.Fatal(err)
	}
	ds := res.Dataset
	ix := data.NewTicketIndex(ds)

	fmt.Printf("weekly operational loop over %d lines\n\n", ds.NumLines)
	fmt.Println("week  date        trained-on  budget  accuracy  tickets-caught")

	var totalHits, totalBudget int
	for week := 40; week <= 47; week++ {
		// Trailing training window with closed labels.
		hi := week - 5
		lo := hi - 7
		cfg := core.DefaultPredictorConfig(ds.NumLines, uint64(week))
		cfg.Rounds = 120 // weekly retrain favours wall-clock
		cfg.MaxSelectExamples = 20000
		pred, err := core.TrainPredictor(ds, features.WeekRange(lo, hi), cfg)
		if err != nil {
			log.Fatal(err)
		}
		ex := features.ExamplesForWeeks(ds, []int{week})
		scores, err := pred.ScoreExamples(ds, ex)
		if err != nil {
			log.Fatal(err)
		}
		y := features.Labels(ix, ex, cfg.WindowDays)
		acc := ml.PrecisionAtK(scores, y, cfg.BudgetN)
		hits := int(acc*float64(cfg.BudgetN) + 0.5)
		totalHits += hits
		totalBudget += cfg.BudgetN
		fmt.Printf("%-5d %s  w%02d-w%02d     %-7d %-9s %d\n",
			week, data.DateString(data.SaturdayOf(week)), lo, hi,
			cfg.BudgetN, fmt.Sprintf("%.1f%%", 100*acc), hits)
	}
	fmt.Printf("\nquarter total: %d of %d budgeted dispatches were real future tickets (%.1f%%)\n",
		totalHits, totalBudget, 100*float64(totalHits)/float64(totalBudget))
	fmt.Println("the paper's deployment predicts >8K true tickets weekly at this operating point")
}

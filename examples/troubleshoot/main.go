// Troubleshoot: the §6 trouble locator on a real dispatch.
//
// A field technician heading to a customer's home historically tests
// locations in experience order — the prior frequency of each disposition.
// This example trains the flat and combined inference models on the first
// nine months of dispatches, picks a few real dispatches from the rest of
// the year, and shows the ranked list each model hands the technician and
// how many tests each saves.
//
// Run with:
//
//	go run ./examples/troubleshoot
package main

import (
	"fmt"
	"log"

	"nevermind/internal/core"
	"nevermind/internal/data"
	"nevermind/internal/faults"
	"nevermind/internal/sim"
)

func main() {
	res, err := sim.Run(sim.DefaultConfig(6000, 21))
	if err != nil {
		log.Fatal(err)
	}
	ds := res.Dataset

	// Train on dispatches through September, evaluate on October+.
	split := data.DayOfDate(10, 1)
	trainCases := core.CasesFromNotes(ds, data.FirstSaturday, split-1)
	testCases := core.CasesFromNotes(ds, split, data.DaysInYear-1)
	fmt.Printf("training the locator on %d dispatches, demonstrating on %d\n\n",
		len(trainCases), len(testCases))

	cfg := core.DefaultLocatorConfig(3)
	loc, err := core.TrainLocator(ds, trainCases, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Walk a handful of dispatches and compare the three rankings.
	models := []core.LocatorModel{core.ModelBasic, core.ModelFlat, core.ModelCombined}
	shown := 0
	var totals [3]int
	for start := 0; start < len(testCases) && shown < 4; start++ {
		c := testCases[start]
		ranks := make([]int, len(models))
		ok := true
		for mi, m := range models {
			r, err := loc.RankOfTruth(ds, []core.DispatchCase{c}, m)
			if err != nil {
				log.Fatal(err)
			}
			if r[0] <= 0 {
				ok = false
				break
			}
			ranks[mi] = r[0]
		}
		if !ok || ranks[0] < 8 {
			continue // show the dispatches where experience ordering struggles
		}
		shown++
		fmt.Printf("dispatch to line %d (%s): true cause %q at %v\n",
			c.Line, data.DateString(data.SaturdayOf(c.Week)),
			faults.Catalog[c.Disp].Name, faults.Catalog[c.Disp].Loc)
		for mi, m := range models {
			fmt.Printf("  %-9s model: technician finds it at test #%d\n", m, ranks[mi])
			totals[mi] += ranks[mi]
		}
		fmt.Println()
	}
	if shown > 0 {
		fmt.Printf("across these dispatches: basic %d tests, flat %d, combined %d\n",
			totals[0], totals[1], totals[2])
	}

	// And the aggregate picture over every test dispatch.
	fmt.Println("\naggregate over all test dispatches:")
	for _, m := range models {
		ranks, err := loc.RankOfTruth(ds, testCases, m)
		if err != nil {
			log.Fatal(err)
		}
		sum, n := 0, 0
		for _, r := range ranks {
			if r > 0 {
				sum += r
				n++
			}
		}
		fmt.Printf("  %-9s mean tests to locate the problem: %.1f\n", m, float64(sum)/float64(n))
	}

	// §6.1 also wants the ordering to respect how long each test takes and
	// how far apart the locations are — the improvements the paper defers.
	// Price both orderings with the default cost model.
	sample := testCases
	if len(sample) > 150 {
		sample = sample[:150]
	}
	post, err := loc.Posteriors(ds, sample, core.ModelCombined)
	if err != nil {
		log.Fatal(err)
	}
	cm := core.DefaultCostModel()
	var minutesByProb, minutesAware float64
	for i := range sample {
		byP := core.OrderByPosterior(loc.Dispositions, post[i])
		eP, err := cm.ExpectedMinutes(loc.Dispositions, post[i], byP, faults.HN)
		if err != nil {
			log.Fatal(err)
		}
		aware, err := cm.Order(loc.Dispositions, post[i], faults.HN)
		if err != nil {
			log.Fatal(err)
		}
		eA, err := cm.ExpectedMinutes(loc.Dispositions, post[i], aware, faults.HN)
		if err != nil {
			log.Fatal(err)
		}
		minutesByProb += eP
		minutesAware += eA
	}
	n := float64(len(sample))
	fmt.Printf("\ncost-aware ordering (§6.1 extension) over %d dispatches:\n", len(sample))
	fmt.Printf("  by posterior only:       %.0f expected minutes per dispatch\n", minutesByProb/n)
	fmt.Printf("  cost- and travel-aware:  %.0f expected minutes per dispatch (%.0f%% saved)\n",
		minutesAware/n, 100*(1-minutesAware/minutesByProb))
}

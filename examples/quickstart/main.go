// Quickstart: the smallest end-to-end NEVERMIND run.
//
// It simulates a small DSL network for a year, trains the ticket predictor
// on late-summer weeks, ranks every line at Halloween week (the paper's test
// split), and prints the lines the operator should proactively fix — before
// the customers call.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"nevermind/internal/core"
	"nevermind/internal/data"
	"nevermind/internal/features"
	"nevermind/internal/sim"
)

func main() {
	// One simulated operational year: weekly line tests, customer tickets,
	// dispatches, outages.
	res, err := sim.Run(sim.DefaultConfig(4000, 7))
	if err != nil {
		log.Fatal(err)
	}
	ds := res.Dataset
	fmt.Printf("simulated %d lines: %d tickets, %d dispatches\n",
		ds.NumLines, len(ds.Tickets), len(ds.Notes))

	// Train the §4 pipeline: encode Table 3 features, select them with
	// top-N average precision, boost decision stumps, calibrate.
	cfg := core.DefaultPredictorConfig(ds.NumLines, 7)
	cfg.Rounds = 120 // quick demo; the paper uses 800
	pred, err := core.TrainPredictor(ds, features.WeekRange(30, 38), cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("predictor uses %d selected features; the first learned rule is:\n  %s\n",
		len(pred.SelectedCols), pred.Model.Explain(0))

	// Saturday run: rank all lines, submit the budgeted top N to dispatch.
	week := 43
	top, err := pred.TopN(ds, week)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntop predicted tickets for %s:\n", data.DateString(data.SaturdayOf(week)))
	for i, p := range top {
		if i >= 10 {
			fmt.Printf("  ... and %d more within the ATDS budget\n", len(top)-i)
			break
		}
		fmt.Printf("  line %-5d P(ticket within 4 weeks) = %.2f\n", p.Line, p.Probability)
	}

	// Score the predictions against what actually happened.
	ix := data.NewTicketIndex(ds)
	day := data.SaturdayOf(week)
	hits := 0
	for _, p := range top {
		if ix.Within(p.Line, day, 28) {
			hits++
		}
	}
	fmt.Printf("\n%d of %d predictions filed a real ticket within 4 weeks (%.0f%%)\n",
		hits, len(top), 100*float64(hits)/float64(len(top)))
}

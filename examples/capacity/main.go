// Capacity: operator capacity planning for proactive dispatch.
//
// NEVERMIND's budget N is set by how many extra diagnoses ATDS can absorb
// after customer-reported tickets (§3.2: a few thousand per week in the
// paper's network). This example sweeps the budget and reports, per budget:
// the accuracy, the number of real future tickets eliminated, and the wasted
// dispatches — the curve an operator reads to pick N, and the reason the
// top-N AP selection method optimises exactly the region in use.
//
// Run with:
//
//	go run ./examples/capacity
package main

import (
	"fmt"
	"log"

	"nevermind/internal/core"
	"nevermind/internal/data"
	"nevermind/internal/features"
	"nevermind/internal/sim"
)

func main() {
	res, err := sim.Run(sim.DefaultConfig(10000, 11))
	if err != nil {
		log.Fatal(err)
	}
	ds := res.Dataset

	cfg := core.DefaultPredictorConfig(ds.NumLines, 11)
	cfg.Rounds = 150
	pred, err := core.TrainPredictor(ds, features.WeekRange(30, 38), cfg)
	if err != nil {
		log.Fatal(err)
	}

	week := 43
	ranked, err := pred.Rank(ds, week)
	if err != nil {
		log.Fatal(err)
	}
	day := data.SaturdayOf(week)
	ix := data.NewTicketIndex(ds)

	// Cumulative hits down the ranking.
	hits := make([]int, len(ranked)+1)
	for i, p := range ranked {
		hits[i+1] = hits[i]
		if ix.Within(p.Line, day, 28) {
			hits[i+1]++
		}
	}

	fmt.Printf("capacity planning for %s (population %d)\n\n", data.DateString(day), ds.NumLines)
	fmt.Println("budget N  accuracy  tickets eliminated  wasted dispatches")
	for _, n := range []int{50, 100, 200, 400, 800, 1600, 3200} {
		if n > len(ranked) {
			break
		}
		h := hits[n]
		fmt.Printf("%-9d %-9s %-19d %d\n", n, fmt.Sprintf("%.1f%%", 100*float64(h)/float64(n)), h, n-h)
	}

	// The knee of the curve: where the marginal accuracy of another 100
	// dispatches drops below half the budget-point accuracy.
	budget := cfg.BudgetN
	budgetAcc := float64(hits[budget]) / float64(budget)
	knee := len(ranked)
	for n := 100; n+100 <= len(ranked); n += 100 {
		marginal := float64(hits[n+100]-hits[n]) / 100
		if marginal < budgetAcc/2 {
			knee = n
			break
		}
	}
	fmt.Printf("\ndefault budget %d gives %.1f%% accuracy; marginal value halves around N ≈ %d\n",
		budget, 100*budgetAcc, knee)
	fmt.Println("the top-N AP feature selection (§4.3) optimises precisely the region inside the budget")
}

// Outagewatch: DSLAM outage early warning from prediction clustering.
//
// §5.2 of the paper observes a strong positive correlation between the
// number of top-N predicted customer-edge problems at a DSLAM and future
// outage events there — a failing DSLAM degrades many of its lines before it
// dies, so per-line predictions pile up under it. This example quantifies
// the correlation with logistic regression (the paper's Table 5, rows 2-3)
// and flags the DSLAMs an operator should send one truck to before the
// outage happens.
//
// Run with:
//
//	go run ./examples/outagewatch
package main

import (
	"fmt"
	"log"
	"sort"

	"nevermind/internal/core"
	"nevermind/internal/data"
	"nevermind/internal/features"
	"nevermind/internal/ml"
	"nevermind/internal/sim"
)

func main() {
	res, err := sim.Run(sim.DefaultConfig(12000, 42))
	if err != nil {
		log.Fatal(err)
	}
	ds := res.Dataset

	cfg := core.DefaultPredictorConfig(ds.NumLines, 42)
	cfg.Rounds = 150
	pred, err := core.TrainPredictor(ds, features.WeekRange(30, 38), cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Count budgeted predictions per DSLAM over the test weeks and pair
	// each (DSLAM, week) with whether an outage followed within 2 weeks.
	weeks := []int{43, 44, 45, 46}
	var x [][]float64
	var y []bool
	type obs struct {
		dslam, week, preds int
		outage             bool
	}
	var observations []obs
	for _, week := range weeks {
		top, err := pred.TopN(ds, week)
		if err != nil {
			log.Fatal(err)
		}
		counts := make([]int, ds.NumDSLAMs)
		for _, p := range top {
			counts[ds.DSLAMOf[p.Line]]++
		}
		day := data.SaturdayOf(week)
		for d := 0; d < ds.NumDSLAMs; d++ {
			out := ds.OutageAt(d, day, day+14)
			x = append(x, []float64{float64(counts[d])})
			y = append(y, out)
			observations = append(observations, obs{d, week, counts[d], out})
		}
	}

	fit, err := ml.LogisticRegression(x, y, 50)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("logit(outage within 2 weeks) ~ #predictions at DSLAM\n")
	fmt.Printf("  coefficient %.4f (p = %.2g)\n\n", fit.Coef[1], fit.PValue[1])
	if fit.Coef[1] <= 0 {
		fmt.Println("no positive correlation in this run — unusual; try another seed")
		return
	}

	// Alert on the most clustered (DSLAM, week) observations.
	sort.Slice(observations, func(a, b int) bool { return observations[a].preds > observations[b].preds })
	fmt.Println("highest prediction clusters (the early-warning queue):")
	fmt.Println("  DSLAM  week  predictions  P(outage)  outage followed?")
	for i, o := range observations {
		if i >= 8 {
			break
		}
		fmt.Printf("  %-6d %-5d %-12d %.2f       %v\n",
			o.dslam, o.week, o.preds, fit.Predict([]float64{float64(o.preds)}), o.outage)
	}
}

// Command nevermindd is the NEVERMIND serving daemon: the long-running
// counterpart to the one-shot nevermind report. It keeps the latest line-test
// history for the population in a sharded in-memory store, serves scoring,
// ranking and trouble-location over a JSON HTTP API, and runs the weekly
// §3.2 pipeline loop — ingest the Saturday tests, rank the population, push
// the budgeted TopN into the ATDS dispatch queue — on a configurable tick.
//
// Models load from files at startup and hot-reload on SIGHUP or
// POST /v1/reload without dropping requests; SIGINT/SIGTERM drain in-flight
// requests before exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"nevermind/internal/chaos"
	"nevermind/internal/core"
	"nevermind/internal/data"
	"nevermind/internal/drift"
	"nevermind/internal/features"
	"nevermind/internal/fleet"
	"nevermind/internal/ml"
	"nevermind/internal/replica"
	"nevermind/internal/serve"
	"nevermind/internal/sim"
	"nevermind/internal/wal"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
		lines     = flag.Int("lines", 20000, "subscriber population to simulate (ignored with -data)")
		seed      = flag.Uint64("seed", 42, "simulation and training seed")
		dataPath  = flag.String("data", "", "load a dataset written by dslsim instead of simulating")
		model     = flag.String("model", "", "load a trained predictor instead of training at startup")
		locator   = flag.String("locator", "", "load a trained trouble locator")
		trainLoc  = flag.Bool("train-locator", false, "train a locator at startup when -locator is unset")
		rounds    = flag.Int("rounds", 120, "boosting rounds when training at startup")
		budget    = flag.Int("budget", 0, "ATDS capacity for predicted tickets (default population/50)")
		workers   = flag.Int("workers", 0, "worker pool size for scoring (0 = all CPUs)")
		shards    = flag.Int("shards", 0, "line-state store shards (0 = GOMAXPROCS, rounded up to a power of two)")
		cacheEnt  = flag.Int("cache", 0, "encode/bin cache entries (0 = library default)")
		pipeline  = flag.Bool("pipeline", true, "run the weekly pipeline loop over the simulated feed")
		scenario  = flag.String("scenario", "", "drift scenario pack over the simulated feed: kind[:week=N,weeks=N,frac=F,mag=F,seed=N]; kinds firmware|weather|aging|outage")
		startWeek = flag.Int("start-week", 40, "first week the pipeline ingests and ranks")
		endWeek   = flag.Int("end-week", 51, "last week the pipeline ingests and ranks")
		tick      = flag.Duration("tick", 0, "wall-clock interval per simulated week (0 = back to back)")
		drain     = flag.Duration("drain", 10*time.Second, "graceful-shutdown budget for in-flight requests")

		// Fleet membership: a shard daemon filters ingest to the lines the
		// consistent-hash ring assigns it, so a gateway can fan a feed out
		// over many daemons. Shards normally run with -pipeline=false — the
		// gateway's fleet pipeline orchestrates the weekly loop.
		fleetID       = flag.String("fleet.id", "", "this daemon's shard name in a fleet (enables ring-ownership ingest filtering)")
		fleetPeers    = flag.String("fleet.peers", "", "comma-separated shard names of the whole fleet, including -fleet.id; must match the gateway's list")
		fleetReplicas = flag.Int("fleet.replicas", 0, "consistent-hash virtual nodes per shard (0 = default; must match the gateway)")

		// Durability: with -wal.dir set, every ingest batch is logged before
		// it is acked and the store checkpoints periodically; at startup the
		// daemon recovers newest-checkpoint + WAL-tail to the exact state a
		// never-restarted process would hold. Unset (the default) keeps the
		// store purely in-memory, byte-identical to the pre-WAL daemon.
		// Replication: -replica.of turns this daemon into a read-only
		// follower of another nevermindd. It bootstraps from the leader's
		// newest checkpoint, then tails the leader's WAL stream, so its
		// store is bit-identical to the leader's at every version. A leader
		// running with -wal.dir automatically serves the replication
		// endpoints under /v1/repl/.
		replicaOf   = flag.String("replica.of", "", "leader base URL to replicate from (turns this daemon into a read-only follower)")
		replicaPoll = flag.Duration("replica.poll", 2*time.Second, "long-poll wait per replication stream request")
		replicaID   = flag.String("replica.id", "", "follower id for the leader's WAL retention tracking (default host-pid)")
		replRetain  = flag.Duration("repl.retention", 5*time.Minute, "leader: how long a silent follower keeps pinning WAL segments")

		walDir       = flag.String("wal.dir", "", "write-ahead log + checkpoint directory (empty = no durability)")
		walFsync     = flag.String("wal.fsync", "interval", "WAL fsync policy: always (no acked batch lost), interval, never")
		walFsyncIvl  = flag.Duration("wal.fsync-interval", 50*time.Millisecond, "background fsync period under -wal.fsync=interval")
		walSegBytes  = flag.Int64("wal.segment-bytes", 64<<20, "WAL segment rotation size")
		ckptEvery    = flag.Int64("checkpoint.every", 256, "checkpoint once the store is this many versions past the last one (<0 disables)")
		ckptInterval = flag.Duration("checkpoint.interval", 5*time.Minute, "also checkpoint on this timer when versions moved (0 disables)")
		ckptKeep     = flag.Int("checkpoint.keep", 2, "checkpoint files to retain (the WAL is truncated only past the oldest)")

		pprofOn     = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (profiling is opt-in)")
		reqTimeout  = flag.Duration("timeout", 30*time.Second, "per-request deadline on the API (0 disables)")
		maxInflight = flag.Int("max-inflight", 512, "load-shed threshold: concurrent API requests before 503 + Retry-After (0 disables)")

		retryAttempts = flag.Int("retry.attempts", 6, "pipeline per-week attempt budget for pull/ingest/snapshot")
		retryBase     = flag.Duration("retry.base", 50*time.Millisecond, "pipeline first backoff; doubles per retry with jitter")
		retryMax      = flag.Duration("retry.max", 2*time.Second, "pipeline backoff ceiling")

		chaosSeed      = flag.Uint64("chaos.seed", 1, "fault-injection seed (schedules replay bit-identically)")
		chaosSource    = flag.Float64("chaos.source-error", 0, "P(feed pull fails transiently)")
		chaosPartial   = flag.Float64("chaos.partial-batch", 0, "P(feed delivers a truncated batch with a transport error)")
		chaosMalformed = flag.Float64("chaos.malformed-batch", 0, "P(feed silently delivers corrupt records)")
		chaosIngest    = flag.Float64("chaos.ingest-error", 0, "P(store ingest fails transiently)")
		chaosSnapshot  = flag.Float64("chaos.snapshot-error", 0, "P(snapshot rebuild fails; last good snapshot keeps serving)")
		chaosReload    = flag.Float64("chaos.reload-error", 0, "P(model reload probe fails; old generation keeps serving)")
		chaosSlowShard = flag.Float64("chaos.slow-shard", 0, "P(a shard read stalls during snapshot builds)")
		chaosShardLag  = flag.Duration("chaos.shard-delay", 20*time.Millisecond, "max injected per-shard stall")
		chaosSlowReq   = flag.Float64("chaos.slow-request", 0, "P(an API request stalls in the handler)")
		chaosReqLag    = flag.Duration("chaos.request-delay", 50*time.Millisecond, "max injected per-request stall")
		chaosRetrain   = flag.Float64("chaos.retrain-error", 0, "P(a drift-loop retrain attempt fails; retried next tick)")

		driftOn         = flag.Bool("drift", false, "run the drift monitors + champion/challenger retraining loop in the pipeline tick")
		driftThresholds = flag.String("drift.thresholds", "", "drift monitor thresholds: ap-floor=F,gap-ceil=F,psi-ceil=F,k=N,w=N,min-gain=F,baseline-weeks=N,bins=N (empty = defaults)")
		driftTrain      = flag.Int("drift.train-weeks", 8, "matured weeks a challenger trains on")
	)
	flag.Parse()

	if *startWeek < 1 || *endWeek >= data.Weeks || *startWeek > *endWeek {
		fatalStage("config", fmt.Errorf("pipeline weeks [%d,%d] outside [1,%d)", *startWeek, *endWeek, data.Weeks))
	}
	if *replicaOf != "" {
		if *walDir != "" {
			fatalStage("config", fmt.Errorf("-replica.of and -wal.dir are mutually exclusive: a follower's durability is the leader's"))
		}
		if *pipeline {
			// A follower's store is written only by the replication apply
			// loop; the weekly loop belongs to the leader (or the gateway).
			fmt.Fprintln(os.Stderr, "nevermindd: replica mode; pipeline disabled")
			*pipeline = false
		}
	}

	ds, err := loadOrSimulate(*dataPath, *lines, *seed)
	if err != nil {
		fatalStage("dataset", err)
	}

	pred, err := loadOrTrainPredictor(ds, *model, *startWeek, *rounds, *budget, *workers, *seed)
	if err != nil {
		fatalStage("predictor", err)
	}

	var loc *core.TroubleLocator
	switch {
	case *locator != "":
		fmt.Fprintf(os.Stderr, "nevermindd: loading locator %s...\n", *locator)
		if loc, err = core.LoadLocator(*locator); err != nil {
			fatalStage("locator", err)
		}
	case *trainLoc:
		cases := core.CasesFromNotes(ds, data.FirstSaturday, data.SaturdayOf(*startWeek)-1)
		lcfg := core.DefaultLocatorConfig(*seed)
		lcfg.Workers = *workers
		fmt.Fprintf(os.Stderr, "nevermindd: training trouble locator on %d dispatches...\n", len(cases))
		if loc, err = core.TrainLocator(ds, cases, lcfg); err != nil {
			fatalStage("locator", err)
		}
	}

	// Any non-zero chaos rate arms the fault-injection layer; its faults are
	// exactly what the retry/degradation machinery is built to absorb, so a
	// chaotic daemon must still serve every healthy request.
	var inj *chaos.Injector
	var faults *serve.FaultHooks
	if *chaosSource+*chaosPartial+*chaosMalformed+*chaosIngest+*chaosSnapshot+
		*chaosReload+*chaosSlowShard+*chaosSlowReq+*chaosRetrain > 0 {
		inj = chaos.New(chaos.Config{
			Seed:           *chaosSeed,
			SourceError:    *chaosSource,
			PartialBatch:   *chaosPartial,
			MalformedBatch: *chaosMalformed,
			IngestError:    *chaosIngest,
			SnapshotError:  *chaosSnapshot,
			ReloadError:    *chaosReload,
			SlowShard:      *chaosSlowShard,
			ShardDelay:     *chaosShardLag,
			SlowRequest:    *chaosSlowReq,
			RequestDelay:   *chaosReqLag,
			RetrainError:   *chaosRetrain,
		})
		faults = inj.Hooks()
		fmt.Fprintf(os.Stderr, "nevermindd: CHAOS armed (seed %d)\n", *chaosSeed)
	}

	// In replica mode the status closure late-binds the follower: it is
	// built after the server (it needs srv.SwapStore), but always before the
	// listener opens, so no request observes a nil follower.
	var fol *replica.Follower
	scfg := serve.Config{
		Predictor:      pred,
		Locator:        loc,
		PredictorPath:  *model,
		LocatorPath:    *locator,
		Shards:         *shards,
		CacheEntries:   *cacheEnt,
		DrainTimeout:   *drain,
		RequestTimeout: *reqTimeout,
		MaxInflight:    *maxInflight,
		EnablePprof:    *pprofOn,
		Faults:         faults,
	}
	if *replicaOf != "" {
		scfg.ReadOnly = true
		scfg.ReplicaStatus = func() serve.ReplicaStatus {
			if fol == nil {
				return serve.ReplicaStatus{}
			}
			return fol.Status()
		}
	}
	srv, err := serve.New(scfg)
	if err != nil {
		fatalStage("server", err)
	}
	// Compiled-scorer timings flow into this server's /metrics. The hook is
	// process-global (see ml.SetScoreObserver), so only the daemon — which
	// owns exactly one server — installs it.
	ml.SetScoreObserver(srv.ScoreObserver())

	if *fleetID != "" || *fleetPeers != "" {
		var names []string
		for _, n := range strings.Split(*fleetPeers, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
		ring, err := fleet.NewRing(names, *fleetReplicas)
		if err != nil {
			fatalStage("fleet", err)
		}
		owns, err := ring.Owns(*fleetID)
		if err != nil {
			fatalStage("fleet", err)
		}
		srv.Store().SetOwner(owns)
		fmt.Fprintf(os.Stderr, "nevermindd: fleet shard %q of %d; ingest filtered to ring-owned lines\n",
			*fleetID, ring.NumShards())
	}

	// Durability comes after fleet ownership is installed (replayed records
	// were logged post-filter, so recovery needs no filtering, but live
	// ingest after recovery does) and before the listener opens, so no
	// request ever sees a half-recovered store.
	var dur *serve.Durability
	if *walDir != "" {
		policy, err := wal.ParseSyncPolicy(*walFsync)
		if err != nil {
			fatalStage("wal", err)
		}
		dur, err = serve.OpenDurability(srv.Store(), srv.Registry(), serve.DurabilityConfig{
			Dir:                *walDir,
			Sync:               policy,
			SyncEvery:          *walFsyncIvl,
			SegmentBytes:       *walSegBytes,
			CheckpointEvery:    *ckptEvery,
			CheckpointInterval: *ckptInterval,
			KeepCheckpoints:    *ckptKeep,
		})
		if err != nil {
			fatalStage("wal", err)
		}
		rec := dur.Recovery()
		fmt.Fprintf(os.Stderr,
			"nevermindd: recovered to version %d in %v (checkpoint %d + %d replayed records; %d bytes truncated, %d segments dropped, %d checkpoints skipped)\n",
			rec.Version, rec.Duration.Round(time.Millisecond), rec.CheckpointVersion,
			rec.ReplayedRecords, rec.TruncatedBytes, rec.DroppedSegments, rec.SkippedCheckpoints)

		// A durable daemon is a replication leader: serve its checkpoints and
		// WAL under /v1/repl/, wake blocked follower streams on every append,
		// and hold WAL truncation back for active followers.
		src, err := replica.NewSource(replica.SourceConfig{
			Dir:          dur.Dir(),
			LastVersion:  dur.LogVersion,
			RetentionTTL: *replRetain,
			Reg:          srv.Registry(),
		})
		if err != nil {
			fatalStage("replica", err)
		}
		dur.SetOnAppend(src.Wake)
		dur.SetRetention(src.Retain)
		srv.MountReplication(src.Handler())
		fmt.Fprintf(os.Stderr, "nevermindd: replication source mounted at /v1/repl/ (log tail %d)\n", dur.LogVersion())
	}

	// Replica bootstrap happens synchronously before the listener opens:
	// once the daemon accepts a request, its store is a complete leader state
	// at some version, never a partial one.
	if *replicaOf != "" {
		fol, err = replica.NewFollower(replica.FollowerConfig{
			Leader:    *replicaOf,
			ID:        *replicaID,
			Shards:    *shards,
			SwapStore: srv.SwapStore,
			PollWait:  *replicaPoll,
			Reg:       srv.Registry(),
		})
		if err != nil {
			fatalStage("replica", err)
		}
		t0 := time.Now()
		if err := fol.Bootstrap(context.Background()); err != nil {
			fatalStage("replica", err)
		}
		// The smoke test parses this line for the bootstrap version.
		fmt.Fprintf(os.Stderr, "nevermindd: replica bootstrapped to version %d from %s in %v\n",
			fol.Status().Applied, *replicaOf, time.Since(t0).Round(time.Millisecond))
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatalStage("listen", err)
	}
	// The smoke test parses this line for the actual port.
	fmt.Fprintf(os.Stderr, "nevermindd: listening on %s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if fol != nil {
		go func() {
			if err := fol.Run(ctx); ctx.Err() == nil {
				fmt.Fprintf(os.Stderr, "nevermindd: replica: %v\n", err)
			}
		}()
	}

	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			res, err := srv.Reload()
			if err != nil {
				fmt.Fprintf(os.Stderr, "nevermindd: reload: %v\n", err)
				continue
			}
			fmt.Fprintf(os.Stderr, "nevermindd: reloaded models (probe=%d identical=%v schema=%s)\n",
				res.ProbeExamples, res.Identical, res.SchemaFingerprint)
		}
	}()

	if *pipeline {
		src, err := sim.NewSource(ds, *startWeek, *endWeek)
		if err != nil {
			fatalStage("pipeline", err)
		}
		feed := serve.SimFeed(src)
		if *scenario != "" {
			sc, err := sim.ParseScenario(*scenario)
			if err != nil {
				fatalStage("scenario", err)
			}
			ss, err := sim.NewScenarioSource(src, sc)
			if err != nil {
				fatalStage("scenario", err)
			}
			feed = ss
			// The drift smoke test parses this line.
			fmt.Fprintf(os.Stderr, "nevermindd: scenario armed: %s\n", sc)
		}
		if inj != nil {
			feed = inj.WrapSource(feed)
		}

		// The drift loop rides the pipeline tick: monitors observe each
		// freshly ingested week, and retraining/promotion runs between
		// ticks, never on the request path.
		var ctrl *drift.Controller
		if *driftOn {
			th, err := drift.ParseThresholds(*driftThresholds)
			if err != nil {
				fatalStage("drift", err)
			}
			dcfg := drift.Config{
				Server:     srv,
				Thresholds: th,
				TrainWeeks: *driftTrain,
				Logf: func(format string, args ...any) {
					fmt.Fprintf(os.Stderr, "nevermindd: "+format+"\n", args...)
				},
			}
			if inj != nil {
				dcfg.Hooks = inj.DriftHooks()
			}
			if ctrl, err = drift.New(dcfg); err != nil {
				fatalStage("drift", err)
			}
			ctrl.BindMetrics(srv.Registry())
			srv.MountDrift(ctrl.Handler())
			srv.SetDriftStatus(ctrl.ServeStatus)
			fmt.Fprintf(os.Stderr, "nevermindd: drift loop armed (%s; train-weeks=%d)\n", th, *driftTrain)
		}
		pl, err := serve.NewPipeline(srv, serve.PipelineConfig{
			Source: feed,
			Tick:   *tick,
			Retry: serve.RetryConfig{
				MaxAttempts: *retryAttempts,
				BaseDelay:   *retryBase,
				MaxDelay:    *retryMax,
				Seed:        *seed,
			},
			OnSnapshot: func(sn *serve.Snapshot, week int) {
				if ctrl != nil {
					ctrl.ObserveWeek(sn, week)
				}
			},
			OnWeek: func(r serve.WeekReport) {
				fmt.Fprintf(os.Stderr,
					"nevermindd: week %d: ingested %d tests %d tickets; submitted %d predictions; worked %d customer + %d predicted (%d expired, %d pending, %d retries)\n",
					r.Week, r.IngestedTests, r.IngestedTickets, r.Submitted,
					r.Stats.Customer, r.Stats.Predicted, r.Stats.ExpiredPredicted, r.Pending, r.Retries)
			},
			OnRetry: func(e serve.RetryEvent) {
				fmt.Fprintf(os.Stderr, "nevermindd: week %d %s attempt %d failed (%v); backing off %v\n",
					e.Week, e.Op, e.Attempt, e.Err, e.Backoff)
			},
		})
		if err != nil {
			fatalStage("pipeline", err)
		}
		go func() {
			if err := pl.Run(ctx); err != nil && ctx.Err() == nil {
				fmt.Fprintf(os.Stderr, "nevermindd: pipeline: %v\n", err)
				return
			}
			if ctx.Err() == nil {
				t := pl.Totals()
				fmt.Fprintf(os.Stderr,
					"nevermindd: pipeline done: %d customer + %d predicted worked, %d predicted within 7 days, %d expired\n",
					t.Customer, t.Predicted, t.WorkedWithinBudgetHorizon, t.ExpiredPredicted)
			}
		}()
	}

	if err := srv.Serve(ctx, ln); err != nil {
		fatalStage("serve", err)
	}
	if dur != nil {
		// Final checkpoint + clean log close: the next start recovers from
		// the checkpoint alone, no replay.
		if err := dur.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "nevermindd: wal close: %v\n", err)
		}
	}
	fmt.Fprintln(os.Stderr, "nevermindd: drained, exiting")
}

func loadOrSimulate(path string, lines int, seed uint64) (*data.Dataset, error) {
	if path != "" {
		fmt.Fprintf(os.Stderr, "nevermindd: loading dataset %s...\n", path)
		return data.Load(path)
	}
	fmt.Fprintf(os.Stderr, "nevermindd: simulating %d lines for one year...\n", lines)
	res, err := sim.Run(sim.DefaultConfig(lines, seed))
	if err != nil {
		return nil, err
	}
	return res.Dataset, nil
}

// loadOrTrainPredictor loads the model file when given one, otherwise trains
// on the weeks preceding the pipeline's start week with the same 4-week label
// gap the nevermind command uses.
func loadOrTrainPredictor(ds *data.Dataset, path string, startWeek, rounds, budget, workers int, seed uint64) (*core.TicketPredictor, error) {
	if path != "" {
		fmt.Fprintf(os.Stderr, "nevermindd: loading predictor %s...\n", path)
		pred, err := core.LoadPredictor(path)
		if err != nil {
			return nil, err
		}
		pred.Cfg.Workers = workers
		if budget > 0 {
			pred.Cfg.BudgetN = budget
		}
		return pred, nil
	}
	hi := startWeek - 5
	lo := hi - 8
	if lo < 1 {
		return nil, fmt.Errorf("start week %d leaves no room for training; use a later week or -model", startWeek)
	}
	cfg := core.DefaultPredictorConfig(ds.NumLines, seed)
	cfg.Rounds = rounds
	cfg.Workers = workers
	if budget > 0 {
		cfg.BudgetN = budget
	}
	fmt.Fprintf(os.Stderr, "nevermindd: training ticket predictor on weeks %d-%d (%d lines)...\n", lo, hi, ds.NumLines)
	t0 := time.Now()
	pred, err := core.TrainPredictor(ds, features.WeekRange(lo, hi), cfg)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "nevermindd: trained in %v; model uses %d features + %d products\n",
		time.Since(t0).Round(time.Millisecond), len(pred.SelectedCols), len(pred.ProductPairs))
	return pred, nil
}

// fatalStage exits naming the startup stage that failed, so a dead daemon's
// last log line says whether loading, training, or serving broke.
func fatalStage(stage string, err error) {
	fmt.Fprintf(os.Stderr, "nevermindd: %s: %v\n", stage, err)
	os.Exit(1)
}

// Command benchjson converts `go test -bench` text output on stdin into a
// JSON document on stdout, so benchmark numbers can be committed and diffed
// (`make bench-json` writes BENCH_ml.json).
//
// It parses the standard benchmark line format:
//
//	BenchmarkName/sub=1-8   	     123	  456789 ns/op	  1024 B/op	   12 allocs/op	   3.00 custom-metric
//
// plus the goos/goarch/pkg/cpu header lines. Non-benchmark lines are ignored,
// so piping the full `go test` output (including PASS/ok trailers) is fine.
//
// Repeated lines for the same benchmark (`-count=N`) collapse to the fastest
// run — scheduler and neighbor noise only ever adds time, so the minimum
// ns/op is the best estimate of the code's true cost, and best-of-N is what
// makes the bench-diff gate stable on a shared machine.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op,omitempty"`
	BytesPerOp float64            `json:"bytes_per_op,omitempty"`
	AllocsOp   float64            `json:"allocs_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

type report struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []result `json:"benchmarks"`
}

func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: fields[0], Iterations: iters}
	// The remainder is value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsOp = v
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = v
		}
	}
	return r, true
}

func main() {
	rep := report{Benchmarks: []result{}}
	seen := map[string]int{} // name -> index in rep.Benchmarks
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		default:
			if r, ok := parseLine(line); ok {
				if i, dup := seen[r.Name]; dup {
					if r.NsPerOp < rep.Benchmarks[i].NsPerOp {
						rep.Benchmarks[i] = r
					}
				} else {
					seen[r.Name] = len(rep.Benchmarks)
					rep.Benchmarks = append(rep.Benchmarks, r)
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// Command dslsim generates a synthetic year of DSL operational data — the
// four information sources of §3.3 (weekly line tests, customer tickets,
// disposition notes, subscriber profiles) plus the DSLAM outage log — and
// writes it to disk for the other tools.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"nevermind/internal/data"
	"nevermind/internal/sim"
)

func main() {
	var (
		lines = flag.Int("lines", 20000, "subscriber population")
		seed  = flag.Uint64("seed", 42, "simulation seed")
		out   = flag.String("out", "dsl-year.gob.gz", "dataset output path (gzipped gob)")
		csv   = flag.String("csv", "", "optional directory for CSV exports")
	)
	flag.Parse()

	t0 := time.Now()
	res, err := sim.Run(sim.DefaultConfig(*lines, *seed))
	if err != nil {
		fatal(err)
	}
	ds := res.Dataset
	edge := 0
	for _, t := range ds.Tickets {
		if t.Category == data.CatCustomerEdge {
			edge++
		}
	}
	fmt.Fprintf(os.Stderr, "simulated %d lines: %d measurements, %d tickets (%d customer-edge), %d dispatches, %d outages in %v\n",
		ds.NumLines, len(ds.Measurements), len(ds.Tickets), edge, len(ds.Notes), len(ds.Outages),
		time.Since(t0).Round(time.Millisecond))

	if err := ds.Save(*out); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)

	if *csv != "" {
		if err := os.MkdirAll(*csv, 0o755); err != nil {
			fatal(err)
		}
		mf, err := os.Create(*csv + "/measurements.csv")
		if err != nil {
			fatal(err)
		}
		if err := ds.WriteMeasurementsCSV(mf); err != nil {
			fatal(err)
		}
		if err := mf.Close(); err != nil {
			fatal(err)
		}
		tf, err := os.Create(*csv + "/tickets.csv")
		if err != nil {
			fatal(err)
		}
		if err := ds.WriteTicketsCSV(tf); err != nil {
			fatal(err)
		}
		if err := tf.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s/measurements.csv and %s/tickets.csv\n", *csv, *csv)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dslsim:", err)
	os.Exit(1)
}

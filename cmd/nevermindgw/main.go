// Command nevermindgw is the NEVERMIND fleet gateway: the scale-out front
// door for a consistent-hash sharded nevermindd fleet. It owns the ring that
// assigns every DSL line to a shard, routes the per-line API (/v1/ingest,
// /v1/score, /v1/locate) to the owning daemon, and answers /v1/rank by
// scatter-gathering the per-shard top-N exports through a streaming k-way
// merge — no shard's full population is ever materialized at the gateway.
//
// A 1-shard gateway answers byte-for-byte as a bare nevermindd would; its
// own /healthz and /metrics are fleet-shaped (per-shard up/lag gauges, the
// degraded count) and sit outside that contract. With -pipeline it also runs
// the weekly §3.2 loop fleet-wide: each simulated week is ring-partitioned
// and ingested by all shards in parallel, ranked fleet-wide, and dispatched
// into a local ATDS queue exactly as the single daemon does.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"nevermind/internal/chaos"
	"nevermind/internal/data"
	"nevermind/internal/fleet"
	"nevermind/internal/serve"
	"nevermind/internal/sim"
)

// shardFlags collects repeated -shard name=url flags in order; the order
// fixes shard indexing (error relay picks the lowest failing index) but not
// ownership — the ring hashes names, so any permutation of the same list
// yields the same line placement.
type shardFlags []fleet.ShardSpec

func (s *shardFlags) String() string {
	parts := make([]string, len(*s))
	for i, sp := range *s {
		parts[i] = sp.Name + "=" + sp.URL
	}
	return strings.Join(parts, ",")
}

func (s *shardFlags) Set(v string) error {
	name, url, ok := strings.Cut(v, "=")
	if !ok || name == "" || url == "" {
		return fmt.Errorf("want name=url, got %q", v)
	}
	*s = append(*s, fleet.ShardSpec{Name: name, URL: url})
	return nil
}

// replicaFlags collects repeated -replica shard=url flags: each names a
// read replica (a nevermindd running -replica.of against that shard's
// leader). Order within a shard fixes the replica index only.
type replicaFlags []struct{ shard, url string }

func (r *replicaFlags) String() string {
	parts := make([]string, len(*r))
	for i, e := range *r {
		parts[i] = e.shard + "=" + e.url
	}
	return strings.Join(parts, ",")
}

func (r *replicaFlags) Set(v string) error {
	shard, url, ok := strings.Cut(v, "=")
	if !ok || shard == "" || url == "" {
		return fmt.Errorf("want shard=url, got %q", v)
	}
	*r = append(*r, struct{ shard, url string }{shard, url})
	return nil
}

func main() {
	var shards shardFlags
	flag.Var(&shards, "shard", "fleet member as name=url (repeat once per shard)")
	var shardReplicas replicaFlags
	flag.Var(&shardReplicas, "replica", "read replica as shard=url (repeatable; reads prefer fresh replicas, ingest stays on leaders)")
	var (
		addr     = flag.String("addr", "127.0.0.1:8090", "listen address (port 0 picks a free port)")
		replicas = flag.Int("replicas", 0, "consistent-hash virtual nodes per shard (0 = default; must match the shards' -fleet.replicas)")
		maxLag   = flag.Uint64("max-replica-lag", 0, "ingest versions a replica may trail before reads skip it (0 = default)")
		probe    = flag.Duration("probe", time.Second, "shard health-probe interval")
		drain    = flag.Duration("drain", 10*time.Second, "graceful-shutdown budget for in-flight requests")
		seed     = flag.Uint64("seed", 42, "simulation seed; also drives retry-backoff jitter")

		retryAttempts = flag.Int("retry.attempts", 6, "per-shard-request attempt budget for transient failures")
		retryBase     = flag.Duration("retry.base", 50*time.Millisecond, "first shard-retry backoff; doubles per retry with jitter")
		retryMax      = flag.Duration("retry.max", 2*time.Second, "shard-retry backoff ceiling")

		pipeline  = flag.Bool("pipeline", false, "run the weekly fleet pipeline over the simulated feed")
		lines     = flag.Int("lines", 20000, "subscriber population to simulate for the feed (ignored with -data)")
		dataPath  = flag.String("data", "", "feed from a dataset written by dslsim instead of simulating")
		startWeek = flag.Int("start-week", 40, "first week the pipeline ingests and ranks")
		endWeek   = flag.Int("end-week", 51, "last week the pipeline ingests and ranks")
		tick      = flag.Duration("tick", 0, "wall-clock interval per simulated week (0 = back to back)")

		chaosSeed      = flag.Uint64("chaos.seed", 1, "fault-injection seed (schedules replay bit-identically)")
		chaosKill      = flag.Float64("chaos.shard-kill", 0, "P(a shard request finds the shard unreachable)")
		chaosSource    = flag.Float64("chaos.source-error", 0, "P(feed pull fails transiently)")
		chaosPartial   = flag.Float64("chaos.partial-batch", 0, "P(feed delivers a truncated batch with a transport error)")
		chaosMalformed = flag.Float64("chaos.malformed-batch", 0, "P(feed silently delivers corrupt records)")
	)
	flag.Parse()

	if len(shards) == 0 {
		fatalStage("config", fmt.Errorf("no shards; pass -shard name=url at least once"))
	}
	for _, e := range shardReplicas {
		found := false
		for i := range shards {
			if shards[i].Name == e.shard {
				shards[i].Replicas = append(shards[i].Replicas, e.url)
				found = true
				break
			}
		}
		if !found {
			fatalStage("config", fmt.Errorf("-replica %s=%s names an unknown shard", e.shard, e.url))
		}
	}

	var inj *chaos.Injector
	var hooks *fleet.FaultHooks
	if *chaosKill+*chaosSource+*chaosPartial+*chaosMalformed > 0 {
		inj = chaos.New(chaos.Config{
			Seed:           *chaosSeed,
			ShardKill:      *chaosKill,
			SourceError:    *chaosSource,
			PartialBatch:   *chaosPartial,
			MalformedBatch: *chaosMalformed,
		})
		hooks = inj.FleetHooks()
		fmt.Fprintf(os.Stderr, "nevermindgw: CHAOS armed (seed %d)\n", *chaosSeed)
	}

	gw, err := fleet.NewGateway(fleet.Config{
		Shards:        shards,
		Replicas:      *replicas,
		MaxReplicaLag: *maxLag,
		Retry: serve.RetryConfig{
			MaxAttempts: *retryAttempts,
			BaseDelay:   *retryBase,
			MaxDelay:    *retryMax,
			Seed:        *seed,
		},
		ProbeInterval: *probe,
		DrainTimeout:  *drain,
		Hooks:         hooks,
	})
	if err != nil {
		fatalStage("gateway", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatalStage("listen", err)
	}
	// The smoke test parses this line for the actual port.
	fmt.Fprintf(os.Stderr, "nevermindgw: listening on %s (%d shards)\n", ln.Addr(), len(shards))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *pipeline {
		if *startWeek < 1 || *endWeek >= data.Weeks || *startWeek > *endWeek {
			fatalStage("config", fmt.Errorf("pipeline weeks [%d,%d] outside [1,%d)", *startWeek, *endWeek, data.Weeks))
		}
		ds, err := loadOrSimulate(*dataPath, *lines, *seed)
		if err != nil {
			fatalStage("dataset", err)
		}
		src, err := sim.NewSource(ds, *startWeek, *endWeek)
		if err != nil {
			fatalStage("pipeline", err)
		}
		feed := serve.SimFeed(src)
		if inj != nil {
			feed = inj.WrapSource(feed)
		}
		pl, err := fleet.NewPipeline(gw, fleet.PipelineConfig{
			Source: feed,
			Tick:   *tick,
			Retry: serve.RetryConfig{
				MaxAttempts: *retryAttempts,
				BaseDelay:   *retryBase,
				MaxDelay:    *retryMax,
				Seed:        *seed,
			},
			OnWeek: func(r serve.WeekReport) {
				fmt.Fprintf(os.Stderr,
					"nevermindgw: week %d: ingested %d tests %d tickets; submitted %d predictions; worked %d customer + %d predicted (%d expired, %d pending, %d retries)\n",
					r.Week, r.IngestedTests, r.IngestedTickets, r.Submitted,
					r.Stats.Customer, r.Stats.Predicted, r.Stats.ExpiredPredicted, r.Pending, r.Retries)
			},
			OnRetry: func(e serve.RetryEvent) {
				fmt.Fprintf(os.Stderr, "nevermindgw: week %d %s attempt %d failed (%v); backing off %v\n",
					e.Week, e.Op, e.Attempt, e.Err, e.Backoff)
			},
		})
		if err != nil {
			fatalStage("pipeline", err)
		}
		go func() {
			if err := pl.Run(ctx); err != nil && ctx.Err() == nil {
				fmt.Fprintf(os.Stderr, "nevermindgw: pipeline: %v\n", err)
				return
			}
			if ctx.Err() == nil {
				t := pl.Totals()
				fmt.Fprintf(os.Stderr,
					"nevermindgw: pipeline done: %d customer + %d predicted worked, %d predicted within 7 days, %d expired\n",
					t.Customer, t.Predicted, t.WorkedWithinBudgetHorizon, t.ExpiredPredicted)
			}
		}()
	}

	if err := gw.Serve(ctx, ln); err != nil {
		fatalStage("serve", err)
	}
	fmt.Fprintln(os.Stderr, "nevermindgw: drained, exiting")
}

func loadOrSimulate(path string, lines int, seed uint64) (*data.Dataset, error) {
	if path != "" {
		fmt.Fprintf(os.Stderr, "nevermindgw: loading dataset %s...\n", path)
		return data.Load(path)
	}
	fmt.Fprintf(os.Stderr, "nevermindgw: simulating %d lines for one year...\n", lines)
	res, err := sim.Run(sim.DefaultConfig(lines, seed))
	if err != nil {
		return nil, err
	}
	return res.Dataset, nil
}

// fatalStage exits naming the startup stage that failed.
func fatalStage(stage string, err error) {
	fmt.Fprintf(os.Stderr, "nevermindgw: %s: %v\n", stage, err)
	os.Exit(1)
}

// Command nevermindwal is the durability directory's offline toolbox:
//
//	nevermindwal inspect <dir>   per-segment and per-checkpoint health report
//	nevermindwal verify <dir>    dry-run recovery; exit non-zero if it fails
//
// inspect walks the directory read-only (safe on a live daemon's WAL) and
// reports every checkpoint and segment, including torn tails and broken
// chains. verify rehearses exactly what nevermindd does at boot — load the
// newest loadable checkpoint, replay the WAL tail into a scratch store — and
// reports the version a restart would recover to, so an operator can check a
// crashed host's directory before pointing a daemon at it.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"nevermind/internal/serve"
	"nevermind/internal/wal"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: nevermindwal inspect|verify <wal-dir>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	cmd, dir := flag.Arg(0), flag.Arg(1)
	var err error
	switch cmd {
	case "inspect":
		err = inspect(dir)
	case "verify":
		err = verify(dir)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "nevermindwal: %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

// inspect reports what is on disk without judging it: a damaged directory
// still inspects cleanly, with the damage in the report.
func inspect(dir string) error {
	cks, err := wal.Checkpoints(dir)
	if err != nil {
		return err
	}
	fmt.Printf("checkpoints: %d\n", len(cks))
	for _, ck := range cks {
		fmt.Printf("  %-32s version %-8d %d bytes\n", filepath.Base(ck.Path), ck.Version, ck.Bytes)
	}
	st, err := wal.Inspect(dir)
	if err != nil {
		return err
	}
	fmt.Printf("segments: %d\n", len(st.Segments))
	for _, seg := range st.Segments {
		line := fmt.Sprintf("  %-32s versions %d..%d  %d records  %d bytes",
			filepath.Base(seg.Path), seg.FirstVersion, seg.LastVersion, seg.Records, seg.Bytes)
		if seg.TornBytes > 0 {
			line += fmt.Sprintf("  TORN tail (%d bytes)", seg.TornBytes)
		}
		if seg.Err != "" {
			line += "  ERR " + seg.Err
		}
		fmt.Println(line)
	}
	fmt.Printf("chain: versions %d..%d, %d records\n", st.FirstVersion, st.LastVersion, st.Records)
	return nil
}

// verify rehearses recovery read-only: the same checkpoint fallback and WAL
// tail replay OpenDurability performs, into a throwaway store, with nothing
// repaired or truncated on disk. Success means a daemon restart will serve
// the reported version.
func verify(dir string) error {
	cks, err := wal.Checkpoints(dir)
	if err != nil {
		return err
	}
	store := serve.NewStore(4)
	base := uint64(0)
	for i := len(cks) - 1; i >= 0; i-- {
		var st serve.StoreState
		v, err := wal.LoadCheckpoint(cks[i].Path, &st)
		if err != nil {
			fmt.Printf("verify: checkpoint %s unloadable: %v\n", filepath.Base(cks[i].Path), err)
			continue
		}
		if err := store.RestoreState(&st); err != nil {
			return fmt.Errorf("checkpoint %s does not restore: %w", filepath.Base(cks[i].Path), err)
		}
		base = v
		fmt.Printf("verify: checkpoint %s restores to version %d\n", filepath.Base(cks[i].Path), v)
		break
	}
	if len(cks) > 0 && base == 0 {
		return fmt.Errorf("%d checkpoints present, none loadable", len(cks))
	}
	ds, err := wal.Inspect(dir)
	if err != nil {
		return err
	}
	replayed := 0
	if ds.LastVersion > base {
		replayed, err = wal.Replay(dir, base, store.ApplyWALRecord)
		if err != nil {
			return fmt.Errorf("replay from version %d: %w (applied %d)", base, err, replayed)
		}
	}
	fmt.Printf("verify: OK — recovers to version %d (checkpoint %d + %d replayed records)\n",
		store.Version(), base, replayed)
	return nil
}

// Command nevermind runs the full proactive-troubleshooting pipeline the way
// the paper's Fig. 3 (bottom box) wires it into operations: simulate (or
// load) a year of network data, train the ticket predictor and the trouble
// locator, then produce the Saturday operator report for one week — the
// budgeted list of lines predicted to file tickets, each with its ranked
// trouble locations, plus DSLAM-level outage early warnings from prediction
// clustering.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"text/tabwriter"
	"time"

	"nevermind/internal/core"
	"nevermind/internal/data"
	"nevermind/internal/faults"
	"nevermind/internal/features"
	"nevermind/internal/ml"
	"nevermind/internal/sim"
)

func main() {
	var (
		lines    = flag.Int("lines", 20000, "subscriber population to simulate (ignored with -data)")
		seed     = flag.Uint64("seed", 42, "simulation and training seed")
		dataPath = flag.String("data", "", "load a dataset written by dslsim instead of simulating")
		week     = flag.Int("week", 43, "measurement week to rank (0-51)")
		budget   = flag.Int("budget", 0, "ATDS capacity for predicted tickets (default population/50)")
		rounds   = flag.Int("rounds", 250, "predictor boosting rounds")
		cv       = flag.Bool("cv", false, "pick the boosting rounds by cross-validation (the paper's procedure)")
		show     = flag.Int("show", 15, "predictions to print in the report")
		locate   = flag.Bool("locate", true, "train the trouble locator and print ranked dispositions")
		model    = flag.String("model", "", "load a trained predictor instead of training")
		saveTo   = flag.String("savemodel", "", "save the trained predictor to this path")
		workers  = flag.Int("workers", 0, "worker pool size for training and ranking (0 = all CPUs, 1 = sequential; results identical)")
	)
	flag.Parse()

	ds, err := loadOrSimulate(*dataPath, *lines, *seed)
	if err != nil {
		fatal("dataset", err)
	}
	if *week < 1 || *week >= data.Weeks {
		fatal("config", fmt.Errorf("week %d outside [1,%d)", *week, data.Weeks))
	}

	var pred *core.TicketPredictor
	if *model != "" {
		fmt.Fprintf(os.Stderr, "loading predictor %s...\n", *model)
		pred, err = core.LoadPredictor(*model)
		if err != nil {
			fatal("load predictor", err)
		}
		if *budget > 0 {
			pred.Cfg.BudgetN = *budget
		}
	} else {
		// Train the predictor on the weeks preceding the target ranking
		// week, leaving a 4-week gap so training labels never peek past it.
		hi := *week - 5
		lo := hi - 8
		if lo < 1 {
			fatal("config", fmt.Errorf("week %d leaves no room for training; use a later week", *week))
		}
		cfg := core.DefaultPredictorConfig(ds.NumLines, *seed)
		cfg.Rounds = *rounds
		cfg.Workers = *workers
		if *budget > 0 {
			cfg.BudgetN = *budget
		}
		if *cv {
			cfg.Rounds = crossValidateRounds(ds, lo, hi, cfg)
			fmt.Fprintf(os.Stderr, "cross-validation picked %d boosting rounds\n", cfg.Rounds)
		}
		fmt.Fprintf(os.Stderr, "training ticket predictor on weeks %d-%d (%d lines)...\n", lo, hi, ds.NumLines)
		t0 := time.Now()
		pred, err = core.TrainPredictor(ds, features.WeekRange(lo, hi), cfg)
		if err != nil {
			fatal("train predictor", err)
		}
		fmt.Fprintf(os.Stderr, "trained in %v; model uses %d features + %d products\n",
			time.Since(t0).Round(time.Millisecond), len(pred.SelectedCols), len(pred.ProductPairs))
		if *saveTo != "" {
			if err := pred.Save(*saveTo); err != nil {
				fatal("save predictor", err)
			}
			fmt.Fprintf(os.Stderr, "saved predictor to %s\n", *saveTo)
		}
	}

	top, err := pred.TopN(ds, *week)
	if err != nil {
		fatal("rank", err)
	}

	var loc *core.TroubleLocator
	if *locate {
		cases := core.CasesFromNotes(ds, data.FirstSaturday, data.SaturdayOf(*week)-1)
		lcfg := core.DefaultLocatorConfig(*seed)
		lcfg.Workers = *workers
		fmt.Fprintf(os.Stderr, "training trouble locator on %d dispatches...\n", len(cases))
		t0 := time.Now()
		loc, err = core.TrainLocator(ds, cases, lcfg)
		if err != nil {
			fatal("train locator", err)
		}
		fmt.Fprintf(os.Stderr, "trained %d disposition models in %v\n",
			len(loc.Dispositions), time.Since(t0).Round(time.Millisecond))
	}

	report(ds, pred, loc, top, *week, *show)
}

func loadOrSimulate(path string, lines int, seed uint64) (*data.Dataset, error) {
	if path != "" {
		fmt.Fprintf(os.Stderr, "loading dataset %s...\n", path)
		return data.Load(path)
	}
	fmt.Fprintf(os.Stderr, "simulating %d lines for one year...\n", lines)
	res, err := sim.Run(sim.DefaultConfig(lines, seed))
	if err != nil {
		return nil, err
	}
	return res.Dataset, nil
}

func report(ds *data.Dataset, pred *core.TicketPredictor, loc *core.TroubleLocator, top []core.Prediction, week, show int) {
	day := data.SaturdayOf(week)
	fmt.Printf("NEVERMIND weekly report — %s (week %d)\n", data.DateString(day), week)
	fmt.Printf("predicted tickets submitted to ATDS: %d\n\n", len(top))

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "rank\tline\tDSLAM\tP(ticket in 4wk)\ttop suspect locations")
	for i, p := range top {
		if i >= show {
			break
		}
		suspects := "-"
		if loc != nil {
			suspects = topSuspects(ds, loc, p, 3)
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%.2f\t%s\n", i+1, p.Line, ds.DSLAMOf[p.Line], p.Probability, suspects)
	}
	tw.Flush()
	if len(top) > show {
		fmt.Printf("... and %d more\n", len(top)-show)
	}

	// Model highlights: which line features carry the prediction (the
	// Fig. 5 walkthrough, aggregated).
	fmt.Printf("\nmodel highlights — most influential features:\n")
	for _, tf := range pred.Model.TopFeatures(5) {
		fmt.Printf("  %-40s swing %.2f\n", tf.Name, tf.Weight)
	}
	fmt.Printf("  first learned rule: %s\n", pred.Model.Explain(0))

	// DSLAM-level early warning: prediction clusters presage outages (§5.2).
	byDSLAM := map[int32]int{}
	for _, p := range top {
		byDSLAM[ds.DSLAMOf[p.Line]]++
	}
	type hot struct {
		dslam int32
		n     int
	}
	var hots []hot
	for d, n := range byDSLAM {
		if n >= 5 {
			hots = append(hots, hot{d, n})
		}
	}
	sort.Slice(hots, func(a, b int) bool {
		if hots[a].n != hots[b].n {
			return hots[a].n > hots[b].n
		}
		return hots[a].dslam < hots[b].dslam
	})
	if len(hots) > 0 {
		fmt.Printf("\noutage early warning — DSLAMs with clustered predictions (dispatch one truck):\n")
		for _, h := range hots {
			fmt.Printf("  DSLAM %-6d %d predicted problems\n", h.dslam, h.n)
		}
	}
}

// topSuspects runs the combined locator model for one predicted line.
func topSuspects(ds *data.Dataset, loc *core.TroubleLocator, p core.Prediction, k int) string {
	cases := []core.DispatchCase{{Line: p.Line, Week: p.Week}}
	post, err := loc.Posteriors(ds, cases, core.ModelCombined)
	if err != nil {
		return "-"
	}
	type cand struct {
		name string
		prob float64
	}
	var cands []cand
	for j, d := range loc.Dispositions {
		cands = append(cands, cand{faults.Catalog[d].Name, post[0][j]})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].prob != cands[b].prob {
			return cands[a].prob > cands[b].prob
		}
		return cands[a].name < cands[b].name
	})
	out := ""
	for i := 0; i < k && i < len(cands); i++ {
		if i > 0 {
			out += ", "
		}
		out += cands[i].name
	}
	return out
}

// crossValidateRounds runs the paper's procedure for the boosting budget:
// 3-fold cross-validation on (a subsample of) the training examples,
// scored by top-N average precision at the operational budget.
func crossValidateRounds(ds *data.Dataset, lo, hi int, cfg core.PredictorConfig) int {
	ix := data.NewTicketIndex(ds)
	ex := features.ExamplesForWeeks(ds, features.WeekRange(lo, hi))
	const maxExamples = 30000
	if len(ex) > maxExamples {
		stride := len(ex)/maxExamples + 1
		var sub []features.Example
		for i := 0; i < len(ex); i += stride {
			sub = append(sub, ex[i])
		}
		ex = sub
	}
	enc, err := features.Encode(ds, ix, ex, features.Config{HistoryWeeks: cfg.HistoryWeeks})
	if err != nil {
		fatal("cross-validation", err)
	}
	y := features.Labels(ix, ex, cfg.WindowDays)
	// The per-fold validation slice is a third of the examples; scale the
	// budget to it.
	foldN := cfg.BudgetN * len(ex) / (3 * ds.NumLines)
	if foldN < 5 {
		foldN = 5
	}
	res, err := ml.CrossValidateRounds(enc.Cols, y, []int{60, 150, 250, 400}, 3, 64, cfg.Seed,
		func(s []float64, l []bool) float64 { return ml.TopNAveragePrecision(s, l, foldN) })
	if err != nil {
		fatal("cross-validation", err)
	}
	return res.Best
}

// fatal exits naming the pipeline stage that failed, so a failed run's last
// line says whether loading, training, or ranking broke.
func fatal(stage string, err error) {
	fmt.Fprintf(os.Stderr, "nevermind: %s: %v\n", stage, err)
	os.Exit(1)
}

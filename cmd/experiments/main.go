// Command experiments regenerates the tables and figures of the paper's
// evaluation (§5, §6.3) on the simulated substrate.
//
// Usage:
//
//	experiments [-lines N] [-seed S] [-rounds R] [-exp name]
//
// where name is one of: fig4, fig6, fig7, fig8, table5, notonsite, locator
// (the §6.3 headline plus Fig. 10), deploy (the deployment counterfactual
// extension), table1, trend, or all.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"nevermind/internal/eval"
)

func main() {
	var (
		lines  = flag.Int("lines", 20000, "subscriber population to simulate")
		seed   = flag.Uint64("seed", 42, "simulation and pipeline seed")
		rounds = flag.Int("rounds", 250, "predictor boosting rounds (paper: 800)")
		locR   = flag.Int("locrounds", 80, "locator boosting rounds (paper: 200)")
		exp    = flag.String("exp", "all", "experiment to run: fig4|fig6|fig7|fig8|fig9|table5|notonsite|locator|deploy|atds|table1|trend|all")
		work   = flag.Int("workers", 0, "worker pool size for the pipelines (0 = all CPUs, 1 = sequential; results identical)")
		noCache = flag.Bool("nocache", false, "disable the cross-experiment encode/bin cache (results identical, just slower)")
	)
	flag.Parse()

	cfg := eval.Config{Lines: *lines, Seed: *seed, Rounds: *rounds, LocRounds: *locR, Workers: *work, DisableCache: *noCache}
	start := time.Now()
	ctx, err := eval.NewContext(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "simulated %d lines, %d tickets, %d dispatches in %v\n\n",
		ctx.DS.NumLines, len(ctx.DS.Tickets), len(ctx.DS.Notes), time.Since(start).Round(time.Millisecond))

	type renderer interface{ Render(io.Writer) error }
	runners := []struct {
		name string
		run  func() (renderer, error)
	}{
		{"trend", func() (renderer, error) { return ctx.RunTrend() }},
		{"table1", func() (renderer, error) { return ctx.RunTable1() }},
		{"fig4", func() (renderer, error) { return ctx.RunFig4() }},
		{"fig6", func() (renderer, error) { return ctx.RunFig6() }},
		{"fig7", func() (renderer, error) { return ctx.RunFig7() }},
		{"fig8", func() (renderer, error) { return ctx.RunFig8() }},
		{"fig9", func() (renderer, error) { return ctx.RunFig9() }},
		{"table5", func() (renderer, error) { return ctx.RunTable5() }},
		{"notonsite", func() (renderer, error) { return ctx.RunNotOnSite() }},
		{"locator", func() (renderer, error) { return ctx.RunLocator() }},
		{"deploy", func() (renderer, error) { return ctx.RunDeployment() }},
		{"atds", func() (renderer, error) { return ctx.RunATDS() }},
	}

	ran := 0
	for _, r := range runners {
		if *exp != "all" && *exp != r.name {
			continue
		}
		ran++
		t0 := time.Now()
		res, err := r.run()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", r.name, err))
		}
		fmt.Printf("==== %s ====\n\n", r.name)
		if err := res.Render(os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "[%s in %v]\n", r.name, time.Since(t0).Round(time.Millisecond))
		fmt.Println()
	}
	if ran == 0 {
		fatal(fmt.Errorf("unknown experiment %q", *exp))
	}
	if ctx.Cache != nil {
		hits, misses := ctx.Cache.Stats()
		fmt.Fprintf(os.Stderr, "[encode cache: %d hits, %d misses, %d entries]\n", hits, misses, ctx.Cache.Len())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}

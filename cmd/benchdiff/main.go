// Command benchdiff compares two benchjson reports (see cmd/benchjson) and
// exits nonzero when any matched benchmark regressed beyond the threshold —
// the perf gate `make bench-diff` runs against the committed BENCH_ml.json.
// Two axes gate independently: ns/op (throughput) and allocs/op (the
// zero-alloc serving contract). An allocation regression must clear both the
// percentage threshold and an absolute slack (default 2 allocs/op), so a
// 0->1 blip never fails the gate but a pooled path quietly growing a
// per-request allocation does.
//
//	benchdiff -old BENCH_ml.json -new fresh.json -match 'ScoreCompiled|ServeScore' -threshold 25
//
// Only benchmarks present in both reports are compared (a renamed or new
// benchmark is reported but never fails the gate); matching zero benchmarks
// fails it, because a gate that compares nothing silently stopped gating.
// Allocs compare only when the baseline recorded them (reports predating
// -benchmem capture carry none).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
)

type result struct {
	Name     string  `json:"name"`
	NsPerOp  float64 `json:"ns_per_op"`
	AllocsOp float64 `json:"allocs_per_op"`
}

type report struct {
	Benchmarks []result `json:"benchmarks"`
}

func load(path string) (map[string]result, []string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	byName := make(map[string]result, len(rep.Benchmarks))
	var order []string
	for _, b := range rep.Benchmarks {
		if b.NsPerOp > 0 {
			byName[b.Name] = b
			order = append(order, b.Name)
		}
	}
	return byName, order, nil
}

func main() {
	var (
		oldPath    = flag.String("old", "BENCH_ml.json", "baseline benchjson report")
		newPath    = flag.String("new", "", "fresh benchjson report to judge")
		match      = flag.String("match", ".", "regexp selecting which benchmarks gate")
		threshold  = flag.Float64("threshold", 25, "max tolerated regression, percent (ns/op and allocs/op)")
		allocSlack = flag.Float64("alloc-slack", 2, "absolute allocs/op growth always tolerated")
	)
	flag.Parse()
	if *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -new is required")
		os.Exit(2)
	}
	re, err := regexp.Compile(*match)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	oldRes, _, err := load(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newRes, newOrder, err := load(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	compared, regressed := 0, 0
	for _, name := range newOrder {
		if !re.MatchString(name) {
			continue
		}
		cur := newRes[name]
		base, ok := oldRes[name]
		if !ok {
			fmt.Printf("NEW      %-46s %12.0f ns/op (no baseline)\n", name, cur.NsPerOp)
			continue
		}
		compared++
		delta := (cur.NsPerOp - base.NsPerOp) / base.NsPerOp * 100
		verdict := "ok"
		if delta > *threshold {
			verdict = "REGRESSED"
			regressed++
		}
		fmt.Printf("%-8s %-46s %12.0f -> %12.0f ns/op  %+6.1f%%\n", verdict, name, base.NsPerOp, cur.NsPerOp, delta)
		// Allocation gate: only when the baseline recorded allocs, and only
		// past both the relative threshold and the absolute slack.
		if base.AllocsOp > 0 && cur.AllocsOp > base.AllocsOp+*allocSlack &&
			(cur.AllocsOp-base.AllocsOp)/base.AllocsOp*100 > *threshold {
			regressed++
			fmt.Printf("%-8s %-46s %12.1f -> %12.1f allocs/op\n", "REGRESSED", name, base.AllocsOp, cur.AllocsOp)
		}
	}
	if compared == 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: no benchmark matched %q in both reports — the gate compared nothing\n", *match)
		os.Exit(1)
	}
	if regressed > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d of %d benchmarks regressed more than %.0f%%\n",
			regressed, compared, *threshold)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: %d benchmarks within %.0f%% of baseline\n", compared, *threshold)
}

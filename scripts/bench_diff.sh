#!/usr/bin/env bash
# Perf regression gate: rerun the compiled-scoring and serve-score
# benchmarks, convert them with benchjson, and compare ns/op and allocs/op
# against the committed BENCH_ml.json via benchdiff. Fails on a >25%
# regression (the margin absorbs machine-to-machine and run-to-run noise; a
# real regression in these hot paths is multiples, not percents); the alloc
# axis additionally tolerates two allocs/op of absolute slack so the gate
# tracks the serving path's zero-alloc contract without flaking on noise.
# Used by `make bench-diff` (part of `make check`). Override the margin with
# BENCH_DIFF_THRESHOLD.
set -euo pipefail

cd "$(dirname "$0")/.."

GO="${GO:-go}"
MATCH='ScoreCompiled|ServeScore'
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

echo "bench-diff: running benchmarks matching '$MATCH'..."
"$GO" test -run '^$' -bench "$MATCH" -benchmem . 2>&1 \
	| tee "$WORK/bench.txt" \
	| "$GO" run ./cmd/benchjson > "$WORK/new.json"

"$GO" run ./cmd/benchdiff \
	-old BENCH_ml.json \
	-new "$WORK/new.json" \
	-match "$MATCH" \
	-threshold "${BENCH_DIFF_THRESHOLD:-25}"

#!/usr/bin/env bash
# Perf regression gate: rerun the compiled-scoring, serve-score, WAL-ingest,
# replica-catch-up, drift-monitor and shadow-score benchmarks best-of-3
# (-count=3; benchjson keeps each benchmark's fastest
# run, since noise only ever adds time), convert with benchjson, and compare
# ns/op and allocs/op against the committed BENCH_ml.json via benchdiff.
# Fails on a >50% regression: shared-host neighbor noise measures as ±40%
# multi-minute phases that best-of-3 cannot escape (the three runs land in
# the same phase), while a real regression in these hot paths is multiples,
# not percents — so the margin sits above the noise and below any
# regression worth failing a build for. The alloc axis additionally
# tolerates two allocs/op of absolute slack so the gate tracks the serving
# path's zero-alloc contract without flaking.
# Used by `make bench-diff` (part of `make check`). Override the margin with
# BENCH_DIFF_THRESHOLD and the repeat count with BENCH_DIFF_COUNT.
set -euo pipefail

cd "$(dirname "$0")/.."

GO="${GO:-go}"
MATCH='ScoreCompiled|ServeScore|IngestWAL|ReplicaCatchup|DriftMonitors|ShadowScore'
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

echo "bench-diff: running benchmarks matching '$MATCH' (best of ${BENCH_DIFF_COUNT:-3})..."
"$GO" test -run '^$' -bench "$MATCH" -benchmem -count "${BENCH_DIFF_COUNT:-3}" . 2>&1 \
	| tee "$WORK/bench.txt" \
	| "$GO" run ./cmd/benchjson > "$WORK/new.json"

"$GO" run ./cmd/benchdiff \
	-old BENCH_ml.json \
	-new "$WORK/new.json" \
	-match "$MATCH" \
	-threshold "${BENCH_DIFF_THRESHOLD:-50}"

#!/usr/bin/env bash
# Kill/restart smoke test for the durability subsystem: a nevermindd with a
# write-ahead log is fed half-week batches over HTTP, killed with SIGKILL
# mid-week, restarted over the same WAL directory, fed the rest of the feed,
# and must answer /v1/rank and /v1/score byte-identically to a reference
# daemon that was never killed. -wal.fsync=always makes every acked batch
# durable, so the recovered version must equal the acked version exactly.
# Finishes with `nevermindwal verify` proving the surviving directory
# recovers offline. Used by `make restart-smoke` (part of `make check`).
set -euo pipefail

cd "$(dirname "$0")/.."

GO="${GO:-go}"
WORK="$(mktemp -d)"
WALDIR="$WORK/wal"
PIDS=()

cleanup() {
    for pid in "${PIDS[@]}"; do
        kill -9 "$pid" 2>/dev/null || true
    done
    rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
    echo "restart-smoke: FAIL: $*" >&2
    for log in "$WORK"/*.log; do
        echo "--- $log ---" >&2
        cat "$log" >&2 || true
    done
    exit 1
}

echo "restart-smoke: building nevermindd and nevermindwal"
"$GO" build -o "$WORK/nevermindd" ./cmd/nevermindd
"$GO" build -o "$WORK/nevermindwal" ./cmd/nevermindwal

# Both daemons train the same deterministic model (same -seed/-lines/-rounds),
# so any divergence in answers can only come from store state.
COMMON=(-addr 127.0.0.1:0 -lines 1200 -seed 7 -rounds 20 -pipeline=false)

# boot <log> <extra flags...> — starts a daemon in THIS shell (so `wait`
# can reap it), waits for its listen line, and sets BOOT_PID/BOOT_ADDR.
boot() {
    local log="$1"
    shift
    "$WORK/nevermindd" "${COMMON[@]}" "$@" >"$log" 2>&1 &
    BOOT_PID=$!
    BOOT_ADDR=""
    for _ in $(seq 1 600); do
        BOOT_ADDR="$(sed -n 's/^nevermindd: listening on //p' "$log" | head -n 1)"
        [[ -n "$BOOT_ADDR" ]] && break
        kill -0 "$BOOT_PID" 2>/dev/null || fail "daemon exited before listening (see $log)"
        sleep 0.2
    done
    [[ -n "$BOOT_ADDR" ]] || fail "daemon never reported its listen address (see $log)"
}

# batch <index> — writes the feed's i-th batch to stdout. Half-week test
# batches (lines 0-15 then 16-31) for weeks 38..41, with one ticket batch in
# the middle; deterministic, so both daemons eat identical bytes.
batch() {
    local i="$1"
    if [[ "$i" -eq 4 ]]; then
        printf '{"tickets":[{"id":1,"line":3,"day":260,"category":0},{"id":2,"line":19,"day":262,"category":2}]}'
        return
    fi
    local k="$i"
    [[ "$i" -gt 4 ]] && k=$((i - 1))
    local week=$((38 + k / 2)) lo=$((k % 2 * 16))
    printf '{"tests":['
    local sep=""
    for line in $(seq "$lo" $((lo + 15))); do
        printf '%s{"line":%d,"week":%d,"f":[%d,0.5,0.2%d],"profile":1,"dslam":%d,"usage":0.4}' \
            "$sep" "$line" "$week" $((line % 3)) $((week % 10)) $((line % 8))
        sep=","
    done
    printf ']}'
}
NBATCH=9 # batches 0..8: eight half-weeks + the ticket batch

ingest() { # ingest <base-url> <index>; echoes the acked store version
    local out
    out="$(batch "$2" | curl -fsS -X POST -H 'Content-Type: application/json' \
        --data-binary @- "$1/v1/ingest")" || fail "batch $2 rejected by $1: $out"
    sed -n 's/.*"version":\([0-9]*\).*/\1/p' <<<"$out"
}

# --- Reference daemon: never killed, no WAL. ---
boot "$WORK/reference.log"
REF_PID="$BOOT_PID" REF_ADDR="$BOOT_ADDR"
PIDS+=("$REF_PID")
echo "restart-smoke: reference daemon up at $REF_ADDR"
for i in $(seq 0 $((NBATCH - 1))); do
    ingest "http://$REF_ADDR" "$i" >/dev/null
done

# --- Victim daemon: WAL on, fsync=always, killed mid-week. ---
WALFLAGS=(-wal.dir "$WALDIR" -wal.fsync=always -checkpoint.every 3 -checkpoint.keep 2)
boot "$WORK/victim.log" "${WALFLAGS[@]}"
VIC_PID="$BOOT_PID" VIC_ADDR="$BOOT_ADDR"
PIDS+=("$VIC_PID")
echo "restart-smoke: victim daemon up at $VIC_ADDR (wal: $WALDIR)"

KILL_AFTER=6 # after batch 5: the first half of week 40 is acked, week torn
ACKED=""
for i in $(seq 0 $((KILL_AFTER - 1))); do
    ACKED="$(ingest "http://$VIC_ADDR" "$i")"
done
echo "restart-smoke: killing victim (SIGKILL) at acked version $ACKED"
kill -9 "$VIC_PID"
wait "$VIC_PID" 2>/dev/null || true

# --- Restart over the same directory. ---
boot "$WORK/restart.log" "${WALFLAGS[@]}"
VIC_PID="$BOOT_PID" VIC_ADDR="$BOOT_ADDR"
PIDS+=("$VIC_PID")
RECLINE="$(grep '^nevermindd: recovered to version' "$WORK/restart.log" || true)"
[[ -n "$RECLINE" ]] || fail "restarted daemon printed no recovery line"
echo "restart-smoke: $RECLINE"
RECOVERED="$(sed -n 's/^nevermindd: recovered to version \([0-9]*\) .*/\1/p' "$WORK/restart.log")"
[[ "$RECOVERED" == "$ACKED" ]] \
    || fail "recovered version $RECOVERED != acked version $ACKED (fsync=always lost a batch)"

for i in $(seq "$KILL_AFTER" $((NBATCH - 1))); do
    ingest "http://$VIC_ADDR" "$i" >/dev/null
done

# --- The restarted daemon must be indistinguishable from the reference. ---
REF_VER="$(curl -fsS "http://$REF_ADDR/healthz" | sed -n 's/.*"version":\([0-9]*\).*/\1/p')"
VIC_VER="$(curl -fsS "http://$VIC_ADDR/healthz" | sed -n 's/.*"version":\([0-9]*\).*/\1/p')"
[[ "$REF_VER" == "$VIC_VER" ]] || fail "store versions diverged: reference $REF_VER, restarted $VIC_VER"

RANK_Q="/v1/rank?week=41&n=10"
diff <(curl -fsS "http://$REF_ADDR$RANK_Q") <(curl -fsS "http://$VIC_ADDR$RANK_Q") \
    || fail "/v1/rank diverged between reference and restarted daemon"

SCORE_BODY='{"examples":[{"line":3,"week":41},{"line":17,"week":40},{"line":25,"week":39}]}'
score() {
    curl -fsS -X POST -H 'Content-Type: application/json' \
        --data-binary "$SCORE_BODY" "http://$1/v1/score"
}
diff <(score "$REF_ADDR") <(score "$VIC_ADDR") \
    || fail "/v1/score diverged between reference and restarted daemon"
echo "restart-smoke: rank, score, and version identical at version $VIC_VER"

# One fetch, then grep the file: grep -q quitting early would SIGPIPE curl
# mid-body and trip pipefail.
curl -fsS "http://$VIC_ADDR/metrics" >"$WORK/metrics.txt"
grep -q '^nevermind_wal_records_total' "$WORK/metrics.txt" \
    || fail "/metrics is missing the WAL family"
grep -q '^nevermind_recovery_duration_seconds' "$WORK/metrics.txt" \
    || fail "/metrics is missing recovery stats"

# --- Clean shutdown (final checkpoint), then offline verification. ---
kill -TERM "$VIC_PID"
DEADLINE=$((SECONDS + 30))
while kill -0 "$VIC_PID" 2>/dev/null; do
    [[ "$SECONDS" -lt "$DEADLINE" ]] || fail "restarted daemon did not exit within 30s of SIGTERM"
    sleep 0.2
done
wait "$VIC_PID" || fail "restarted daemon exited non-zero"

"$WORK/nevermindwal" inspect "$WALDIR" || fail "nevermindwal inspect errored"
VERIFY="$("$WORK/nevermindwal" verify "$WALDIR")" || fail "nevermindwal verify failed"
echo "$VERIFY"
grep -q "OK — recovers to version $VIC_VER" <<<"$VERIFY" \
    || fail "verify did not confirm version $VIC_VER: $VERIFY"

kill -TERM "$REF_PID"
wait "$REF_PID" 2>/dev/null || true

echo "restart-smoke: PASS"

#!/usr/bin/env bash
# Chaos-soak harness for the nevermindd serving stack.
#
# Two layers:
#   1. The long-mode Go soak (-tags soak): N weeks of the pipeline under
#      five independent fault seeds, asserting convergence to a clean
#      replay (skipped with --smoke).
#   2. A daemon-level run: boot nevermindd with every chaos fault mode
#      armed and the weekly pipeline on, then assert from the outside that
#      the daemon rides the fault storm out — every week completes exactly
#      once, /healthz answers throughout, the final ranking serves, and
#      SIGTERM still drains cleanly.
#
# `make chaos-smoke` runs `chaos_soak.sh --smoke` (few weeks, part of
# `make check`); `make chaos-soak` runs the full version.
set -euo pipefail

cd "$(dirname "$0")/.."

GO="${GO:-go}"
MODE=full
[[ "${1:-}" == "--smoke" ]] && MODE=smoke

WORK="$(mktemp -d)"
LOG="$WORK/nevermindd.log"
PID=""

cleanup() {
    if [[ -n "$PID" ]] && kill -0 "$PID" 2>/dev/null; then
        kill -9 "$PID" 2>/dev/null || true
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
    echo "chaos-soak: FAIL: $*" >&2
    echo "--- daemon log ---" >&2
    cat "$LOG" >&2 || true
    exit 1
}

if [[ "$MODE" == "full" ]]; then
    echo "chaos-soak: running long-mode Go soak (-tags soak)"
    "$GO" test -tags soak -run TestChaosSoakLong -count=1 ./internal/chaos/ \
        || fail "long-mode Go soak failed"
fi

echo "chaos-soak: building nevermindd"
"$GO" build -o "$WORK/nevermindd" ./cmd/nevermindd

START_WEEK=40
END_WEEK=43
[[ "$MODE" == "full" ]] && END_WEEK=51

# Every fault mode armed at double-digit rates; tight backoffs so the run
# stays quick. The schedule is seeded, so this run is reproducible.
"$WORK/nevermindd" -addr 127.0.0.1:0 -lines 1200 -seed 7 -rounds 20 \
    -start-week "$START_WEEK" -end-week "$END_WEEK" \
    -retry.attempts 20 -retry.base 1ms -retry.max 20ms \
    -chaos.seed 7 \
    -chaos.source-error 0.25 -chaos.partial-batch 0.20 -chaos.malformed-batch 0.20 \
    -chaos.ingest-error 0.20 -chaos.snapshot-error 0.25 -chaos.reload-error 0.50 \
    -chaos.slow-shard 0.30 -chaos.shard-delay 5ms \
    -chaos.slow-request 0.20 -chaos.request-delay 5ms \
    >"$LOG" 2>&1 &
PID=$!

ADDR=""
for _ in $(seq 1 600); do
    ADDR="$(sed -n 's/^nevermindd: listening on //p' "$LOG" | head -n 1)"
    [[ -n "$ADDR" ]] && break
    kill -0 "$PID" 2>/dev/null || fail "daemon exited before listening"
    sleep 0.2
done
[[ -n "$ADDR" ]] || fail "daemon never reported its listen address"
BASE="http://$ADDR"

grep -q 'CHAOS armed' "$LOG" || fail "chaos layer did not arm"
echo "chaos-soak: daemon up at $ADDR with chaos armed"

# The pipeline rides the fault storm while we hammer the health check: it
# must answer ok on every poll, faults or not.
DONE=""
for _ in $(seq 1 600); do
    curl -fsS "$BASE/healthz" | grep -q '"status":"ok"' \
        || fail "/healthz failed mid-storm"
    if grep -q 'pipeline done' "$LOG"; then
        DONE=yes
        break
    fi
    kill -0 "$PID" 2>/dev/null || fail "daemon died mid-pipeline"
    sleep 0.2
done
[[ -n "$DONE" ]] || fail "pipeline did not finish in time"

# Exactly-once dispatch: every week logged once, no week missing or doubled.
for w in $(seq "$START_WEEK" "$END_WEEK"); do
    N=$(grep -c "nevermindd: week $w:" "$LOG" || true)
    [[ "$N" -eq 1 ]] || fail "week $w completed $N times, want exactly 1"
done
echo "chaos-soak: all weeks $START_WEEK-$END_WEEK completed exactly once"

# The storm was real: the pipeline had to back off at least once.
grep -q 'backing off' "$LOG" || fail "no retries logged; fault injection seems inert"
RETRIES=$(grep -c 'backing off' "$LOG" || true)
echo "chaos-soak: pipeline retried $RETRIES times"

# The data plane still serves after the storm.
RANK="$(curl -fsS "$BASE/v1/rank?week=$END_WEEK&n=5")" \
    || fail "/v1/rank errored after the storm"
GOT=$(grep -o '"line":' <<<"$RANK" | wc -l)
[[ "$GOT" -eq 5 ]] || fail "/v1/rank returned $GOT predictions, want 5: $RANK"

# The degradation gauges are exposed.
curl -fsS "$BASE/debug/vars" | grep -q '"degraded"' \
    || fail "/debug/vars is missing the degraded block"

kill -TERM "$PID"
DEADLINE=$((SECONDS + 30))
while kill -0 "$PID" 2>/dev/null; do
    [[ "$SECONDS" -lt "$DEADLINE" ]] || fail "daemon did not exit within 30s of SIGTERM"
    sleep 0.2
done
wait "$PID" || fail "daemon exited non-zero"
grep -q 'drained' "$LOG" || fail "daemon log has no drain message"
PID=""

echo "chaos-soak: PASS ($MODE)"

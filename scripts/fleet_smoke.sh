#!/usr/bin/env bash
# End-to-end smoke test for the sharded fleet: boot two nevermindd shards
# and a nevermindgw gateway in front of them, plus a bare single daemon as
# the reference, ingest the same batch into both sides over HTTP, and
# require the gateway's /v1/rank to equal the single node's modulo the
# version field (the fleet version is the sum of per-shard ingest clocks).
# Used by `make fleet-smoke` (part of `make check`); needs curl and Go.
set -euo pipefail

cd "$(dirname "$0")/.."

GO="${GO:-go}"
WORK="$(mktemp -d)"
PIDS=()

cleanup() {
    for p in "${PIDS[@]-}"; do
        kill -9 "$p" 2>/dev/null || true
    done
    rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
    echo "fleet-smoke: FAIL: $*" >&2
    for f in "$WORK"/*.log; do
        echo "--- $(basename "$f") ---" >&2
        cat "$f" >&2 || true
    done
    exit 1
}

echo "fleet-smoke: building nevermindd and nevermindgw"
"$GO" build -o "$WORK/nevermindd" ./cmd/nevermindd
"$GO" build -o "$WORK/nevermindgw" ./cmd/nevermindgw

# All daemons train the same startup model (same lines/seed/rounds), so the
# only difference between the fleet and the single node is the sharding.
DAEMON_FLAGS=(-addr 127.0.0.1:0 -lines 1200 -seed 7 -rounds 20 -pipeline=false)

start_daemon() { # $1 = log name, rest = extra flags
    local log="$WORK/$1.log"
    shift
    "$WORK/nevermindd" "${DAEMON_FLAGS[@]}" "$@" >"$log" 2>&1 &
    PIDS+=($!)
}

# daemon_addr <log name> <pid>: wait for the "listening on" line.
daemon_addr() {
    local log="$WORK/$1.log" pid=$2 addr=""
    for _ in $(seq 1 600); do
        addr="$(sed -n 's/^nevermindd: listening on //p' "$log" | head -n 1)"
        [[ -n "$addr" ]] && break
        kill -0 "$pid" 2>/dev/null || fail "$1 exited before listening"
        sleep 0.2
    done
    [[ -n "$addr" ]] || fail "$1 never reported its listen address"
    echo "$addr"
}

start_daemon single
SINGLE_PID=${PIDS[-1]}
start_daemon shard-0 -fleet.id shard-0 -fleet.peers shard-0,shard-1
S0_PID=${PIDS[-1]}
start_daemon shard-1 -fleet.id shard-1 -fleet.peers shard-0,shard-1
S1_PID=${PIDS[-1]}

SINGLE="$(daemon_addr single "$SINGLE_PID")"
S0="$(daemon_addr shard-0 "$S0_PID")"
S1="$(daemon_addr shard-1 "$S1_PID")"
echo "fleet-smoke: single at $SINGLE, shards at $S0 / $S1"

"$WORK/nevermindgw" -addr 127.0.0.1:0 \
    -shard "shard-0=http://$S0" -shard "shard-1=http://$S1" \
    >"$WORK/gateway.log" 2>&1 &
GW_PID=$!
PIDS+=("$GW_PID")

GW=""
for _ in $(seq 1 100); do
    GW="$(sed -n 's/^nevermindgw: listening on \([^ ]*\).*/\1/p' "$WORK/gateway.log" | head -n 1)"
    [[ -n "$GW" ]] && break
    kill -0 "$GW_PID" 2>/dev/null || fail "gateway exited before listening"
    sleep 0.2
done
[[ -n "$GW" ]] || fail "gateway never reported its listen address"
echo "fleet-smoke: gateway at $GW"

# Wait out the first health-probe round: until it completes the gateway
# reports the fleet degraded.
READY=""
for _ in $(seq 1 100); do
    H="$(curl -fsS "http://$GW/healthz" || true)"
    M="$(curl -fsS "http://$GW/metrics" || true)"
    if grep -q '"status":"ok"' <<<"$H" && grep -q '^fleet_degraded_shards 0$' <<<"$M"; then
        READY=1
        break
    fi
    sleep 0.2
done
[[ -n "$READY" ]] || fail "gateway never reported both shards healthy (healthz: $H)"

# One simulated week of tests for 32 lines (plus three weeks of history so
# scoring has lookback), and one customer ticket.
BATCH="$WORK/batch.json"
{
    printf '{"tests":['
    sep=""
    for week in 38 39 40 41; do
        for line in $(seq 0 31); do
            printf '%s{"line":%d,"week":%d,"f":[1,0.5,0.25],"profile":1,"dslam":2,"usage":0.4}' \
                "$sep" "$line" "$week"
            sep=","
        done
    done
    printf '],"tickets":[{"id":1,"line":3,"day":260,"category":0}]}'
} >"$BATCH"

ingest() { # $1 = host:port
    curl -fsS -X POST -H 'Content-Type: application/json' \
        --data-binary @"$BATCH" "http://$1/v1/ingest"
}
IN_SINGLE="$(ingest "$SINGLE")" || fail "single-node ingest rejected the batch"
IN_GW="$(ingest "$GW")" || fail "gateway ingest rejected the batch"
echo "fleet-smoke: single ingest -> $IN_SINGLE"
echo "fleet-smoke: fleet ingest  -> $IN_GW"
grep -q '"ingested_tests":128' <<<"$IN_SINGLE" || fail "single ingest count wrong"
grep -q '"ingested_tests":128' <<<"$IN_GW" || fail "fleet ingest count wrong: the ring partition dropped records"

# The core contract: the fleet-wide top-N equals the single node's, bit for
# bit, modulo the version field (single: one ingest clock; fleet: the sum of
# the shards').
strip_version() { sed 's/"version":[0-9]*/"version":0/'; }
RANK_SINGLE="$(curl -fsS "http://$SINGLE/v1/rank?week=41&n=10" | strip_version)" \
    || fail "single-node /v1/rank errored"
RANK_GW="$(curl -fsS "http://$GW/v1/rank?week=41&n=10" | strip_version)" \
    || fail "gateway /v1/rank errored"
if [[ "$RANK_GW" != "$RANK_SINGLE" ]]; then
    echo "single: $RANK_SINGLE" >&2
    echo "fleet:  $RANK_GW" >&2
    fail "gateway rank diverged from single node"
fi
echo "fleet-smoke: fleet rank matches single node"

# The per-line API routes to the owning shard and answers like the single.
SCORE_SINGLE="$(curl -fsS -X POST --data '{"examples":[{"line":3,"week":41}]}' \
    "http://$SINGLE/v1/score" | strip_version)" || fail "single /v1/score errored"
SCORE_GW="$(curl -fsS -X POST --data '{"examples":[{"line":3,"week":41}]}' \
    "http://$GW/v1/score" | strip_version)" || fail "gateway /v1/score errored"
[[ "$SCORE_GW" == "$SCORE_SINGLE" ]] \
    || fail "gateway score diverged: single=$SCORE_SINGLE fleet=$SCORE_GW"
echo "fleet-smoke: routed score matches single node"

# Both shards must actually hold an arc: each ingested some of the batch.
for log in shard-0 shard-1; do
    ADDR_VAR="$([ "$log" = shard-0 ] && echo "$S0" || echo "$S1")"
    LINES="$(curl -fsS "http://$ADDR_VAR/healthz" | grep -o '"lines":[0-9]*' | cut -d: -f2)"
    [[ -n "$LINES" && "$LINES" -gt 0 ]] || fail "$log holds no lines; partitioning is broken"
    [[ "$LINES" -lt 32 ]] || fail "$log holds all $LINES lines; ownership filter is off"
    echo "fleet-smoke: $log owns $LINES of 32 lines"
done

# Clean drain: gateway first, then the daemons.
kill -TERM "$GW_PID"
DEADLINE=$((SECONDS + 30))
while kill -0 "$GW_PID" 2>/dev/null; do
    [[ "$SECONDS" -lt "$DEADLINE" ]] || fail "gateway did not exit within 30s of SIGTERM"
    sleep 0.2
done
wait "$GW_PID" || fail "gateway exited non-zero"
grep -q 'drained' "$WORK/gateway.log" || fail "gateway log has no drain message"

for pid in "$SINGLE_PID" "$S0_PID" "$S1_PID"; do
    kill -TERM "$pid"
done
for pid in "$SINGLE_PID" "$S0_PID" "$S1_PID"; do
    DEADLINE=$((SECONDS + 30))
    while kill -0 "$pid" 2>/dev/null; do
        [[ "$SECONDS" -lt "$DEADLINE" ]] || fail "daemon $pid did not exit within 30s of SIGTERM"
        sleep 0.2
    done
    wait "$pid" || fail "daemon $pid exited non-zero"
done
PIDS=()

echo "fleet-smoke: PASS"

#!/usr/bin/env bash
# Replication smoke test over real HTTP: a leader nevermindd with the WAL on,
# a follower running -replica.of against it, and a gateway routing reads to
# the replica with the leader as fallback. The replica bootstraps mid-stream,
# converges, and serves /v1/rank and /v1/score byte-identically to the
# leader; SIGKILLing it mid-feed must leave every gateway read answering
# (fallback to the leader), and a restarted replica must converge again.
# Used by `make replica-smoke` (part of `make check`).
set -euo pipefail

cd "$(dirname "$0")/.."

GO="${GO:-go}"
WORK="$(mktemp -d)"
WALDIR="$WORK/wal"
PIDS=()

cleanup() {
    for pid in "${PIDS[@]}"; do
        kill -9 "$pid" 2>/dev/null || true
    done
    rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
    echo "replica-smoke: FAIL: $*" >&2
    for log in "$WORK"/*.log; do
        echo "--- $log ---" >&2
        cat "$log" >&2 || true
    done
    exit 1
}

echo "replica-smoke: building nevermindd and nevermindgw"
"$GO" build -o "$WORK/nevermindd" ./cmd/nevermindd
"$GO" build -o "$WORK/nevermindgw" ./cmd/nevermindgw

# Leader and replica train the same deterministic model (same -seed/-lines/
# -rounds), so any divergence in answers can only come from store state.
COMMON=(-addr 127.0.0.1:0 -lines 1200 -seed 7 -rounds 20 -pipeline=false)

# boot <log> <extra flags...> — starts a daemon in THIS shell, waits for its
# listen line, and sets BOOT_PID/BOOT_ADDR.
boot() {
    local log="$1"
    shift
    "$WORK/nevermindd" "${COMMON[@]}" "$@" >"$log" 2>&1 &
    BOOT_PID=$!
    BOOT_ADDR=""
    for _ in $(seq 1 600); do
        BOOT_ADDR="$(sed -n 's/^nevermindd: listening on //p' "$log" | head -n 1)"
        [[ -n "$BOOT_ADDR" ]] && break
        kill -0 "$BOOT_PID" 2>/dev/null || fail "daemon exited before listening (see $log)"
        sleep 0.2
    done
    [[ -n "$BOOT_ADDR" ]] || fail "daemon never reported its listen address (see $log)"
}

# Deterministic feed, same shape as the restart smoke: half-week test batches
# for weeks 38..41 plus one ticket batch.
batch() {
    local i="$1"
    if [[ "$i" -eq 4 ]]; then
        printf '{"tickets":[{"id":1,"line":3,"day":260,"category":0},{"id":2,"line":19,"day":262,"category":2}]}'
        return
    fi
    local k="$i"
    [[ "$i" -gt 4 ]] && k=$((i - 1))
    local week=$((38 + k / 2)) lo=$((k % 2 * 16))
    printf '{"tests":['
    local sep=""
    for line in $(seq "$lo" $((lo + 15))); do
        printf '%s{"line":%d,"week":%d,"f":[%d,0.5,0.2%d],"profile":1,"dslam":%d,"usage":0.4}' \
            "$sep" "$line" "$week" $((line % 3)) $((week % 10)) $((line % 8))
        sep=","
    done
    printf ']}'
}
NBATCH=9

ingest() { # ingest <base-url> <index>
    batch "$2" | curl -fsS -X POST -H 'Content-Type: application/json' \
        --data-binary @- "$1/v1/ingest" >/dev/null || fail "batch $2 rejected by $1"
}

version_of() { # version_of <addr>
    curl -fsS "http://$1/healthz" | sed -n 's/.*"version":\([0-9]*\).*/\1/p'
}

# wait_converged <replica-addr> <leader-addr>
wait_converged() {
    local want
    want="$(version_of "$2")"
    for _ in $(seq 1 150); do
        [[ "$(version_of "$1" || true)" == "$want" ]] && return 0
        sleep 0.2
    done
    fail "replica at $(version_of "$1" || echo '?') never converged to leader version $want"
}

# --- Leader: WAL on, checkpoints on, replication source mounted. ---
boot "$WORK/leader.log" -wal.dir "$WALDIR" -wal.fsync=always -checkpoint.every 3 -checkpoint.keep 2
LEADER_PID="$BOOT_PID" LEADER_ADDR="$BOOT_ADDR"
PIDS+=("$LEADER_PID")
grep -q '^nevermindd: replication source mounted' "$WORK/leader.log" \
    || fail "leader did not mount the replication source"
echo "replica-smoke: leader up at $LEADER_ADDR (wal: $WALDIR)"

# Half the feed lands BEFORE the replica exists: its bootstrap is a
# checkpoint download plus a WAL tail, not a from-zero stream.
for i in 0 1 2 3; do ingest "http://$LEADER_ADDR" "$i"; done

# --- Replica: read-only follower of the leader. ---
REPLFLAGS=(-replica.of "http://$LEADER_ADDR" -replica.poll 200ms -replica.id smoke-replica)
boot "$WORK/replica.log" "${REPLFLAGS[@]}"
REPL_PID="$BOOT_PID" REPL_ADDR="$BOOT_ADDR"
PIDS+=("$REPL_PID")
BOOTLINE="$(grep '^nevermindd: replica bootstrapped to version' "$WORK/replica.log" || true)"
[[ -n "$BOOTLINE" ]] || fail "replica printed no bootstrap line"
echo "replica-smoke: $BOOTLINE"
wait_converged "$REPL_ADDR" "$LEADER_ADDR"

# A write against the replica must be refused, naming the leader.
INGEST_CODE="$(batch 4 | curl -s -o "$WORK/ro.json" -w '%{http_code}' -X POST \
    -H 'Content-Type: application/json' --data-binary @- "http://$REPL_ADDR/v1/ingest")"
[[ "$INGEST_CODE" == "403" ]] || fail "replica ingest answered $INGEST_CODE, want 403"
grep -q 'read-only' "$WORK/ro.json" || fail "replica 403 does not say read-only"

# --- Gateway: reads prefer the replica, ingest goes to the leader. ---
"$WORK/nevermindgw" -addr 127.0.0.1:0 \
    -shard "s0=http://$LEADER_ADDR" -replica "s0=http://$REPL_ADDR" \
    -probe 200ms >"$WORK/gateway.log" 2>&1 &
GW_PID=$!
PIDS+=("$GW_PID")
GW_ADDR=""
for _ in $(seq 1 100); do
    GW_ADDR="$(sed -n 's/^nevermindgw: listening on \([^ ]*\).*/\1/p' "$WORK/gateway.log" | head -n 1)"
    [[ -n "$GW_ADDR" ]] && break
    kill -0 "$GW_PID" 2>/dev/null || fail "gateway exited before listening"
    sleep 0.2
done
[[ -n "$GW_ADDR" ]] || fail "gateway never reported its listen address"
echo "replica-smoke: gateway up at $GW_ADDR"
sleep 0.5 # one probe tick: the replica starts pessimistic-down until probed

# Gateway reads flow and land on the replica.
for _ in $(seq 1 10); do
    curl -fsS "http://$GW_ADDR/v1/rank?week=39&n=5" >/dev/null || fail "gateway rank failed"
done
curl -fsS "http://$GW_ADDR/metrics" >"$WORK/gwmetrics.txt"
READS="$(sed -n 's/^fleet_replica_reads_total{replica="s0-r0"} //p' "$WORK/gwmetrics.txt")"
[[ -n "$READS" && "$READS" -gt 0 ]] || fail "no gateway reads reached the replica (got '${READS:-}')"
echo "replica-smoke: $READS gateway reads served by the replica"

# --- Kill the replica mid-feed: reads must keep answering via the leader. ---
echo "replica-smoke: killing replica (SIGKILL) mid-feed"
kill -9 "$REPL_PID"
wait "$REPL_PID" 2>/dev/null || true
for i in 4 5 6; do
    ingest "http://$GW_ADDR" "$i"
    curl -fsS "http://$GW_ADDR/v1/rank?week=40&n=5" >/dev/null \
        || fail "gateway rank failed with the replica dead (no leader fallback)"
done
sleep 0.5 # let a probe tick observe the corpse
curl -fsS "http://$GW_ADDR/metrics" >"$WORK/gwmetrics2.txt"
grep -q '^fleet_replica_up{replica="s0-r0"} 0' "$WORK/gwmetrics2.txt" \
    || fail "gateway still thinks the dead replica is up"

# --- Restart the replica: fresh bootstrap, must converge again. ---
boot "$WORK/replica2.log" "${REPLFLAGS[@]}"
REPL_PID="$BOOT_PID" REPL_ADDR="$BOOT_ADDR"
PIDS+=("$REPL_PID")
for i in 7 8; do ingest "http://$GW_ADDR" "$i"; done
wait_converged "$REPL_ADDR" "$LEADER_ADDR"
echo "replica-smoke: restarted replica converged at version $(version_of "$REPL_ADDR")"

# --- Byte identity at the converged version. ---
RANK_Q="/v1/rank?week=41&n=10"
diff <(curl -fsS "http://$LEADER_ADDR$RANK_Q") <(curl -fsS "http://$REPL_ADDR$RANK_Q") \
    || fail "/v1/rank diverged between leader and replica"

SCORE_BODY='{"examples":[{"line":3,"week":41},{"line":17,"week":40},{"line":25,"week":39}]}'
score() {
    curl -fsS -X POST -H 'Content-Type: application/json' \
        --data-binary "$SCORE_BODY" "http://$1/v1/score"
}
diff <(score "$LEADER_ADDR") <(score "$REPL_ADDR") \
    || fail "/v1/score diverged between leader and replica"

curl -fsS -o /dev/null -D "$WORK/score-headers.txt" -X POST \
    -H 'Content-Type: application/json' --data-binary "$SCORE_BODY" \
    "http://$REPL_ADDR/v1/score" || fail "replica score for the lag header failed"
LAG="$(tr -d '\r' <"$WORK/score-headers.txt" | sed -n 's/^X-Replica-Lag: //p')"
[[ "$LAG" == "0" ]] || fail "converged replica reports X-Replica-Lag '$LAG', want 0"
echo "replica-smoke: rank and score byte-identical, replica lag 0"

# Replication metrics on both sides.
curl -fsS "http://$REPL_ADDR/metrics" >"$WORK/replmetrics.txt"
grep -q '^nevermind_replica_lag_versions' "$WORK/replmetrics.txt" \
    || fail "replica /metrics is missing the lag gauge"
grep -q '^nevermind_replica_applied_total' "$WORK/replmetrics.txt" \
    || fail "replica /metrics is missing the applied counter"
curl -fsS "http://$LEADER_ADDR/metrics" >"$WORK/leadermetrics.txt"
grep -q '^nevermind_repl_streams_total' "$WORK/leadermetrics.txt" \
    || fail "leader /metrics is missing the stream counter"

# --- Clean shutdown all around. ---
for pid in "$GW_PID" "$REPL_PID" "$LEADER_PID"; do
    kill -TERM "$pid"
    DEADLINE=$((SECONDS + 30))
    while kill -0 "$pid" 2>/dev/null; do
        [[ "$SECONDS" -lt "$DEADLINE" ]] || fail "pid $pid did not exit within 30s of SIGTERM"
        sleep 0.2
    done
    wait "$pid" 2>/dev/null || true
done

echo "replica-smoke: PASS"

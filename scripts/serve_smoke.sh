#!/usr/bin/env bash
# End-to-end smoke test for the nevermindd daemon: boot on a random port,
# ingest a small batch over HTTP, check /healthz and /v1/rank, then make
# sure SIGTERM drains cleanly. Used by `make serve-smoke` (part of `make
# check`); needs only curl and a Go toolchain.
set -euo pipefail

cd "$(dirname "$0")/.."

GO="${GO:-go}"
WORK="$(mktemp -d)"
LOG="$WORK/nevermindd.log"
PID=""

cleanup() {
    if [[ -n "$PID" ]] && kill -0 "$PID" 2>/dev/null; then
        kill -9 "$PID" 2>/dev/null || true
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
    echo "serve-smoke: FAIL: $*" >&2
    echo "--- daemon log ---" >&2
    cat "$LOG" >&2 || true
    exit 1
}

echo "serve-smoke: building nevermindd"
"$GO" build -o "$WORK/nevermindd" ./cmd/nevermindd

# Small population and few boosting rounds: the daemon trains its model at
# startup, and the smoke only cares that the serving path works.
"$WORK/nevermindd" -addr 127.0.0.1:0 -lines 1200 -seed 7 -rounds 20 \
    -pipeline=false >"$LOG" 2>&1 &
PID=$!

# The daemon prints "nevermindd: listening on HOST:PORT" once it is up;
# training the startup model takes a few seconds.
ADDR=""
for _ in $(seq 1 600); do
    ADDR="$(sed -n 's/^nevermindd: listening on //p' "$LOG" | head -n 1)"
    [[ -n "$ADDR" ]] && break
    kill -0 "$PID" 2>/dev/null || fail "daemon exited before listening"
    sleep 0.2
done
[[ -n "$ADDR" ]] || fail "daemon never reported its listen address"
echo "serve-smoke: daemon up at $ADDR"

BASE="http://$ADDR"

curl -fsS "$BASE/healthz" | grep -q '"status":"ok"' \
    || fail "/healthz did not answer ok"

# Hand-built batch: 32 lines, four weeks of tests each, plus one ticket.
BATCH="$WORK/batch.json"
{
    printf '{"tests":['
    sep=""
    for week in 38 39 40 41; do
        for line in $(seq 0 31); do
            printf '%s{"line":%d,"week":%d,"f":[1,0.5,0.25],"profile":1,"dslam":2,"usage":0.4}' \
                "$sep" "$line" "$week"
            sep=","
        done
    done
    printf '],"tickets":[{"id":1,"line":3,"day":260,"category":0}]}'
} >"$BATCH"

INGEST="$(curl -fsS -X POST -H 'Content-Type: application/json' \
    --data-binary @"$BATCH" "$BASE/v1/ingest")" \
    || fail "/v1/ingest rejected the batch"
echo "serve-smoke: ingest -> $INGEST"
echo "$INGEST" | grep -q '"ingested_tests":128' \
    || fail "ingest did not accept 128 tests: $INGEST"

RANK="$(curl -fsS "$BASE/v1/rank?week=41&n=5")" \
    || fail "/v1/rank errored"
GOT=$(grep -o '"line":' <<<"$RANK" | wc -l)
[[ "$GOT" -eq 5 ]] || fail "/v1/rank returned $GOT predictions, want 5: $RANK"
echo "serve-smoke: rank returned 5 predictions"

curl -fsS "$BASE/debug/vars" | grep -q '"requests"' \
    || fail "/debug/vars is missing request counters"

kill -TERM "$PID"
DEADLINE=$((SECONDS + 30))
while kill -0 "$PID" 2>/dev/null; do
    [[ "$SECONDS" -lt "$DEADLINE" ]] || fail "daemon did not exit within 30s of SIGTERM"
    sleep 0.2
done
wait "$PID" || fail "daemon exited non-zero"
grep -q 'drained' "$LOG" || fail "daemon log has no drain message"
PID=""

echo "serve-smoke: PASS"

#!/usr/bin/env bash
# End-to-end smoke test of the drift/retraining loop: boot nevermindd with
# a firmware drift scenario and the drift loop armed, let the weekly
# pipeline run the simulated horizon back to back, then assert over HTTP
# that the monitors tripped, a challenger was retrained and shadow-scored,
# and /v1/drift + /healthz surface the loop's state. Used by `make
# drift-smoke` (part of `make check`); needs only curl and a Go toolchain.
set -euo pipefail

cd "$(dirname "$0")/.."

GO="${GO:-go}"
WORK="$(mktemp -d)"
LOG="$WORK/nevermindd.log"
PID=""

cleanup() {
    if [[ -n "$PID" ]] && kill -0 "$PID" 2>/dev/null; then
        kill -9 "$PID" 2>/dev/null || true
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
    echo "drift-smoke: FAIL: $*" >&2
    echo "--- daemon log ---" >&2
    cat "$LOG" >&2 || true
    exit 1
}

echo "drift-smoke: building nevermindd"
"$GO" build -o "$WORK/nevermindd" ./cmd/nevermindd

# Small population, few boosting rounds: the daemon trains its boot model
# and every challenger at this size, and the smoke cares about the loop's
# trajectory, not model quality. The firmware scenario lands mid-horizon
# so the PSI monitor has clean baseline weeks first; the thresholds match
# the in-process soak's operating point (PSI is the first responder at
# this fixture scale, the AP floor is parked out of the noise).
"$WORK/nevermindd" -addr 127.0.0.1:0 -lines 700 -seed 11 -rounds 12 \
    -start-week 30 -end-week 51 -scenario firmware:week=38 \
    -drift -drift.thresholds psi-ceil=0.2,ap-floor=0.01 \
    -drift.train-weeks 8 >"$LOG" 2>&1 &
PID=$!

ADDR=""
for _ in $(seq 1 600); do
    ADDR="$(sed -n 's/^nevermindd: listening on //p' "$LOG" | head -n 1)"
    [[ -n "$ADDR" ]] && break
    kill -0 "$PID" 2>/dev/null || fail "daemon exited before listening"
    sleep 0.2
done
[[ -n "$ADDR" ]] || fail "daemon never reported its listen address"
echo "drift-smoke: daemon up at $ADDR"

BASE="http://$ADDR"

grep -q '^nevermindd: scenario armed: firmware' "$LOG" \
    || fail "scenario was not armed"
grep -q '^nevermindd: drift loop armed' "$LOG" \
    || fail "drift loop was not armed"

# The pipeline runs the 22 weeks back to back (tick=0); wait for it to
# finish, then interrogate the loop's state over the API.
for _ in $(seq 1 600); do
    grep -q '^nevermindd: pipeline done' "$LOG" && break
    kill -0 "$PID" 2>/dev/null || fail "daemon died mid-pipeline"
    sleep 0.2
done
grep -q '^nevermindd: pipeline done' "$LOG" \
    || fail "pipeline never finished within the wait budget"
echo "drift-smoke: pipeline finished"

# The loop's own log tells the story: a trip, a retrain, shadow scoring.
grep -q 'drift: week [0-9]* tripped' "$LOG" \
    || fail "drift monitors never tripped under the firmware scenario"
grep -q 'drift: week [0-9]* retrained challenger-' "$LOG" \
    || fail "no challenger was retrained after the trip"
grep -q 'drift: week [0-9]* shadow: champion AP' "$LOG" \
    || fail "the challenger was never shadow-scored"

DRIFT="$(curl -fsS "$BASE/v1/drift")" || fail "/v1/drift errored"
echo "$DRIFT" | grep -q '"trips_total":' || fail "/v1/drift has no status: $DRIFT"
echo "$DRIFT" | grep -q '"trips_total":0' && fail "/v1/drift reports zero trips: $DRIFT"
echo "$DRIFT" | grep -q '"retrains":0' && fail "/v1/drift reports zero retrains: $DRIFT"
echo "drift-smoke: /v1/drift reports trips + retrains"

# Filtered view: last five weeks with one feature's PSI series.
FILTERED="$(curl -fsS "$BASE/v1/drift?weeks=5&feature=upnmr")" \
    || fail "/v1/drift?weeks=5&feature=upnmr errored"
echo "$FILTERED" | grep -q '"feature_psi":\[{"week":' \
    || fail "/v1/drift?weeks=5&feature=upnmr has no PSI series: $FILTERED"

HEALTH="$(curl -fsS "$BASE/healthz")" || fail "/healthz errored"
echo "$HEALTH" | grep -q '"status":"ok"' || fail "/healthz not ok: $HEALTH"
echo "$HEALTH" | grep -q '"drift":{' || fail "/healthz has no drift block: $HEALTH"
echo "$HEALTH" | grep -q '"model_id":' || fail "/healthz has no model_id: $HEALTH"

# If the timeline promoted a challenger, the serving model id must agree
# between the log and /healthz.
if grep -q 'drift: week [0-9]* promoted challenger-' "$LOG"; then
    PROMOTED="$(sed -n 's/^nevermindd: drift: week [0-9]* promoted \(challenger-[0-9a-zA-Z-]*\) .*/\1/p' "$LOG" | tail -n 1)"
    echo "$HEALTH" | grep -q "\"model_id\":\"$PROMOTED\"" \
        || fail "/healthz model_id does not name promoted $PROMOTED: $HEALTH"
    echo "drift-smoke: promotion observed ($PROMOTED serving)"
fi

METRICS="$(curl -fsS "$BASE/metrics")" || fail "/metrics errored"
echo "$METRICS" | grep -q 'nevermind_drift_trips_total' \
    || fail "/metrics is missing drift counters"

kill -TERM "$PID"
DEADLINE=$((SECONDS + 30))
while kill -0 "$PID" 2>/dev/null; do
    [[ "$SECONDS" -lt "$DEADLINE" ]] || fail "daemon did not exit within 30s of SIGTERM"
    sleep 0.2
done
wait "$PID" || fail "daemon exited non-zero"
grep -q 'drained' "$LOG" || fail "daemon log has no drain message"
PID=""

echo "drift-smoke: PASS"

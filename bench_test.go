package nevermind

// One benchmark per table and figure of the paper's evaluation, each
// regenerating its artifact at reduced scale and reporting the headline
// value as a custom metric, plus ablation benches for the design choices
// called out in DESIGN.md. Full-scale renderings come from
// `go run ./cmd/experiments`.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"nevermind/internal/core"
	"nevermind/internal/data"
	"nevermind/internal/drift"
	"nevermind/internal/dsl"
	"nevermind/internal/eval"
	"nevermind/internal/faults"
	"nevermind/internal/features"
	"nevermind/internal/fleet"
	"nevermind/internal/ml"
	"nevermind/internal/replica"
	"nevermind/internal/rng"
	"nevermind/internal/serve"
	"nevermind/internal/sim"
	"nevermind/internal/wal"
)

// benchCtx builds one shared small-scale experiment context.
var (
	benchOnce sync.Once
	benchC    *eval.Context
	benchErr  error
)

func benchContext(b *testing.B) *eval.Context {
	b.Helper()
	benchOnce.Do(func() {
		benchC, benchErr = eval.NewContext(eval.Config{
			Lines: 4000, Seed: 17, Rounds: 80, LocRounds: 40,
			MaxSelectExamples: 15000, TestWeeks: []int{43, 44},
		})
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchC
}

func BenchmarkSimulateYear(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(sim.DefaultConfig(4000, uint64(i+1))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4 regenerates the per-feature AP(N) distributions (Fig. 4) and
// reports how many product features beat the selection threshold.
func BenchmarkFig4(b *testing.B) {
	ctx := benchContext(b)
	for i := 0; i < b.N; i++ {
		res, err := ctx.RunFig4()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.ProductKept), "products-kept")
		b.ReportMetric(topScore(res.HistCust), "best-histcust-AP")
	}
}

func topScore(xs []eval.NamedScore) float64 {
	best := 0.0
	for _, x := range xs {
		if x.Score > best {
			best = x.Score
		}
	}
	return best
}

// BenchmarkFig6 regenerates the feature-selection comparison (Fig. 6) and
// reports the budget-point accuracy of the paper's method and the AUC
// baseline.
func BenchmarkFig6(b *testing.B) {
	ctx := benchContext(b)
	for i := 0; i < b.N; i++ {
		res, err := ctx.RunFig6()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Curves["top-N AP"][2], "topNAP-acc@budget")
		b.ReportMetric(res.Curves["AUC"][2], "AUC-acc@budget")
	}
}

// BenchmarkFig7 regenerates the derived-features comparison (Fig. 7).
func BenchmarkFig7(b *testing.B) {
	ctx := benchContext(b)
	for i := 0; i < b.N; i++ {
		res, err := ctx.RunFig7()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.WithAtBudget, "acc-with-derived")
		b.ReportMetric(res.WithoutAtBudget, "acc-without")
	}
}

// BenchmarkFig8 regenerates the time-to-ticket CDF (Fig. 8) and reports the
// share of predicted tickets arriving within two weeks.
func BenchmarkFig8(b *testing.B) {
	ctx := benchContext(b)
	for i := 0; i < b.N; i++ {
		res, err := ctx.RunFig8()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.At(1, 14), "cdf-14d")
		b.ReportMetric(res.At(1, 2), "missed-if-fixed-2d")
	}
}

// BenchmarkTable5 regenerates the outage/IVR analysis (Table 5).
func BenchmarkTable5(b *testing.B) {
	ctx := benchContext(b)
	for i := 0; i < b.N; i++ {
		res, err := ctx.RunTable5()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.ExplainedByOutage[0], "explained-1wk")
		b.ReportMetric(res.ExplainedByOutage[3], "explained-4wk")
		b.ReportMetric(res.Coef[3], "logit-coef-4wk")
	}
}

// BenchmarkNotOnSite regenerates the §5.2 zero-traffic analysis.
func BenchmarkNotOnSite(b *testing.B) {
	ctx := benchContext(b)
	for i := 0; i < b.N; i++ {
		res, err := ctx.RunNotOnSite()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Fraction, "notonsite-frac")
	}
}

// BenchmarkLocator50 regenerates the §6.3 headline (tests to locate 50% of
// problems) and the Fig. 10 deep-bin improvement.
func BenchmarkLocator50(b *testing.B) {
	ctx := benchContext(b)
	for i := 0; i < b.N; i++ {
		res, err := ctx.RunLocator()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.MedianRank["basic"]), "median-basic")
		b.ReportMetric(float64(res.MedianRank["combined"]), "median-combined")
	}
}

// BenchmarkFig10 reports the deep-bin rank improvements of Fig. 10.
func BenchmarkFig10(b *testing.B) {
	ctx := benchContext(b)
	for i := 0; i < b.N; i++ {
		res, err := ctx.RunLocator()
		if err != nil {
			b.Fatal(err)
		}
		last := len(res.FlatImprovement) - 1
		b.ReportMetric(res.FlatImprovement[last], "flat-improve-deep")
		b.ReportMetric(res.CombImprovement[last], "combined-improve-deep")
	}
}

// BenchmarkTable1 regenerates the disposition-mix summary.
func BenchmarkTable1(b *testing.B) {
	ctx := benchContext(b)
	for i := 0; i < b.N; i++ {
		res, err := ctx.RunTable1()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.LocationShare["HN"], "HN-share")
	}
}

// BenchmarkTrend regenerates the weekly arrival pattern (§3.3).
func BenchmarkTrend(b *testing.B) {
	ctx := benchContext(b)
	for i := 0; i < b.N; i++ {
		res, err := ctx.RunTrend()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.ByWeekday[1])/float64(res.Total), "monday-share")
	}
}

// --- ablations ---------------------------------------------------------------

// BenchmarkAblationRounds sweeps the boosting budget (the paper settles on
// 800 by cross-validation) and reports accuracy at the operating budget.
func BenchmarkAblationRounds(b *testing.B) {
	ctx := benchContext(b)
	for _, rounds := range []int{20, 80, 250} {
		b.Run(benchName("rounds", rounds), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultPredictorConfig(ctx.DS.NumLines, 17)
				cfg.Rounds = rounds
				cfg.MaxSelectExamples = 15000
				pred, err := core.TrainPredictor(ctx.DS, features.WeekRange(30, 38), cfg)
				if err != nil {
					b.Fatal(err)
				}
				acc, err := budgetAccuracy(ctx, pred, 43, cfg.BudgetN)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(acc, "acc@budget")
			}
		})
	}
}

// BenchmarkAblationSelection compares keeping everything against the
// selected compact feature set (the scalability-accuracy trade of §4.3).
func BenchmarkAblationSelection(b *testing.B) {
	ctx := benchContext(b)
	for _, topK := range []int{8, 40, 120} {
		b.Run(benchName("topk", topK), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultPredictorConfig(ctx.DS.NumLines, 17)
				cfg.Rounds = 80
				cfg.SelectTopK = topK
				cfg.MaxSelectExamples = 15000
				pred, err := core.TrainPredictor(ctx.DS, features.WeekRange(30, 38), cfg)
				if err != nil {
					b.Fatal(err)
				}
				acc, err := budgetAccuracy(ctx, pred, 43, cfg.BudgetN)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(acc, "acc@budget")
			}
		})
	}
}

// BenchmarkAblationDepth tests the paper's §4.4 argument for a linear model:
// with unreported problems mislabelled as negatives, deeper weak learners
// should gain little or lose. It trains stump boosting and depth-2 tree
// boosting on the same features and reports held-out budget accuracy.
func BenchmarkAblationDepth(b *testing.B) {
	ctx := benchContext(b)
	// Shared encoding: Table 3 history+customer features.
	trainEx := features.ExamplesForWeeks(ctx.DS, features.WeekRange(30, 38))
	enc, err := features.Encode(ctx.DS, ctx.Ix, trainEx, features.Config{})
	if err != nil {
		b.Fatal(err)
	}
	yTrain := features.Labels(ctx.Ix, trainEx, 28)
	q, err := ml.FitQuantizer(enc.Cols, 64)
	if err != nil {
		b.Fatal(err)
	}
	bmTrain, err := q.Transform(enc.Cols)
	if err != nil {
		b.Fatal(err)
	}
	testEx := features.ExamplesForWeeks(ctx.DS, []int{43})
	encT, err := features.Encode(ctx.DS, ctx.Ix, testEx, features.Config{})
	if err != nil {
		b.Fatal(err)
	}
	yTest := features.Labels(ctx.Ix, testEx, 28)
	bmTest, err := q.Transform(encT.Cols)
	if err != nil {
		b.Fatal(err)
	}
	budget := ctx.Cfg.BudgetN

	b.Run("depth=1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m, err := ml.TrainBStump(bmTrain, q, yTrain, ml.TrainOptions{Rounds: 80})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(ml.PrecisionAtK(m.ScoreAll(bmTest), yTest, budget), "acc@budget")
		}
	})
	b.Run("depth=2", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m, err := ml.TrainBTree(bmTrain, q, yTrain, ml.TrainOptions{Rounds: 80})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(ml.PrecisionAtK(m.ScoreAll(bmTest), yTest, budget), "acc@budget")
		}
	})
}

func budgetAccuracy(ctx *eval.Context, pred *core.TicketPredictor, week, budget int) (float64, error) {
	ex := features.ExamplesForWeeks(ctx.DS, []int{week})
	scores, err := pred.ScoreExamples(ctx.DS, ex)
	if err != nil {
		return 0, err
	}
	y := features.Labels(ctx.Ix, ex, 28)
	return ml.PrecisionAtK(scores, y, budget), nil
}

func benchName(prefix string, v int) string {
	return prefix + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// --- core-path micro benchmarks ----------------------------------------------

// BenchmarkWeeklyRanking measures the production Saturday run: scoring and
// ranking the whole population with a trained model (the paper: under 15
// minutes for several million lines).
func BenchmarkWeeklyRanking(b *testing.B) {
	ctx := benchContext(b)
	pred, err := ctx.StandardPredictor()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pred.Rank(ctx.DS, 43); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(ctx.DS.NumLines), "lines")
}

// populateServeStore loads the recent test history plus the ticket record
// into a server's store — the state a weekly feed would leave behind.
func populateServeStore(b *testing.B, srv *serve.Server, ds *data.Dataset) {
	b.Helper()
	var tests []serve.TestRecord
	for w := 30; w <= 43; w++ {
		for l := 0; l < ds.NumLines; l++ {
			m := ds.At(data.LineID(l), w)
			tests = append(tests, serve.TestRecord{
				Line: m.Line, Week: w, Missing: m.Missing, F: m.F[:],
				Profile: ds.ProfileOf[l], DSLAM: ds.DSLAMOf[l], Usage: ds.UsageOf[l],
			})
		}
	}
	if _, err := srv.Store().IngestTests(tests); err != nil {
		b.Fatal(err)
	}
	var tickets []serve.TicketRecord
	for _, tk := range ds.Tickets {
		tickets = append(tickets, serve.TicketRecord{ID: tk.ID, Line: tk.Line, Day: tk.Day, Category: uint8(tk.Category)})
	}
	if _, err := srv.Store().IngestTickets(tickets); err != nil {
		b.Fatal(err)
	}
}

// sinkResponseWriter is a reusable ResponseWriter so the benchmark measures
// the handler, not httptest's per-request recorder allocations.
type sinkResponseWriter struct {
	h    http.Header
	code int
	n    int
}

func (w *sinkResponseWriter) Header() http.Header { return w.h }
func (w *sinkResponseWriter) WriteHeader(c int)   { w.code = c }
func (w *sinkResponseWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}

// BenchmarkServeScore measures the daemon's batch scoring endpoint — JSON
// in, resident score-table lookup, prerendered JSON out — scoring the whole
// population per request, driven straight through the server's handler (the
// HTTP client stack would otherwise dominate the per-op allocation count
// the steady-state contract bounds).
func BenchmarkServeScore(b *testing.B) {
	ctx := benchContext(b)
	pred, err := ctx.StandardPredictor()
	if err != nil {
		b.Fatal(err)
	}
	srv, err := serve.New(serve.Config{Predictor: pred})
	if err != nil {
		b.Fatal(err)
	}
	ds := ctx.DS
	populateServeStore(b, srv, ds)

	type ex struct {
		Line int `json:"line"`
		Week int `json:"week"`
	}
	examples := make([]ex, ds.NumLines)
	for l := range examples {
		examples[l] = ex{Line: l, Week: 43}
	}
	body, err := json.Marshal(map[string]any{"examples": examples})
	if err != nil {
		b.Fatal(err)
	}
	rd := bytes.NewReader(body)
	req := httptest.NewRequest(http.MethodPost, "/v1/score", rd)
	sink := &sinkResponseWriter{h: make(http.Header, 4)}
	handler := srv.Handler()
	post := func() {
		rd.Seek(0, io.SeekStart)
		sink.code, sink.n = 0, 0
		handler.ServeHTTP(sink, req)
		if sink.code != http.StatusOK {
			b.Fatalf("score: status %d", sink.code)
		}
	}
	post() // warm the snapshot and the week's score table
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		post()
	}
	b.StopTimer()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(b.N*ds.NumLines)/s, "lines/sec")
	}
}

// benchFleet builds an in-process fleet: n shard daemons behind a gateway,
// spliced together by fleet.HostTransport so the measurement covers the
// gateway's partition/scatter/splice work and the shards' handler paths but
// not the TCP stack. Each shard is fed the full history and keeps only its
// ring arc, exactly as `nevermindd -fleet.id` does.
func benchFleet(b *testing.B, n int) *fleet.Gateway {
	b.Helper()
	ctx := benchContext(b)
	pred, err := ctx.StandardPredictor()
	if err != nil {
		b.Fatal(err)
	}
	names := make([]string, n)
	specs := make([]fleet.ShardSpec, n)
	ht := fleet.HostTransport{}
	for i := 0; i < n; i++ {
		names[i] = fmt.Sprintf("shard-%d", i)
		specs[i] = fleet.ShardSpec{Name: names[i], URL: "http://" + names[i]}
	}
	ring, err := fleet.NewRing(names, 0)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		srv, err := serve.New(serve.Config{Predictor: pred})
		if err != nil {
			b.Fatal(err)
		}
		if n > 1 {
			owns, err := ring.Owns(names[i])
			if err != nil {
				b.Fatal(err)
			}
			srv.Store().SetOwner(owns)
		}
		populateServeStore(b, srv, ctx.DS)
		ht[names[i]] = srv.Handler()
	}
	gw, err := fleet.NewGateway(fleet.Config{
		Shards:    specs,
		Retry:     serve.RetryConfig{MaxAttempts: 2},
		Transport: ht,
		Sleep:     func(time.Duration) {},
	})
	if err != nil {
		b.Fatal(err)
	}
	return gw
}

// BenchmarkFleetScore measures whole-population batch scoring through the
// scatter-gather gateway at 1 and 2 in-process shards. At shards=1 the
// delta against BenchmarkServeScore is the gateway tax (parse, ring lookup
// per example, re-marshal, splice). At shards=2 each shard answers half the
// examples; on a multi-core host the shard legs run in parallel and the
// aggregate throughput climbs toward 2x, while on a single-core host (the
// committed BENCH_ml.json baseline) the legs serialize and the honest
// expectation is parity with shards=1, not a speedup — the bench then pins
// that the fan-out costs no more than the single-shard path.
func BenchmarkFleetScore(b *testing.B) {
	ctx := benchContext(b)
	type ex struct {
		Line int `json:"line"`
		Week int `json:"week"`
	}
	examples := make([]ex, ctx.DS.NumLines)
	for l := range examples {
		examples[l] = ex{Line: l, Week: 43}
	}
	body, err := json.Marshal(map[string]any{"examples": examples})
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{1, 2} {
		b.Run(benchName("shards", n), func(b *testing.B) {
			gw := benchFleet(b, n)
			rd := bytes.NewReader(body)
			req := httptest.NewRequest(http.MethodPost, "/v1/score", rd)
			sink := &sinkResponseWriter{h: make(http.Header, 4)}
			handler := gw.Handler()
			post := func() {
				rd.Seek(0, io.SeekStart)
				sink.code, sink.n = 0, 0
				handler.ServeHTTP(sink, req)
				if sink.code != http.StatusOK {
					b.Fatalf("score: status %d", sink.code)
				}
			}
			post() // warm the shard snapshots and week score tables
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				post()
			}
			b.StopTimer()
			if s := b.Elapsed().Seconds(); s > 0 {
				b.ReportMetric(float64(b.N*ctx.DS.NumLines)/s, "lines/sec")
			}
		})
	}
}

// BenchmarkFleetRank measures the fleet-wide top-N: health scatter, per-
// shard rank exports, streaming k-way merge, envelope splice. The merge
// touches only the shards' top-N heaps — never a full population — so the
// cost scales with n·shards, not lines.
func BenchmarkFleetRank(b *testing.B) {
	for _, n := range []int{1, 2} {
		b.Run(benchName("shards", n), func(b *testing.B) {
			gw := benchFleet(b, n)
			req := httptest.NewRequest(http.MethodGet, "/v1/rank?week=43&n=100", nil)
			sink := &sinkResponseWriter{h: make(http.Header, 4)}
			handler := gw.Handler()
			get := func() {
				sink.code, sink.n = 0, 0
				handler.ServeHTTP(sink, req)
				if sink.code != http.StatusOK {
					b.Fatalf("rank: status %d", sink.code)
				}
			}
			get() // warm the shard snapshots and rank tables
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				get()
			}
		})
	}
}

// benchSnapshotStore builds a store with lines of synthetic history over
// weeks 30..43 — the population-scaling fixture for the snapshot benches.
func benchSnapshotStore(b *testing.B, lines int) *serve.Store {
	b.Helper()
	s := serve.NewStore(8)
	recs := make([]serve.TestRecord, 0, lines)
	for w := 30; w <= 43; w++ {
		recs = recs[:0]
		for l := 0; l < lines; l++ {
			recs = append(recs, serve.TestRecord{
				Line: data.LineID(l), Week: w,
				F:     []float32{float32(l), float32(w)},
				DSLAM: int32(l % 50), Usage: 0.5,
			})
		}
		if _, err := s.IngestTests(recs); err != nil {
			b.Fatal(err)
		}
	}
	return s
}

// BenchmarkSnapshotFull measures the from-scratch snapshot rebuild across
// populations: O(lines x weeks) by construction.
func BenchmarkSnapshotFull(b *testing.B) {
	for _, lines := range []int{4000, 16000, 64000} {
		b.Run(fmt.Sprintf("lines=%d", lines), func(b *testing.B) {
			s := benchSnapshotStore(b, lines)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.ResetSnapshotCache()
				if s.Snapshot() == nil {
					b.Fatal("nil snapshot")
				}
			}
		})
	}
}

// BenchmarkSnapshotDelta measures the incremental path the steady state
// actually runs: ingest a small batch, apply its delta onto the cached
// snapshot. Time per op should stay flat as the population grows — the
// apply copies only the chunks the batch touched.
func BenchmarkSnapshotDelta(b *testing.B) {
	const batch = 200
	for _, lines := range []int{4000, 16000, 64000} {
		b.Run(fmt.Sprintf("lines=%d", lines), func(b *testing.B) {
			s := benchSnapshotStore(b, lines)
			if s.Snapshot() == nil {
				b.Fatal("nil base snapshot")
			}
			recs := make([]serve.TestRecord, batch)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range recs {
					l := (i*batch + j*31) % lines
					recs[j] = serve.TestRecord{
						Line: data.LineID(l), Week: 43,
						F:     []float32{float32(i), float32(j)},
						DSLAM: int32(l % 50), Usage: 0.5,
					}
				}
				if _, err := s.IngestTests(recs); err != nil {
					b.Fatal(err)
				}
				if s.Snapshot() == nil {
					b.Fatal("nil snapshot")
				}
			}
		})
	}
}

// BenchmarkMeasurement measures the physical-layer line-test model.
func BenchmarkMeasurement(b *testing.B) {
	net, err := dsl.Build(dsl.Config{NumLines: 100, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	eff := faults.Catalog[4].Effect.Scale(1.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := &net.Lines[i%len(net.Lines)]
		_ = dsl.Measure(l, eff, false, i%data.Weeks, rng.Derive(9, uint64(i)))
	}
}

// --- worker-pool benchmarks --------------------------------------------------
//
// Each hot path runs at 1, 2 and 4 workers on identical inputs; outputs are
// bit-identical (see internal/ml worker tests), so these measure pure
// scheduling cost vs. parallel speedup. On a single-CPU host the multi-worker
// rows show only the goroutine overhead; speedups need GOMAXPROCS > 1.

var workerSweep = []int{1, 2, 4}

// benchTrainingMatrix encodes the standard history+customer features once.
func benchTrainingMatrix(b *testing.B) (*ml.BinnedMatrix, *ml.Quantizer, []ml.Column, []bool) {
	b.Helper()
	ctx := benchContext(b)
	trainEx := features.ExamplesForWeeks(ctx.DS, features.WeekRange(30, 38))
	enc, err := features.Encode(ctx.DS, ctx.Ix, trainEx, features.Config{})
	if err != nil {
		b.Fatal(err)
	}
	y := features.Labels(ctx.Ix, trainEx, 28)
	q, err := ml.FitQuantizer(enc.Cols, 64)
	if err != nil {
		b.Fatal(err)
	}
	bm, err := q.Transform(enc.Cols)
	if err != nil {
		b.Fatal(err)
	}
	return bm, q, enc.Cols, y
}

// BenchmarkTrainBStumpWorkers sweeps the stump-search worker pool (the
// feature axis of the Z-criterion scan).
func BenchmarkTrainBStumpWorkers(b *testing.B) {
	bm, q, _, y := benchTrainingMatrix(b)
	for _, w := range workerSweep {
		b.Run(benchName("workers", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ml.TrainBStump(bm, q, y, ml.TrainOptions{Rounds: 40, Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFeatureScoresWorkers sweeps the per-column selection pool.
func BenchmarkFeatureScoresWorkers(b *testing.B) {
	_, _, cols, y := benchTrainingMatrix(b)
	for _, w := range workerSweep {
		b.Run(benchName("workers", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opt := ml.SelectOptions{N: 400, Seed: 17, MaxExamples: 15000, Workers: w}
				if _, err := ml.FeatureScores(cols, y, ml.CritTopNAP, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchScoringModel trains the shared scoring fixture once: a T=200
// ensemble on the standard matrix. Reference and compiled scoring benchmark
// against the same model and matrix, so their ratio is the leaf-table
// speedup the compiled path claims (see DESIGN.md, "Compiled inference").
var (
	scoreBenchOnce  sync.Once
	scoreBenchBM    *ml.BinnedMatrix
	scoreBenchModel *ml.BStump
	scoreBenchErr   error
)

func benchScoringModel(b *testing.B) (*ml.BinnedMatrix, *ml.BStump) {
	b.Helper()
	scoreBenchOnce.Do(func() {
		bm, q, _, y := benchTrainingMatrix(b)
		m, err := ml.TrainBStump(bm, q, y, ml.TrainOptions{Rounds: 200})
		if err != nil {
			scoreBenchErr = err
			return
		}
		scoreBenchBM, scoreBenchModel = bm, m
	})
	if scoreBenchErr != nil {
		b.Fatal(scoreBenchErr)
	}
	return scoreBenchBM, scoreBenchModel
}

// BenchmarkScoreAllWorkers sweeps the example-chunk scoring pool on the
// trained T=200 ensemble — the stump-major reference path, O(T) per example.
func BenchmarkScoreAllWorkers(b *testing.B) {
	bm, m := benchScoringModel(b)
	for _, w := range workerSweep {
		b.Run(benchName("workers", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = m.ScoreAllWorkers(bm, w)
			}
			b.ReportMetric(float64(len(m.Stumps)), "rounds")
		})
	}
}

// BenchmarkScoreCompiled scores the same model and matrix through the
// compiled per-bin tables — O(used features) per example, independent of T.
// The acceptance criterion is >= 3x over BenchmarkScoreAllWorkers at the
// matching worker count.
func BenchmarkScoreCompiled(b *testing.B) {
	bm, m := benchScoringModel(b)
	c := m.Compiled()
	for _, w := range workerSweep {
		b.Run(benchName("workers", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = c.ScoreAllWorkers(bm, w)
			}
			b.ReportMetric(float64(len(m.Stumps)), "rounds")
			b.ReportMetric(float64(len(c.Features)), "used-features")
		})
	}
}

// BenchmarkCompileBStump measures the one-time fold cost the compiled path
// amortises (microseconds against milliseconds of scoring).
func BenchmarkCompileBStump(b *testing.B) {
	_, m := benchScoringModel(b)
	for i := 0; i < b.N; i++ {
		_ = ml.CompileBStump(m)
	}
}

// BenchmarkTrainBStumpTrim sweeps Friedman weight trimming on the per-round
// stump search (quantile 0 is the exact path).
func BenchmarkTrainBStumpTrim(b *testing.B) {
	bm, q, _, y := benchTrainingMatrix(b)
	for _, trim := range []int{0, 10, 30} {
		b.Run(benchName("trimpct", trim), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opt := ml.TrainOptions{Rounds: 40, TrimQuantile: float64(trim) / 100}
				if _, err := ml.TrainBStump(bm, q, y, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTransformWorkers sweeps the quantization pool.
func BenchmarkTransformWorkers(b *testing.B) {
	_, q, cols, _ := benchTrainingMatrix(b)
	for _, w := range workerSweep {
		b.Run(benchName("workers", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := q.TransformWorkers(cols, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchIngestLoop drives the ingest hot path with 200-record batches — the
// shared body for the WAL-off/WAL-on pair, so the two numbers differ only by
// the durability sink.
func benchIngestLoop(b *testing.B, s *serve.Store) {
	const batch = 200
	recs := make([]serve.TestRecord, batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range recs {
			l := (i*batch + j*31) % 16000
			recs[j] = serve.TestRecord{
				Line: data.LineID(l), Week: 30 + i%14,
				F:     []float32{float32(i), float32(j)},
				DSLAM: int32(l % 50), Usage: 0.5,
			}
		}
		if _, err := s.IngestTests(recs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIngestWALOff is the control: the exact PR 7 ingest path, no
// durability attached.
func BenchmarkIngestWALOff(b *testing.B) {
	benchIngestLoop(b, serve.NewStore(8))
}

// BenchmarkIngestWALOn measures the write-ahead tax on the same loop: encode
// each batch and append it to the segment chain (OS-buffered writes; fsync
// runs off the critical path under the default interval policy, so it is
// excluded here just as it is excluded from an ack).
func BenchmarkIngestWALOn(b *testing.B) {
	s := serve.NewStore(8)
	d, err := serve.OpenDurability(s, nil, serve.DurabilityConfig{
		Dir: b.TempDir(), Sync: wal.SyncNever,
		CheckpointEvery: -1, NoFinalCheckpoint: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer d.Abandon()
	benchIngestLoop(b, s)
}

// BenchmarkRecovery measures cold restart: checkpoint load plus WAL tail
// replay. The fixture is built once — 100 batches with a checkpoint cut at
// version 50, so every iteration loads the checkpoint and replays 50
// records; Abandon leaves the directory byte-identical for the next one.
func BenchmarkRecovery(b *testing.B) {
	dir := b.TempDir()
	build := serve.NewStore(8)
	d, err := serve.OpenDurability(build, nil, serve.DurabilityConfig{
		Dir: dir, Sync: wal.SyncNever,
		CheckpointEvery: -1, NoFinalCheckpoint: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	recs := make([]serve.TestRecord, 200)
	for i := 0; i < 100; i++ {
		for j := range recs {
			l := (i*200 + j*31) % 16000
			recs[j] = serve.TestRecord{
				Line: data.LineID(l), Week: 30 + i%14,
				F:     []float32{float32(i), float32(j)},
				DSLAM: int32(l % 50), Usage: 0.5,
			}
		}
		if _, err := build.IngestTests(recs); err != nil {
			b.Fatal(err)
		}
		if i == 49 {
			d.Checkpoint()
		}
	}
	if err := d.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := serve.NewStore(8)
		d, err := serve.OpenDurability(s, nil, serve.DurabilityConfig{
			Dir: dir, Sync: wal.SyncNever,
			CheckpointEvery: -1, NoFinalCheckpoint: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if got := s.Version(); got != 100 {
			b.Fatalf("recovered to version %d, want 100", got)
		}
		d.Abandon()
	}
}

// BenchmarkReplicaCatchup measures a follower's full bootstrap over real
// HTTP: download the leader's checkpoint (version 50 of the same fixture
// BenchmarkRecovery replays), restore it, and stream-apply the 50-record WAL
// tail. The delta against BenchmarkRecovery is the wire tax — HTTP transfer
// plus the stream framing — since both end at the identical version-100
// store.
func BenchmarkReplicaCatchup(b *testing.B) {
	dir := b.TempDir()
	build := serve.NewStore(8)
	d, err := serve.OpenDurability(build, nil, serve.DurabilityConfig{
		Dir: dir, Sync: wal.SyncNever,
		CheckpointEvery: -1, NoFinalCheckpoint: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	recs := make([]serve.TestRecord, 200)
	for i := 0; i < 100; i++ {
		for j := range recs {
			l := (i*200 + j*31) % 16000
			recs[j] = serve.TestRecord{
				Line: data.LineID(l), Week: 30 + i%14,
				F:     []float32{float32(i), float32(j)},
				DSLAM: int32(l % 50), Usage: 0.5,
			}
		}
		if _, err := build.IngestTests(recs); err != nil {
			b.Fatal(err)
		}
		if i == 49 {
			d.Checkpoint()
		}
	}
	if err := d.Close(); err != nil {
		b.Fatal(err)
	}
	src, err := replica.NewSource(replica.SourceConfig{
		Dir:         dir,
		LastVersion: func() uint64 { return 100 },
	})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(src.Handler())
	defer ts.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fol, err := replica.NewFollower(replica.FollowerConfig{
			Leader: ts.URL, ID: "bench", Shards: 8,
			SwapStore: func(*serve.Store) {},
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := fol.Bootstrap(context.Background()); err != nil {
			b.Fatal(err)
		}
		if got := fol.Status().Applied; got != 100 {
			b.Fatalf("caught up to version %d, want 100", got)
		}
	}
}

// BenchmarkGatewayScoreReplicas measures whole-population batch scoring
// through a gateway whose single shard has a caught-up read replica: every
// score request routes to the replica, with the leader idle as fallback.
// The comparison against BenchmarkFleetScore/shards-1 pins the cost of the
// replica read path (health gating, round-robin pick, lag check) at ~zero.
func BenchmarkGatewayScoreReplicas(b *testing.B) {
	ctx := benchContext(b)
	pred, err := ctx.StandardPredictor()
	if err != nil {
		b.Fatal(err)
	}
	leader, err := serve.New(serve.Config{Predictor: pred})
	if err != nil {
		b.Fatal(err)
	}
	populateServeStore(b, leader, ctx.DS)
	repl, err := serve.New(serve.Config{
		Predictor: pred,
		ReadOnly:  true,
		ReplicaStatus: func() serve.ReplicaStatus {
			v := leader.Store().Version()
			return serve.ReplicaStatus{Applied: v, LeaderVersion: v, Connected: true}
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	populateServeStore(b, repl, ctx.DS)
	ht := fleet.HostTransport{"shard-0": leader.Handler(), "shard-0-replica": repl.Handler()}
	gw, err := fleet.NewGateway(fleet.Config{
		Shards: []fleet.ShardSpec{{
			Name: "shard-0", URL: "http://shard-0",
			Replicas: []string{"http://shard-0-replica"},
		}},
		Retry:         serve.RetryConfig{MaxAttempts: 2},
		Transport:     ht,
		Sleep:         func(time.Duration) {},
		ProbeInterval: 10 * time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	gw.Start()
	defer gw.Stop()

	handler := gw.Handler()
	metrics := func() string {
		sink := httptest.NewRecorder()
		handler.ServeHTTP(sink, httptest.NewRequest(http.MethodGet, "/metrics", nil))
		return sink.Body.String()
	}
	// Replicas start pessimistic-down; wait for the prober to mark it up.
	deadline := time.Now().Add(10 * time.Second)
	for !strings.Contains(metrics(), `fleet_replica_up{replica="shard-0-r0"} 1`) {
		if time.Now().After(deadline) {
			b.Fatal("prober never marked the replica up")
		}
		time.Sleep(5 * time.Millisecond)
	}

	type ex struct {
		Line int `json:"line"`
		Week int `json:"week"`
	}
	examples := make([]ex, ctx.DS.NumLines)
	for l := range examples {
		examples[l] = ex{Line: l, Week: 43}
	}
	body, err := json.Marshal(map[string]any{"examples": examples})
	if err != nil {
		b.Fatal(err)
	}
	rd := bytes.NewReader(body)
	req := httptest.NewRequest(http.MethodPost, "/v1/score", rd)
	sink := &sinkResponseWriter{h: make(http.Header, 4)}
	post := func() {
		rd.Seek(0, io.SeekStart)
		sink.code, sink.n = 0, 0
		handler.ServeHTTP(sink, req)
		if sink.code != http.StatusOK {
			b.Fatalf("score: status %d", sink.code)
		}
	}
	post() // warm the replica's snapshot and week score tables
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		post()
	}
	b.StopTimer()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(b.N*ctx.DS.NumLines)/s, "lines/sec")
	}
	// The bench is void if reads quietly fell back to the leader.
	if !strings.Contains(metrics(), `fleet_replica_reads_total{replica="shard-0-r0"}`) ||
		strings.Contains(metrics(), `fleet_replica_reads_total{replica="shard-0-r0"} 0`) {
		b.Fatal("score reads did not route to the replica")
	}
}

// BenchmarkDriftMonitors measures the drift loop's per-tick observation
// cost: a fresh controller folds the store's whole 14-week history — PSI
// against the frozen reference for every week past the baseline, champion
// AP@N + reliability gap for every matured week — exactly the work
// `ObserveWeek` adds to a pipeline tick. Thresholds are parked so the fold
// never retrains: the benchmark prices the monitors, not the trainer.
func BenchmarkDriftMonitors(b *testing.B) {
	ctx := benchContext(b)
	pred, err := ctx.StandardPredictor()
	if err != nil {
		b.Fatal(err)
	}
	srv, err := serve.New(serve.Config{Predictor: pred})
	if err != nil {
		b.Fatal(err)
	}
	populateServeStore(b, srv, ctx.DS)
	sn := srv.Store().Snapshot()

	th := drift.DefaultThresholds()
	th.PSICeil = 1000
	th.APFloor = 0.01
	th.K = data.Weeks // monitors may trip, the loop never retrains
	const lo, hi = 30, 43

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctrl, err := drift.New(drift.Config{Server: srv, Thresholds: th})
		if err != nil {
			b.Fatal(err)
		}
		ctrl.Rebuild(sn, lo, hi)
		if st := ctrl.Status(); st.Retrains != 0 {
			b.Fatalf("monitor benchmark retrained: %+v", st)
		}
	}
	b.StopTimer()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(b.N*(hi-lo+1))/s, "weeks/sec")
	}
}

// BenchmarkShadowScore measures one week of challenger shadow scoring —
// ScoreExamplesIx over every line of a matured week, off the serving
// score tables — the incremental cost a live challenger adds to each tick
// while it auditions.
func BenchmarkShadowScore(b *testing.B) {
	ctx := benchContext(b)
	pred, err := ctx.StandardPredictor()
	if err != nil {
		b.Fatal(err)
	}
	srv, err := serve.New(serve.Config{Predictor: pred})
	if err != nil {
		b.Fatal(err)
	}
	populateServeStore(b, srv, ctx.DS)
	sn := srv.Store().Snapshot()

	const week = 39 // matured by the store's week-43 horizon
	lines := sn.LinesAt(week)
	if len(lines) == 0 {
		b.Fatal("no lines at the shadow week")
	}
	examples := make([]features.Example, len(lines))
	for i, l := range lines {
		examples[i] = features.Example{Line: l, Week: week}
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scores, err := pred.ScoreExamplesIx(sn.DS, sn.Ix, examples)
		if err != nil {
			b.Fatal(err)
		}
		if len(scores) != len(examples) {
			b.Fatalf("scored %d of %d examples", len(scores), len(examples))
		}
	}
	b.StopTimer()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(b.N*len(examples))/s, "lines/sec")
	}
}

package data

import (
	"bufio"
	"compress/gzip"
	"encoding/csv"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"strconv"
)

// Save writes the dataset to path as gzipped gob, the native round-trip
// format used by cmd/dslsim.
func (d *Dataset) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("data: save: %w", err)
	}
	defer f.Close()
	zw := gzip.NewWriter(f)
	if err := gob.NewEncoder(zw).Encode(d); err != nil {
		return fmt.Errorf("data: encode: %w", err)
	}
	if err := zw.Close(); err != nil {
		return fmt.Errorf("data: flush: %w", err)
	}
	return f.Close()
}

// Load reads a dataset written by Save and validates it.
func Load(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("data: load: %w", err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		return nil, fmt.Errorf("data: gzip: %w", err)
	}
	defer zr.Close()
	var d Dataset
	if err := gob.NewDecoder(zr).Decode(&d); err != nil {
		return nil, fmt.Errorf("data: decode: %w", err)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

// WriteMeasurementsCSV exports the line-test grid with a header row, one row
// per (week, line) record. Missing records keep their row (state=0) so the
// export is a faithful dense grid.
func (d *Dataset) WriteMeasurementsCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	cw := csv.NewWriter(bw)
	header := append([]string{"line", "week", "date", "missing"}, BasicFeatureNames[:]...)
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for i := range d.Measurements {
		m := &d.Measurements[i]
		row[0] = strconv.Itoa(int(m.Line))
		row[1] = strconv.Itoa(m.Week)
		row[2] = DateString(m.Day())
		row[3] = strconv.FormatBool(m.Missing)
		for f := 0; f < NumBasicFeatures; f++ {
			row[4+f] = strconv.FormatFloat(float64(m.F[f]), 'g', 6, 64)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteTicketsCSV exports the ticket stream joined with its disposition
// notes, one row per ticket.
func (d *Dataset) WriteTicketsCSV(w io.Writer) error {
	noteOf := make(map[int]DispositionNote, len(d.Notes))
	for _, n := range d.Notes {
		noteOf[n.TicketID] = n
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"ticket", "line", "day", "date", "category", "disposition", "dispatch_day", "tests_run"}); err != nil {
		return err
	}
	for _, t := range d.Tickets {
		row := []string{
			strconv.Itoa(t.ID), strconv.Itoa(int(t.Line)),
			strconv.Itoa(t.Day), DateString(t.Day), t.Category.String(),
			"", "", "",
		}
		if n, ok := noteOf[t.ID]; ok {
			row[5] = strconv.Itoa(n.Disposition)
			row[6] = strconv.Itoa(n.Day)
			row[7] = strconv.Itoa(n.TestsRun)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

package data

import (
	"fmt"
	"sort"

	"nevermind/internal/rng"
)

// Dataset bundles one simulated (or imported) year of operational data in the
// shape NEVERMIND consumes: the weekly line-test grid, the customer ticket
// stream, the dispatch disposition notes, subscriber profiles, and the DSLAM
// outage log used by the §5.2 analyses.
//
// Measurements form a dense grid: exactly one record per (week, line), with
// Missing set when the modem was off. The grid is stored week-major so a
// record is addressable in constant time.
type Dataset struct {
	NumLines  int
	ProfileOf []uint8 // service tier per line, index into Profiles
	DSLAMOf   []int32 // DSLAM id per line
	NumDSLAMs int

	Measurements []Measurement // week-major grid: index = week*NumLines + line
	// Grid, when set, replaces Measurements as the measurement storage: the
	// same dense grid in copy-on-write chunks (see MeasurementGrid). Exactly
	// one of the two representations should be populated; At serves from
	// whichever is. The serving store's snapshots use Grid so successive
	// generations share untouched chunks; offline datasets stay flat.
	Grid    *MeasurementGrid
	Tickets []Ticket // sorted by arrival day
	Notes   []DispositionNote
	Outages []Outage

	// Customer behaviour context for the §5.2 analyses.
	UsageOf []float32  // per-line propensity to be actively using the service
	Aways   []AwaySpan // intervals when the subscriber is away from home

	// TrafficSeed derives the per-day traffic byte counters.
	TrafficSeed uint64

	// Generation distinguishes successive contents of a mutable data source
	// for feature-cache keying: the serving store stamps each snapshot with
	// its ingest version, so cached encodes of one generation are never
	// served against another. Static offline datasets leave it 0.
	Generation uint64
}

// AwaySpan is a period when a subscriber is away (vacation etc.) and
// therefore cannot perceive or report DSL problems.
type AwaySpan struct {
	Line     LineID
	StartDay int
	EndDay   int // inclusive
}

// At returns the measurement for (line, week). It panics on out-of-range
// arguments; use it only on complete grids (Validate checks this).
func (d *Dataset) At(line LineID, week int) *Measurement {
	if d.Grid != nil {
		return d.Grid.At(line, week)
	}
	return &d.Measurements[week*d.NumLines+int(line)]
}

// Profile returns the subscriber profile of a line.
func (d *Dataset) Profile(line LineID) Profile {
	return Profiles[d.ProfileOf[line]]
}

// Validate checks the structural invariants the rest of the system relies
// on: a dense week-major grid, per-line attribute slices of the right
// length, tickets sorted by day, and in-range references.
func (d *Dataset) Validate() error {
	if len(d.ProfileOf) != d.NumLines || len(d.DSLAMOf) != d.NumLines || len(d.UsageOf) != d.NumLines {
		return fmt.Errorf("data: per-line slices must have length %d", d.NumLines)
	}
	if d.Grid != nil {
		if err := d.Grid.Validate(d.NumLines); err != nil {
			return err
		}
	} else {
		if len(d.Measurements) != Weeks*d.NumLines {
			return fmt.Errorf("data: measurement grid has %d records, want %d", len(d.Measurements), Weeks*d.NumLines)
		}
		for w := 0; w < Weeks; w++ {
			for l := 0; l < d.NumLines; l++ {
				m := &d.Measurements[w*d.NumLines+l]
				if m.Week != w || m.Line != LineID(l) {
					return fmt.Errorf("data: grid record at (%d,%d) holds (%d,%d)", w, l, m.Week, m.Line)
				}
			}
		}
	}
	if !sort.SliceIsSorted(d.Tickets, func(i, j int) bool { return d.Tickets[i].Day < d.Tickets[j].Day }) {
		return fmt.Errorf("data: tickets not sorted by day")
	}
	for _, t := range d.Tickets {
		if int(t.Line) < 0 || int(t.Line) >= d.NumLines {
			return fmt.Errorf("data: ticket %d references line %d outside [0,%d)", t.ID, t.Line, d.NumLines)
		}
		if t.Day < 0 || t.Day >= DaysInYear {
			return fmt.Errorf("data: ticket %d has day %d outside the year", t.ID, t.Day)
		}
	}
	for i := range d.ProfileOf {
		if int(d.ProfileOf[i]) >= len(Profiles) {
			return fmt.Errorf("data: line %d has unknown profile %d", i, d.ProfileOf[i])
		}
		if int(d.DSLAMOf[i]) < 0 || int(d.DSLAMOf[i]) >= d.NumDSLAMs {
			return fmt.Errorf("data: line %d has DSLAM %d outside [0,%d)", i, d.DSLAMOf[i], d.NumDSLAMs)
		}
	}
	for _, o := range d.Outages {
		if o.DSLAM < 0 || o.DSLAM >= d.NumDSLAMs || o.StartDay > o.EndDay {
			return fmt.Errorf("data: malformed outage %+v", o)
		}
	}
	return nil
}

// OnSite reports whether the subscriber was at home on the given day.
func (d *Dataset) OnSite(line LineID, day int) bool {
	for _, a := range d.Aways {
		if a.Line == line && day >= a.StartDay && day <= a.EndDay {
			return false
		}
	}
	return true
}

// DailyBytes returns the simulated aggregate downstream bytes a subscriber
// pulled on a day, the per-customer counter the paper collects from two BRAS
// servers for the not-on-site analysis (§5.2). Away subscribers generate no
// traffic; at-home usage is lognormal around the line's usage propensity.
func (d *Dataset) DailyBytes(line LineID, day int) float64 {
	if !d.OnSite(line, day) {
		return 0
	}
	r := rng.Derive(d.TrafficSeed, uint64(line), uint64(day))
	u := float64(d.UsageOf[line])
	if !r.Bool(u) { // subscriber did not go online that day
		return 0
	}
	const meanBytes = 2e8 // ~200 MB on an active day in 2009
	return meanBytes * u * r.LogNormal(0, 0.75)
}

// TicketsForLine returns the arrival days of customer-edge tickets for a line
// in ascending order.
func (d *Dataset) TicketsForLine(line LineID) []int {
	var days []int
	for _, t := range d.Tickets {
		if t.Line == line && t.Category == CatCustomerEdge {
			days = append(days, t.Day)
		}
	}
	return days
}

// NextTicketWithin reports whether the line files a customer-edge ticket in
// the window (afterDay, afterDay+windowDays]. This is the label function
// Tkt(u, t, T) of §4.1 with T = windowDays.
func (d *Dataset) NextTicketWithin(line LineID, afterDay, windowDays int) bool {
	// Tickets are sorted by day; binary search to the window start.
	i := sort.Search(len(d.Tickets), func(i int) bool { return d.Tickets[i].Day > afterDay })
	for ; i < len(d.Tickets); i++ {
		t := d.Tickets[i]
		if t.Day > afterDay+windowDays {
			return false
		}
		if t.Line == line && t.Category == CatCustomerEdge {
			return true
		}
	}
	return false
}

// DaysToNextTicket returns the number of days from afterDay to the line's
// next customer-edge ticket, and false if none arrives before year end.
func (d *Dataset) DaysToNextTicket(line LineID, afterDay int) (int, bool) {
	i := sort.Search(len(d.Tickets), func(i int) bool { return d.Tickets[i].Day > afterDay })
	for ; i < len(d.Tickets); i++ {
		t := d.Tickets[i]
		if t.Line == line && t.Category == CatCustomerEdge {
			return t.Day - afterDay, true
		}
	}
	return 0, false
}

// OutageAt reports whether the DSLAM serving the line has an outage active in
// [startDay, endDay].
func (d *Dataset) OutageAt(dslam int, startDay, endDay int) bool {
	for _, o := range d.Outages {
		if o.DSLAM == dslam && o.StartDay <= endDay && o.EndDay >= startDay {
			return true
		}
	}
	return false
}

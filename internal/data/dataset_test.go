package data

import (
	"bytes"
	"compress/gzip"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// tinyDataset builds a 3-line dataset with a complete measurement grid and a
// few hand-placed tickets for the query helpers.
func tinyDataset() *Dataset {
	d := &Dataset{
		NumLines:    3,
		ProfileOf:   []uint8{0, 1, 2},
		DSLAMOf:     []int32{0, 0, 1},
		NumDSLAMs:   2,
		UsageOf:     []float32{0.9, 0.5, 0.1},
		TrafficSeed: 77,
	}
	for w := 0; w < Weeks; w++ {
		for l := 0; l < 3; l++ {
			m := Measurement{Line: LineID(l), Week: w}
			m.F[FDnBR] = float32(700 + 10*l)
			d.Measurements = append(d.Measurements, m)
		}
	}
	d.Tickets = []Ticket{
		{ID: 1, Line: 0, Day: 50, Category: CatCustomerEdge},
		{ID: 2, Line: 1, Day: 60, Category: CatBilling},
		{ID: 3, Line: 0, Day: 90, Category: CatCustomerEdge},
		{ID: 4, Line: 2, Day: 120, Category: CatCustomerEdge},
	}
	d.Notes = []DispositionNote{{TicketID: 1, Line: 0, Day: 52, Disposition: 3, TestsRun: 4}}
	d.Outages = []Outage{{DSLAM: 1, StartDay: 100, EndDay: 103}}
	d.Aways = []AwaySpan{{Line: 2, StartDay: 200, EndDay: 210}}
	return d
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	if err := tinyDataset().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsCorruptGrid(t *testing.T) {
	d := tinyDataset()
	d.Measurements[5].Week = 99
	if err := d.Validate(); err == nil {
		t.Fatal("corrupt grid passed validation")
	}
}

func TestValidateRejectsUnsortedTickets(t *testing.T) {
	d := tinyDataset()
	d.Tickets[0].Day = 300
	if err := d.Validate(); err == nil {
		t.Fatal("unsorted tickets passed validation")
	}
}

func TestValidateRejectsBadReferences(t *testing.T) {
	d := tinyDataset()
	d.Tickets = append(d.Tickets, Ticket{ID: 9, Line: 55, Day: 364})
	if err := d.Validate(); err == nil {
		t.Fatal("out-of-range line reference passed validation")
	}
	d = tinyDataset()
	d.DSLAMOf[0] = 9
	if err := d.Validate(); err == nil {
		t.Fatal("out-of-range DSLAM passed validation")
	}
}

func TestAtAddressing(t *testing.T) {
	d := tinyDataset()
	m := d.At(2, 10)
	if m.Line != 2 || m.Week != 10 {
		t.Fatalf("At(2,10) returned (%d,%d)", m.Line, m.Week)
	}
	if m.F[FDnBR] != 720 {
		t.Fatalf("At(2,10) dnbr = %v", m.F[FDnBR])
	}
}

func TestNextTicketWithin(t *testing.T) {
	d := tinyDataset()
	// Billing tickets never count as customer-edge labels.
	if d.NextTicketWithin(1, 0, 365) {
		t.Fatal("billing ticket counted as customer-edge")
	}
	if !d.NextTicketWithin(0, 40, 28) {
		t.Fatal("line 0 should have a ticket within (40, 68]")
	}
	if d.NextTicketWithin(0, 50, 28) {
		t.Fatal("window is exclusive of afterDay tickets; next is day 90")
	}
	if !d.NextTicketWithin(0, 50, 40) {
		t.Fatal("day-90 ticket should fall within (50, 90]")
	}
}

func TestDaysToNextTicket(t *testing.T) {
	d := tinyDataset()
	if days, ok := d.DaysToNextTicket(0, 50); !ok || days != 40 {
		t.Fatalf("got %d,%v want 40,true", days, ok)
	}
	if _, ok := d.DaysToNextTicket(0, 90); ok {
		t.Fatal("no ticket after day 90 for line 0")
	}
}

func TestTicketIndexAgreesWithDataset(t *testing.T) {
	d := tinyDataset()
	ix := NewTicketIndex(d)
	for l := LineID(0); l < 3; l++ {
		for day := 0; day < DaysInYear; day += 13 {
			want := d.NextTicketWithin(l, day, 28)
			if got := ix.Within(l, day, 28); got != want {
				t.Fatalf("index disagrees at line %d day %d: %v vs %v", l, day, got, want)
			}
		}
	}
}

func TestTicketIndexPrev(t *testing.T) {
	ix := NewTicketIndex(tinyDataset())
	if _, ok := ix.Prev(0, 49); ok {
		t.Fatal("no ticket at or before day 49")
	}
	if day, ok := ix.Prev(0, 50); !ok || day != 50 {
		t.Fatalf("Prev(0,50) = %d,%v", day, ok)
	}
	if day, ok := ix.Prev(0, 400); !ok || day != 90 {
		t.Fatalf("Prev(0,400) = %d,%v", day, ok)
	}
	if n := ix.Count(0); n != 2 {
		t.Fatalf("Count(0) = %d", n)
	}
}

func TestOnSiteAndTraffic(t *testing.T) {
	d := tinyDataset()
	if d.OnSite(2, 205) {
		t.Fatal("line 2 is away on day 205")
	}
	if !d.OnSite(2, 199) {
		t.Fatal("line 2 is home on day 199")
	}
	if b := d.DailyBytes(2, 205); b != 0 {
		t.Fatalf("away subscriber generated %v bytes", b)
	}
	// High-usage subscriber should generate traffic on most days.
	active := 0
	for day := 0; day < 100; day++ {
		if d.DailyBytes(0, day) > 0 {
			active++
		}
	}
	if active < 70 {
		t.Fatalf("usage-0.9 subscriber active only %d/100 days", active)
	}
	// Deterministic given (seed, line, day).
	if d.DailyBytes(0, 10) != d.DailyBytes(0, 10) {
		t.Fatal("DailyBytes is not deterministic")
	}
}

func TestOutageAt(t *testing.T) {
	d := tinyDataset()
	if !d.OutageAt(1, 99, 100) {
		t.Fatal("outage overlapping window start not found")
	}
	if d.OutageAt(1, 104, 200) {
		t.Fatal("outage reported outside its interval")
	}
	if d.OutageAt(0, 0, 364) {
		t.Fatal("DSLAM 0 has no outage")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	d := tinyDataset()
	path := filepath.Join(t.TempDir(), "ds.gob.gz")
	if err := d.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumLines != d.NumLines || len(got.Measurements) != len(got.Measurements) {
		t.Fatal("round trip lost shape")
	}
	if got.At(1, 3).F[FDnBR] != d.At(1, 3).F[FDnBR] {
		t.Fatal("round trip lost measurement values")
	}
	if len(got.Tickets) != len(d.Tickets) || got.Tickets[2].Day != d.Tickets[2].Day {
		t.Fatal("round trip lost tickets")
	}
}

func TestCSVExports(t *testing.T) {
	d := tinyDataset()
	var buf bytes.Buffer
	if err := d.WriteMeasurementsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+Weeks*3 {
		t.Fatalf("measurement CSV has %d lines, want %d", len(lines), 1+Weeks*3)
	}
	if !strings.Contains(lines[0], "dnbr") {
		t.Fatalf("header missing feature names: %s", lines[0])
	}

	buf.Reset()
	if err := d.WriteTicketsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines = strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+len(d.Tickets) {
		t.Fatalf("ticket CSV has %d lines", len(lines))
	}
	// Ticket 1 has a disposition note joined in.
	if !strings.Contains(lines[1], ",3,52,4") {
		t.Fatalf("note not joined: %s", lines[1])
	}
}

func TestCategoricalBasicFeature(t *testing.T) {
	for f := 0; f < NumBasicFeatures; f++ {
		got := CategoricalBasicFeature(f)
		want := f == FState || f == FBT || f == FCrosstalk
		if got != want {
			t.Fatalf("CategoricalBasicFeature(%s) = %v", BasicFeatureNames[f], got)
		}
	}
}

func TestFeatureNamesComplete(t *testing.T) {
	if NumBasicFeatures != 25 {
		t.Fatalf("Table 2 defines 25 line features, have %d", NumBasicFeatures)
	}
	seen := map[string]bool{}
	for _, n := range BasicFeatureNames {
		if n == "" {
			t.Fatal("unnamed basic feature")
		}
		if seen[n] {
			t.Fatalf("duplicate feature name %q", n)
		}
		seen[n] = true
	}
}

func TestLoadRejectsCorruptFiles(t *testing.T) {
	dir := t.TempDir()

	// Not gzip at all.
	junk := filepath.Join(dir, "junk")
	if err := os.WriteFile(junk, []byte("plain text"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(junk); err == nil {
		t.Fatal("non-gzip file accepted")
	}

	// Valid gzip, garbage gob.
	gz := filepath.Join(dir, "garbage.gz")
	f, err := os.Create(gz)
	if err != nil {
		t.Fatal(err)
	}
	zw := gzip.NewWriter(f)
	if _, err := zw.Write([]byte("not a gob stream")); err != nil {
		t.Fatal(err)
	}
	zw.Close()
	f.Close()
	if _, err := Load(gz); err == nil {
		t.Fatal("garbage gob accepted")
	}

	// Truncated valid file.
	good := filepath.Join(dir, "good")
	if err := tinyDataset().Save(good); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(dir, "trunc")
	if err := os.WriteFile(trunc, b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(trunc); err == nil {
		t.Fatal("truncated file accepted")
	}

	// Structurally invalid dataset must fail Load's validation.
	bad := tinyDataset()
	bad.DSLAMOf[0] = 99
	badPath := filepath.Join(dir, "invalid")
	if err := bad.Save(badPath); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(badPath); err == nil {
		t.Fatal("invalid dataset accepted on load")
	}

	// Missing file.
	if _, err := Load(filepath.Join(dir, "absent")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// Package data defines the dataset vocabulary shared by every NEVERMIND
// subsystem: the simulated 2009 calendar, line measurements, customer trouble
// tickets, disposition notes and subscriber profiles, plus CSV/gob
// persistence so generated datasets can be stored and re-used.
//
// The paper's four information sources (§3.3) map onto the four record types
// here: DSL line measurements (weekly Saturday line tests), customer trouble
// tickets, ticket disposition notes, and subscriber profiles.
package data

import (
	"fmt"
	"time"
)

// The simulation calendar covers the year 2009, matching the paper's dataset.
// Days are numbered 0..364 with day 0 = Thursday, January 1, 2009. Line tests
// run every Saturday (§3.3), giving 52 measurement weeks; week w's test falls
// on day SaturdayOf(w).
const (
	DaysInYear = 365
	// firstWeekday is the weekday of day 0. January 1, 2009 was a Thursday.
	firstWeekday = time.Thursday
	// FirstSaturday is the day index of the first Saturday of 2009 (Jan 3).
	FirstSaturday = 2
	// Weeks is the number of Saturday line tests in the year.
	Weeks = 52
)

// Weekday returns the day of week for a day index.
func Weekday(day int) time.Weekday {
	return time.Weekday((int(firstWeekday) + day) % 7)
}

// SaturdayOf returns the day index of measurement week w (0-based).
// It panics if w is outside [0, Weeks).
func SaturdayOf(week int) int {
	if week < 0 || week >= Weeks {
		panic(fmt.Sprintf("data: week %d out of range [0,%d)", week, Weeks))
	}
	return FirstSaturday + 7*week
}

// WeekOf returns the index of the most recent measurement week whose Saturday
// is <= day, and false if day precedes the first Saturday.
func WeekOf(day int) (int, bool) {
	if day < FirstSaturday {
		return 0, false
	}
	w := (day - FirstSaturday) / 7
	if w >= Weeks {
		w = Weeks - 1
	}
	return w, true
}

// Date returns the calendar date of a day index.
func Date(day int) time.Time {
	return time.Date(2009, 1, 1, 0, 0, 0, 0, time.UTC).AddDate(0, 0, day)
}

// DateString formats a day index as YYYY-MM-DD.
func DateString(day int) string {
	return Date(day).Format("2006-01-02")
}

// DayOfDate returns the day index of a month/day in 2009.
func DayOfDate(month time.Month, dayOfMonth int) int {
	d := time.Date(2009, month, dayOfMonth, 0, 0, 0, 0, time.UTC)
	return int(d.Sub(time.Date(2009, 1, 1, 0, 0, 0, 0, time.UTC)).Hours() / 24)
}

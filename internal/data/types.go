package data

// LineID identifies one dedicated DSL line (equivalently, one subscriber).
type LineID int32

// Basic line features measured by the weekly DSLAM-initiated line test,
// exactly the 25 features of Table 2 in the paper. Prefixes "Dn" and "Up"
// mean downstream (downloading) and upstream (uploading).
const (
	FState          = iota // 1 if the modem was on during the test
	FDnBR                  // downstream bit rate (kbps)
	FUpBR                  // upstream bit rate (kbps)
	FDnPwr                 // downstream signal power (dBm)
	FUpPwr                 // upstream signal power (dBm)
	FDnNMR                 // downstream noise margin (dB)
	FUpNMR                 // upstream noise margin (dB)
	FDnAten                // downstream signal attenuation (dB)
	FUpAten                // upstream signal attenuation (dB)
	FDnRelCap              // downstream relative capacity (%)
	FUpRelCap              // upstream relative capacity (%)
	FDnCVCnt1              // code violation count, low threshold
	FDnCVCnt2              // code violation count, mid threshold
	FDnCVCnt3              // code violation count, high threshold
	FDnESCnt1              // seconds with code violations, low threshold
	FDnESCnt2              // seconds with code violations, high threshold
	FDnFECCnt1             // forward error correction count (>= 50 clamps)
	FHiCar                 // biggest usable carrier number
	FBT                    // 1 if a bridge tap is present
	FCrosstalk             // 1 if crosstalk detected
	FLoopLength            // estimated loop length (ft)
	FDnMaxAttainFBR        // maximum attainable downstream fast bit rate (kbps)
	FUpMaxAttainFBR        // maximum attainable upstream fast bit rate (kbps)
	FDnCells               // rolling count of downstream cells
	FUpCells               // rolling count of upstream cells

	NumBasicFeatures
)

// BasicFeatureNames holds the Table 2 feature mnemonics, indexed by the
// F* constants.
var BasicFeatureNames = [NumBasicFeatures]string{
	"state", "dnbr", "upbr", "dnpwr", "uppwr", "dnnmr", "upnmr",
	"dnaten", "upaten", "dnrelcap", "uprelcap",
	"dncvcnt1", "dncvcnt2", "dncvcnt3", "dnescnt1", "dnescnt2", "dnfeccnt1",
	"hicar", "bt", "crosstalk", "looplength",
	"dnmaxattainfbr", "upmaxattainfbr", "dncells", "upcells",
}

// CategoricalBasicFeature reports whether a Table 2 feature is categorical
// (binary); the rest are continuous. Categorical variables are expanded to
// binary indicators before derived features are formed (§4.2, footnote 2).
func CategoricalBasicFeature(f int) bool {
	switch f {
	case FState, FBT, FCrosstalk:
		return true
	}
	return false
}

// Measurement is the result of one weekly line test for one line. When the
// modem was off during the test the record is Missing and the feature vector
// holds only the static line attributes the DSLAM can still infer.
type Measurement struct {
	Line    LineID
	Week    int  // measurement week, 0..Weeks-1
	Missing bool // modem off: no conversation, no record (paper §4.2 "modem feature")
	F       [NumBasicFeatures]float32
}

// Day returns the calendar day of the measurement (its week's Saturday).
func (m *Measurement) Day() int { return SaturdayOf(m.Week) }

// TicketCategory is the coarse label a customer agent assigns to a ticket
// (§3.3, information source 2). Only customer-edge tickets feed NEVERMIND.
type TicketCategory uint8

const (
	CatCustomerEdge TicketCategory = iota // technical customer-edge problem
	CatBilling                            // billing and account issues
	CatOther                              // provisioning, misdials, ...
)

func (c TicketCategory) String() string {
	switch c {
	case CatCustomerEdge:
		return "customer-edge"
	case CatBilling:
		return "billing"
	default:
		return "other"
	}
}

// Ticket is a customer-reported problem.
type Ticket struct {
	ID       int
	Line     LineID
	Day      int // arrival day index
	Category TicketCategory
}

// DispositionNote summarises one field dispatch (§3.3, information source 3):
// which device was finally identified as the cause, when, and how long the
// visit took. Disposition codes index the catalog in internal/faults; they
// are noisy ground truth (the paper: "determined based on the expert
// knowledge of the technicians and hence can be very noisy").
type DispositionNote struct {
	TicketID    int
	Line        LineID
	Day         int // dispatch day
	Disposition int // faults.DispositionID
	TestsRun    int // number of locations the technician tested
}

// Profile is a subscriber service profile (§3.3, information source 4): the
// expected line parameters for the service tier the customer pays for.
type Profile struct {
	Name   string
	DnKbps float64 // expected downstream rate
	UpKbps float64 // expected upstream rate
}

// The service tiers offered in the simulated network. The first two mirror
// the paper's examples: basic 768/384 and advanced 2500/768.
var (
	ProfileBasic    = Profile{Name: "basic", DnKbps: 768, UpKbps: 384}
	ProfileAdvanced = Profile{Name: "advanced", DnKbps: 2500, UpKbps: 768}
	ProfilePlus     = Profile{Name: "plus", DnKbps: 1500, UpKbps: 512}
	ProfileElite    = Profile{Name: "elite", DnKbps: 6000, UpKbps: 768}

	// Profiles lists all tiers; indexes are stable and used as the
	// categorical profile id in feature encoding.
	Profiles = []Profile{ProfileBasic, ProfilePlus, ProfileAdvanced, ProfileElite}
)

// Outage is a network outage event at a DSLAM (§2.2): a problem between the
// BRAS and the DSLAM that affects every line the DSLAM serves.
type Outage struct {
	DSLAM    int
	StartDay int
	EndDay   int // inclusive
}

// Active reports whether the outage covers the given day.
func (o Outage) Active(day int) bool { return day >= o.StartDay && day <= o.EndDay }

package data

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSV import — the adoption path for real operator data. The formats are
// the ones WriteMeasurementsCSV and WriteTicketsCSV emit; an ISP exporting
// its own line tests and tickets into those shapes can run the whole
// pipeline unmodified. The importers return components; the caller
// assembles the Dataset (profiles and topology come from the subscriber
// database, not from these files).

// ReadMeasurementsCSV parses a measurement export. Rows may arrive in any
// order; the result is the dense week-major grid Dataset expects, with
// numLines inferred from the largest line id. Rows absent from the file
// stay Missing.
func ReadMeasurementsCSV(r io.Reader) ([]Measurement, int, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, 0, fmt.Errorf("data: measurements header: %w", err)
	}
	col := map[string]int{}
	for i, h := range header {
		col[h] = i
	}
	for _, need := range []string{"line", "week", "missing"} {
		if _, ok := col[need]; !ok {
			return nil, 0, fmt.Errorf("data: measurements CSV missing %q column", need)
		}
	}
	featCol := make([]int, NumBasicFeatures)
	for f := 0; f < NumBasicFeatures; f++ {
		i, ok := col[BasicFeatureNames[f]]
		if !ok {
			return nil, 0, fmt.Errorf("data: measurements CSV missing feature %q", BasicFeatureNames[f])
		}
		featCol[f] = i
	}

	type rec struct {
		m Measurement
	}
	var rows []rec
	maxLine := -1
	for lineNo := 2; ; lineNo++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, 0, fmt.Errorf("data: measurements row %d: %w", lineNo, err)
		}
		var m Measurement
		id, err := strconv.Atoi(row[col["line"]])
		if err != nil || id < 0 {
			return nil, 0, fmt.Errorf("data: row %d: bad line id %q", lineNo, row[col["line"]])
		}
		m.Line = LineID(id)
		week, err := strconv.Atoi(row[col["week"]])
		if err != nil || week < 0 || week >= Weeks {
			return nil, 0, fmt.Errorf("data: row %d: bad week %q", lineNo, row[col["week"]])
		}
		m.Week = week
		missing, err := strconv.ParseBool(row[col["missing"]])
		if err != nil {
			return nil, 0, fmt.Errorf("data: row %d: bad missing flag %q", lineNo, row[col["missing"]])
		}
		m.Missing = missing
		for f := 0; f < NumBasicFeatures; f++ {
			v, err := strconv.ParseFloat(row[featCol[f]], 32)
			if err != nil {
				return nil, 0, fmt.Errorf("data: row %d: bad %s value %q", lineNo, BasicFeatureNames[f], row[featCol[f]])
			}
			m.F[f] = float32(v)
		}
		if id > maxLine {
			maxLine = id
		}
		rows = append(rows, rec{m})
	}
	if maxLine < 0 {
		return nil, 0, fmt.Errorf("data: measurements CSV has no rows")
	}

	numLines := maxLine + 1
	grid := make([]Measurement, Weeks*numLines)
	for w := 0; w < Weeks; w++ {
		for l := 0; l < numLines; l++ {
			grid[w*numLines+l] = Measurement{Line: LineID(l), Week: w, Missing: true}
		}
	}
	for _, r := range rows {
		grid[r.m.Week*numLines+int(r.m.Line)] = r.m
	}
	return grid, numLines, nil
}

// ReadTicketsCSV parses a ticket export (with joined disposition-note
// columns, as WriteTicketsCSV emits). Tickets are returned sorted the way
// the file lists them; notes exist for rows with a disposition.
func ReadTicketsCSV(r io.Reader) ([]Ticket, []DispositionNote, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, nil, fmt.Errorf("data: tickets header: %w", err)
	}
	col := map[string]int{}
	for i, h := range header {
		col[h] = i
	}
	for _, need := range []string{"ticket", "line", "day", "category", "disposition", "dispatch_day", "tests_run"} {
		if _, ok := col[need]; !ok {
			return nil, nil, fmt.Errorf("data: tickets CSV missing %q column", need)
		}
	}
	var tickets []Ticket
	var notes []DispositionNote
	for lineNo := 2; ; lineNo++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, fmt.Errorf("data: tickets row %d: %w", lineNo, err)
		}
		id, err := strconv.Atoi(row[col["ticket"]])
		if err != nil {
			return nil, nil, fmt.Errorf("data: row %d: bad ticket id", lineNo)
		}
		lid, err := strconv.Atoi(row[col["line"]])
		if err != nil || lid < 0 {
			return nil, nil, fmt.Errorf("data: row %d: bad line id", lineNo)
		}
		day, err := strconv.Atoi(row[col["day"]])
		if err != nil || day < 0 || day >= DaysInYear {
			return nil, nil, fmt.Errorf("data: row %d: bad day", lineNo)
		}
		cat, err := parseCategory(row[col["category"]])
		if err != nil {
			return nil, nil, fmt.Errorf("data: row %d: %w", lineNo, err)
		}
		tickets = append(tickets, Ticket{ID: id, Line: LineID(lid), Day: day, Category: cat})

		if d := row[col["disposition"]]; d != "" {
			disp, err := strconv.Atoi(d)
			if err != nil {
				return nil, nil, fmt.Errorf("data: row %d: bad disposition %q", lineNo, d)
			}
			dd, err := strconv.Atoi(row[col["dispatch_day"]])
			if err != nil {
				return nil, nil, fmt.Errorf("data: row %d: bad dispatch day", lineNo)
			}
			tests, err := strconv.Atoi(row[col["tests_run"]])
			if err != nil {
				return nil, nil, fmt.Errorf("data: row %d: bad tests_run", lineNo)
			}
			notes = append(notes, DispositionNote{
				TicketID: id, Line: LineID(lid), Day: dd, Disposition: disp, TestsRun: tests,
			})
		}
	}
	return tickets, notes, nil
}

func parseCategory(s string) (TicketCategory, error) {
	switch s {
	case "customer-edge":
		return CatCustomerEdge, nil
	case "billing":
		return CatBilling, nil
	case "other":
		return CatOther, nil
	}
	return 0, fmt.Errorf("data: unknown ticket category %q", s)
}

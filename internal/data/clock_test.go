package data

import (
	"testing"
	"testing/quick"
	"time"
)

func TestCalendarAnchors(t *testing.T) {
	if wd := Weekday(0); wd != time.Thursday {
		t.Fatalf("Jan 1 2009 weekday = %v, want Thursday", wd)
	}
	if wd := Weekday(FirstSaturday); wd != time.Saturday {
		t.Fatalf("day %d weekday = %v, want Saturday", FirstSaturday, wd)
	}
	if got := DateString(0); got != "2009-01-01" {
		t.Fatalf("day 0 = %s", got)
	}
	if got := DateString(DaysInYear - 1); got != "2009-12-31" {
		t.Fatalf("last day = %s", got)
	}
}

func TestAllSaturdaysAreSaturdays(t *testing.T) {
	for w := 0; w < Weeks; w++ {
		d := SaturdayOf(w)
		if Weekday(d) != time.Saturday {
			t.Fatalf("week %d day %d is %v", w, d, Weekday(d))
		}
		if d >= DaysInYear {
			t.Fatalf("week %d falls outside the year", w)
		}
	}
}

func TestWeekOfInvertsSaturdayOf(t *testing.T) {
	for w := 0; w < Weeks; w++ {
		got, ok := WeekOf(SaturdayOf(w))
		if !ok || got != w {
			t.Fatalf("WeekOf(SaturdayOf(%d)) = %d, %v", w, got, ok)
		}
	}
	if _, ok := WeekOf(FirstSaturday - 1); ok {
		t.Fatal("WeekOf before first Saturday should report false")
	}
}

func TestWeekOfMonotone(t *testing.T) {
	err := quick.Check(func(a uint16) bool {
		day := int(a) % DaysInYear
		w, ok := WeekOf(day)
		if !ok {
			return day < FirstSaturday
		}
		return SaturdayOf(w) <= day && (w == Weeks-1 || day < SaturdayOf(w)+7)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestSaturdayOfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SaturdayOf(-1) should panic")
		}
	}()
	SaturdayOf(-1)
}

func TestDayOfDate(t *testing.T) {
	if d := DayOfDate(time.January, 1); d != 0 {
		t.Fatalf("Jan 1 = day %d", d)
	}
	if d := DayOfDate(time.August, 1); DateString(d) != "2009-08-01" {
		t.Fatalf("Aug 1 maps to %s", DateString(d))
	}
	if d := DayOfDate(time.December, 31); d != DaysInYear-1 {
		t.Fatalf("Dec 31 = day %d", d)
	}
}

package data

import (
	"bytes"
	"strings"
	"testing"
)

func TestMeasurementsCSVRoundTrip(t *testing.T) {
	d := tinyDataset()
	// Give a couple of records distinguishing values and a missing flag.
	d.At(1, 5).F[FDnNMR] = 7.25
	d.At(2, 10).Missing = true

	var buf bytes.Buffer
	if err := d.WriteMeasurementsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	grid, numLines, err := ReadMeasurementsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if numLines != d.NumLines {
		t.Fatalf("inferred %d lines, want %d", numLines, d.NumLines)
	}
	if len(grid) != len(d.Measurements) {
		t.Fatalf("grid size %d, want %d", len(grid), len(d.Measurements))
	}
	for i := range grid {
		if grid[i] != d.Measurements[i] {
			t.Fatalf("record %d differs after round trip: %+v vs %+v", i, grid[i], d.Measurements[i])
		}
	}
}

func TestTicketsCSVRoundTrip(t *testing.T) {
	d := tinyDataset()
	var buf bytes.Buffer
	if err := d.WriteTicketsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	tickets, notes, err := ReadTicketsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(tickets) != len(d.Tickets) {
		t.Fatalf("%d tickets, want %d", len(tickets), len(d.Tickets))
	}
	for i := range tickets {
		if tickets[i] != d.Tickets[i] {
			t.Fatalf("ticket %d differs: %+v vs %+v", i, tickets[i], d.Tickets[i])
		}
	}
	if len(notes) != len(d.Notes) {
		t.Fatalf("%d notes, want %d", len(notes), len(d.Notes))
	}
	for i := range notes {
		if notes[i] != d.Notes[i] {
			t.Fatalf("note %d differs: %+v vs %+v", i, notes[i], d.Notes[i])
		}
	}
}

func TestReadMeasurementsCSVFillsAbsentRowsAsMissing(t *testing.T) {
	// A file with a single present record: everything else must be a
	// Missing placeholder.
	d := tinyDataset()
	var buf bytes.Buffer
	if err := d.WriteMeasurementsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(buf.String(), "\n")
	one := strings.Join(lines[:2], "") // header + first record
	grid, numLines, err := ReadMeasurementsCSV(strings.NewReader(one))
	if err != nil {
		t.Fatal(err)
	}
	if numLines != 1 {
		t.Fatalf("inferred %d lines from a single line-0 row", numLines)
	}
	present := 0
	for i := range grid {
		if !grid[i].Missing {
			present++
		}
	}
	if present != 1 {
		t.Fatalf("%d present records, want 1", present)
	}
}

func TestReadMeasurementsCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":       "",
		"no columns":  "a,b,c\n1,2,3\n",
		"bad line id": "line,week,missing," + strings.Join(BasicFeatureNames[:], ",") + "\nx,0,false" + strings.Repeat(",0", NumBasicFeatures) + "\n",
		"bad week":    "line,week,missing," + strings.Join(BasicFeatureNames[:], ",") + "\n0,99,false" + strings.Repeat(",0", NumBasicFeatures) + "\n",
		"no rows":     "line,week,missing," + strings.Join(BasicFeatureNames[:], ",") + "\n",
	}
	for name, csv := range cases {
		if _, _, err := ReadMeasurementsCSV(strings.NewReader(csv)); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
}

func TestReadTicketsCSVErrors(t *testing.T) {
	header := "ticket,line,day,date,category,disposition,dispatch_day,tests_run\n"
	cases := map[string]string{
		"empty":        "",
		"bad category": header + "0,1,5,2009-01-06,unknown,,,\n",
		"bad day":      header + "0,1,999,x,billing,,,\n",
		"bad disp":     header + "0,1,5,x,customer-edge,zzz,6,1\n",
	}
	for name, csv := range cases {
		if _, _, err := ReadTicketsCSV(strings.NewReader(csv)); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
}

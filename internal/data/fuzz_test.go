package data

import (
	"bytes"
	"strings"
	"testing"
)

// Fuzzing for the CSV importers: whatever bytes arrive, the parsers must
// return a clean error or a structurally sound result — never panic, never
// emit out-of-range records.

func FuzzReadMeasurementsCSV(f *testing.F) {
	// Seed with a real export and mutations of it.
	d := tinyDataset()
	var buf bytes.Buffer
	if err := d.WriteMeasurementsCSV(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.String()
	f.Add(valid)
	f.Add(strings.Replace(valid, "false", "maybe", 1))
	f.Add("line,week,missing\n0,0,false\n")
	f.Add("")
	f.Add("line,week,missing," + strings.Join(BasicFeatureNames[:], ",") + "\n-1,0,false" + strings.Repeat(",0", NumBasicFeatures))

	f.Fuzz(func(t *testing.T, csv string) {
		grid, numLines, err := ReadMeasurementsCSV(strings.NewReader(csv))
		if err != nil {
			return
		}
		if numLines <= 0 {
			t.Fatalf("accepted input with %d lines", numLines)
		}
		if len(grid) != Weeks*numLines {
			t.Fatalf("grid %d records for %d lines", len(grid), numLines)
		}
		for i := range grid {
			m := &grid[i]
			if int(m.Line) < 0 || int(m.Line) >= numLines || m.Week < 0 || m.Week >= Weeks {
				t.Fatalf("out-of-range record %+v", m)
			}
		}
	})
}

func FuzzReadTicketsCSV(f *testing.F) {
	d := tinyDataset()
	var buf bytes.Buffer
	if err := d.WriteTicketsCSV(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("ticket,line,day,date,category,disposition,dispatch_day,tests_run\n1,2,3,x,billing,,,\n")
	f.Add("garbage")
	f.Add("")

	f.Fuzz(func(t *testing.T, csv string) {
		tickets, notes, err := ReadTicketsCSV(strings.NewReader(csv))
		if err != nil {
			return
		}
		for _, tk := range tickets {
			if tk.Day < 0 || tk.Day >= DaysInYear {
				t.Fatalf("ticket day %d accepted", tk.Day)
			}
		}
		byID := map[int]bool{}
		for _, tk := range tickets {
			byID[tk.ID] = true
		}
		for _, n := range notes {
			if !byID[n.TicketID] {
				t.Fatalf("note for unknown ticket %d", n.TicketID)
			}
		}
	})
}

package data

import "fmt"

func errGrid(format string, args ...any) error {
	return fmt.Errorf("data: "+format, args...)
}

// MeasurementGrid is the chunked alternative to Dataset.Measurements: the
// same dense week-major (week, line) grid, but stored as fixed-size chunks of
// lines so a consumer that changes a handful of cells can share every
// untouched chunk with its predecessor and copy only the chunks it writes.
// The serving store's delta-applied snapshots are the motivating consumer: a
// weekly ingest touches a few hundred lines, and recopying a multi-hundred-MB
// flat grid per snapshot made every ingest O(population).
//
// All fields are exported so a Dataset carrying a grid stays gob-encodable;
// treat them as read-only outside this file and the copy-on-write helpers.
type MeasurementGrid struct {
	NumLines int
	// ChunksPerWeek = ceil(NumLines / GridChunkLines); week w's chunk c sits
	// at Chunks[w*ChunksPerWeek+c], and only the last chunk of a week may be
	// short.
	ChunksPerWeek int
	Chunks        [][]Measurement
}

// GridChunkLines is the copy-on-write granularity in lines per chunk. 1024
// lines x 120 B = ~120 KB per chunk: small enough that a delta touching one
// line copies little, large enough that a full grid is a few hundred chunk
// headers, not millions.
const GridChunkLines = 1024

// NewMeasurementGrid allocates a dense grid for numLines lines with every
// cell initialised to the Missing default (the same "no record at all" cell a
// flat snapshot grid starts from), with Line and Week stamped so Validate's
// identity check holds.
func NewMeasurementGrid(numLines int) *MeasurementGrid {
	cpw := (numLines + GridChunkLines - 1) / GridChunkLines
	g := &MeasurementGrid{
		NumLines:      numLines,
		ChunksPerWeek: cpw,
		Chunks:        make([][]Measurement, Weeks*cpw),
	}
	for w := 0; w < Weeks; w++ {
		for c := 0; c < cpw; c++ {
			lo := c * GridChunkLines
			hi := lo + GridChunkLines
			if hi > numLines {
				hi = numLines
			}
			chunk := make([]Measurement, hi-lo)
			for i := range chunk {
				chunk[i] = Measurement{Line: LineID(lo + i), Week: w, Missing: true}
			}
			g.Chunks[w*cpw+c] = chunk
		}
	}
	return g
}

// At returns the measurement cell for (line, week). Callers other than the
// grid's builder must treat the cell as read-only: chunks are shared between
// snapshot generations.
func (g *MeasurementGrid) At(line LineID, week int) *Measurement {
	c := int(line) / GridChunkLines
	return &g.Chunks[week*g.ChunksPerWeek+c][int(line)%GridChunkLines]
}

// ShareCopy returns a grid sharing every chunk with g: only the top-level
// chunk-pointer table is copied. Pair it with SetCOW, which copies a shared
// chunk the first time it is written.
func (g *MeasurementGrid) ShareCopy() *MeasurementGrid {
	return &MeasurementGrid{
		NumLines:      g.NumLines,
		ChunksPerWeek: g.ChunksPerWeek,
		Chunks:        append([][]Measurement(nil), g.Chunks...),
	}
}

// SetCOW writes m into cell (line, week), copying the containing chunk first
// unless owned already marks it private to this grid. owned must be a
// caller-held bitmap of len(g.Chunks), all false for a fresh ShareCopy.
func (g *MeasurementGrid) SetCOW(owned []bool, line LineID, week int, m Measurement) {
	ci := week*g.ChunksPerWeek + int(line)/GridChunkLines
	if !owned[ci] {
		g.Chunks[ci] = append([]Measurement(nil), g.Chunks[ci]...)
		owned[ci] = true
	}
	g.Chunks[ci][int(line)%GridChunkLines] = m
}

// Validate checks the grid's structural invariants against numLines; called
// from Dataset.Validate and from tests asserting snapshots are never torn.
func (g *MeasurementGrid) Validate(numLines int) error {
	if g.NumLines != numLines {
		return errGrid("grid sized for %d lines, dataset has %d", g.NumLines, numLines)
	}
	cpw := (numLines + GridChunkLines - 1) / GridChunkLines
	if g.ChunksPerWeek != cpw {
		return errGrid("grid has %d chunks per week, want %d", g.ChunksPerWeek, cpw)
	}
	if len(g.Chunks) != Weeks*cpw {
		return errGrid("grid has %d chunks, want %d", len(g.Chunks), Weeks*cpw)
	}
	for w := 0; w < Weeks; w++ {
		for c := 0; c < cpw; c++ {
			lo := c * GridChunkLines
			want := GridChunkLines
			if lo+want > numLines {
				want = numLines - lo
			}
			chunk := g.Chunks[w*cpw+c]
			if len(chunk) != want {
				return errGrid("grid chunk (%d,%d) holds %d cells, want %d", w, c, len(chunk), want)
			}
			for i := range chunk {
				if chunk[i].Week != w || chunk[i].Line != LineID(lo+i) {
					return errGrid("grid record at (%d,%d) holds (%d,%d)",
						w, lo+i, chunk[i].Week, chunk[i].Line)
				}
			}
		}
	}
	return nil
}

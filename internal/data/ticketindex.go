package data

import "sort"

// TicketIndex is a per-line index over customer-edge ticket arrival days.
// Labelling the training set asks "does line u file a ticket in (t, t+T]?"
// once per (line, week) pair — millions of times — so the linear scans on
// Dataset are indexed once here instead.
type TicketIndex struct {
	days [][]int32 // per line, ascending arrival days of customer-edge tickets
}

// NewTicketIndex builds the index from a dataset.
func NewTicketIndex(d *Dataset) *TicketIndex {
	ix := &TicketIndex{days: make([][]int32, d.NumLines)}
	for _, t := range d.Tickets {
		if t.Category != CatCustomerEdge {
			continue
		}
		ix.days[t.Line] = append(ix.days[t.Line], int32(t.Day))
	}
	for _, s := range ix.days {
		// Dataset tickets are sorted by day already; sort defensively in
		// case the index is built from an unvalidated dataset.
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	}
	return ix
}

// Within reports whether the line files a customer-edge ticket in the window
// (afterDay, afterDay+windowDays].
func (ix *TicketIndex) Within(line LineID, afterDay, windowDays int) bool {
	day, ok := ix.Next(line, afterDay)
	return ok && day <= afterDay+windowDays
}

// Next returns the arrival day of the line's first customer-edge ticket
// strictly after afterDay, and false if there is none.
func (ix *TicketIndex) Next(line LineID, afterDay int) (int, bool) {
	s := ix.days[line]
	i := sort.Search(len(s), func(i int) bool { return int(s[i]) > afterDay })
	if i == len(s) {
		return 0, false
	}
	return int(s[i]), true
}

// Prev returns the arrival day of the line's last customer-edge ticket at or
// before day, and false if there is none. It backs the "ticket" customer
// feature of Table 3 (time from the most recent trouble ticket).
func (ix *TicketIndex) Prev(line LineID, day int) (int, bool) {
	s := ix.days[line]
	i := sort.Search(len(s), func(i int) bool { return int(s[i]) > day })
	if i == 0 {
		return 0, false
	}
	return int(s[i-1]), true
}

// Count returns the number of customer-edge tickets for the line.
func (ix *TicketIndex) Count(line LineID) int { return len(ix.days[line]) }

package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Replication stream layout — the wire format a leader ships WAL records in
// (GET /v1/repl/wal). It reuses the segment record framing so a follower
// validates exactly what recovery validates:
//
//	[20-byte header: 8-byte magic "NVMREPL1" | u32 format | u64 leader version]
//	[record frame]*
//
// Record frame (identical to the segment format):
//
//	[u32 payload length | u32 CRC32-C of payload | payload]
//
// The header's leader version is the durable log tail at stream start; the
// follower derives its lag from it. A stream may end at any frame boundary
// (the leader caps records per response; the follower just polls again from
// its new applied version). Ending mid-frame is torn — the follower discards
// the partial frame and re-polls; nothing invalid ever reaches the store.

const (
	streamMagic  = "NVMREPL1"
	streamFormat = 1
	// StreamHeaderLen is the byte length of the stream header.
	StreamHeaderLen = 20
)

// StreamWriter frames WAL records onto a replication stream.
type StreamWriter struct {
	w   io.Writer
	buf []byte
}

// NewStreamWriter writes the stream header carrying the leader's current
// durable version and returns a writer for the record frames.
func NewStreamWriter(w io.Writer, leaderVersion uint64) (*StreamWriter, error) {
	hdr := make([]byte, StreamHeaderLen)
	copy(hdr, streamMagic)
	binary.LittleEndian.PutUint32(hdr[8:], streamFormat)
	binary.LittleEndian.PutUint64(hdr[12:], leaderVersion)
	if _, err := w.Write(hdr); err != nil {
		return nil, fmt.Errorf("wal: write stream header: %w", err)
	}
	return &StreamWriter{w: w}, nil
}

// WriteRecord frames and writes one record.
func (sw *StreamWriter) WriteRecord(r *Record) error {
	payload, err := appendRecord(sw.buf[:0], r)
	if err != nil {
		return err
	}
	sw.buf = payload[:0]
	if len(payload) > MaxRecordBytes {
		return fmt.Errorf("wal: record payload %d bytes exceeds limit %d", len(payload), MaxRecordBytes)
	}
	frame := make([]byte, frameLen+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, crcTable))
	copy(frame[frameLen:], payload)
	if _, err := sw.w.Write(frame); err != nil {
		return fmt.Errorf("wal: write stream frame: %w", err)
	}
	return nil
}

// StreamReader decodes a replication stream. It validates framing, CRC, and
// full record contents (via the segment decoder), so every record it returns
// is safe to hand to the store; anything else surfaces as an error before any
// bytes of it escape.
type StreamReader struct {
	r             io.Reader
	leaderVersion uint64
	payload       []byte
}

// NewStreamReader reads and validates the stream header.
func NewStreamReader(r io.Reader) (*StreamReader, error) {
	hdr := make([]byte, StreamHeaderLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("%w: stream header truncated", ErrCorrupt)
	}
	if string(hdr[:8]) != streamMagic {
		return nil, fmt.Errorf("%w: bad stream magic", ErrCorrupt)
	}
	if binary.LittleEndian.Uint32(hdr[8:]) != streamFormat {
		return nil, fmt.Errorf("%w: unknown stream format", ErrCorrupt)
	}
	return &StreamReader{r: r, leaderVersion: binary.LittleEndian.Uint64(hdr[12:])}, nil
}

// LeaderVersion returns the leader's durable version at stream start.
func (sr *StreamReader) LeaderVersion() uint64 { return sr.leaderVersion }

// Next returns the next record, io.EOF at a clean frame boundary, or a
// wrapped ErrCorrupt for anything torn or invalid.
func (sr *StreamReader) Next() (*Record, error) {
	var frame [frameLen]byte
	if _, err := io.ReadFull(sr.r, frame[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: torn stream frame", ErrCorrupt)
	}
	n := binary.LittleEndian.Uint32(frame[:4])
	if n < recHeaderLen || n > MaxRecordBytes {
		return nil, fmt.Errorf("%w: stream frame claims %d bytes", ErrCorrupt, n)
	}
	if cap(sr.payload) < int(n) {
		sr.payload = make([]byte, n)
	}
	sr.payload = sr.payload[:n]
	if _, err := io.ReadFull(sr.r, sr.payload); err != nil {
		return nil, fmt.Errorf("%w: torn stream payload", ErrCorrupt)
	}
	if crc32.Checksum(sr.payload, crcTable) != binary.LittleEndian.Uint32(frame[4:]) {
		return nil, fmt.Errorf("%w: stream frame CRC mismatch", ErrCorrupt)
	}
	rec, err := decodeRecord(sr.payload)
	if err != nil {
		return nil, err
	}
	return rec, nil
}

// IsCorrupt reports whether err marks invalid stream bytes (as opposed to a
// clean EOF or a transport error).
func IsCorrupt(err error) bool { return errors.Is(err, ErrCorrupt) }

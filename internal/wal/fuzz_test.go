package wal

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALDecode feeds arbitrary bytes to every decoder surface as a segment
// file: Inspect, Replay, and Open (repair) must never panic, must agree on
// the length of the valid prefix, and must never hand a corrupt batch to the
// replay callback (every delivered record re-validates cleanly).
func FuzzWALDecode(f *testing.F) {
	// Seed with a healthy two-record segment plus adversarial variants:
	// truncations, bit flips at structural offsets, appended garbage.
	healthy := func() []byte {
		dir := f.TempDir()
		l, _, err := Open(dir, Options{Sync: SyncNever})
		if err != nil {
			f.Fatal(err)
		}
		for v := uint64(1); v <= 2; v++ {
			if err := l.Append(testRecord(v)); err != nil {
				f.Fatal(err)
			}
		}
		l.Close()
		names, _ := segNames(dir)
		b, err := os.ReadFile(filepath.Join(dir, names[0]))
		if err != nil {
			f.Fatal(err)
		}
		return b
	}()
	f.Add(healthy)
	f.Add(healthy[:len(healthy)-3])                           // torn final frame
	f.Add(healthy[:segHdrLen])                                // header only
	f.Add(healthy[:segHdrLen/2])                              // torn header
	f.Add(append(append([]byte{}, healthy...), "garbage"...)) // garbage tail
	for _, off := range []int{0, 8, segHdrLen, segHdrLen + 2, segHdrLen + 6, len(healthy) / 2} {
		b := append([]byte{}, healthy...)
		if off < len(b) {
			b[off] ^= 0x01
			f.Add(b)
		}
	}
	huge := append([]byte{}, healthy[:segHdrLen]...)
	huge = binary.LittleEndian.AppendUint32(huge, uint32(MaxRecordBytes)) // frame claims 64 MB
	huge = binary.LittleEndian.AppendUint32(huge, 0xdeadbeef)
	f.Add(huge)
	f.Add([]byte{})
	f.Add([]byte("NVMWAL01 but not really a segment"))

	f.Fuzz(func(t *testing.T, seg []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, segName(1))
		if err := os.WriteFile(path, seg, 0o644); err != nil {
			t.Fatal(err)
		}

		ds, err := Inspect(dir)
		if err != nil {
			t.Fatalf("Inspect errored on fuzz input: %v", err)
		}

		replayed := 0
		_, rerr := Replay(dir, 0, func(r *Record) error {
			// Every delivered record must survive a fresh encode/decode
			// cycle — i.e. it is structurally valid, not a corrupt batch
			// that slipped through.
			payload, err := appendRecord(nil, r)
			if err != nil {
				t.Fatalf("replayed record %d does not re-encode: %v", r.Version, err)
			}
			if _, err := decodeRecord(payload); err != nil {
				t.Fatalf("replayed record %d does not re-decode: %v", r.Version, err)
			}
			if r.Version != uint64(replayed+1) {
				t.Fatalf("replay out of order: got version %d at position %d", r.Version, replayed)
			}
			replayed++
			return nil
		})
		// A replay gap error can only happen when the chain doesn't start
		// at 1 (fuzzed first-record version differs from the name); that is
		// a legitimate rejection, not a failure — but then nothing may have
		// been applied.
		if rerr != nil && replayed != 0 {
			t.Fatalf("replay applied %d records then errored: %v", replayed, rerr)
		}
		if rerr == nil && replayed != ds.Records {
			t.Fatalf("Replay applied %d records, Inspect counted %d", replayed, ds.Records)
		}

		// Open repairs the directory; its view must match Inspect's, and a
		// second Open must find a clean chain (repair is idempotent and
		// complete).
		l, info, err := Open(dir, Options{Sync: SyncNever})
		if err != nil {
			t.Fatalf("Open errored on fuzz input: %v", err)
		}
		l.Close()
		if rerr == nil && info.Records != ds.Records {
			t.Fatalf("Open recovered %d records, Inspect counted %d", info.Records, ds.Records)
		}
		l2, info2, err := Open(dir, Options{Sync: SyncNever})
		if err != nil {
			t.Fatalf("second Open errored: %v", err)
		}
		l2.Close()
		if info2.TruncatedBytes != 0 || info2.DroppedSegments != 0 {
			t.Fatalf("repair not idempotent: second Open still repaired %+v", info2)
		}
		if info2.LastVersion != info.LastVersion || info2.Records != info.Records {
			t.Fatalf("second Open sees (v%d, %d recs), first saw (v%d, %d recs)",
				info2.LastVersion, info2.Records, info.LastVersion, info.Records)
		}
	})
}

package wal

import (
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Checkpoints are full-store state dumps written beside the segments:
// gzipped gob (the same encoding idiom as internal/data/persist.go), named
// ckpt-%020d.ckpt by the store version they capture. Each file carries a
// small gob header before the state so loaders can reject foreign files
// without decoding a potentially huge payload; the gzip footer CRC (verified
// by draining to EOF) covers the whole body. Writes are atomic:
// tmp + fsync + rename + dir fsync — a crashed write leaves only a .tmp
// husk, which pruning removes.

const (
	ckptMagic   = "NVMCKPT1"
	ckptFormat  = 1
	ckptPrefix  = "ckpt-"
	ckptSuffix  = ".ckpt"
	ckptNameLen = len(ckptPrefix) + 20 + len(ckptSuffix)
)

type ckptHeader struct {
	Magic   string
	Format  int
	Version uint64
}

// WriteCheckpoint atomically writes state (any gob-encodable value) as the
// checkpoint for the given store version.
func WriteCheckpoint(dir string, version uint64, state any) (retErr error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("wal: create checkpoint dir: %w", err)
	}
	final := filepath.Join(dir, ckptName(version))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create checkpoint: %w", err)
	}
	defer func() {
		if retErr != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	zw := gzip.NewWriter(f)
	enc := gob.NewEncoder(zw)
	if err := enc.Encode(ckptHeader{Magic: ckptMagic, Format: ckptFormat, Version: version}); err != nil {
		return fmt.Errorf("wal: encode checkpoint header: %w", err)
	}
	if err := enc.Encode(state); err != nil {
		return fmt.Errorf("wal: encode checkpoint state: %w", err)
	}
	if err := zw.Close(); err != nil {
		return fmt.Errorf("wal: flush checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: sync checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: close checkpoint: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("wal: publish checkpoint: %w", err)
	}
	return syncDir(dir)
}

// LoadCheckpoint decodes a checkpoint file into state and returns the store
// version it captures. Any decoding failure — including a gzip CRC mismatch
// detected while draining to EOF — is reported; the caller falls back to an
// older checkpoint.
func LoadCheckpoint(path string, state any) (uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("wal: open checkpoint: %w", err)
	}
	defer f.Close()
	v, err := ReadCheckpoint(f, state)
	if err != nil {
		return 0, err
	}
	if nameV, ok := parseCkptName(filepath.Base(path)); ok && nameV != v {
		return 0, fmt.Errorf("wal: checkpoint name says version %d, header says %d", nameV, v)
	}
	return v, nil
}

// ReadCheckpoint decodes a checkpoint byte stream (the exact file format,
// minus the filename cross-check LoadCheckpoint adds) into state and returns
// the store version it captures. This is the loader a replication follower
// uses on an HTTP response body, where there is no filename to check against
// — the caller compares the version to the leader's advertised one instead.
func ReadCheckpoint(r io.Reader, state any) (uint64, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return 0, fmt.Errorf("wal: checkpoint not gzip: %w", err)
	}
	defer zr.Close()
	dec := gob.NewDecoder(zr)
	var hdr ckptHeader
	if err := dec.Decode(&hdr); err != nil {
		return 0, fmt.Errorf("wal: decode checkpoint header: %w", err)
	}
	if hdr.Magic != ckptMagic {
		return 0, fmt.Errorf("wal: bad checkpoint magic %q", hdr.Magic)
	}
	if hdr.Format != ckptFormat {
		return 0, fmt.Errorf("wal: unknown checkpoint format %d", hdr.Format)
	}
	if err := dec.Decode(state); err != nil {
		return 0, fmt.Errorf("wal: decode checkpoint state: %w", err)
	}
	// Drain to EOF so the gzip footer CRC is actually verified — gob stops
	// reading at the last value and would miss a corrupted tail otherwise.
	if _, err := io.Copy(io.Discard, zr); err != nil {
		return 0, fmt.Errorf("wal: checkpoint trailer: %w", err)
	}
	return hdr.Version, nil
}

// CheckpointInfo describes one checkpoint file.
type CheckpointInfo struct {
	Path    string
	Version uint64
	Bytes   int64
}

// Checkpoints lists the checkpoint files in dir, oldest first. It does not
// validate contents — LoadCheckpoint does that, and recovery walks the list
// newest-first until one loads.
func Checkpoints(dir string) ([]CheckpointInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: read checkpoint dir: %w", err)
	}
	var out []CheckpointInfo
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		v, ok := parseCkptName(e.Name())
		if !ok {
			continue
		}
		ci := CheckpointInfo{Path: filepath.Join(dir, e.Name()), Version: v}
		if st, err := e.Info(); err == nil {
			ci.Bytes = st.Size()
		}
		out = append(out, ci)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Version < out[j].Version })
	return out, nil
}

// PruneCheckpoints removes all but the newest keep checkpoints, plus any
// stray .tmp husks from crashed writes. Returns the surviving checkpoints,
// oldest first.
func PruneCheckpoints(dir string, keep int) ([]CheckpointInfo, error) {
	if keep < 1 {
		keep = 1
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: read checkpoint dir: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".tmp") {
			if _, ok := parseCkptName(strings.TrimSuffix(e.Name(), ".tmp")); ok {
				os.Remove(filepath.Join(dir, e.Name()))
			}
		}
	}
	cks, err := Checkpoints(dir)
	if err != nil {
		return nil, err
	}
	removed := false
	for len(cks) > keep {
		if err := os.Remove(cks[0].Path); err != nil {
			return cks, fmt.Errorf("wal: prune checkpoint: %w", err)
		}
		cks = cks[1:]
		removed = true
	}
	if removed {
		if err := syncDir(dir); err != nil {
			return cks, err
		}
	}
	return cks, nil
}

func ckptName(version uint64) string {
	return fmt.Sprintf("%s%020d%s", ckptPrefix, version, ckptSuffix)
}

func parseCkptName(name string) (uint64, bool) {
	if len(name) != ckptNameLen || !strings.HasPrefix(name, ckptPrefix) || !strings.HasSuffix(name, ckptSuffix) {
		return 0, false
	}
	v, err := strconv.ParseUint(name[len(ckptPrefix):len(ckptPrefix)+20], 10, 64)
	return v, err == nil
}

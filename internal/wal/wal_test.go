package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"nevermind/internal/data"
)

// testRecord builds a deterministic record for version v, alternating test
// and ticket batches so both codecs are exercised.
func testRecord(v uint64) *Record {
	if v%3 == 0 {
		return &Record{
			Version: v,
			Op:      OpTickets,
			Tickets: []data.Ticket{
				{ID: int(v*10 + 1), Line: data.LineID(v % 500), Day: int(v % data.DaysInYear), Category: data.TicketCategory(v % uint64(data.CatOther+1))},
				{ID: int(v*10 + 2), Line: data.LineID((v + 7) % 500), Day: int((v + 3) % data.DaysInYear), Category: 0},
			},
		}
	}
	nf := int(v % (data.NumBasicFeatures + 1))
	var f []float32
	if nf > 0 {
		f = make([]float32, nf)
		for i := range f {
			f[i] = float32(v)*0.25 + float32(i)
		}
	}
	return &Record{
		Version: v,
		Op:      OpTests,
		Tests: []TestRec{
			{Line: data.LineID(v % 800), Week: int(v % data.Weeks), Missing: v%5 == 0, Profile: uint8(v % uint64(len(data.Profiles))), DSLAM: int32(v % 40), Usage: float32(v) * 0.5, F: f},
		},
	}
}

func appendAll(t *testing.T, l *Log, from, to uint64) {
	t.Helper()
	for v := from; v <= to; v++ {
		if err := l.Append(testRecord(v)); err != nil {
			t.Fatalf("append v%d: %v", v, err)
		}
	}
}

func replayAll(t *testing.T, dir string, from uint64) []*Record {
	t.Helper()
	var got []*Record
	n, err := Replay(dir, from, func(r *Record) error {
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatalf("replay from %d: %v", from, err)
	}
	if n != len(got) {
		t.Fatalf("replay reported %d applied, callback saw %d", n, len(got))
	}
	return got
}

func TestRecordRoundTrip(t *testing.T) {
	for v := uint64(1); v <= 60; v++ {
		r := testRecord(v)
		payload, err := appendRecord(nil, r)
		if err != nil {
			t.Fatalf("encode v%d: %v", v, err)
		}
		got, err := decodeRecord(payload)
		if err != nil {
			t.Fatalf("decode v%d: %v", v, err)
		}
		if !reflect.DeepEqual(r, got) {
			t.Fatalf("v%d round trip mismatch:\n  in  %+v\n  out %+v", v, r, got)
		}
	}
}

func TestAppendReplayRotation(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force many rotations.
	l, info, err := Open(dir, Options{SegmentBytes: 256, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if info.LastVersion != 0 || info.Records != 0 {
		t.Fatalf("fresh dir reported %+v", info)
	}
	appendAll(t, l, 1, 100)
	if got := l.LastVersion(); got != 100 {
		t.Fatalf("LastVersion = %d, want 100", got)
	}
	if segs := l.Segments(); len(segs) < 4 {
		t.Fatalf("expected many segments at 256-byte rotation, got %d", len(segs))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	got := replayAll(t, dir, 0)
	if len(got) != 100 {
		t.Fatalf("replayed %d records, want 100", len(got))
	}
	for i, r := range got {
		want := testRecord(uint64(i + 1))
		if !reflect.DeepEqual(r, want) {
			t.Fatalf("record %d mismatch:\n  got  %+v\n  want %+v", i, r, want)
		}
	}

	// Partial replay from mid-chain.
	if got := replayAll(t, dir, 73); len(got) != 27 || got[0].Version != 74 {
		t.Fatalf("replay from 73: %d records, first %d", len(got), got[0].Version)
	}
	// Replay from exactly the tail: nothing.
	if got := replayAll(t, dir, 100); len(got) != 0 {
		t.Fatalf("replay from tail returned %d records", len(got))
	}
}

func TestReopenContinuesChain(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SegmentBytes: 512, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, 1, 20)
	l.Close()

	l2, info, err := Open(dir, Options{SegmentBytes: 512, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if info.LastVersion != 20 || info.Records != 20 || info.TruncatedBytes != 0 {
		t.Fatalf("reopen info %+v", info)
	}
	// Contiguity is enforced across the reopen.
	if err := l2.Append(testRecord(25)); err == nil {
		t.Fatal("append v25 after v20 succeeded; want contiguity error")
	}
	appendAll(t, l2, 21, 40)
	l2.Close()
	if got := replayAll(t, dir, 0); len(got) != 40 {
		t.Fatalf("replayed %d, want 40", len(got))
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SegmentBytes: 1 << 20, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, 1, 10)
	l.Close()
	segs, _ := segNames(dir)
	if len(segs) != 1 {
		t.Fatalf("want 1 segment, got %d", len(segs))
	}
	path := filepath.Join(dir, segs[0])
	st, _ := os.Stat(path)
	// Chop the last 5 bytes: record 10's frame is torn.
	if err := os.Truncate(path, st.Size()-5); err != nil {
		t.Fatal(err)
	}

	l2, info, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if info.LastVersion != 9 || info.Records != 9 {
		t.Fatalf("after torn tail: %+v", info)
	}
	if info.TruncatedBytes == 0 {
		t.Fatal("TruncatedBytes not reported")
	}
	// The log must accept v10 again (re-ingest after crash).
	appendAll(t, l2, 10, 12)
	l2.Close()
	if got := replayAll(t, dir, 0); len(got) != 12 || got[11].Version != 12 {
		t.Fatalf("post-repair replay: %d records", len(got))
	}
}

func TestGarbageAppendTruncated(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, 1, 5)
	l.Close()
	segs, _ := segNames(dir)
	f, err := os.OpenFile(filepath.Join(dir, segs[0]), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("this is not a wal frame at all, just noise past the tail"))
	f.Close()

	_, info, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if info.LastVersion != 5 || info.Records != 5 || info.TruncatedBytes == 0 {
		t.Fatalf("garbage tail: %+v", info)
	}
}

func TestBitFlipEndsChain(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SegmentBytes: 300, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, 1, 50)
	l.Close()
	segs, _ := segNames(dir)
	if len(segs) < 3 {
		t.Fatalf("need ≥3 segments, got %d", len(segs))
	}
	// Flip one payload byte in the middle segment: its tail and every later
	// segment become unreachable.
	mid := filepath.Join(dir, segs[len(segs)/2])
	b, _ := os.ReadFile(mid)
	b[len(b)/2] ^= 0x40
	if err := os.WriteFile(mid, b, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, info, err := Open(dir, Options{SegmentBytes: 300, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if info.LastVersion == 0 || info.LastVersion >= 50 {
		t.Fatalf("bit flip: LastVersion = %d, want in (0,50)", info.LastVersion)
	}
	if info.DroppedSegments == 0 {
		t.Fatal("expected later segments dropped")
	}
	// Replay agrees with repair, and the chain continues from there.
	got := replayAll(t, dir, 0)
	if uint64(len(got)) != info.LastVersion {
		t.Fatalf("replay %d records, repair says %d", len(got), info.LastVersion)
	}
	appendAll(t, l2, info.LastVersion+1, 60)
	l2.Close()
	if got := replayAll(t, dir, 0); got[len(got)-1].Version != 60 {
		t.Fatalf("chain tail %d after re-append", got[len(got)-1].Version)
	}
}

func TestReplayGapRejected(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	// Chain starts at 10 (log opened after a checkpoint at 9).
	appendAll(t, l, 10, 15)
	l.Close()
	// Asking for records past version 5 would need 6..9, which don't exist.
	if _, err := Replay(dir, 5, func(*Record) error { return nil }); err == nil {
		t.Fatal("replay across a junction gap succeeded; want error")
	}
	// From 9 the chain is contiguous.
	if got := replayAll(t, dir, 9); len(got) != 6 {
		t.Fatalf("replay from 9: %d records, want 6", len(got))
	}
}

func TestResetAndTruncateThrough(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SegmentBytes: 300, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, 1, 40)
	nseg := len(l.Segments())
	if nseg < 3 {
		t.Fatalf("need ≥3 segments, got %d", nseg)
	}
	// Truncate through v of the first segment's tail: first segment goes.
	v := l.Segments()[0].LastVersion
	n, err := l.TruncateThrough(v)
	if err != nil || n != 1 {
		t.Fatalf("TruncateThrough(%d) = %d, %v", v, n, err)
	}
	// Replay from v still works (chain now starts at v+1).
	if got := replayAll(t, dir, v); got[0].Version != v+1 {
		t.Fatalf("post-truncate replay starts at %d", got[0].Version)
	}

	// Reset wipes everything and pins the next version.
	if err := l.Reset(99); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(testRecord(50)); err == nil {
		t.Fatal("append v50 after Reset(99) succeeded")
	}
	appendAll(t, l, 100, 105)
	l.Close()
	if got := replayAll(t, dir, 99); len(got) != 6 || got[0].Version != 100 {
		t.Fatalf("post-reset replay: %d records from %d", len(got), got[0].Version)
	}
}

func TestCheckpointRoundTripAndFallback(t *testing.T) {
	dir := t.TempDir()
	type state struct {
		Name  string
		Vals  []int
		Table map[string]float64
	}
	for v := uint64(10); v <= 30; v += 10 {
		s := state{Name: fmt.Sprintf("ckpt-%d", v), Vals: []int{int(v), int(v * 2)}, Table: map[string]float64{"x": float64(v)}}
		if err := WriteCheckpoint(dir, v, &s); err != nil {
			t.Fatal(err)
		}
	}
	cks, err := Checkpoints(dir)
	if err != nil || len(cks) != 3 {
		t.Fatalf("Checkpoints: %d, %v", len(cks), err)
	}
	var got state
	v, err := LoadCheckpoint(cks[2].Path, &got)
	if err != nil || v != 30 || got.Name != "ckpt-30" {
		t.Fatalf("load newest: v=%d err=%v state=%+v", v, err, got)
	}

	// Corrupt the newest: recovery must fall back to v20.
	b, _ := os.ReadFile(cks[2].Path)
	b[len(b)/2] ^= 0xff
	os.WriteFile(cks[2].Path, b, 0o644)
	if _, err := LoadCheckpoint(cks[2].Path, &state{}); err == nil {
		t.Fatal("corrupt checkpoint loaded cleanly")
	}
	v, err = LoadCheckpoint(cks[1].Path, &got)
	if err != nil || v != 20 {
		t.Fatalf("fallback load: v=%d err=%v", v, err)
	}

	// Prune keeps the newest two (including the corrupt one — pruning is
	// name-based; validity is recovery's concern).
	kept, err := PruneCheckpoints(dir, 2)
	if err != nil || len(kept) != 2 || kept[0].Version != 20 {
		t.Fatalf("prune: %+v, %v", kept, err)
	}
}

func TestCheckpointTruncatedFileRejected(t *testing.T) {
	dir := t.TempDir()
	big := make([]int, 100000)
	for i := range big {
		big[i] = i
	}
	if err := WriteCheckpoint(dir, 7, &big); err != nil {
		t.Fatal(err)
	}
	cks, _ := Checkpoints(dir)
	b, _ := os.ReadFile(cks[0].Path)
	os.WriteFile(cks[0].Path, b[:len(b)-10], 0o644)
	var got []int
	if _, err := LoadCheckpoint(cks[0].Path, &got); err == nil {
		t.Fatal("truncated checkpoint loaded cleanly")
	}
}

func TestInspectMatchesRepair(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SegmentBytes: 300, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, 1, 30)
	l.Close()
	// Tear the final segment.
	segs, _ := segNames(dir)
	last := filepath.Join(dir, segs[len(segs)-1])
	st, _ := os.Stat(last)
	os.Truncate(last, st.Size()-3)

	ds, err := Inspect(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ds.FirstVersion != 1 {
		t.Fatalf("Inspect FirstVersion = %d", ds.FirstVersion)
	}
	tornSeen := false
	for _, s := range ds.Segments {
		if s.TornBytes > 0 {
			tornSeen = true
		}
	}
	if !tornSeen {
		t.Fatal("Inspect missed the torn tail")
	}
	// Inspect is read-only: repair afterwards must agree with its count.
	_, info, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if info.LastVersion != ds.LastVersion || info.Records != ds.Records {
		t.Fatalf("Inspect (v%d, %d recs) disagrees with repair (v%d, %d recs)",
			ds.LastVersion, ds.Records, info.LastVersion, info.Records)
	}
}

func TestSyncAlwaysAndObserver(t *testing.T) {
	dir := t.TempDir()
	syncs := 0
	l, _, err := Open(dir, Options{Sync: SyncAlways, FsyncObserver: func(time.Duration) { syncs++ }})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, 1, 5)
	if syncs < 5 {
		t.Fatalf("SyncAlways observed %d fsyncs for 5 appends", syncs)
	}
	l.Close()
}

func TestBrokenLogFreezes(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, 1, 3)
	// Yank the file out from under the log: the next synced append fails
	// and every append after that returns the same sticky error.
	l.mu.Lock()
	l.f.Close()
	l.mu.Unlock()
	var firstErr error
	for v := uint64(4); v <= 6; v++ {
		if err := l.Append(testRecord(v)); err != nil {
			firstErr = err
			break
		}
	}
	if firstErr == nil {
		t.Skip("writes to closed file did not fail on this platform")
	}
	if err := l.Append(testRecord(7)); err == nil {
		t.Fatal("append after freeze succeeded")
	}
	if l.Err() == nil {
		t.Fatal("Err() nil on frozen log")
	}
	l.Abort()
}

// Package wal is the durability subsystem's storage layer: a per-store
// write-ahead log of ingest batches plus periodic full-store checkpoints.
// The log is a directory of append-only segment files holding CRC-framed,
// versioned records; checkpoints are gzipped gob files (the same encoding
// idiom as internal/data/persist.go) written atomically beside the segments.
// Recovery loads the newest valid checkpoint and replays the contiguous WAL
// tail past it; a torn or corrupt tail is truncated at the first invalid
// record, never replayed.
//
// The package knows nothing about the serving store: records carry the wire
// shapes (test batches, ticket batches) and the store version each batch
// produced, and the owner decides how to apply them. The segment format is
// also the shipping format a follower will consume for catch-up replication
// (ROADMAP item 1): a segment is a self-delimiting stream of versioned
// batches, safe to cut at any record boundary.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"nevermind/internal/data"
)

// Op says what a record's payload holds. A record carries exactly one batch
// kind because the store bumps its version once per applied batch; replaying
// record N therefore reproduces version N exactly.
type Op uint8

const (
	// OpTests is a batch of weekly line-test records.
	OpTests Op = 1
	// OpTickets is a batch of newly added customer tickets (post-dedup: the
	// store logs only the tickets the batch actually added).
	OpTickets Op = 2
)

// TestRec mirrors the serving store's test-record wire shape. It is
// duplicated here rather than imported so the WAL has no dependency on the
// serving layer (serve imports wal, not the reverse).
type TestRec struct {
	Line    data.LineID
	Week    int
	Missing bool
	Profile uint8
	DSLAM   int32
	Usage   float32
	F       []float32
}

// Record is one logged ingest batch: the store version it produced and the
// applied records. Exactly one of Tests/Tickets is populated, per Op.
type Record struct {
	Version uint64
	Op      Op
	Tests   []TestRec
	Tickets []data.Ticket
}

// ErrCorrupt marks bytes that do not decode to a valid record: bad framing,
// CRC mismatch, out-of-range field values, or trailing garbage. Recovery
// treats the first corrupt record as the end of the log.
var ErrCorrupt = errors.New("wal: corrupt record")

// MaxRecordBytes bounds one record's payload. The largest legitimate batch
// (a full weekly ingest for the store's maximum population) is ~20 MB; a
// frame claiming more than this is garbage, not data, and rejecting it keeps
// a corrupt length field from driving a huge allocation.
const MaxRecordBytes = 64 << 20

// crcTable is Castagnoli, the polynomial with hardware support on amd64 and
// arm64 — the framing checksum is on the ingest hot path.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Fixed entry sizes (bytes) before variable parts.
const (
	recHeaderLen   = 8 + 1 + 4 // version + op + count
	testEntryFixed = 4 + 1 + 1 + 1 + 1 + 4 + 4
	ticketEntryLen = 8 + 4 + 4 + 1
)

// appendRecord serialises r's payload (no framing) onto buf and returns the
// extended slice. The encoding is little-endian and fixed-width per field,
// so the decoder can bounds-check every entry before allocating.
func appendRecord(buf []byte, r *Record) ([]byte, error) {
	buf = binary.LittleEndian.AppendUint64(buf, r.Version)
	buf = append(buf, byte(r.Op))
	switch r.Op {
	case OpTests:
		if len(r.Tests) == 0 {
			return nil, fmt.Errorf("wal: empty test batch at version %d", r.Version)
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Tests)))
		for i := range r.Tests {
			t := &r.Tests[i]
			if len(t.F) > data.NumBasicFeatures {
				return nil, fmt.Errorf("wal: test record carries %d features, max %d", len(t.F), data.NumBasicFeatures)
			}
			buf = binary.LittleEndian.AppendUint32(buf, uint32(t.Line))
			var flags byte
			if t.Missing {
				flags |= 1
			}
			buf = append(buf, byte(t.Week), flags, t.Profile, byte(len(t.F)))
			buf = binary.LittleEndian.AppendUint32(buf, uint32(t.DSLAM))
			buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(t.Usage))
			for _, f := range t.F {
				buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(f))
			}
		}
	case OpTickets:
		if len(r.Tickets) == 0 {
			return nil, fmt.Errorf("wal: empty ticket batch at version %d", r.Version)
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Tickets)))
		for _, t := range r.Tickets {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(t.ID))
			buf = binary.LittleEndian.AppendUint32(buf, uint32(t.Line))
			buf = binary.LittleEndian.AppendUint32(buf, uint32(t.Day))
			buf = append(buf, byte(t.Category))
		}
	default:
		return nil, fmt.Errorf("wal: unknown op %d", r.Op)
	}
	return buf, nil
}

// EncodePayload serialises r's payload (no framing) onto buf and returns the
// extended slice. Exported for the replication layer, which ships WAL records
// over HTTP in the same frame format the segments use.
func EncodePayload(buf []byte, r *Record) ([]byte, error) {
	return appendRecord(buf, r)
}

// DecodePayload parses one payload back into a Record, with the full range
// validation decodeRecord applies: a payload that decodes is safe to hand to
// the store. Exported for the replication layer's stream decoder.
func DecodePayload(payload []byte) (*Record, error) {
	return decodeRecord(payload)
}

// decodeRecord parses one payload back into a Record. Every field is
// range-checked against the data-model bounds, so a record that decodes is
// safe to hand to the store: a corrupt batch can fail the CRC, fail here, or
// fail nowhere — it cannot be replayed.
func decodeRecord(payload []byte) (*Record, error) {
	if len(payload) < recHeaderLen {
		return nil, fmt.Errorf("%w: payload %d bytes, header needs %d", ErrCorrupt, len(payload), recHeaderLen)
	}
	r := &Record{
		Version: binary.LittleEndian.Uint64(payload),
		Op:      Op(payload[8]),
	}
	count := int(binary.LittleEndian.Uint32(payload[9:]))
	rest := payload[recHeaderLen:]
	if r.Version == 0 {
		return nil, fmt.Errorf("%w: version 0", ErrCorrupt)
	}
	if count == 0 {
		return nil, fmt.Errorf("%w: empty batch", ErrCorrupt)
	}
	switch r.Op {
	case OpTests:
		if count*testEntryFixed > len(rest) {
			return nil, fmt.Errorf("%w: %d test entries cannot fit %d bytes", ErrCorrupt, count, len(rest))
		}
		r.Tests = make([]TestRec, 0, count)
		for i := 0; i < count; i++ {
			if len(rest) < testEntryFixed {
				return nil, fmt.Errorf("%w: truncated test entry %d", ErrCorrupt, i)
			}
			t := TestRec{
				Line:  data.LineID(int32(binary.LittleEndian.Uint32(rest))),
				Week:  int(rest[4]),
				DSLAM: int32(binary.LittleEndian.Uint32(rest[8:])),
				Usage: math.Float32frombits(binary.LittleEndian.Uint32(rest[12:])),
			}
			flags, nf := rest[5], int(rest[7])
			t.Missing = flags&1 != 0
			t.Profile = rest[6]
			rest = rest[testEntryFixed:]
			switch {
			case flags&^byte(1) != 0:
				return nil, fmt.Errorf("%w: test entry %d has unknown flags %#x", ErrCorrupt, i, flags)
			case t.Line < 0:
				return nil, fmt.Errorf("%w: test entry %d has negative line", ErrCorrupt, i)
			case t.Week >= data.Weeks:
				return nil, fmt.Errorf("%w: test entry %d has week %d", ErrCorrupt, i, t.Week)
			case int(t.Profile) >= len(data.Profiles):
				return nil, fmt.Errorf("%w: test entry %d has profile %d", ErrCorrupt, i, t.Profile)
			case t.DSLAM < 0:
				return nil, fmt.Errorf("%w: test entry %d has negative DSLAM", ErrCorrupt, i)
			case nf > data.NumBasicFeatures:
				return nil, fmt.Errorf("%w: test entry %d claims %d features", ErrCorrupt, i, nf)
			case len(rest) < nf*4:
				return nil, fmt.Errorf("%w: truncated feature vector in entry %d", ErrCorrupt, i)
			}
			if nf > 0 {
				t.F = make([]float32, nf)
				for j := 0; j < nf; j++ {
					t.F[j] = math.Float32frombits(binary.LittleEndian.Uint32(rest[j*4:]))
				}
				rest = rest[nf*4:]
			}
			r.Tests = append(r.Tests, t)
		}
	case OpTickets:
		if count*ticketEntryLen != len(rest) {
			return nil, fmt.Errorf("%w: %d ticket entries need %d bytes, have %d",
				ErrCorrupt, count, count*ticketEntryLen, len(rest))
		}
		r.Tickets = make([]data.Ticket, 0, count)
		for i := 0; i < count; i++ {
			t := data.Ticket{
				ID:       int(int64(binary.LittleEndian.Uint64(rest))),
				Line:     data.LineID(int32(binary.LittleEndian.Uint32(rest[8:]))),
				Day:      int(int32(binary.LittleEndian.Uint32(rest[12:]))),
				Category: data.TicketCategory(rest[16]),
			}
			rest = rest[ticketEntryLen:]
			switch {
			case t.Line < 0:
				return nil, fmt.Errorf("%w: ticket entry %d has negative line", ErrCorrupt, i)
			case t.Day < 0 || t.Day >= data.DaysInYear:
				return nil, fmt.Errorf("%w: ticket entry %d has day %d", ErrCorrupt, i, t.Day)
			case t.Category > data.CatOther:
				return nil, fmt.Errorf("%w: ticket entry %d has category %d", ErrCorrupt, i, t.Category)
			}
			r.Tickets = append(r.Tickets, t)
		}
		rest = nil
	default:
		return nil, fmt.Errorf("%w: unknown op %d", ErrCorrupt, r.Op)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after batch", ErrCorrupt, len(rest))
	}
	return r, nil
}

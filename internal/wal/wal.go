package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Segment file layout:
//
//	[16-byte header: 8-byte magic "NVMWAL01" | u32 format | u32 reserved]
//	[record frame]*
//
// Record frame:
//
//	[u32 payload length | u32 CRC32-C of payload | payload]
//
// Segments are named seg-%020d.wal where the number is the version of the
// first record in the segment; sorting names lexicographically sorts the
// chain. Records within and across segments are strictly contiguous: record
// N+1 carries version N+1. A gap means corruption and ends the readable
// chain — the log never writes one (an append that fails freezes the log).

const (
	segMagic   = "NVMWAL01"
	segFormat  = 1
	segHdrLen  = 16
	frameLen   = 8
	segPrefix  = "seg-"
	segSuffix  = ".wal"
	segNameLen = len(segPrefix) + 20 + len(segSuffix)
)

// SyncPolicy controls when appended records are fsynced to disk.
type SyncPolicy int

const (
	// SyncInterval fsyncs from a background ticker (Options.SyncEvery). An
	// acked batch may be lost to a crash inside the window; ordering and
	// torn-tail repair are unaffected. This is the default.
	SyncInterval SyncPolicy = iota
	// SyncAlways fsyncs after every append before it returns. No acked
	// batch is ever lost, at per-batch fsync cost.
	SyncAlways
	// SyncNever leaves flushing to OS writeback; the file is still synced
	// on rotation and Close.
	SyncNever
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncNever:
		return "never"
	default:
		return "interval"
	}
}

// ParseSyncPolicy maps the -wal.fsync flag values onto a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "always":
		return SyncAlways, nil
	case "interval", "":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval, or never)", s)
}

// Options tunes a Log. The zero value is usable: 64 MB segments, interval
// fsync every 50ms.
type Options struct {
	// SegmentBytes rotates to a new segment once the active one reaches
	// this size. Default 64 MB.
	SegmentBytes int64
	// Sync is the fsync policy for appends.
	Sync SyncPolicy
	// SyncEvery is the background fsync period under SyncInterval.
	// Default 50ms.
	SyncEvery time.Duration
	// FsyncObserver, if set, is called with the duration of every fsync —
	// the hook feeding the wal_fsync_duration_seconds histogram.
	FsyncObserver func(time.Duration)
}

func (o *Options) fill() {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 50 * time.Millisecond
	}
}

// ErrReplayGap marks a replay whose chain does not reach back to the
// requested start version — the segments covering it were truncated away.
// The replication source maps it to 410 Gone so a lapsed follower knows to
// re-bootstrap from a checkpoint instead of retrying the stream.
var ErrReplayGap = errors.New("wal: replay gap")

// RecoverInfo reports what Open found and repaired.
type RecoverInfo struct {
	// LastVersion is the version of the last valid record, 0 if none.
	LastVersion uint64
	// Records is the total count of valid records across the chain.
	Records int
	// TruncatedBytes counts bytes cut from a torn or corrupt tail.
	TruncatedBytes int64
	// DroppedSegments counts segment files removed during repair (files
	// after a corrupt one, or files whose header is unreadable).
	DroppedSegments int
}

type segmentInfo struct {
	path  string
	first uint64 // version of first record, from the file name
	last  uint64 // version of last valid record (0 if empty)
	count int
	size  int64
}

// Log is an append-only write-ahead log over a directory of segments.
// Append is safe for one writer at a time (the store serialises appends
// under its version lock); Sync/Close may race with Append.
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex
	f        *os.File // active segment, nil until first append
	size     int64    // bytes written to active segment
	last     uint64   // version of last appended record
	dirty    bool     // unsynced bytes in f
	broken   error    // first append failure; sticky
	segs     []segmentInfo
	buf      []byte // reused frame+payload scratch
	closed   bool
	ticker   *time.Ticker
	tickDone chan struct{}
}

// Open opens (creating if needed) the WAL directory, scans and repairs the
// segment chain, and returns a Log positioned to append after the last valid
// record. Repair truncates a torn tail in place and removes segments past
// the first corrupt one; it never invents or reorders records.
func Open(dir string, opts Options) (*Log, *RecoverInfo, error) {
	opts.fill()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: create dir: %w", err)
	}
	segs, info, err := scanDir(dir, true)
	if err != nil {
		return nil, nil, err
	}
	l := &Log{dir: dir, opts: opts, segs: segs, last: info.LastVersion}
	// Reopen the final segment for appending if it has room; otherwise the
	// first Append starts a fresh one.
	if n := len(segs); n > 0 && segs[n-1].size < opts.SegmentBytes {
		f, err := os.OpenFile(segs[n-1].path, os.O_WRONLY, 0)
		if err != nil {
			return nil, nil, fmt.Errorf("wal: reopen tail segment: %w", err)
		}
		if _, err := f.Seek(segs[n-1].size, io.SeekStart); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: seek tail segment: %w", err)
		}
		l.f, l.size = f, segs[n-1].size
	}
	if opts.Sync == SyncInterval {
		l.ticker = time.NewTicker(opts.SyncEvery)
		l.tickDone = make(chan struct{})
		go l.syncLoop()
	}
	return l, info, nil
}

func (l *Log) syncLoop() {
	for {
		select {
		case <-l.ticker.C:
			l.Sync()
		case <-l.tickDone:
			return
		}
	}
}

// LastVersion returns the version of the last appended (or recovered)
// record, 0 if the log is empty.
func (l *Log) LastVersion() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.last
}

// Err returns the sticky append failure, nil if the log is healthy.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.broken
}

// Segments returns a snapshot of the segment chain, oldest first.
func (l *Log) Segments() []SegmentStat {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SegmentStat, len(l.segs))
	for i, s := range l.segs {
		out[i] = SegmentStat{
			Path: s.path, FirstVersion: s.first, LastVersion: s.last,
			Records: s.count, Bytes: s.size,
		}
	}
	return out
}

// Append logs one record. The record's version must be exactly last+1 unless
// the log is empty, in which case any starting version is accepted (a fresh
// log on a store recovered from a checkpoint starts mid-history). Any write
// failure freezes the log: the error is returned now and from every later
// Append, so a partially written frame can never be followed by more records
// (no mid-chain gaps on disk — the torn frame is the tail, and repair on the
// next Open truncates it).
func (l *Log) Append(r *Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken != nil {
		return l.broken
	}
	if l.closed {
		return fmt.Errorf("wal: append on closed log")
	}
	if l.last != 0 && r.Version != l.last+1 {
		return fmt.Errorf("wal: append version %d after %d (must be contiguous)", r.Version, l.last)
	}
	payload, err := appendRecord(l.buf[:0], r)
	if err != nil {
		return err // encoding error: record rejected, log stays healthy
	}
	l.buf = payload[:0]
	if len(payload) > MaxRecordBytes {
		return fmt.Errorf("wal: record payload %d bytes exceeds limit %d", len(payload), MaxRecordBytes)
	}
	if l.f == nil || l.size >= l.opts.SegmentBytes {
		if err := l.rotateLocked(r.Version); err != nil {
			l.broken = err
			return err
		}
	}
	frame := make([]byte, frameLen+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, crcTable))
	copy(frame[frameLen:], payload)
	if _, err := l.f.Write(frame); err != nil {
		l.broken = fmt.Errorf("wal: append: %w", err)
		return l.broken
	}
	l.size += int64(len(frame))
	l.last = r.Version
	l.dirty = true
	seg := &l.segs[len(l.segs)-1]
	seg.last = r.Version
	seg.count++
	seg.size = l.size
	if l.opts.Sync == SyncAlways {
		if err := l.syncLocked(); err != nil {
			l.broken = err
			return err
		}
	}
	return nil
}

// rotateLocked seals the active segment (sync + close) and starts a new one
// whose name carries firstVersion.
func (l *Log) rotateLocked(firstVersion uint64) error {
	if l.f != nil {
		if err := l.syncLocked(); err != nil {
			return err
		}
		if err := l.f.Close(); err != nil {
			return fmt.Errorf("wal: seal segment: %w", err)
		}
		l.f = nil
	}
	path := filepath.Join(l.dir, segName(firstVersion))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	hdr := make([]byte, segHdrLen)
	copy(hdr, segMagic)
	binary.LittleEndian.PutUint32(hdr[8:], segFormat)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return fmt.Errorf("wal: write segment header: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.f, l.size = f, segHdrLen
	l.segs = append(l.segs, segmentInfo{path: path, first: firstVersion, size: segHdrLen})
	return nil
}

func (l *Log) syncLocked() error {
	if l.f == nil || !l.dirty {
		return nil
	}
	start := time.Now()
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	if l.opts.FsyncObserver != nil {
		l.opts.FsyncObserver(time.Since(start))
	}
	l.dirty = false
	return nil
}

// Sync flushes any unsynced appends to disk.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken != nil {
		return l.broken
	}
	if err := l.syncLocked(); err != nil {
		l.broken = err
		return err
	}
	return nil
}

// Close syncs and closes the log. Further appends fail.
func (l *Log) Close() error {
	return l.close(true)
}

// Abort closes the log WITHOUT syncing — test hook simulating a crash: bytes
// not yet flushed by the OS stay wherever writeback left them.
func (l *Log) Abort() error {
	return l.close(false)
}

func (l *Log) close(sync bool) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.ticker != nil {
		l.ticker.Stop()
		close(l.tickDone)
	}
	var err error
	if sync && l.broken == nil {
		err = l.syncLocked()
	}
	if l.f != nil {
		if cerr := l.f.Close(); err == nil {
			err = cerr
		}
		l.f = nil
	}
	return err
}

// Reset wipes every segment and repositions the log so the next Append must
// carry version+1. Used when a loaded checkpoint is already past the whole
// WAL chain (every record is covered by the checkpoint).
func (l *Log) Reset(version uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f != nil {
		l.f.Close()
		l.f = nil
	}
	for _, s := range l.segs {
		if err := os.Remove(s.path); err != nil {
			return fmt.Errorf("wal: reset: %w", err)
		}
	}
	l.segs = nil
	l.size = 0
	l.last = version
	l.dirty = false
	return syncDir(l.dir)
}

// TruncateThrough removes sealed segments whose every record has version
// ≤ v — they are covered by a retained checkpoint. The active segment is
// never removed. Returns the number of segments removed.
func (l *Log) TruncateThrough(v uint64) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	removed := 0
	for len(l.segs) > 1 && l.segs[0].last != 0 && l.segs[0].last <= v {
		if err := os.Remove(l.segs[0].path); err != nil {
			return removed, fmt.Errorf("wal: truncate: %w", err)
		}
		l.segs = l.segs[1:]
		removed++
	}
	if removed > 0 {
		if err := syncDir(l.dir); err != nil {
			return removed, err
		}
	}
	return removed, nil
}

func segName(first uint64) string {
	return fmt.Sprintf("%s%020d%s", segPrefix, first, segSuffix)
}

func parseSegName(name string) (uint64, bool) {
	if len(name) != segNameLen || !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	v, err := strconv.ParseUint(name[len(segPrefix):len(segPrefix)+20], 10, 64)
	if err != nil {
		return 0, false
	}
	return v, nil == err
}

// scanDir walks the segment chain in order, validating every frame. With
// repair=true it truncates torn tails in place, removes header-corrupt or
// out-of-chain segments, and fsyncs the directory afterwards; with
// repair=false (Inspect, Replay) it is read-only and simply stops reporting
// at the first invalid byte.
func scanDir(dir string, repair bool) ([]segmentInfo, *RecoverInfo, error) {
	names, err := segNames(dir)
	if err != nil {
		return nil, nil, err
	}
	info := &RecoverInfo{}
	var segs []segmentInfo
	chainBroken := false
	for _, name := range names {
		path := filepath.Join(dir, name)
		if chainBroken {
			// Everything after a broken segment is unreachable history.
			if repair {
				if err := os.Remove(path); err != nil {
					return nil, nil, fmt.Errorf("wal: drop segment: %w", err)
				}
				info.DroppedSegments++
			}
			continue
		}
		seg, validEnd, fileSize, segErr := scanSegment(path, info.LastVersion)
		switch {
		case segErr != nil:
			// Header unreadable or first-version mismatch: the whole file
			// is unusable and the chain ends before it.
			chainBroken = true
			if repair {
				if err := os.Remove(path); err != nil {
					return nil, nil, fmt.Errorf("wal: drop segment: %w", err)
				}
				info.DroppedSegments++
				info.TruncatedBytes += fileSize
			}
			continue
		case validEnd < fileSize:
			// Torn or corrupt tail inside this segment: chain ends at the
			// last valid record.
			chainBroken = true
			info.TruncatedBytes += fileSize - validEnd
			if repair {
				if seg.count == 0 {
					// No valid records at all — remove rather than keep an
					// empty husk.
					if err := os.Remove(path); err != nil {
						return nil, nil, fmt.Errorf("wal: drop empty segment: %w", err)
					}
					info.DroppedSegments++
					continue
				}
				if err := os.Truncate(path, validEnd); err != nil {
					return nil, nil, fmt.Errorf("wal: truncate tail: %w", err)
				}
				seg.size = validEnd
			}
		}
		if seg.count == 0 && !repair {
			continue
		}
		if seg.count == 0 {
			// Clean but empty segment (header only) — harmless; keep as the
			// append target.
			segs = append(segs, seg)
			continue
		}
		segs = append(segs, seg)
		info.LastVersion = seg.last
		info.Records += seg.count
	}
	if repair && (info.TruncatedBytes > 0 || info.DroppedSegments > 0) {
		if err := syncDir(dir); err != nil {
			return nil, nil, err
		}
	}
	return segs, info, nil
}

func segNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: read dir: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if _, ok := parseSegName(e.Name()); ok {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// scanSegment validates one segment file. prev is the version of the last
// valid record before this segment (0 at chain start). It returns the
// segment info for the valid prefix, the byte offset where validity ends,
// and the file's total size. A non-nil error means the file is unusable from
// the start (bad header, name/content mismatch, chain discontinuity).
func scanSegment(path string, prev uint64) (segmentInfo, int64, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return segmentInfo{}, 0, 0, fmt.Errorf("wal: open segment: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return segmentInfo{}, 0, 0, fmt.Errorf("wal: stat segment: %w", err)
	}
	fileSize := st.Size()
	nameFirst, _ := parseSegName(filepath.Base(path))
	seg := segmentInfo{path: path, first: nameFirst}

	hdr := make([]byte, segHdrLen)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return seg, 0, fileSize, fmt.Errorf("%w: segment header truncated", ErrCorrupt)
	}
	if string(hdr[:8]) != segMagic {
		return seg, 0, fileSize, fmt.Errorf("%w: bad segment magic", ErrCorrupt)
	}
	if binary.LittleEndian.Uint32(hdr[8:]) != segFormat {
		return seg, 0, fileSize, fmt.Errorf("%w: unknown segment format", ErrCorrupt)
	}
	if prev != 0 && nameFirst != prev+1 {
		return seg, 0, fileSize, fmt.Errorf("%w: segment starts at %d after chain tail %d", ErrCorrupt, nameFirst, prev)
	}

	validEnd := int64(segHdrLen)
	expect := nameFirst
	var frame [frameLen]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(f, frame[:]); err != nil {
			break // clean EOF or torn frame header: validity ends here
		}
		n := binary.LittleEndian.Uint32(frame[:4])
		if n < recHeaderLen || n > MaxRecordBytes {
			break
		}
		if int64(n) > fileSize-validEnd-frameLen {
			break // frame claims more bytes than the file holds
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(f, payload); err != nil {
			break
		}
		if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(frame[4:]) {
			break
		}
		rec, err := decodeRecord(payload)
		if err != nil || rec.Version != expect {
			break
		}
		validEnd += frameLen + int64(n)
		seg.last = rec.Version
		seg.count++
		expect++
	}
	seg.size = validEnd
	return seg, validEnd, fileSize, nil
}

// Replay reads the chain and calls fn for every valid record with version
// strictly greater than from, in order. The chain must be contiguous from
// from+1: if the first record past from is not exactly from+1 (a junction
// gap — e.g. the checkpoint is older than the oldest retained segment),
// nothing is applied and an error is returned. fn returning an error aborts
// the replay. Read-only: no repair is performed.
func Replay(dir string, from uint64, fn func(*Record) error) (int, error) {
	names, err := segNames(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	applied := 0
	expect := uint64(0) // version of last applied-or-skipped record in chain
	for _, name := range names {
		path := filepath.Join(dir, name)
		stop, err := replaySegment(path, expect, from, &applied, fn)
		if err != nil {
			return applied, err
		}
		if stop == 0 || stop < expect {
			break // segment broken or out of chain: end of readable history
		}
		expect = stop
	}
	return applied, nil
}

// replaySegment walks one segment. prev is the chain tail before this
// segment (0 at start); applied counts records applied across the whole
// replay. Returns the new chain tail (0 if the segment is unusable) and any
// fn error.
func replaySegment(path string, prev, from uint64, applied *int, fn func(*Record) error) (uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, nil // vanished mid-walk: treat as end of chain
	}
	defer f.Close()
	nameFirst, _ := parseSegName(filepath.Base(path))
	hdr := make([]byte, segHdrLen)
	if _, err := io.ReadFull(f, hdr); err != nil || string(hdr[:8]) != segMagic ||
		binary.LittleEndian.Uint32(hdr[8:]) != segFormat {
		return 0, nil
	}
	if prev != 0 && nameFirst != prev+1 {
		return 0, nil
	}
	expect := nameFirst
	var frame [frameLen]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(f, frame[:]); err != nil {
			break
		}
		n := binary.LittleEndian.Uint32(frame[:4])
		if n < recHeaderLen || n > MaxRecordBytes {
			break
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(f, payload); err != nil {
			break
		}
		if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(frame[4:]) {
			break
		}
		rec, err := decodeRecord(payload)
		if err != nil || rec.Version != expect {
			break
		}
		if rec.Version > from {
			// Contiguity across the junction: the first applied record of
			// the whole replay must be exactly from+1; chain arithmetic
			// guarantees contiguity from there.
			if *applied == 0 && rec.Version != from+1 {
				return 0, fmt.Errorf("%w: next record is version %d, want %d", ErrReplayGap, rec.Version, from+1)
			}
			if err := fn(rec); err != nil {
				return expect, fmt.Errorf("wal: replay apply version %d: %w", rec.Version, err)
			}
			*applied++
		}
		expect++
	}
	if expect == nameFirst {
		return 0, nil // no valid records in this segment
	}
	return expect - 1, nil
}

// SegmentStat describes one segment for Inspect and the CLI tool.
type SegmentStat struct {
	Path         string
	FirstVersion uint64
	LastVersion  uint64
	Records      int
	Bytes        int64
	// TornBytes counts bytes past the last valid record (0 for a clean
	// segment). Only populated by Inspect.
	TornBytes int64
	// Err describes why the segment is unusable, empty if healthy.
	Err string
}

// DirStat is Inspect's summary of a WAL directory.
type DirStat struct {
	Segments []SegmentStat
	// FirstVersion/LastVersion span the valid chain (0,0 when empty).
	FirstVersion uint64
	LastVersion  uint64
	Records      int
}

// Inspect walks a WAL directory read-only and reports per-segment health.
// Unlike Open it repairs nothing, so it is safe on a live log's directory.
func Inspect(dir string) (*DirStat, error) {
	names, err := segNames(dir)
	if err != nil {
		return nil, err
	}
	ds := &DirStat{}
	prev := uint64(0)
	chainBroken := false
	for _, name := range names {
		path := filepath.Join(dir, name)
		seg, validEnd, fileSize, segErr := scanSegment(path, prev)
		stat := SegmentStat{
			Path: path, FirstVersion: seg.first, LastVersion: seg.last,
			Records: seg.count, Bytes: fileSize, TornBytes: fileSize - validEnd,
		}
		switch {
		case chainBroken:
			stat.Err = "unreachable (chain broken earlier)"
		case segErr != nil:
			stat.Err = segErr.Error()
			chainBroken = true
		case validEnd < fileSize:
			stat.Err = fmt.Sprintf("torn tail (%d bytes)", fileSize-validEnd)
			chainBroken = true
		}
		if !chainBroken || stat.Err == fmt.Sprintf("torn tail (%d bytes)", fileSize-validEnd) {
			if seg.count > 0 {
				if ds.Records == 0 {
					ds.FirstVersion = seg.first
				}
				ds.LastVersion = seg.last
				ds.Records += seg.count
				prev = seg.last
			}
		}
		ds.Segments = append(ds.Segments, stat)
	}
	return ds, nil
}

// syncDir fsyncs a directory so renames/creates/removes inside it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: open dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	return nil
}

package parallel

import (
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestWorkersDefault(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d", got)
	}
	if got := Workers(7); got != 7 {
		t.Fatalf("Workers(7) = %d", got)
	}
}

func TestChunksCoverRangeExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 100, 1000} {
		for _, w := range []int{1, 2, 3, 8, 64} {
			chunks := Chunks(n, w)
			next := 0
			for _, c := range chunks {
				if c[0] != next {
					t.Fatalf("n=%d w=%d: chunk starts at %d, want %d", n, w, c[0], next)
				}
				if c[1] <= c[0] {
					t.Fatalf("n=%d w=%d: empty chunk %v", n, w, c)
				}
				next = c[1]
			}
			if n == 0 && chunks != nil {
				t.Fatalf("Chunks(0, %d) = %v", w, chunks)
			}
			if n > 0 && next != n {
				t.Fatalf("n=%d w=%d: chunks end at %d", n, w, next)
			}
			if n > 0 && len(chunks) > w && w >= 1 {
				t.Fatalf("n=%d w=%d: %d chunks", n, w, len(chunks))
			}
		}
	}
}

func TestChunksDependOnlyOnArguments(t *testing.T) {
	a := Chunks(1000, 7)
	b := Chunks(1000, 7)
	if len(a) != len(b) {
		t.Fatal("chunk counts differ across calls")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("chunk %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestForVisitsEveryIndexOnce(t *testing.T) {
	for _, w := range []int{0, 1, 2, 5, 16} {
		const n = 503
		var visits [n]int32
		For(n, w, func(_, start, end int) {
			for i := start; i < end; i++ {
				atomic.AddInt32(&visits[i], 1)
			}
		})
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", w, i, v)
			}
		}
	}
}

func TestForSingleWorkerRunsInline(t *testing.T) {
	// With one worker the body must run on the calling goroutine: a value
	// written without synchronisation is visible immediately after.
	x := 0
	For(10, 1, func(_, start, end int) { x = end })
	if x != 10 {
		t.Fatalf("inline run wrote %d", x)
	}
}

// TestForDeterministicReduction is the contract the ml package relies on:
// per-chunk argmin partials merged in chunk order equal the sequential scan,
// at any worker count, including ties (strict < keeps the first minimum).
func TestForDeterministicReduction(t *testing.T) {
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = float64((i*2654435761)%997) / 997
	}
	vals[123] = -1 // unique minimum
	vals[777] = -1 // tie: first index must win
	seqBest, seqAt := vals[0], 0
	for i, v := range vals {
		if v < seqBest {
			seqBest, seqAt = v, i
		}
	}
	for _, w := range []int{1, 2, 3, 4, 13} {
		chunks := Chunks(len(vals), w)
		bests := make([]float64, len(chunks))
		ats := make([]int, len(chunks))
		For(len(vals), w, func(c, start, end int) {
			b, at := vals[start], start
			for i := start + 1; i < end; i++ {
				if vals[i] < b {
					b, at = vals[i], i
				}
			}
			bests[c], ats[c] = b, at
		})
		mb, ma := bests[0], ats[0]
		for c := 1; c < len(bests); c++ {
			if bests[c] < mb {
				mb, ma = bests[c], ats[c]
			}
		}
		if mb != seqBest || ma != seqAt {
			t.Fatalf("workers=%d: argmin (%v,%d) != sequential (%v,%d)", w, mb, ma, seqBest, seqAt)
		}
	}
}

func TestForEach(t *testing.T) {
	const n = 97
	var sum int64
	ForEach(n, 4, func(i int) { atomic.AddInt64(&sum, int64(i)) })
	if want := int64(n * (n - 1) / 2); sum != want {
		t.Fatalf("sum %d, want %d", sum, want)
	}
}

func TestForPropagatesPanic(t *testing.T) {
	for _, w := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic swallowed", w)
				}
				if w > 1 {
					s, ok := r.(string)
					if !ok || !strings.Contains(s, "boom") {
						t.Fatalf("workers=%d: panic value %v lost the cause", w, r)
					}
				}
			}()
			For(100, w, func(_, start, end int) {
				for i := start; i < end; i++ {
					if i == 42 {
						panic("boom")
					}
				}
			})
		}()
	}
}

func TestForEmptyRange(t *testing.T) {
	called := false
	For(0, 4, func(_, _, _ int) { called = true })
	if called {
		t.Fatal("body called for empty range")
	}
}

// Package parallel is the repository's worker-pool primitive: bounded
// goroutine fan-out over chunked index ranges, stdlib only.
//
// Every hot path in the ranker (stump search, per-feature selection, scoring,
// quantization, per-disposition locator training) is a loop over an index
// range whose iterations are independent. This package runs such loops on a
// fixed number of workers while keeping results deterministic: work is split
// into one contiguous chunk per worker, chunk boundaries depend only on
// (n, workers) — never on scheduling — and callers merge per-chunk results in
// chunk order. A reduction merged that way is bit-identical to the sequential
// loop at any worker count (see DESIGN.md, "Parallelism model").
//
// Panics inside workers are captured and re-raised on the calling goroutine,
// so a panicking chunk behaves like a panicking sequential loop rather than
// crashing the process from an anonymous goroutine.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
)

// Workers resolves a worker-count knob: n <= 0 means runtime.GOMAXPROCS(0)
// (the conventional "use the machine" default), anything else is taken
// as-is. The resolved count is additionally capped at the loop length by
// For/Chunks, so passing a large count to a small loop is harmless.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Chunks returns the chunk boundaries that For uses: min(workers, n)
// near-equal contiguous ranges covering [0, n). Boundary layout depends only
// on the two arguments, so per-chunk reductions merged in chunk order are
// reproducible across runs and machines. An empty range yields no chunks.
func Chunks(n, workers int) [][2]int {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	out := make([][2]int, workers)
	for c := 0; c < workers; c++ {
		out[c] = [2]int{c * n / workers, (c + 1) * n / workers}
	}
	return out
}

// capturedPanic wraps a worker panic with the chunk that raised it, so the
// re-raised value still identifies the failing shard.
type capturedPanic struct {
	chunk int
	value any
}

func (p capturedPanic) String() string {
	return fmt.Sprintf("parallel: worker chunk %d panicked: %v", p.chunk, p.value)
}

// For runs body over [0, n) split into one contiguous chunk per worker.
// body(chunk, start, end) handles the half-open index range [start, end);
// chunk is the chunk's ordinal (0-based, ascending with start), which callers
// use to store per-chunk partial results for an order-fixed merge.
//
// workers <= 0 means GOMAXPROCS; workers == 1 (or a single chunk) runs body
// inline on the calling goroutine — the exact sequential path, no goroutines.
// For returns only after every chunk finished. If any chunk panicked, the
// first panic (lowest chunk ordinal) is re-raised on the caller.
func For(n, workers int, body func(chunk, start, end int)) {
	chunks := Chunks(n, workers)
	if len(chunks) == 0 {
		return
	}
	if len(chunks) == 1 {
		body(0, chunks[0][0], chunks[0][1])
		return
	}
	panics := make([]*capturedPanic, len(chunks))
	var wg sync.WaitGroup
	wg.Add(len(chunks))
	for c, rng := range chunks {
		go func(c, start, end int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics[c] = &capturedPanic{chunk: c, value: r}
				}
			}()
			body(c, start, end)
		}(c, rng[0], rng[1])
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p.String())
		}
	}
}

// ForEach runs body(i) over [0, n) with the same chunking, for loops whose
// iterations are heavy enough that per-index closure dispatch is noise
// (training one model per column, per disposition, ...).
func ForEach(n, workers int, body func(i int)) {
	For(n, workers, func(_, start, end int) {
		for i := start; i < end; i++ {
			body(i)
		}
	})
}

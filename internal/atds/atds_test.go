package atds

import (
	"testing"
	"testing/quick"
	"time"

	"nevermind/internal/data"
)

func mustQueue(t *testing.T, cfg Config, day int) *Queue {
	t.Helper()
	q, err := NewQueue(cfg, day)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewQueue(Config{DailyCapacity: 0, WeekendFactor: 1, MaxAgeDays: 1}, 0); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if _, err := NewQueue(Config{DailyCapacity: 1, WeekendFactor: 0, MaxAgeDays: 1}, 0); err == nil {
		t.Fatal("zero weekend factor accepted")
	}
	if _, err := NewQueue(Config{DailyCapacity: 1, WeekendFactor: 1, MaxAgeDays: 0}, 0); err == nil {
		t.Fatal("zero max age accepted")
	}
}

func TestDefaultConfigScales(t *testing.T) {
	c := DefaultConfig(20000)
	// Sized to cover the reactive load (~0.55 tickets/line-year ≈ 30/day
	// at 20k lines) with limited prediction headroom.
	if c.DailyCapacity < 40 || c.DailyCapacity > 200 {
		t.Fatalf("capacity %d outside the binding range for 20k lines", c.DailyCapacity)
	}
	if c := DefaultConfig(10); c.DailyCapacity < 1 {
		t.Fatal("tiny population got no capacity")
	}
}

func TestCustomerTicketsAlwaysFirst(t *testing.T) {
	q := mustQueue(t, Config{DailyCapacity: 2, WeekendFactor: 1, MaxAgeDays: 30}, 0)
	// Predicted jobs arrive first but must wait behind a later customer.
	q.Submit(1, PriorityPredicted, 1)
	q.Submit(2, PriorityPredicted, 2)
	q.Submit(3, PriorityCustomer, 0)
	out := q.Advance()
	if len(out) != 2 {
		t.Fatalf("worked %d jobs with capacity 2", len(out))
	}
	if out[0].Line != 3 {
		t.Fatalf("customer ticket not worked first: %+v", out[0])
	}
	if out[1].Line != 1 {
		t.Fatal("predicted jobs not worked in rank order")
	}
}

func TestRankOrderWithinPredicted(t *testing.T) {
	q := mustQueue(t, Config{DailyCapacity: 3, WeekendFactor: 1, MaxAgeDays: 30}, 0)
	q.Submit(10, PriorityPredicted, 7)
	q.Submit(11, PriorityPredicted, 2)
	q.Submit(12, PriorityPredicted, 5)
	out := q.Advance()
	if out[0].Line != 11 || out[1].Line != 12 || out[2].Line != 10 {
		t.Fatalf("rank order violated: %v %v %v", out[0].Line, out[1].Line, out[2].Line)
	}
}

func TestFIFOAcrossDays(t *testing.T) {
	q := mustQueue(t, Config{DailyCapacity: 1, WeekendFactor: 1, MaxAgeDays: 30}, 0)
	q.Submit(1, PriorityCustomer, 0)
	q.Advance() // day 0: works line 1... queue empty now
	q.Submit(2, PriorityCustomer, 0)
	q.Submit(3, PriorityCustomer, 0)
	out := q.Advance()
	if len(out) != 1 || out[0].Line != 2 {
		t.Fatalf("day-1 outcome %+v", out)
	}
	out = q.Advance()
	if len(out) != 1 || out[0].Line != 3 {
		t.Fatalf("day-2 outcome %+v", out)
	}
}

func TestWeekendCapacityBoost(t *testing.T) {
	// Day 2 of 2009 is the first Saturday.
	q := mustQueue(t, Config{DailyCapacity: 4, WeekendFactor: 1.5, MaxAgeDays: 30}, data.FirstSaturday)
	if data.Weekday(q.Day()) != time.Saturday {
		t.Fatal("fixture day is not Saturday")
	}
	for i := 0; i < 20; i++ {
		q.Submit(data.LineID(i), PriorityCustomer, 0)
	}
	out := q.Advance()
	if len(out) != 6 { // 4 * 1.5
		t.Fatalf("Saturday worked %d jobs, want 6", len(out))
	}
	// Monday is back to 4.
	q.Advance() // Sunday
	out = q.Advance()
	if len(out) != 4 {
		t.Fatalf("Monday worked %d jobs, want 4", len(out))
	}
}

func TestPredictedJobsExpire(t *testing.T) {
	q := mustQueue(t, Config{DailyCapacity: 1, WeekendFactor: 1, MaxAgeDays: 3}, 0)
	q.Submit(1, PriorityPredicted, 1)
	// Saturate with customer tickets so the prediction starves.
	for day := 0; day < 6; day++ {
		q.Submit(data.LineID(100+day), PriorityCustomer, 0)
		for _, o := range q.Advance() {
			if o.Line == 1 && !o.Expired {
				t.Fatal("starved prediction should not be worked")
			}
			if o.Line == 1 && o.Expired {
				if q.Day() <= 3 {
					t.Fatal("expired too early")
				}
				return
			}
		}
	}
	t.Fatal("prediction never expired under starvation")
}

func TestCustomerTicketsNeverExpire(t *testing.T) {
	q := mustQueue(t, Config{DailyCapacity: 1, WeekendFactor: 1, MaxAgeDays: 2}, 0)
	q.Submit(1, PriorityCustomer, 0)
	for i := 0; i < 5; i++ {
		q.Submit(data.LineID(10+i), PriorityCustomer, 0)
	}
	worked := map[data.LineID]bool{}
	for day := 0; day < 10 && q.Pending() > 0; day++ {
		for _, o := range q.Advance() {
			if o.Expired {
				t.Fatalf("customer ticket expired: %+v", o)
			}
			worked[o.Line] = true
		}
	}
	if !worked[1] {
		t.Fatal("first customer ticket never worked")
	}
}

func TestConservation(t *testing.T) {
	// Every submitted job comes back exactly once, worked or expired.
	err := quick.Check(func(seed uint8) bool {
		q, err := NewQueue(Config{DailyCapacity: 2, WeekendFactor: 1, MaxAgeDays: 4}, int(seed)%300)
		if err != nil {
			return false
		}
		n := int(seed)%17 + 3
		for i := 0; i < n; i++ {
			pri := PriorityCustomer
			if i%2 == 0 {
				pri = PriorityPredicted
			}
			q.Submit(data.LineID(i), pri, i)
		}
		seen := map[int]int{}
		for day := 0; day < 40; day++ {
			for _, o := range q.Advance() {
				seen[o.ID]++
			}
		}
		if q.Pending() != 0 {
			return false
		}
		if len(seen) != n {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	outcomes := []Outcome{
		{Job: Job{Priority: PriorityCustomer, SubmitDay: 0}, StartDay: 2},
		{Job: Job{Priority: PriorityCustomer, SubmitDay: 1}, StartDay: 3},
		{Job: Job{Priority: PriorityPredicted, SubmitDay: 0}, StartDay: 4},
		{Job: Job{Priority: PriorityPredicted, SubmitDay: 0}, StartDay: 9},
		{Job: Job{Priority: PriorityPredicted, SubmitDay: 0}, StartDay: -1, Expired: true},
	}
	s := Summarize(outcomes)
	if s.Customer != 2 || s.Predicted != 2 || s.ExpiredPredicted != 1 {
		t.Fatalf("counts: %+v", s)
	}
	if s.MeanCustomerWaitDays != 2 {
		t.Fatalf("customer wait %v", s.MeanCustomerWaitDays)
	}
	if s.MeanPredictedWaitDays != 6.5 {
		t.Fatalf("predicted wait %v", s.MeanPredictedWaitDays)
	}
	if s.WorkedWithinBudgetHorizon != 1 {
		t.Fatalf("within-horizon %d", s.WorkedWithinBudgetHorizon)
	}
}

func TestExpiryConsumesNoCapacity(t *testing.T) {
	q := mustQueue(t, Config{DailyCapacity: 1, WeekendFactor: 1, MaxAgeDays: 1}, 0)
	q.Submit(1, PriorityPredicted, 1)
	q.Submit(2, PriorityPredicted, 2)
	q.Advance() // day 0: works job 1
	q.Advance() // day 1: nothing new; job 2 not yet expired (age 1 <= 1)... works it
	// Refill: expired + fresh; the fresh one must still be worked today.
	q.Submit(3, PriorityPredicted, 1)
	out := q.Advance()
	workedFresh := false
	for _, o := range out {
		if o.Line == 3 && !o.Expired {
			workedFresh = true
		}
	}
	if !workedFresh {
		t.Fatalf("expiries stole capacity: %+v", out)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{
		Customer: 2, Predicted: 4, ExpiredPredicted: 1,
		MeanCustomerWaitDays: 1, MeanPredictedWaitDays: 2,
		WorkedWithinBudgetHorizon: 3,
	}
	b := Stats{
		Customer: 6, Predicted: 0, ExpiredPredicted: 2,
		MeanCustomerWaitDays: 5, MeanPredictedWaitDays: 99, // no predicted jobs: mean is noise
		WorkedWithinBudgetHorizon: 0,
	}
	a.Add(b)
	if a.Customer != 8 || a.Predicted != 4 || a.ExpiredPredicted != 3 || a.WorkedWithinBudgetHorizon != 3 {
		t.Fatalf("counts wrong after Add: %+v", a)
	}
	// Means reweight by job counts: (1*2 + 5*6) / 8 = 4.
	if a.MeanCustomerWaitDays != 4 {
		t.Fatalf("customer mean %v, want 4", a.MeanCustomerWaitDays)
	}
	// b carried no predicted jobs, so its (meaningless) mean has zero weight.
	if a.MeanPredictedWaitDays != 2 {
		t.Fatalf("predicted mean %v, want 2", a.MeanPredictedWaitDays)
	}

	// Adding a batch into a zero total is the batch itself — except that a
	// mean with zero jobs behind it carries no weight and does not survive.
	var zero Stats
	zero.Add(b)
	want := b
	want.MeanPredictedWaitDays = 0
	if zero != want {
		t.Fatalf("zero.Add(b) = %+v, want %+v", zero, want)
	}

	// Accumulating Summarize batches equals one Summarize of everything.
	q := mustQueue(t, Config{DailyCapacity: 2, WeekendFactor: 1, MaxAgeDays: 30}, 0)
	for i := 0; i < 6; i++ {
		q.Submit(data.LineID(i), PriorityCustomer, 0)
		q.Submit(data.LineID(10+i), PriorityPredicted, i)
	}
	var all []Outcome
	var running Stats
	for d := 0; d < 10; d++ {
		out := q.Advance()
		running.Add(Summarize(out))
		all = append(all, out...)
	}
	oneShot := Summarize(all)
	if running != oneShot {
		t.Fatalf("accumulated %+v, one-shot %+v", running, oneShot)
	}
}

// Package atds models the Automatic Testing and Dispatching System of
// Fig. 3: the operational funnel every ticket — customer-reported or
// NEVERMIND-predicted — passes through on its way to a field technician.
//
// ATDS is the reason the whole prediction problem is budgeted: its daily
// diagnosis capacity is consumed first by customer-reported tickets (which
// always take priority, §3.2) and only the remainder is available for
// predicted problems. The queue model here reproduces that contention so
// deployment studies can ask the operational questions the paper raises:
// how many predicted tickets actually get worked, how dispatch latency
// behaves under load, and how much spare weekend capacity the Saturday
// prediction run can exploit (§3.3).
package atds

import (
	"container/heap"
	"fmt"
	"time"

	"nevermind/internal/data"
)

// Priority orders work in the queue. Customer tickets always outrank
// predicted ones; within a class, earlier submissions go first, and
// predicted tickets preserve their ranking order.
type Priority uint8

const (
	// PriorityCustomer is a customer-reported problem.
	PriorityCustomer Priority = iota
	// PriorityPredicted is a NEVERMIND prediction.
	PriorityPredicted
)

// Job is one diagnosis request.
type Job struct {
	ID       int
	Line     data.LineID
	Priority Priority
	// SubmitDay is when the job entered the queue.
	SubmitDay int
	// Rank is the prediction rank (lower = more likely); 0 for customer
	// tickets.
	Rank int
}

// Outcome records how a job left the system.
type Outcome struct {
	Job
	// StartDay is when a technician picked the job up; -1 if it expired.
	StartDay int
	// Expired jobs aged out of the queue unworked.
	Expired bool
}

// Config sizes the system.
type Config struct {
	// DailyCapacity is how many diagnoses the workforce completes per day.
	DailyCapacity int
	// WeekendFactor scales capacity on Saturday/Sunday; the paper notes
	// ticket volume bottoms out on weekends, freeing capacity for
	// predicted problems (§3.3).
	WeekendFactor float64
	// MaxAgeDays drops predicted jobs that waited too long: a stale
	// prediction is worthless once the four-week horizon has passed.
	MaxAgeDays int
}

// DefaultConfig returns a workforce sized the way the paper describes the
// real one: enough for the reactive ticket load with *limited* remaining
// capacity for predictions ("the number of predicted tickets that can be
// handled daily by ATDS is usually upper bounded", §3.2) — so the budget
// genuinely binds.
func DefaultConfig(numLines int) Config {
	cap := numLines / 250
	if cap < 4 {
		cap = 4
	}
	return Config{DailyCapacity: cap, WeekendFactor: 1.25, MaxAgeDays: 14}
}

// Queue is the ATDS work queue. It is a deterministic discrete-day
// simulator: Submit jobs, then Advance a day at a time; completed and
// expired jobs come back as Outcomes.
type Queue struct {
	cfg    Config
	day    int
	nextID int
	pq     jobHeap
}

// NewQueue creates an empty queue starting at the given day.
func NewQueue(cfg Config, startDay int) (*Queue, error) {
	if cfg.DailyCapacity < 1 {
		return nil, fmt.Errorf("atds: DailyCapacity must be positive")
	}
	if cfg.WeekendFactor <= 0 {
		return nil, fmt.Errorf("atds: WeekendFactor must be positive")
	}
	if cfg.MaxAgeDays < 1 {
		return nil, fmt.Errorf("atds: MaxAgeDays must be positive")
	}
	return &Queue{cfg: cfg, day: startDay}, nil
}

// Day returns the current simulation day.
func (q *Queue) Day() int { return q.day }

// Pending returns the number of queued jobs.
func (q *Queue) Pending() int { return q.pq.Len() }

// Submit enqueues a job at the current day and returns its ID.
func (q *Queue) Submit(line data.LineID, pri Priority, rank int) int {
	id := q.nextID
	q.nextID++
	heap.Push(&q.pq, Job{ID: id, Line: line, Priority: pri, SubmitDay: q.day, Rank: rank})
	return id
}

// Advance works one day of capacity and moves the clock forward, returning
// the day's outcomes (completions first, then expiries).
func (q *Queue) Advance() []Outcome {
	capacity := q.cfg.DailyCapacity
	switch data.Weekday(q.day) {
	case time.Saturday, time.Sunday:
		capacity = int(float64(capacity) * q.cfg.WeekendFactor)
	}
	var out []Outcome
	for i := 0; i < capacity && q.pq.Len() > 0; i++ {
		j := heap.Pop(&q.pq).(Job)
		if q.expired(j) {
			out = append(out, Outcome{Job: j, StartDay: -1, Expired: true})
			i-- // an expiry consumes no capacity
			continue
		}
		out = append(out, Outcome{Job: j, StartDay: q.day})
	}
	// Purge whatever else expired today so the queue cannot grow without
	// bound under sustained overload.
	var keep jobHeap
	for _, j := range q.pq {
		if q.expired(j) {
			out = append(out, Outcome{Job: j, StartDay: -1, Expired: true})
		} else {
			keep = append(keep, j)
		}
	}
	heap.Init(&keep)
	q.pq = keep
	q.day++
	return out
}

func (q *Queue) expired(j Job) bool {
	return j.Priority == PriorityPredicted && q.day-j.SubmitDay > q.cfg.MaxAgeDays
}

// jobHeap orders by (priority, submit day, rank, id).
type jobHeap []Job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(a, b int) bool {
	ja, jb := h[a], h[b]
	if ja.Priority != jb.Priority {
		return ja.Priority < jb.Priority
	}
	if ja.SubmitDay != jb.SubmitDay {
		return ja.SubmitDay < jb.SubmitDay
	}
	if ja.Rank != jb.Rank {
		return ja.Rank < jb.Rank
	}
	return ja.ID < jb.ID
}
func (h jobHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }
func (h *jobHeap) Push(x any)   { *h = append(*h, x.(Job)) }
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	*h = old[:n-1]
	return j
}

// Stats summarises a batch of outcomes.
type Stats struct {
	Customer, Predicted       int
	ExpiredPredicted          int
	MeanCustomerWaitDays      float64
	MeanPredictedWaitDays     float64
	WorkedWithinBudgetHorizon int // predicted jobs started within 7 days
}

// Add merges another batch's stats into s, reweighting the mean waits by
// job counts, so a long-running pipeline can accumulate a running total
// across weekly ticks.
func (s *Stats) Add(o Stats) {
	if s.Customer+o.Customer > 0 {
		s.MeanCustomerWaitDays = (s.MeanCustomerWaitDays*float64(s.Customer) +
			o.MeanCustomerWaitDays*float64(o.Customer)) / float64(s.Customer+o.Customer)
	}
	if s.Predicted+o.Predicted > 0 {
		s.MeanPredictedWaitDays = (s.MeanPredictedWaitDays*float64(s.Predicted) +
			o.MeanPredictedWaitDays*float64(o.Predicted)) / float64(s.Predicted+o.Predicted)
	}
	s.Customer += o.Customer
	s.Predicted += o.Predicted
	s.ExpiredPredicted += o.ExpiredPredicted
	s.WorkedWithinBudgetHorizon += o.WorkedWithinBudgetHorizon
}

// Summarize aggregates outcomes.
func Summarize(outcomes []Outcome) Stats {
	var s Stats
	var cw, pw float64
	for _, o := range outcomes {
		switch {
		case o.Expired:
			s.ExpiredPredicted++
		case o.Priority == PriorityCustomer:
			s.Customer++
			cw += float64(o.StartDay - o.SubmitDay)
		default:
			s.Predicted++
			pw += float64(o.StartDay - o.SubmitDay)
			if o.StartDay-o.SubmitDay <= 7 {
				s.WorkedWithinBudgetHorizon++
			}
		}
	}
	if s.Customer > 0 {
		s.MeanCustomerWaitDays = cw / float64(s.Customer)
	}
	if s.Predicted > 0 {
		s.MeanPredictedWaitDays = pw / float64(s.Predicted)
	}
	return s
}

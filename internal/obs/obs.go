// Package obs is the observability layer: a dependency-free metrics
// registry (monotonic counters, gauges, fixed-bucket latency histograms)
// with Prometheus-text-format exposition, plus a ring-buffer stage tracer
// for pipeline spans. It exists so the serving daemon can answer "where did
// the week go" questions — per-route request latency, per-stage pipeline
// durations, cache and store health — without pulling a client library into
// the build.
//
// Concurrency contract (proven by the package's race and property tests):
//
//   - every mutation (Counter.Add, Gauge.Set, Histogram.Observe) is a
//     single atomic operation, safe from any goroutine, never torn;
//   - snapshots and exposition never block writers: they read the same
//     atomics, so a snapshot taken during a write storm is a consistent
//     per-cell view (each cell is exact; cross-cell skew is bounded by the
//     writes in flight during the read);
//   - histogram state is integer nanoseconds throughout, so merging
//     snapshots is exact and order-independent (integer addition commutes;
//     no float summation order to worry about).
//
// Registries are instances, not process globals: a test binary can build
// dozens without name collisions, and a server owns exactly one.
package obs

import (
	"fmt"
	"sync/atomic"
)

// Counter is a monotonically non-decreasing counter. Add with a negative
// delta panics: a counter that can go down is a gauge, and monitoring math
// (rates, resets) silently breaks on hidden decrements.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter. delta must be >= 0.
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		panic(fmt.Sprintf("obs: negative Add(%d) on a monotonic counter", delta))
	}
	c.v.Add(delta)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous value that may move either way.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta (either sign).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

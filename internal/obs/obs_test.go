package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCounterMonotonic pins the monotonic invariant two ways: a negative
// Add panics (a counter that can go down is a silent monitoring bug), and
// under concurrent adds the final value is the exact sum — no torn or lost
// increments.
func TestCounterMonotonic(t *testing.T) {
	var c Counter
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("negative Add did not panic")
			}
		}()
		c.Add(-1)
	}()

	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
}

// TestCounterNeverDecreases samples a hammered counter concurrently and
// asserts every observed value is >= the previous one — the reader-side
// half of the monotonic contract.
func TestCounterNeverDecreases(t *testing.T) {
	var c Counter
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50000; i++ {
			c.Add(1)
		}
	}()
	last := int64(-1)
	for {
		v := c.Value()
		if v < last {
			t.Fatalf("counter went backwards: %d after %d", v, last)
		}
		last = v
		select {
		case <-done:
			if got := c.Value(); got != 50000 {
				t.Fatalf("final counter = %d, want 50000", got)
			}
			return
		default:
		}
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

// TestHistogramBuckets pins bucket assignment at the boundaries: an
// observation equal to a bound lands in that bound's bucket (le is
// inclusive, the Prometheus convention), one nanosecond more spills over.
func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01})
	h.Observe(time.Millisecond)                   // == first bound
	h.Observe(time.Millisecond + time.Nanosecond) // > first bound
	h.Observe(100 * time.Millisecond)             // > every bound
	s := h.Snapshot()
	want := []uint64{1, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket counts = %v, want %v", s.Counts, want)
		}
	}
	if s.Count != 3 {
		t.Fatalf("count = %d, want 3", s.Count)
	}
	if s.SumNs != int64(2*time.Millisecond+time.Nanosecond+100*time.Millisecond) {
		t.Fatalf("sum = %d ns", s.SumNs)
	}
}

// TestHistogramQuantile checks the interpolated quantile estimator against
// a distribution with known mass: 90 fast observations and 10 slow ones.
func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(DefaultLatencyBounds)
	for i := 0; i < 90; i++ {
		h.Observe(200 * time.Microsecond) // bucket (0.0001, 0.00025]
	}
	for i := 0; i < 10; i++ {
		h.Observe(300 * time.Millisecond) // bucket (0.25, 0.5]
	}
	s := h.Snapshot()
	if p50 := s.Quantile(0.5); p50 < 0.0001 || p50 > 0.00025 {
		t.Fatalf("p50 = %g, want within (0.0001, 0.00025]", p50)
	}
	if p99 := s.Quantile(0.99); p99 < 0.25 || p99 > 0.5 {
		t.Fatalf("p99 = %g, want within (0.25, 0.5]", p99)
	}
	if q := s.Quantile(1); q > 0.5 {
		t.Fatalf("p100 = %g beyond the owning bucket", q)
	}
	var empty HistSnapshot
	if q := (empty).Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %g, want 0", q)
	}
}

// TestHistogramMergeOrderIndependent is the property test for merge
// semantics: observations partitioned arbitrarily across histograms and
// merged in any order yield the exact same snapshot — counts AND sums,
// bit for bit — because all state is integer nanoseconds. Float sums would
// fail this (addition order changes the rounding); the integer
// representation is the design decision this test pins.
func TestHistogramMergeOrderIndependent(t *testing.T) {
	// Deterministic pseudo-random durations (no global RNG in tests).
	next := uint64(0x9E3779B97F4A7C15)
	rand := func() uint64 {
		next ^= next << 13
		next ^= next >> 7
		next ^= next << 17
		return next
	}
	const parts = 7
	durations := make([]time.Duration, 4096)
	for i := range durations {
		durations[i] = time.Duration(rand() % uint64(2*time.Second))
	}

	build := func(order []int) HistSnapshot {
		hs := make([]*Histogram, parts)
		for i := range hs {
			hs[i] = NewHistogram(nil)
		}
		for i, d := range durations {
			hs[i%parts].Observe(d)
		}
		out := hs[order[0]].Snapshot()
		for _, i := range order[1:] {
			out = out.Merge(hs[i].Snapshot())
		}
		return out
	}

	ref := build([]int{0, 1, 2, 3, 4, 5, 6})
	perms := [][]int{
		{6, 5, 4, 3, 2, 1, 0},
		{3, 0, 6, 1, 5, 2, 4},
		{1, 2, 0, 4, 3, 6, 5},
	}
	for _, p := range perms {
		got := build(p)
		if got.Count != ref.Count || got.SumNs != ref.SumNs {
			t.Fatalf("merge order %v changed totals: count %d/%d sum %d/%d",
				p, got.Count, ref.Count, got.SumNs, ref.SumNs)
		}
		for i := range ref.Counts {
			if got.Counts[i] != ref.Counts[i] {
				t.Fatalf("merge order %v changed bucket %d: %d != %d", p, i, got.Counts[i], ref.Counts[i])
			}
		}
		if q, rq := got.Quantile(0.95), ref.Quantile(0.95); q != rq {
			t.Fatalf("merge order %v changed p95: %g != %g", p, q, rq)
		}
	}

	// A whole-set histogram equals the merged partition — partitioning
	// loses nothing.
	whole := NewHistogram(nil)
	for _, d := range durations {
		whole.Observe(d)
	}
	ws := whole.Snapshot()
	if ws.Count != ref.Count || ws.SumNs != ref.SumNs {
		t.Fatalf("partitioned merge diverged from whole: count %d/%d sum %d/%d",
			ref.Count, ws.Count, ref.SumNs, ws.SumNs)
	}
}

// TestHistogramMergeLayoutMismatchPanics: merging incompatible bucket
// layouts must fail loudly, not produce garbage.
func TestHistogramMergeLayoutMismatchPanics(t *testing.T) {
	a := NewHistogram([]float64{0.001, 0.01}).Snapshot()
	b := NewHistogram([]float64{0.002, 0.02}).Snapshot()
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched merge did not panic")
		}
	}()
	a.Merge(b)
}

// TestConcurrentObserveSnapshot hammers one histogram with writers while
// readers snapshot and render continuously; run under -race this proves the
// concurrency contract, and the final snapshot must account for every
// observation exactly.
func TestConcurrentObserveSnapshot(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("test_latency_seconds", "hammered", nil)
	cv := reg.CounterVec("test_ops_total", "hammered", "op").Preset("a", "b")

	const writers, perWriter = 8, 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Readers: snapshot and render while the storm runs.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := h.Snapshot()
				var cum uint64
				for _, c := range s.Counts {
					cum += c
				}
				if cum != s.Count {
					t.Errorf("snapshot count %d != bucket total %d", s.Count, cum)
					return
				}
				var sink discardWriter
				if err := reg.WritePrometheus(&sink); err != nil {
					t.Errorf("render: %v", err)
					return
				}
			}
		}()
	}
	var wwg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wwg.Add(1)
		go func(w int) {
			defer wwg.Done()
			op := "a"
			if w%2 == 1 {
				op = "b"
			}
			for i := 0; i < perWriter; i++ {
				h.Observe(time.Duration(i%1000) * time.Microsecond)
				cv.With(op).Add(1)
			}
		}(w)
	}
	wwg.Wait()
	close(stop)
	wg.Wait()

	s := h.Snapshot()
	if s.Count != writers*perWriter {
		t.Fatalf("histogram lost observations: %d, want %d", s.Count, writers*perWriter)
	}
	vals := cv.Values()
	if vals["a"]+vals["b"] != writers*perWriter {
		t.Fatalf("counter vec lost increments: %v", vals)
	}
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }

// TestRegistryGetOrCreate: same name and shape returns the same metric;
// conflicting shape panics.
func TestRegistryGetOrCreate(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", "")
	b := reg.Counter("x_total", "")
	if a != b {
		t.Fatal("same name returned distinct counters")
	}
	for _, f := range []func(){
		func() { reg.Gauge("x_total", "") },                                  // kind mismatch
		func() { reg.CounterVec("x_total", "", "route") },                    // shape mismatch
		func() { reg.Counter("bad name", "") },                               // invalid name
		func() { reg.Counter("9starts_with_digit", "") },                     // invalid name
		func() { reg.GaugeFunc("x_total", "", func() float64 { return 0 }) }, // already taken
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("conflicting registration did not panic")
				}
			}()
			f()
		}()
	}
}

// TestExpositionFormat pins the exposition down to the byte on a small
// registry — the unit-level companion to the serve package's full golden.
func TestExpositionFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("zz_total", "last by name").Add(3)
	reg.CounterVec("aa_requests_total", "first by name", "route").Preset("b", "a").With("a").Add(2)
	reg.Gauge("mm_depth", "a gauge").Set(-4)
	reg.GaugeFunc("nn_lines", "fn gauge", func() float64 { return 2.5 })
	h := reg.Histogram("hh_seconds", "a histogram", []float64{0.001, 0.01})
	h.Observe(500 * time.Microsecond)
	h.Observe(2 * time.Millisecond)
	h.Observe(time.Minute)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP aa_requests_total first by name
# TYPE aa_requests_total counter
aa_requests_total{route="a"} 2
aa_requests_total{route="b"} 0
# HELP hh_seconds a histogram
# TYPE hh_seconds histogram
hh_seconds_bucket{le="0.001"} 1
hh_seconds_bucket{le="0.01"} 2
hh_seconds_bucket{le="+Inf"} 3
hh_seconds_sum 60.0025
hh_seconds_count 3
# HELP mm_depth a gauge
# TYPE mm_depth gauge
mm_depth -4
# HELP nn_lines fn gauge
# TYPE nn_lines gauge
nn_lines 2.5
# HELP zz_total last by name
# TYPE zz_total counter
zz_total 3
`
	if got := b.String(); got != want {
		t.Fatalf("exposition format drifted:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestTracerRing pins ring semantics: capacity bounds retention, eviction
// drops oldest first, ordering is oldest→newest, and the lifetime totals
// keep counting past eviction.
func TestTracerRing(t *testing.T) {
	tr := NewTracer(4)
	for week := 0; week < 7; week++ {
		tr.Start("pull", week).End()
	}
	s := tr.Snapshot()
	if s.Capacity != 4 || len(s.Spans) != 4 {
		t.Fatalf("retained %d spans at capacity %d, want 4", len(s.Spans), s.Capacity)
	}
	for i, sp := range s.Spans {
		if sp.Week != 3+i {
			t.Fatalf("ring order wrong: got weeks %v", weeksOf(s.Spans))
		}
	}
	if s.Started != 7 || s.Finished != 7 || s.Active != 0 || s.Dropped != 3 {
		t.Fatalf("totals: %+v", s)
	}
}

// TestTracerAnnotations: attempt, error and degraded annotations survive
// into the snapshot; unfinished spans show up as Active, not as spans.
func TestTracerAnnotations(t *testing.T) {
	tr := NewTracer(8)
	tr.Start("ingest", 0).Week(41).Attempt(2).Fail(errBoom{}).End()
	tr.Start("snapshot", 41).Degraded().End()
	open := tr.Start("rank", 41)

	s := tr.Snapshot()
	if s.Active != 1 || s.Started != 3 || s.Finished != 2 {
		t.Fatalf("active accounting: %+v", s)
	}
	if len(s.Spans) != 2 {
		t.Fatalf("retained %d spans, want 2", len(s.Spans))
	}
	if sp := s.Spans[0]; sp.Stage != "ingest" || sp.Week != 41 || sp.Attempt != 2 || sp.Err != "boom" {
		t.Fatalf("annotated span lost data: %+v", sp)
	}
	if sp := s.Spans[1]; !sp.Degraded {
		t.Fatalf("degraded flag lost: %+v", sp)
	}

	open.End()
	open.End() // double End is a no-op, not a double record
	s = tr.Snapshot()
	if s.Active != 0 || s.Finished != 3 || len(s.Spans) != 3 {
		t.Fatalf("after close: %+v", s)
	}
}

// TestTracerNil: a nil tracer (tracing disabled) must be fully inert.
func TestTracerNil(t *testing.T) {
	var tr *Tracer
	tr.Start("pull", 1).Week(2).Attempt(1).Fail(errBoom{}).Degraded().End()
	s := tr.Snapshot()
	if s.Started != 0 || len(s.Spans) != 0 {
		t.Fatalf("nil tracer recorded: %+v", s)
	}
}

// TestTracerConcurrent hammers Start/End/Snapshot from many goroutines;
// under -race this is the tracer's concurrency proof, and afterwards
// started == finished with every span accounted for.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(64)
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := tr.Snapshot()
			if s.Finished > s.Started {
				t.Errorf("finished %d > started %d", s.Finished, s.Started)
				return
			}
		}
	}()
	var wwg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wwg.Add(1)
		go func(w int) {
			defer wwg.Done()
			for i := 0; i < perWorker; i++ {
				sp := tr.Start("score", i)
				if i%3 == 0 {
					sp.Attempt(1 + i%5)
				}
				sp.End()
			}
		}(w)
	}
	wwg.Wait()
	close(stop)
	wg.Wait()

	s := tr.Snapshot()
	if s.Started != workers*perWorker || s.Finished != workers*perWorker || s.Active != 0 {
		t.Fatalf("span leak: %+v", s)
	}
	if len(s.Spans) != 64 {
		t.Fatalf("ring retained %d spans at capacity 64", len(s.Spans))
	}
}

type errBoom struct{}

func (errBoom) Error() string { return "boom" }

func weeksOf(spans []Span) []int {
	out := make([]int, len(spans))
	for i, s := range spans {
		out[i] = s.Week
	}
	return out
}

// TestUptime sanity-checks the uptime closure.
func TestUptime(t *testing.T) {
	fn := Uptime(time.Now().Add(-time.Second))
	if v := fn(); v < 0.9 || math.IsNaN(v) {
		t.Fatalf("uptime = %g", v)
	}
}

package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Span is one finished stage execution: which pipeline stage ran, for which
// week, how long it took, and how it ended. Attempt > 1 marks a retry;
// Err records why the attempt failed; Degraded marks a stage that completed
// by serving stale state rather than fresh.
type Span struct {
	Seq      uint64    `json:"seq"`
	Stage    string    `json:"stage"`
	Week     int       `json:"week"`
	Start    time.Time `json:"start"`
	Duration int64     `json:"duration_ns"`
	Attempt  int       `json:"attempt,omitempty"`
	Err      string    `json:"error,omitempty"`
	Degraded bool      `json:"degraded,omitempty"`
}

// Tracer records stage spans into a fixed-capacity ring buffer: the newest
// spans win, memory is bounded forever, and a Snapshot is the flight
// recorder an operator reads after a slow week. A nil *Tracer is valid and
// records nothing, so instrumented code needs no guards.
//
// The started/finished totals count every span ever, not just the retained
// window — started == finished after quiescence is the "no span leaked"
// invariant the chaos soak asserts.
type Tracer struct {
	mu    sync.Mutex
	buf   []Span
	next  int
	wrap  bool
	seq   atomic.Uint64 // finished spans ever
	began atomic.Uint64 // started spans ever
}

// DefaultTraceCapacity retains roughly a year of weekly pipeline runs: a
// clean week is six spans, a stormy week tens, so 1024 spans cover every
// soak the tests run without eviction skewing the invariants.
const DefaultTraceCapacity = 1024

// NewTracer builds a tracer retaining the last capacity spans
// (<= 0 = DefaultTraceCapacity).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{buf: make([]Span, 0, capacity)}
}

// ActiveSpan is a started, not-yet-finished span. End it exactly once;
// annotations before End record how the stage went.
type ActiveSpan struct {
	t     *Tracer
	span  Span
	t0    time.Time
	ended bool
}

// Start opens a span for one execution of a stage. On a nil tracer it
// returns a no-op span.
func (t *Tracer) Start(stage string, week int) *ActiveSpan {
	if t == nil {
		return nil
	}
	t.began.Add(1)
	t0 := time.Now()
	return &ActiveSpan{
		t:    t,
		span: Span{Stage: stage, Week: week, Start: t0},
		t0:   t0,
	}
}

// Week annotates the span with the week it operated on — for stages that
// learn the week only once the operation returns (a pull discovers its week
// from the batch it fetched).
func (a *ActiveSpan) Week(w int) *ActiveSpan {
	if a != nil {
		a.span.Week = w
	}
	return a
}

// Attempt annotates the span with its 1-based attempt number.
func (a *ActiveSpan) Attempt(n int) *ActiveSpan {
	if a != nil {
		a.span.Attempt = n
	}
	return a
}

// Fail annotates the span with the error that ended the attempt.
func (a *ActiveSpan) Fail(err error) *ActiveSpan {
	if a != nil && err != nil {
		a.span.Err = err.Error()
	}
	return a
}

// Degraded marks the span as having served stale state.
func (a *ActiveSpan) Degraded() *ActiveSpan {
	if a != nil {
		a.span.Degraded = true
	}
	return a
}

// End finishes the span and commits it to the ring. Safe to call on a nil
// span; a second End is ignored (the first duration stands).
func (a *ActiveSpan) End() {
	if a == nil || a.ended {
		return
	}
	a.ended = true
	a.span.Duration = int64(time.Since(a.t0))
	t := a.t
	a.span.Seq = t.seq.Add(1)
	t.mu.Lock()
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, a.span)
	} else {
		t.buf[t.next] = a.span
		t.next = (t.next + 1) % cap(t.buf)
		t.wrap = true
	}
	t.mu.Unlock()
}

// TraceSnapshot is the flight-recorder readout: every retained span oldest
// to newest, plus the lifetime totals the leak invariant needs.
type TraceSnapshot struct {
	Capacity int    `json:"capacity"`
	Started  uint64 `json:"spans_started"`
	Finished uint64 `json:"spans_finished"`
	Active   uint64 `json:"spans_active"`
	Dropped  uint64 `json:"spans_dropped"` // finished spans evicted by the ring
	Spans    []Span `json:"spans"`
}

// Snapshot copies the retained spans, oldest first. Valid on a nil tracer
// (empty snapshot).
func (t *Tracer) Snapshot() TraceSnapshot {
	if t == nil {
		return TraceSnapshot{}
	}
	t.mu.Lock()
	spans := make([]Span, 0, len(t.buf))
	if t.wrap {
		spans = append(spans, t.buf[t.next:]...)
		spans = append(spans, t.buf[:t.next]...)
	} else {
		spans = append(spans, t.buf...)
	}
	capacity := cap(t.buf)
	t.mu.Unlock()
	// Read finished before started: a span that starts mid-snapshot can
	// only push Active up, never produce finished > started.
	fin := t.seq.Load()
	beg := t.began.Load()
	return TraceSnapshot{
		Capacity: capacity,
		Started:  beg,
		Finished: fin,
		Active:   beg - fin,
		Dropped:  fin - uint64(len(spans)),
		Spans:    spans,
	}
}

// Started returns how many spans have ever been started.
func (t *Tracer) Started() uint64 {
	if t == nil {
		return 0
	}
	return t.began.Load()
}

// Finished returns how many spans have ever been ended.
func (t *Tracer) Finished() uint64 {
	if t == nil {
		return 0
	}
	return t.seq.Load()
}

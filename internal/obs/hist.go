package obs

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"
)

// DefaultLatencyBounds are the histogram bucket upper bounds (seconds) used
// for request and stage latencies: 100µs to 10s in a 1-2.5-5 ladder. They
// bracket everything the daemon does, from a sub-millisecond cached score to
// a multi-second snapshot rebuild, with p50/p95/p99 resolvable at every
// scale in between.
var DefaultLatencyBounds = []float64{
	0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05,
	0.1, 0.25, 0.5,
	1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket latency histogram. Bucket bounds are set at
// construction and immutable; observations are integer nanoseconds, so sums
// are exact and snapshot merges are order-independent. All methods are safe
// for concurrent use; Observe is three atomic adds and a binary search.
type Histogram struct {
	bounds   []float64 // upper bounds, seconds, strictly ascending
	boundsNs []int64   // the same bounds in nanoseconds, for integer search
	counts   []atomic.Uint64
	infCount atomic.Uint64
	sumNs    atomic.Int64
	n        atomic.Uint64
}

// NewHistogram builds a histogram with the given bucket upper bounds in
// seconds (nil = DefaultLatencyBounds). Bounds must be positive and strictly
// ascending.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBounds
	}
	h := &Histogram{
		bounds:   append([]float64(nil), bounds...),
		boundsNs: make([]int64, len(bounds)),
		counts:   make([]atomic.Uint64, len(bounds)),
	}
	prev := int64(0)
	for i, b := range h.bounds {
		ns := int64(b * float64(time.Second))
		if b <= 0 || ns <= prev {
			panic(fmt.Sprintf("obs: histogram bounds must be positive and strictly ascending, got %v", bounds))
		}
		h.boundsNs[i] = ns
		prev = ns
	}
	return h
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	// First bucket whose bound >= ns (buckets are cumulative upper bounds).
	i := sort.Search(len(h.boundsNs), func(i int) bool { return h.boundsNs[i] >= ns })
	if i < len(h.counts) {
		h.counts[i].Add(1)
	} else {
		h.infCount.Add(1)
	}
	h.sumNs.Add(ns)
	h.n.Add(1)
}

// Bounds returns the bucket upper bounds in seconds (do not mutate).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// HistSnapshot is a point-in-time copy of a histogram's state. Counts are
// per-bucket (not cumulative); SumNs is the exact integer sum of all
// observed nanoseconds, so two snapshots merge exactly in either order.
type HistSnapshot struct {
	Bounds []float64 // upper bounds, seconds; Counts[i] pairs with Bounds[i]
	Counts []uint64  // len(Bounds)+1: the last cell is the +Inf bucket
	SumNs  int64
	Count  uint64
}

// Snapshot copies the current state. Taken mid-storm it is consistent per
// cell; Count is read last so it never exceeds the bucket total by more
// than the writes that landed during the read.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)+1),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Counts[len(h.counts)] = h.infCount.Load()
	s.SumNs = h.sumNs.Load()
	var n uint64
	for _, c := range s.Counts {
		n += c
	}
	s.Count = n
	return s
}

// Merge returns the element-wise sum of two snapshots of histograms with
// identical bounds. Counts and sums are integers, so Merge is exact,
// commutative, and associative — the property the obs tests pin.
func (s HistSnapshot) Merge(o HistSnapshot) HistSnapshot {
	if len(s.Bounds) != len(o.Bounds) {
		panic("obs: merging histograms with different bucket layouts")
	}
	for i := range s.Bounds {
		if s.Bounds[i] != o.Bounds[i] {
			panic("obs: merging histograms with different bucket layouts")
		}
	}
	out := HistSnapshot{
		Bounds: s.Bounds,
		Counts: make([]uint64, len(s.Counts)),
		SumNs:  s.SumNs + o.SumNs,
		Count:  s.Count + o.Count,
	}
	for i := range s.Counts {
		out.Counts[i] = s.Counts[i] + o.Counts[i]
	}
	return out
}

// Quantile estimates the q-quantile (0 < q <= 1) in seconds by linear
// interpolation within the owning bucket — the same estimator Prometheus's
// histogram_quantile uses. An empty histogram reports 0; mass in the +Inf
// bucket reports the highest finite bound (the estimate saturates).
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if float64(cum) >= rank {
			if i == len(s.Bounds) { // +Inf bucket: saturate at the last bound
				return s.Bounds[len(s.Bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			hi := s.Bounds[i]
			if c == 0 {
				return hi
			}
			frac := (rank - float64(cum-c)) / float64(c)
			return lo + (hi-lo)*frac
		}
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Sum returns the observed total in seconds.
func (s HistSnapshot) Sum() float64 { return float64(s.SumNs) / float64(time.Second) }

package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Registry is a set of named metric families rendered together in
// Prometheus text exposition format. Families are get-or-create: asking for
// an existing name with the same shape returns the existing metric, asking
// with a different shape panics (two subsystems fighting over one name is a
// programmer error, not a runtime condition).
//
// Each family is either a scalar or a vector over exactly one label key —
// all the cardinality the daemon needs (route, stage, op) without the
// combinatorics of a full label system.
type Registry struct {
	mu   sync.Mutex
	ents map[string]*entry
}

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

type entry struct {
	name     string
	help     string
	kind     metricKind
	labelKey string // "" = scalar family

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	cvec    *CounterVec
	gvec    *GaugeVec
	hvec    *HistogramVec

	// fn-backed families render a value computed at exposition time — the
	// bridge for state owned elsewhere (store sizes, cache stats, uptime).
	fn func() float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{ents: map[string]*entry{}}
}

func (r *Registry) getOrCreate(name, help string, kind metricKind, labelKey string, make func() *entry) *entry {
	if name == "" || !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.ents[name]; ok {
		if e.kind != kind || e.labelKey != labelKey || e.fn != nil {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s{%s}, was %s{%s}",
				name, kind, labelKey, e.kind, e.labelKey))
		}
		return e
	}
	e := make()
	e.name, e.help, e.kind, e.labelKey = name, help, kind, labelKey
	r.ents[name] = e
	return e
}

// Counter returns the named scalar counter, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	e := r.getOrCreate(name, help, kindCounter, "", func() *entry {
		return &entry{counter: &Counter{}}
	})
	return e.counter
}

// Gauge returns the named scalar gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	e := r.getOrCreate(name, help, kindGauge, "", func() *entry {
		return &entry{gauge: &Gauge{}}
	})
	return e.gauge
}

// Histogram returns the named scalar histogram (nil bounds =
// DefaultLatencyBounds), creating it on first use.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	e := r.getOrCreate(name, help, kindHistogram, "", func() *entry {
		return &entry{hist: NewHistogram(bounds)}
	})
	return e.hist
}

// CounterFunc registers a counter family whose value is computed at
// exposition time by fn — for monotonic state owned by another subsystem
// (cache hit totals, snapshot build failures). Registering the same name
// twice panics.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.registerFunc(name, help, kindCounter, fn)
}

// GaugeFunc registers a gauge family computed at exposition time by fn —
// for instantaneous state owned elsewhere (store size, snapshot lag,
// uptime).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.registerFunc(name, help, kindGauge, fn)
}

func (r *Registry) registerFunc(name, help string, kind metricKind, fn func() float64) {
	if fn == nil {
		panic("obs: nil func metric")
	}
	if name == "" || !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.ents[name]; ok {
		panic(fmt.Sprintf("obs: func metric %q already registered", name))
	}
	r.ents[name] = &entry{name: name, help: help, kind: kind, fn: fn}
}

// CounterVec is a counter family over one label key.
type CounterVec struct {
	key      string
	mu       sync.RWMutex
	children map[string]*Counter
}

// CounterVec returns the named counter family over labelKey, creating it on
// first use.
func (r *Registry) CounterVec(name, help, labelKey string) *CounterVec {
	e := r.getOrCreate(name, help, kindCounter, labelKey, func() *entry {
		return &entry{cvec: &CounterVec{key: labelKey, children: map[string]*Counter{}}}
	})
	return e.cvec
}

// With returns the child counter for the given label value, creating it on
// first use.
func (v *CounterVec) With(value string) *Counter {
	v.mu.RLock()
	c, ok := v.children[value]
	v.mu.RUnlock()
	if ok {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.children[value]; ok {
		return c
	}
	c = &Counter{}
	v.children[value] = c
	return c
}

// Preset eagerly creates children for the given label values, so the
// exposition's series set is deterministic from process start instead of
// depending on which traffic arrived first. The format golden test relies
// on this.
func (v *CounterVec) Preset(values ...string) *CounterVec {
	for _, val := range values {
		v.With(val)
	}
	return v
}

// Values returns a label→count view of the family (for JSON facades).
func (v *CounterVec) Values() map[string]int64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make(map[string]int64, len(v.children))
	for k, c := range v.children {
		out[k] = c.Value()
	}
	return out
}

// GaugeVec is a gauge family over one label key — per-shard health and lag
// series are its reason to exist: the label value names the shard, the child
// gauge holds its latest probed state.
type GaugeVec struct {
	key      string
	mu       sync.RWMutex
	children map[string]*Gauge
}

// GaugeVec returns the named gauge family over labelKey, creating it on
// first use.
func (r *Registry) GaugeVec(name, help, labelKey string) *GaugeVec {
	e := r.getOrCreate(name, help, kindGauge, labelKey, func() *entry {
		return &entry{gvec: &GaugeVec{key: labelKey, children: map[string]*Gauge{}}}
	})
	return e.gvec
}

// With returns the child gauge for the given label value, creating it on
// first use.
func (v *GaugeVec) With(value string) *Gauge {
	v.mu.RLock()
	g, ok := v.children[value]
	v.mu.RUnlock()
	if ok {
		return g
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if g, ok := v.children[value]; ok {
		return g
	}
	g = &Gauge{}
	v.children[value] = g
	return g
}

// Preset eagerly creates children for the given label values (see
// CounterVec.Preset).
func (v *GaugeVec) Preset(values ...string) *GaugeVec {
	for _, val := range values {
		v.With(val)
	}
	return v
}

// Values returns a label→value view of the family (for JSON facades).
func (v *GaugeVec) Values() map[string]int64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make(map[string]int64, len(v.children))
	for k, g := range v.children {
		out[k] = g.Value()
	}
	return out
}

// HistogramVec is a histogram family over one label key; children share one
// bucket layout.
type HistogramVec struct {
	key      string
	bounds   []float64
	mu       sync.RWMutex
	children map[string]*Histogram
}

// HistogramVec returns the named histogram family over labelKey (nil bounds
// = DefaultLatencyBounds), creating it on first use.
func (r *Registry) HistogramVec(name, help, labelKey string, bounds []float64) *HistogramVec {
	e := r.getOrCreate(name, help, kindHistogram, labelKey, func() *entry {
		if bounds == nil {
			bounds = DefaultLatencyBounds
		}
		return &entry{hvec: &HistogramVec{key: labelKey, bounds: bounds, children: map[string]*Histogram{}}}
	})
	return e.hvec
}

// With returns the child histogram for the given label value, creating it
// on first use.
func (v *HistogramVec) With(value string) *Histogram {
	v.mu.RLock()
	h, ok := v.children[value]
	v.mu.RUnlock()
	if ok {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h, ok := v.children[value]; ok {
		return h
	}
	h = NewHistogram(v.bounds)
	v.children[value] = h
	return h
}

// Preset eagerly creates children for the given label values (see
// CounterVec.Preset).
func (v *HistogramVec) Preset(values ...string) *HistogramVec {
	for _, val := range values {
		v.With(val)
	}
	return v
}

// Snapshots returns a label→snapshot view of the family.
func (v *HistogramVec) Snapshots() map[string]HistSnapshot {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make(map[string]HistSnapshot, len(v.children))
	for k, h := range v.children {
		out[k] = h.Snapshot()
	}
	return out
}

// --- exposition ---------------------------------------------------------------

// WritePrometheus renders every family in Prometheus text exposition format
// (version 0.0.4): families sorted by name, children sorted by label value,
// histograms as cumulative _bucket/_sum/_count series. The output layout is
// pinned by a golden test — dashboards parse this; changing it is a
// breaking change and must show up in review as a golden diff.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	ents := make([]*entry, 0, len(r.ents))
	for _, e := range r.ents {
		ents = append(ents, e)
	}
	r.mu.Unlock()
	sort.Slice(ents, func(a, b int) bool { return ents[a].name < ents[b].name })

	var b strings.Builder
	for _, e := range ents {
		if e.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", e.name, escapeHelp(e.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", e.name, e.kind)
		switch {
		case e.fn != nil:
			fmt.Fprintf(&b, "%s %s\n", e.name, fmtVal(e.fn()))
		case e.counter != nil:
			fmt.Fprintf(&b, "%s %d\n", e.name, e.counter.Value())
		case e.gauge != nil:
			fmt.Fprintf(&b, "%s %d\n", e.name, e.gauge.Value())
		case e.hist != nil:
			writeHist(&b, e.name, "", "", e.hist.Snapshot())
		case e.cvec != nil:
			vals := e.cvec.Values()
			for _, lv := range sortedKeys(vals) {
				fmt.Fprintf(&b, "%s{%s=%q} %d\n", e.name, e.labelKey, lv, vals[lv])
			}
		case e.gvec != nil:
			vals := e.gvec.Values()
			for _, lv := range sortedKeys(vals) {
				fmt.Fprintf(&b, "%s{%s=%q} %d\n", e.name, e.labelKey, lv, vals[lv])
			}
		case e.hvec != nil:
			snaps := e.hvec.Snapshots()
			for _, lv := range sortedKeys(snaps) {
				writeHist(&b, e.name, e.labelKey, lv, snaps[lv])
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeHist(b *strings.Builder, name, labelKey, labelVal string, s HistSnapshot) {
	prefix := func(le string) string {
		if labelKey == "" {
			return fmt.Sprintf(`{le=%q}`, le)
		}
		return fmt.Sprintf(`{%s=%q,le=%q}`, labelKey, labelVal, le)
	}
	suffix := ""
	if labelKey != "" {
		suffix = fmt.Sprintf(`{%s=%q}`, labelKey, labelVal)
	}
	var cum uint64
	for i, bound := range s.Bounds {
		cum += s.Counts[i]
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, prefix(fmtVal(bound)), cum)
	}
	cum += s.Counts[len(s.Bounds)]
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, prefix("+Inf"), cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, suffix, fmtVal(s.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", name, suffix, s.Count)
}

func fmtVal(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func validName(s string) bool {
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Uptime returns a GaugeFunc-ready closure reporting seconds since start.
func Uptime(start time.Time) func() float64 {
	return func() float64 { return time.Since(start).Seconds() }
}

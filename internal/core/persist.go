package core

import (
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"os"
)

// Model persistence: the paper's deployment trains on a server in ~2 hours
// and then ranks every line in minutes each Saturday — which requires the
// trained pipeline to outlive the training process. SavePredictor/
// LoadPredictor serialise the full TicketPredictor (selected schema,
// product pairs, quantizer cuts, stump ensemble, calibration) as gzipped
// gob.

// Save writes the trained predictor to path.
func (p *TicketPredictor) Save(path string) error {
	if p.Model == nil || p.Quant == nil {
		return fmt.Errorf("core: cannot save an untrained predictor")
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: save: %w", err)
	}
	defer f.Close()
	zw := gzip.NewWriter(f)
	if err := gob.NewEncoder(zw).Encode(p); err != nil {
		return fmt.Errorf("core: encode predictor: %w", err)
	}
	if err := zw.Close(); err != nil {
		return fmt.Errorf("core: flush: %w", err)
	}
	return f.Close()
}

// LoadPredictor reads a predictor written by Save and sanity-checks it.
func LoadPredictor(path string) (*TicketPredictor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: load: %w", err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		return nil, fmt.Errorf("core: gzip: %w", err)
	}
	defer zr.Close()
	var p TicketPredictor
	if err := gob.NewDecoder(zr).Decode(&p); err != nil {
		return nil, fmt.Errorf("core: decode predictor: %w", err)
	}
	if p.Model == nil || len(p.Model.Stumps) == 0 {
		return nil, fmt.Errorf("core: loaded predictor has no model")
	}
	if p.Quant == nil || len(p.Quant.Cuts) == 0 {
		return nil, fmt.Errorf("core: loaded predictor has no quantizer")
	}
	if len(p.SelectedCols)+len(p.ProductPairs) != len(p.Quant.Cuts) {
		return nil, fmt.Errorf("core: loaded predictor schema mismatch: %d+%d columns vs %d cuts",
			len(p.SelectedCols), len(p.ProductPairs), len(p.Quant.Cuts))
	}
	return &p, nil
}

package core

import (
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"os"

	"nevermind/internal/faults"
	"nevermind/internal/ml"
)

// Model persistence: the paper's deployment trains on a server in ~2 hours
// and then ranks every line in minutes each Saturday — which requires the
// trained pipeline to outlive the training process. SavePredictor/
// LoadPredictor serialise the full TicketPredictor (selected schema,
// product pairs, quantizer cuts, stump ensemble, calibration) as gzipped
// gob.

// Save writes the trained predictor to path.
func (p *TicketPredictor) Save(path string) error {
	if p.Model == nil || p.Quant == nil {
		return fmt.Errorf("core: cannot save an untrained predictor")
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: save: %w", err)
	}
	defer f.Close()
	zw := gzip.NewWriter(f)
	if err := gob.NewEncoder(zw).Encode(p); err != nil {
		return fmt.Errorf("core: encode predictor: %w", err)
	}
	if err := zw.Close(); err != nil {
		return fmt.Errorf("core: flush: %w", err)
	}
	return f.Close()
}

// LoadPredictor reads a predictor written by Save and sanity-checks it.
func LoadPredictor(path string) (*TicketPredictor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: load: %w", err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		return nil, fmt.Errorf("core: gzip: %w", err)
	}
	defer zr.Close()
	var p TicketPredictor
	if err := gob.NewDecoder(zr).Decode(&p); err != nil {
		return nil, fmt.Errorf("core: decode predictor: %w", err)
	}
	if p.Model == nil || len(p.Model.Stumps) == 0 {
		return nil, fmt.Errorf("core: loaded predictor has no model")
	}
	if p.Quant == nil || len(p.Quant.Cuts) == 0 {
		return nil, fmt.Errorf("core: loaded predictor has no quantizer")
	}
	if len(p.SelectedCols)+len(p.ProductPairs) != len(p.Quant.Cuts) {
		return nil, fmt.Errorf("core: loaded predictor schema mismatch: %d+%d columns vs %d cuts",
			len(p.SelectedCols), len(p.ProductPairs), len(p.Quant.Cuts))
	}
	return &p, nil
}

// locatorDisk mirrors TroubleLocator with exported fields so gob can reach
// the per-disposition models. The in-memory struct keeps them unexported
// (they are implementation detail to every caller but persistence), so the
// mirror is converted to and from explicitly.
type locatorDisk struct {
	Cfg          LocatorConfig
	Dispositions []faults.DispositionID
	Priors       map[faults.DispositionID]float64
	Flat         map[faults.DispositionID]*ml.BStump
	LocModel     map[faults.Location]*ml.BStump
	Combiner     map[faults.DispositionID]*ml.LogisticFit
	Quant        *ml.Quantizer
	ColNames     []string
}

// Save writes the trained locator to path as gzipped gob — the locator half
// of the model lifecycle: the daemon loads both models at startup and
// hot-reloads them without retraining.
func (l *TroubleLocator) Save(path string) error {
	if len(l.flat) == 0 || l.quant == nil {
		return fmt.Errorf("core: cannot save an untrained locator")
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: save locator: %w", err)
	}
	defer f.Close()
	zw := gzip.NewWriter(f)
	disk := locatorDisk{
		Cfg: l.Cfg, Dispositions: l.Dispositions, Priors: l.Priors,
		Flat: l.flat, LocModel: l.locModel, Combiner: l.combiner,
		Quant: l.quant, ColNames: l.colNames,
	}
	if err := gob.NewEncoder(zw).Encode(&disk); err != nil {
		return fmt.Errorf("core: encode locator: %w", err)
	}
	if err := zw.Close(); err != nil {
		return fmt.Errorf("core: flush locator: %w", err)
	}
	return f.Close()
}

// LoadLocator reads a locator written by Save and sanity-checks it.
func LoadLocator(path string) (*TroubleLocator, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: load locator: %w", err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		return nil, fmt.Errorf("core: gzip locator: %w", err)
	}
	defer zr.Close()
	var disk locatorDisk
	if err := gob.NewDecoder(zr).Decode(&disk); err != nil {
		return nil, fmt.Errorf("core: decode locator: %w", err)
	}
	if len(disk.Dispositions) < 2 || len(disk.Flat) != len(disk.Dispositions) {
		return nil, fmt.Errorf("core: loaded locator has %d dispositions and %d flat models",
			len(disk.Dispositions), len(disk.Flat))
	}
	if disk.Quant == nil || len(disk.Quant.Cuts) != len(disk.ColNames) {
		return nil, fmt.Errorf("core: loaded locator quantizer does not match its %d columns", len(disk.ColNames))
	}
	for _, d := range disk.Dispositions {
		if disk.Flat[d] == nil || len(disk.Flat[d].Stumps) == 0 {
			return nil, fmt.Errorf("core: loaded locator missing model for disposition %d", d)
		}
	}
	return &TroubleLocator{
		Cfg: disk.Cfg, Dispositions: disk.Dispositions, Priors: disk.Priors,
		flat: disk.Flat, locModel: disk.LocModel, combiner: disk.Combiner,
		quant: disk.Quant, colNames: disk.ColNames,
	}, nil
}

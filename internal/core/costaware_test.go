package core

import (
	"math"
	"testing"
	"testing/quick"

	"nevermind/internal/faults"
	"nevermind/internal/rng"
)

func TestDefaultCostModelValid(t *testing.T) {
	cm := DefaultCostModel()
	if err := cm.Validate(); err != nil {
		t.Fatal(err)
	}
	// F1 plant work must cost more than a home-network swap test.
	hn := faults.ByLocation(faults.HN)[0]
	f1 := faults.ByLocation(faults.F1)[0]
	if cm.TestMinutes[f1] <= cm.TestMinutes[hn] {
		t.Fatal("outside-plant tests should cost more than home swaps")
	}
	// Travel is symmetric.
	for a := range cm.TravelMinutes {
		for b := range cm.TravelMinutes[a] {
			if cm.TravelMinutes[a][b] != cm.TravelMinutes[b][a] {
				t.Fatalf("asymmetric travel %v↔%v", a, b)
			}
		}
	}
}

func TestValidateCatchesBadModels(t *testing.T) {
	cm := DefaultCostModel()
	cm.TestMinutes = cm.TestMinutes[:3]
	if cm.Validate() == nil {
		t.Fatal("short test-time table accepted")
	}
	cm = DefaultCostModel()
	cm.TestMinutes[0] = 0
	if cm.Validate() == nil {
		t.Fatal("zero test time accepted")
	}
	cm = DefaultCostModel()
	cm.TravelMinutes[0][0] = 5
	if cm.Validate() == nil {
		t.Fatal("self travel accepted")
	}
}

func TestOrderByPosterior(t *testing.T) {
	disps := []faults.DispositionID{3, 1, 2}
	post := []float64{0.2, 0.5, 0.3}
	order := OrderByPosterior(disps, post)
	if order[0] != 1 || order[1] != 2 || order[2] != 0 {
		t.Fatalf("order = %v", order)
	}
}

// Without travel and with uniform costs, the greedy ratio rule must agree
// with plain posterior ordering.
func TestOrderReducesToPosteriorWithUniformCosts(t *testing.T) {
	cm := CostModel{TestMinutes: make([]float64, faults.NumDispositions)}
	for i := range cm.TestMinutes {
		cm.TestMinutes[i] = 10
	}
	disps := []faults.DispositionID{0, 20, 45} // HN, F2/F1, DS mix
	post := []float64{0.2, 0.5, 0.3}
	order, err := cm.Order(disps, post, faults.HN)
	if err != nil {
		t.Fatal(err)
	}
	want := OrderByPosterior(disps, post)
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("uniform-cost order %v != posterior order %v", order, want)
		}
	}
}

// The exchange-argument guarantee: with independent costs (no travel), the
// ratio order's expected time is no worse than the posterior order's.
func TestRatioOrderBeatsPosteriorOrder(t *testing.T) {
	cm := DefaultCostModel()
	// Remove travel so the greedy rule is provably optimal.
	var noTravel CostModel
	noTravel.TestMinutes = cm.TestMinutes
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n := 8
		disps := make([]faults.DispositionID, n)
		post := make([]float64, n)
		for i := range disps {
			disps[i] = faults.DispositionID(r.Intn(faults.NumDispositions))
			post[i] = r.Float64() + 0.01
		}
		ratio, err := noTravel.Order(disps, post, faults.HN)
		if err != nil {
			return false
		}
		byP := OrderByPosterior(disps, post)
		eRatio, err1 := noTravel.ExpectedMinutes(disps, post, ratio, faults.HN)
		eByP, err2 := noTravel.ExpectedMinutes(disps, post, byP, faults.HN)
		if err1 != nil || err2 != nil {
			return false
		}
		return eRatio <= eByP+1e-9
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExpectedMinutesKnownCase(t *testing.T) {
	var cm CostModel
	cm.TestMinutes = make([]float64, faults.NumDispositions)
	for i := range cm.TestMinutes {
		cm.TestMinutes[i] = 10
	}
	disps := []faults.DispositionID{0, 1}
	post := []float64{0.5, 0.5}
	// Order [0,1]: E = 0.5*10 + 0.5*20 = 15.
	e, err := cm.ExpectedMinutes(disps, post, []int{0, 1}, faults.HN)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e-15) > 1e-12 {
		t.Fatalf("expected minutes %v, want 15", e)
	}
}

func TestExpectedMinutesIncludesTravel(t *testing.T) {
	cm := DefaultCostModel()
	hn := faults.ByLocation(faults.HN)[0]
	ds := faults.ByLocation(faults.DS)[0]
	disps := []faults.DispositionID{ds, hn}
	post := []float64{1, 0}
	// Testing the DS disposition first requires HN→DS travel (30) + test (15).
	e, err := cm.ExpectedMinutes(disps, post, []int{0, 1}, faults.HN)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e-45) > 1e-12 {
		t.Fatalf("expected minutes %v, want 45 (travel 30 + test 15)", e)
	}
}

func TestTravelAwareGreedyPrefersNearbyFirst(t *testing.T) {
	cm := DefaultCostModel()
	hn := faults.ByLocation(faults.HN)[0]
	ds := faults.ByLocation(faults.DS)[0]
	disps := []faults.DispositionID{ds, hn}
	// The DS disposition is slightly more likely, but reaching the central
	// office costs 30 minutes of travel; the greedy rule tests the
	// at-premises suspect first.
	post := []float64{0.55, 0.45}
	order, err := cm.Order(disps, post, faults.HN)
	if err != nil {
		t.Fatal(err)
	}
	if disps[order[0]] != hn {
		t.Fatalf("greedy should test the HN suspect first; order %v", order)
	}
}

func TestExpectedMinutesValidation(t *testing.T) {
	cm := DefaultCostModel()
	disps := []faults.DispositionID{0}
	if _, err := cm.ExpectedMinutes(disps, []float64{-1}, []int{0}, faults.HN); err == nil {
		t.Fatal("negative posterior accepted")
	}
	if _, err := cm.ExpectedMinutes(disps, []float64{0}, []int{0}, faults.HN); err == nil {
		t.Fatal("zero posterior mass accepted")
	}
	if _, err := cm.ExpectedMinutes(disps, []float64{1}, []int{0, 0}, faults.HN); err == nil {
		t.Fatal("mismatched order accepted")
	}
}

// End-to-end: cost-aware ordering should cut the expected minutes of real
// dispatches relative to pure posterior ordering.
func TestCostAwareSavesMinutesOnRealPosteriors(t *testing.T) {
	res, loc, test := locatorFixture(t)
	if len(test) > 120 {
		test = test[:120]
	}
	post, err := loc.Posteriors(res.Dataset, test, ModelCombined)
	if err != nil {
		t.Fatal(err)
	}
	cm := DefaultCostModel()
	var sumP, sumC float64
	for i := range test {
		byP := OrderByPosterior(loc.Dispositions, post[i])
		eP, err := cm.ExpectedMinutes(loc.Dispositions, post[i], byP, faults.HN)
		if err != nil {
			t.Fatal(err)
		}
		aware, err := cm.Order(loc.Dispositions, post[i], faults.HN)
		if err != nil {
			t.Fatal(err)
		}
		eC, err := cm.ExpectedMinutes(loc.Dispositions, post[i], aware, faults.HN)
		if err != nil {
			t.Fatal(err)
		}
		sumP += eP
		sumC += eC
	}
	if sumC >= sumP {
		t.Fatalf("cost-aware ordering saves nothing: %.1f vs %.1f minutes", sumC, sumP)
	}
}

package core

import (
	"fmt"
	"sort"

	"nevermind/internal/faults"
)

// Cost-aware test ordering — the second and third improvements §6.1 lists
// but defers ("the time/cost for testing a location, and the time/cost for
// moving from one location to another are not available and considered as
// constants"). Given per-disposition test times and per-location travel
// times, the locator's posterior can be turned into the ordering that
// minimises the technician's expected time to find the fault, rather than
// just the expected number of tests.
//
// With independent per-test costs, sorting by probability/cost is optimal
// (the classic exchange argument: swapping adjacent tests i,j changes the
// expected time by p_j·c_i − p_i·c_j). Travel makes the problem sequence-
// dependent, so Order adds it greedily: the next test is the one maximising
// posterior / (test time + travel time from the technician's current
// location).

// CostModel prices the technician's actions in minutes.
type CostModel struct {
	// TestMinutes is the time to test and rule out one disposition.
	TestMinutes []float64 // indexed by faults.DispositionID
	// TravelMinutes is the time to move between major locations; indexed
	// [from][to]. The diagonal is zero.
	TravelMinutes [faults.NumLocations][faults.NumLocations]float64
}

// DefaultCostModel reflects field reality: home-network checks are quick
// swap tests, outside-plant work needs ladders and splice cases, DSLAM work
// happens at the central office across town.
func DefaultCostModel() CostModel {
	cm := CostModel{TestMinutes: make([]float64, faults.NumDispositions)}
	perLoc := map[faults.Location]float64{
		faults.HN: 8,  // swap the modem, bypass the filter...
		faults.F2: 18, // drop, protector, DEMARC
		faults.F1: 25, // crossbox, cable pairs, splice cases
		faults.DS: 15, // card reseat, port checks
	}
	for i := range faults.Catalog {
		cm.TestMinutes[i] = perLoc[faults.Catalog[i].Loc]
	}
	travel := map[[2]faults.Location]float64{
		{faults.HN, faults.F2}: 5, {faults.HN, faults.F1}: 15, {faults.HN, faults.DS}: 30,
		{faults.F2, faults.F1}: 12, {faults.F2, faults.DS}: 28, {faults.F1, faults.DS}: 20,
	}
	for a := faults.HN; a < faults.NumLocations; a++ {
		for b := faults.HN; b < faults.NumLocations; b++ {
			if a == b {
				continue
			}
			key := [2]faults.Location{a, b}
			if a > b {
				key = [2]faults.Location{b, a}
			}
			cm.TravelMinutes[a][b] = travel[key]
		}
	}
	return cm
}

// Validate checks the model covers the catalog with positive times.
func (cm *CostModel) Validate() error {
	if len(cm.TestMinutes) != faults.NumDispositions {
		return fmt.Errorf("core: cost model covers %d of %d dispositions", len(cm.TestMinutes), faults.NumDispositions)
	}
	for i, m := range cm.TestMinutes {
		if m <= 0 {
			return fmt.Errorf("core: non-positive test time for %q", faults.Catalog[i].Name)
		}
	}
	for a := range cm.TravelMinutes {
		for b := range cm.TravelMinutes[a] {
			if cm.TravelMinutes[a][b] < 0 {
				return fmt.Errorf("core: negative travel time %v→%v", a, b)
			}
			if a == b && cm.TravelMinutes[a][b] != 0 {
				return fmt.Errorf("core: non-zero self travel at %v", faults.Location(a))
			}
		}
	}
	return nil
}

// Order returns the test sequence (indices into disps) that the greedy
// ratio rule produces: start at startLoc (dispatches start at the customer
// premises, HN), repeatedly pick the untested disposition maximising
// posterior / (test + travel minutes).
func (cm *CostModel) Order(disps []faults.DispositionID, post []float64, startLoc faults.Location) ([]int, error) {
	if err := cm.Validate(); err != nil {
		return nil, err
	}
	if len(disps) != len(post) {
		return nil, fmt.Errorf("core: %d dispositions with %d posteriors", len(disps), len(post))
	}
	n := len(disps)
	order := make([]int, 0, n)
	used := make([]bool, n)
	cur := startLoc
	for len(order) < n {
		best, bestRatio := -1, -1.0
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			d := disps[i]
			cost := cm.TestMinutes[d] + cm.TravelMinutes[cur][faults.Catalog[d].Loc]
			ratio := post[i] / cost
			if ratio > bestRatio || (ratio == bestRatio && best >= 0 && disps[i] < disps[best]) {
				best, bestRatio = i, ratio
			}
		}
		used[best] = true
		order = append(order, best)
		cur = faults.Catalog[disps[best]].Loc
	}
	return order, nil
}

// OrderByPosterior is the §6.2 baseline: descending posterior, ignoring
// costs (ties broken by disposition ID for determinism).
func OrderByPosterior(disps []faults.DispositionID, post []float64) []int {
	idx := make([]int, len(disps))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if post[idx[a]] != post[idx[b]] {
			return post[idx[a]] > post[idx[b]]
		}
		return disps[idx[a]] < disps[idx[b]]
	})
	return idx
}

// ExpectedMinutes returns the expected time until the fault is found when
// following the order: Σ_k P(truth = order_k) · (time through test k). The
// posterior is normalised internally; any residual mass (dispositions not
// modelled) is charged the full sweep.
func (cm *CostModel) ExpectedMinutes(disps []faults.DispositionID, post []float64, order []int, startLoc faults.Location) (float64, error) {
	if err := cm.Validate(); err != nil {
		return 0, err
	}
	if len(order) != len(disps) || len(post) != len(disps) {
		return 0, fmt.Errorf("core: mismatched order/posterior lengths")
	}
	total := 0.0
	for _, p := range post {
		if p < 0 {
			return 0, fmt.Errorf("core: negative posterior")
		}
		total += p
	}
	if total == 0 {
		return 0, fmt.Errorf("core: zero posterior mass")
	}
	cur := startLoc
	elapsed := 0.0
	expected := 0.0
	for _, i := range order {
		d := disps[i]
		elapsed += cm.TestMinutes[d] + cm.TravelMinutes[cur][faults.Catalog[d].Loc]
		cur = faults.Catalog[d].Loc
		expected += (post[i] / total) * elapsed
	}
	return expected, nil
}

package core

import (
	"os"
	"path/filepath"
	"testing"
)

func TestPredictorSaveLoadRoundTrip(t *testing.T) {
	res, pred := fixture(t)
	path := filepath.Join(t.TempDir(), "predictor.gob.gz")
	if err := pred.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPredictor(path)
	if err != nil {
		t.Fatal(err)
	}
	// The loaded pipeline must rank identically to the original.
	a, err := pred.Rank(res.Dataset, 43)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.Rank(res.Dataset, 43)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("ranking lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("ranking differs at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestSaveRejectsUntrained(t *testing.T) {
	p := &TicketPredictor{}
	if err := p.Save(filepath.Join(t.TempDir(), "x")); err == nil {
		t.Fatal("untrained predictor saved")
	}
}

func TestLoadPredictorErrors(t *testing.T) {
	if _, err := LoadPredictor(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Fatal("missing file accepted")
	}
	// A corrupt file must not load.
	path := filepath.Join(t.TempDir(), "junk")
	if err := os.WriteFile(path, []byte("not a gzip stream"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPredictor(path); err == nil {
		t.Fatal("corrupt file accepted")
	}
}

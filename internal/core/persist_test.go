package core

import (
	"os"
	"path/filepath"
	"testing"
)

func TestPredictorSaveLoadRoundTrip(t *testing.T) {
	res, pred := fixture(t)
	path := filepath.Join(t.TempDir(), "predictor.gob.gz")
	if err := pred.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPredictor(path)
	if err != nil {
		t.Fatal(err)
	}
	// The loaded pipeline must rank identically to the original.
	a, err := pred.Rank(res.Dataset, 43)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.Rank(res.Dataset, 43)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("ranking lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("ranking differs at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestLocatorSaveLoadRoundTrip(t *testing.T) {
	res, loc, test := locatorFixture(t)
	ds := res.Dataset
	path := filepath.Join(t.TempDir(), "locator.gob.gz")
	if err := loc.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadLocator(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Dispositions) != len(loc.Dispositions) {
		t.Fatalf("loaded %d dispositions, want %d", len(loaded.Dispositions), len(loc.Dispositions))
	}
	for i := range loc.Dispositions {
		if loaded.Dispositions[i] != loc.Dispositions[i] {
			t.Fatalf("disposition %d differs", i)
		}
	}
	if len(test) > 40 {
		test = test[:40]
	}
	// The loaded locator must produce bit-identical posteriors under every
	// inference model.
	for _, model := range []LocatorModel{ModelBasic, ModelFlat, ModelCombined} {
		a, err := loc.Posteriors(ds, test, model)
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.Posteriors(ds, test, model)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			for j := range a[i] {
				if a[i][j] != b[i][j] {
					t.Fatalf("%v posterior differs at case %d disposition %d: %v vs %v",
						model, i, j, a[i][j], b[i][j])
				}
			}
		}
	}
}

func TestLocatorSaveRejectsUntrained(t *testing.T) {
	l := &TroubleLocator{}
	if err := l.Save(filepath.Join(t.TempDir(), "x")); err == nil {
		t.Fatal("untrained locator saved")
	}
}

func TestLoadLocatorErrors(t *testing.T) {
	if _, err := LoadLocator(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Fatal("missing file accepted")
	}
	path := filepath.Join(t.TempDir(), "junk")
	if err := os.WriteFile(path, []byte("not a gzip stream"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadLocator(path); err == nil {
		t.Fatal("corrupt file accepted")
	}
}

func TestSaveRejectsUntrained(t *testing.T) {
	p := &TicketPredictor{}
	if err := p.Save(filepath.Join(t.TempDir(), "x")); err == nil {
		t.Fatal("untrained predictor saved")
	}
}

func TestLoadPredictorErrors(t *testing.T) {
	if _, err := LoadPredictor(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Fatal("missing file accepted")
	}
	// A corrupt file must not load.
	path := filepath.Join(t.TempDir(), "junk")
	if err := os.WriteFile(path, []byte("not a gzip stream"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPredictor(path); err == nil {
		t.Fatal("corrupt file accepted")
	}
}

package core

import (
	"fmt"
	"sort"
	"strings"

	"nevermind/internal/data"
	"nevermind/internal/faults"
	"nevermind/internal/features"
	"nevermind/internal/ml"
	"nevermind/internal/parallel"
)

// LocatorModel selects which inference model ranks the dispositions.
type LocatorModel int

const (
	// ModelBasic is the simple experience model of §6.1: locations ordered
	// by their historical prior probability of being the cause.
	ModelBasic LocatorModel = iota
	// ModelFlat trains a one-versus-rest classifier per disposition and
	// ranks by calibrated posterior (§6.2).
	ModelFlat
	// ModelCombined fuses each disposition classifier with its parent
	// major-location classifier through logistic regression — Eq. 2.
	ModelCombined
)

// ParseLocatorModel maps the wire names ("basic", "flat", "combined") back
// to a LocatorModel; the empty string defaults to the combined model the
// paper deploys.
func ParseLocatorModel(s string) (LocatorModel, error) {
	switch s {
	case "basic":
		return ModelBasic, nil
	case "flat":
		return ModelFlat, nil
	case "combined", "":
		return ModelCombined, nil
	}
	return 0, fmt.Errorf("core: unknown locator model %q", s)
}

func (m LocatorModel) String() string {
	switch m {
	case ModelBasic:
		return "basic"
	case ModelFlat:
		return "flat"
	case ModelCombined:
		return "combined"
	default:
		return fmt.Sprintf("LocatorModel(%d)", int(m))
	}
}

// LocatorConfig tunes trouble-locator training.
type LocatorConfig struct {
	// Rounds is the boosting budget per classifier (paper: 200 by
	// cross-validation).
	Rounds int
	// MinCases drops dispositions with fewer training dispatches (paper:
	// the 52 dispositions appearing more than 20 times).
	MinCases int
	// Bins, HistoryWeeks, Seed as in the predictor.
	Bins         int
	HistoryWeeks int
	Seed         uint64
	// Workers sizes the worker pool for per-disposition classifier training
	// (0 = runtime.GOMAXPROCS, 1 = sequential). Each disposition's model
	// trains independently on one worker, so the locator is bit-identical
	// at any setting.
	Workers int
}

// DefaultLocatorConfig returns the evaluation defaults.
func DefaultLocatorConfig(seed uint64) LocatorConfig {
	return LocatorConfig{Rounds: 80, MinCases: 20, Bins: 64, HistoryWeeks: 26, Seed: seed}
}

// DispatchCase is one labelled dispatch: the line, the measurement week
// whose Saturday precedes the ticket, and the technician's disposition.
type DispatchCase struct {
	Line data.LineID
	Week int
	Disp faults.DispositionID
}

// TroubleLocator ranks candidate dispositions for a dispatch.
type TroubleLocator struct {
	Cfg LocatorConfig

	// Dispositions kept after the MinCases filter, ascending by ID.
	Dispositions []faults.DispositionID
	// Priors is the empirical frequency of each kept disposition — the
	// basic experience model.
	Priors map[faults.DispositionID]float64

	flat     map[faults.DispositionID]*ml.BStump
	locModel map[faults.Location]*ml.BStump
	combiner map[faults.DispositionID]*ml.LogisticFit
	quant    *ml.Quantizer
	colNames []string

	// cache, when set, memoizes case encodes and quantized matrices across
	// experiments (see features.Cache); unexported so gob skips it.
	cache *features.Cache
}

// SetEncodeCache attaches (or with nil detaches) a cross-experiment
// encode/bin cache.
func (l *TroubleLocator) SetEncodeCache(c *features.Cache) { l.cache = c }

// CasesFromNotes joins disposition notes with their tickets and produces the
// dispatch training/evaluation cases whose ticket day falls in [loDay,
// hiDay]. The feature week is the most recent Saturday at or before the
// ticket, i.e. the line's state while the problem was live.
func CasesFromNotes(ds *data.Dataset, loDay, hiDay int) []DispatchCase {
	dayOf := make(map[int]int, len(ds.Tickets))
	for _, t := range ds.Tickets {
		dayOf[t.ID] = t.Day
	}
	var out []DispatchCase
	for _, n := range ds.Notes {
		tday, ok := dayOf[n.TicketID]
		if !ok || tday < loDay || tday > hiDay {
			continue
		}
		week, ok := data.WeekOf(tday)
		if !ok {
			continue
		}
		out = append(out, DispatchCase{Line: n.Line, Week: week, Disp: faults.DispositionID(n.Disposition)})
	}
	return out
}

// TrainLocator learns the flat and combined models from dispatch cases.
func TrainLocator(ds *data.Dataset, cases []DispatchCase, cfg LocatorConfig) (*TroubleLocator, error) {
	return TrainLocatorCached(ds, cases, cfg, nil)
}

// TrainLocatorCached is TrainLocator threading an optional encode/bin cache
// through the case encode; the trained locator keeps the cache for its
// subsequent Posteriors calls. A nil cache is TrainLocator exactly.
func TrainLocatorCached(ds *data.Dataset, cases []DispatchCase, cfg LocatorConfig, cache *features.Cache) (*TroubleLocator, error) {
	if cfg.Rounds <= 0 || cfg.Bins < 2 || cfg.MinCases < 1 {
		return nil, fmt.Errorf("core: malformed locator config %+v", cfg)
	}
	if len(cases) < 2*cfg.MinCases {
		return nil, fmt.Errorf("core: only %d dispatch cases to train on", len(cases))
	}

	counts := map[faults.DispositionID]int{}
	for _, c := range cases {
		counts[c.Disp]++
	}
	l := &TroubleLocator{
		Cfg:      cfg,
		Priors:   map[faults.DispositionID]float64{},
		flat:     map[faults.DispositionID]*ml.BStump{},
		locModel: map[faults.Location]*ml.BStump{},
		combiner: map[faults.DispositionID]*ml.LogisticFit{},
		cache:    cache,
	}
	total := 0
	for d, n := range counts {
		if n >= cfg.MinCases {
			l.Dispositions = append(l.Dispositions, d)
			total += n
		}
	}
	if len(l.Dispositions) < 2 {
		return nil, fmt.Errorf("core: fewer than 2 dispositions reach MinCases=%d", cfg.MinCases)
	}
	sort.Slice(l.Dispositions, func(i, j int) bool { return l.Dispositions[i] < l.Dispositions[j] })
	for _, d := range l.Dispositions {
		l.Priors[d] = float64(counts[d]) / float64(total)
	}

	// Encode the dispatch cases once.
	enc, err := encodeCases(ds, cases, cfg.HistoryWeeks, cache)
	if err != nil {
		return nil, err
	}
	q, err := ml.FitQuantizer(enc.Cols, cfg.Bins)
	if err != nil {
		return nil, err
	}
	bm, err := q.Transform(enc.Cols)
	if err != nil {
		return nil, err
	}
	l.quant = q
	for _, c := range enc.Cols {
		l.colNames = append(l.colNames, c.Name)
	}

	// One-versus-rest flat model per disposition (fCij) and per major
	// location (fCi·). The dispositions are independent one-vs-rest
	// problems, so each trains on its own worker (the inner stump search
	// stays sequential — the disposition axis carries the parallelism);
	// results land in index-addressed slices and merge in disposition order,
	// so the locator is identical at any worker count.
	flatModels := make([]*ml.BStump, len(l.Dispositions))
	flatErrs := make([]error, len(l.Dispositions))
	parallel.ForEach(len(l.Dispositions), cfg.Workers, func(di int) {
		d := l.Dispositions[di]
		y := make([]bool, len(cases))
		for i, c := range cases {
			y[i] = c.Disp == d
		}
		m, err := ml.TrainBStump(bm, q, y, ml.TrainOptions{Rounds: cfg.Rounds, Workers: 1})
		if err != nil {
			flatErrs[di] = fmt.Errorf("core: flat model for %q: %w", faults.Catalog[d].Name, err)
			return
		}
		if err := m.Calibrate(m.ScoreAllWorkers(bm, 1), y); err != nil {
			flatErrs[di] = err
			return
		}
		flatModels[di] = m
	})
	for _, err := range flatErrs {
		if err != nil {
			return nil, err
		}
	}
	for di, d := range l.Dispositions {
		l.flat[d] = flatModels[di]
	}
	locModels := make([]*ml.BStump, faults.NumLocations)
	locErrs := make([]error, faults.NumLocations)
	parallel.ForEach(int(faults.NumLocations), cfg.Workers, func(li int) {
		loc := faults.Location(li)
		y := make([]bool, len(cases))
		any := false
		for i, c := range cases {
			y[i] = faults.Catalog[c.Disp].Loc == loc
			any = any || y[i]
		}
		if !any {
			return
		}
		m, err := ml.TrainBStump(bm, q, y, ml.TrainOptions{Rounds: cfg.Rounds, Workers: 1})
		if err != nil {
			locErrs[li] = fmt.Errorf("core: location model for %v: %w", loc, err)
			return
		}
		locModels[li] = m
	})
	for _, err := range locErrs {
		if err != nil {
			return nil, err
		}
	}
	for li, m := range locModels {
		if m != nil {
			l.locModel[faults.Location(li)] = m
		}
	}

	// Combined model (Eq. 2): per disposition, logistic regression over
	// [fCij(x), fCi·(x)].
	for _, d := range l.Dispositions {
		locM := l.locModel[faults.Catalog[d].Loc]
		if locM == nil {
			continue
		}
		sd := l.flat[d].ScoreAll(bm)
		sl := locM.ScoreAll(bm)
		x := make([][]float64, len(cases))
		y := make([]bool, len(cases))
		for i := range cases {
			x[i] = []float64{sd[i], sl[i]}
			y[i] = cases[i].Disp == d
		}
		fit, err := ml.LogisticRegression(x, y, 40)
		if err != nil {
			return nil, fmt.Errorf("core: combiner for %q: %w", faults.Catalog[d].Name, err)
		}
		l.combiner[d] = fit
	}
	return l, nil
}

// encodeCases builds the full Table 3 feature set (no products; §6.3 uses
// all line features) for dispatch cases, memoized when a cache is given.
func encodeCases(ds *data.Dataset, cases []DispatchCase, historyWeeks int, cache *features.Cache) (*features.Encoded, error) {
	ex := make([]features.Example, len(cases))
	for i, c := range cases {
		ex[i] = features.Example{Line: c.Line, Week: c.Week}
	}
	ix := data.NewTicketIndex(ds)
	return features.EncodeCached(cache, ds, ix, ex, features.Config{HistoryWeeks: historyWeeks, Quadratic: true})
}

// casesMatrix returns the quantized design matrix for dispatch cases,
// memoized (keyed by the dataset generation, the cases, and the quantizer's
// content fingerprint) when a cache is attached.
func (l *TroubleLocator) casesMatrix(ds *data.Dataset, cases []DispatchCase) (*ml.BinnedMatrix, error) {
	var bmKey string
	if l.cache != nil {
		ex := make([]features.Example, len(cases))
		for i, c := range cases {
			ex[i] = features.Example{Line: c.Line, Week: c.Week}
		}
		bmKey = fmt.Sprintf("bin|loc|g%d|%016x|h%d|q%016x",
			ds.Generation, features.ExamplesKey(ex), l.Cfg.HistoryWeeks, l.quant.Fingerprint())
		if bm, ok := l.cache.GetBinned(bmKey); ok {
			return bm, nil
		}
	}
	enc, err := encodeCases(ds, cases, l.Cfg.HistoryWeeks, l.cache)
	if err != nil {
		return nil, err
	}
	if len(enc.Cols) != len(l.colNames) {
		return nil, fmt.Errorf("core: locator schema drift: %d cols vs %d", len(enc.Cols), len(l.colNames))
	}
	bm, err := l.quant.Transform(enc.Cols)
	if err != nil {
		return nil, err
	}
	if l.cache != nil {
		l.cache.PutBinned(bmKey, bm)
	}
	return bm, nil
}

// Posteriors returns, for each case, the per-disposition score under the
// chosen model, aligned with l.Dispositions. Basic ignores the line state
// entirely and returns the priors.
func (l *TroubleLocator) Posteriors(ds *data.Dataset, cases []DispatchCase, model LocatorModel) ([][]float64, error) {
	nd := len(l.Dispositions)
	out := make([][]float64, len(cases))
	if model == ModelBasic {
		row := make([]float64, nd)
		for j, d := range l.Dispositions {
			row[j] = l.Priors[d]
		}
		for i := range out {
			out[i] = row
		}
		return out, nil
	}

	bm, err := l.casesMatrix(ds, cases)
	if err != nil {
		return nil, err
	}

	// Location scores are shared across dispositions of one location.
	// Scoring runs on the compiled per-bin tables (see ml/compile.go):
	// these ensembles are re-scored once per disposition per experiment,
	// exactly the T-independent batch path the tables exist for.
	locScores := map[faults.Location][]float64{}
	for loc, m := range l.locModel {
		locScores[loc] = m.Compiled().ScoreAll(bm)
	}

	for i := range out {
		out[i] = make([]float64, nd)
	}
	for j, d := range l.Dispositions {
		sd := l.flat[d].Compiled().ScoreAll(bm)
		switch model {
		case ModelFlat:
			for i := range cases {
				out[i][j] = l.flat[d].Probability(sd[i])
			}
		case ModelCombined:
			fit := l.combiner[d]
			sl := locScores[faults.Catalog[d].Loc]
			for i := range cases {
				if fit == nil || sl == nil {
					out[i][j] = l.flat[d].Probability(sd[i])
					continue
				}
				out[i][j] = fit.Predict([]float64{sd[i], sl[i]})
			}
		default:
			return nil, fmt.Errorf("core: unknown locator model %v", model)
		}
	}
	return out, nil
}

// RankOfTruth returns, per case, the 1-based position of the true
// disposition in the model's ranked list — the number of locations a
// technician following the list tests before finding the problem. Cases
// whose disposition was filtered by MinCases yield -1.
func (l *TroubleLocator) RankOfTruth(ds *data.Dataset, cases []DispatchCase, model LocatorModel) ([]int, error) {
	post, err := l.Posteriors(ds, cases, model)
	if err != nil {
		return nil, err
	}
	dispIdx := map[faults.DispositionID]int{}
	for j, d := range l.Dispositions {
		dispIdx[d] = j
	}
	out := make([]int, len(cases))
	for i, c := range cases {
		j, ok := dispIdx[c.Disp]
		if !ok {
			out[i] = -1
			continue
		}
		order := ml.RankDesc(post[i])
		for rank, idx := range order {
			if idx == j {
				out[i] = rank + 1
				break
			}
		}
	}
	return out, nil
}

// ExplainCombined renders the Fig. 9 style description of one disposition's
// combined inference model: the strongest weak learners of the disposition
// classifier f_Cij and of its parent location classifier f_Ci·, and the
// logistic coefficients (γ's of Eq. 2) fusing them. The paper's example is
// the inside-wiring problem at the home network.
func (l *TroubleLocator) ExplainCombined(d faults.DispositionID, topStumps int) (string, error) {
	flat, ok := l.flat[d]
	if !ok {
		return "", fmt.Errorf("core: no model for disposition %d", d)
	}
	loc := faults.Catalog[d].Loc
	locM := l.locModel[loc]
	fit := l.combiner[d]
	var b strings.Builder
	fmt.Fprintf(&b, "combined model for %q at %v (Eq. 2)\n", faults.Catalog[d].Name, loc)
	if fit != nil {
		fmt.Fprintf(&b, "P(adj) = sigmoid(%.3f·f_disp %+.3f·f_loc %+.3f)\n",
			fit.Coef[1], fit.Coef[2], fit.Coef[0])
	} else {
		fmt.Fprintf(&b, "P(adj) = calibrated f_disp (no location model)\n")
	}
	fmt.Fprintf(&b, "\ndisposition classifier f_disp — strongest weak learners:\n")
	for t := 0; t < topStumps && t < len(flat.Stumps); t++ {
		fmt.Fprintf(&b, "  %s\n", flat.Explain(t))
	}
	if locM != nil {
		fmt.Fprintf(&b, "\nlocation classifier f_%v — strongest weak learners:\n", loc)
		for t := 0; t < topStumps && t < len(locM.Stumps); t++ {
			fmt.Fprintf(&b, "  %s\n", locM.Explain(t))
		}
	}
	return b.String(), nil
}

// BasicOrder returns the dispositions in prior order, the list a technician
// without NEVERMIND would follow.
func (l *TroubleLocator) BasicOrder() []faults.DispositionID {
	order := append([]faults.DispositionID(nil), l.Dispositions...)
	sort.SliceStable(order, func(a, b int) bool { return l.Priors[order[a]] > l.Priors[order[b]] })
	return order
}

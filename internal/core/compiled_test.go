package core

import (
	"math"
	"testing"

	"nevermind/internal/data"
	"nevermind/internal/features"
)

// TestCompiledScoringMatchesReferenceInRanking is the acceptance-criteria
// check at the predictor level: Rank and ScoreExamples go through the
// compiled per-bin tables, and on every ranked example the compiled score
// must agree with the reference stump-major pass to <= 1e-9.
func TestCompiledScoringMatchesReferenceInRanking(t *testing.T) {
	res, pred := fixture(t)
	week := 40
	examples := features.ExamplesForWeeks(res.Dataset, []int{week})
	ix := data.NewTicketIndex(res.Dataset)
	bm, err := pred.encodeFor(res.Dataset, ix, examples)
	if err != nil {
		t.Fatal(err)
	}
	ref := pred.Model.ScoreAllWorkers(bm, 1)

	got, err := pred.ScoreExamples(res.Dataset, examples)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if d := math.Abs(got[i] - ref[i]); d > 1e-9 {
			t.Fatalf("example %d: compiled score off reference by %g", i, d)
		}
	}

	byLine := map[data.LineID]float64{}
	for i, s := range ref {
		byLine[examples[i].Line] = s
	}
	ranked, err := pred.Rank(res.Dataset, week)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != len(examples) {
		t.Fatalf("Rank returned %d lines, want %d", len(ranked), len(examples))
	}
	for _, p := range ranked {
		if d := math.Abs(p.Score - byLine[p.Line]); d > 1e-9 {
			t.Fatalf("line %d: ranked score off reference by %g", p.Line, d)
		}
	}
}

// TestCompiledLocatorMatchesReferencePosteriors re-derives one disposition's
// posterior from the reference scoring path and checks the compiled
// Posteriors output against it.
func TestCompiledLocatorMatchesReferencePosteriors(t *testing.T) {
	res, loc, test := locatorFixture(t)
	if len(test) > 300 {
		test = test[:300]
	}
	post, err := loc.Posteriors(res.Dataset, test, ModelFlat)
	if err != nil {
		t.Fatal(err)
	}
	bm, err := loc.casesMatrix(res.Dataset, test)
	if err != nil {
		t.Fatal(err)
	}
	for j, d := range loc.Dispositions {
		m := loc.flat[d]
		ref := m.ScoreAllWorkers(bm, 1)
		for i := range test {
			want := m.Probability(ref[i])
			if diff := math.Abs(post[i][j] - want); diff > 1e-9 {
				t.Fatalf("case %d disposition %d: posterior off by %g", i, d, diff)
			}
		}
	}
}

// TestPredictorEncodeCacheIdenticalRanking attaches a cache and ranks the
// same week twice: the second pass must hit the binned-matrix entry and both
// passes must equal the uncached ranking exactly.
func TestPredictorEncodeCacheIdenticalRanking(t *testing.T) {
	res, pred := fixture(t)
	week := 41
	base, err := pred.TopN(res.Dataset, week)
	if err != nil {
		t.Fatal(err)
	}

	cache := features.NewCache(8)
	pred.SetEncodeCache(cache)
	defer pred.SetEncodeCache(nil)
	first, err := pred.TopN(res.Dataset, week)
	if err != nil {
		t.Fatal(err)
	}
	_, missesBefore := cache.Stats()
	second, err := pred.TopN(res.Dataset, week)
	if err != nil {
		t.Fatal(err)
	}
	hits, misses := cache.Stats()
	if hits == 0 {
		t.Fatal("second ranking did not hit the cache")
	}
	if misses != missesBefore {
		t.Fatalf("second ranking missed the cache (%d -> %d misses)", missesBefore, misses)
	}
	for i := range base {
		if first[i] != base[i] || second[i] != base[i] {
			t.Fatalf("cached ranking diverged at position %d: %+v / %+v vs %+v", i, first[i], second[i], base[i])
		}
	}
}

package core

import (
	"testing"

	"nevermind/internal/data"
	"nevermind/internal/features"
	"nevermind/internal/ml"
)

// TestCalibrationHoldoutRecorded checks the pipeline actually carved out the
// internal calibration slice on a training set large enough to spare one.
func TestCalibrationHoldoutRecorded(t *testing.T) {
	res, pred := fixture(t)
	nTrain := res.Dataset.NumLines * len(features.WeekRange(30, 36))
	wantHold := nTrain / 5
	if wantHold > 10000 {
		wantHold = 10000
	}
	if pred.CalibrationHoldout != wantHold {
		t.Fatalf("CalibrationHoldout = %d, want %d of %d training examples",
			pred.CalibrationHoldout, wantHold, nTrain)
	}
	if !pred.Model.Calib.Fitted {
		t.Fatal("calibration not fitted")
	}
}

// TestCalibrationSplitDeclinesSmallOrSingleClass pins the fallback contract:
// tiny training sets and single-class slices must decline the split so the
// caller falls back to the in-sample fit instead of crashing.
func TestCalibrationSplitDeclinesSmallOrSingleClass(t *testing.T) {
	small := make([]bool, 999)
	small[0] = true
	if _, _, ok := calibrationSplit(small, 7); ok {
		t.Fatal("split accepted 999 examples")
	}
	allNeg := make([]bool, 5000)
	if _, _, ok := calibrationSplit(allNeg, 7); ok {
		t.Fatal("split accepted a single-class training set")
	}
	y := make([]bool, 5000)
	for i := 0; i < 500; i++ {
		y[i*10] = true
	}
	fit, hold, ok := calibrationSplit(y, 7)
	if !ok {
		t.Fatal("split declined a healthy training set")
	}
	if len(hold) != 1000 || len(fit) != 4000 {
		t.Fatalf("split sizes %d/%d, want 4000/1000", len(fit), len(hold))
	}
	seen := make([]bool, len(y))
	for _, i := range append(append([]int(nil), fit...), hold...) {
		if seen[i] {
			t.Fatalf("example %d on both sides", i)
		}
		seen[i] = true
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("example %d on neither side", i)
		}
	}
	for i := 1; i < len(hold); i++ {
		if hold[i] <= hold[i-1] {
			t.Fatal("holdout indices not in original example order")
		}
	}
	// Same seed, same split: the holdout is reproducible.
	_, hold2, _ := calibrationSplit(y, 7)
	for i := range hold {
		if hold[i] != hold2[i] {
			t.Fatal("split not deterministic")
		}
	}
}

// TestCalibrationHoldoutBeatsLeakyFit is the headline regression test: Platt
// scaling fitted on the margins the booster optimised is overconfident on
// fresh weeks. The shipped calibration (fitted on the internal holdout) must
// show a smaller binned reliability gap on a held-out week than the leaky
// refit on training scores.
func TestCalibrationHoldoutBeatsLeakyFit(t *testing.T) {
	res, pred := fixture(t)
	ds := res.Dataset
	ix := data.NewTicketIndex(ds)

	// Reconstruct the leaky fit: calibrate the shipped model on its own
	// training-week scores (what TrainPredictor did before the fix).
	trainEx := features.ExamplesForWeeks(ds, features.WeekRange(30, 36))
	trainScores, err := pred.ScoreExamples(ds, trainEx)
	if err != nil {
		t.Fatal(err)
	}
	trainY := features.Labels(ix, trainEx, pred.Cfg.WindowDays)
	leaky, err := ml.FitCalibration(trainScores, trainY)
	if err != nil {
		t.Fatal(err)
	}

	// Fresh week the model never saw, in or out of the holdout.
	testEx := features.ExamplesForWeeks(ds, []int{43})
	scores, err := pred.ScoreExamples(ds, testEx)
	if err != nil {
		t.Fatal(err)
	}
	yTest := features.Labels(ix, testEx, pred.Cfg.WindowDays)

	probsHoldout := make([]float64, len(scores))
	probsLeaky := make([]float64, len(scores))
	for i, s := range scores {
		probsHoldout[i] = pred.Model.Calib.Apply(s)
		probsLeaky[i] = leaky.Apply(s)
	}
	const bins = 10
	gapHoldout := ml.ReliabilityGap(probsHoldout, yTest, bins)
	gapLeaky := ml.ReliabilityGap(probsLeaky, yTest, bins)
	t.Logf("reliability gap on week 43: holdout fit %.4f, leaky fit %.4f", gapHoldout, gapLeaky)
	if gapHoldout >= gapLeaky {
		t.Fatalf("holdout calibration gap %.4f not better than leaky fit %.4f", gapHoldout, gapLeaky)
	}

	// The leak's signature: in-sample margins are inflated, so the leaky
	// sigmoid maps high scores to higher probabilities than the holdout fit
	// does. (A single week's empirical precision at the top is too noisy on
	// this fixture to assert against directly; the binned gap above is the
	// calibration metric.)
	order := ml.RankDesc(scores)
	n := pred.Cfg.BudgetN
	var meanHold, meanLeaky float64
	for _, i := range order[:n] {
		meanHold += probsHoldout[i]
		meanLeaky += probsLeaky[i]
	}
	meanHold /= float64(n)
	meanLeaky /= float64(n)
	t.Logf("top-%d mean probability: holdout fit %.3f, leaky fit %.3f", n, meanHold, meanLeaky)
	if meanLeaky <= meanHold {
		t.Fatalf("leaky fit's top-of-ranking probabilities (%.3f) not above the holdout fit's (%.3f): the leak signature vanished", meanLeaky, meanHold)
	}
}

// TestPredictorIdenticalAcrossWorkers retrains a small pipeline at several
// worker counts and demands bit-identical selections and rankings — the
// end-to-end version of the ml-level determinism tests.
func TestPredictorIdenticalAcrossWorkers(t *testing.T) {
	res, _ := fixture(t)
	cfg := DefaultPredictorConfig(res.Dataset.NumLines, 5)
	cfg.Rounds = 25
	cfg.MaxSelectExamples = 8000
	train := func(workers int) *TicketPredictor {
		c := cfg
		c.Workers = workers
		p, err := TrainPredictor(res.Dataset, []int{31, 32}, c)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return p
	}
	ref := train(1)
	refRank, err := ref.Rank(res.Dataset, 40)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4} {
		p := train(w)
		if len(p.SelectedCols) != len(ref.SelectedCols) {
			t.Fatalf("workers=%d: %d selected cols vs %d", w, len(p.SelectedCols), len(ref.SelectedCols))
		}
		for i := range p.SelectedCols {
			if p.SelectedCols[i] != ref.SelectedCols[i] {
				t.Fatalf("workers=%d: selection differs at %d: %q vs %q", w, i, p.SelectedCols[i], ref.SelectedCols[i])
			}
		}
		if len(p.Model.Stumps) != len(ref.Model.Stumps) {
			t.Fatalf("workers=%d: %d stumps vs %d", w, len(p.Model.Stumps), len(ref.Model.Stumps))
		}
		for i := range p.Model.Stumps {
			if p.Model.Stumps[i] != ref.Model.Stumps[i] {
				t.Fatalf("workers=%d: stump %d differs", w, i)
			}
		}
		if p.Model.Calib != ref.Model.Calib {
			t.Fatalf("workers=%d: calibration differs: %+v vs %+v", w, p.Model.Calib, ref.Model.Calib)
		}
		rank, err := p.Rank(res.Dataset, 40)
		if err != nil {
			t.Fatal(err)
		}
		for i := range rank {
			if rank[i] != refRank[i] {
				t.Fatalf("workers=%d: ranking differs at %d", w, i)
			}
		}
	}
}

// TestLocatorIdenticalAcrossWorkers trains the locator at several worker
// counts: per-disposition and per-location models train independently, so
// posteriors must be bit-identical.
func TestLocatorIdenticalAcrossWorkers(t *testing.T) {
	res, _ := fixture(t)
	ds := res.Dataset
	train := CasesFromNotes(ds, data.FirstSaturday, data.DayOfDate(10, 1)-1)
	mk := func(workers int) *TroubleLocator {
		cfg := DefaultLocatorConfig(3)
		cfg.Rounds = 20
		cfg.MinCases = 10
		cfg.Workers = workers
		loc, err := TrainLocator(ds, train, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return loc
	}
	ref := mk(1)
	test := CasesFromNotes(ds, data.DayOfDate(10, 1), data.DaysInYear-1)
	if len(test) > 40 {
		test = test[:40]
	}
	for _, w := range []int{2, 4} {
		loc := mk(w)
		if len(loc.Dispositions) != len(ref.Dispositions) {
			t.Fatalf("workers=%d: %d dispositions vs %d", w, len(loc.Dispositions), len(ref.Dispositions))
		}
		for _, model := range []LocatorModel{ModelFlat, ModelCombined} {
			want, err := ref.Posteriors(ds, test, model)
			if err != nil {
				t.Fatal(err)
			}
			got, err := loc.Posteriors(ds, test, model)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				for j := range want[i] {
					if got[i][j] != want[i][j] {
						t.Fatalf("workers=%d %v: posterior[%d][%d] = %v, sequential %v",
							w, model, i, j, got[i][j], want[i][j])
					}
				}
			}
		}
	}
}

package core

import (
	"sort"
	"strings"
	"testing"

	"nevermind/internal/data"
	"nevermind/internal/faults"
	"nevermind/internal/features"
	"nevermind/internal/ml"
	"nevermind/internal/sim"
)

// The shared fixture simulates a mid-sized network once and trains one
// predictor; individual tests probe different properties. Training is the
// expensive part (~seconds), so tests share it.
var (
	fixtureRes  *sim.Result
	fixturePred *TicketPredictor
)

func fixture(t *testing.T) (*sim.Result, *TicketPredictor) {
	t.Helper()
	if fixtureRes == nil {
		res, err := sim.Run(sim.DefaultConfig(6000, 21))
		if err != nil {
			t.Fatal(err)
		}
		fixtureRes = res
		cfg := DefaultPredictorConfig(res.Dataset.NumLines, 5)
		cfg.Rounds = 120
		cfg.MaxSelectExamples = 25000
		pred, err := TrainPredictor(res.Dataset, features.WeekRange(30, 36), cfg)
		if err != nil {
			t.Fatal(err)
		}
		fixturePred = pred
	}
	return fixtureRes, fixturePred
}

func TestPredictorConfigValidation(t *testing.T) {
	ds := &data.Dataset{}
	bad := []PredictorConfig{
		{},
		{WindowDays: 28},
		{WindowDays: 28, BudgetN: 10},
		{WindowDays: 28, BudgetN: 10, Rounds: 5},
		{WindowDays: 28, BudgetN: 10, Rounds: 5, SelectTopK: 3, Bins: 1},
	}
	for i, cfg := range bad {
		if _, err := TrainPredictor(ds, []int{30}, cfg); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
	good := DefaultPredictorConfig(1000, 1)
	if _, err := TrainPredictor(ds, nil, good); err == nil {
		t.Fatal("empty training weeks accepted")
	}
}

func TestDefaultPredictorConfigScalesBudget(t *testing.T) {
	if cfg := DefaultPredictorConfig(1000000, 1); cfg.BudgetN != 20000 {
		t.Fatalf("1M lines → budget %d, want the paper's 20K", cfg.BudgetN)
	}
	if cfg := DefaultPredictorConfig(100, 1); cfg.BudgetN < 1 {
		t.Fatal("tiny population got zero budget")
	}
}

func TestPredictorBeatsBaseRateOnHeldOutWeek(t *testing.T) {
	res, pred := fixture(t)
	ds := res.Dataset
	week := 43
	ex := features.ExamplesForWeeks(ds, []int{week})
	scores, err := pred.ScoreExamples(ds, ex)
	if err != nil {
		t.Fatal(err)
	}
	ix := data.NewTicketIndex(ds)
	y := features.Labels(ix, ex, pred.Cfg.WindowDays)
	var pos float64
	for _, v := range y {
		if v {
			pos++
		}
	}
	base := pos / float64(len(y))
	p := ml.PrecisionAtK(scores, y, pred.Cfg.BudgetN)
	if p < 4*base {
		t.Fatalf("budget precision %.3f under 4x base rate %.3f: predictor is not learning", p, base)
	}
	if p < 0.2 {
		t.Fatalf("budget precision %.3f; the paper's operating point is ~0.4", p)
	}
}

func TestRankAndTopNConsistent(t *testing.T) {
	res, pred := fixture(t)
	ds := res.Dataset
	all, err := pred.Rank(ds, 43)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != ds.NumLines {
		t.Fatalf("Rank returned %d predictions", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].Score > all[i-1].Score {
			t.Fatal("Rank not sorted by score")
		}
	}
	top, err := pred.TopN(ds, 43)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != pred.Cfg.BudgetN {
		t.Fatalf("TopN returned %d, budget %d", len(top), pred.Cfg.BudgetN)
	}
	for i := range top {
		if top[i] != all[i] {
			t.Fatal("TopN is not the prefix of Rank")
		}
	}
	for _, p := range top {
		if p.Probability <= 0 || p.Probability >= 1 {
			t.Fatalf("probability %v out of (0,1)", p.Probability)
		}
		if p.Week != 43 {
			t.Fatalf("prediction carries week %d", p.Week)
		}
	}
	// Probabilities must be monotone in score.
	for i := 1; i < len(top); i++ {
		if top[i].Probability > top[i-1].Probability+1e-12 {
			t.Fatal("probability not monotone in rank")
		}
	}
}

func TestPredictorSelectedMeaningfulFeatures(t *testing.T) {
	_, pred := fixture(t)
	if len(pred.SelectedCols) == 0 {
		t.Fatal("no features selected")
	}
	// The error counters and noise margin drive the simulator's faults;
	// at least one such feature must survive selection.
	signal := false
	for _, n := range pred.SelectedCols {
		if strings.Contains(n, "cv") || strings.Contains(n, "nmr") ||
			strings.Contains(n, "escnt") || strings.Contains(n, "fec") {
			signal = true
			break
		}
	}
	if !signal {
		t.Fatalf("selection missed every error-counter feature: %v", pred.SelectedCols)
	}
	if len(pred.ProductPairs) == 0 {
		t.Fatal("no product features survived with UseDerived")
	}
	for _, name := range pred.SelectedCols {
		if _, ok := pred.SelectionScores[name]; !ok {
			t.Fatalf("selected column %q has no recorded score", name)
		}
	}
}

func TestPredictorDeterministic(t *testing.T) {
	res, _ := fixture(t)
	cfg := DefaultPredictorConfig(res.Dataset.NumLines, 5)
	cfg.Rounds = 25
	cfg.MaxSelectExamples = 8000
	a, err := TrainPredictor(res.Dataset, []int{31, 32}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrainPredictor(res.Dataset, []int{31, 32}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(a.SelectedCols, ",") != strings.Join(b.SelectedCols, ",") {
		t.Fatal("selection differs across identical trainings")
	}
	ra, _ := a.Rank(res.Dataset, 40)
	rb, _ := b.Rank(res.Dataset, 40)
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("ranking differs at %d", i)
		}
	}
}

func TestPredictorWithoutDerivedFeatures(t *testing.T) {
	res, _ := fixture(t)
	cfg := DefaultPredictorConfig(res.Dataset.NumLines, 5)
	cfg.Rounds = 60
	cfg.UseDerived = false
	cfg.MaxSelectExamples = 15000
	pred, err := TrainPredictor(res.Dataset, []int{31, 32, 33}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pred.ProductPairs) != 0 {
		t.Fatal("products present with UseDerived=false")
	}
	for _, n := range pred.SelectedCols {
		if strings.HasPrefix(n, "quad:") || strings.HasPrefix(n, "prod:") {
			t.Fatalf("derived column %q selected with UseDerived=false", n)
		}
	}
}

// --- Locator ---------------------------------------------------------------

var fixtureLoc *TroubleLocator

func locatorFixture(t *testing.T) (*sim.Result, *TroubleLocator, []DispatchCase) {
	t.Helper()
	res, _ := fixture(t)
	ds := res.Dataset
	train := CasesFromNotes(ds, data.FirstSaturday, data.DayOfDate(10, 1)-1)
	if fixtureLoc == nil {
		cfg := DefaultLocatorConfig(3)
		cfg.Rounds = 80
		cfg.MinCases = 10
		loc, err := TrainLocator(ds, train, cfg)
		if err != nil {
			t.Fatal(err)
		}
		fixtureLoc = loc
	}
	test := CasesFromNotes(ds, data.DayOfDate(10, 1), data.DaysInYear-1)
	return res, fixtureLoc, test
}

func TestCasesFromNotes(t *testing.T) {
	res, _ := fixture(t)
	ds := res.Dataset
	cases := CasesFromNotes(ds, 100, 200)
	if len(cases) == 0 {
		t.Fatal("no cases in a 100-day window")
	}
	dayOf := map[int]int{}
	for _, tk := range ds.Tickets {
		dayOf[tk.ID] = tk.Day
	}
	for _, c := range cases {
		if c.Week < 0 || c.Week >= data.Weeks {
			t.Fatalf("case week %d", c.Week)
		}
		if c.Disp < 0 || int(c.Disp) >= faults.NumDispositions {
			t.Fatalf("case disposition %d", c.Disp)
		}
	}
}

func TestLocatorBeatsBasicModel(t *testing.T) {
	res, loc, test := locatorFixture(t)
	meanRank := func(model LocatorModel) float64 {
		ranks, err := loc.RankOfTruth(res.Dataset, test, model)
		if err != nil {
			t.Fatal(err)
		}
		sum, n := 0, 0
		for _, r := range ranks {
			if r > 0 {
				sum += r
				n++
			}
		}
		if n == 0 {
			t.Fatal("no rankable cases")
		}
		return float64(sum) / float64(n)
	}
	basic := meanRank(ModelBasic)
	flat := meanRank(ModelFlat)
	combined := meanRank(ModelCombined)
	if flat >= basic {
		t.Fatalf("flat model mean rank %.1f not better than basic %.1f", flat, basic)
	}
	if combined >= basic {
		t.Fatalf("combined model mean rank %.1f not better than basic %.1f", combined, basic)
	}
	// §6.3: the models substantially cut the tests needed (the full-scale
	// experiment roughly halves them; this fixture trains on a fraction of
	// the data, so demand a 15% mean improvement here).
	if flat > 0.85*basic {
		t.Fatalf("flat model mean rank %.1f is a weak improvement on basic %.1f", flat, basic)
	}
}

func TestLocatorMedianRankHalved(t *testing.T) {
	res, loc, test := locatorFixture(t)
	medianRank := func(model LocatorModel) int {
		ranks, err := loc.RankOfTruth(res.Dataset, test, model)
		if err != nil {
			t.Fatal(err)
		}
		var v []int
		for _, r := range ranks {
			if r > 0 {
				v = append(v, r)
			}
		}
		sort.Ints(v)
		return v[len(v)/2]
	}
	// The paper's headline: locating 50% of problems takes ~9 tests with
	// the basic ranks and ~4 with either model. The small fixture trains on
	// a fraction of the data; demand at least a one-third cut here (the
	// full-scale run in cmd/experiments shows the halving).
	if b, f := medianRank(ModelBasic), medianRank(ModelFlat); 3*f > 2*b {
		t.Fatalf("median tests: basic %d, flat %d; expected at most two-thirds", b, f)
	}
}

func TestLocatorPosteriorsShape(t *testing.T) {
	res, loc, test := locatorFixture(t)
	short := test[:5]
	for _, model := range []LocatorModel{ModelBasic, ModelFlat, ModelCombined} {
		post, err := loc.Posteriors(res.Dataset, short, model)
		if err != nil {
			t.Fatal(err)
		}
		if len(post) != len(short) {
			t.Fatalf("%v: %d rows", model, len(post))
		}
		for _, row := range post {
			if len(row) != len(loc.Dispositions) {
				t.Fatalf("%v: row width %d", model, len(row))
			}
			for _, p := range row {
				if p < 0 || p > 1 {
					t.Fatalf("%v: posterior %v out of [0,1]", model, p)
				}
			}
		}
	}
}

func TestBasicOrderSortedByPrior(t *testing.T) {
	_, loc, _ := locatorFixture(t)
	order := loc.BasicOrder()
	if len(order) != len(loc.Dispositions) {
		t.Fatal("BasicOrder lost dispositions")
	}
	for i := 1; i < len(order); i++ {
		if loc.Priors[order[i]] > loc.Priors[order[i-1]] {
			t.Fatal("BasicOrder not descending by prior")
		}
	}
}

func TestLocatorRejectsBadInput(t *testing.T) {
	res, _ := fixture(t)
	if _, err := TrainLocator(res.Dataset, nil, DefaultLocatorConfig(1)); err == nil {
		t.Fatal("no cases accepted")
	}
	cfg := DefaultLocatorConfig(1)
	cfg.Rounds = 0
	if _, err := TrainLocator(res.Dataset, make([]DispatchCase, 100), cfg); err == nil {
		t.Fatal("zero rounds accepted")
	}
}

func TestLocatorModelString(t *testing.T) {
	if ModelBasic.String() != "basic" || ModelFlat.String() != "flat" || ModelCombined.String() != "combined" {
		t.Fatal("model names wrong")
	}
	if LocatorModel(9).String() != "LocatorModel(9)" {
		t.Fatal("unknown model string")
	}
}

func TestExplainCombined(t *testing.T) {
	_, loc, _ := locatorFixture(t)
	d := loc.Dispositions[0]
	text, err := loc.ExplainCombined(d, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, faults.Catalog[d].Name) {
		t.Fatalf("explanation misses the disposition name:\n%s", text)
	}
	if !strings.Contains(text, "f_disp") || !strings.Contains(text, "if ") {
		t.Fatalf("explanation misses model structure:\n%s", text)
	}
	if _, err := loc.ExplainCombined(faults.DispositionID(999), 3); err == nil {
		t.Fatal("unknown disposition accepted")
	}
}

// Package core implements NEVERMIND itself (§3.2): the ticket predictor,
// which ranks every DSL line by the probability of a customer trouble ticket
// in the next T weeks and hands the top N to the dispatch system, and the
// trouble locator, which ranks the 52 candidate dispositions for a dispatch
// so the technician tests the likely locations first.
package core

import (
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"sort"

	"nevermind/internal/data"
	"nevermind/internal/features"
	"nevermind/internal/ml"
	"nevermind/internal/rng"
)

// PredictorConfig tunes the ticket-prediction pipeline of §4.
type PredictorConfig struct {
	// WindowDays is T, the label horizon (§4.1). The paper uses 4 weeks to
	// cover hard-to-perceive problems and absent customers.
	WindowDays int
	// BudgetN is the operational budget: how many predicted tickets ATDS
	// can absorb per ranking. The paper's network allows 20K out of
	// millions of lines; the default scales that ratio to the population.
	BudgetN int
	// Rounds is the number of boosting iterations (paper: 800 by
	// cross-validation; the default trades a sliver of accuracy for
	// minutes of wall-clock).
	Rounds int
	// SelectTopK is how many history+customer features survive selection
	// (paper's Fig. 6 uses the top 50). Families are selected separately,
	// as in Fig. 4's per-family thresholds, so derived features never
	// displace base ones.
	SelectTopK int
	// QuadTopK keeps the best quadratic features when UseDerived is set.
	QuadTopK int
	// ProductBaseK crosses the top-K selected base features into candidate
	// product features.
	ProductBaseK int
	// ProductTopK keeps the best-scoring products.
	ProductTopK int
	// Criterion picks the feature-selection method; the paper's method is
	// top-N AP (the default). Fig. 6 swaps in the Table 4 baselines.
	Criterion ml.Criterion
	// UseDerived enables the quadratic and product features of Table 3;
	// Fig. 7's dotted curve disables them.
	UseDerived bool
	// MaxSelectExamples subsamples the per-feature selection pass.
	MaxSelectExamples int
	// CandidateGroups restricts the candidate columns to the given Table 3
	// groups (nil = all). Fig. 6 compares selection methods on history
	// features only.
	CandidateGroups []features.Group
	// Bins is the stump quantizer resolution for the final model.
	Bins int
	// HistoryWeeks is the long-term feature window.
	HistoryWeeks int
	// Seed drives every random choice in the pipeline.
	Seed uint64
	// Workers sizes the worker pools of every hot path in the pipeline
	// (stump search, per-column selection, quantization, scoring):
	// 0 = runtime.GOMAXPROCS, 1 = the exact sequential path. Results are
	// bit-identical at any setting (see DESIGN.md, "Parallelism model").
	Workers int
}

// DefaultPredictorConfig sizes the pipeline for a population of numLines.
func DefaultPredictorConfig(numLines int, seed uint64) PredictorConfig {
	budget := numLines / 50 // 2%: the 20K-of-millions operating point
	if budget < 10 {
		budget = 10
	}
	return PredictorConfig{
		WindowDays:        28,
		BudgetN:           budget,
		Rounds:            250,
		SelectTopK:        40,
		QuadTopK:          10,
		ProductBaseK:      16,
		ProductTopK:       15,
		Criterion:         ml.CritTopNAP,
		UseDerived:        true,
		MaxSelectExamples: 60000,
		Bins:              128,
		HistoryWeeks:      26,
		Seed:              seed,
	}
}

// TicketPredictor is the trained §4 pipeline. It remembers the selected
// column names and product pairs so new weeks re-encode identically.
type TicketPredictor struct {
	Cfg PredictorConfig

	Model *ml.BStump
	Quant *ml.Quantizer

	// SelectedCols are the names of the surviving base (history, customer,
	// quadratic) columns, in training order.
	SelectedCols []string
	// ProductPairs are the surviving products, by base-column name.
	ProductPairs [][2]string
	// Scores of each candidate column from selection, for inspection.
	SelectionScores map[string]float64
	// SelectionSkips reports candidate columns that selection could not
	// score (and assigned 0), one formatted line per column.
	SelectionSkips []string
	// CalibrationHoldout is the number of training examples held out of
	// boosting to fit the logistic calibration; 0 means the training set was
	// too small to split and calibration fell back to in-sample scores.
	CalibrationHoldout int

	// cache, when set, memoizes feature encodes and quantized matrices
	// across rankings and experiments (see features.Cache). Unexported so
	// gob persistence skips it; a loaded predictor runs uncached until
	// SetEncodeCache is called.
	cache *features.Cache
}

// SetEncodeCache attaches (or with nil detaches) a cross-ranking encode/bin
// cache. Safe to call on a freshly trained or gob-loaded predictor.
func (p *TicketPredictor) SetEncodeCache(c *features.Cache) { p.cache = c }

// Prediction is one ranked line.
type Prediction struct {
	Line        data.LineID
	Week        int
	Score       float64
	Probability float64
}

// TrainPredictor learns the full pipeline on the given training weeks of a
// dataset: encode → select features → train BStump → calibrate.
func TrainPredictor(ds *data.Dataset, trainWeeks []int, cfg PredictorConfig) (*TicketPredictor, error) {
	return TrainPredictorCached(ds, trainWeeks, cfg, nil)
}

// TrainPredictorCached is TrainPredictor threading an optional encode/bin
// cache through the training encode; the trained predictor keeps the cache
// for its subsequent rankings. A nil cache is TrainPredictor exactly.
func TrainPredictorCached(ds *data.Dataset, trainWeeks []int, cfg PredictorConfig, cache *features.Cache) (*TicketPredictor, error) {
	if err := validatePredictorConfig(cfg); err != nil {
		return nil, err
	}
	if len(trainWeeks) == 0 {
		return nil, fmt.Errorf("core: no training weeks")
	}
	ix := data.NewTicketIndex(ds)
	examples := features.ExamplesForWeeks(ds, trainWeeks)
	enc, err := features.EncodeCached(cache, ds, ix, examples, features.Config{
		HistoryWeeks: cfg.HistoryWeeks, Quadratic: cfg.UseDerived,
	})
	if err != nil {
		return nil, err
	}
	if cfg.CandidateGroups != nil {
		enc, err = enc.Subset(enc.IndicesOfGroups(cfg.CandidateGroups...))
		if err != nil {
			return nil, err
		}
	}
	y := features.Labels(ix, examples, cfg.WindowDays)

	// The selection budget is the per-ranking budget scaled to the number
	// of rankings stacked in the training set.
	selN := cfg.BudgetN * len(trainWeeks)
	selOpt := ml.SelectOptions{
		N: selN, Seed: cfg.Seed, MaxExamples: cfg.MaxSelectExamples,
		Workers: cfg.Workers,
	}

	// Score every candidate column, then select per family (Fig. 4 applies
	// separate thresholds to history/customer, quadratic and product
	// features): the top SelectTopK history+customer columns plus the top
	// QuadTopK quadratic columns.
	scores, skips, err := ml.FeatureScoresDetail(enc.Cols, y, cfg.Criterion, selOpt)
	if err != nil {
		return nil, fmt.Errorf("core: feature selection: %w", err)
	}
	p := &TicketPredictor{Cfg: cfg, SelectionScores: map[string]float64{}, cache: cache}
	for _, s := range skips {
		p.SelectionSkips = append(p.SelectionSkips, s.String())
	}
	for i, c := range enc.Cols {
		p.SelectionScores[c.Name] = scores[i]
	}
	order := ml.RankDesc(scores)
	var keep []int
	baseTaken, quadTaken := 0, 0
	for _, i := range order {
		if enc.Groups[i] == features.GroupQuad {
			if quadTaken < cfg.QuadTopK {
				keep = append(keep, i)
				quadTaken++
			}
		} else if baseTaken < cfg.SelectTopK {
			keep = append(keep, i)
			baseTaken++
		}
	}
	sort.Ints(keep)
	for _, i := range keep {
		p.SelectedCols = append(p.SelectedCols, enc.Cols[i].Name)
	}

	finalEnc, err := enc.Subset(keep)
	if err != nil {
		return nil, err
	}

	if cfg.UseDerived && cfg.ProductBaseK > 1 && cfg.ProductTopK > 0 {
		// Cross the best history+customer features, score the candidate
		// products, keep the winners (the Fig. 4c step).
		var baseOrder []int
		for _, i := range order {
			if enc.Groups[i] != features.GroupQuad {
				baseOrder = append(baseOrder, i)
			}
		}
		baseK := cfg.ProductBaseK
		if baseK > len(baseOrder) {
			baseK = len(baseOrder)
		}
		pairs := features.AllPairs(baseOrder[:baseK])
		prodCols, err := features.ProductColumns(enc, pairs)
		if err != nil {
			return nil, err
		}
		prodScores, prodSkips, err := ml.FeatureScoresDetail(prodCols, y, cfg.Criterion, selOpt)
		if err != nil {
			return nil, fmt.Errorf("core: product selection: %w", err)
		}
		for _, s := range prodSkips {
			p.SelectionSkips = append(p.SelectionSkips, s.String())
		}
		prodOrder := ml.RankDesc(prodScores)
		var kept []ml.Column
		for _, pi := range prodOrder {
			if len(kept) >= cfg.ProductTopK {
				break
			}
			// A product only earns a slot by beating both of its parents
			// with margin — the paper's rationale for the higher product
			// threshold in Fig. 4c. This filters the winner's-curse
			// products that merely matched their best parent on the
			// selection subsample.
			parentBest := math.Max(scores[pairs[pi].A], scores[pairs[pi].B])
			if prodScores[pi] <= 1.15*parentBest {
				continue
			}
			kept = append(kept, prodCols[pi])
			p.ProductPairs = append(p.ProductPairs, [2]string{
				enc.Cols[pairs[pi].A].Name, enc.Cols[pairs[pi].B].Name,
			})
			p.SelectionScores[prodCols[pi].Name] = prodScores[pi]
		}
		if err := finalEnc.AppendColumns(kept, features.GroupProd); err != nil {
			return nil, err
		}
	}

	// Final model. The logistic calibration must not be fitted on the same
	// margins the booster optimised: training-set margins are systematically
	// inflated, which made Probability overconfident on every fresh week. A
	// seeded internal slice of the training examples is therefore held out
	// of boosting and calibration is fitted on the holdout's scores; tiny
	// training sets that cannot spare a holdout fall back to the in-sample
	// fit (recorded as CalibrationHoldout == 0).
	q, err := ml.FitQuantizer(finalEnc.Cols, cfg.Bins)
	if err != nil {
		return nil, err
	}
	bm, err := q.TransformWorkers(finalEnc.Cols, cfg.Workers)
	if err != nil {
		return nil, err
	}
	boostBM, boostY := bm, y
	var calibBM *ml.BinnedMatrix
	var calibY []bool
	if fitIdx, holdIdx, ok := calibrationSplit(y, cfg.Seed); ok {
		boostBM, boostY = bm.SubsetRows(fitIdx), subsetBools(y, fitIdx)
		calibBM, calibY = bm.SubsetRows(holdIdx), subsetBools(y, holdIdx)
		p.CalibrationHoldout = len(holdIdx)
	}
	model, err := ml.TrainBStump(boostBM, q, boostY, ml.TrainOptions{Rounds: cfg.Rounds, Workers: cfg.Workers})
	if err != nil {
		return nil, fmt.Errorf("core: boosting: %w", err)
	}
	if calibBM != nil {
		err = model.Calibrate(model.ScoreAllWorkers(calibBM, cfg.Workers), calibY)
	} else {
		err = model.Calibrate(model.ScoreAllWorkers(boostBM, cfg.Workers), boostY)
	}
	if err != nil {
		return nil, fmt.Errorf("core: calibration: %w", err)
	}
	p.Model = model
	p.Quant = q
	return p, nil
}

// calibrationHoldoutLabel salts the calibration split's RNG stream so it is
// independent of the selection subsample and split streams.
const calibrationHoldoutLabel = 0xca11b

// calibrationSplit carves a seeded calibration holdout out of n training
// examples: 20% of them, at most 10000 (two logistic parameters need no
// more), kept in original example order. It declines (ok == false) when the
// training set is too small to spare a slice or either side would be left
// with a single class, in which case the caller falls back to the in-sample
// fit.
func calibrationSplit(y []bool, seed uint64) (fitIdx, holdIdx []int, ok bool) {
	n := len(y)
	if n < 1000 {
		return nil, nil, false
	}
	hold := n / 5
	if hold > 10000 {
		hold = 10000
	}
	perm := rng.Derive(seed, calibrationHoldoutLabel).Perm(n)
	holdIdx = append([]int(nil), perm[:hold]...)
	fitIdx = append([]int(nil), perm[hold:]...)
	sort.Ints(holdIdx)
	sort.Ints(fitIdx)
	if !bothClasses(y, holdIdx) || !bothClasses(y, fitIdx) {
		return nil, nil, false
	}
	return fitIdx, holdIdx, true
}

func bothClasses(y []bool, idx []int) bool {
	var pos, neg bool
	for _, i := range idx {
		if y[i] {
			pos = true
		} else {
			neg = true
		}
		if pos && neg {
			return true
		}
	}
	return false
}

func subsetBools(y []bool, idx []int) []bool {
	out := make([]bool, len(idx))
	for i, r := range idx {
		out[i] = y[r]
	}
	return out
}

// schemaKey fingerprints the predictor's scoring schema — selected columns,
// product pairs, encoder settings, and the quantizer's content fingerprint —
// for binned-matrix cache keys. Predictors that bin identical examples
// identically share a key; retrained predictors with different cuts do not.
func (p *TicketPredictor) schemaKey() uint64 {
	h := fnv.New64a()
	for _, name := range p.SelectedCols {
		io.WriteString(h, name)
		h.Write([]byte{0})
	}
	for _, pp := range p.ProductPairs {
		io.WriteString(h, pp[0])
		h.Write([]byte{1})
		io.WriteString(h, pp[1])
		h.Write([]byte{0})
	}
	fmt.Fprintf(h, "|h%d|d%v|q%016x", p.Cfg.HistoryWeeks, p.Cfg.UseDerived, p.Quant.Fingerprint())
	return h.Sum64()
}

// encodeFor re-encodes arbitrary examples into the predictor's column
// schema. With a cache attached, both the base feature encode and the final
// quantized matrix are memoized (keyed by the dataset generation, the
// examples, and the predictor's schemaKey), so repeated rankings of the same
// weeks skip the pipeline while ingests of new data are never served stale.
func (p *TicketPredictor) encodeFor(ds *data.Dataset, ix *data.TicketIndex, examples []features.Example) (*ml.BinnedMatrix, error) {
	var bmKey string
	if p.cache != nil {
		bmKey = fmt.Sprintf("bin|pred|g%d|%016x|%016x", ds.Generation, features.ExamplesKey(examples), p.schemaKey())
		if bm, ok := p.cache.GetBinned(bmKey); ok {
			return bm, nil
		}
	}
	enc, err := features.EncodeCached(p.cache, ds, ix, examples, features.Config{
		HistoryWeeks: p.Cfg.HistoryWeeks, Quadratic: p.Cfg.UseDerived,
	})
	if err != nil {
		return nil, err
	}
	var keep []int
	for _, name := range p.SelectedCols {
		i := enc.ColumnIndex(name)
		if i < 0 {
			return nil, fmt.Errorf("core: schema drift: column %q missing", name)
		}
		keep = append(keep, i)
	}
	finalEnc, err := enc.Subset(keep)
	if err != nil {
		return nil, err
	}
	if len(p.ProductPairs) > 0 {
		var pairs []features.Pair
		for _, pp := range p.ProductPairs {
			a, b := enc.ColumnIndex(pp[0]), enc.ColumnIndex(pp[1])
			if a < 0 || b < 0 {
				return nil, fmt.Errorf("core: schema drift: product pair %v missing", pp)
			}
			pairs = append(pairs, features.Pair{A: a, B: b})
		}
		prodCols, err := features.ProductColumns(enc, pairs)
		if err != nil {
			return nil, err
		}
		if err := finalEnc.AppendColumns(prodCols, features.GroupProd); err != nil {
			return nil, err
		}
	}
	bm, err := p.Quant.TransformWorkers(finalEnc.Cols, p.Cfg.Workers)
	if err != nil {
		return nil, err
	}
	if p.cache != nil {
		p.cache.PutBinned(bmKey, bm)
	}
	return bm, nil
}

// Rank scores every line at the given week and returns the full ranking,
// best first. This is the Saturday run: ranking several million lines takes
// the paper's system under 15 minutes; here it is seconds.
func (p *TicketPredictor) Rank(ds *data.Dataset, week int) ([]Prediction, error) {
	ix := data.NewTicketIndex(ds)
	examples := features.ExamplesForWeeks(ds, []int{week})
	bm, err := p.encodeFor(ds, ix, examples)
	if err != nil {
		return nil, err
	}
	scores := p.Model.Compiled().ScoreAllWorkers(bm, p.Cfg.Workers)
	order := ml.RankDesc(scores)
	out := make([]Prediction, len(order))
	for rank, i := range order {
		out[rank] = Prediction{
			Line:        examples[i].Line,
			Week:        week,
			Score:       scores[i],
			Probability: p.Model.Probability(scores[i]),
		}
	}
	return out, nil
}

// TopN returns the budgeted prediction list for a week: the lines NEVERMIND
// submits to ATDS.
func (p *TicketPredictor) TopN(ds *data.Dataset, week int) ([]Prediction, error) {
	all, err := p.Rank(ds, week)
	if err != nil {
		return nil, err
	}
	n := p.Cfg.BudgetN
	if n > len(all) {
		n = len(all)
	}
	return all[:n], nil
}

// ScoreExamples scores arbitrary (line, week) examples, for evaluation.
func (p *TicketPredictor) ScoreExamples(ds *data.Dataset, examples []features.Example) ([]float64, error) {
	return p.ScoreExamplesIx(ds, data.NewTicketIndex(ds), examples)
}

// ScoreExamplesIx is ScoreExamples with a caller-supplied ticket index, the
// batch entry point for long-lived servers that score many requests against
// one dataset snapshot: building the index once per snapshot instead of once
// per request removes an O(tickets) pass from the hot path.
func (p *TicketPredictor) ScoreExamplesIx(ds *data.Dataset, ix *data.TicketIndex, examples []features.Example) ([]float64, error) {
	bm, err := p.encodeFor(ds, ix, examples)
	if err != nil {
		return nil, err
	}
	return p.Model.Compiled().ScoreAllWorkers(bm, p.Cfg.Workers), nil
}

// PredictExamples scores arbitrary examples and returns full Predictions
// (score plus calibrated probability), preserving example order. It is the
// store-backed batch entry point the serving subsystem ranks from; a nil ix
// builds the ticket index from ds.
func (p *TicketPredictor) PredictExamples(ds *data.Dataset, ix *data.TicketIndex, examples []features.Example) ([]Prediction, error) {
	if ix == nil {
		ix = data.NewTicketIndex(ds)
	}
	scores, err := p.ScoreExamplesIx(ds, ix, examples)
	if err != nil {
		return nil, err
	}
	out := make([]Prediction, len(examples))
	for i, ex := range examples {
		out[i] = Prediction{
			Line:        ex.Line,
			Week:        ex.Week,
			Score:       scores[i],
			Probability: p.Model.Probability(scores[i]),
		}
	}
	return out, nil
}

// SchemaFingerprint exposes the predictor's scoring-schema hash (selected
// columns, product pairs, encoder settings, quantizer cuts) for operational
// surfaces: health endpoints and reload logs report it so operators can tell
// whether a model swap changed the scoring schema. It does not cover the
// stump values themselves — two retrains on the same schema share a
// fingerprint.
func (p *TicketPredictor) SchemaFingerprint() uint64 { return p.schemaKey() }

func validatePredictorConfig(cfg PredictorConfig) error {
	switch {
	case cfg.WindowDays <= 0:
		return fmt.Errorf("core: WindowDays must be positive")
	case cfg.BudgetN <= 0:
		return fmt.Errorf("core: BudgetN must be positive")
	case cfg.Rounds <= 0:
		return fmt.Errorf("core: Rounds must be positive")
	case cfg.SelectTopK <= 0:
		return fmt.Errorf("core: SelectTopK must be positive")
	case cfg.Bins < 2:
		return fmt.Errorf("core: Bins must be at least 2")
	}
	return nil
}

package serve

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"nevermind/internal/core"
	"nevermind/internal/features"
	"nevermind/internal/sim"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// TestGoldenEndToEndReplay replays a fixed-seed four-week pipeline run and
// compares the served outputs — per-week reports, the final top-N ranking
// with float64 score bits, and the locator posterior for the top line —
// against a golden file. Floats are rendered as exact IEEE-754 bit patterns,
// so the test pins bit-identical determinism across refactors: any change
// to ingest order, snapshot building, feature encoding, scoring, or ATDS
// dispatch that shifts a single bit shows up as a golden diff.
//
// Run with -update to accept an intentional behaviour change; the diff of
// testdata/e2e_replay.golden then documents the change in review.
func TestGoldenEndToEndReplay(t *testing.T) {
	ds, pred, loc := fixture(t)
	srv, err := New(Config{Predictor: pred, Locator: loc})
	if err != nil {
		t.Fatal(err)
	}
	src, err := sim.NewSource(ds, 40, 43)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	pl, err := NewPipeline(srv, PipelineConfig{
		Source: SimFeed(src),
		Sleep:  func(time.Duration) {},
		OnWeek: func(r WeekReport) {
			fmt.Fprintf(&b, "week %d ingested_tests=%d ingested_tickets=%d submitted=%d pending=%d retries=%d\n",
				r.Week, r.IngestedTests, r.IngestedTickets, r.Submitted, r.Pending, r.Retries)
			fmt.Fprintf(&b, "week %d stats customer=%d predicted=%d expired=%d worked_within=%d cust_wait=%s pred_wait=%s\n",
				r.Week, r.Stats.Customer, r.Stats.Predicted, r.Stats.ExpiredPredicted,
				r.Stats.WorkedWithinBudgetHorizon,
				f64bits(r.Stats.MeanCustomerWaitDays), f64bits(r.Stats.MeanPredictedWaitDays))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Run(t.Context()); err != nil {
		t.Fatal(err)
	}

	// The final ranking, top 16, exactly as /v1/rank orders it.
	sn := srv.Store().Snapshot()
	if sn == nil {
		t.Fatal("empty store after the run")
	}
	week := srv.Store().LatestWeek()
	lines := sn.LinesAt(week)
	examples := make([]features.Example, len(lines))
	for i, l := range lines {
		examples[i] = features.Example{Line: l, Week: week}
	}
	preds, err := pred.PredictExamples(sn.DS, sn.Ix, examples)
	if err != nil {
		t.Fatal(err)
	}
	order := rankOrder(preds)
	top := 16
	if top > len(order) {
		top = len(order)
	}
	fmt.Fprintf(&b, "rank week=%d population=%d\n", week, len(lines))
	for r, i := range order[:top] {
		p := preds[i]
		fmt.Fprintf(&b, "rank %2d line=%d score=%s prob=%s\n", r, p.Line, f64bits(p.Score), f64bits(p.Probability))
	}

	// Locator posterior for the top-ranked line, dispositions in model order.
	post, err := loc.Posteriors(sn.DS, []core.DispatchCase{{Line: preds[order[0]].Line, Week: week}}, core.ModelCombined)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&b, "locate line=%d week=%d\n", preds[order[0]].Line, week)
	for j, d := range loc.Dispositions {
		fmt.Fprintf(&b, "locate disp=%d posterior=%s\n", int(d), f64bits(post[0][j]))
	}

	got := b.String()
	goldenPath := filepath.Join("testdata", "e2e_replay.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", goldenPath, len(got))
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run `go test ./internal/serve -run TestGoldenEndToEndReplay -update` to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("end-to-end replay diverged from golden:\n%s", diffLines(string(want), got))
	}
}

// f64bits renders a float64 as value plus exact bit pattern, so goldens
// catch 1-ulp drift a decimal rendering would round away.
func f64bits(v float64) string {
	return fmt.Sprintf("%g[%016x]", v, math.Float64bits(v))
}

// diffLines renders the first few diverging lines of two golden texts.
func diffLines(want, got string) string {
	w, g := strings.Split(want, "\n"), strings.Split(got, "\n")
	var b strings.Builder
	shown := 0
	for i := 0; i < len(w) || i < len(g); i++ {
		var lw, lg string
		if i < len(w) {
			lw = w[i]
		}
		if i < len(g) {
			lg = g[i]
		}
		if lw != lg {
			fmt.Fprintf(&b, "line %d:\n  want: %s\n  got:  %s\n", i+1, lw, lg)
			if shown++; shown >= 8 {
				b.WriteString("  ... (more diffs elided)\n")
				break
			}
		}
	}
	return b.String()
}

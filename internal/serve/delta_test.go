package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nevermind/internal/data"
	"nevermind/internal/rng"
)

// TestIngestTicketsLocksOncePerShard pins the batching fix: a ticket batch
// takes each shard's lock once, so a batch that finds the (single) shard
// busy records exactly one contended acquisition — the old per-record
// locking paid a lock round-trip per ticket and could contend on every one.
func TestIngestTicketsLocksOncePerShard(t *testing.T) {
	s := NewStore(1) // one shard: the whole batch is one lock acquisition
	m := newMetrics()
	s.setMetrics(m)
	contended := m.shardContended.With("ingest_tickets")

	const batches = 10
	const perBatch = 200
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // competing lock holder: makes batches actually wait
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s.shards[0].mu.Lock()
			time.Sleep(200 * time.Microsecond)
			s.shards[0].mu.Unlock()
		}
	}()
	total := 0
	for b := 0; b < batches; b++ {
		recs := make([]TicketRecord, perBatch)
		for i := range recs {
			recs[i] = TicketRecord{ID: b*perBatch + i, Line: data.LineID(i % 64), Day: i % data.DaysInYear}
		}
		n, err := s.IngestTickets(recs)
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	close(stop)
	wg.Wait()
	if got := contended.Value(); got > batches {
		t.Errorf("ticket ingest contended %d times for %d single-shard batches; the batch must lock once per shard", got, batches)
	}
	if total != batches*perBatch {
		t.Fatalf("ingested %d tickets, want %d", total, batches*perBatch)
	}
}

// TestSnapshotSingleflight pins the thundering-herd fix: concurrent readers
// missing the cache at the same version produce exactly one build — the rest
// wait for it and share the result.
func TestSnapshotSingleflight(t *testing.T) {
	s := NewStore(4)
	var builds atomic.Int64
	s.SetFaults(&FaultHooks{SnapshotBuild: func(version uint64) error {
		builds.Add(1)
		time.Sleep(time.Millisecond) // widen the window the herd would pile into
		return nil
	}})
	if _, err := s.IngestTests([]TestRecord{{Line: 1, Week: 3}, {Line: 9, Week: 3}}); err != nil {
		t.Fatal(err)
	}

	const readers = 16
	var wg sync.WaitGroup
	start := make(chan struct{})
	snaps := make([]*Snapshot, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			snaps[i] = s.Snapshot()
		}(i)
	}
	close(start)
	wg.Wait()
	if got := builds.Load(); got != 1 {
		t.Errorf("%d concurrent Snapshot calls ran %d builds, want 1", readers, got)
	}
	for i, sn := range snaps {
		if sn != snaps[0] {
			t.Fatalf("reader %d got a different snapshot pointer", i)
		}
	}
}

// TestLinesAtCached pins the /v1/rank hot-path fix: LinesAt returns the
// snapshot's precomputed per-week list — the same backing array on every
// call, no per-call population scan — and the list matches the presence
// matrix exactly.
func TestLinesAtCached(t *testing.T) {
	s := NewStore(2)
	if _, err := s.IngestTests([]TestRecord{
		{Line: 3, Week: 10}, {Line: 7, Week: 10}, {Line: 5, Week: 11},
	}); err != nil {
		t.Fatal(err)
	}
	sn := s.Snapshot()
	a := sn.LinesAt(10)
	b := sn.LinesAt(10)
	if len(a) != 2 || a[0] != 3 || a[1] != 7 {
		t.Fatalf("LinesAt(10) = %v, want [3 7]", a)
	}
	if &a[0] != &b[0] {
		t.Error("LinesAt rebuilt its result; want the cached slice")
	}
	if got := sn.LinesAt(-1); got != nil {
		t.Errorf("LinesAt(-1) = %v, want nil", got)
	}
	if got := sn.LinesAt(data.Weeks); got != nil {
		t.Errorf("LinesAt(Weeks) = %v, want nil", got)
	}
	for w := 0; w < data.Weeks; w++ {
		var want []data.LineID
		for _, l := range sn.Lines {
			if sn.Present[w][l] {
				want = append(want, l)
			}
		}
		got := sn.LinesAt(w)
		if len(got) != len(want) {
			t.Fatalf("week %d: LinesAt %v, presence scan %v", w, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("week %d: LinesAt %v, presence scan %v", w, got, want)
			}
		}
	}
}

// assertSnapshotsIdentical deep-compares two snapshots cell for cell: the
// delta-vs-full equivalence contract is bit-identity, not approximation.
func assertSnapshotsIdentical(t *testing.T, tag string, a, b *Snapshot) {
	t.Helper()
	if a.Version != b.Version {
		t.Fatalf("%s: versions %d vs %d", tag, a.Version, b.Version)
	}
	if a.DS.Generation != b.DS.Generation || a.DS.NumLines != b.DS.NumLines || a.DS.NumDSLAMs != b.DS.NumDSLAMs {
		t.Fatalf("%s: header diverged: gen %d/%d lines %d/%d dslams %d/%d", tag,
			a.DS.Generation, b.DS.Generation, a.DS.NumLines, b.DS.NumLines, a.DS.NumDSLAMs, b.DS.NumDSLAMs)
	}
	if len(a.Lines) != len(b.Lines) {
		t.Fatalf("%s: %d vs %d lines", tag, len(a.Lines), len(b.Lines))
	}
	for i := range a.Lines {
		if a.Lines[i] != b.Lines[i] {
			t.Fatalf("%s: Lines[%d] %d vs %d", tag, i, a.Lines[i], b.Lines[i])
		}
	}
	for l := 0; l < a.DS.NumLines; l++ {
		if a.DS.ProfileOf[l] != b.DS.ProfileOf[l] || a.DS.DSLAMOf[l] != b.DS.DSLAMOf[l] || a.DS.UsageOf[l] != b.DS.UsageOf[l] {
			t.Fatalf("%s: attrs diverged at line %d", tag, l)
		}
	}
	for w := 0; w < data.Weeks; w++ {
		la, lb := a.LinesAt(w), b.LinesAt(w)
		if len(la) != len(lb) {
			t.Fatalf("%s: week %d: %d vs %d present lines", tag, w, len(la), len(lb))
		}
		for i := range la {
			if la[i] != lb[i] {
				t.Fatalf("%s: week %d: LinesAt[%d] %d vs %d", tag, w, i, la[i], lb[i])
			}
		}
		for l := 0; l < a.DS.NumLines; l++ {
			if a.Present[w][l] != b.Present[w][l] {
				t.Fatalf("%s: presence diverged at (%d,%d)", tag, w, l)
			}
			if *a.DS.At(data.LineID(l), w) != *b.DS.At(data.LineID(l), w) {
				t.Fatalf("%s: grid cell diverged at (%d,%d)", tag, w, l)
			}
		}
	}
	if len(a.DS.Tickets) != len(b.DS.Tickets) {
		t.Fatalf("%s: %d vs %d tickets", tag, len(a.DS.Tickets), len(b.DS.Tickets))
	}
	for i := range a.DS.Tickets {
		if a.DS.Tickets[i] != b.DS.Tickets[i] {
			t.Fatalf("%s: Tickets[%d] %+v vs %+v", tag, i, a.DS.Tickets[i], b.DS.Tickets[i])
		}
	}
}

// TestDeltaSnapshotEquivalence is the delta-correctness property test:
// under randomized ingest sequences — growing populations (width-growth
// full rebuilds), overwritten cells, duplicate tickets, batches of every
// size — with rebuild faults injected a third of the time (so delta chains
// of every length get applied), a delta-derived snapshot must be
// bit-identical to a from-scratch rebuild of the same store state.
func TestDeltaSnapshotEquivalence(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			s := NewStore(4)
			s.setMetrics(newMetrics()) // feeds the build-kind counters asserted below
			var faultsOn atomic.Bool
			var seq atomic.Uint64
			faultsOn.Store(true)
			s.SetFaults(&FaultHooks{SnapshotBuild: func(version uint64) error {
				if faultsOn.Load() && rng.Derive(seed, 99, seq.Add(1)).Float64() < 0.33 {
					return Transient(fmt.Errorf("injected build fault"))
				}
				return nil
			}})
			r := rng.Derive(seed, 0, 0)
			maxLine := 8 // population grows as the run proceeds
			for step := 0; step < 120; step++ {
				switch r.Intn(4) {
				case 0, 1: // test batch, occasionally widening the grid
					if r.Bool(0.2) {
						maxLine += r.Intn(40)
					}
					n := 1 + r.Intn(24)
					recs := make([]TestRecord, n)
					for i := range recs {
						recs[i] = TestRecord{
							Line:    data.LineID(r.Intn(maxLine)),
							Week:    r.Intn(data.Weeks),
							Missing: r.Bool(0.2),
							F:       []float32{float32(step), float32(i)},
							Profile: uint8(r.Intn(len(data.Profiles))),
							DSLAM:   int32(r.Intn(6)),
							Usage:   float32(r.Float64()),
						}
					}
					if _, err := s.IngestTests(recs); err != nil {
						t.Fatal(err)
					}
				case 2: // ticket batch, with deliberate duplicates
					n := 1 + r.Intn(8)
					recs := make([]TicketRecord, n)
					for i := range recs {
						recs[i] = TicketRecord{
							// A small ID space re-serves identical tickets
							// across batches, exercising the dedup paths.
							ID:       r.Intn(64),
							Line:     data.LineID(r.Intn(maxLine)),
							Day:      r.Intn(data.DaysInYear),
							Category: uint8(r.Intn(int(data.CatOther) + 1)),
						}
					}
					if _, err := s.IngestTickets(recs); err != nil {
						t.Fatal(err)
					}
				case 3: // reader: advances the snapshot (or fails, growing the delta chain)
					s.Snapshot()
				}

				// A store with only tickets has no grid and serves a nil
				// snapshot by contract; checkpoints need at least one line.
				if (step%17 == 0 || step == 119) && s.NumLines() > 0 {
					// Checkpoint: force a fresh (delta-derived where possible)
					// snapshot, then a from-scratch rebuild of the same state.
					faultsOn.Store(false)
					inc := s.Snapshot()
					if inc == nil || inc.Version != s.Version() {
						t.Fatalf("step %d: no fresh snapshot with faults off", step)
					}
					s.ResetSnapshotCache()
					full := s.Snapshot()
					faultsOn.Store(true)
					assertSnapshotsIdentical(t, fmt.Sprintf("step %d", step), inc, full)
					if err := full.DS.Validate(); err != nil {
						t.Fatalf("step %d: full rebuild invalid: %v", step, err)
					}
					if err := inc.DS.Validate(); err != nil {
						t.Fatalf("step %d: delta snapshot invalid: %v", step, err)
					}
				}
			}
			if got := s.snapshotKindCount(); got.delta == 0 {
				t.Errorf("run never applied a delta (%d full builds); the property went untested", got.full)
			}
		})
	}
}

// snapshotKinds reports how many successful builds of each kind a store ran;
// test-only introspection backed by the same counters /metrics exports.
type snapshotKinds struct{ full, delta int64 }

func (s *Store) snapshotKindCount() snapshotKinds {
	if s.m == nil {
		return snapshotKinds{}
	}
	return snapshotKinds{
		full:  s.m.snapshotBuilds.With("full").Value(),
		delta: s.m.snapshotBuilds.With("delta").Value(),
	}
}

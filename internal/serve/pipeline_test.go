package serve

import (
	"context"
	"testing"

	"nevermind/internal/sim"
)

func TestPipelineRunsWeeks(t *testing.T) {
	ds, pred, _ := fixture(t)
	srv := newTestServer(t, Config{})
	src, err := sim.NewSource(ds, 40, 43)
	if err != nil {
		t.Fatal(err)
	}
	var reports []WeekReport
	pl, err := NewPipeline(srv, PipelineConfig{
		Source: SimFeed(src),
		OnWeek: func(r WeekReport) { reports = append(reports, r) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	if len(reports) != 4 {
		t.Fatalf("pipeline ran %d weeks, want 4", len(reports))
	}
	for i, r := range reports {
		if r.Week != 40+i {
			t.Fatalf("report %d covers week %d", i, r.Week)
		}
		if r.IngestedTests != ds.NumLines {
			t.Fatalf("week %d ingested %d tests, want %d", r.Week, r.IngestedTests, ds.NumLines)
		}
		if r.Submitted != pred.Cfg.BudgetN {
			t.Fatalf("week %d submitted %d predictions, budget %d", r.Week, r.Submitted, pred.Cfg.BudgetN)
		}
	}
	// The first batch carries the full prior ticket history.
	if reports[0].IngestedTickets == 0 {
		t.Fatal("first week ingested no tickets")
	}
	if srv.Store().LatestWeek() != 43 {
		t.Fatalf("store latest week %d after the run", srv.Store().LatestWeek())
	}
	if srv.Store().NumLines() != ds.NumLines {
		t.Fatalf("store holds %d lines", srv.Store().NumLines())
	}

	// ATDS worked jobs: customer tickets always outrank predictions, and the
	// totals accumulate across weeks.
	tot := pl.Totals()
	if tot.Customer == 0 {
		t.Fatal("no customer jobs worked across four weeks")
	}
	if tot.Customer+tot.Predicted+tot.ExpiredPredicted == 0 {
		t.Fatal("pipeline produced no outcomes")
	}
	if srv.m.pipelineTicks.Value() != 4 || srv.m.pipelineWeek.Value() != 43 {
		t.Fatalf("pipeline metrics: ticks=%d week=%d",
			srv.m.pipelineTicks.Value(), srv.m.pipelineWeek.Value())
	}
	if srv.m.pipelineSubmitted.Value() != int64(4*pred.Cfg.BudgetN) {
		t.Fatalf("submitted metric %d", srv.m.pipelineSubmitted.Value())
	}

	// The source is exhausted: another step is a no-op.
	if ok, err := pl.Step(); ok || err != nil {
		t.Fatalf("step on exhausted source: %v, %v", ok, err)
	}
}

func TestPipelineCancellation(t *testing.T) {
	ds, _, _ := fixture(t)
	srv := newTestServer(t, Config{})
	src, err := sim.NewSource(ds, 40, 51)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := NewPipeline(srv, PipelineConfig{Source: SimFeed(src)})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := pl.Run(ctx); err == nil {
		t.Fatal("cancelled run returned nil")
	}
	if src.Remaining() != 12 {
		t.Fatalf("cancelled run consumed the source: %d remaining", src.Remaining())
	}
}

func TestPipelineRequiresSource(t *testing.T) {
	srv := newTestServer(t, Config{})
	if _, err := NewPipeline(srv, PipelineConfig{}); err == nil {
		t.Fatal("pipeline built without a source")
	}
}

//go:build race

package serve

// raceEnabled reports whether the race detector is compiled in; its
// instrumentation adds allocations, so exact alloc-count assertions skip.
const raceEnabled = true

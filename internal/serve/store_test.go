package serve

import (
	"testing"

	"nevermind/internal/data"
)

func TestStoreShardSizing(t *testing.T) {
	if n := NewStore(3).NumShards(); n != 4 {
		t.Fatalf("3 shards rounded to %d, want 4", n)
	}
	if n := NewStore(0).NumShards(); n < 1 {
		t.Fatalf("default store has %d shards", n)
	}
	if NewStore(8).NumShards() != 8 {
		t.Fatal("power-of-two count changed")
	}
}

func TestStoreIngestAndSnapshot(t *testing.T) {
	s := NewStore(4)
	if s.Snapshot() != nil {
		t.Fatal("empty store produced a snapshot")
	}
	if s.LatestWeek() != -1 {
		t.Fatalf("empty store latest week %d", s.LatestWeek())
	}

	recs := []TestRecord{
		{Line: 7, Week: 10, F: []float32{1, 2, 3}, Profile: 1, DSLAM: 2, Usage: 0.5},
		{Line: 3, Week: 10, Missing: true},
		// Non-Missing records re-state the static attributes (last write
		// wins); Missing ones leave them alone.
		{Line: 7, Week: 11, F: []float32{4}, Profile: 1, DSLAM: 2, Usage: 0.5},
	}
	n, err := s.IngestTests(recs)
	if err != nil || n != 3 {
		t.Fatalf("ingest = %d, %v", n, err)
	}
	if s.NumLines() != 2 || s.LatestWeek() != 11 || s.Version() != 1 {
		t.Fatalf("lines=%d latest=%d version=%d", s.NumLines(), s.LatestWeek(), s.Version())
	}
	total := 0
	for _, c := range s.ShardSizes() {
		total += c
	}
	if total != 2 {
		t.Fatalf("shard sizes sum to %d", total)
	}

	sn := s.Snapshot()
	if sn == nil {
		t.Fatal("no snapshot after ingest")
	}
	if sn.DS.NumLines != 8 {
		t.Fatalf("snapshot grid covers %d lines, want max id + 1 = 8", sn.DS.NumLines)
	}
	if err := sn.DS.Validate(); err != nil {
		t.Fatalf("snapshot dataset invalid: %v", err)
	}
	m := sn.DS.At(7, 10)
	if m.Missing || m.F[0] != 1 || m.F[1] != 2 || m.F[2] != 3 || m.F[3] != 0 {
		t.Fatalf("ingested measurement mangled: %+v", m)
	}
	if got := sn.DS.ProfileOf[7]; got != 1 {
		t.Fatalf("profile %d", got)
	}
	if !sn.DS.At(3, 10).Missing {
		t.Fatal("modem-off record lost its Missing flag")
	}
	// Never-ingested cells are dense but missing, and absent from Present.
	if !sn.DS.At(5, 10).Missing {
		t.Fatal("never-ingested cell not missing")
	}
	if sn.Present[10][5] || !sn.Present[10][3] || !sn.Present[11][7] || sn.Present[11][3] {
		t.Fatal("presence matrix wrong")
	}
	if got := sn.LinesAt(10); len(got) != 2 || got[0] != 3 || got[1] != 7 {
		t.Fatalf("LinesAt(10) = %v", got)
	}
	if got := sn.LinesAt(11); len(got) != 1 || got[0] != 7 {
		t.Fatalf("LinesAt(11) = %v", got)
	}
	if sn.LinesAt(-1) != nil || sn.LinesAt(data.Weeks) != nil {
		t.Fatal("out-of-range week returned lines")
	}

	// The snapshot is cached until the next ingest...
	if s.Snapshot() != sn {
		t.Fatal("unchanged store rebuilt its snapshot")
	}
	// ...an overwrite bumps the version and rebuilds...
	if _, err := s.IngestTests([]TestRecord{{Line: 7, Week: 10, F: []float32{9}, Profile: 1, DSLAM: 2, Usage: 0.5}}); err != nil {
		t.Fatal(err)
	}
	sn2 := s.Snapshot()
	if sn2 == sn {
		t.Fatal("ingest did not invalidate the snapshot")
	}
	if sn2.DS.At(7, 10).F[0] != 9 {
		t.Fatal("re-ingested week did not overwrite")
	}
	// ...and the old snapshot is untouched (immutability).
	if sn.DS.At(7, 10).F[0] != 1 {
		t.Fatal("old snapshot mutated by ingest")
	}
	// Snapshots carry the salted store version as the dataset generation, so
	// the feature caches downstream can never serve one version's encodes
	// for another.
	if sn.DS.Generation != s.genSalt|sn.Version || sn2.DS.Generation != s.genSalt|sn2.Version || sn.DS.Generation == sn2.DS.Generation {
		t.Fatalf("snapshot generations %d/%d for versions %d/%d", sn.DS.Generation, sn2.DS.Generation, sn.Version, sn2.Version)
	}

	// A Missing record for a known line (modem off that week) must not zero
	// its static attributes.
	if _, err := s.IngestTests([]TestRecord{{Line: 7, Week: 12, Missing: true}}); err != nil {
		t.Fatal(err)
	}
	sn3 := s.Snapshot()
	if !sn3.DS.At(7, 12).Missing {
		t.Fatal("Missing record lost its flag")
	}
	if sn3.DS.ProfileOf[7] != 1 || sn3.DS.DSLAMOf[7] != 2 || sn3.DS.UsageOf[7] != 0.5 {
		t.Fatalf("Missing record clobbered static attributes: profile=%d dslam=%d usage=%v",
			sn3.DS.ProfileOf[7], sn3.DS.DSLAMOf[7], sn3.DS.UsageOf[7])
	}
}

func TestStoreIngestValidation(t *testing.T) {
	s := NewStore(2)
	long := make([]float32, data.NumBasicFeatures+1)
	bad := [][]TestRecord{
		{{Line: -1, Week: 0}},
		{{Line: MaxLineID, Week: 0}},
		{{Line: 0, Week: -1}},
		{{Line: 0, Week: data.Weeks}},
		{{Line: 0, Week: 0, F: long}},
		{{Line: 0, Week: 0, Profile: uint8(len(data.Profiles))}},
		{{Line: 0, Week: 0, DSLAM: -1}},
		// A bad record anywhere in the batch rejects the whole batch.
		{{Line: 0, Week: 0}, {Line: 0, Week: data.Weeks}},
	}
	for i, recs := range bad {
		if _, err := s.IngestTests(recs); err == nil {
			t.Fatalf("bad batch %d accepted", i)
		}
	}
	if s.Version() != 0 || s.NumLines() != 0 {
		t.Fatal("rejected batches left state behind")
	}
	if n, err := s.IngestTests(nil); err != nil || n != 0 {
		t.Fatalf("empty batch: %d, %v", n, err)
	}
	if s.Version() != 0 {
		t.Fatal("empty batch bumped the version")
	}
}

func TestStoreTicketsDedupAndValidation(t *testing.T) {
	s := NewStore(2)
	recs := []TicketRecord{
		{ID: 1, Line: 4, Day: 30, Category: 0},
		{ID: 2, Line: 5, Day: 10, Category: 2},
		{ID: 1, Line: 4, Day: 30, Category: 0}, // exact duplicate
	}
	n, err := s.IngestTickets(recs)
	if err != nil || n != 2 {
		t.Fatalf("ingest = %d, %v", n, err)
	}
	if n, _ := s.IngestTickets(recs[:1]); n != 0 {
		t.Fatalf("replay ingested %d tickets", n)
	}
	bad := []TicketRecord{
		{ID: 3, Line: -1, Day: 0},
		{ID: 3, Line: 0, Day: -1},
		{ID: 3, Line: 0, Day: data.DaysInYear},
		{ID: 3, Line: 0, Day: 0, Category: 200},
	}
	for i, r := range bad {
		if _, err := s.IngestTickets([]TicketRecord{r}); err == nil {
			t.Fatalf("bad ticket %d accepted", i)
		}
	}

	// Tickets alone produce no snapshot (no line states), but combined with
	// a test record they land sorted by day in the dataset.
	if _, err := s.IngestTests([]TestRecord{{Line: 5, Week: 2}}); err != nil {
		t.Fatal(err)
	}
	sn := s.Snapshot()
	if sn == nil {
		t.Fatal("no snapshot")
	}
	if len(sn.DS.Tickets) != 2 {
		t.Fatalf("%d tickets in snapshot", len(sn.DS.Tickets))
	}
	if sn.DS.Tickets[0].Day != 10 || sn.DS.Tickets[1].Day != 30 {
		t.Fatalf("tickets unsorted: %+v", sn.DS.Tickets)
	}
}

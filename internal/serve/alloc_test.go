package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

// steadyStateAllocBudget is the per-request allocation ceiling for the
// scoring hot paths once caches are warm. The handlers themselves allocate
// nothing (pooled scratch, prerendered fragments); the budget covers what
// net/http's mux and instrumentation inherently cost per request.
const steadyStateAllocBudget = 10

// benchSink is a reusable ResponseWriter for alloc measurements:
// httptest.NewRecorder allocates per request, which would drown the signal.
type benchSink struct {
	h    http.Header
	code int
	n    int
}

func newBenchSink() *benchSink           { return &benchSink{h: make(http.Header, 4)} }
func (w *benchSink) Header() http.Header { return w.h }
func (w *benchSink) WriteHeader(c int)   { w.code = c }
func (w *benchSink) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}
func (w *benchSink) reset() { w.code = 0; w.n = 0 }

// allocServer builds a served store with the fixture's recent weeks loaded,
// for steady-state measurements.
func allocServer(t *testing.T) *Server {
	t.Helper()
	srv := newTestServer(t, Config{Shards: 4})
	ds, _, _ := fixture(t)
	tests, tickets := recordsFor(ds, 30, 43)
	if _, err := srv.Store().IngestTests(tests); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Store().IngestTickets(tickets); err != nil {
		t.Fatal(err)
	}
	return srv
}

func TestScoreSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc accounting run")
	}
	if raceEnabled {
		t.Skip("race instrumentation inflates alloc counts")
	}
	srv := allocServer(t)
	ds, _, _ := fixture(t)

	type ex struct {
		Line int `json:"line"`
		Week int `json:"week"`
	}
	examples := make([]ex, ds.NumLines)
	for l := range examples {
		examples[l] = ex{Line: l, Week: 40}
	}
	body, err := json.Marshal(map[string]any{"examples": examples})
	if err != nil {
		t.Fatal(err)
	}
	rd := bytes.NewReader(body)
	req := httptest.NewRequest(http.MethodPost, "/v1/score", rd)
	sink := newBenchSink()
	handler := srv.Handler()
	post := func() {
		rd.Seek(0, io.SeekStart)
		sink.reset()
		handler.ServeHTTP(sink, req)
		if sink.code != http.StatusOK {
			t.Fatalf("score: status %d", sink.code)
		}
	}
	post() // builds the snapshot, the week table and the pooled scratch
	post()
	if allocs := testing.AllocsPerRun(50, post); allocs > steadyStateAllocBudget {
		t.Errorf("steady-state /v1/score allocates %.1f/op, budget %d", allocs, steadyStateAllocBudget)
	}
}

func TestRankSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc accounting run")
	}
	if raceEnabled {
		t.Skip("race instrumentation inflates alloc counts")
	}
	srv := allocServer(t)

	req := httptest.NewRequest(http.MethodGet, "/v1/rank", nil)
	sink := newBenchSink()
	handler := srv.Handler()
	get := func() {
		sink.reset()
		handler.ServeHTTP(sink, req)
		if sink.code != http.StatusOK {
			t.Fatalf("rank: status %d", sink.code)
		}
	}
	get()
	get()
	if allocs := testing.AllocsPerRun(50, get); allocs > steadyStateAllocBudget {
		t.Errorf("steady-state /v1/rank allocates %.1f/op, budget %d", allocs, steadyStateAllocBudget)
	}
}

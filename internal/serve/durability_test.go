package serve

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"nevermind/internal/data"
	"nevermind/internal/obs"
	"nevermind/internal/wal"
)

// durTestBatch builds a deterministic ingest batch for step i: mostly test
// records, every third step a ticket batch.
func durTestBatch(i int) ([]TestRecord, []TicketRecord) {
	if i%3 == 2 {
		var ts []TicketRecord
		for j := 0; j < 4; j++ {
			ts = append(ts, TicketRecord{
				ID:       i*100 + j,
				Line:     data.LineID((i*13 + j*7) % 300),
				Day:      (i*3 + j) % data.DaysInYear,
				Category: uint8((i + j) % int(data.CatOther+1)),
			})
		}
		return nil, ts
	}
	var rs []TestRecord
	for j := 0; j < 8; j++ {
		line := data.LineID((i*17 + j*11) % 300)
		f := make([]float32, data.NumBasicFeatures)
		for k := range f {
			f[k] = float32(i)*0.1 + float32(j) + float32(k)*0.01
		}
		rs = append(rs, TestRecord{
			Line: line, Week: 30 + i%8, Missing: (i+j)%7 == 0, F: f,
			Profile: uint8((i + j) % len(data.Profiles)),
			DSLAM:   int32(line) % 16,
			Usage:   float32(i%5) * 0.2,
		})
	}
	return rs, nil
}

func ingestSteps(t *testing.T, s *Store, lo, hi int) {
	t.Helper()
	for i := lo; i < hi; i++ {
		tests, tickets := durTestBatch(i)
		if tests != nil {
			if _, err := s.IngestTests(tests); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
		} else {
			if _, err := s.IngestTickets(tickets); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
		}
	}
}

// assertSameContent compares two snapshots through the serving surface,
// ignoring Generation: restored stores carry a different process salt, so
// generations legitimately differ while content must be bit-identical.
func assertSameContent(t *testing.T, a, b *Snapshot) {
	t.Helper()
	if a == nil || b == nil {
		t.Fatalf("nil snapshot: %v vs %v", a, b)
	}
	if a.Version != b.Version {
		t.Fatalf("versions diverged: %d vs %d", a.Version, b.Version)
	}
	if a.DS.NumLines != b.DS.NumLines || a.DS.NumDSLAMs != b.DS.NumDSLAMs {
		t.Fatalf("shape diverged: lines %d/%d dslams %d/%d", a.DS.NumLines, b.DS.NumLines, a.DS.NumDSLAMs, b.DS.NumDSLAMs)
	}
	if !reflect.DeepEqual(a.Lines, b.Lines) {
		t.Fatal("line sets diverged")
	}
	if !reflect.DeepEqual(a.DS.Tickets, b.DS.Tickets) {
		t.Fatalf("tickets diverged: %d vs %d", len(a.DS.Tickets), len(b.DS.Tickets))
	}
	if !reflect.DeepEqual(a.DS.ProfileOf, b.DS.ProfileOf) ||
		!reflect.DeepEqual(a.DS.DSLAMOf, b.DS.DSLAMOf) ||
		!reflect.DeepEqual(a.DS.UsageOf, b.DS.UsageOf) {
		t.Fatal("line attributes diverged")
	}
	for w := 0; w < data.Weeks; w++ {
		if !reflect.DeepEqual(a.LinesAt(w), b.LinesAt(w)) {
			t.Fatalf("week %d line lists diverged", w)
		}
		for l := 0; l < a.DS.NumLines; l++ {
			if a.Present[w][l] != b.Present[w][l] {
				t.Fatalf("presence diverged at week %d line %d", w, l)
			}
			if *a.DS.At(data.LineID(l), w) != *b.DS.At(data.LineID(l), w) {
				t.Fatalf("grid cell diverged at week %d line %d", w, l)
			}
		}
	}
}

// recover opens durability on a fresh store over dir and returns both.
func recoverStore(t *testing.T, dir string, cfg DurabilityConfig) (*Store, *Durability) {
	t.Helper()
	cfg.Dir = dir
	s := NewStore(4)
	d, err := OpenDurability(s, nil, cfg)
	if err != nil {
		t.Fatalf("OpenDurability: %v", err)
	}
	return s, d
}

func TestDurabilityRecoverFromWALOnly(t *testing.T) {
	dir := t.TempDir()
	s1, d1 := recoverStore(t, dir, DurabilityConfig{Sync: wal.SyncNever, CheckpointEvery: -1})
	ingestSteps(t, s1, 0, 30)
	want := s1.Snapshot()
	if err := d1.Close(); err != nil {
		t.Fatal(err)
	}
	// Close with checkpoints disabled by cadence still writes the final
	// checkpoint; delete it to force a pure WAL replay.
	cks, _ := wal.Checkpoints(dir)
	for _, c := range cks {
		os.Remove(c.Path)
	}

	s2, d2 := recoverStore(t, dir, DurabilityConfig{Sync: wal.SyncNever, CheckpointEvery: -1})
	defer d2.Close()
	if got := d2.Recovery(); got.ReplayedRecords == 0 || got.CheckpointVersion != 0 {
		t.Fatalf("recovery stats %+v: want pure WAL replay", got)
	}
	if s2.Version() != s1.Version() {
		t.Fatalf("version diverged: %d vs %d", s2.Version(), s1.Version())
	}
	if s2.LatestWeek() != s1.LatestWeek() || s2.GridLines() != s1.GridLines() {
		t.Fatalf("watermarks diverged: week %d/%d lines %d/%d",
			s2.LatestWeek(), s1.LatestWeek(), s2.GridLines(), s1.GridLines())
	}
	assertSameContent(t, want, s2.Snapshot())

	// The recovered store keeps logging: ingest more on both and stay equal.
	ingestSteps(t, s1, 30, 36)
	ingestSteps(t, s2, 30, 36)
	assertSameContent(t, s1.Snapshot(), s2.Snapshot())
}

func TestDurabilityCheckpointPlusTailRecovery(t *testing.T) {
	dir := t.TempDir()
	s1, d1 := recoverStore(t, dir, DurabilityConfig{Sync: wal.SyncNever, CheckpointEvery: -1})
	ingestSteps(t, s1, 0, 20)
	d1.checkpoint() // synchronous, deterministic
	if d1.LastCheckpointVersion() != s1.Version() {
		t.Fatalf("checkpoint at %d, store at %d", d1.LastCheckpointVersion(), s1.Version())
	}
	ingestSteps(t, s1, 20, 33) // tail past the checkpoint
	want := s1.Snapshot()
	wantV := s1.Version()
	// Crash: no final checkpoint, no final sync beyond what appends did.
	d1.Abandon()

	s2, d2 := recoverStore(t, dir, DurabilityConfig{Sync: wal.SyncNever})
	defer d2.Close()
	st := d2.Recovery()
	if st.CheckpointVersion == 0 {
		t.Fatalf("recovery ignored the checkpoint: %+v", st)
	}
	if st.ReplayedRecords == 0 {
		t.Fatalf("recovery replayed nothing past the checkpoint: %+v", st)
	}
	if s2.Version() != wantV {
		t.Fatalf("version %d after recovery, want %d", s2.Version(), wantV)
	}
	assertSameContent(t, want, s2.Snapshot())
}

func TestDurabilityCorruptNewestCheckpointFallsBack(t *testing.T) {
	dir := t.TempDir()
	s1, d1 := recoverStore(t, dir, DurabilityConfig{Sync: wal.SyncNever, CheckpointEvery: -1, KeepCheckpoints: 2})
	ingestSteps(t, s1, 0, 10)
	d1.checkpoint()
	ingestSteps(t, s1, 10, 20)
	d1.checkpoint()
	ingestSteps(t, s1, 20, 24)
	want := s1.Snapshot()
	wantV := s1.Version()
	d1.Abandon()

	cks, err := wal.Checkpoints(dir)
	if err != nil || len(cks) != 2 {
		t.Fatalf("want 2 checkpoints, got %d (%v)", len(cks), err)
	}
	// Corrupt the newest checkpoint mid-file.
	b, _ := os.ReadFile(cks[1].Path)
	b[len(b)/2] ^= 0xff
	if err := os.WriteFile(cks[1].Path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, d2 := recoverStore(t, dir, DurabilityConfig{Sync: wal.SyncNever})
	defer d2.Close()
	st := d2.Recovery()
	if st.SkippedCheckpoints != 1 {
		t.Fatalf("skipped %d checkpoints, want 1 (%+v)", st.SkippedCheckpoints, st)
	}
	if st.CheckpointVersion != cks[0].Version {
		t.Fatalf("recovered from checkpoint %d, want the older %d", st.CheckpointVersion, cks[0].Version)
	}
	if s2.Version() != wantV {
		t.Fatalf("version %d after fallback recovery, want %d", s2.Version(), wantV)
	}
	assertSameContent(t, want, s2.Snapshot())
}

func TestDurabilityTornWALTail(t *testing.T) {
	dir := t.TempDir()
	s1, d1 := recoverStore(t, dir, DurabilityConfig{Sync: wal.SyncNever, CheckpointEvery: -1})
	ingestSteps(t, s1, 0, 12)
	if err := d1.log.Sync(); err != nil {
		t.Fatal(err)
	}
	d1.Abandon()
	cks, _ := wal.Checkpoints(dir)
	for _, c := range cks {
		os.Remove(c.Path)
	}
	// Tear the last few bytes off the newest segment: the final record is
	// lost, everything before it must recover.
	var segs []string
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".wal" {
			segs = append(segs, filepath.Join(dir, e.Name()))
		}
	}
	if len(segs) == 0 {
		t.Fatal("no segments on disk")
	}
	last := segs[len(segs)-1]
	st, _ := os.Stat(last)
	if err := os.Truncate(last, st.Size()-4); err != nil {
		t.Fatal(err)
	}

	s2, d2 := recoverStore(t, dir, DurabilityConfig{Sync: wal.SyncNever})
	defer d2.Close()
	rec := d2.Recovery()
	if rec.TruncatedBytes == 0 {
		t.Fatalf("repair reported no truncation: %+v", rec)
	}
	if s2.Version() != s1.Version()-1 {
		t.Fatalf("recovered version %d, want %d (one torn record)", s2.Version(), s1.Version()-1)
	}
	// Re-ingesting the lost step converges the stores exactly (tests
	// overwrite per cell, tickets dedup) — the pipeline's re-delivery
	// contract does this for real feeds.
	ingestSteps(t, s2, 11, 12)
	assertSameContent(t, s1.Snapshot(), s2.Snapshot())
}

func TestDurabilityWALTruncatedThroughOldestCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s1, d1 := recoverStore(t, dir, DurabilityConfig{
		Sync: wal.SyncNever, CheckpointEvery: -1, KeepCheckpoints: 2, SegmentBytes: 2048,
	})
	for i := 0; i < 60; i += 20 {
		ingestSteps(t, s1, i, i+20)
		d1.checkpoint()
	}
	segs := d1.log.Segments()
	if len(segs) == 0 {
		t.Fatal("no segments")
	}
	cks, _ := wal.Checkpoints(dir)
	if len(cks) != 2 {
		t.Fatalf("want 2 retained checkpoints, got %d", len(cks))
	}
	// Truncation must never cut past the oldest retained checkpoint: a
	// record with version > cks[0].Version has to survive in the log.
	if first := segs[0].FirstVersion; first > cks[0].Version+1 {
		t.Fatalf("oldest surviving record is v%d, past oldest checkpoint v%d — newest-checkpoint corruption would be unrecoverable", first, cks[0].Version)
	}
	want := s1.Snapshot()
	d1.Abandon()

	// Even with the newest checkpoint corrupt, the older one + surviving
	// tail reaches the exact same state.
	b, _ := os.ReadFile(cks[1].Path)
	b[len(b)-20] ^= 0x08
	os.WriteFile(cks[1].Path, b, 0o644)
	s2, d2 := recoverStore(t, dir, DurabilityConfig{Sync: wal.SyncNever})
	defer d2.Close()
	if s2.Version() != s1.Version() {
		t.Fatalf("version %d, want %d", s2.Version(), s1.Version())
	}
	assertSameContent(t, want, s2.Snapshot())
}

func TestDurabilityMetricsRegistered(t *testing.T) {
	dir := t.TempDir()
	s := NewStore(2)
	reg := obs.NewRegistry()
	d, err := OpenDurability(s, reg, DurabilityConfig{Dir: dir, Sync: wal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ingestSteps(t, s, 0, 5)
	var buf []byte
	w := &sliceWriter{&buf}
	if err := reg.WritePrometheus(w); err != nil {
		t.Fatal(err)
	}
	text := string(buf)
	for _, name := range []string{
		"nevermind_wal_records_total", "nevermind_wal_lag_records",
		"nevermind_wal_last_version", "nevermind_checkpoint_last_version",
		"nevermind_recovery_duration_seconds", "nevermind_recovery_replayed_records",
	} {
		if !containsStr(text, name) {
			t.Fatalf("metric %s missing from exposition", name)
		}
	}
	if !containsStr(text, "nevermind_wal_records_total 5") {
		t.Fatalf("wal_records_total should read 5:\n%s", text)
	}
}

type sliceWriter struct{ b *[]byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	*w.b = append(*w.b, p...)
	return len(p), nil
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

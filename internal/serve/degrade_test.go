package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"nevermind/internal/data"
	"nevermind/internal/sim"
)

// flakySource scripts a fault sequence against the Source contract: each
// entry of script describes what the next Next call does to the current
// week. It re-serves a week until an entry delivers it cleanly.
type flakySource struct {
	inner  Source
	script []sourceFault // consumed one per Next; empty = clean
	cur    *sim.Batch
}

type sourceFault int

const (
	deliverClean sourceFault = iota
	failTransient
	failTerminal
	deliverCorrupt // out-of-range week in one record: store must reject whole
)

func (f *flakySource) Remaining() int {
	n := f.inner.Remaining()
	if f.cur != nil {
		n++
	}
	return n
}

func (f *flakySource) Next() (sim.Batch, bool, error) {
	if f.cur == nil {
		b, ok, err := f.inner.Next()
		if !ok || err != nil {
			return b, ok, err
		}
		f.cur = &b
	}
	mode := deliverClean
	if len(f.script) > 0 {
		mode, f.script = f.script[0], f.script[1:]
	}
	switch mode {
	case failTransient:
		return sim.Batch{}, true, Transient(errors.New("feed outage"))
	case failTerminal:
		return sim.Batch{}, true, errors.New("feed gone for good")
	case deliverCorrupt:
		bad := *f.cur
		bad.Tests = append([]sim.LineTest(nil), f.cur.Tests...)
		bad.Tests[0].M.Week = data.Weeks
		return bad, true, nil
	}
	b := *f.cur
	f.cur = nil
	return b, true, nil
}

// TestPipelineRetriesTransientFaults is the regression for the old
// behaviour where any source error was fatal for the week: transient pull
// errors and corrupt (validation-rejected) batches must both be retried,
// and the week must complete exactly once with the same result a clean run
// gets.
func TestPipelineRetriesTransientFaults(t *testing.T) {
	ds, _, _ := fixture(t)

	run := func(script []sourceFault) (*Server, []WeekReport, []RetryEvent, error) {
		srv := newTestServer(t, Config{})
		src, err := sim.NewSource(ds, 40, 42)
		if err != nil {
			t.Fatal(err)
		}
		var reports []WeekReport
		var retries []RetryEvent
		pl, err := NewPipeline(srv, PipelineConfig{
			Source:  &flakySource{inner: SimFeed(src), script: script},
			Sleep:   func(time.Duration) {},
			OnWeek:  func(r WeekReport) { reports = append(reports, r) },
			OnRetry: func(e RetryEvent) { retries = append(retries, e) },
		})
		if err != nil {
			t.Fatal(err)
		}
		var runErr error
		for {
			ok, err := pl.Step()
			if err != nil {
				runErr = err
				break
			}
			if !ok {
				break
			}
		}
		return srv, reports, retries, runErr
	}

	clean, cleanReports, _, err := run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cleanReports) != 3 {
		t.Fatalf("clean run covered %d weeks", len(cleanReports))
	}

	// Two transient outages, then a corrupt delivery, spread over the run.
	script := []sourceFault{failTransient, deliverClean, deliverCorrupt, failTransient, deliverClean}
	srv, reports, retries, err := run(script)
	if err != nil {
		t.Fatalf("faulty run died: %v", err)
	}
	if len(reports) != 3 {
		t.Fatalf("faulty run covered %d weeks, want 3", len(reports))
	}
	if len(retries) != 3 {
		t.Fatalf("observed %d retries, want 3", len(retries))
	}
	for i, r := range reports {
		if r.Week != 40+i {
			t.Fatalf("week %d dispatched out of order (or twice): %+v", r.Week, reports)
		}
	}
	// Faults cleared, so the converged state matches the clean run exactly.
	for i := range reports {
		if reports[i].Stats != cleanReports[i].Stats || reports[i].Submitted != cleanReports[i].Submitted {
			t.Fatalf("week %d diverged from clean run:\nfaulty %+v\nclean  %+v",
				reports[i].Week, reports[i], cleanReports[i])
		}
	}
	snA, snB := srv.Store().Snapshot(), clean.Store().Snapshot()
	if snA.DS.NumLines != snB.DS.NumLines || len(snA.DS.Tickets) != len(snB.DS.Tickets) {
		t.Fatal("stores diverged after faults cleared")
	}
	if got := srv.m.pipelineRetries.Value(); got != 3 {
		t.Fatalf("pipelineRetries = %d", got)
	}

	// Backoff: every retry carries a positive, bounded, jittered delay.
	for _, e := range retries {
		if e.Backoff <= 0 || e.Backoff > 2*time.Second {
			t.Fatalf("retry backoff %v out of bounds", e.Backoff)
		}
	}

	// A terminal error still stops the loop (and names the week).
	_, _, _, err = run([]sourceFault{failTerminal})
	if err == nil || IsTransient(err) {
		t.Fatalf("terminal fault survived: %v", err)
	}

	// A fault that never clears exhausts the bounded budget rather than
	// spinning forever.
	persistent := make([]sourceFault, 64)
	for i := range persistent {
		persistent[i] = failTransient
	}
	_, _, _, err = run(persistent)
	if err == nil {
		t.Fatal("unbounded retry: persistent fault did not error out")
	}
}

// TestPipelineRetriesInjectedIngestFaults drives the store-ingest fault
// hook directly: the same validated batch must be re-ingested (not
// re-pulled) and the week completes once.
func TestPipelineRetriesInjectedIngestFaults(t *testing.T) {
	ds, _, _ := fixture(t)
	var fails int
	hooks := &FaultHooks{
		IngestTests: func(n int) error {
			if fails < 2 {
				fails++
				return Transient(errors.New("ingest hiccup"))
			}
			return nil
		},
	}
	srv := newTestServer(t, Config{Faults: hooks})
	src, err := sim.NewSource(ds, 40, 40)
	if err != nil {
		t.Fatal(err)
	}
	var reports []WeekReport
	pl, err := NewPipeline(srv, PipelineConfig{
		Source: SimFeed(src),
		Sleep:  func(time.Duration) {},
		OnWeek: func(r WeekReport) { reports = append(reports, r) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Run(t.Context()); err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 || reports[0].Retries != 2 {
		t.Fatalf("reports = %+v", reports)
	}
	if reports[0].IngestedTests != ds.NumLines {
		t.Fatalf("week ingested %d tests after retries", reports[0].IngestedTests)
	}
}

// TestPipelineRetriesStaleSnapshot makes rebuilds fail a few times after
// ingest: the pipeline must not rank over the stale snapshot, and must
// retry until the rebuild lands.
func TestPipelineRetriesStaleSnapshot(t *testing.T) {
	ds, _, _ := fixture(t)
	var mu sync.Mutex
	fails := 0
	hooks := &FaultHooks{
		SnapshotBuild: func(version uint64) error {
			mu.Lock()
			defer mu.Unlock()
			if fails < 2 {
				fails++
				return Transient(errors.New("rebuild fault"))
			}
			return nil
		},
	}
	srv := newTestServer(t, Config{Faults: hooks})
	src, err := sim.NewSource(ds, 40, 40)
	if err != nil {
		t.Fatal(err)
	}
	var reports []WeekReport
	pl, err := NewPipeline(srv, PipelineConfig{
		Source: SimFeed(src),
		Sleep:  func(time.Duration) {},
		OnWeek: func(r WeekReport) { reports = append(reports, r) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Run(t.Context()); err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 || reports[0].Retries != 2 {
		t.Fatalf("reports = %+v", reports)
	}
	sn := srv.Store().Snapshot()
	if sn == nil || sn.Version != srv.Store().Version() {
		t.Fatal("pipeline completed without a fresh snapshot")
	}
	if srv.Store().BuildFailures() != 2 {
		t.Fatalf("build failures = %d", srv.Store().BuildFailures())
	}
}

// TestStoreServesStaleSnapshotOnBuildFailure pins the API-side degradation
// contract: while rebuilds fail, readers get the last good snapshot (never
// nil, never torn) and the staleness gauge reports the lag.
func TestStoreServesStaleSnapshotOnBuildFailure(t *testing.T) {
	failing := false
	s := NewStore(2)
	s.SetFaults(&FaultHooks{SnapshotBuild: func(version uint64) error {
		if failing {
			return Transient(errors.New("rebuild fault"))
		}
		return nil
	}})
	if _, err := s.IngestTests([]TestRecord{{Line: 1, Week: 10, F: []float32{1}}}); err != nil {
		t.Fatal(err)
	}
	good := s.Snapshot()
	if good == nil || good.Version != 1 {
		t.Fatalf("snapshot = %+v", good)
	}
	failing = true
	if _, err := s.IngestTests([]TestRecord{{Line: 2, Week: 11, F: []float32{2}}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		sn := s.Snapshot()
		if sn != good {
			t.Fatalf("degraded read %d did not serve the last good snapshot", i)
		}
	}
	if s.SnapshotLag() != 1 || s.BuildFailures() != 3 {
		t.Fatalf("lag=%d failures=%d", s.SnapshotLag(), s.BuildFailures())
	}
	failing = false
	sn := s.Snapshot()
	if sn == nil || sn.Version != 2 || s.SnapshotLag() != 0 {
		t.Fatal("store did not recover once rebuilds healed")
	}
}

// TestLoadShed pins the admission gate: with MaxInflight=1 and a request
// parked in the handler, the next API request gets 503 + Retry-After while
// the monitoring endpoints still answer; once the slot frees, requests
// succeed again.
func TestLoadShed(t *testing.T) {
	srv := newTestServer(t, Config{MaxInflight: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	ingestWeeks(t, ts, 40, 40)

	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	srv.scoreBarrier = func() {
		once.Do(func() {
			close(entered)
			<-release
		})
	}
	parked := make(chan error, 1)
	go func() {
		buf, _ := json.Marshal(map[string]any{"examples": []map[string]any{{"line": 1, "week": 40}}})
		resp, err := http.Post(ts.URL+"/v1/score", "application/json", bytes.NewReader(buf))
		if err != nil {
			parked <- err
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			parked <- fmt.Errorf("parked request: status %d", resp.StatusCode)
			return
		}
		parked <- nil
	}()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("request never reached the handler")
	}

	resp, body := getJSON(t, ts.URL+"/v1/rank?n=1")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second request under full load: %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	if len(body["error"]) == 0 {
		t.Fatal("shed response has no error message")
	}
	// The monitoring plane bypasses admission.
	if resp, _ := getJSON(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz shed under load: %d", resp.StatusCode)
	}
	resp, vars := getJSON(t, ts.URL+"/debug/vars")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug/vars shed under load: %d", resp.StatusCode)
	}
	var deg struct {
		LoadShed int64 `json:"load_shed"`
	}
	if err := json.Unmarshal(vars["degraded"], &deg); err != nil {
		t.Fatal(err)
	}
	if deg.LoadShed == 0 {
		t.Fatal("load_shed gauge never moved")
	}

	close(release)
	if err := <-parked; err != nil {
		t.Fatal(err)
	}
	// Slot freed: healthy traffic flows again (retry briefly; the slot
	// releases after the response is written).
	okAgain := false
	for i := 0; i < 50; i++ {
		resp, _ := getJSON(t, ts.URL+"/v1/rank?n=1")
		if resp.StatusCode == http.StatusOK {
			okAgain = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !okAgain {
		t.Fatal("requests still shed after load cleared")
	}
}

// TestRequestTimeout pins the deadline middleware: a handler stalled by an
// injected latency fault answers 503 within the budget instead of hanging
// the client, and the timeout gauge moves.
func TestRequestTimeout(t *testing.T) {
	block := make(chan struct{})
	hooks := &FaultHooks{Request: func(endpoint string) {
		if endpoint == "/v1/rank" {
			<-block
		}
	}}
	srv := newTestServer(t, Config{RequestTimeout: 100 * time.Millisecond, Faults: hooks})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	// Ingest directly into the store: the 100ms deadline under test also
	// covers /v1/ingest, and a full fixture week over HTTP can legitimately
	// exceed it on a slow box (race detector, one core) — that's not the
	// behaviour this test pins.
	ds, _, _ := fixture(t)
	tests, tickets := recordsFor(ds, 40, 40)
	if _, err := srv.Store().IngestTests(tests); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Store().IngestTickets(tickets); err != nil {
		t.Fatal(err)
	}

	t0 := time.Now()
	resp, err := http.Get(ts.URL + "/v1/rank?n=1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("stalled request: status %d", resp.StatusCode)
	}
	if el := time.Since(t0); el > 3*time.Second {
		t.Fatalf("timeout answered after %v", el)
	}
	close(block)

	// The stalled handler unwinds and the timeout counter records it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if srv.m.timeouts.Value() > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("timeouts gauge never moved")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Healthy traffic is unaffected.
	if resp, body := getJSON(t, ts.URL+"/v1/rank?n=1"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy request after timeout: %d %s", resp.StatusCode, body["error"])
	}
}

// TestReloadProbeFault pins the reload degradation: an injected probe fault
// aborts the swap, the old generation keeps serving, and the failure gauge
// moves.
func TestReloadProbeFault(t *testing.T) {
	ds, pred, _ := fixture(t)
	_ = ds
	dir := t.TempDir()
	path := dir + "/pred.gob.gz"
	if err := pred.Save(path); err != nil {
		t.Fatal(err)
	}
	arm := false
	hooks := &FaultHooks{ReloadProbe: func() error {
		if arm {
			return Transient(errors.New("probe fault"))
		}
		return nil
	}}
	srv := newTestServer(t, Config{PredictorPath: path, Faults: hooks})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	ingestWeeks(t, ts, 40, 40)

	arm = true
	gen := srv.Models()
	resp, body := postJSON(t, ts.URL+"/v1/reload", nil)
	if resp.StatusCode == http.StatusOK {
		t.Fatal("reload succeeded through a probe fault")
	}
	if len(body["error"]) == 0 {
		t.Fatal("failed reload returned no message")
	}
	if srv.Models() != gen {
		t.Fatal("failed reload swapped the model generation")
	}
	if srv.m.reloadFailures.Value() != 1 {
		t.Fatalf("reloadFailures = %d", srv.m.reloadFailures.Value())
	}
	arm = false
	if resp, body := postJSON(t, ts.URL+"/v1/reload", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("reload after fault cleared: %d %s", resp.StatusCode, body["error"])
	}
	if srv.Models() == gen {
		t.Fatal("healed reload did not swap generations")
	}
}

package serve

import (
	"fmt"
	"sync"
	"testing"

	"nevermind/internal/data"
	"nevermind/internal/rng"
)

// TestStoreSnapshotInvariants is the property-style check of the store's
// concurrency contract. Random interleavings of writers (test and ticket
// ingest), readers (snapshot materialisation) and a rebuild-fault toggler
// run together, and every observer asserts the invariants the serving path
// depends on:
//
//   - snapshot versions are monotonic per observer: time never goes
//     backwards for any single reader;
//   - a snapshot is never torn: Generation always equals its Version (the
//     cache-keying contract), the grid dimensions are self-consistent, and
//     every line the snapshot lists is inside the grid;
//   - after the dust settles, a final snapshot equals one rebuilt from
//     scratch on a fresh store fed the same records — the store state is
//     exactly the merge of what was ingested, regardless of interleaving
//     or injected rebuild faults along the way.
func TestStoreSnapshotInvariants(t *testing.T) {
	const (
		writers       = 4
		readers       = 4
		batchesPerW   = 24
		linesPerBatch = 16
		numLines      = 96
	)
	// An injected rebuild-fault process runs alongside: ~1 in 3 builds fail,
	// bounded so readers always converge. Faults must only ever make a
	// snapshot older, never inconsistent.
	var faultSeq struct {
		mu   sync.Mutex
		seq  uint64
		hits int
	}
	s := NewStore(4)
	s.SetFaults(&FaultHooks{SnapshotBuild: func(version uint64) error {
		faultSeq.mu.Lock()
		defer faultSeq.mu.Unlock()
		faultSeq.seq++
		if rng.Derive(7, 1, faultSeq.seq).Float64() < 0.33 {
			faultSeq.hits++
			return Transient(fmt.Errorf("injected rebuild fault #%d", faultSeq.hits))
		}
		return nil
	}})

	checkSnapshot := func(t *testing.T, sn *Snapshot) {
		t.Helper()
		if sn == nil {
			return
		}
		if sn.DS.Generation != s.genSalt|sn.Version {
			t.Errorf("torn snapshot: Generation %d != salted Version %d", sn.DS.Generation, s.genSalt|sn.Version)
		}
		if err := sn.DS.Grid.Validate(sn.DS.NumLines); err != nil {
			t.Errorf("torn snapshot: %v", err)
		}
		if len(sn.Present) != data.Weeks {
			t.Errorf("torn snapshot: %d present rows", len(sn.Present))
		}
		for _, l := range sn.Lines {
			if int(l) >= sn.DS.NumLines {
				t.Errorf("torn snapshot: line %d outside grid of %d", l, sn.DS.NumLines)
			}
		}
	}

	// Deterministic per-writer record streams, so the final merged state is
	// known and replayable on a fresh store.
	batchFor := func(writer, batch int) ([]TestRecord, []TicketRecord) {
		r := rng.Derive(42, uint64(writer), uint64(batch))
		tests := make([]TestRecord, linesPerBatch)
		for i := range tests {
			tests[i] = TestRecord{
				Line:    data.LineID(r.Intn(numLines)),
				Week:    r.Intn(data.Weeks),
				Missing: r.Bool(0.2),
				F:       []float32{float32(writer), float32(batch), float32(i)},
				Profile: uint8(r.Intn(len(data.Profiles))),
				DSLAM:   int32(r.Intn(8)),
				Usage:   float32(r.Float64()),
			}
		}
		var tickets []TicketRecord
		for i := 0; i < 4; i++ {
			tickets = append(tickets, TicketRecord{
				ID:   writer*100000 + batch*100 + i,
				Line: data.LineID(r.Intn(numLines)),
				Day:  r.Intn(data.DaysInYear),
			})
		}
		return tests, tickets
	}

	var writeWg, readWg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		writeWg.Add(1)
		go func(w int) {
			defer writeWg.Done()
			for b := 0; b < batchesPerW; b++ {
				tests, tickets := batchFor(w, b)
				if _, err := s.IngestTests(tests); err != nil {
					t.Errorf("writer %d batch %d: %v", w, b, err)
					return
				}
				if _, err := s.IngestTickets(tickets); err != nil {
					t.Errorf("writer %d batch %d tickets: %v", w, b, err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		readWg.Add(1)
		go func(r int) {
			defer readWg.Done()
			var lastVersion uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				sn := s.Snapshot()
				checkSnapshot(t, sn)
				if sn != nil {
					if sn.Version < lastVersion {
						t.Errorf("reader %d: snapshot version went backwards %d -> %d", r, lastVersion, sn.Version)
						return
					}
					lastVersion = sn.Version
				}
			}
		}(r)
	}
	// Readers run for the writers' whole lifetime, so they observe the full
	// interleaving; then they drain.
	writeWg.Wait()
	close(stop)
	readWg.Wait()

	// The final snapshot (faults heal: loop until a fresh build lands).
	var final *Snapshot
	for i := 0; ; i++ {
		final = s.Snapshot()
		if final != nil && final.Version == s.Version() {
			break
		}
		if i > 100 {
			t.Fatal("store never produced a fresh final snapshot")
		}
	}
	checkSnapshot(t, final)

	// Replay every batch serially into a fresh store; the snapshots must
	// agree on all content. (Version counters differ by interleaving; state
	// must not.)
	replay := NewStore(1)
	for w := 0; w < writers; w++ {
		for b := 0; b < batchesPerW; b++ {
			tests, tickets := batchFor(w, b)
			if _, err := replay.IngestTests(tests); err != nil {
				t.Fatal(err)
			}
			if _, err := replay.IngestTickets(tickets); err != nil {
				t.Fatal(err)
			}
		}
	}
	want := replay.Snapshot()
	if want == nil {
		t.Fatal("replay store is empty")
	}
	if final.DS.NumLines != want.DS.NumLines {
		t.Fatalf("grid width diverged: %d vs %d lines", final.DS.NumLines, want.DS.NumLines)
	}
	if len(final.Lines) != len(want.Lines) {
		t.Fatalf("line sets diverged: %d vs %d", len(final.Lines), len(want.Lines))
	}
	for i := range want.Lines {
		if final.Lines[i] != want.Lines[i] {
			t.Fatalf("line set diverged at %d: %d vs %d", i, final.Lines[i], want.Lines[i])
		}
	}
	if len(final.DS.Tickets) != len(want.DS.Tickets) {
		t.Fatalf("ticket counts diverged: %d vs %d", len(final.DS.Tickets), len(want.DS.Tickets))
	}
	// Presence must match cell for cell. Measurement payloads for a (line,
	// week) written by several writers are last-writer-wins and order-
	// dependent under concurrency, so content equality is only required of
	// the presence/shape, which is merge-order independent.
	for w := 0; w < data.Weeks; w++ {
		for l := 0; l < want.DS.NumLines; l++ {
			if final.Present[w][l] != want.Present[w][l] {
				t.Fatalf("presence diverged at week %d line %d", w, l)
			}
		}
	}
	if faultSeq.hits == 0 {
		t.Error("fault process never fired; the test lost its adversary")
	}
	if s.BuildFailures() == 0 {
		t.Error("store never recorded an injected build failure")
	}
}

// TestStoreSnapshotGenerationUnique pins the cache-keying contract: two
// snapshots never share a Generation — not across versions of one store,
// and not across DIFFERENT stores in the same process (the genSalt high
// bits). The encode/bin caches downstream are attached to the model, which
// an in-process fleet shares between every shard's store; without cross-
// store uniqueness two stores both at version 2 would alias each other's
// cached full-population score encodes.
func TestStoreSnapshotGenerationUnique(t *testing.T) {
	seen := map[uint64]bool{}
	for _, s := range []*Store{NewStore(1), NewStore(1)} {
		for i := 0; i < 10; i++ {
			if _, err := s.IngestTests([]TestRecord{{Line: data.LineID(i), Week: i}}); err != nil {
				t.Fatal(err)
			}
			sn := s.Snapshot()
			if sn == nil {
				t.Fatal("nil snapshot after ingest")
			}
			if sn.DS.Generation != s.genSalt|sn.Version {
				t.Fatalf("snapshot %d: generation %d != salt %d | version %d", i, sn.DS.Generation, s.genSalt, sn.Version)
			}
			if seen[sn.DS.Generation] {
				t.Fatalf("generation %d reused", sn.DS.Generation)
			}
			seen[sn.DS.Generation] = true
		}
	}
}

package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nevermind/internal/core"
	"nevermind/internal/data"
	"nevermind/internal/faults"
	"nevermind/internal/features"
	"nevermind/internal/obs"
)

// Models bundles the two trained models one atomic pointer swaps together,
// so a ranking never sees a predictor from one generation and a locator
// from another.
type Models struct {
	Pred *core.TicketPredictor
	Loc  *core.TroubleLocator // nil when the daemon runs without a locator
	// ID names the serving generation for operators: "boot" for the pair
	// the daemon started with, a reload fingerprint after a file reload,
	// or the challenger id a drift promotion supplied. Surfaced on
	// /healthz and in the drift loop's logs.
	ID string
}

// Config assembles a Server.
type Config struct {
	// Predictor is required; Locator is optional.
	Predictor *core.TicketPredictor
	Locator   *core.TroubleLocator
	// PredictorPath/LocatorPath, when set, enable hot-reload: SIGHUP or
	// POST /v1/reload re-reads the files and atomically swaps the models.
	PredictorPath string
	LocatorPath   string
	// Shards sizes the line-state store (0 = GOMAXPROCS).
	Shards int
	// CacheEntries bounds the encode/bin cache (0 = features default).
	CacheEntries int
	// DrainTimeout bounds graceful shutdown: in-flight requests get this
	// long to finish after the listener closes (0 = 10s).
	DrainTimeout time.Duration
	// RequestTimeout bounds each API request; a request that exceeds it is
	// answered 503 while the monitoring endpoints stay un-timed. 0 disables.
	RequestTimeout time.Duration
	// MaxInflight load-sheds: when this many API requests are already in
	// flight, new ones are refused with 503 + Retry-After instead of
	// queueing behind a stall. 0 disables. The monitoring plane (/healthz,
	// /metrics, /v1/trace, /debug/vars, /debug/pprof/) is exempt — it must
	// answer during overload.
	MaxInflight int
	// EnablePprof mounts net/http/pprof under /debug/pprof/ on the API mux
	// (the monitoring plane, so profiles remain reachable during overload).
	// Off by default: profiling endpoints expose process internals.
	EnablePprof bool
	// Faults installs fault-injection hooks on the store, the reload probe
	// and the request path; nil in production.
	Faults *FaultHooks
	// ReadOnly refuses /v1/ingest with 403: a replica's store is written
	// only by the replication apply loop, and a stray ingest would fork its
	// version history from the leader's.
	ReadOnly bool
	// ModelID names the boot model generation on /healthz ("boot" when
	// empty).
	ModelID string
	// ReplicaStatus, when set, marks this server as a replication follower:
	// data-plane reads carry an X-Replica-Lag header and /healthz grows the
	// replica_* fields the gateway's staleness gating reads. Leaders and
	// standalone daemons leave it nil and keep their exact wire surface.
	ReplicaStatus func() ReplicaStatus
}

// ReplicaStatus is a follower's replication position, published by the
// replica apply loop (see internal/replica).
type ReplicaStatus struct {
	// Applied is the store version the follower has applied through.
	Applied uint64
	// LeaderVersion is the leader's durable version as of the last stream
	// response; Applied ≤ LeaderVersion and the difference is the lag.
	LeaderVersion uint64
	// Connected reports whether the last leader fetch succeeded.
	Connected bool
}

// Lag returns LeaderVersion − Applied, saturating at 0 (a follower can
// briefly know of no version newer than its own).
func (rs ReplicaStatus) Lag() uint64 {
	if rs.LeaderVersion <= rs.Applied {
		return 0
	}
	return rs.LeaderVersion - rs.Applied
}

// Server is the nevermindd HTTP server: the sharded store, the current
// model pair, the encode/bin cache they score through, and the API mux.
type Server struct {
	// store is swappable: a replication follower re-bootstrapping after a
	// retention gap builds a fresh store offline and swaps it in whole, so
	// readers only ever see a store whose content matches its version.
	store         atomic.Pointer[Store]
	cache         *features.Cache
	models        atomic.Pointer[Models]
	m             *metrics
	mux           *http.ServeMux
	handler       http.Handler // mux wrapped in admission control + timeouts
	faults        *FaultHooks
	readOnly      bool
	replicaStatus func() ReplicaStatus
	driftStatus   atomic.Pointer[func() DriftStatus]

	reloadMu      sync.Mutex
	predictorPath string
	locatorPath   string
	drainTimeout  time.Duration

	// scoreBarrier, when set by a test, runs at the top of every /v1/score
	// request — the hook the graceful-shutdown test uses to hold a request
	// in flight across a drain.
	scoreBarrier func()
}

// New builds a Server around trained models. The encode/bin cache is
// attached to both models so repeated scoring of an unchanged store version
// skips the feature pipeline entirely.
func New(cfg Config) (*Server, error) {
	if cfg.Predictor == nil {
		return nil, errors.New("serve: a trained predictor is required")
	}
	s := &Server{
		cache:         features.NewCache(cfg.CacheEntries),
		m:             newMetrics(),
		faults:        cfg.Faults,
		readOnly:      cfg.ReadOnly,
		replicaStatus: cfg.ReplicaStatus,
		predictorPath: cfg.PredictorPath,
		locatorPath:   cfg.LocatorPath,
		drainTimeout:  cfg.DrainTimeout,
	}
	if s.drainTimeout <= 0 {
		s.drainTimeout = 10 * time.Second
	}
	s.SwapStore(NewStore(cfg.Shards))
	s.m.bindServer(s)
	cfg.Predictor.SetEncodeCache(s.cache)
	if cfg.Locator != nil {
		cfg.Locator.SetEncodeCache(s.cache)
	}
	if cfg.ModelID == "" {
		cfg.ModelID = "boot"
	}
	s.models.Store(&Models{Pred: cfg.Predictor, Loc: cfg.Locator, ID: cfg.ModelID})

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/ingest", s.m.instrument("ingest", s.handleIngest))
	mux.HandleFunc("POST /v1/score", s.m.instrument("score", s.handleScore))
	mux.HandleFunc("GET /v1/rank", s.m.instrument("rank", s.handleRank))
	mux.HandleFunc("POST /v1/locate", s.m.instrument("locate", s.handleLocate))
	mux.HandleFunc("POST /v1/reload", s.m.instrument("reload", s.handleReload))
	mux.HandleFunc("GET /healthz", s.m.instrument("healthz", s.handleHealthz))
	mux.HandleFunc("GET /debug/vars", s.m.instrument("debugvars", s.handleDebugVars))
	mux.HandleFunc("GET /metrics", s.m.instrument("metrics", s.handleMetrics))
	mux.HandleFunc("GET /v1/trace", s.m.instrument("trace", s.handleTrace))
	if cfg.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	s.mux = mux
	s.handler = s.buildHandler(cfg.RequestTimeout, cfg.MaxInflight)
	return s, nil
}

// buildHandler wraps the mux in the degradation middleware: a max-inflight
// admission gate that sheds load with 503 + Retry-After, then a per-request
// deadline. The monitoring endpoints bypass both — during an overload or a
// stall, /healthz and /debug/vars are exactly what the operator needs.
func (s *Server) buildHandler(timeout time.Duration, maxInflight int) http.Handler {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if h := s.faults; h != nil && h.Request != nil {
			h.Request(r.URL.Path)
		}
		s.mux.ServeHTTP(w, r)
		if errors.Is(r.Context().Err(), context.DeadlineExceeded) {
			s.m.timeouts.Add(1)
		}
	})
	var core http.Handler = inner
	if timeout > 0 {
		core = http.TimeoutHandler(inner, timeout, `{"error":"request deadline exceeded"}`)
	}
	var slots chan struct{}
	if maxInflight > 0 {
		slots = make(chan struct{}, maxInflight)
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == "/healthz", r.URL.Path == "/debug/vars",
			r.URL.Path == "/metrics", r.URL.Path == "/v1/trace",
			r.URL.Path == "/v1/drift",
			strings.HasPrefix(r.URL.Path, "/debug/pprof/"),
			strings.HasPrefix(r.URL.Path, "/v1/repl/"):
			s.mux.ServeHTTP(w, r)
			return
		}
		if slots != nil {
			select {
			case slots <- struct{}{}:
				defer func() { <-slots }()
			default:
				s.m.loadShed.Add(1)
				w.Header().Set("Retry-After", "1")
				writeError(w, http.StatusServiceUnavailable,
					errors.New("overloaded: max in-flight requests reached; retry after backoff"))
				return
			}
		}
		core.ServeHTTP(w, r)
	})
}

// Store exposes the line-state store (the pipeline ingests through it).
func (s *Server) Store() *Store { return s.store.Load() }

// SwapStore atomically replaces the serving store, wiring the fault hooks
// and metrics the constructor would. Requests racing the swap see either the
// old store or the new one, each internally consistent — the replica
// re-bootstrap path relies on this to never expose a half-restored store.
func (s *Server) SwapStore(st *Store) {
	st.SetFaults(s.faults)
	st.setMetrics(s.m)
	s.store.Store(st)
}

// MountReplication hangs the leader-side replication handler under
// /v1/repl/. The prefix bypasses the admission gate and request deadline
// (see buildHandler): a long-polled WAL stream holds its request open on
// purpose, and shedding or timing out followers would just stall catch-up.
func (s *Server) MountReplication(h http.Handler) {
	s.mux.Handle("/v1/repl/", h)
}

// Models returns the current model generation.
func (s *Server) Models() *Models { return s.models.Load() }

// Registry exposes the server's metrics registry, for tests asserting
// metric invariants and for wiring extra process-level collectors.
func (s *Server) Registry() *obs.Registry { return s.m.reg }

// Tracer exposes the pipeline stage tracer (what /v1/trace serves).
func (s *Server) Tracer() *obs.Tracer { return s.m.tracer }

// ScoreObserver returns a callback that records compiled-scorer batch
// timings into this server's registry — the hook cmd/nevermindd installs
// via ml.SetScoreObserver. It is not installed automatically because the ml
// hook is process-global and a test binary runs many servers.
func (s *Server) ScoreObserver() func(rows int, d time.Duration) {
	return func(rows int, d time.Duration) {
		s.m.scoreRows.Add(int64(rows))
		s.m.scoreDur.Observe(d)
	}
}

// Handler returns the API handler, wrapped in the admission/timeout
// middleware when the Config enabled it.
func (s *Server) Handler() http.Handler { return s.handler }

// Serve runs the HTTP server on ln until ctx is cancelled, then drains
// gracefully: the listener closes immediately (new connections are
// refused), in-flight requests run to completion within DrainTimeout, and
// Serve returns once the last one finishes.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{Handler: s.handler, ReadHeaderTimeout: 10 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err // listener failed before shutdown was requested
	case <-ctx.Done():
	}
	dctx, cancel := context.WithTimeout(context.Background(), s.drainTimeout)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		return fmt.Errorf("serve: drain: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// --- wire types ---------------------------------------------------------------

// ScoreExample is one (line, week) entry of /v1/score's examples array;
// exported so the fleet gateway can partition a request by ring ownership
// using the exact wire type the shard handler parses.
type ScoreExample struct {
	Line data.LineID `json:"line"`
	Week int         `json:"week"`
}

type predictionJSON struct {
	Line        data.LineID `json:"line"`
	Week        int         `json:"week"`
	Score       float64     `json:"score"`
	Probability float64     `json:"probability"`
}

func toWire(ps []core.Prediction) []predictionJSON {
	out := make([]predictionJSON, len(ps))
	for i, p := range ps {
		out[i] = predictionJSON{Line: p.Line, Week: p.Week, Score: p.Score, Probability: p.Probability}
	}
	return out
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// MaxBodyBytes bounds request bodies; a full weekly ingest for a large
// population is tens of MB of JSON.
const MaxBodyBytes = 128 << 20

func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	return DecodeStrict(http.MaxBytesReader(w, r.Body, MaxBodyBytes), v)
}

// DecodeStrict decodes exactly one JSON value: unknown fields and trailing
// data are both rejected. The trailing-data check closes a silent-accept
// hole the ingest fuzzer found — `{"tests":[...]}garbage` used to ingest the
// first value and discard the rest without complaint.
func DecodeStrict(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	var extra json.RawMessage
	if err := dec.Decode(&extra); err != io.EOF {
		return errors.New("trailing data after JSON body")
	}
	return nil
}

// snapshotOr503 returns the current snapshot, writing a 503 if the store is
// still empty (nothing has been ingested, so there is nothing to score).
func (s *Server) snapshotOr503(w http.ResponseWriter) *Snapshot {
	sn := s.Store().Snapshot()
	if sn == nil {
		writeError(w, http.StatusServiceUnavailable, errors.New("store is empty; ingest line tests first"))
	}
	return sn
}

// setReplicaLag stamps the follower's current staleness on a data-plane
// response header; a no-op on leaders and standalone daemons, whose wire
// surface stays byte-identical.
func (s *Server) setReplicaLag(w http.ResponseWriter) {
	if s.replicaStatus == nil {
		return
	}
	w.Header().Set("X-Replica-Lag", strconv.FormatUint(s.replicaStatus().Lag(), 10))
}

// --- handlers -----------------------------------------------------------------

// IngestRequest is /v1/ingest's body; exported so the fuzz targets and the
// fleet gateway drive the exact decoder the handler uses.
type IngestRequest struct {
	Tests   []TestRecord   `json:"tests"`
	Tickets []TicketRecord `json:"tickets"`
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if s.readOnly {
		writeError(w, http.StatusForbidden,
			errors.New("replica is read-only; ingest through the leader"))
		return
	}
	var req IngestRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	st := s.Store()
	nt, err := st.IngestTests(req.Tests)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	nk, err := st.IngestTickets(req.Tickets)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.m.ingestedTests.Add(int64(nt))
	s.m.ingestedTickets.Add(int64(nk))
	writeJSON(w, http.StatusOK, map[string]any{
		"ingested_tests":   nt,
		"ingested_tickets": nk,
		"lines":            st.NumLines(),
		"version":          st.Version(),
	})
}

func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	if s.scoreBarrier != nil {
		s.scoreBarrier()
	}
	s.setReplicaLag(w)
	sc := scratchPool.Get().(*scratch)
	defer scratchPool.Put(sc)
	body, err := readBody(w, r, sc)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	exs, ok := parseScoreBody(body, sc.examples[:0])
	if ok {
		sc.examples = exs // keep the grown backing array for the pool
	} else {
		// The fast grammar balked: rerun the strict reflective decoder so a
		// malformed body gets the exact error text it always has, and a
		// merely unusual body (escaped keys, duplicate "examples") still
		// parses as encoding/json defines it.
		var req struct {
			Examples []ScoreExample `json:"examples"`
		}
		if err := DecodeStrict(bytes.NewReader(body), &req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		exs = req.Examples
	}
	if len(exs) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("no examples"))
		return
	}
	sn := s.snapshotOr503(w)
	if sn == nil {
		return
	}
	singleWeek := true
	for i, e := range exs {
		if e.Week < 0 || e.Week >= data.Weeks {
			writeError(w, http.StatusBadRequest, fmt.Errorf("example %d: week %d outside [0,%d)", i, e.Week, data.Weeks))
			return
		}
		if e.Line < 0 || int(e.Line) >= sn.DS.NumLines {
			writeError(w, http.StatusBadRequest, fmt.Errorf("example %d: line %d unknown to the store", i, e.Line))
			return
		}
		if e.Week != exs[0].Week {
			singleWeek = false
		}
	}
	if singleWeek {
		// Steady-state path: every answer is a lookup in the week's resident
		// score table and a splice of its prerendered fragments.
		tab, err := sn.scoreTable(s.Models(), exs[0].Week)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		buf := append(sc.out[:0], `{"predictions":[`...)
		for i, e := range exs {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = append(buf, tab.frag(e.Line)...)
		}
		buf = append(buf, `],"version":`...)
		buf = strconv.AppendUint(buf, sn.Version, 10)
		buf = append(buf, '}', '\n')
		sc.out = buf
		writeRawJSON(w, buf)
		return
	}
	// Mixed-week request: the general per-example path.
	examples := make([]features.Example, len(exs))
	for i, e := range exs {
		examples[i] = features.Example{Line: e.Line, Week: e.Week}
	}
	preds, err := s.Models().Pred.PredictExamples(sn.DS, sn.Ix, examples)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"version":     sn.Version,
		"predictions": toWire(preds),
	})
}

func (s *Server) handleRank(w http.ResponseWriter, r *http.Request) {
	s.setReplicaLag(w)
	sn := s.snapshotOr503(w)
	if sn == nil {
		return
	}
	models := s.Models()
	var q url.Values
	if r.URL.RawQuery != "" {
		q = r.URL.Query()
	}
	week, n, err := ParseRankParams(q, s.Store().LatestWeek(), models.Pred.Cfg.BudgetN)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	lines := sn.LinesAt(week)
	sc := scratchPool.Get().(*scratch)
	defer scratchPool.Put(sc)
	buf := sc.out[:0]
	if len(lines) > 0 {
		tab, err := sn.scoreTable(models, week)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		ranked := tab.rankedLines(sn)
		if n > len(ranked) {
			n = len(ranked)
		}
		buf = append(buf, `{"n":`...)
		buf = strconv.AppendInt(buf, int64(n), 10)
		buf = append(buf, `,"population":`...)
		buf = strconv.AppendInt(buf, int64(len(lines)), 10)
		buf = append(buf, `,"predictions":[`...)
		for i, l := range ranked[:n] {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = append(buf, tab.frag(l)...)
		}
	} else {
		buf = append(buf, `{"n":0,"population":0,"predictions":[`...)
	}
	buf = append(buf, `],"week":`...)
	buf = strconv.AppendInt(buf, int64(week), 10)
	buf = append(buf, '}', '\n')
	sc.out = buf
	writeRawJSON(w, buf)
}

// ParseRankParams parses /v1/rank's query parameters: week defaults to the
// store's latest, n to the model's budget; non-integer or out-of-range
// values are rejected rather than clamped or prefix-parsed, and the fuzz
// target FuzzRankParams holds it to that.
func ParseRankParams(q url.Values, defWeek, defN int) (week, n int, err error) {
	week, n = defWeek, defN
	if v := q.Get("week"); v != "" {
		if week, err = strconv.Atoi(v); err != nil {
			return 0, 0, fmt.Errorf("bad week %q", v)
		}
	}
	if week < 0 || week >= data.Weeks {
		return 0, 0, fmt.Errorf("week %d outside [0,%d)", week, data.Weeks)
	}
	if v := q.Get("n"); v != "" {
		if n, err = strconv.Atoi(v); err != nil || n < 1 {
			return 0, 0, fmt.Errorf("bad n %q", v)
		}
	}
	return week, n, nil
}

func (s *Server) handleLocate(w http.ResponseWriter, r *http.Request) {
	s.setReplicaLag(w)
	var req struct {
		Line  data.LineID `json:"line"`
		Week  int         `json:"week"`
		Model string      `json:"model"`
	}
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	model, err := core.ParseLocatorModel(req.Model)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	loc := s.Models().Loc
	if loc == nil {
		writeError(w, http.StatusServiceUnavailable, errors.New("no locator loaded"))
		return
	}
	sn := s.snapshotOr503(w)
	if sn == nil {
		return
	}
	if req.Week < 0 || req.Week >= data.Weeks {
		writeError(w, http.StatusBadRequest, fmt.Errorf("week %d outside [0,%d)", req.Week, data.Weeks))
		return
	}
	if req.Line < 0 || int(req.Line) >= sn.DS.NumLines {
		writeError(w, http.StatusBadRequest, fmt.Errorf("line %d unknown to the store", req.Line))
		return
	}
	post, err := loc.Posteriors(sn.DS, []core.DispatchCase{{Line: req.Line, Week: req.Week}}, model)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	type dispJSON struct {
		ID          int     `json:"id"`
		Name        string  `json:"name"`
		Location    string  `json:"location"`
		Probability float64 `json:"probability"`
	}
	out := make([]dispJSON, len(loc.Dispositions))
	for j, d := range loc.Dispositions {
		out[j] = dispJSON{
			ID:          int(d),
			Name:        faults.Catalog[d].Name,
			Location:    faults.Catalog[d].Loc.String(),
			Probability: post[0][j],
		}
	}
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Probability != out[b].Probability {
			return out[a].Probability > out[b].Probability
		}
		return out[a].ID < out[b].ID
	})
	writeJSON(w, http.StatusOK, map[string]any{
		"line":         req.Line,
		"week":         req.Week,
		"model":        model.String(),
		"dispositions": out,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	models := s.Models()
	st := s.Store()
	body := map[string]any{
		"status":             "ok",
		"lines":              st.NumLines(),
		"latest_week":        st.LatestWeek(),
		"predictor":          true,
		"locator":            models.Loc != nil,
		"model_id":           models.ID,
		"schema_fingerprint": fmt.Sprintf("%016x", models.Pred.SchemaFingerprint()),
		"uptime_seconds":     time.Since(s.m.start).Seconds(),
		// Fleet probe surface: the gateway resolves /v1/rank defaults and
		// snapshot freshness from these without a data-plane round trip.
		"budget_n":     models.Pred.Cfg.BudgetN,
		"version":      st.Version(),
		"snapshot_lag": st.SnapshotLag(),
		"grid_lines":   st.GridLines(),
	}
	if s.replicaStatus != nil {
		rs := s.replicaStatus()
		body["replica"] = true
		body["replica_lag"] = rs.Lag()
		body["replica_applied"] = rs.Applied
		body["replica_leader_version"] = rs.LeaderVersion
		body["replica_connected"] = rs.Connected
	}
	if fn := s.driftStatus.Load(); fn != nil {
		body["drift"] = (*fn)()
	}
	writeJSON(w, http.StatusOK, body)
}

// DriftStatus is the drift-loop block /healthz publishes when a drift
// controller is attached (see internal/drift): which model generation is
// serving, where the champion/challenger state machine stands, and how
// many shadow weeks remain before a promotion decision.
type DriftStatus struct {
	ModelID          string `json:"model_id"`
	State            string `json:"state"`
	ConsecutiveTrips int    `json:"consecutive_trips"`
	ShadowWeeks      int    `json:"shadow_weeks"`
	WeeksToPromotion int    `json:"weeks_to_promotion"`
	Retrains         int    `json:"retrains"`
	Promotions       int    `json:"promotions"`
	Rollbacks        int    `json:"rollbacks"`
}

// SetDriftStatus attaches the drift controller's status snapshot to
// /healthz. Safe to call after the server starts serving.
func (s *Server) SetDriftStatus(fn func() DriftStatus) { s.driftStatus.Store(&fn) }

// MountDrift mounts the drift controller's report endpoint at
// GET /v1/drift. Like the rest of the monitoring plane it bypasses
// admission control and request deadlines — loop state is exactly what an
// operator needs while the daemon is struggling. Call before serving.
func (s *Server) MountDrift(h http.HandlerFunc) {
	s.mux.HandleFunc("GET /v1/drift", s.m.instrument("drift", h))
}

// handleMetrics serves the registry in Prometheus text exposition format.
// The format is a stability contract pinned by TestMetricsGolden; p50/p95/
// p99 are derivable from the histogram buckets by any Prometheus-compatible
// scraper.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.m.reg.WritePrometheus(w)
}

// handleTrace serves the stage tracer's flight recorder: the retained spans
// oldest to newest plus lifetime totals, the readout for "where did the
// slow week go".
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.m.tracer.Snapshot())
}

// latencySums renders per-route summed handling time in nanoseconds — the
// shape the pre-registry expvar block exported, kept for /debug/vars
// compatibility.
func latencySums(v map[string]obs.HistSnapshot) map[string]int64 {
	out := make(map[string]int64, len(v))
	for route, s := range v {
		out[route] = s.SumNs
	}
	return out
}

func (s *Server) handleDebugVars(w http.ResponseWriter, r *http.Request) {
	models := s.Models()
	m := s.m
	st := s.Store()
	vars := map[string]any{
		"uptime_seconds":   time.Since(m.start).Seconds(),
		"requests":         m.requests.Values(),
		"errors":           m.errors.Values(),
		"latency_ns_sum":   latencySums(m.latency.Snapshots()),
		"ingested_tests":   m.ingestedTests.Value(),
		"ingested_tickets": m.ingestedTickets.Value(),
		"reloads":          m.reloads.Value(),
		"store": map[string]any{
			"lines":            st.NumLines(),
			"version":          st.Version(),
			"latest_week":      st.LatestWeek(),
			"shard_lines":      st.ShardSizes(),
			"filtered_records": st.FilteredRecords(),
		},
		// The degradation surface: snapshot_lag > 0 means rebuilds are
		// failing and scoring is serving the last good (stale) snapshot;
		// the counters say how the server has been shedding trouble.
		"degraded": map[string]any{
			"snapshot_lag":            st.SnapshotLag(),
			"snapshot_stale":          st.SnapshotLag() > 0,
			"snapshot_build_failures": st.BuildFailures(),
			"load_shed":               m.loadShed.Value(),
			"timeouts":                m.timeouts.Value(),
			"reload_failures":         m.reloadFailures.Value(),
		},
		"cache": s.cache.StatsDetail(),
		"model": map[string]any{
			"schema_fingerprint":   fmt.Sprintf("%016x", models.Pred.SchemaFingerprint()),
			"rounds":               len(models.Pred.Model.Stumps),
			"budget_n":             models.Pred.Cfg.BudgetN,
			"locator_dispositions": locatorDispositions(models.Loc),
		},
		"pipeline": map[string]any{
			"ticks":     m.pipelineTicks.Value(),
			"week":      m.pipelineWeek.Value(),
			"submitted": m.pipelineSubmitted.Value(),
			"worked":    m.pipelineWorked.Value(),
			"expired":   m.pipelineExpired.Value(),
			"retries":   m.pipelineRetries.Value(),
		},
	}
	writeJSON(w, http.StatusOK, vars)
}

func locatorDispositions(loc *core.TroubleLocator) int {
	if loc == nil {
		return 0
	}
	return len(loc.Dispositions)
}

// --- hot reload ---------------------------------------------------------------

// ReloadResult reports what a hot reload did. ProbeExamples is how many
// store-backed examples the equality probe scored with both generations
// (0 when the store is empty — the swap then proceeds unprobed). Identical
// is whether old and new scores (and locator posteriors, when both exist)
// were bit-identical; reloading an unchanged model file must report true.
type ReloadResult struct {
	ProbeExamples     int     `json:"probe_examples"`
	Identical         bool    `json:"identical"`
	MaxAbsDiff        float64 `json:"max_abs_diff"`
	SchemaFingerprint string  `json:"schema_fingerprint"`
}

// reloadProbeMax bounds the equality probe: two logistic-calibrated scores
// per example over a few hundred examples is ample evidence, and the probe
// runs with the reload lock held.
const reloadProbeMax = 256

// Reload re-reads the model files and atomically swaps the current model
// pair. The contract: the new models must successfully score a probe batch
// drawn from the live store before the swap happens — a model file whose
// schema has drifted from the store's data is rejected and the old
// generation keeps serving. Requests racing the reload see either the old
// or the new pair, never a mix. Any failure — unreadable file, schema
// drift, or an injected probe fault — leaves the old generation serving and
// bumps the reload_failures gauge.
func (s *Server) Reload() (*ReloadResult, error) {
	res, err := s.reload()
	if err != nil {
		s.m.reloadFailures.Add(1)
	}
	return res, err
}

func (s *Server) reload() (*ReloadResult, error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	if s.predictorPath == "" {
		return nil, errors.New("serve: reload needs a predictor model path")
	}
	old := s.Models()
	pred, err := core.LoadPredictor(s.predictorPath)
	if err != nil {
		return nil, err
	}
	// Operational settings travel with the process, not the model file:
	// the worker-pool size and the -budget override both outlive a reload.
	pred.Cfg.Workers = old.Pred.Cfg.Workers
	pred.Cfg.BudgetN = old.Pred.Cfg.BudgetN
	pred.SetEncodeCache(s.cache)
	loc := old.Loc
	if s.locatorPath != "" {
		loc, err = core.LoadLocator(s.locatorPath)
		if err != nil {
			return nil, err
		}
		loc.SetEncodeCache(s.cache)
	}

	id := fmt.Sprintf("reload-%016x", pred.SchemaFingerprint())
	return s.probeAndSwap(old, pred, loc, id)
}

// Promote atomically swaps an in-memory predictor into service through the
// same probe-verified path a file reload takes: the candidate must score a
// probe batch drawn from the live store before the swap, and any failure —
// an injected probe fault, a schema mismatch — leaves the current champion
// serving and bumps reload_failures. This is the drift loop's promotion
// (and rollback) edge; the locator generation is carried over unchanged.
func (s *Server) Promote(pred *core.TicketPredictor, id string) (*ReloadResult, error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	old := s.Models()
	// Operational settings travel with the process (see reload).
	pred.Cfg.Workers = old.Pred.Cfg.Workers
	pred.Cfg.BudgetN = old.Pred.Cfg.BudgetN
	pred.SetEncodeCache(s.cache)
	res, err := s.probeAndSwap(old, pred, old.Loc, id)
	if err != nil {
		s.m.reloadFailures.Add(1)
	}
	return res, err
}

// probeAndSwap runs the reload probe contract against the live store and,
// only on success, publishes the new model pair. Callers hold reloadMu.
func (s *Server) probeAndSwap(old *Models, pred *core.TicketPredictor, loc *core.TroubleLocator, id string) (*ReloadResult, error) {
	if h := s.faults; h != nil && h.ReloadProbe != nil {
		if err := h.ReloadProbe(); err != nil {
			return nil, fmt.Errorf("serve: reload probe: %w", err)
		}
	}
	res := &ReloadResult{Identical: true, SchemaFingerprint: fmt.Sprintf("%016x", pred.SchemaFingerprint())}
	st := s.Store()
	if sn := st.Snapshot(); sn != nil {
		week := st.LatestWeek()
		lines := sn.LinesAt(week)
		if len(lines) > reloadProbeMax {
			lines = lines[:reloadProbeMax]
		}
		if len(lines) > 0 {
			examples := make([]features.Example, len(lines))
			for i, l := range lines {
				examples[i] = features.Example{Line: l, Week: week}
			}
			oldScores, err := old.Pred.ScoreExamplesIx(sn.DS, sn.Ix, examples)
			if err != nil {
				return nil, fmt.Errorf("serve: probing current predictor: %w", err)
			}
			newScores, err := pred.ScoreExamplesIx(sn.DS, sn.Ix, examples)
			if err != nil {
				return nil, fmt.Errorf("serve: reloaded predictor cannot score the store: %w", err)
			}
			res.ProbeExamples = len(examples)
			for i := range oldScores {
				if d := math.Abs(oldScores[i] - newScores[i]); d > res.MaxAbsDiff {
					res.MaxAbsDiff = d
				}
				if oldScores[i] != newScores[i] {
					res.Identical = false
				}
			}
			if loc != nil {
				cases := []core.DispatchCase{{Line: examples[0].Line, Week: examples[0].Week}}
				newPost, err := loc.Posteriors(sn.DS, cases, core.ModelCombined)
				if err != nil {
					return nil, fmt.Errorf("serve: reloaded locator cannot score the store: %w", err)
				}
				if old.Loc != nil && len(old.Loc.Dispositions) == len(loc.Dispositions) {
					oldPost, err := old.Loc.Posteriors(sn.DS, cases, core.ModelCombined)
					if err != nil {
						return nil, fmt.Errorf("serve: probing current locator: %w", err)
					}
					for j := range newPost[0] {
						if newPost[0][j] != oldPost[0][j] {
							res.Identical = false
						}
					}
				}
			}
		}
	}
	s.models.Store(&Models{Pred: pred, Loc: loc, ID: id})
	s.m.reloads.Add(1)
	return res, nil
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	res, err := s.Reload()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

package serve

import (
	"errors"
	"fmt"
)

// This file is the fault-injection seam and the error taxonomy the serving
// loop retries against. The production paths call the hooks at their natural
// failure points; a chaos layer (internal/chaos) plugs deterministic fault
// processes into them, and the pipeline's retry logic is written against the
// error classes below rather than against any concrete fault source.

// FaultHooks are optional interception points on the serving hot paths.
// Every field may be nil. A hook that returns a non-nil error makes the
// corresponding operation fail exactly as a real infrastructure fault would:
// before any state mutation, so a retry observes a clean slate. Latency
// hooks (ShardRead, Request) block the caller and model slow hardware.
//
// The hooks exist for fault injection, so implementations must be safe for
// concurrent use — ingest, snapshot builds and HTTP requests all race.
type FaultHooks struct {
	// IngestTests runs after a test batch validates but before it is
	// applied; an error aborts the batch with no state change.
	IngestTests func(n int) error
	// IngestTickets is the same seam on the ticket path.
	IngestTickets func(n int) error
	// SnapshotBuild runs before a snapshot rebuild; an error fails the
	// rebuild, and the store keeps serving its last good snapshot.
	SnapshotBuild func(version uint64) error
	// ShardRead runs per shard during a snapshot build, inside the shard's
	// read-locked section — the slow-disk / slow-NUMA-node stand-in.
	ShardRead func(shard int)
	// ReloadProbe runs before the hot-reload equality probe; an error
	// aborts the reload and the old model generation keeps serving.
	ReloadProbe func() error
	// Request runs at the top of every API request that passed admission
	// (load shed), before the handler; it may sleep to model slow backends.
	Request func(endpoint string)
}

// ErrTransient marks a failure that is expected to clear on its own: a feed
// hiccup, a timed-out ingest, a failed snapshot rebuild. The pipeline
// retries transient errors with bounded exponential backoff; anything not
// wrapped as transient (and not a bad batch) is terminal for the loop.
var ErrTransient = errors.New("transient fault")

// Transient wraps err so IsTransient reports true for it. A nil err stays
// nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("%w: %w", ErrTransient, err)
}

// IsTransient reports whether err is marked retryable.
func IsTransient(err error) bool { return errors.Is(err, ErrTransient) }

// ErrBadBatch marks an ingest batch that failed validation. The store
// rejects such batches atomically (nothing is applied), so the pipeline's
// correct response is to discard the delivery and re-pull the week from the
// feed — corruption in transit, not corruption at rest.
var ErrBadBatch = errors.New("bad batch")

// IsBadBatch reports whether err is a batch-validation rejection.
func IsBadBatch(err error) bool { return errors.Is(err, ErrBadBatch) }

package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"nevermind/internal/obs"
	"nevermind/internal/sim"
)

// metricsFixtureServer runs the fixture pipeline over a few weeks and
// exercises every instrumented route once, so /metrics has seen traffic on
// each series family before the test reads it.
func metricsFixtureServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	ds, pred, loc := fixture(t)
	srv, err := New(Config{Predictor: pred, Locator: loc})
	if err != nil {
		t.Fatal(err)
	}
	src, err := sim.NewSource(ds, 40, 42)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := NewPipeline(srv, PipelineConfig{
		Source: SimFeed(src),
		Sleep:  func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Run(t.Context()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	for _, url := range []string{"/healthz", "/debug/vars", "/v1/rank?week=42&n=3", "/v1/trace"} {
		resp, err := http.Get(ts.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d", url, resp.StatusCode)
		}
	}
	return srv, ts
}

// normalizeMetrics replaces every sample value with <v>, keeping the parts
// of the exposition that are a stability contract: family names, HELP and
// TYPE lines, series order, label names and values (including histogram le
// bounds). Values vary run to run (timings, contention); the shape must not.
func normalizeMetrics(text string) string {
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	for i, line := range lines {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		lines[i] = line[:sp] + " <v>"
	}
	return strings.Join(lines, "\n") + "\n"
}

// TestMetricsGolden pins the Prometheus exposition shape of /metrics after
// a fixed-seed pipeline run: which families exist, their HELP/TYPE lines,
// which label children each vector carries, and the histogram bucket bounds.
// Sample values are normalized (they are timings). Run with -update after an
// intentional contract change; the golden diff documents it in review.
func TestMetricsGolden(t *testing.T) {
	_, ts := metricsFixtureServer(t)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q is not the Prometheus text exposition type", ct)
	}
	var raw strings.Builder
	if _, err := io.Copy(&raw, resp.Body); err != nil {
		t.Fatal(err)
	}
	got := normalizeMetrics(raw.String())

	goldenPath := filepath.Join("testdata", "metrics.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", goldenPath, len(got))
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run `go test ./internal/serve -run TestMetricsGolden -update` to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("/metrics exposition shape diverged from golden:\n%s", diffLines(string(want), got))
	}
}

// TestMetricsCoverage spot-checks live values the golden normalizes away:
// the series the acceptance contract names must not only exist but move.
func TestMetricsCoverage(t *testing.T) {
	srv, ts := metricsFixtureServer(t)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b strings.Builder
	if _, err := io.Copy(&b, resp.Body); err != nil {
		t.Fatal(err)
	}
	text := b.String()

	// Every value-bearing line for these prefixes must be present, and the
	// named ones nonzero after a three-week run plus the probe requests.
	for _, want := range []string{
		`nevermind_http_requests_total{route="healthz"} 1`,
		`nevermind_http_requests_total{route="rank"} 1`,
		`nevermind_pipeline_ticks_total 3`,
		`nevermind_pipeline_week 42`,
		`nevermind_degraded 0`,
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("missing exact sample %q", want)
		}
	}
	for _, family := range []string{
		"nevermind_http_request_duration_seconds_bucket",
		"nevermind_pipeline_stage_duration_seconds_bucket",
		"nevermind_store_ingest_duration_seconds_bucket",
		"nevermind_store_snapshot_build_duration_seconds_sum",
		"nevermind_cache_hits_total",
		"nevermind_cache_misses_total",
		"nevermind_trace_spans_total",
	} {
		if !strings.Contains(text, family) {
			t.Errorf("family %s absent from /metrics", family)
		}
	}

	// Stage histograms counted each stage exactly once per completed week.
	stages := srv.m.stageDur.Snapshots()
	for _, stage := range pipelineStages {
		if c := stages[stage].Count; c != 3 {
			t.Errorf("stage %s observed %d times, want 3", stage, c)
		}
	}
	// The request latency histogram for rank saw exactly the one probe.
	if lat := srv.m.latency.Snapshots()["rank"]; lat.Count != 1 || lat.SumNs <= 0 {
		t.Errorf("rank latency snapshot: count=%d sum=%d", lat.Count, lat.SumNs)
	}
}

// TestPprofGate: net/http/pprof mounts only behind Config.EnablePprof —
// profiling is opt-in, never ambient.
func TestPprofGate(t *testing.T) {
	_, pred, _ := fixture(t)
	for _, enabled := range []bool{false, true} {
		srv, err := New(Config{Predictor: pred, EnablePprof: enabled})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		resp, err := http.Get(ts.URL + "/debug/pprof/")
		if err != nil {
			ts.Close()
			t.Fatal(err)
		}
		resp.Body.Close()
		ts.Close()
		if enabled && resp.StatusCode != http.StatusOK {
			t.Fatalf("pprof enabled but index answered %d", resp.StatusCode)
		}
		if !enabled && resp.StatusCode != http.StatusNotFound {
			t.Fatalf("pprof disabled but index answered %d", resp.StatusCode)
		}
	}
}

// TestTraceEndpoint: /v1/trace serves the flight recorder with the span-leak
// invariant intact — after a quiesced run every started span has finished,
// spans arrive oldest first, and only known stages appear.
func TestTraceEndpoint(t *testing.T) {
	_, ts := metricsFixtureServer(t)
	resp, err := http.Get(ts.URL + "/v1/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap obs.TraceSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Started == 0 || snap.Started != snap.Finished || snap.Active != 0 {
		t.Fatalf("span leak after quiescence: started=%d finished=%d active=%d",
			snap.Started, snap.Finished, snap.Active)
	}
	if len(snap.Spans) == 0 {
		t.Fatal("no spans retained after a pipeline run")
	}
	known := make(map[string]bool, len(pipelineStages)+len(driftStages))
	for _, s := range pipelineStages {
		known[s] = true
	}
	for _, s := range driftStages {
		known[s] = true
	}
	var lastSeq uint64
	for _, sp := range snap.Spans {
		if !known[sp.Stage] {
			t.Fatalf("span with unknown stage %q", sp.Stage)
		}
		if sp.Seq <= lastSeq {
			t.Fatalf("spans not in ascending seq order: %d after %d", sp.Seq, lastSeq)
		}
		lastSeq = sp.Seq
		if sp.Duration < 0 {
			t.Fatalf("negative duration on span %+v", sp)
		}
	}
	// A clean fixture run retries nothing and degrades nothing.
	for _, sp := range snap.Spans {
		if sp.Err != "" || sp.Degraded {
			t.Fatalf("clean run recorded a failed/degraded span: %+v", sp)
		}
	}
}

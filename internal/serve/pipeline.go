package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"nevermind/internal/atds"
	"nevermind/internal/core"
	"nevermind/internal/data"
	"nevermind/internal/obs"
	"nevermind/internal/rng"
	"nevermind/internal/sim"
)

// Source is the pipeline's input feed: one weekly batch per successful Next,
// ok == false on exhaustion. The error return is the seam a real telemetry
// feed (and the chaos layer standing in for one) needs: a pull can fail
// transiently, or deliver a batch that later fails ingest validation. The
// re-delivery contract: after a pull error or a bad-batch rejection, the
// next Next call re-serves the same week — a week is consumed only once it
// has been delivered cleanly. The simulator's never-failing stream
// trivially satisfies this because it never errors.
type Source interface {
	Remaining() int
	Next() (sim.Batch, bool, error)
}

// simFeed adapts the simulator's infallible stream to the Source contract.
type simFeed struct{ src *sim.Source }

func (f simFeed) Remaining() int { return f.src.Remaining() }
func (f simFeed) Next() (sim.Batch, bool, error) {
	b, ok := f.src.Next()
	return b, ok, nil
}

// SimFeed wraps a simulator stream as a pipeline Source.
func SimFeed(src *sim.Source) Source { return simFeed{src} }

// RetryConfig bounds how hard the pipeline fights a failing week before
// giving up: each of a week's operations (pull, ingest, snapshot refresh)
// shares one attempt budget, and failed attempts back off exponentially
// with deterministic jitter.
type RetryConfig struct {
	// MaxAttempts is the per-week attempt budget (default 6).
	MaxAttempts int
	// BaseDelay is the first backoff (default 50ms); each retry doubles it
	// up to MaxDelay (default 2s). The actual sleep is jittered uniformly
	// in [delay/2, delay) from a seeded stream, so a fleet of retriers
	// cannot synchronise into a thundering herd yet a given seed replays
	// the exact same schedule.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Seed drives the jitter stream.
	Seed uint64
}

func (r RetryConfig) withDefaults() RetryConfig {
	if r.MaxAttempts <= 0 {
		r.MaxAttempts = 6
	}
	if r.BaseDelay <= 0 {
		r.BaseDelay = 50 * time.Millisecond
	}
	if r.MaxDelay <= 0 {
		r.MaxDelay = 2 * time.Second
	}
	return r
}

// backoffFor returns the jittered exponential delay for the given attempt
// (1-based): min(Base<<(attempt-1), Max) scaled into [1/2, 1).
func (r RetryConfig) backoffFor(op string, week, attempt int) time.Duration {
	d := r.BaseDelay << uint(attempt-1)
	if d > r.MaxDelay || d <= 0 { // <= 0 guards shift overflow
		d = r.MaxDelay
	}
	var oph uint64
	for _, c := range op {
		oph = oph*131 + uint64(c)
	}
	j := rng.Derive(r.Seed, oph, uint64(week), uint64(attempt)).Float64()
	return d/2 + time.Duration(float64(d/2)*j)
}

// Backoff exposes the jittered schedule to other retry loops (the fleet
// gateway's shard client) so the whole system backs off with one policy
// and replays deterministically from one seed. The defaulting mirrors what
// the pipeline itself applies.
func (r RetryConfig) Backoff(op string, key, attempt int) time.Duration {
	return r.withDefaults().backoffFor(op, key, attempt)
}

// RetryEvent describes one failed attempt the pipeline is about to back off
// from; OnRetry observers get it before the sleep.
type RetryEvent struct {
	Week    int
	Op      string // "pull", "ingest", "snapshot"
	Attempt int
	Err     error
	Backoff time.Duration
}

// PipelineConfig drives the weekly serving loop.
type PipelineConfig struct {
	// Source feeds one simulated week per tick (the production stand-in for
	// the telemetry feed). Wrap a *sim.Source with SimFeed.
	Source Source
	// Queue is the ATDS work queue predictions are dispatched into; nil
	// builds a default-sized queue on the first batch.
	Queue *atds.Queue
	// Tick is the wall-clock interval between simulated weeks; <= 0 runs
	// the whole stream back to back (the smoke-test mode).
	Tick time.Duration
	// Retry bounds the per-week retry budget and backoff schedule.
	Retry RetryConfig
	// Sleep, when set, replaces time.Sleep for backoff waits — the soak
	// tests inject an instant fake to run years of faults in seconds.
	Sleep func(time.Duration)
	// OnSnapshot, when set, observes each newly completed week with the
	// fresh snapshot it was ranked from — the drift monitors' feed. It runs
	// after the exactly-once guard, so a re-delivered or replayed week is
	// never observed twice.
	OnSnapshot func(sn *Snapshot, week int)
	// OnWeek, when set, observes each completed week.
	OnWeek func(WeekReport)
	// OnRetry, when set, observes each backed-off attempt.
	OnRetry func(RetryEvent)
}

// WeekReport is what one pipeline tick did: the week it ingested and
// ranked, the data volumes, the dispatch outcomes of the seven days the
// ATDS queue advanced, and how many faults it had to retry through.
type WeekReport struct {
	Week            int
	IngestedTests   int
	IngestedTickets int
	Submitted       int // predicted jobs pushed into ATDS
	Pending         int // queue depth after the week's dispatching
	Retries         int // attempts that failed and were retried
	Stats           atds.Stats
}

// Pipeline is the weekly loop of §3.2 run against the live store: every
// tick it pulls the next week of line tests from the source, ingests them,
// ranks the population with the current model generation, submits the
// budgeted TopN into the ATDS queue alongside the week's customer tickets,
// advances the queue through the seven days, and accumulates outcome stats.
//
// The loop is built to survive a misbehaving feed: transient pull and
// ingest errors retry with bounded exponential backoff, a batch that fails
// validation is discarded and the week re-pulled, and a stale snapshot
// (failed rebuild) is retried until fresh — so a ranking never runs over
// partial data. Only an error that persists through the whole attempt
// budget, or one not marked transient, stops the loop; each week is
// dispatched into ATDS exactly once.
type Pipeline struct {
	srv       *Server
	cfg       PipelineConfig
	total     atds.Stats
	lastWeek  int // last week dispatched into ATDS (exactly-once guard)
	haveWeeks bool
}

// NewPipeline binds a pipeline to a server.
func NewPipeline(srv *Server, cfg PipelineConfig) (*Pipeline, error) {
	if cfg.Source == nil {
		return nil, fmt.Errorf("serve: pipeline needs a source")
	}
	cfg.Retry = cfg.Retry.withDefaults()
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	return &Pipeline{srv: srv, cfg: cfg}, nil
}

// Totals returns the outcome stats accumulated across all completed weeks.
func (p *Pipeline) Totals() atds.Stats { return p.total }

// Run executes the loop until the source is exhausted or ctx is cancelled.
func (p *Pipeline) Run(ctx context.Context) error {
	var tick <-chan time.Time
	if p.cfg.Tick > 0 {
		t := time.NewTicker(p.cfg.Tick)
		defer t.Stop()
		tick = t.C
	}
	for p.cfg.Source.Remaining() > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		if _, err := p.Step(); err != nil {
			return err
		}
		if tick != nil && p.cfg.Source.Remaining() > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-tick:
			}
		}
	}
	return nil
}

// errStaleSnapshot is the retryable "rebuild failed, still serving the old
// version" condition the snapshot-refresh loop spins on.
var errStaleSnapshot = errors.New("snapshot stale after ingest")

// retry records a failed attempt, backs off, and reports whether the budget
// still has room. attempt is the week's running attempt counter.
func (p *Pipeline) retry(rep *WeekReport, op string, week int, attempt *int, cause error) bool {
	*attempt++
	if *attempt >= p.cfg.Retry.MaxAttempts {
		return false
	}
	d := p.cfg.Retry.backoffFor(op, week, *attempt)
	rep.Retries++
	p.srv.m.pipelineRetries.Add(1)
	p.srv.m.retriesByOp.With(op).Add(1)
	if p.cfg.OnRetry != nil {
		p.cfg.OnRetry(RetryEvent{Week: week, Op: op, Attempt: *attempt, Err: cause, Backoff: d})
	}
	p.cfg.Sleep(d)
	return true
}

// stageSpan couples one stage execution's trace span with its duration
// observation: end commits the span to the ring and feeds the per-stage
// latency histogram in one call, so the two can never disagree about what
// counts as one execution.
type stageSpan struct {
	span *obs.ActiveSpan
	obsv func(time.Duration)
	t0   time.Time
	done bool
}

// beginStage opens a span for one execution of a pipeline stage.
func (p *Pipeline) beginStage(stage string, week int) *stageSpan {
	m := p.srv.m
	return &stageSpan{
		span: m.tracer.Start(stage, week),
		obsv: m.stageDur.With(stage).Observe,
		t0:   time.Now(),
	}
}

func (ss *stageSpan) end() {
	if ss.done {
		return
	}
	ss.done = true
	ss.span.End()
	ss.obsv(time.Since(ss.t0))
}

// Step runs one tick: ingest the next week, rank, dispatch, advance. It
// returns ok == false once the source is exhausted.
func (p *Pipeline) Step() (ok bool, err error) {
	var rep WeekReport
	var batch sim.Batch
	attempt := 0

	// Pull + ingest with a shared bounded attempt budget. Error classes:
	//   - transient pull error: nothing was delivered; back off, re-pull.
	//   - bad batch (ErrBadBatch): the store rejected the delivery whole;
	//     back off, re-pull — the feed re-serves the week.
	//   - transient ingest error: the validated batch hit an injected or
	//     real infrastructure fault before any state change; back off and
	//     re-ingest the same batch (ingest is idempotent: test records
	//     overwrite per (line, week), tickets dedup).
	//   - anything else is terminal for the loop.
pull:
	for {
		psp := p.beginStage("pull", rep.Week)
		b, more, perr := p.cfg.Source.Next()
		if !more {
			psp.end()
			return false, nil
		}
		batch = b
		rep.Week = batch.Week
		psp.span.Week(batch.Week).Attempt(attempt + 1).Fail(perr)
		psp.end()
		if perr != nil {
			if !IsTransient(perr) {
				return false, fmt.Errorf("serve: pipeline week %d pull: %w", batch.Week, perr)
			}
			if !p.retry(&rep, "pull", batch.Week, &attempt, perr) {
				return false, fmt.Errorf("serve: pipeline week %d pull failed after %d attempts: %w",
					batch.Week, attempt, perr)
			}
			continue
		}
		for {
			isp := p.beginStage("ingest", batch.Week)
			ierr := p.ingest(&batch, &rep)
			isp.span.Attempt(attempt + 1).Fail(ierr)
			isp.end()
			if ierr == nil {
				break pull
			}
			switch {
			case IsBadBatch(ierr):
				if !p.retry(&rep, "ingest", batch.Week, &attempt, ierr) {
					return false, fmt.Errorf("serve: pipeline week %d: bad batches exhausted %d attempts: %w",
						batch.Week, attempt, ierr)
				}
				continue pull // discard the delivery, re-pull the week
			case IsTransient(ierr):
				if !p.retry(&rep, "ingest", batch.Week, &attempt, ierr) {
					return false, fmt.Errorf("serve: pipeline week %d ingest failed after %d attempts: %w",
						batch.Week, attempt, ierr)
				}
				continue // same batch, retry the ingest
			default:
				return false, fmt.Errorf("serve: pipeline week %d ingest: %w", batch.Week, ierr)
			}
		}
	}
	p.srv.m.ingestedTests.Add(int64(rep.IngestedTests))
	p.srv.m.ingestedTickets.Add(int64(rep.IngestedTickets))

	// The ranking must see this week's data: a snapshot older than the
	// store version after our ingest means a rebuild failed (the API keeps
	// serving the stale one; the pipeline retries until fresh).
	wantVersion := p.srv.Store().Version()
	var sn *Snapshot
	for {
		ssp := p.beginStage("snapshot", batch.Week)
		sn = p.srv.Store().Snapshot()
		if sn != nil && sn.Version >= wantVersion {
			ssp.end()
			break
		}
		// Degraded: the rebuild failed and the store is still serving the
		// pre-ingest snapshot; this attempt ran against stale state.
		ssp.span.Attempt(attempt + 1).Fail(errStaleSnapshot).Degraded()
		ssp.end()
		if !p.retry(&rep, "snapshot", batch.Week, &attempt, errStaleSnapshot) {
			return false, fmt.Errorf("serve: pipeline week %d: %w after %d attempts",
				batch.Week, errStaleSnapshot, attempt)
		}
	}

	if p.cfg.Queue == nil {
		q, err := atds.NewQueue(atds.DefaultConfig(sn.DS.NumLines), data.SaturdayOf(batch.Week))
		if err != nil {
			return false, err
		}
		p.cfg.Queue = q
	}

	// Exactly-once dispatch: a week enters ATDS the first time it completes
	// ingest+rank, never again (a re-served or replayed week would
	// otherwise double the dispatch load).
	if p.haveWeeks && batch.Week <= p.lastWeek {
		return true, nil
	}

	// Saturday ranking run: budgeted TopN into the dispatch queue. The
	// week's score table is shared with the HTTP handlers — when the API
	// already ranked this (snapshot, week), the pipeline's run is a lookup.
	models := p.srv.Models()
	lines := sn.LinesAt(batch.Week)
	if len(lines) > 0 {
		scsp := p.beginStage("score", batch.Week)
		tab, err := sn.scoreTable(models, batch.Week)
		scsp.span.Fail(err)
		scsp.end()
		if err != nil {
			return false, fmt.Errorf("serve: pipeline week %d rank: %w", batch.Week, err)
		}
		rksp := p.beginStage("rank", batch.Week)
		ranked := tab.rankedLines(sn)
		n := models.Pred.Cfg.BudgetN
		if n > len(ranked) {
			n = len(ranked)
		}
		for rank, l := range ranked[:n] {
			p.cfg.Queue.Submit(l, atds.PriorityPredicted, rank)
		}
		rep.Submitted = n
		rksp.end()
	}
	// The week's customer tickets contend for the same capacity and always
	// win it (§3.2). The first batch also backfills the full ticket history
	// for the time-since-ticket features; only tickets that actually arrived
	// this week are new work for the queue.
	dsp := p.beginStage("dispatch", batch.Week)
	weekStart := data.SaturdayOf(batch.Week) - 6
	for _, t := range batch.Tickets {
		if t.Day >= weekStart {
			p.cfg.Queue.Submit(t.Line, atds.PriorityCustomer, 0)
		}
	}
	p.lastWeek, p.haveWeeks = batch.Week, true

	// Advance the dispatch system through the week.
	var outcomes []atds.Outcome
	for d := 0; d < 7; d++ {
		outcomes = append(outcomes, p.cfg.Queue.Advance()...)
	}
	rep.Stats = atds.Summarize(outcomes)
	rep.Pending = p.cfg.Queue.Pending()
	p.total.Add(rep.Stats)
	dsp.end()

	m := p.srv.m
	m.pipelineTicks.Add(1)
	m.pipelineWeek.Set(int64(batch.Week))
	m.pipelineSubmitted.Add(int64(rep.Submitted))
	m.pipelineWorked.Add(int64(rep.Stats.Predicted))
	m.pipelineExpired.Add(int64(rep.Stats.ExpiredPredicted))

	if p.cfg.OnSnapshot != nil {
		p.cfg.OnSnapshot(sn, batch.Week)
	}
	if p.cfg.OnWeek != nil {
		p.cfg.OnWeek(rep)
	}
	return true, nil
}

// ingest applies one delivered batch through the same store path the HTTP
// API uses. On any error the store is unchanged (validation rejects whole
// batches; injected faults fire before mutation), so the caller may retry.
func (p *Pipeline) ingest(batch *sim.Batch, rep *WeekReport) error {
	tests := make([]TestRecord, len(batch.Tests))
	for i, t := range batch.Tests {
		tests[i] = TestRecord{
			Line: t.M.Line, Week: t.M.Week, Missing: t.M.Missing, F: t.M.F[:],
			Profile: t.Profile, DSLAM: t.DSLAM, Usage: t.Usage,
		}
	}
	tickets := make([]TicketRecord, len(batch.Tickets))
	for i, t := range batch.Tickets {
		tickets[i] = TicketRecord{ID: t.ID, Line: t.Line, Day: t.Day, Category: uint8(t.Category)}
	}
	var err error
	if rep.IngestedTests, err = p.srv.Store().IngestTests(tests); err != nil {
		return err
	}
	if rep.IngestedTickets, err = p.srv.Store().IngestTickets(tickets); err != nil {
		return err
	}
	return nil
}

// rankOrder returns prediction indices best-first (score desc, line asc) —
// the same order /v1/rank serves.
func rankOrder(preds []core.Prediction) []int {
	order := make([]int, len(preds))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		pa, pb := preds[order[a]], preds[order[b]]
		if pa.Score != pb.Score {
			return pa.Score > pb.Score
		}
		return pa.Line < pb.Line
	})
	return order
}

package serve

import (
	"context"
	"fmt"
	"sort"
	"time"

	"nevermind/internal/atds"
	"nevermind/internal/core"
	"nevermind/internal/data"
	"nevermind/internal/features"
	"nevermind/internal/sim"
)

// PipelineConfig drives the weekly serving loop.
type PipelineConfig struct {
	// Source feeds one simulated week per tick (the production stand-in for
	// the telemetry feed).
	Source *sim.Source
	// Queue is the ATDS work queue predictions are dispatched into; nil
	// builds a default-sized queue on the first batch.
	Queue *atds.Queue
	// Tick is the wall-clock interval between simulated weeks; <= 0 runs
	// the whole stream back to back (the smoke-test mode).
	Tick time.Duration
	// OnWeek, when set, observes each completed week.
	OnWeek func(WeekReport)
}

// WeekReport is what one pipeline tick did: the week it ingested and
// ranked, the data volumes, and the dispatch outcomes of the seven days the
// ATDS queue advanced.
type WeekReport struct {
	Week            int
	IngestedTests   int
	IngestedTickets int
	Submitted       int // predicted jobs pushed into ATDS
	Pending         int // queue depth after the week's dispatching
	Stats           atds.Stats
}

// Pipeline is the weekly loop of §3.2 run against the live store: every
// tick it pulls the next week of line tests from the source, ingests them,
// ranks the population with the current model generation, submits the
// budgeted TopN into the ATDS queue alongside the week's customer tickets,
// advances the queue through the seven days, and accumulates outcome stats.
type Pipeline struct {
	srv   *Server
	cfg   PipelineConfig
	total atds.Stats
}

// NewPipeline binds a pipeline to a server.
func NewPipeline(srv *Server, cfg PipelineConfig) (*Pipeline, error) {
	if cfg.Source == nil {
		return nil, fmt.Errorf("serve: pipeline needs a source")
	}
	return &Pipeline{srv: srv, cfg: cfg}, nil
}

// Totals returns the outcome stats accumulated across all completed weeks.
func (p *Pipeline) Totals() atds.Stats { return p.total }

// Run executes the loop until the source is exhausted or ctx is cancelled.
func (p *Pipeline) Run(ctx context.Context) error {
	var tick <-chan time.Time
	if p.cfg.Tick > 0 {
		t := time.NewTicker(p.cfg.Tick)
		defer t.Stop()
		tick = t.C
	}
	for p.cfg.Source.Remaining() > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		if _, err := p.Step(); err != nil {
			return err
		}
		if tick != nil && p.cfg.Source.Remaining() > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-tick:
			}
		}
	}
	return nil
}

// Step runs one tick: ingest the next week, rank, dispatch, advance. It
// returns ok == false once the source is exhausted.
func (p *Pipeline) Step() (ok bool, err error) {
	batch, more := p.cfg.Source.Next()
	if !more {
		return false, nil
	}
	rep := WeekReport{Week: batch.Week}

	// Ingest the week through the same store path the HTTP API uses.
	tests := make([]TestRecord, len(batch.Tests))
	for i, t := range batch.Tests {
		tests[i] = TestRecord{
			Line: t.M.Line, Week: t.M.Week, Missing: t.M.Missing, F: t.M.F[:],
			Profile: t.Profile, DSLAM: t.DSLAM, Usage: t.Usage,
		}
	}
	tickets := make([]TicketRecord, len(batch.Tickets))
	for i, t := range batch.Tickets {
		tickets[i] = TicketRecord{ID: t.ID, Line: t.Line, Day: t.Day, Category: uint8(t.Category)}
	}
	if rep.IngestedTests, err = p.srv.store.IngestTests(tests); err != nil {
		return false, fmt.Errorf("serve: pipeline week %d ingest: %w", batch.Week, err)
	}
	if rep.IngestedTickets, err = p.srv.store.IngestTickets(tickets); err != nil {
		return false, fmt.Errorf("serve: pipeline week %d tickets: %w", batch.Week, err)
	}
	p.srv.m.ingestedTests.Add(int64(rep.IngestedTests))
	p.srv.m.ingestedTickets.Add(int64(rep.IngestedTickets))

	sn := p.srv.store.Snapshot()
	if sn == nil {
		return false, fmt.Errorf("serve: pipeline week %d: empty snapshot after ingest", batch.Week)
	}
	if p.cfg.Queue == nil {
		q, err := atds.NewQueue(atds.DefaultConfig(sn.DS.NumLines), data.SaturdayOf(batch.Week))
		if err != nil {
			return false, err
		}
		p.cfg.Queue = q
	}

	// Saturday ranking run: budgeted TopN into the dispatch queue.
	models := p.srv.Models()
	lines := sn.LinesAt(batch.Week)
	if len(lines) > 0 {
		examples := make([]features.Example, len(lines))
		for i, l := range lines {
			examples[i] = features.Example{Line: l, Week: batch.Week}
		}
		preds, err := models.Pred.PredictExamples(sn.DS, sn.Ix, examples)
		if err != nil {
			return false, fmt.Errorf("serve: pipeline week %d rank: %w", batch.Week, err)
		}
		order := rankOrder(preds)
		n := models.Pred.Cfg.BudgetN
		if n > len(order) {
			n = len(order)
		}
		for rank, i := range order[:n] {
			p.cfg.Queue.Submit(preds[i].Line, atds.PriorityPredicted, rank)
		}
		rep.Submitted = n
	}
	// The week's customer tickets contend for the same capacity and always
	// win it (§3.2). The first batch also backfills the full ticket history
	// for the time-since-ticket features; only tickets that actually arrived
	// this week are new work for the queue.
	weekStart := data.SaturdayOf(batch.Week) - 6
	for _, t := range batch.Tickets {
		if t.Day >= weekStart {
			p.cfg.Queue.Submit(t.Line, atds.PriorityCustomer, 0)
		}
	}

	// Advance the dispatch system through the week.
	var outcomes []atds.Outcome
	for d := 0; d < 7; d++ {
		outcomes = append(outcomes, p.cfg.Queue.Advance()...)
	}
	rep.Stats = atds.Summarize(outcomes)
	rep.Pending = p.cfg.Queue.Pending()
	p.total.Add(rep.Stats)

	m := p.srv.m
	m.pipelineTicks.Add(1)
	m.pipelineWeek.Set(int64(batch.Week))
	m.pipelineSubmitted.Add(int64(rep.Submitted))
	m.pipelineWorked.Add(int64(rep.Stats.Predicted))
	m.pipelineExpired.Add(int64(rep.Stats.ExpiredPredicted))

	if p.cfg.OnWeek != nil {
		p.cfg.OnWeek(rep)
	}
	return true, nil
}

// rankOrder returns prediction indices best-first (score desc, line asc) —
// the same order /v1/rank serves.
func rankOrder(preds []core.Prediction) []int {
	order := make([]int, len(preds))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		pa, pb := preds[order[a]], preds[order[b]]
		if pa.Score != pb.Score {
			return pa.Score > pb.Score
		}
		return pa.Line < pb.Line
	})
	return order
}

package serve

import (
	"testing"

	"nevermind/internal/core"
	"nevermind/internal/data"
	"nevermind/internal/features"
	"nevermind/internal/sim"
)

// The shared fixture simulates a small network once and trains one predictor
// and one locator; training is the expensive part, so every test in the
// package shares it. The models only need to be mechanically sound — serving
// tests probe the subsystem, not accuracy.
var (
	fixtureDS   *data.Dataset
	fixturePred *core.TicketPredictor
	fixtureLoc  *core.TroubleLocator
)

func fixture(t *testing.T) (*data.Dataset, *core.TicketPredictor, *core.TroubleLocator) {
	t.Helper()
	if fixtureDS == nil {
		res, err := sim.Run(sim.DefaultConfig(2000, 11))
		if err != nil {
			t.Fatal(err)
		}
		fixtureDS = res.Dataset

		cfg := core.DefaultPredictorConfig(fixtureDS.NumLines, 11)
		cfg.Rounds = 40
		cfg.MaxSelectExamples = 12000
		pred, err := core.TrainPredictor(fixtureDS, features.WeekRange(32, 38), cfg)
		if err != nil {
			t.Fatal(err)
		}
		fixturePred = pred

		lcfg := core.DefaultLocatorConfig(11)
		lcfg.Rounds = 20
		lcfg.MinCases = 5
		cases := core.CasesFromNotes(fixtureDS, data.FirstSaturday, data.SaturdayOf(40)-1)
		loc, err := core.TrainLocator(fixtureDS, cases, lcfg)
		if err != nil {
			t.Fatal(err)
		}
		fixtureLoc = loc
	}
	return fixtureDS, fixturePred, fixtureLoc
}

// recordsFor converts weeks [lo, hi] of a simulated dataset into the wire
// records the store ingests, tickets cut off at hi's Saturday — the same
// shape the production telemetry feed would send.
func recordsFor(ds *data.Dataset, lo, hi int) ([]TestRecord, []TicketRecord) {
	var tests []TestRecord
	for w := lo; w <= hi; w++ {
		for li := 0; li < ds.NumLines; li++ {
			m := ds.At(data.LineID(li), w)
			tests = append(tests, TestRecord{
				Line: m.Line, Week: w, Missing: m.Missing, F: append([]float32(nil), m.F[:]...),
				Profile: ds.ProfileOf[li], DSLAM: ds.DSLAMOf[li], Usage: ds.UsageOf[li],
			})
		}
	}
	var tickets []TicketRecord
	for _, tk := range ds.Tickets {
		if tk.Day <= data.SaturdayOf(hi) {
			tickets = append(tickets, TicketRecord{ID: tk.ID, Line: tk.Line, Day: tk.Day, Category: uint8(tk.Category)})
		}
	}
	return tests, tickets
}

package serve

import (
	"bytes"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync"

	"nevermind/internal/data"
)

// The scoring fast path avoids the two per-request costs that dominated the
// legacy handlers: encoding/json (reflection plus per-field allocation on
// both decode and encode) and feature encoding (moved into weekTable). The
// scratch buffers here are pooled so a steady-state /v1/score or /v1/rank
// request allocates nothing beyond what net/http itself requires.
//
// Ownership contract for pooled scratch: a handler Gets one scratch for the
// whole request, may grow its buffers (growth is retained for the next
// user), and must not let any of them escape the request — the response
// buffer is fully written to the ResponseWriter before the deferred Put
// returns the scratch. Snapshot/table data is never stored in scratch, only
// copied through it.

// scratch bundles one request's reusable buffers: the raw body, the parsed
// examples, and the rendered response.
type scratch struct {
	body     []byte
	examples []ScoreExample
	out      []byte
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// readBody slurps the request body into sc's pooled buffer under the same
// MaxBodyBytes cap the legacy decoder enforced (and the same "http: request
// body too large" error past it).
func readBody(w http.ResponseWriter, r *http.Request, sc *scratch) ([]byte, error) {
	rd := http.MaxBytesReader(w, r.Body, MaxBodyBytes)
	buf := sc.body
	if cap(buf) == 0 {
		buf = make([]byte, 0, 64<<10)
	}
	buf = buf[:0]
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := rd.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			sc.body = buf
			return buf, nil
		}
		if err != nil {
			sc.body = buf
			return nil, err
		}
	}
}

// parseScoreBody is a hand parser for exactly the happy-path /v1/score body:
//
//	{"examples":[{"line":N,"week":M}, ...]}
//
// with arbitrary JSON whitespace, fields in either order, repeated fields
// last-wins and absent fields zero — the cases encoding/json accepts for the
// same struct. Anything else (unknown keys, floats, escaped key names,
// out-of-int32 line ids, trailing data) returns ok == false and the caller
// falls back to the strict reflective decoder, which reproduces the exact
// error text the API has always returned. The fallback also re-parses valid
// bodies this grammar is too narrow for (e.g. "line" as a key), so the
// fast path can only ever accept what encoding/json would.
func parseScoreBody(body []byte, exs []ScoreExample) ([]ScoreExample, bool) {
	p := fastParser{b: body}
	p.ws()
	if !p.eat('{') || !p.ws() || !p.lit(`"examples"`) || !p.ws() || !p.eat(':') || !p.ws() || !p.eat('[') {
		return nil, false
	}
	p.ws()
	if p.peek() == ']' {
		p.i++
	} else {
		for {
			e, ok := p.example()
			if !ok {
				return nil, false
			}
			exs = append(exs, e)
			p.ws()
			c := p.next()
			if c == ',' {
				p.ws()
				continue
			}
			if c == ']' {
				break
			}
			return nil, false
		}
	}
	p.ws()
	if !p.eat('}') {
		return nil, false
	}
	p.ws()
	if p.i != len(p.b) {
		return nil, false
	}
	return exs, true
}

// ParseScoreExamples parses a /v1/score body exactly as the shard handler
// does: the fast hand parser first, then the strict reflective decoder on
// any deviation so a malformed body yields the identical error. The fleet
// gateway uses it to partition a request by ring ownership without changing
// a single accepted-or-rejected decision relative to a bare daemon.
func ParseScoreExamples(body []byte) ([]ScoreExample, error) {
	if exs, ok := parseScoreBody(body, nil); ok {
		return exs, nil
	}
	var req struct {
		Examples []ScoreExample `json:"examples"`
	}
	if err := DecodeStrict(bytes.NewReader(body), &req); err != nil {
		return nil, err
	}
	return req.Examples, nil
}

type fastParser struct {
	b []byte
	i int
}

// ws skips JSON whitespace; always true so it chains in && conditions.
func (p *fastParser) ws() bool {
	for p.i < len(p.b) {
		switch p.b[p.i] {
		case ' ', '\t', '\n', '\r':
			p.i++
		default:
			return true
		}
	}
	return true
}

func (p *fastParser) peek() byte {
	if p.i < len(p.b) {
		return p.b[p.i]
	}
	return 0
}

func (p *fastParser) next() byte {
	c := p.peek()
	p.i++
	return c
}

func (p *fastParser) eat(c byte) bool {
	if p.i < len(p.b) && p.b[p.i] == c {
		p.i++
		return true
	}
	return false
}

func (p *fastParser) lit(s string) bool {
	if len(p.b)-p.i < len(s) || string(p.b[p.i:p.i+len(s)]) != s {
		return false
	}
	p.i += len(s)
	return true
}

func (p *fastParser) example() (ScoreExample, bool) {
	var e ScoreExample
	if !p.eat('{') {
		return e, false
	}
	p.ws()
	if p.peek() == '}' {
		p.i++
		return e, true
	}
	for {
		isLine := false
		switch {
		case p.lit(`"line"`):
			isLine = true
		case p.lit(`"week"`):
		default:
			return e, false
		}
		p.ws()
		if !p.eat(':') {
			return e, false
		}
		p.ws()
		v, ok := p.integer()
		if !ok {
			return e, false
		}
		if isLine {
			if v < math.MinInt32 || v > math.MaxInt32 {
				return e, false // legacy decoder errors; let it phrase that
			}
			e.Line = data.LineID(v)
		} else {
			e.Week = int(v)
		}
		p.ws()
		c := p.next()
		if c == ',' {
			p.ws()
			continue
		}
		if c == '}' {
			return e, true
		}
		return e, false
	}
}

// integer parses a plain JSON integer: optional '-', no leading zeros, at
// most 18 digits (always fits int64), and the next byte must end the number
// — a '.', 'e' or any other continuation bails to the strict decoder.
func (p *fastParser) integer() (int64, bool) {
	neg := p.eat('-')
	start := p.i
	for p.i < len(p.b) && p.b[p.i] >= '0' && p.b[p.i] <= '9' {
		p.i++
	}
	nd := p.i - start
	if nd == 0 || nd > 18 || (nd > 1 && p.b[start] == '0') {
		return 0, false
	}
	if p.i >= len(p.b) {
		return 0, false // truncated body
	}
	switch p.b[p.i] {
	case ' ', '\t', '\n', '\r', ',', '}', ']':
	default:
		return 0, false
	}
	var v int64
	for _, c := range p.b[start:p.i] {
		v = v*10 + int64(c-'0')
	}
	if neg {
		v = -v
	}
	return v, true
}

// appendJSONFloat appends f exactly as encoding/json renders a float64:
// shortest round-trip form, 'f' format unless the magnitude forces
// exponent notation, with the two-digit negative exponent's leading zero
// trimmed. Byte-for-byte parity lets prerendered fragments splice into
// responses the legacy encoder's clients already parse.
func appendJSONFloat(b []byte, f float64) []byte {
	abs := math.Abs(f)
	fmtc := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		fmtc = 'e'
	}
	b = strconv.AppendFloat(b, f, fmtc, -1, 64)
	if fmtc == 'e' {
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b
}

// writeRawJSON sends a prerendered JSON body with the same headers
// writeJSON sets.
func writeRawJSON(w http.ResponseWriter, buf []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(buf)
}

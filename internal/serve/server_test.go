package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"nevermind/internal/data"
	"nevermind/internal/features"
)

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	ds, pred, loc := fixture(t)
	_ = ds
	if cfg.Predictor == nil {
		cfg.Predictor = pred
	}
	if cfg.Locator == nil {
		cfg.Locator = loc
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func postJSON(t *testing.T, url string, body any) (*http.Response, map[string]json.RawMessage) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding %s response: %v", url, err)
	}
	return resp, out
}

func getJSON(t *testing.T, url string) (*http.Response, map[string]json.RawMessage) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding %s response: %v", url, err)
	}
	return resp, out
}

func ingestWeeks(t *testing.T, ts *httptest.Server, lo, hi int) {
	t.Helper()
	ds, _, _ := fixture(t)
	tests, tickets := recordsFor(ds, lo, hi)
	resp, body := postJSON(t, ts.URL+"/v1/ingest", map[string]any{"tests": tests, "tickets": tickets})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %d %s", resp.StatusCode, body["error"])
	}
}

func TestServerRequiresPredictor(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("server built without a predictor")
	}
}

func TestServerEndpoints(t *testing.T) {
	srv := newTestServer(t, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	ds, pred, _ := fixture(t)

	// Before any ingest, scoring surfaces are unavailable but health is up.
	resp, _ := postJSON(t, ts.URL+"/v1/score", map[string]any{"examples": []map[string]any{{"line": 0, "week": 40}}})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("score on empty store: %d", resp.StatusCode)
	}
	resp, health := getJSON(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || string(health["status"]) != `"ok"` {
		t.Fatalf("healthz: %d %s", resp.StatusCode, health["status"])
	}

	ingestWeeks(t, ts, 39, 41)

	// Score a handful of lines and check against the direct scoring path.
	examples := []map[string]any{{"line": 0, "week": 41}, {"line": 5, "week": 41}, {"line": 9, "week": 40}}
	resp, body := postJSON(t, ts.URL+"/v1/score", map[string]any{"examples": examples})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("score: %d %s", resp.StatusCode, body["error"])
	}
	var preds []predictionJSON
	if err := json.Unmarshal(body["predictions"], &preds); err != nil {
		t.Fatal(err)
	}
	if len(preds) != 3 || preds[0].Line != 0 || preds[2].Week != 40 {
		t.Fatalf("score order not preserved: %+v", preds)
	}
	for _, p := range preds {
		if p.Probability <= 0 || p.Probability >= 1 {
			t.Fatalf("probability %v out of (0,1)", p.Probability)
		}
	}

	// Rank: defaults to the latest week and the configured budget, n= trims.
	resp, body = getJSON(t, ts.URL+"/v1/rank?n=7")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rank: %d %s", resp.StatusCode, body["error"])
	}
	if string(body["week"]) != "41" {
		t.Fatalf("rank week defaulted to %s, want 41", body["week"])
	}
	if string(body["population"]) != fmt.Sprint(ds.NumLines) {
		t.Fatalf("rank population %s, want %d", body["population"], ds.NumLines)
	}
	if err := json.Unmarshal(body["predictions"], &preds); err != nil {
		t.Fatal(err)
	}
	if len(preds) != 7 {
		t.Fatalf("rank returned %d predictions, want 7", len(preds))
	}
	for i := 1; i < len(preds); i++ {
		if preds[i].Score > preds[i-1].Score {
			t.Fatal("rank not sorted by score")
		}
	}
	// The server's ranking head must agree with the library's.
	top, err := pred.TopN(srv.Store().Snapshot().DS, 41)
	if err != nil {
		t.Fatal(err)
	}
	for i := range preds {
		if preds[i].Line != top[i].Line || preds[i].Score != top[i].Score {
			t.Fatalf("rank[%d] = %+v, library says %+v", i, preds[i], top[i])
		}
	}

	// Locate returns a full posterior over the locator's dispositions.
	resp, body = postJSON(t, ts.URL+"/v1/locate", map[string]any{"line": preds[0].Line, "week": 41})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("locate: %d %s", resp.StatusCode, body["error"])
	}
	var disps []struct {
		Name        string  `json:"name"`
		Location    string  `json:"location"`
		Probability float64 `json:"probability"`
	}
	if err := json.Unmarshal(body["dispositions"], &disps); err != nil {
		t.Fatal(err)
	}
	if len(disps) == 0 {
		t.Fatal("locate returned no dispositions")
	}
	// Dispositions carry independent one-vs-rest posteriors in [0,1],
	// served best first.
	for i, d := range disps {
		if d.Name == "" || d.Location == "" {
			t.Fatalf("disposition %d missing catalog fields: %+v", i, d)
		}
		if i > 0 && d.Probability > disps[i-1].Probability {
			t.Fatal("locate not sorted by probability")
		}
		if d.Probability < 0 || d.Probability > 1 {
			t.Fatalf("posterior %v out of [0,1]", d.Probability)
		}
	}

	// Bad requests name the problem.
	for _, tc := range []struct {
		url  string
		body any
	}{
		{"/v1/score", map[string]any{"examples": []map[string]any{{"line": ds.NumLines + 5, "week": 41}}}},
		{"/v1/score", map[string]any{"examples": []map[string]any{{"line": 0, "week": data.Weeks}}}},
		{"/v1/score", map[string]any{"examples": []map[string]any{}}},
		{"/v1/score", map[string]any{"unknown_field": 1}},
		{"/v1/locate", map[string]any{"line": 0, "week": 41, "model": "nonsense"}},
		{"/v1/ingest", map[string]any{"tests": []map[string]any{{"line": -1, "week": 0}}}},
	} {
		resp, body := postJSON(t, ts.URL+tc.url, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s with %v: status %d", tc.url, tc.body, resp.StatusCode)
		}
		if len(body["error"]) == 0 {
			t.Fatalf("%s error response has no message", tc.url)
		}
	}
	if resp, _ := http.Get(ts.URL + "/v1/score"); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET on a POST route: %d", resp.StatusCode)
	}
	// Query params with trailing garbage must be rejected, not silently
	// parsed as their numeric prefix.
	for _, q := range []string{"week=41xyz", "week=1e2", "n=7abc", "n=0"} {
		resp, body := getJSON(t, ts.URL+"/v1/rank?"+q)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("rank?%s: status %d", q, resp.StatusCode)
		}
		if len(body["error"]) == 0 {
			t.Fatalf("rank?%s error response has no message", q)
		}
	}

	// The monitoring surface reflects the traffic above.
	resp, vars := getJSON(t, ts.URL+"/debug/vars")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug/vars: %d", resp.StatusCode)
	}
	var reqs map[string]int64
	if err := json.Unmarshal(vars["requests"], &reqs); err != nil {
		t.Fatal(err)
	}
	if reqs["score"] == 0 || reqs["rank"] == 0 || reqs["ingest"] == 0 {
		t.Fatalf("request counters missing traffic: %v", reqs)
	}
	var errs map[string]int64
	if err := json.Unmarshal(vars["errors"], &errs); err != nil {
		t.Fatal(err)
	}
	if errs["score"] == 0 {
		t.Fatalf("error counter missed the bad requests: %v", errs)
	}
	var store struct {
		Lines      int   `json:"lines"`
		ShardLines []int `json:"shard_lines"`
	}
	if err := json.Unmarshal(vars["store"], &store); err != nil {
		t.Fatal(err)
	}
	if store.Lines != ds.NumLines || len(store.ShardLines) != srv.Store().NumShards() {
		t.Fatalf("store vars: %+v", store)
	}
	var cache struct {
		Hits, Misses, Entries int
	}
	if err := json.Unmarshal(vars["cache"], &cache); err != nil {
		t.Fatal(err)
	}
	if cache.Misses == 0 {
		t.Fatal("cache counters never moved")
	}
}

// TestScoreFreshAfterReingest pins the cache-invalidation contract: the
// encode/bin cache keys include the snapshot's dataset generation, so a
// score repeated with the same example list after a re-ingest that changed
// the data must reflect the new store contents, not the cached matrix of
// the old snapshot.
func TestScoreFreshAfterReingest(t *testing.T) {
	srv := newTestServer(t, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	ds, _, _ := fixture(t)

	ingestWeeks(t, ts, 39, 41)

	examples := make([]map[string]any, 0, 16)
	for l := 0; l < 16; l++ {
		examples = append(examples, map[string]any{"line": l * 13 % ds.NumLines, "week": 41})
	}
	score := func() (uint64, []predictionJSON) {
		resp, body := postJSON(t, ts.URL+"/v1/score", map[string]any{"examples": examples})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("score: %d %s", resp.StatusCode, body["error"])
		}
		var version uint64
		if err := json.Unmarshal(body["version"], &version); err != nil {
			t.Fatal(err)
		}
		var preds []predictionJSON
		if err := json.Unmarshal(body["predictions"], &preds); err != nil {
			t.Fatal(err)
		}
		return version, preds
	}
	v0, _ := score()
	score() // populate the cache for the current generation

	// Replay week 41 with perturbed measurements — re-ingested tests, as a
	// corrected upstream feed would send.
	tests, _ := recordsFor(ds, 41, 41)
	for i := range tests {
		if !tests[i].Missing {
			for j := range tests[i].F {
				tests[i].F[j] += 3
			}
		}
	}
	resp, body := postJSON(t, ts.URL+"/v1/ingest", map[string]any{"tests": tests})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-ingest: %d %s", resp.StatusCode, body["error"])
	}

	v1, got := score()
	if v1 == v0 {
		t.Fatal("re-ingest did not bump the served version")
	}
	// Ground truth: the same predictor scoring the new snapshot with no
	// cache in the path at all.
	pred := srv.Models().Pred
	pred.SetEncodeCache(nil)
	sn := srv.Store().Snapshot()
	ex := make([]features.Example, len(examples))
	for i, e := range examples {
		ex[i] = features.Example{Line: data.LineID(e["line"].(int)), Week: e["week"].(int)}
	}
	want, err := pred.PredictExamples(sn.DS, sn.Ix, ex)
	if err != nil {
		t.Fatal(err)
	}
	pred.SetEncodeCache(srv.cache)
	for i := range got {
		if got[i].Score != want[i].Score || got[i].Probability != want[i].Probability {
			t.Fatalf("post-reingest score %d served stale: %+v, uncached truth %+v", i, got[i], want[i])
		}
	}
}

// TestConcurrentIngestScore hammers ingest, score, rank and snapshot reads
// from many goroutines at once; run under -race it is the store's
// correctness-under-concurrency test.
func TestConcurrentIngestScore(t *testing.T) {
	srv := newTestServer(t, Config{Shards: 8})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	ds, _, _ := fixture(t)

	ingestWeeks(t, ts, 40, 40) // seed the store so scoring never 503s

	const iters = 8
	var wg sync.WaitGroup
	fail := make(chan string, 64)
	// Two ingest writers replaying different weeks.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(week int) {
			defer wg.Done()
			tests, tickets := recordsFor(ds, week, week)
			for i := 0; i < iters; i++ {
				buf, _ := json.Marshal(map[string]any{"tests": tests, "tickets": tickets})
				resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", bytes.NewReader(buf))
				if err != nil {
					fail <- err.Error()
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					fail <- fmt.Sprintf("ingest week %d: status %d", week, resp.StatusCode)
					return
				}
			}
		}(40 + w)
	}
	// Two score readers and one rank reader racing the writers.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				body := map[string]any{"examples": []map[string]any{
					{"line": (r*31 + i*7) % ds.NumLines, "week": 40},
					{"line": (r*13 + i*3) % ds.NumLines, "week": 40},
				}}
				buf, _ := json.Marshal(body)
				resp, err := http.Post(ts.URL+"/v1/score", "application/json", bytes.NewReader(buf))
				if err != nil {
					fail <- err.Error()
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					fail <- fmt.Sprintf("score: status %d", resp.StatusCode)
					return
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			resp, err := http.Get(ts.URL + "/v1/rank?week=40&n=5")
			if err != nil {
				fail <- err.Error()
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				fail <- fmt.Sprintf("rank: status %d", resp.StatusCode)
				return
			}
		}
	}()
	wg.Wait()
	close(fail)
	for msg := range fail {
		t.Error(msg)
	}
	if t.Failed() {
		t.FailNow()
	}
	if srv.Store().NumLines() != ds.NumLines {
		t.Fatalf("store holds %d lines after the storm", srv.Store().NumLines())
	}
	if sn := srv.Store().Snapshot(); sn == nil || sn.DS.Validate() != nil {
		t.Fatal("post-storm snapshot invalid")
	}
}

// TestGracefulShutdown proves the drain contract: once the context is
// cancelled the listener refuses new connections, but a request already in
// flight runs to completion and Serve only returns after it has.
func TestGracefulShutdown(t *testing.T) {
	srv := newTestServer(t, Config{DrainTimeout: 5 * time.Second})
	ts := httptest.NewServer(srv.Handler())
	ingestWeeks(t, ts, 40, 40)
	ts.Close()

	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	srv.scoreBarrier = func() {
		once.Do(func() {
			close(entered)
			<-release
		})
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, ln) }()

	// Park one request inside the score handler.
	scored := make(chan error, 1)
	go func() {
		buf, _ := json.Marshal(map[string]any{"examples": []map[string]any{{"line": 1, "week": 40}}})
		resp, err := http.Post("http://"+addr+"/v1/score", "application/json", bytes.NewReader(buf))
		if err != nil {
			scored <- err
			return
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		if resp.StatusCode != http.StatusOK {
			scored <- fmt.Errorf("in-flight request got status %d", resp.StatusCode)
			return
		}
		scored <- nil
	}()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("request never reached the handler")
	}

	cancel()
	// The listener must close promptly even though a request is in flight.
	refused := false
	for i := 0; i < 100; i++ {
		c, err := net.DialTimeout("tcp", addr, 100*time.Millisecond)
		if err != nil {
			refused = true
			break
		}
		c.Close()
		time.Sleep(20 * time.Millisecond)
	}
	if !refused {
		t.Fatal("listener still accepting after shutdown began")
	}
	select {
	case err := <-served:
		t.Fatalf("Serve returned %v with a request still in flight", err)
	default:
	}

	close(release)
	if err := <-scored; err != nil {
		t.Fatalf("in-flight request failed across the drain: %v", err)
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after the drain")
	}
}

// TestHotReloadEquality proves the reload contract: reloading the same model
// file swaps the model generation and the pre/post-reload scores are
// bit-identical.
func TestHotReloadEquality(t *testing.T) {
	ds, pred, loc := fixture(t)
	dir := t.TempDir()
	predPath := filepath.Join(dir, "pred.gob.gz")
	locPath := filepath.Join(dir, "loc.gob.gz")
	if err := pred.Save(predPath); err != nil {
		t.Fatal(err)
	}
	if err := loc.Save(locPath); err != nil {
		t.Fatal(err)
	}

	srv := newTestServer(t, Config{PredictorPath: predPath, LocatorPath: locPath})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	ingestWeeks(t, ts, 40, 41)

	score := func() []predictionJSON {
		examples := make([]map[string]any, 0, 32)
		for l := 0; l < 32; l++ {
			examples = append(examples, map[string]any{"line": l * 17 % ds.NumLines, "week": 41})
		}
		resp, body := postJSON(t, ts.URL+"/v1/score", map[string]any{"examples": examples})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("score: %d %s", resp.StatusCode, body["error"])
		}
		var preds []predictionJSON
		if err := json.Unmarshal(body["predictions"], &preds); err != nil {
			t.Fatal(err)
		}
		return preds
	}

	before := score()
	gen0 := srv.Models()
	resp, body := postJSON(t, ts.URL+"/v1/reload", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload: %d %s", resp.StatusCode, body["error"])
	}
	var res ReloadResult
	raw, _ := json.Marshal(body)
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if !res.Identical {
		t.Fatalf("same-file reload reported non-identical scores: %+v", res)
	}
	if res.ProbeExamples == 0 {
		t.Fatal("reload probe scored nothing despite a populated store")
	}
	if res.MaxAbsDiff != 0 {
		t.Fatalf("same-file reload max diff %v", res.MaxAbsDiff)
	}
	if srv.Models() == gen0 {
		t.Fatal("reload did not swap the model generation")
	}
	after := score()
	if len(before) != len(after) {
		t.Fatal("score batch sizes differ")
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("score %d changed across reload: %+v vs %+v", i, before[i], after[i])
		}
	}

	// A reload counter must have moved.
	_, vars := getJSON(t, ts.URL+"/debug/vars")
	if string(vars["reloads"]) != "1" {
		t.Fatalf("reloads counter = %s", vars["reloads"])
	}

	// Operational settings set on the process (the -budget and -workers
	// flags) survive a reload instead of reverting to the model file's.
	cur := srv.Models().Pred
	cur.Cfg.BudgetN = 123
	cur.Cfg.Workers = 3
	resp, body = postJSON(t, ts.URL+"/v1/reload", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second reload: %d %s", resp.StatusCode, body["error"])
	}
	if got := srv.Models().Pred.Cfg.BudgetN; got != 123 {
		t.Fatalf("reload reverted BudgetN to %d", got)
	}
	if got := srv.Models().Pred.Cfg.Workers; got != 3 {
		t.Fatalf("reload reverted Workers to %d", got)
	}

	// Without model paths, reload is an error and the old generation stays.
	srv2 := newTestServer(t, Config{})
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	gen := srv2.Models()
	resp, body = postJSON(t, ts2.URL+"/v1/reload", nil)
	if resp.StatusCode == http.StatusOK {
		t.Fatal("pathless reload succeeded")
	}
	if len(body["error"]) == 0 {
		t.Fatal("pathless reload returned no error message")
	}
	if srv2.Models() != gen {
		t.Fatal("failed reload swapped models")
	}
}

package serve

import (
	"bytes"
	"net/url"
	"testing"

	"nevermind/internal/data"
)

// FuzzIngestJSON drives the exact decode-and-ingest path /v1/ingest uses —
// decodeStrict into ingestRequest, then both store ingest calls — with
// arbitrary bodies. It pins the hardening the fuzzer originally motivated:
//
//   - no panic and no store mutation on any malformed body;
//   - trailing data after the JSON value is rejected, not silently dropped
//     (`{"tests":[...]}garbage` used to ingest the prefix and say 200);
//   - a body that decodes but fails validation leaves the store untouched
//     (version unchanged), so a bad batch can never half-apply.
func FuzzIngestJSON(f *testing.F) {
	f.Add([]byte(`{"tests":[{"line":1,"week":40,"f":[1,2,3]}],"tickets":[{"id":1,"line":1,"day":274,"category":2}]}`))
	f.Add([]byte(`{"tests":[{"line":1,"week":40}]}garbage`)) // trailing-data regression
	f.Add([]byte(`{"tests":[{"line":1,"week":40}]} {"tests":[]}`))
	f.Add([]byte(`{"tests":[{"line":-1,"week":40}]}`))
	f.Add([]byte(`{"tests":[{"line":1,"week":9999}]}`))
	f.Add([]byte(`{"tests":[{"line":1,"week":40,"f":[1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17]}]}`))
	f.Add([]byte(`{"tickets":[{"id":1,"line":1,"day":-3}]}`))
	f.Add([]byte(`{"tickets":[{"id":1,"line":1,"day":4,"category":255}]}`))
	f.Add([]byte(`{"unknown_field":true}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Add([]byte(`{"tests":`))
	f.Add([]byte("{\"tests\":[{\"line\":4194303,\"week\":51,\"missing\":true}]}")) // above MaxLineID: must reject
	f.Add([]byte("{\"tests\":[{\"line\":131071,\"week\":51,\"missing\":true}]}"))  // MaxLineID-1: widest legal grid

	f.Fuzz(func(t *testing.T, body []byte) {
		s := NewStore(2)
		var req IngestRequest
		if err := DecodeStrict(bytes.NewReader(body), &req); err != nil {
			// Rejected at decode: nothing may have been applied.
			if s.Version() != 0 {
				t.Fatalf("decode error but store version %d", s.Version())
			}
			return
		}
		// Decoded bodies must round-trip the strictness property: the decoder
		// consumed exactly one JSON value, so no accepted body may contain a
		// second one.
		v0 := s.Version()
		nt, errT := s.IngestTests(req.Tests)
		if errT != nil {
			if s.Version() != v0 {
				t.Fatalf("IngestTests failed (%v) but bumped version", errT)
			}
			if nt != 0 {
				t.Fatalf("IngestTests failed (%v) but reported %d stored", errT, nt)
			}
			return
		}
		if nt != len(req.Tests) {
			t.Fatalf("IngestTests stored %d of %d valid records", nt, len(req.Tests))
		}
		v1 := s.Version()
		nk, errK := s.IngestTickets(req.Tickets)
		if errK != nil {
			if s.Version() != v1 {
				t.Fatalf("IngestTickets failed (%v) but bumped version", errK)
			}
			return
		}
		// Everything accepted: every stored test record must be readable back
		// through a snapshot without panicking, and the snapshot must be
		// internally consistent.
		sn := s.Snapshot()
		if len(req.Tests) > 0 {
			if sn == nil {
				t.Fatal("accepted tests but snapshot is nil")
			}
			if sn.Version != s.Version() {
				t.Fatalf("snapshot version %d != store version %d", sn.Version, s.Version())
			}
			for _, r := range req.Tests {
				if !sn.Present[r.Week][r.Line] {
					t.Fatalf("accepted record (line %d, week %d) absent from snapshot", r.Line, r.Week)
				}
			}
			// The snapshot carries the subset of accepted tickets whose line
			// fits the grid — never more than were stored.
			if got := len(sn.DS.Tickets); got > nk {
				t.Fatalf("snapshot has %d tickets, only %d were stored", got, nk)
			}
		}
	})
}

// FuzzRankParams holds /v1/rank's query parsing to its contract: it either
// errors, or returns a week inside [0, data.Weeks) and n >= 1. No input may
// panic, be prefix-parsed, or be silently clamped into range.
func FuzzRankParams(f *testing.F) {
	f.Add("week=40&n=10")
	f.Add("week=40")
	f.Add("n=1")
	f.Add("")
	f.Add("week=-1")
	f.Add("week=52")
	f.Add("week=40.5")
	f.Add("week=40notanumber")
	f.Add("n=0")
	f.Add("n=-5")
	f.Add("n=99999999999999999999")
	f.Add("week=%zz")
	f.Add("week=40&week=51")

	f.Fuzz(func(t *testing.T, query string) {
		q, err := url.ParseQuery(query)
		if err != nil {
			return
		}
		week, n, err := ParseRankParams(q, 40, 10)
		if err != nil {
			return
		}
		if week < 0 || week >= data.Weeks {
			t.Fatalf("accepted week %d outside [0,%d) from %q", week, data.Weeks, query)
		}
		if n < 1 {
			t.Fatalf("accepted n %d < 1 from %q", n, query)
		}
	})
}

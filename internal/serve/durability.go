package serve

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"nevermind/internal/data"
	"nevermind/internal/obs"
	"nevermind/internal/wal"
)

// DurabilityConfig tunes the write-ahead log + checkpoint manager. Dir is
// required; everything else has serviceable defaults.
type DurabilityConfig struct {
	// Dir holds the WAL segments and checkpoint files.
	Dir string
	// Sync is the fsync policy for WAL appends (-wal.fsync).
	Sync wal.SyncPolicy
	// SyncEvery is the background fsync period under SyncInterval.
	SyncEvery time.Duration
	// SegmentBytes rotates WAL segments at this size. Default 64 MB.
	SegmentBytes int64
	// CheckpointEvery writes a checkpoint once the store is this many
	// versions past the last one. Default 256; <0 disables version-driven
	// checkpoints.
	CheckpointEvery int64
	// CheckpointInterval also checkpoints on a timer when versions moved at
	// all since the last one. 0 disables the timer.
	CheckpointInterval time.Duration
	// KeepCheckpoints retains this many checkpoint files; the WAL is only
	// truncated through the OLDEST retained one, so a corrupt newest
	// checkpoint still recovers from an older one plus the log. Default 2.
	KeepCheckpoints int
	// NoFinalCheckpoint skips the checkpoint Close normally writes — for
	// benchmarks that must leave the directory byte-stable across runs.
	NoFinalCheckpoint bool
}

func (c *DurabilityConfig) fill() {
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 256
	}
	if c.KeepCheckpoints <= 0 {
		c.KeepCheckpoints = 2
	}
}

// RecoveryStats reports what OpenDurability found on disk and how the store
// was rebuilt from it.
type RecoveryStats struct {
	// CheckpointVersion is the version of the checkpoint loaded, 0 if the
	// store started from scratch.
	CheckpointVersion uint64
	// SkippedCheckpoints counts newer checkpoint files that failed to load
	// (corrupt or torn) before one succeeded.
	SkippedCheckpoints int
	// ReplayedRecords is the number of WAL records applied past the
	// checkpoint.
	ReplayedRecords int
	// TruncatedBytes/DroppedSegments echo the WAL repair (torn tails cut,
	// unreachable segments removed).
	TruncatedBytes  int64
	DroppedSegments int
	// Version is the store version recovery reached.
	Version uint64
	// Duration is wall-clock recovery time: checkpoint load + repair +
	// replay.
	Duration time.Duration
}

// Durability runs the store's write-ahead log and checkpoint loop: it
// recovers the store from disk at open, logs every ingest batch before the
// caller sees the ack (ordering guaranteed by the store's version lock),
// and periodically checkpoints + prunes so recovery stays fast and the log
// stays bounded.
//
// Failure contract: if a WAL append fails (disk full, I/O error), the log
// freezes — no later batch can be logged past a hole — and serving
// continues in memory with wal_append_failures_total climbing. Checkpoints
// keep running, so the durable loss window stays bounded by the checkpoint
// cadence; a restart heals the log.
type Durability struct {
	store *Store
	log   *wal.Log
	cfg   DurabilityConfig

	recovery RecoveryStats

	lastCkpt       atomic.Uint64 // version of newest durable checkpoint
	records        atomic.Uint64 // WAL records appended this process
	appendFailures atomic.Uint64
	ckptTotal      atomic.Uint64
	ckptFailures   atomic.Uint64

	ckptDur  *obs.Histogram // nil when metrics are off
	fsyncDur *obs.Histogram

	// retention, when set, is the replication source's floor: checkpoint
	// pruning never truncates WAL segments past min(oldest kept checkpoint,
	// floor), so an active follower's next stream request stays answerable.
	retention atomic.Pointer[func() (uint64, bool)]
	// onAppend, when set, is called (outside locks) after every durable
	// append — the wake-up for long-polled replication streams.
	onAppend atomic.Pointer[func(version uint64)]

	kick     chan struct{}
	done     chan struct{}
	wg       sync.WaitGroup
	closeOne sync.Once
}

// SetRetention installs the replication retention hook: fn returns the
// lowest version an active follower still needs records after, and whether
// any follower is active at all. Safe to call at any time.
func (d *Durability) SetRetention(fn func() (uint64, bool)) {
	if fn == nil {
		d.retention.Store(nil)
		return
	}
	d.retention.Store(&fn)
}

// SetOnAppend installs a post-append observer (the replication source's
// stream wake-up). Safe to call at any time; nil removes it.
func (d *Durability) SetOnAppend(fn func(version uint64)) {
	if fn == nil {
		d.onAppend.Store(nil)
		return
	}
	d.onAppend.Store(&fn)
}

// LogVersion returns the version of the last durably appended WAL record —
// the position a replication stream can serve records up to.
func (d *Durability) LogVersion() uint64 { return d.log.LastVersion() }

// Dir returns the durability directory the WAL and checkpoints live in.
func (d *Durability) Dir() string { return d.cfg.Dir }

// OpenDurability recovers store from cfg.Dir (newest loadable checkpoint +
// contiguous WAL tail), installs the WAL sink so every later ingest is
// logged, and starts the checkpoint loop. The store must be empty. When reg
// is non-nil the durability metric family is registered on it — only then,
// so a daemon without -wal.dir exposes exactly the PR 7 metric set.
func OpenDurability(store *Store, reg *obs.Registry, cfg DurabilityConfig) (*Durability, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("serve: durability needs a directory")
	}
	cfg.fill()
	d := &Durability{
		store: store,
		cfg:   cfg,
		kick:  make(chan struct{}, 1),
		done:  make(chan struct{}),
	}
	t0 := time.Now()

	// Load the newest checkpoint that decodes cleanly; fall back one by one
	// (a crash mid-checkpoint leaves at most a .tmp husk, but a corrupt
	// final file must not strand the whole history).
	cks, err := wal.Checkpoints(cfg.Dir)
	if err != nil {
		return nil, err
	}
	for i := len(cks) - 1; i >= 0; i-- {
		var st StoreState
		v, err := wal.LoadCheckpoint(cks[i].Path, &st)
		if err != nil {
			log.Printf("serve: durability: skipping checkpoint %s: %v", cks[i].Path, err)
			d.recovery.SkippedCheckpoints++
			continue
		}
		if err := store.RestoreState(&st); err != nil {
			return nil, fmt.Errorf("serve: restore checkpoint %s: %w", cks[i].Path, err)
		}
		d.recovery.CheckpointVersion = v
		break
	}

	// Replay the WAL tail past the checkpoint, then open the log for
	// appends (Open repairs torn tails first, so replay sees a clean chain).
	walOpts := wal.Options{
		SegmentBytes:  cfg.SegmentBytes,
		Sync:          cfg.Sync,
		SyncEvery:     cfg.SyncEvery,
		FsyncObserver: d.observeFsync,
	}
	l, repair, err := wal.Open(cfg.Dir, walOpts)
	if err != nil {
		return nil, err
	}
	d.log = l
	d.recovery.TruncatedBytes = repair.TruncatedBytes
	d.recovery.DroppedSegments = repair.DroppedSegments
	base := d.recovery.CheckpointVersion
	if base >= repair.LastVersion {
		// Every surviving record is covered by the checkpoint (or the log
		// is empty): clear it so the next append continues at base+1.
		if err := l.Reset(base); err != nil {
			l.Close()
			return nil, err
		}
	} else {
		n, err := wal.Replay(cfg.Dir, base, store.ApplyWALRecord)
		if err != nil {
			l.Close()
			return nil, fmt.Errorf("serve: wal replay: %w", err)
		}
		d.recovery.ReplayedRecords = n
	}
	d.recovery.Version = store.Version()
	d.lastCkpt.Store(base)
	d.recovery.Duration = time.Since(t0)

	if reg != nil {
		d.register(reg)
	}
	store.SetWALSink(d.sink)

	d.wg.Add(1)
	go d.checkpointLoop()
	return d, nil
}

// Recovery returns what OpenDurability found and rebuilt.
func (d *Durability) Recovery() RecoveryStats { return d.recovery }

// LastCheckpointVersion returns the version of the newest durable checkpoint.
func (d *Durability) LastCheckpointVersion() uint64 { return d.lastCkpt.Load() }

// AppendFailures returns how many ingest batches failed to log (the log is
// frozen after the first).
func (d *Durability) AppendFailures() uint64 { return d.appendFailures.Load() }

func (d *Durability) observeFsync(dur time.Duration) {
	if d.fsyncDur != nil {
		d.fsyncDur.Observe(dur)
	}
}

// sink is the store's WAL hook: invoked under deltaMu for every version
// bump, so appends arrive in exact version order.
func (d *Durability) sink(version uint64, tests []TestRecord, tickets []data.Ticket) {
	rec := &wal.Record{Version: version}
	if len(tests) > 0 {
		rec.Op = wal.OpTests
		rec.Tests = make([]wal.TestRec, len(tests))
		for i, t := range tests {
			rec.Tests[i] = wal.TestRec{
				Line: t.Line, Week: t.Week, Missing: t.Missing,
				Profile: t.Profile, DSLAM: t.DSLAM, Usage: t.Usage, F: t.F,
			}
		}
	} else {
		rec.Op = wal.OpTickets
		rec.Tickets = tickets
	}
	if err := d.log.Append(rec); err != nil {
		if d.appendFailures.Add(1) == 1 {
			log.Printf("serve: durability: WAL append failed, log frozen until restart: %v", err)
		}
		return
	}
	d.records.Add(1)
	if fn := d.onAppend.Load(); fn != nil {
		(*fn)(version)
	}
	if d.cfg.CheckpointEvery > 0 && version-d.lastCkpt.Load() >= uint64(d.cfg.CheckpointEvery) {
		select {
		case d.kick <- struct{}{}:
		default:
		}
	}
}

func (d *Durability) checkpointLoop() {
	defer d.wg.Done()
	var tick <-chan time.Time
	if d.cfg.CheckpointInterval > 0 {
		t := time.NewTicker(d.cfg.CheckpointInterval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-d.done:
			return
		case <-d.kick:
			d.checkpoint()
		case <-tick:
			if d.store.Version() > d.lastCkpt.Load() {
				d.checkpoint()
			}
		}
	}
}

// checkpoint dumps the store, publishes the checkpoint atomically, prunes
// old ones, and truncates WAL segments covered by the OLDEST retained
// checkpoint (so losing the newest file never loses history).
func (d *Durability) checkpoint() {
	t0 := time.Now()
	st := d.store.ExportState()
	if st.Version <= d.lastCkpt.Load() {
		return
	}
	if err := wal.WriteCheckpoint(d.cfg.Dir, st.Version, st); err != nil {
		d.ckptFailures.Add(1)
		log.Printf("serve: durability: checkpoint at version %d failed: %v", st.Version, err)
		return
	}
	d.ckptTotal.Add(1)
	d.lastCkpt.Store(st.Version)
	if d.ckptDur != nil {
		d.ckptDur.Observe(time.Since(t0))
	}
	kept, err := wal.PruneCheckpoints(d.cfg.Dir, d.cfg.KeepCheckpoints)
	if err != nil {
		log.Printf("serve: durability: prune checkpoints: %v", err)
		return
	}
	if len(kept) > 0 {
		bound := kept[0].Version
		// Retention handshake: keep segments an active follower still needs.
		// A follower that lapses past its TTL loses the floor, hits a replay
		// gap on its next stream request, and re-bootstraps from a checkpoint
		// — bounded disk either way.
		if fn := d.retention.Load(); fn != nil {
			if floor, ok := (*fn)(); ok && floor < bound {
				bound = floor
			}
		}
		if _, err := d.log.TruncateThrough(bound); err != nil {
			log.Printf("serve: durability: truncate wal: %v", err)
		}
	}
}

// Checkpoint forces a synchronous checkpoint at the store's current version.
// Used by restart tests and operators who want a durable cut before a planned
// shutdown; with the version-driven cadence on (CheckpointEvery > 0) the
// background loop owns checkpointing and callers should not race it.
func (d *Durability) Checkpoint() { d.checkpoint() }

// Close stops the checkpoint loop, writes a final checkpoint (unless
// configured off), and closes the log cleanly.
func (d *Durability) Close() error {
	var err error
	d.closeOne.Do(func() {
		close(d.done)
		d.wg.Wait()
		d.store.SetWALSink(nil)
		if !d.cfg.NoFinalCheckpoint && d.store.Version() > d.lastCkpt.Load() {
			d.checkpoint()
		}
		err = d.log.Close()
	})
	return err
}

// Abandon stops the manager WITHOUT syncing or checkpointing — the
// crash-simulation close for restart tests: whatever the OS flushed is what
// recovery gets.
func (d *Durability) Abandon() {
	d.closeOne.Do(func() {
		close(d.done)
		d.wg.Wait()
		d.store.SetWALSink(nil)
		d.log.Abort()
	})
}

// register exposes the durability metric family. Called only when a
// registry is supplied, so daemons without -wal.dir keep the exact PR 7
// exposition (the /metrics golden test pins it).
func (d *Durability) register(reg *obs.Registry) {
	reg.CounterFunc("nevermind_wal_records_total",
		"Ingest batches appended to the write-ahead log.",
		func() float64 { return float64(d.records.Load()) })
	reg.CounterFunc("nevermind_wal_append_failures_total",
		"Ingest batches that failed to log (the WAL freezes at the first failure).",
		func() float64 { return float64(d.appendFailures.Load()) })
	reg.GaugeFunc("nevermind_wal_segments",
		"Segment files in the write-ahead log directory.",
		func() float64 { return float64(len(d.log.Segments())) })
	reg.GaugeFunc("nevermind_wal_last_version",
		"Store version of the last record appended to the WAL.",
		func() float64 { return float64(d.log.LastVersion()) })
	reg.GaugeFunc("nevermind_wal_lag_records",
		"Store versions not yet covered by a checkpoint (replay length after a crash).",
		func() float64 { return float64(d.store.Version() - d.lastCkpt.Load()) })
	d.fsyncDur = reg.Histogram("nevermind_wal_fsync_duration_seconds",
		"WAL fsync time.", nil)
	d.ckptDur = reg.Histogram("nevermind_checkpoint_duration_seconds",
		"Checkpoint export+write time.", nil)
	reg.CounterFunc("nevermind_checkpoints_total",
		"Checkpoints written successfully.",
		func() float64 { return float64(d.ckptTotal.Load()) })
	reg.CounterFunc("nevermind_checkpoint_failures_total",
		"Checkpoint attempts that failed.",
		func() float64 { return float64(d.ckptFailures.Load()) })
	reg.GaugeFunc("nevermind_checkpoint_last_version",
		"Store version of the newest durable checkpoint.",
		func() float64 { return float64(d.lastCkpt.Load()) })
	reg.GaugeFunc("nevermind_recovery_duration_seconds",
		"Wall-clock time startup recovery took (checkpoint load + WAL replay).",
		d.recovery.Duration.Seconds)
	reg.GaugeFunc("nevermind_recovery_replayed_records",
		"WAL records replayed past the checkpoint at startup.",
		func() float64 { return float64(d.recovery.ReplayedRecords) })
}

package serve

import (
	"fmt"
	"sort"

	"nevermind/internal/data"
	"nevermind/internal/wal"
)

// StoreState is the checkpoint shape: a complete, canonical dump of the
// store's shard contents plus the counters needed to resume exactly where a
// crashed process stopped. It is gob-encoded (gzipped) by wal.WriteCheckpoint
// — the same idiom as data.Dataset persistence. Canonical ordering (lines
// ascending, per-line weeks ascending, tickets in (Day, Line, ID, Category)
// order) makes the encoded bytes a function of the state alone, independent
// of shard count and map iteration order.
//
// The dump is full shard state, NOT a Snapshot: a snapshot excludes tickets
// for lines with no test record yet, while the shards keep them so those
// tickets surface once the line's first test arrives. A restart must not
// lose that pending set.
type StoreState struct {
	Version    uint64
	LatestWeek int64
	MaxLine    int64
	Lines      []LineDump
	Tickets    []data.Ticket
}

// LineDump is one line's full state: static attributes plus every seen
// week's measurement (Week is carried inside each data.Measurement).
type LineDump struct {
	Line    data.LineID
	Profile uint8
	DSLAM   int32
	Usage   float32
	Tests   []data.Measurement
}

// ExportState captures a consistent-enough dump for checkpointing: the
// version is read FIRST, then the shards are swept, so the captured state is
// at least as new as the recorded version. Replaying WAL records past that
// version on top re-applies idempotently (test cells overwrite per
// (line, week), tickets dedup), which is exactly what recovery does.
func (s *Store) ExportState() *StoreState {
	st := &StoreState{
		Version:    s.version.Load(),
		LatestWeek: s.latestWeek.Load(),
		MaxLine:    s.maxLine.Load(),
	}
	for i := range s.shards {
		sh := &s.shards[i]
		s.rlockShard(sh, "checkpoint")
		for l, ls := range sh.lines {
			ld := LineDump{Line: l, Profile: ls.profile, DSLAM: ls.dslam, Usage: ls.usage}
			for w := 0; w < data.Weeks; w++ {
				if ls.seen[w] {
					ld.Tests = append(ld.Tests, ls.tests[w])
				}
			}
			st.Lines = append(st.Lines, ld)
		}
		st.Tickets = append(st.Tickets, sh.tickets...)
		sh.mu.RUnlock()
	}
	sort.Slice(st.Lines, func(a, b int) bool { return st.Lines[a].Line < st.Lines[b].Line })
	sortTickets(st.Tickets)
	return st
}

// RestoreState seats a checkpoint dump into an empty store. The store must
// be fresh (version 0, nothing ingested) — recovery builds a new store,
// restores, then replays the WAL tail on top.
func (s *Store) RestoreState(st *StoreState) error {
	if s.version.Load() != 0 || s.maxLine.Load() != -1 {
		return fmt.Errorf("serve: RestoreState on a non-empty store (version %d)", s.version.Load())
	}
	for i := range st.Lines {
		ld := &st.Lines[i]
		if ld.Line < 0 || ld.Line >= MaxLineID {
			return fmt.Errorf("serve: checkpoint line %d outside [0,%d)", ld.Line, MaxLineID)
		}
		sh := s.shardOf(ld.Line)
		ls := &lineState{profile: ld.Profile, dslam: ld.DSLAM, usage: ld.Usage}
		for _, m := range ld.Tests {
			if m.Week < 0 || m.Week >= data.Weeks {
				return fmt.Errorf("serve: checkpoint line %d has week %d", ld.Line, m.Week)
			}
			if m.Line != ld.Line {
				return fmt.Errorf("serve: checkpoint line %d holds a measurement for line %d", ld.Line, m.Line)
			}
			ls.tests[m.Week] = m
			ls.seen[m.Week] = true
		}
		sh.lines[ld.Line] = ls
	}
	for _, t := range st.Tickets {
		if t.Line < 0 || t.Line >= MaxLineID || t.Day < 0 || t.Day >= data.DaysInYear || t.Category > data.CatOther {
			return fmt.Errorf("serve: checkpoint ticket %+v out of range", t)
		}
		sh := s.shardOf(t.Line)
		if _, dup := sh.dedup[t]; !dup {
			sh.dedup[t] = struct{}{}
			sh.tickets = append(sh.tickets, t)
		}
	}
	s.version.Store(st.Version)
	s.latestWeek.Store(st.LatestWeek)
	s.maxLine.Store(st.MaxLine)
	return nil
}

// ApplyWALRecord replays one logged batch during recovery or replication
// catch-up: the batch is applied through the same shard-apply helpers live
// ingest uses, and the store version is pinned to the record's version (no
// counter bump, no WAL sink — the record is already durable on the log that
// shipped it). The delta log IS fed, so a follower applying a stream of
// records keeps its snapshot rebuilds incremental. Records must arrive in
// version order; the WAL replay and stream decoders guarantee contiguity.
func (s *Store) ApplyWALRecord(rec *wal.Record) error {
	if v := s.version.Load(); rec.Version != v+1 {
		return fmt.Errorf("serve: replay version %d onto store at %d", rec.Version, v)
	}
	var cells []cellKey
	var added []data.Ticket
	switch rec.Op {
	case wal.OpTests:
		recs := make([]TestRecord, len(rec.Tests))
		for i, t := range rec.Tests {
			recs[i] = TestRecord{
				Line: t.Line, Week: t.Week, Missing: t.Missing,
				F: t.F, Profile: t.Profile, DSLAM: t.DSLAM, Usage: t.Usage,
			}
			if err := validateTest(&recs[i]); err != nil {
				return fmt.Errorf("serve: replay version %d: %w", rec.Version, err)
			}
		}
		cells = s.applyTests(recs)
	case wal.OpTickets:
		recs := make([]TicketRecord, len(rec.Tickets))
		for i, t := range rec.Tickets {
			recs[i] = TicketRecord{ID: t.ID, Line: t.Line, Day: t.Day, Category: uint8(t.Category)}
			if err := validateTicket(i, &recs[i]); err != nil {
				return fmt.Errorf("serve: replay version %d: %w", rec.Version, err)
			}
		}
		// A replayed ticket batch may be wholly covered by the checkpoint the
		// replay started from (ExportState captures at-least-the-version); the
		// version still advances, through an empty delta.
		added = s.applyTickets(recs)
	default:
		return fmt.Errorf("serve: replay version %d: unknown op %d", rec.Version, rec.Op)
	}
	s.pinVersion(rec.Version, cells, added)
	return nil
}

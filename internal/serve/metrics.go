package serve

import (
	"net/http"
	"time"

	"nevermind/internal/obs"
)

// Metric names, label sets and units are a stability contract (see
// DESIGN.md "Observability contract"): dashboards parse them, and the
// exposition-format golden test pins them. Routes and stages are preset at
// construction so the /metrics series set is deterministic from boot
// instead of depending on which traffic arrived first.
var (
	routeNames     = []string{"debugvars", "healthz", "ingest", "locate", "metrics", "rank", "reload", "score", "trace"}
	pipelineStages = []string{"pull", "ingest", "snapshot", "score", "rank", "dispatch"}
	// driftStages are the drift loop's tracer stages (see internal/drift).
	// Not preset into the stage-duration histogram: a daemon without a
	// drift controller keeps its exact /metrics series set.
	driftStages = []string{"monitor", "retrain", "shadow", "holdout", "promote", "rollback"}
	retryOps    = []string{"pull", "ingest", "snapshot"}
	storeOps    = []string{"ingest_tests", "ingest_tickets", "snapshot"}
)

// metrics owns the server's observability state: the registry every counter
// and histogram lives in, and the ring-buffer tracer the pipeline writes
// stage spans into. The registry is per-server, never process-global — a
// test binary spins up many servers, and global names collide. The old
// expvar block is gone; /debug/vars stays as a compatibility facade
// rendered from these same registry-backed values.
type metrics struct {
	start  time.Time
	reg    *obs.Registry
	tracer *obs.Tracer

	requests *obs.CounterVec   // per route: requests served
	errors   *obs.CounterVec   // per route: responses with status >= 400
	latency  *obs.HistogramVec // per route: handling time, seconds

	ingestedTests   *obs.Counter
	ingestedTickets *obs.Counter
	reloads         *obs.Counter
	reloadFailures  *obs.Counter // reload attempts that kept the old generation

	loadShed *obs.Counter // requests refused 503 at admission (max-inflight)
	timeouts *obs.Counter // requests whose deadline expired mid-handling

	pipelineTicks     *obs.Counter
	pipelineWeek      *obs.Gauge // latest completed week
	pipelineSubmitted *obs.Counter
	pipelineWorked    *obs.Counter
	pipelineExpired   *obs.Counter
	pipelineRetries   *obs.Counter
	retriesByOp       *obs.CounterVec   // pull / ingest / snapshot
	stageDur          *obs.HistogramVec // per pipeline stage: duration

	storeIngestDur   *obs.HistogramVec // ingest_tests / ingest_tickets
	storeBuildDur    *obs.Histogram    // snapshot full grid rebuild
	snapshotApplyDur *obs.Histogram    // snapshot delta apply
	snapshotBuilds   *obs.CounterVec   // successful builds: full / delta
	shardContended   *obs.CounterVec   // shard-lock acquisitions that had to wait

	scoreDur  *obs.Histogram // compiled-scorer batch calls (ml hook)
	scoreRows *obs.Counter   // examples scored through the compiled scorer
}

func newMetrics() *metrics {
	reg := obs.NewRegistry()
	m := &metrics{
		start:  time.Now(),
		reg:    reg,
		tracer: obs.NewTracer(0),
	}
	m.requests = reg.CounterVec("nevermind_http_requests_total",
		"Requests served, by route.", "route").Preset(routeNames...)
	m.errors = reg.CounterVec("nevermind_http_request_errors_total",
		"Responses with status >= 400, by route.", "route").Preset(routeNames...)
	m.latency = reg.HistogramVec("nevermind_http_request_duration_seconds",
		"Request handling time, by route.", "route", nil).Preset(routeNames...)

	m.ingestedTests = reg.Counter("nevermind_ingested_tests_total",
		"Line-test records ingested (HTTP and pipeline).")
	m.ingestedTickets = reg.Counter("nevermind_ingested_tickets_total",
		"Customer tickets ingested (HTTP and pipeline).")
	m.reloads = reg.Counter("nevermind_model_reloads_total",
		"Model hot-reloads that swapped the serving generation.")
	m.reloadFailures = reg.Counter("nevermind_model_reload_failures_total",
		"Reload attempts that failed and kept the old generation.")

	m.loadShed = reg.Counter("nevermind_http_load_shed_total",
		"Requests refused 503 at admission (max-inflight).")
	m.timeouts = reg.Counter("nevermind_http_timeouts_total",
		"Requests whose deadline expired mid-handling.")

	m.pipelineTicks = reg.Counter("nevermind_pipeline_ticks_total",
		"Completed weekly pipeline ticks.")
	m.pipelineWeek = reg.Gauge("nevermind_pipeline_week",
		"Latest week the pipeline completed.")
	m.pipelineSubmitted = reg.Counter("nevermind_pipeline_submitted_total",
		"Predicted jobs pushed into the ATDS queue.")
	m.pipelineWorked = reg.Counter("nevermind_pipeline_worked_total",
		"Predicted jobs started within the horizon.")
	m.pipelineExpired = reg.Counter("nevermind_pipeline_expired_total",
		"Predicted jobs aged out unworked.")
	m.pipelineRetries = reg.Counter("nevermind_pipeline_retries_total",
		"Pipeline attempts that failed and were retried (all ops).")
	m.retriesByOp = reg.CounterVec("nevermind_pipeline_retries_by_op_total",
		"Pipeline attempts retried, by operation.", "op").Preset(retryOps...)
	m.stageDur = reg.HistogramVec("nevermind_pipeline_stage_duration_seconds",
		"Duration of each pipeline stage execution.", "stage", nil).Preset(pipelineStages...)

	m.storeIngestDur = reg.HistogramVec("nevermind_store_ingest_duration_seconds",
		"Store batch ingest time, by record kind.", "op", nil).Preset("ingest_tests", "ingest_tickets")
	m.storeBuildDur = reg.Histogram("nevermind_store_snapshot_build_duration_seconds",
		"Snapshot full grid rebuild time (successful and failed builds).", nil)
	m.snapshotApplyDur = reg.Histogram("nevermind_store_snapshot_delta_apply_duration_seconds",
		"Snapshot delta apply time (successful and failed applies).", nil)
	m.snapshotBuilds = reg.CounterVec("nevermind_store_snapshot_builds_total",
		"Successful snapshot builds, by kind.", "kind").Preset("delta", "full")
	m.shardContended = reg.CounterVec("nevermind_store_shard_contention_total",
		"Shard-lock acquisitions that found the lock held, by operation.", "op").Preset(storeOps...)

	m.scoreDur = reg.Histogram("nevermind_ml_score_duration_seconds",
		"Compiled-scorer batch score calls.", nil)
	m.scoreRows = reg.Counter("nevermind_ml_score_rows_total",
		"Examples scored through the compiled scorer.")

	reg.GaugeFunc("nevermind_uptime_seconds",
		"Seconds since the server was built.", obs.Uptime(m.start))
	reg.GaugeFunc("nevermind_trace_spans_active",
		"Stage spans started but not yet finished (leaks if it sticks above 0).",
		func() float64 { return float64(m.tracer.Started() - m.tracer.Finished()) })
	reg.CounterFunc("nevermind_trace_spans_total",
		"Stage spans recorded since boot.",
		func() float64 { return float64(m.tracer.Finished()) })
	return m
}

// bindServer registers the exposition-time gauges that read live server
// state: store size and staleness, cache effectiveness, degraded mode.
// Called once from New, after the store and cache exist.
func (m *metrics) bindServer(s *Server) {
	reg := m.reg
	reg.GaugeFunc("nevermind_store_lines",
		"Distinct lines in the store.",
		func() float64 { return float64(s.Store().NumLines()) })
	reg.GaugeFunc("nevermind_store_version",
		"Store ingest version (bumps on every successful ingest).",
		func() float64 { return float64(s.Store().Version()) })
	reg.GaugeFunc("nevermind_store_latest_week",
		"Newest week any ingested test record carried (-1 before the first).",
		func() float64 { return float64(s.Store().LatestWeek()) })
	reg.GaugeFunc("nevermind_store_snapshot_lag",
		"Ingest versions the cached snapshot trails the store (0 = fresh).",
		func() float64 { return float64(s.Store().SnapshotLag()) })
	reg.CounterFunc("nevermind_store_snapshot_build_failures_total",
		"Snapshot rebuilds that failed (readers keep the last good snapshot).",
		func() float64 { return float64(s.Store().BuildFailures()) })
	reg.GaugeFunc("nevermind_degraded",
		"1 while scoring serves a stale snapshot, else 0.",
		func() float64 {
			if s.Store().SnapshotLag() > 0 {
				return 1
			}
			return 0
		})
	reg.CounterFunc("nevermind_cache_hits_total",
		"Encode/bin cache hits.",
		func() float64 { return float64(s.cache.StatsDetail().Hits) })
	reg.CounterFunc("nevermind_cache_misses_total",
		"Encode/bin cache misses.",
		func() float64 { return float64(s.cache.StatsDetail().Misses) })
	reg.CounterFunc("nevermind_cache_evictions_total",
		"Encode/bin cache LRU evictions.",
		func() float64 { return float64(s.cache.StatsDetail().Evictions) })
	reg.GaugeFunc("nevermind_cache_entries",
		"Live encode/bin cache entries.",
		func() float64 { return float64(s.cache.StatsDetail().Entries) })
}

// statusWriter captures the response status so the instrumentation can count
// error responses.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with per-route request, error and latency
// accounting under the given name.
func (m *metrics) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	requests := m.requests.With(name)
	errors := m.errors.With(name)
	latency := m.latency.With(name)
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		t0 := time.Now()
		h(sw, r)
		requests.Add(1)
		latency.Observe(time.Since(t0))
		if sw.status >= 400 {
			errors.Add(1)
		}
	}
}

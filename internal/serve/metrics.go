package serve

import (
	"expvar"
	"net/http"
	"time"
)

// metrics holds the daemon's expvar counters. The maps are deliberately not
// published into expvar's process-global registry — a test binary spins up
// many servers, and global names collide — so /debug/vars renders them from
// the server instance instead.
type metrics struct {
	start time.Time

	requests  *expvar.Map // per endpoint: requests served
	errors    *expvar.Map // per endpoint: responses with status >= 400
	latencyNs *expvar.Map // per endpoint: summed handling time, ns

	ingestedTests   expvar.Int
	ingestedTickets expvar.Int
	reloads         expvar.Int
	reloadFailures  expvar.Int // reload attempts that kept the old generation

	loadShed expvar.Int // requests refused 503 at admission (max-inflight)
	timeouts expvar.Int // requests whose deadline expired mid-handling

	pipelineTicks     expvar.Int
	pipelineWeek      expvar.Int // latest completed week
	pipelineSubmitted expvar.Int // predicted jobs pushed to ATDS
	pipelineWorked    expvar.Int // predicted jobs started within the horizon
	pipelineExpired   expvar.Int // predicted jobs aged out unworked
	pipelineRetries   expvar.Int // pull/ingest/snapshot attempts that were retried
}

func newMetrics() *metrics {
	return &metrics{
		start:     time.Now(),
		requests:  new(expvar.Map).Init(),
		errors:    new(expvar.Map).Init(),
		latencyNs: new(expvar.Map).Init(),
	}
}

// statusWriter captures the response status so the instrumentation can count
// error responses.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with per-endpoint request, error and latency
// accounting under the given name.
func (m *metrics) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		t0 := time.Now()
		h(sw, r)
		m.requests.Add(name, 1)
		m.latencyNs.Add(name, time.Since(t0).Nanoseconds())
		if sw.status >= 400 {
			m.errors.Add(name, 1)
		}
	}
}

// Package serve is the online serving subsystem: the long-running half of
// NEVERMIND that the paper's deployment implies but one-shot CLIs cannot
// provide. It keeps the latest per-line test history in a sharded in-memory
// store, exposes the trained models behind a JSON HTTP API (ingest, score,
// rank, locate), runs the weekly pipeline loop that feeds predictions into
// the ATDS queue, and manages the model lifecycle: load at startup, atomic
// hot-reload, graceful drain on shutdown.
package serve

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nevermind/internal/data"
)

// MaxLineID bounds accepted line ids. The snapshot materialises a dense
// (weeks x lines) grid of 120-byte Measurements, so a single wild id in an
// otherwise-valid batch dictates the grid width: the bound is the allocation
// budget. 1<<17 caps the worst-case grid at 52*131072*120B ~ 0.8 GB and
// leaves 6.5x headroom over the 20k-line default population; the previous
// 1<<22 admitted a ~26 GB grid from one record, which the ingest fuzzer
// demonstrated as a minutes-long stall.
const MaxLineID = 1 << 17

// TestRecord is one ingested weekly line-test result: the measurement plus
// the static line attributes (service tier, serving DSLAM, usage propensity)
// the collector forwards alongside it. F holds the Table 2 feature values in
// data.BasicFeatureNames order; shorter vectors are zero-extended, which is
// also how a Missing (modem-off) record with no measurements is sent. Static
// attributes update from non-Missing records only (a modem-off probe learns
// nothing about the line), except that a line's very first record seeds them
// regardless.
type TestRecord struct {
	Line    data.LineID `json:"line"`
	Week    int         `json:"week"`
	Missing bool        `json:"missing,omitempty"`
	F       []float32   `json:"f,omitempty"`
	Profile uint8       `json:"profile,omitempty"`
	DSLAM   int32       `json:"dslam,omitempty"`
	Usage   float32     `json:"usage,omitempty"`
}

// TicketRecord is one ingested customer ticket.
type TicketRecord struct {
	ID       int         `json:"id"`
	Line     data.LineID `json:"line"`
	Day      int         `json:"day"`
	Category uint8       `json:"category"`
}

// lineState is everything the store knows about one line: its static
// attributes and every week's test result seen so far (at-most-one record
// per week; re-ingesting a week overwrites, so replayed feeds converge).
type lineState struct {
	profile uint8
	dslam   int32
	usage   float32
	seen    [data.Weeks]bool
	tests   [data.Weeks]data.Measurement
}

// shard is one lock domain of the store. Lines hash to shards by id, so
// concurrent ingest batches for different line ranges proceed in parallel;
// tickets live with the shard of their line.
type shard struct {
	mu      sync.RWMutex
	lines   map[data.LineID]*lineState
	tickets []data.Ticket
	// dedup guards against replayed ticket feeds: the exact same ticket
	// (id, line, day, category) ingests once.
	dedup map[data.Ticket]struct{}
}

// Store is the sharded in-memory line-state store. Writers (ingest) take one
// shard's write lock per batch slice; readers (snapshot) take read locks
// shard by shard. Scoring never reads shards directly — it reads an
// immutable Snapshot materialised on demand and cached until the next
// ingest, so the scoring hot path costs zero lock traffic after the first
// request per store version.
type Store struct {
	shards  []shard
	mask    uint32
	version atomic.Uint64
	// latestWeek tracks the newest week ingested (-1 before any).
	latestWeek atomic.Int64
	snap       atomic.Pointer[Snapshot]
	// faults is the injection seam; nil in production.
	faults *FaultHooks
	// m, when set, receives ingest/build timings and shard-contention
	// counts; nil (a bare NewStore) records nothing.
	m *metrics
	// buildFailures counts snapshot rebuilds that failed (injected or
	// otherwise); while it climbs, readers keep getting the last good
	// snapshot and SnapshotLag reports how stale it is.
	buildFailures atomic.Uint64
}

// NewStore creates a store with the given shard count rounded up to a power
// of two; 0 sizes it to GOMAXPROCS, the lock-contention sweet spot for one
// writer goroutine per core.
func NewStore(shards int) *Store {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	s := &Store{shards: make([]shard, n), mask: uint32(n - 1)}
	for i := range s.shards {
		s.shards[i].lines = make(map[data.LineID]*lineState)
		s.shards[i].dedup = make(map[data.Ticket]struct{})
	}
	s.latestWeek.Store(-1)
	return s
}

func (s *Store) shardOf(line data.LineID) *shard {
	return &s.shards[uint32(line)&s.mask]
}

// SetFaults installs the fault-injection hooks. Call before the store takes
// traffic; nil removes them.
func (s *Store) SetFaults(h *FaultHooks) { s.faults = h }

// setMetrics attaches the owning server's metrics; call before traffic.
func (s *Store) setMetrics(m *metrics) { s.m = m }

// lockShard takes sh's write lock, counting under op when the lock was
// already held — the shard-contention signal that says whether the shard
// count is keeping concurrent ingest batches out of each other's way.
func (s *Store) lockShard(sh *shard, op string) {
	if s.m == nil {
		sh.mu.Lock()
		return
	}
	if !sh.mu.TryLock() {
		s.m.shardContended.With(op).Add(1)
		sh.mu.Lock()
	}
}

// rlockShard is lockShard for readers: snapshot builds sweeping the shards
// count how often an ingest writer made them wait.
func (s *Store) rlockShard(sh *shard, op string) {
	if s.m == nil {
		sh.mu.RLock()
		return
	}
	if !sh.mu.TryRLock() {
		s.m.shardContended.With(op).Add(1)
		sh.mu.RLock()
	}
}

// BuildFailures returns how many snapshot rebuilds have failed so far.
func (s *Store) BuildFailures() uint64 { return s.buildFailures.Load() }

// SnapshotLag reports how many ingest versions the cached snapshot trails
// the store: 0 means the next read is (or will build) a fresh view, anything
// higher means rebuilds have been failing and readers are being served a
// stale-but-consistent generation.
func (s *Store) SnapshotLag() uint64 {
	v := s.version.Load()
	sn := s.snap.Load()
	if sn == nil {
		return v
	}
	return v - sn.Version
}

// NumShards returns the shard count (a power of two).
func (s *Store) NumShards() int { return len(s.shards) }

// Version returns the ingest counter; it bumps on every successful ingest
// batch and keys the snapshot cache.
func (s *Store) Version() uint64 { return s.version.Load() }

// LatestWeek returns the newest week any test record carried, or -1 before
// the first ingest.
func (s *Store) LatestWeek() int { return int(s.latestWeek.Load()) }

// ShardSizes returns the number of lines held per shard, for the monitoring
// surface.
func (s *Store) ShardSizes() []int {
	out := make([]int, len(s.shards))
	for i := range s.shards {
		s.shards[i].mu.RLock()
		out[i] = len(s.shards[i].lines)
		s.shards[i].mu.RUnlock()
	}
	return out
}

// NumLines returns the number of distinct lines ingested.
func (s *Store) NumLines() int {
	n := 0
	for _, c := range s.ShardSizes() {
		n += c
	}
	return n
}

func validateTest(r *TestRecord) error {
	switch {
	case r.Line < 0 || r.Line >= MaxLineID:
		return fmt.Errorf("serve: line %d outside [0,%d)", r.Line, MaxLineID)
	case r.Week < 0 || r.Week >= data.Weeks:
		return fmt.Errorf("serve: week %d outside [0,%d)", r.Week, data.Weeks)
	case len(r.F) > data.NumBasicFeatures:
		return fmt.Errorf("serve: %d feature values exceed the %d of Table 2", len(r.F), data.NumBasicFeatures)
	case int(r.Profile) >= len(data.Profiles):
		return fmt.Errorf("serve: unknown profile %d", r.Profile)
	case r.DSLAM < 0:
		return fmt.Errorf("serve: negative DSLAM %d", r.DSLAM)
	}
	return nil
}

// IngestTests applies a batch of line-test records. The batch is validated
// up front and applied shard by shard; on a validation error nothing is
// applied. Returns the number of records stored.
func (s *Store) IngestTests(recs []TestRecord) (int, error) {
	for i := range recs {
		if err := validateTest(&recs[i]); err != nil {
			return 0, fmt.Errorf("%w: record %d: %w", ErrBadBatch, i, err)
		}
	}
	if len(recs) == 0 {
		return 0, nil
	}
	if h := s.faults; h != nil && h.IngestTests != nil {
		if err := h.IngestTests(len(recs)); err != nil {
			return 0, err
		}
	}
	if m := s.m; m != nil {
		defer func(t0 time.Time) {
			m.storeIngestDur.With("ingest_tests").Observe(time.Since(t0))
		}(time.Now())
	}
	// Group by shard so each shard's lock is taken once per batch.
	byShard := make(map[uint32][]int)
	maxWeek := -1
	for i := range recs {
		si := uint32(recs[i].Line) & s.mask
		byShard[si] = append(byShard[si], i)
		if recs[i].Week > maxWeek {
			maxWeek = recs[i].Week
		}
	}
	for si, idxs := range byShard {
		sh := &s.shards[si]
		s.lockShard(sh, "ingest_tests")
		for _, i := range idxs {
			r := &recs[i]
			ls := sh.lines[r.Line]
			isNew := ls == nil
			if isNew {
				ls = &lineState{}
				sh.lines[r.Line] = ls
			}
			// A Missing (modem-off) record carries no measurements and
			// typically no static attributes either; letting it overwrite
			// them would zero a known line's profile/DSLAM/usage. Only
			// non-Missing records update attributes — except on a brand-new
			// line, where whatever the record carries beats all-zeros.
			if !r.Missing || isNew {
				ls.profile, ls.dslam, ls.usage = r.Profile, r.DSLAM, r.Usage
			}
			m := data.Measurement{Line: r.Line, Week: r.Week, Missing: r.Missing}
			copy(m.F[:], r.F)
			ls.tests[r.Week] = m
			ls.seen[r.Week] = true
		}
		sh.mu.Unlock()
	}
	for {
		cur := s.latestWeek.Load()
		if int64(maxWeek) <= cur || s.latestWeek.CompareAndSwap(cur, int64(maxWeek)) {
			break
		}
	}
	s.version.Add(1)
	return len(recs), nil
}

// IngestTickets applies a batch of customer tickets (exact duplicates are
// dropped). Returns the number of new tickets stored.
func (s *Store) IngestTickets(recs []TicketRecord) (int, error) {
	for i, r := range recs {
		switch {
		case r.Line < 0 || r.Line >= MaxLineID:
			return 0, fmt.Errorf("%w: ticket %d: line %d outside [0,%d)", ErrBadBatch, i, r.Line, MaxLineID)
		case r.Day < 0 || r.Day >= data.DaysInYear:
			return 0, fmt.Errorf("%w: ticket %d: day %d outside the year", ErrBadBatch, i, r.Day)
		case r.Category > uint8(data.CatOther):
			return 0, fmt.Errorf("%w: ticket %d: unknown category %d", ErrBadBatch, i, r.Category)
		}
	}
	if len(recs) == 0 {
		return 0, nil
	}
	if h := s.faults; h != nil && h.IngestTickets != nil {
		if err := h.IngestTickets(len(recs)); err != nil {
			return 0, err
		}
	}
	if m := s.m; m != nil {
		defer func(t0 time.Time) {
			m.storeIngestDur.With("ingest_tickets").Observe(time.Since(t0))
		}(time.Now())
	}
	added := 0
	for _, r := range recs {
		t := data.Ticket{ID: r.ID, Line: r.Line, Day: r.Day, Category: data.TicketCategory(r.Category)}
		sh := s.shardOf(r.Line)
		s.lockShard(sh, "ingest_tickets")
		if _, dup := sh.dedup[t]; !dup {
			sh.dedup[t] = struct{}{}
			sh.tickets = append(sh.tickets, t)
			added++
		}
		sh.mu.Unlock()
	}
	if added > 0 {
		s.version.Add(1)
	}
	return added, nil
}

// Snapshot is an immutable point-in-use view of the store in the shape the
// feature encoder consumes: a dense data.Dataset grid (never-ingested
// (line, week) cells are Missing), a prebuilt ticket index, and the presence
// matrix that distinguishes "line tested this week with the modem off" from
// "no record at all". Consumers must treat every field as read-only.
type Snapshot struct {
	Version uint64
	DS      *data.Dataset
	Ix      *data.TicketIndex
	// Present is week-major: Present[w][l] reports whether a test record
	// was ingested for line l at week w.
	Present [][]bool
	// Lines holds every ingested line id, ascending.
	Lines []data.LineID
}

// LinesAt returns the lines with a test record at the given week, ascending
// — the population a weekly ranking covers.
func (sn *Snapshot) LinesAt(week int) []data.LineID {
	if week < 0 || week >= data.Weeks {
		return nil
	}
	var out []data.LineID
	for _, l := range sn.Lines {
		if sn.Present[week][l] {
			out = append(out, l)
		}
	}
	return out
}

// Snapshot materialises (or returns the cached) dataset view of the store.
// The cache is keyed by the store version: any ingest invalidates it, and
// the first read after an ingest pays the rebuild. Shards are read-locked
// one at a time, so a snapshot overlapping concurrent ingests may split
// them across shards — each line's state is still internally consistent,
// and the version recorded is the one read before the build, so the next
// read rebuilds. An empty store yields a nil snapshot.
//
// Degradation contract: when a rebuild fails (an injected or real
// infrastructure fault), Snapshot falls back to the last successfully built
// snapshot — stale by SnapshotLag versions but internally consistent — and
// the next read retries the rebuild. Readers therefore never observe a torn
// or partially built view; they observe an older complete one.
func (s *Store) Snapshot() *Snapshot {
	v := s.version.Load()
	if sn := s.snap.Load(); sn != nil && sn.Version == v {
		return sn
	}
	sn, err := s.build(v)
	if err != nil {
		s.buildFailures.Add(1)
		return s.snap.Load()
	}
	if sn == nil {
		return nil
	}
	// Publish unless a concurrent builder already cached a snapshot at
	// least as new — a slow build racing a faster one at a later version
	// must not clobber it and force the next reader into a full rebuild.
	for {
		old := s.snap.Load()
		if old != nil && old.Version >= sn.Version {
			return sn
		}
		if s.snap.CompareAndSwap(old, sn) {
			return sn
		}
	}
}

func (s *Store) build(version uint64) (*Snapshot, error) {
	if m := s.m; m != nil {
		defer func(t0 time.Time) {
			m.storeBuildDur.Observe(time.Since(t0))
		}(time.Now())
	}
	if h := s.faults; h != nil && h.SnapshotBuild != nil {
		if err := h.SnapshotBuild(version); err != nil {
			return nil, err
		}
	}
	// Pass 1: grid width. Lines ingested after this pass (the build runs
	// lock-free between shards, so concurrent ingests can land mid-build)
	// are excluded from this snapshot in pass 2 — they belong to a later
	// version, and the version recorded here predates them, so the next
	// read rebuilds and picks them up.
	maxLine := data.LineID(-1)
	for i := range s.shards {
		sh := &s.shards[i]
		s.rlockShard(sh, "snapshot")
		for l := range sh.lines {
			if l > maxLine {
				maxLine = l
			}
		}
		sh.mu.RUnlock()
	}
	if maxLine < 0 {
		return nil, nil
	}
	n := int(maxLine) + 1
	ds := &data.Dataset{
		// Generation keys the feature caches downstream: snapshots of
		// different store versions must never share cached encodes.
		Generation:   version,
		NumLines:     n,
		ProfileOf:    make([]uint8, n),
		DSLAMOf:      make([]int32, n),
		UsageOf:      make([]float32, n),
		Measurements: make([]data.Measurement, data.Weeks*n),
	}
	present := make([][]bool, data.Weeks)
	for w := 0; w < data.Weeks; w++ {
		present[w] = make([]bool, n)
		row := ds.Measurements[w*n : (w+1)*n]
		for l := range row {
			row[l] = data.Measurement{Line: data.LineID(l), Week: w, Missing: true}
		}
	}
	// Pass 2: copy line states and tickets. NumDSLAMs is sized from the
	// values actually copied, so a DSLAM id can never index past it.
	maxDSLAM := int32(0)
	var lines []data.LineID
	var tickets []data.Ticket
	for i := range s.shards {
		sh := &s.shards[i]
		s.rlockShard(sh, "snapshot")
		if h := s.faults; h != nil && h.ShardRead != nil {
			h.ShardRead(i)
		}
		for l, ls := range sh.lines {
			if l > maxLine {
				continue // arrived after pass 1; next version's snapshot
			}
			lines = append(lines, l)
			if ls.dslam > maxDSLAM {
				maxDSLAM = ls.dslam
			}
			ds.ProfileOf[l], ds.DSLAMOf[l], ds.UsageOf[l] = ls.profile, ls.dslam, ls.usage
			for w := 0; w < data.Weeks; w++ {
				if ls.seen[w] {
					ds.Measurements[w*n+int(l)] = ls.tests[w]
					present[w][l] = true
				}
			}
		}
		// Tickets for lines the store has never seen a test for stay out of
		// the snapshot: the grid has no row for them, and they join once the
		// line's first test record arrives.
		for _, t := range sh.tickets {
			if t.Line <= maxLine {
				tickets = append(tickets, t)
			}
		}
		sh.mu.RUnlock()
	}
	ds.NumDSLAMs = int(maxDSLAM) + 1
	sort.Slice(lines, func(a, b int) bool { return lines[a] < lines[b] })
	sort.SliceStable(tickets, func(a, b int) bool { return tickets[a].Day < tickets[b].Day })
	ds.Tickets = tickets
	return &Snapshot{
		Version: version,
		DS:      ds,
		Ix:      data.NewTicketIndex(ds),
		Present: present,
		Lines:   lines,
	}, nil
}

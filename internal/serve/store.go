// Package serve is the online serving subsystem: the long-running half of
// NEVERMIND that the paper's deployment implies but one-shot CLIs cannot
// provide. It keeps the latest per-line test history in a sharded in-memory
// store, exposes the trained models behind a JSON HTTP API (ingest, score,
// rank, locate), runs the weekly pipeline loop that feeds predictions into
// the ATDS queue, and manages the model lifecycle: load at startup, atomic
// hot-reload, graceful drain on shutdown.
package serve

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nevermind/internal/data"
)

// MaxLineID bounds accepted line ids. The snapshot materialises a dense
// (weeks x lines) grid of 120-byte Measurements, so a single wild id in an
// otherwise-valid batch dictates the grid width: the bound is the allocation
// budget. 1<<17 caps the worst-case grid at 52*131072*120B ~ 0.8 GB and
// leaves 6.5x headroom over the 20k-line default population; the previous
// 1<<22 admitted a ~26 GB grid from one record, which the ingest fuzzer
// demonstrated as a minutes-long stall.
const MaxLineID = 1 << 17

// TestRecord is one ingested weekly line-test result: the measurement plus
// the static line attributes (service tier, serving DSLAM, usage propensity)
// the collector forwards alongside it. F holds the Table 2 feature values in
// data.BasicFeatureNames order; shorter vectors are zero-extended, which is
// also how a Missing (modem-off) record with no measurements is sent. Static
// attributes update from non-Missing records only (a modem-off probe learns
// nothing about the line), except that a line's very first record seeds them
// regardless.
type TestRecord struct {
	Line    data.LineID `json:"line"`
	Week    int         `json:"week"`
	Missing bool        `json:"missing,omitempty"`
	F       []float32   `json:"f,omitempty"`
	Profile uint8       `json:"profile,omitempty"`
	DSLAM   int32       `json:"dslam,omitempty"`
	Usage   float32     `json:"usage,omitempty"`
}

// TicketRecord is one ingested customer ticket.
type TicketRecord struct {
	ID       int         `json:"id"`
	Line     data.LineID `json:"line"`
	Day      int         `json:"day"`
	Category uint8       `json:"category"`
}

// lineState is everything the store knows about one line: its static
// attributes and every week's test result seen so far (at-most-one record
// per week; re-ingesting a week overwrites, so replayed feeds converge).
type lineState struct {
	profile uint8
	dslam   int32
	usage   float32
	seen    [data.Weeks]bool
	tests   [data.Weeks]data.Measurement
}

// shard is one lock domain of the store. Lines hash to shards by id, so
// concurrent ingest batches for different line ranges proceed in parallel;
// tickets live with the shard of their line.
type shard struct {
	mu      sync.RWMutex
	lines   map[data.LineID]*lineState
	tickets []data.Ticket
	// dedup guards against replayed ticket feeds: the exact same ticket
	// (id, line, day, category) ingests once.
	dedup map[data.Ticket]struct{}
}

// cellKey names one (line, week) test cell an ingest touched. Deltas carry
// cell keys, not payloads: applying a delta re-reads the cell's current shard
// state, so replaying a key is idempotent and two ingests racing on a cell
// converge to last-writer-wins exactly as a full rebuild would.
type cellKey struct {
	line data.LineID
	week int16
}

// deltaRecord is one ingest's footprint in the delta log: the version it
// produced, the test cells it touched, and the tickets it newly added
// (ticket values are safe to log — the shard-lock dedup guarantees each
// value is added exactly once, and the canonical ticket order makes the
// merge order-independent).
type deltaRecord struct {
	version uint64
	cells   []cellKey
	tickets []data.Ticket
}

// Delta log bounds: a log past either cap drops its oldest records (the next
// snapshot build past the gap falls back to a full rebuild, which needs no
// log). The caps bound the log to a few weeks of realistic ingest churn.
const (
	maxDeltaRecords = 1024
	maxDeltaCells   = 1 << 20
)

// Store is the sharded in-memory line-state store. Writers (ingest) take one
// shard's write lock per batch slice; readers (snapshot) take read locks
// shard by shard. Scoring never reads shards directly — it reads an
// immutable Snapshot materialised on demand and cached until the next
// ingest, so the scoring hot path costs zero lock traffic after the first
// request per store version.
type Store struct {
	shards  []shard
	mask    uint32
	version atomic.Uint64
	// latestWeek tracks the newest week ingested (-1 before any).
	latestWeek atomic.Int64
	snap       atomic.Pointer[Snapshot]
	// faults is the injection seam; nil in production.
	faults *FaultHooks
	// m, when set, receives ingest/build timings and shard-contention
	// counts; nil (a bare NewStore) records nothing.
	m *metrics
	// buildFailures counts snapshot rebuilds that failed (injected or
	// otherwise); while it climbs, readers keep getting the last good
	// snapshot and SnapshotLag reports how stale it is.
	buildFailures atomic.Uint64

	// owner, when set, is the fleet ownership predicate: records for lines
	// this shard does not own are validated normally but silently dropped
	// (counted in filtered), so a misrouted or replayed-to-everyone feed
	// cannot seat lines outside this shard's ring arc. Install before the
	// store takes traffic; nil (the default) accepts every line.
	owner    func(data.LineID) bool
	filtered atomic.Uint64

	// maxLine tracks the highest line id any applied test record carried
	// (-1 before the first), i.e. the width the next snapshot grid will
	// have. Exposed on /healthz so a fleet orchestrator can size its ATDS
	// queue exactly as a single-node pipeline sizes it from DS.NumLines.
	maxLine atomic.Int64

	// buildMu singleflights snapshot builds: concurrent readers that miss
	// the cache at the same version used to each run a full build with only
	// one result winning the publish CAS (a thundering herd after every
	// ingest). Now one builder works while the rest wait and reuse its
	// result via the double-checked cache load.
	buildMu sync.Mutex

	// deltaMu makes the version bump and the delta-log append one atomic
	// step, so the log holds exactly one record per version with no gaps.
	// Lock order: shard locks are never held when taking deltaMu; buildMu
	// holders take deltaMu only for brief log reads/prunes.
	deltaMu  sync.Mutex
	deltas   []deltaRecord
	logCells int

	// walSink, when set, receives every version bump with the applied batch
	// while deltaMu is held, so the write-ahead log's record order is exactly
	// the version order. Exactly one of tests/tickets is non-empty. Installed
	// by the Durability manager before the store takes traffic; nil (the
	// default) logs nothing.
	walSink func(version uint64, tests []TestRecord, tickets []data.Ticket)

	// genSalt disambiguates snapshot generations between stores in one
	// process. Downstream encode/bin caches key on DS.Generation, and the
	// cache is attached to the (shared) model — in a process holding several
	// stores at once (an in-process fleet: gateway tests, benches, the
	// embedded pipeline harness) two stores independently reach version 2
	// with different contents, and unsalted generations would alias their
	// cached full-population score encodes across stores.
	genSalt uint64
}

// genSaltShift positions the store sequence number above any version a store
// can reach (2^40 ingests), so Generation = salt | version stays collision-
// free across stores without disturbing low-bits version ordering.
const genSaltShift = 40

// storeSeq numbers stores process-wide for genSalt. The first store gets
// salt 0, keeping single-store generations identical to the version counter.
var storeSeq atomic.Uint64

// GenerationOf returns the dataset generation a snapshot of this store at
// the given version carries: the store's process-unique salt OR'd with the
// version. External tests assert the snapshot-consistency invariant
// (sn.DS.Generation == store.GenerationOf(sn.Version)) through it.
func (s *Store) GenerationOf(version uint64) uint64 {
	return s.genSalt | version
}

// NewStore creates a store with the given shard count rounded up to a power
// of two; 0 sizes it to GOMAXPROCS, the lock-contention sweet spot for one
// writer goroutine per core.
func NewStore(shards int) *Store {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	s := &Store{
		shards:  make([]shard, n),
		mask:    uint32(n - 1),
		genSalt: (storeSeq.Add(1) - 1) << genSaltShift,
	}
	for i := range s.shards {
		s.shards[i].lines = make(map[data.LineID]*lineState)
		s.shards[i].dedup = make(map[data.Ticket]struct{})
	}
	s.latestWeek.Store(-1)
	s.maxLine.Store(-1)
	return s
}

func (s *Store) shardOf(line data.LineID) *shard {
	return &s.shards[uint32(line)&s.mask]
}

// SetFaults installs the fault-injection hooks. Call before the store takes
// traffic; nil removes them.
func (s *Store) SetFaults(h *FaultHooks) { s.faults = h }

// SetOwner installs the fleet ownership filter (see Store.owner). Call
// before the store takes traffic; nil removes it.
func (s *Store) SetOwner(owns func(data.LineID) bool) { s.owner = owns }

// FilteredRecords returns how many validated records the ownership filter
// has dropped — nonzero means some feed is routing lines to the wrong shard.
func (s *Store) FilteredRecords() uint64 { return s.filtered.Load() }

// setMetrics attaches the owning server's metrics; call before traffic.
func (s *Store) setMetrics(m *metrics) { s.m = m }

// lockShard takes sh's write lock, counting under op when the lock was
// already held — the shard-contention signal that says whether the shard
// count is keeping concurrent ingest batches out of each other's way.
func (s *Store) lockShard(sh *shard, op string) {
	if s.m == nil {
		sh.mu.Lock()
		return
	}
	if !sh.mu.TryLock() {
		s.m.shardContended.With(op).Add(1)
		sh.mu.Lock()
	}
}

// rlockShard is lockShard for readers: snapshot builds sweeping the shards
// count how often an ingest writer made them wait.
func (s *Store) rlockShard(sh *shard, op string) {
	if s.m == nil {
		sh.mu.RLock()
		return
	}
	if !sh.mu.TryRLock() {
		s.m.shardContended.With(op).Add(1)
		sh.mu.RLock()
	}
}

// BuildFailures returns how many snapshot rebuilds have failed so far.
func (s *Store) BuildFailures() uint64 { return s.buildFailures.Load() }

// SnapshotLag reports how many ingest versions the cached snapshot trails
// the store: 0 means the next read is (or will build) a fresh view, anything
// higher means rebuilds have been failing and readers are being served a
// stale-but-consistent generation.
func (s *Store) SnapshotLag() uint64 {
	v := s.version.Load()
	sn := s.snap.Load()
	if sn == nil {
		return v
	}
	return v - sn.Version
}

// NumShards returns the shard count (a power of two).
func (s *Store) NumShards() int { return len(s.shards) }

// Version returns the ingest counter; it bumps on every successful ingest
// batch and keys the snapshot cache.
func (s *Store) Version() uint64 { return s.version.Load() }

// LatestWeek returns the newest week any test record carried, or -1 before
// the first ingest.
func (s *Store) LatestWeek() int { return int(s.latestWeek.Load()) }

// ShardSizes returns the number of lines held per shard, for the monitoring
// surface.
func (s *Store) ShardSizes() []int {
	out := make([]int, len(s.shards))
	for i := range s.shards {
		s.shards[i].mu.RLock()
		out[i] = len(s.shards[i].lines)
		s.shards[i].mu.RUnlock()
	}
	return out
}

// GridLines returns the width the next snapshot grid will have — the
// highest applied test-record line id plus one, 0 before the first ingest.
// A fleet's global grid width is the max of its shards' GridLines, which is
// exactly the DS.NumLines a single node holding every record would report.
func (s *Store) GridLines() int {
	ml := s.maxLine.Load()
	if ml < 0 {
		return 0
	}
	return int(ml) + 1
}

// NumLines returns the number of distinct lines ingested.
func (s *Store) NumLines() int {
	n := 0
	for _, c := range s.ShardSizes() {
		n += c
	}
	return n
}

func validateTest(r *TestRecord) error {
	switch {
	case r.Line < 0 || r.Line >= MaxLineID:
		return fmt.Errorf("serve: line %d outside [0,%d)", r.Line, MaxLineID)
	case r.Week < 0 || r.Week >= data.Weeks:
		return fmt.Errorf("serve: week %d outside [0,%d)", r.Week, data.Weeks)
	case len(r.F) > data.NumBasicFeatures:
		return fmt.Errorf("serve: %d feature values exceed the %d of Table 2", len(r.F), data.NumBasicFeatures)
	case int(r.Profile) >= len(data.Profiles):
		return fmt.Errorf("serve: unknown profile %d", r.Profile)
	case r.DSLAM < 0:
		return fmt.Errorf("serve: negative DSLAM %d", r.DSLAM)
	}
	return nil
}

func validateTicket(i int, r *TicketRecord) error {
	switch {
	case r.Line < 0 || r.Line >= MaxLineID:
		return fmt.Errorf("%w: ticket %d: line %d outside [0,%d)", ErrBadBatch, i, r.Line, MaxLineID)
	case r.Day < 0 || r.Day >= data.DaysInYear:
		return fmt.Errorf("%w: ticket %d: day %d outside the year", ErrBadBatch, i, r.Day)
	case r.Category > uint8(data.CatOther):
		return fmt.Errorf("%w: ticket %d: unknown category %d", ErrBadBatch, i, r.Category)
	}
	return nil
}

// ValidateIngest checks a full ingest body with exactly the validation the
// store applies — tests first, then tickets, identical error text — without
// touching any state. The fleet gateway runs it before scattering sub-batches
// so a bad batch is rejected atomically fleet-wide; a single daemon would
// apply valid tests before rejecting bad tickets, but the wire response is
// byte-identical either way.
func ValidateIngest(req *IngestRequest) error {
	for i := range req.Tests {
		if err := validateTest(&req.Tests[i]); err != nil {
			return fmt.Errorf("%w: record %d: %w", ErrBadBatch, i, err)
		}
	}
	for i := range req.Tickets {
		if err := validateTicket(i, &req.Tickets[i]); err != nil {
			return err
		}
	}
	return nil
}

// bumpVersion advances the ingest counter and logs the ingest's delta as one
// atomic step, keeping the log gapless: record i always holds the footprint
// of version deltas[0].version+i. tests carries the applied (post-filter)
// records for the write-ahead log sink, which runs under the same lock so
// the durable log's order matches the version order exactly.
func (s *Store) bumpVersion(cells []cellKey, tickets []data.Ticket, tests []TestRecord) {
	s.deltaMu.Lock()
	v := s.version.Add(1)
	s.deltas = append(s.deltas, deltaRecord{version: v, cells: cells, tickets: tickets})
	s.logCells += len(cells) + len(tickets)
	for len(s.deltas) > 0 && (len(s.deltas) > maxDeltaRecords || s.logCells > maxDeltaCells) {
		drop := &s.deltas[0]
		s.logCells -= len(drop.cells) + len(drop.tickets)
		*drop = deltaRecord{}
		s.deltas = s.deltas[1:]
	}
	if s.walSink != nil {
		s.walSink(v, tests, tickets)
	}
	s.deltaMu.Unlock()
}

// pinVersion sets the store version to v (a replayed record's version) and
// logs its delta, exactly as bumpVersion does for live ingest but with no
// counter bump and no WAL sink (the record is already durable). Feeding the
// delta log during replay keeps a replication follower's snapshot rebuilds
// O(batch) per applied record instead of a full grid recopy per version.
func (s *Store) pinVersion(v uint64, cells []cellKey, tickets []data.Ticket) {
	s.deltaMu.Lock()
	s.version.Store(v)
	s.deltas = append(s.deltas, deltaRecord{version: v, cells: cells, tickets: tickets})
	s.logCells += len(cells) + len(tickets)
	for len(s.deltas) > 0 && (len(s.deltas) > maxDeltaRecords || s.logCells > maxDeltaCells) {
		drop := &s.deltas[0]
		s.logCells -= len(drop.cells) + len(drop.tickets)
		*drop = deltaRecord{}
		s.deltas = s.deltas[1:]
	}
	s.deltaMu.Unlock()
}

// SetWALSink installs the write-ahead log hook (see Store.walSink). Call
// before the store takes traffic; nil removes it.
func (s *Store) SetWALSink(fn func(version uint64, tests []TestRecord, tickets []data.Ticket)) {
	s.walSink = fn
}

// deltasBetween returns the delta records covering versions (base, target],
// or ok == false when the log no longer holds them all (pruned or dropped on
// overflow) and the caller must fall back to a full rebuild. The returned
// records' slices are append-only after logging, so reading them outside
// deltaMu is safe.
func (s *Store) deltasBetween(base, target uint64) ([]deltaRecord, bool) {
	s.deltaMu.Lock()
	defer s.deltaMu.Unlock()
	if target <= base {
		return nil, true
	}
	if len(s.deltas) == 0 {
		return nil, false
	}
	first := s.deltas[0].version
	last := s.deltas[len(s.deltas)-1].version
	if first > base+1 || last < target {
		return nil, false
	}
	lo := int(base + 1 - first)
	hi := int(target - first + 1)
	return append([]deltaRecord(nil), s.deltas[lo:hi]...), true
}

// pruneDeltas drops log records at or below version: once a snapshot at that
// version is published, no future build can need them (delta applies always
// start from the cached snapshot).
func (s *Store) pruneDeltas(version uint64) {
	s.deltaMu.Lock()
	n := 0
	for n < len(s.deltas) && s.deltas[n].version <= version {
		s.logCells -= len(s.deltas[n].cells) + len(s.deltas[n].tickets)
		s.deltas[n] = deltaRecord{}
		n++
	}
	s.deltas = s.deltas[n:]
	s.deltaMu.Unlock()
}

// IngestTests applies a batch of line-test records. The batch is validated
// up front and applied shard by shard; on a validation error nothing is
// applied. Returns the number of records stored.
func (s *Store) IngestTests(recs []TestRecord) (int, error) {
	for i := range recs {
		if err := validateTest(&recs[i]); err != nil {
			return 0, fmt.Errorf("%w: record %d: %w", ErrBadBatch, i, err)
		}
	}
	// Ownership filtering happens after validation so a fleet shard rejects
	// exactly the batches a bare daemon would, with identical error text.
	if owns := s.owner; owns != nil {
		var kept []TestRecord
		for i := range recs {
			if owns(recs[i].Line) {
				kept = append(kept, recs[i])
			} else {
				s.filtered.Add(1)
			}
		}
		recs = kept
	}
	if len(recs) == 0 {
		return 0, nil
	}
	if h := s.faults; h != nil && h.IngestTests != nil {
		if err := h.IngestTests(len(recs)); err != nil {
			return 0, err
		}
	}
	if m := s.m; m != nil {
		defer func(t0 time.Time) {
			m.storeIngestDur.With("ingest_tests").Observe(time.Since(t0))
		}(time.Now())
	}
	cells := s.applyTests(recs)
	s.bumpVersion(cells, nil, recs)
	return len(recs), nil
}

// applyTests seats validated test records into their shards and advances the
// latestWeek/maxLine watermarks. It is the shared apply step between live
// ingest (IngestTests, which then bumps the version) and WAL replay
// (ApplyWALRecord, which pins the version the record carries). Returns the
// touched cells for the delta log.
func (s *Store) applyTests(recs []TestRecord) []cellKey {
	// Group by shard so each shard's lock is taken once per batch.
	byShard := make(map[uint32][]int)
	maxWeek := -1
	maxL := int64(-1)
	for i := range recs {
		si := uint32(recs[i].Line) & s.mask
		byShard[si] = append(byShard[si], i)
		if recs[i].Week > maxWeek {
			maxWeek = recs[i].Week
		}
		if int64(recs[i].Line) > maxL {
			maxL = int64(recs[i].Line)
		}
	}
	cells := make([]cellKey, 0, len(recs))
	for si, idxs := range byShard {
		sh := &s.shards[si]
		s.lockShard(sh, "ingest_tests")
		for _, i := range idxs {
			r := &recs[i]
			ls := sh.lines[r.Line]
			isNew := ls == nil
			if isNew {
				ls = &lineState{}
				sh.lines[r.Line] = ls
			}
			// A Missing (modem-off) record carries no measurements and
			// typically no static attributes either; letting it overwrite
			// them would zero a known line's profile/DSLAM/usage. Only
			// non-Missing records update attributes — except on a brand-new
			// line, where whatever the record carries beats all-zeros.
			if !r.Missing || isNew {
				ls.profile, ls.dslam, ls.usage = r.Profile, r.DSLAM, r.Usage
			}
			m := data.Measurement{Line: r.Line, Week: r.Week, Missing: r.Missing}
			copy(m.F[:], r.F)
			ls.tests[r.Week] = m
			ls.seen[r.Week] = true
			cells = append(cells, cellKey{line: r.Line, week: int16(r.Week)})
		}
		sh.mu.Unlock()
	}
	for {
		cur := s.latestWeek.Load()
		if int64(maxWeek) <= cur || s.latestWeek.CompareAndSwap(cur, int64(maxWeek)) {
			break
		}
	}
	for {
		cur := s.maxLine.Load()
		if maxL <= cur || s.maxLine.CompareAndSwap(cur, maxL) {
			break
		}
	}
	return cells
}

// IngestTickets applies a batch of customer tickets (exact duplicates are
// dropped). Returns the number of new tickets stored.
func (s *Store) IngestTickets(recs []TicketRecord) (int, error) {
	for i := range recs {
		if err := validateTicket(i, &recs[i]); err != nil {
			return 0, err
		}
	}
	if owns := s.owner; owns != nil {
		var kept []TicketRecord
		for _, r := range recs {
			if owns(r.Line) {
				kept = append(kept, r)
			} else {
				s.filtered.Add(1)
			}
		}
		recs = kept
	}
	if len(recs) == 0 {
		return 0, nil
	}
	if h := s.faults; h != nil && h.IngestTickets != nil {
		if err := h.IngestTickets(len(recs)); err != nil {
			return 0, err
		}
	}
	if m := s.m; m != nil {
		defer func(t0 time.Time) {
			m.storeIngestDur.With("ingest_tickets").Observe(time.Since(t0))
		}(time.Now())
	}
	added := s.applyTickets(recs)
	if len(added) > 0 {
		s.bumpVersion(nil, added, nil)
	}
	return len(added), nil
}

// applyTickets seats validated tickets into their shards, dropping exact
// duplicates via the shard dedup maps, and returns the tickets actually
// added. Shared between live ingest and WAL replay (replayed ticket batches
// are post-dedup values, so on a clean replay every one is added again).
func (s *Store) applyTickets(recs []TicketRecord) []data.Ticket {
	// Group by shard and take each shard's lock once per batch, exactly as
	// IngestTests does. The per-record lock/unlock this replaced made a
	// large ticket batch pay thousands of lock round-trips on one shard.
	byShard := make(map[uint32][]int)
	for i := range recs {
		byShard[uint32(recs[i].Line)&s.mask] = append(byShard[uint32(recs[i].Line)&s.mask], i)
	}
	var added []data.Ticket
	for si, idxs := range byShard {
		sh := &s.shards[si]
		s.lockShard(sh, "ingest_tickets")
		for _, i := range idxs {
			r := &recs[i]
			t := data.Ticket{ID: r.ID, Line: r.Line, Day: r.Day, Category: data.TicketCategory(r.Category)}
			if _, dup := sh.dedup[t]; !dup {
				sh.dedup[t] = struct{}{}
				sh.tickets = append(sh.tickets, t)
				added = append(added, t)
			}
		}
		sh.mu.Unlock()
	}
	return added
}

// Snapshot is an immutable point-in-use view of the store in the shape the
// feature encoder consumes: a dense data.Dataset grid (never-ingested
// (line, week) cells are Missing), a prebuilt ticket index, and the presence
// matrix that distinguishes "line tested this week with the modem off" from
// "no record at all". Consumers must treat every field as read-only.
//
// Successive snapshots are built incrementally: applying an ingest's delta
// copies only the grid chunks, presence rows and per-week line lists the
// ingest touched, and shares everything else with the previous generation.
type Snapshot struct {
	Version uint64
	DS      *data.Dataset
	Ix      *data.TicketIndex
	// Present is week-major: Present[w][l] reports whether a test record
	// was ingested for line l at week w.
	Present [][]bool
	// Lines holds every ingested line id, ascending.
	Lines []data.LineID

	// linesAt[w] caches the ascending line ids present at week w, computed
	// at build/delta-apply time so LinesAt is a slice return, not a
	// population scan per /v1/rank request.
	linesAt [data.Weeks][]data.LineID

	// tabMu guards tabs, the per-(models, week) score-table cache built
	// lazily by the scoring fast path (see scoretable.go).
	tabMu sync.Mutex
	tabs  map[tabKey]*weekTable
}

// LinesAt returns the lines with a test record at the given week, ascending
// — the population a weekly ranking covers. The returned slice is the
// snapshot's cached copy: callers must not modify it.
func (sn *Snapshot) LinesAt(week int) []data.LineID {
	if week < 0 || week >= data.Weeks {
		return nil
	}
	return sn.linesAt[week]
}

// Snapshot materialises (or returns the cached) dataset view of the store.
// The cache is keyed by the store version: any ingest invalidates it, and
// the first read after an ingest pays the rebuild — a delta apply when the
// log covers the gap, a full grid rebuild otherwise. Builds are
// singleflighted: concurrent readers missing the cache wait for one builder
// instead of each rebuilding. Shards are read-locked one at a time, so a
// snapshot overlapping concurrent ingests may split them across shards —
// each line's state is still internally consistent, and the version
// recorded is the one read before the build, so the next read rebuilds. An
// empty store yields a nil snapshot.
//
// Degradation contract: when a rebuild fails (an injected or real
// infrastructure fault), Snapshot falls back to the last successfully built
// snapshot — stale by SnapshotLag versions but internally consistent — and
// the next read retries the rebuild. Readers therefore never observe a torn
// or partially built view; they observe an older complete one.
func (s *Store) Snapshot() *Snapshot {
	if sn := s.snap.Load(); sn != nil && sn.Version == s.version.Load() {
		return sn
	}
	s.buildMu.Lock()
	defer s.buildMu.Unlock()
	// Double-check under the build lock: the builder we waited behind may
	// have published the version we need.
	v := s.version.Load()
	if sn := s.snap.Load(); sn != nil && sn.Version == v {
		return sn
	}
	sn, err := s.buildFrom(s.snap.Load(), v)
	if err != nil {
		s.buildFailures.Add(1)
		return s.snap.Load()
	}
	if sn == nil {
		return nil
	}
	s.snap.Store(sn)
	s.pruneDeltas(sn.Version)
	return sn
}

// ResetSnapshotCache drops the cached snapshot, forcing the next Snapshot
// call to rebuild from the shards. It exists for benchmarks and equivalence
// tests (delta-applied vs from-scratch snapshots must be bit-identical);
// production code never needs it.
func (s *Store) ResetSnapshotCache() {
	s.buildMu.Lock()
	s.snap.Store(nil)
	s.buildMu.Unlock()
}

// buildFrom builds the snapshot for version: incrementally from base when
// the delta log covers (base.Version, version] and no delta widens the
// grid, else from scratch.
func (s *Store) buildFrom(base *Snapshot, version uint64) (*Snapshot, error) {
	if base != nil {
		if recs, ok := s.deltasBetween(base.Version, version); ok && deltasFit(recs, base.DS.NumLines) {
			sn, err := s.applyDelta(base, recs, version)
			if err != nil {
				return nil, err
			}
			if m := s.m; m != nil {
				m.snapshotBuilds.With("delta").Add(1)
			}
			return sn, nil
		}
	}
	sn, err := s.build(version)
	if err == nil && sn != nil {
		if m := s.m; m != nil {
			m.snapshotBuilds.With("full").Add(1)
		}
	}
	return sn, err
}

// deltasFit reports whether every touched cell fits the base grid's width.
// A cell beyond it means a new line widened the grid; the full rebuild that
// handles it also re-sweeps shard tickets, recovering any ticket that was
// filtered out of earlier snapshots because its line had no row yet.
func deltasFit(recs []deltaRecord, numLines int) bool {
	for i := range recs {
		for _, c := range recs[i].cells {
			if int(c.line) >= numLines {
				return false
			}
		}
	}
	return true
}

// applyDelta derives the snapshot at version from base plus the logged
// deltas: touched cells are re-read from their shards (so the result is the
// same last-writer-wins state a full rebuild would copy) into copy-on-write
// chunks, flipped presence rows and per-week line lists are copied once per
// week, attribute slices are copied only if a value actually changed, and
// the ticket slice and index are shared unless a delta added tickets.
func (s *Store) applyDelta(base *Snapshot, recs []deltaRecord, version uint64) (*Snapshot, error) {
	if m := s.m; m != nil {
		defer func(t0 time.Time) {
			m.snapshotApplyDur.Observe(time.Since(t0))
		}(time.Now())
	}
	// The rebuild fault seam covers incremental builds too: a chaos process
	// that fails snapshot builds must degrade delta applies the same way.
	if h := s.faults; h != nil && h.SnapshotBuild != nil {
		if err := h.SnapshotBuild(version); err != nil {
			return nil, err
		}
	}
	n := base.DS.NumLines
	ds := *base.DS // shallow copy; COW fields below replace what changes
	ds.Generation = s.genSalt | version
	ds.Grid = base.DS.Grid.ShareCopy()
	ownedChunks := make([]bool, len(ds.Grid.Chunks))

	sn := &Snapshot{
		Version: version,
		DS:      &ds,
		Ix:      base.Ix,
		Present: base.Present,
		Lines:   base.Lines,
		linesAt: base.linesAt,
	}

	var (
		presentShared = true           // sn.Present still aliases base.Present
		ownedRows     [data.Weeks]bool // presence rows copied so far
		dirtyWeeks    [data.Weeks]bool // weeks whose linesAt needs a rebuild
		attrsShared   = true           // ProfileOf/DSLAMOf/UsageOf still alias base
		dslamChanged  = false
		newLines      []data.LineID
	)

	// Group touched cells by shard so each shard is read-locked once.
	byShard := make(map[int][]cellKey)
	for i := range recs {
		for _, c := range recs[i].cells {
			si := int(uint32(c.line) & s.mask)
			byShard[si] = append(byShard[si], c)
		}
	}
	for si, cells := range byShard {
		sh := &s.shards[si]
		s.rlockShard(sh, "snapshot")
		if h := s.faults; h != nil && h.ShardRead != nil {
			h.ShardRead(si)
		}
		for _, c := range cells {
			ls := sh.lines[c.line]
			w := int(c.week)
			if ls == nil || !ls.seen[w] {
				continue // lines are never removed; defensive only
			}
			ds.Grid.SetCOW(ownedChunks, c.line, w, ls.tests[w])
			if !sn.Present[w][c.line] {
				if presentShared {
					sn.Present = append([][]bool(nil), base.Present...)
					presentShared = false
				}
				if !ownedRows[w] {
					sn.Present[w] = append([]bool(nil), sn.Present[w]...)
					ownedRows[w] = true
				}
				sn.Present[w][c.line] = true
				dirtyWeeks[w] = true
			}
			if ds.ProfileOf[c.line] != ls.profile || ds.DSLAMOf[c.line] != ls.dslam || ds.UsageOf[c.line] != ls.usage {
				if attrsShared {
					ds.ProfileOf = append([]uint8(nil), ds.ProfileOf...)
					ds.DSLAMOf = append([]int32(nil), ds.DSLAMOf...)
					ds.UsageOf = append([]float32(nil), ds.UsageOf...)
					attrsShared = false
				}
				if ds.DSLAMOf[c.line] != ls.dslam {
					dslamChanged = true
				}
				ds.ProfileOf[c.line], ds.DSLAMOf[c.line], ds.UsageOf[c.line] = ls.profile, ls.dslam, ls.usage
			}
			if !containsLine(sn.Lines, c.line) && !containsLineLinear(newLines, c.line) {
				newLines = append(newLines, c.line)
			}
		}
		sh.mu.RUnlock()
	}

	if len(newLines) > 0 {
		merged := make([]data.LineID, 0, len(base.Lines)+len(newLines))
		merged = append(merged, base.Lines...)
		merged = append(merged, newLines...)
		sort.Slice(merged, func(a, b int) bool { return merged[a] < merged[b] })
		sn.Lines = merged
	}
	for w := 0; w < data.Weeks; w++ {
		if !dirtyWeeks[w] {
			continue
		}
		row := sn.Present[w]
		rebuilt := make([]data.LineID, 0, len(base.linesAt[w])+len(newLines))
		for _, l := range sn.Lines {
			if row[l] {
				rebuilt = append(rebuilt, l)
			}
		}
		sn.linesAt[w] = rebuilt
	}

	// NumDSLAMs is sized from attribute values; recompute only when they
	// could have moved. Never-ingested rows hold 0, which cannot exceed any
	// real id, so the array max matches the full build's max over shard
	// states.
	if dslamChanged || len(newLines) > 0 {
		maxDSLAM := int32(0)
		for _, d := range ds.DSLAMOf {
			if d > maxDSLAM {
				maxDSLAM = d
			}
		}
		ds.NumDSLAMs = int(maxDSLAM) + 1
	}

	// Merge newly added tickets. Lines the grid has no row for stay out,
	// exactly as the full build filters them; they are recovered by the full
	// rebuild that accompanies the grid widening. The base may already hold
	// a logged ticket when its build raced the ingest, so the merge dedups
	// against the base's canonically sorted slice.
	var added []data.Ticket
	for i := range recs {
		for _, t := range recs[i].tickets {
			if int(t.Line) < n && !containsTicket(base.DS.Tickets, t) {
				added = append(added, t)
			}
		}
	}
	if len(added) > 0 {
		merged := make([]data.Ticket, 0, len(base.DS.Tickets)+len(added))
		merged = append(merged, base.DS.Tickets...)
		merged = append(merged, added...)
		sortTickets(merged)
		ds.Tickets = merged
		sn.Ix = data.NewTicketIndex(&ds)
	}
	return sn, nil
}

// containsLine reports whether the ascending slice holds l.
func containsLine(sorted []data.LineID, l data.LineID) bool {
	i := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= l })
	return i < len(sorted) && sorted[i] == l
}

// containsLineLinear is the unsorted-slice variant for applyDelta's short
// accumulating new-line list, which is in cell order, not ascending.
func containsLineLinear(lines []data.LineID, l data.LineID) bool {
	for _, x := range lines {
		if x == l {
			return true
		}
	}
	return false
}

// ticketLess is the canonical total order snapshots keep tickets in:
// (Day, Line, ID, Category). Day-major preserves the sorted-by-day contract
// every consumer relies on; the full tie-break makes the order a function of
// the ticket multiset alone, so a delta merge and a from-scratch rebuild
// sort identically regardless of shard sweep order.
func ticketLess(a, b data.Ticket) bool {
	if a.Day != b.Day {
		return a.Day < b.Day
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	if a.ID != b.ID {
		return a.ID < b.ID
	}
	return a.Category < b.Category
}

func sortTickets(ts []data.Ticket) {
	sort.Slice(ts, func(a, b int) bool { return ticketLess(ts[a], ts[b]) })
}

// containsTicket reports whether the canonically sorted slice holds t.
func containsTicket(sorted []data.Ticket, t data.Ticket) bool {
	i := sort.Search(len(sorted), func(i int) bool { return !ticketLess(sorted[i], t) })
	return i < len(sorted) && sorted[i] == t
}

func (s *Store) build(version uint64) (*Snapshot, error) {
	if m := s.m; m != nil {
		defer func(t0 time.Time) {
			m.storeBuildDur.Observe(time.Since(t0))
		}(time.Now())
	}
	if h := s.faults; h != nil && h.SnapshotBuild != nil {
		if err := h.SnapshotBuild(version); err != nil {
			return nil, err
		}
	}
	// Pass 1: grid width. Lines ingested after this pass (the build runs
	// lock-free between shards, so concurrent ingests can land mid-build)
	// are excluded from this snapshot in pass 2 — they belong to a later
	// version, and the version recorded here predates them, so the next
	// read rebuilds and picks them up.
	maxLine := data.LineID(-1)
	for i := range s.shards {
		sh := &s.shards[i]
		s.rlockShard(sh, "snapshot")
		for l := range sh.lines {
			if l > maxLine {
				maxLine = l
			}
		}
		sh.mu.RUnlock()
	}
	if maxLine < 0 {
		return nil, nil
	}
	n := int(maxLine) + 1
	ds := &data.Dataset{
		// Generation keys the feature caches downstream: snapshots of
		// different store versions — or of different stores in the same
		// process (genSalt) — must never share cached encodes.
		Generation: s.genSalt | version,
		NumLines:   n,
		ProfileOf:  make([]uint8, n),
		DSLAMOf:    make([]int32, n),
		UsageOf:    make([]float32, n),
		Grid:       data.NewMeasurementGrid(n),
	}
	present := make([][]bool, data.Weeks)
	for w := 0; w < data.Weeks; w++ {
		present[w] = make([]bool, n)
	}
	// Pass 2: copy line states and tickets. NumDSLAMs is sized from the
	// values actually copied, so a DSLAM id can never index past it.
	maxDSLAM := int32(0)
	var lines []data.LineID
	var tickets []data.Ticket
	for i := range s.shards {
		sh := &s.shards[i]
		s.rlockShard(sh, "snapshot")
		if h := s.faults; h != nil && h.ShardRead != nil {
			h.ShardRead(i)
		}
		for l, ls := range sh.lines {
			if l > maxLine {
				continue // arrived after pass 1; next version's snapshot
			}
			lines = append(lines, l)
			if ls.dslam > maxDSLAM {
				maxDSLAM = ls.dslam
			}
			ds.ProfileOf[l], ds.DSLAMOf[l], ds.UsageOf[l] = ls.profile, ls.dslam, ls.usage
			for w := 0; w < data.Weeks; w++ {
				if ls.seen[w] {
					*ds.Grid.At(l, w) = ls.tests[w]
					present[w][l] = true
				}
			}
		}
		// Tickets for lines the store has never seen a test for stay out of
		// the snapshot: the grid has no row for them, and they join once the
		// line's first test record arrives.
		for _, t := range sh.tickets {
			if t.Line <= maxLine {
				tickets = append(tickets, t)
			}
		}
		sh.mu.RUnlock()
	}
	ds.NumDSLAMs = int(maxDSLAM) + 1
	sort.Slice(lines, func(a, b int) bool { return lines[a] < lines[b] })
	sortTickets(tickets)
	ds.Tickets = tickets
	sn := &Snapshot{
		Version: version,
		DS:      ds,
		Ix:      data.NewTicketIndex(ds),
		Present: present,
		Lines:   lines,
	}
	for w := 0; w < data.Weeks; w++ {
		row := present[w]
		var at []data.LineID
		for _, l := range lines {
			if row[l] {
				at = append(at, l)
			}
		}
		sn.linesAt[w] = at
	}
	return sn, nil
}

package serve

import (
	"sort"
	"strconv"
	"sync"

	"nevermind/internal/data"
	"nevermind/internal/features"
)

// weekTable is the resident scoring column for one (model generation, week):
// every line's compiled-model score and calibrated probability, plus the
// prerendered JSON fragment the fast response writers splice. It is built
// once per (snapshot, models, week) by whichever request arrives first and
// then serves /v1/score, /v1/rank and the pipeline's weekly ranking as pure
// table lookups — zero feature encoding, zero float formatting per request.
//
// Scores are computed by the exact batch call the legacy per-request path
// used (ScoreExamplesIx over single-week examples), so a table lookup is
// bit-identical to an uncached PredictExamples for the same example.
type weekTable struct {
	week int

	once sync.Once
	err  error
	// scores[l] / probs[l] index by line id; the table covers every line in
	// [0, NumLines), present or not, so any valid score request hits it.
	scores []float64
	probs  []float64
	// frags holds every line's rendered prediction object back to back;
	// line l's fragment is frags[fragOff[l]:fragOff[l+1]].
	frags   []byte
	fragOff []int32

	// ranked is built lazily on the first /v1/rank or pipeline ranking:
	// the week's present lines, score-descending (ties line-ascending).
	rankOnce sync.Once
	ranked   []data.LineID
}

// tabKey identifies a table in a snapshot's cache. Models is compared by
// pointer: a hot reload installs a new *Models, so stale generations can
// never serve a fresh request.
type tabKey struct {
	models *Models
	week   int
}

// maxWeekTables bounds a snapshot's table cache. 16 covers every week a
// steady-state server scores (the current week plus history probes) times a
// reload or two; past the cap, tables are built per request and not retained.
const maxWeekTables = 16

// scoreTable returns the (cached) score table for week under the given model
// generation, building it on first use. A build error is cached in the table
// — the model's schema mismatch is deterministic per (models, snapshot) — and
// returned to every caller.
func (sn *Snapshot) scoreTable(models *Models, week int) (*weekTable, error) {
	k := tabKey{models: models, week: week}
	sn.tabMu.Lock()
	if sn.tabs == nil {
		sn.tabs = make(map[tabKey]*weekTable)
	}
	t := sn.tabs[k]
	if t == nil {
		t = &weekTable{week: week}
		if len(sn.tabs) < maxWeekTables {
			sn.tabs[k] = t
		}
	}
	sn.tabMu.Unlock()
	t.once.Do(func() { t.build(sn, models) })
	return t, t.err
}

func (t *weekTable) build(sn *Snapshot, models *Models) {
	n := sn.DS.NumLines
	examples := make([]features.Example, n)
	for l := 0; l < n; l++ {
		examples[l] = features.Example{Line: data.LineID(l), Week: t.week}
	}
	scores, err := models.Pred.ScoreExamplesIx(sn.DS, sn.Ix, examples)
	if err != nil {
		t.err = err
		return
	}
	t.scores = scores
	t.probs = make([]float64, n)
	for l, s := range scores {
		t.probs[l] = models.Pred.Model.Probability(s)
	}
	t.fragOff = make([]int32, n+1)
	buf := make([]byte, 0, n*64)
	for l := 0; l < n; l++ {
		buf = append(buf, `{"line":`...)
		buf = strconv.AppendInt(buf, int64(l), 10)
		buf = append(buf, `,"week":`...)
		buf = strconv.AppendInt(buf, int64(t.week), 10)
		buf = append(buf, `,"score":`...)
		buf = appendJSONFloat(buf, scores[l])
		buf = append(buf, `,"probability":`...)
		buf = appendJSONFloat(buf, t.probs[l])
		buf = append(buf, '}')
		t.fragOff[l+1] = int32(len(buf))
	}
	t.frags = buf
}

// frag returns line l's prerendered prediction object.
func (t *weekTable) frag(l data.LineID) []byte {
	return t.frags[t.fragOff[l]:t.fragOff[l+1]]
}

// rankedLines returns the week's present population best-first: score
// descending, ties by ascending line id — the order /v1/rank has always
// served. Built once per table; callers must not modify the slice.
func (t *weekTable) rankedLines(sn *Snapshot) []data.LineID {
	t.rankOnce.Do(func() {
		lines := sn.LinesAt(t.week)
		r := append([]data.LineID(nil), lines...)
		// (score desc, line asc) is a strict total order — line ids are
		// unique — so the unstable sort is deterministic.
		sort.Slice(r, func(a, b int) bool {
			if t.scores[r[a]] != t.scores[r[b]] {
				return t.scores[r[a]] > t.scores[r[b]]
			}
			return r[a] < r[b]
		})
		t.ranked = r
	})
	return t.ranked
}

package eval

import (
	"fmt"
	"io"

	"nevermind/internal/atds"
	"nevermind/internal/data"
)

// ATDSResult is an extension: the operational-capacity study behind the
// paper's budget constraint (§3.2 — "a high priority would be assigned to
// customer reported problems, with the remaining operational capacity used
// by NEVERMIND"). It replays the test period through the ATDS queue model:
// customer tickets arrive daily with absolute priority, the weekly top-N
// predictions are submitted each Saturday, and the workforce drains the
// queue subject to its daily capacity. The result shows how much of the
// prediction budget actually gets worked and how long everything waits.
type ATDSResult struct {
	BudgetN int
	Days    int
	atds.Stats
	// PredictionsSubmitted across the replayed weeks.
	PredictionsSubmitted int
	// PeakBacklog is the largest end-of-day queue length.
	PeakBacklog int
}

// RunATDS replays the test weeks plus the following label window.
func (c *Context) RunATDS() (*ATDSResult, error) {
	pred, err := c.StandardPredictor()
	if err != nil {
		return nil, err
	}
	firstDay := data.SaturdayOf(c.Cfg.TestWeeks[0])
	lastDay := data.SaturdayOf(c.Cfg.TestWeeks[len(c.Cfg.TestWeeks)-1]) + 14
	if lastDay >= data.DaysInYear {
		lastDay = data.DaysInYear - 1
	}

	// Predictions per Saturday.
	topByDay := map[int][]data.LineID{}
	for _, week := range c.Cfg.TestWeeks {
		top, err := pred.TopN(c.DS, week)
		if err != nil {
			return nil, err
		}
		day := data.SaturdayOf(week)
		for _, p := range top {
			topByDay[day] = append(topByDay[day], p.Line)
		}
	}

	q, err := atds.NewQueue(atds.DefaultConfig(c.DS.NumLines), firstDay)
	if err != nil {
		return nil, err
	}
	res := &ATDSResult{BudgetN: c.Cfg.BudgetN, Days: lastDay - firstDay + 1}

	// Customer tickets indexed by arrival day.
	ticketsByDay := map[int][]data.LineID{}
	for _, t := range c.DS.Tickets {
		if t.Category == data.CatCustomerEdge && t.Day >= firstDay && t.Day <= lastDay {
			ticketsByDay[t.Day] = append(ticketsByDay[t.Day], t.Line)
		}
	}

	var outcomes []atds.Outcome
	for day := firstDay; day <= lastDay; day++ {
		for _, line := range ticketsByDay[day] {
			q.Submit(line, atds.PriorityCustomer, 0)
		}
		for rank, line := range topByDay[day] {
			q.Submit(line, atds.PriorityPredicted, rank+1)
			res.PredictionsSubmitted++
		}
		outcomes = append(outcomes, q.Advance()...)
		if p := q.Pending(); p > res.PeakBacklog {
			res.PeakBacklog = p
		}
	}
	res.Stats = atds.Summarize(outcomes)
	return res, nil
}

// Render prints the capacity study.
func (r *ATDSResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "ATDS capacity replay (extension) — %d days, budget %d/week\n\n", r.Days, r.BudgetN)
	fmt.Fprintf(w, "customer tickets worked:      %d (mean wait %.1f days)\n", r.Customer, r.MeanCustomerWaitDays)
	fmt.Fprintf(w, "predicted problems submitted: %d\n", r.PredictionsSubmitted)
	fmt.Fprintf(w, "predicted problems worked:    %d (mean wait %.1f days; %d within a week)\n",
		r.Predicted, r.MeanPredictedWaitDays, r.WorkedWithinBudgetHorizon)
	fmt.Fprintf(w, "predictions expired unworked: %d\n", r.ExpiredPredicted)
	fmt.Fprintf(w, "peak backlog:                 %d jobs\n", r.PeakBacklog)
	fmt.Fprintf(w, "\nCustomer tickets always pre-empt predictions (§3.2); the weekend capacity\n")
	fmt.Fprintf(w, "bump is what lets the Saturday prediction batch drain before Monday's rush.\n")
	return nil
}

package eval

import (
	"fmt"
	"io"
	"sort"

	"nevermind/internal/features"
	"nevermind/internal/ml"
)

// Fig4Result reproduces Fig. 4: the distribution of per-feature top-N
// average precision for (a) history and customer features, (b) quadratic
// features, and (c) product features. The paper observes bimodal shapes for
// (a) and (b) — a cluster of informative features well separated from the
// noise floor — and selects features above 0.2 (0.3 for products).
type Fig4Result struct {
	BudgetN int
	// Scores per feature family, with names.
	HistCust []NamedScore
	Quad     []NamedScore
	Product  []NamedScore
	// Thresholds applied by the pipeline, and how many features survive.
	HistCustThreshold, QuadThreshold, ProductThreshold float64
	HistCustKept, QuadKept, ProductKept                int
}

// NamedScore pairs a feature name with its criterion score.
type NamedScore struct {
	Name  string
	Score float64
}

// RunFig4 scores every candidate feature with the top-N AP criterion on the
// training weeks.
func (c *Context) RunFig4() (*Fig4Result, error) {
	examples := features.ExamplesForWeeks(c.DS, c.trainWeeks())
	enc, err := features.EncodeCached(c.Cache, c.DS, c.Ix, examples, features.Config{Quadratic: true})
	if err != nil {
		return nil, err
	}
	y := features.Labels(c.Ix, examples, 28)
	selN := c.Cfg.BudgetN * len(c.trainWeeks())
	opt := ml.SelectOptions{N: selN, Seed: c.Cfg.Seed, MaxExamples: c.Cfg.MaxSelectExamples, Workers: c.Cfg.Workers}

	scores, err := ml.FeatureScores(enc.Cols, y, ml.CritTopNAP, opt)
	if err != nil {
		return nil, err
	}

	res := &Fig4Result{BudgetN: c.Cfg.BudgetN}
	histIdx := enc.IndicesOfGroups(features.GroupBasic, features.GroupDelta, features.GroupTS,
		features.GroupProfile, features.GroupTicket, features.GroupModem)
	for _, i := range histIdx {
		res.HistCust = append(res.HistCust, NamedScore{enc.Cols[i].Name, scores[i]})
	}
	for _, i := range enc.IndicesOfGroups(features.GroupQuad) {
		res.Quad = append(res.Quad, NamedScore{enc.Cols[i].Name, scores[i]})
	}

	// Product candidates: cross the strongest base features (Fig. 4c's
	// population; the paper scores a few thousand products).
	histScores := make([]float64, len(histIdx))
	for k, i := range histIdx {
		histScores[k] = scores[i]
	}
	order := ml.RankDesc(histScores)
	baseK := 30
	if baseK > len(order) {
		baseK = len(order)
	}
	var baseIdx []int
	for _, k := range order[:baseK] {
		baseIdx = append(baseIdx, histIdx[k])
	}
	pairs := features.AllPairs(baseIdx)
	prodCols, err := features.ProductColumns(enc, pairs)
	if err != nil {
		return nil, err
	}
	prodScores, err := ml.FeatureScores(prodCols, y, ml.CritTopNAP, opt)
	if err != nil {
		return nil, err
	}
	for i, col := range prodCols {
		res.Product = append(res.Product, NamedScore{col.Name, prodScores[i]})
	}

	// Thresholds: the paper's absolute 0.2/0.2/0.3 separate the bimodal
	// clusters of its data; on this substrate the informative cluster sits
	// at a different absolute level, so place each cutoff at half the top
	// score — the same "well above the noise floor" rule — and report it.
	res.HistCustThreshold = halfTop(res.HistCust)
	res.QuadThreshold = halfTop(res.Quad)
	res.ProductThreshold = 1.5 * halfTop(res.Product) // products must beat both parents (§4.3)
	res.HistCustKept = countAbove(res.HistCust, res.HistCustThreshold)
	res.QuadKept = countAbove(res.Quad, res.QuadThreshold)
	res.ProductKept = countAbove(res.Product, res.ProductThreshold)
	return res, nil
}

func halfTop(xs []NamedScore) float64 {
	max := 0.0
	for _, x := range xs {
		if x.Score > max {
			max = x.Score
		}
	}
	return max / 2
}

func countAbove(xs []NamedScore, thr float64) int {
	n := 0
	for _, x := range xs {
		if x.Score > thr {
			n++
		}
	}
	return n
}

// Render prints the three histograms and the selection summary.
func (r *Fig4Result) Render(w io.Writer) error {
	fmt.Fprintf(w, "Fig. 4 — top-%d average precision per feature\n\n", r.BudgetN)
	families := []struct {
		name string
		xs   []NamedScore
		thr  float64
		kept int
	}{
		{"(a) history and customer features", r.HistCust, r.HistCustThreshold, r.HistCustKept},
		{"(b) quadratic features", r.Quad, r.QuadThreshold, r.QuadKept},
		{"(c) product features", r.Product, r.ProductThreshold, r.ProductKept},
	}
	for _, f := range families {
		max := 0.0
		for _, x := range f.xs {
			if x.Score > max {
				max = x.Score
			}
		}
		if max == 0 {
			max = 1
		}
		vals := make([]float64, len(f.xs))
		for i, x := range f.xs {
			vals[i] = x.Score
		}
		hist := ml.Histogram(vals, 0, max*1.0001, 20)
		fmt.Fprintf(w, "%s: %d features, AP(N) in [0, %.3f]\n", f.name, len(f.xs), max)
		fmt.Fprintf(w, "  histogram %s\n", sparkline(hist))
		fmt.Fprintf(w, "  threshold %.3f keeps %d features\n", f.thr, f.kept)
		top := append([]NamedScore(nil), f.xs...)
		sort.Slice(top, func(a, b int) bool { return top[a].Score > top[b].Score })
		for i := 0; i < 5 && i < len(top); i++ {
			fmt.Fprintf(w, "    %-40s %.4f\n", top[i].Name, top[i].Score)
		}
		fmt.Fprintln(w)
	}
	return nil
}

package eval

import (
	"fmt"
	"io"

	"nevermind/internal/core"
	"nevermind/internal/features"
	"nevermind/internal/ml"
)

// Fig7Result reproduces Fig. 7: ticket-prediction accuracy with history and
// customer features only (dotted curve) versus all Table 3 features
// including the derived quadratic and product features (solid curve). The
// paper reports 37.8% → 40% at the 20K budget from adding derived features.
type Fig7Result struct {
	BudgetN int
	Ks      []int
	// Without uses history+customer features; With adds derived features.
	Without, With []float64
	// The headline numbers at the budget point.
	WithoutAtBudget, WithAtBudget float64
	BaseRate                      float64
}

// RunFig7 trains the two pipelines and evaluates over the held-out test
// weeks (pooled; the budget point is BudgetN × #weeks).
func (c *Context) RunFig7() (*Fig7Result, error) {
	budget := c.Cfg.BudgetN * len(c.Cfg.TestWeeks)
	ks := budgetSweep(budget, c.DS.NumLines*len(c.Cfg.TestWeeks))
	ex := features.ExamplesForWeeks(c.DS, c.Cfg.TestWeeks)
	y := features.Labels(c.Ix, ex, 28)
	res := &Fig7Result{BudgetN: budget, Ks: ks}
	for _, v := range y {
		if v {
			res.BaseRate++
		}
	}
	res.BaseRate /= float64(len(y))

	run := func(derived bool) ([]float64, error) {
		cfg := c.predictorConfig()
		cfg.UseDerived = derived
		pred, err := core.TrainPredictorCached(c.DS, c.trainWeeks(), cfg, c.Cache)
		if err != nil {
			return nil, err
		}
		scores, err := pred.ScoreExamples(c.DS, ex)
		if err != nil {
			return nil, err
		}
		return ml.PrecisionCurve(scores, y, ks), nil
	}
	var err error
	if res.Without, err = run(false); err != nil {
		return nil, fmt.Errorf("eval: fig7 without derived: %w", err)
	}
	if res.With, err = run(true); err != nil {
		return nil, fmt.Errorf("eval: fig7 with derived: %w", err)
	}
	for i, k := range ks {
		if k == budget {
			res.WithoutAtBudget = res.Without[i]
			res.WithAtBudget = res.With[i]
		}
	}
	return res, nil
}

// Render prints the two curves and the budget-point comparison.
func (r *Fig7Result) Render(w io.Writer) error {
	fmt.Fprintf(w, "Fig. 7 — prediction accuracy with and without derived features (budget N = %d)\n\n", r.BudgetN)
	header := []string{"feature set"}
	for _, k := range r.Ks {
		header = append(header, fmt.Sprintf("@%d", k))
	}
	rows := [][]string{
		append([]string{"history+customer"}, pcts(r.Without)...),
		append([]string{"all (with derived)"}, pcts(r.With)...),
	}
	if err := table(w, header, rows); err != nil {
		return err
	}
	ratio := 0.0
	if r.WithAtBudget > 0 && r.WithAtBudget < 1 {
		ratio = (1 - r.WithAtBudget) / r.WithAtBudget
	}
	fmt.Fprintf(w, "\nat budget: %s without derived, %s with derived (1 true : %.1f incorrect); base rate %s\n",
		pct(r.WithoutAtBudget), pct(r.WithAtBudget), ratio, pct(r.BaseRate))
	return nil
}

func pcts(xs []float64) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = pct(x)
	}
	return out
}

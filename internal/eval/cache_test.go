package eval

import (
	"reflect"
	"testing"
)

// cacheCfg is a deliberately small configuration — the cache tests retrain
// fig6's fifteen predictors up to twice, and the race target runs them under
// -race, so they get their own context instead of the shared ctxFixture.
func cacheCfg(disable bool) Config {
	return Config{
		Lines:             1500,
		Seed:              11,
		Rounds:            12,
		LocRounds:         12,
		MaxSelectExamples: 6000,
		TrainLo:           33,
		TrainHi:           36,
		TestWeeks:         []int{43},
		DisableCache:      disable,
	}
}

// TestCacheSharedAcrossFig4AndFig6 proves the experiments actually share
// matrices: fig4 seeds the training-week encodes, and fig6's fifteen
// predictor trainings plus scoring passes must hit them instead of
// re-encoding.
func TestCacheSharedAcrossFig4AndFig6(t *testing.T) {
	ctx, err := NewContext(cacheCfg(false))
	if err != nil {
		t.Fatal(err)
	}
	if ctx.Cache == nil {
		t.Fatal("context built without a cache")
	}
	if _, err := ctx.RunFig4(); err != nil {
		t.Fatal(err)
	}
	hitsAfterFig4, missesAfterFig4 := ctx.Cache.Stats()
	if missesAfterFig4 == 0 {
		t.Fatal("fig4 never consulted the cache")
	}
	if _, err := ctx.RunFig6(); err != nil {
		t.Fatal(err)
	}
	hits, _ := ctx.Cache.Stats()
	// fig6 trains 5 criteria × 3 repeats on the training weeks fig4 already
	// encoded: every training must hit the shared base encode, plus the
	// test-week encodes shared across repeats.
	if hits-hitsAfterFig4 < 15 {
		t.Fatalf("fig6 hit the cache only %d times after fig4, want >= 15", hits-hitsAfterFig4)
	}
	// A second fig4 run reuses everything: no new misses.
	_, missesBefore := ctx.Cache.Stats()
	if _, err := ctx.RunFig4(); err != nil {
		t.Fatal(err)
	}
	if _, misses := ctx.Cache.Stats(); misses != missesBefore {
		t.Fatalf("repeat fig4 missed the cache (%d -> %d misses)", missesBefore, misses)
	}
}

// TestCacheDisabledResultsUnchanged is the A/B guarantee: with the cache off
// the experiments recompute everything, and every number must come out
// identical.
func TestCacheDisabledResultsUnchanged(t *testing.T) {
	cached, err := NewContext(cacheCfg(false))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewContext(cacheCfg(true))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Cache != nil {
		t.Fatal("DisableCache left a cache attached")
	}

	fig4Cached, err := cached.RunFig4()
	if err != nil {
		t.Fatal(err)
	}
	fig4Plain, err := plain.RunFig4()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fig4Cached, fig4Plain) {
		t.Fatal("fig4 results differ with the cache disabled")
	}

	fig6Cached, err := cached.RunFig6()
	if err != nil {
		t.Fatal(err)
	}
	fig6Plain, err := plain.RunFig6()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fig6Cached, fig6Plain) {
		t.Fatal("fig6 results differ with the cache disabled")
	}

	if hits, _ := cached.Cache.Stats(); hits == 0 {
		t.Fatal("cached context never hit its cache — the A/B compared nothing")
	}
}

package eval

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"nevermind/internal/ml"
)

// The experiments share one small context; each runner is exercised for its
// structural invariants and the direction of its headline claim. Full-scale
// shape reproduction lives in cmd/experiments and EXPERIMENTS.md.
var testCtx *Context

func ctxFixture(t *testing.T) *Context {
	t.Helper()
	if testCtx == nil {
		ctx, err := NewContext(Config{
			Lines: 4000, Seed: 9, Rounds: 60, LocRounds: 40,
			MaxSelectExamples: 12000, TestWeeks: []int{43, 44},
		})
		if err != nil {
			t.Fatal(err)
		}
		testCtx = ctx
	}
	return testCtx
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.Defaults()
	if c.Lines != 20000 || c.BudgetN != 400 || len(c.TestWeeks) != 4 {
		t.Fatalf("defaults: %+v", c)
	}
	c = Config{Lines: 100}.Defaults()
	if c.BudgetN < 10 {
		t.Fatal("budget floor missing")
	}
}

func TestNewContextRejectsBadSplit(t *testing.T) {
	if _, err := NewContext(Config{TrainLo: 10, TrainHi: 5}); err == nil {
		t.Fatal("inverted training weeks accepted")
	}
	if _, err := NewContext(Config{TestWeeks: []int{31}}); err == nil {
		t.Fatal("test week inside training accepted")
	}
	if _, err := NewContext(Config{TestWeeks: []int{99}}); err == nil {
		t.Fatal("test week beyond calendar accepted")
	}
}

func TestTrendExperiment(t *testing.T) {
	ctx := ctxFixture(t)
	res, err := ctx.RunTrend()
	if err != nil {
		t.Fatal(err)
	}
	if res.Peak() != time.Monday {
		t.Fatalf("ticket peak on %v, want Monday", res.Peak())
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Monday") {
		t.Fatal("render misses weekdays")
	}
}

func TestTable1Experiment(t *testing.T) {
	ctx := ctxFixture(t)
	res, err := ctx.RunTable1()
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, share := range res.LocationShare {
		sum += share
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("location shares sum to %v", sum)
	}
	if res.LocationShare["HN"] < res.LocationShare["DS"] {
		t.Fatal("HN should dominate the disposition mix")
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "HN") || !strings.Contains(buf.String(), "DSLAM") {
		t.Fatal("render misses locations")
	}
}

func TestFig4Experiment(t *testing.T) {
	ctx := ctxFixture(t)
	res, err := ctx.RunFig4()
	if err != nil {
		t.Fatal(err)
	}
	// 85 history+customer columns, 50 squared deviations (delta+ts), and a
	// few hundred candidate products.
	if len(res.HistCust) < 70 || len(res.Quad) < 40 || len(res.Product) < 100 {
		t.Fatalf("feature family sizes: %d/%d/%d", len(res.HistCust), len(res.Quad), len(res.Product))
	}
	for _, fam := range [][]NamedScore{res.HistCust, res.Quad, res.Product} {
		for _, x := range fam {
			if x.Score < 0 || x.Score > 1 {
				t.Fatalf("AP score %v out of [0,1] for %s", x.Score, x.Name)
			}
		}
	}
	// The error counters drive the simulator's faults; one must clear the
	// selection threshold.
	if res.HistCustKept < 1 || res.HistCustKept > len(res.HistCust)/2 {
		t.Fatalf("threshold keeps %d of %d history features; expect a selective cut", res.HistCustKept, len(res.HistCust))
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "histogram") {
		t.Fatal("render misses the histogram")
	}
}

func TestFig6Experiment(t *testing.T) {
	ctx := ctxFixture(t)
	res, err := ctx.RunFig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Order) != len(ml.Criteria) {
		t.Fatalf("%d criteria ran", len(res.Order))
	}
	for name, curve := range res.Curves {
		if len(curve) != len(res.Ks) {
			t.Fatalf("curve %s has %d points for %d ks", name, len(curve), len(res.Ks))
		}
		for _, p := range curve {
			if p < 0 || p > 1 {
				t.Fatalf("precision %v out of range", p)
			}
		}
		// Every selection method must still beat the ~4% base rate at the
		// budget point — the signal features are found by all criteria.
		if curve[2] < 0.10 {
			t.Fatalf("criterion %s collapses at budget: %v", name, curve[2])
		}
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "top-N AP") {
		t.Fatal("render misses the paper's method")
	}
}

func TestFig7Experiment(t *testing.T) {
	ctx := ctxFixture(t)
	res, err := ctx.RunFig7()
	if err != nil {
		t.Fatal(err)
	}
	if res.BaseRate <= 0 || res.BaseRate > 0.2 {
		t.Fatalf("base rate %v", res.BaseRate)
	}
	if res.WithAtBudget < 3*res.BaseRate || res.WithoutAtBudget < 3*res.BaseRate {
		t.Fatalf("budget accuracy (%.2f / %.2f) under 3x base rate %.3f",
			res.WithoutAtBudget, res.WithAtBudget, res.BaseRate)
	}
	// Precision must decline as the selection grows (Fig. 7's shape).
	last := len(res.With) - 1
	if res.With[last] >= res.With[2] {
		t.Fatal("precision did not decline with selection size")
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestFig8Experiment(t *testing.T) {
	ctx := ctxFixture(t)
	res, err := ctx.RunFig8()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CDFs) != 3 {
		t.Fatalf("%d CDFs", len(res.CDFs))
	}
	for i, cdf := range res.CDFs {
		for j := 1; j < len(cdf); j++ {
			if cdf[j] < cdf[j-1] {
				t.Fatalf("CDF %d not monotone", i)
			}
		}
		if res.TruePredictions[i] > 0 && res.At(i, 28) < 0.999 {
			t.Fatalf("CDF %d does not reach 1 at the window end: %v", i, res.At(i, 28))
		}
	}
	// Most predicted tickets arrive within two weeks (the paper: ~80%).
	if res.TruePredictions[1] > 20 && res.At(1, 14) < 0.5 {
		t.Fatalf("only %v of predicted tickets within two weeks", res.At(1, 14))
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestTable5Experiment(t *testing.T) {
	ctx := ctxFixture(t)
	res, err := ctx.RunTable5()
	if err != nil {
		t.Fatal(err)
	}
	if res.Incorrect == 0 {
		t.Fatal("no incorrect predictions")
	}
	// The explained fraction must grow with the horizon and dominate the
	// coincidence floor at 4 weeks.
	for tt := 1; tt < 4; tt++ {
		if res.ExplainedByOutage[tt] < res.ExplainedByOutage[tt-1]-1e-9 {
			t.Fatalf("explained fraction not monotone: %v", res.ExplainedByOutage)
		}
	}
	// Floor dominance needs hundreds of incorrect predictions to be a
	// stable statistic; at this fixture's scale only sanity-check it.
	if res.Incorrect >= 300 && res.ExplainedByOutage[3] <= res.BaseOutageRate[3] {
		t.Fatalf("outage-explained %v does not exceed floor %v",
			res.ExplainedByOutage[3], res.BaseOutageRate[3])
	}
	if res.ExplainedByOutage[3] > 0.9 {
		t.Fatalf("outage-explained %v implausibly high", res.ExplainedByOutage[3])
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestNotOnSiteExperiment(t *testing.T) {
	ctx := ctxFixture(t)
	res, err := ctx.RunNotOnSite()
	if err != nil {
		t.Fatal(err)
	}
	if res.Incorrect == 0 {
		t.Fatal("no incorrect predictions")
	}
	if res.Fraction < 0 || res.Fraction > 1 {
		t.Fatalf("fraction %v", res.Fraction)
	}
	// Away/dormant subscribers must be over-represented among incorrect
	// predictions relative to the population floor.
	if res.Fraction <= res.PopulationFraction {
		t.Fatalf("not-on-site fraction %v does not exceed floor %v", res.Fraction, res.PopulationFraction)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestLocatorExperiment(t *testing.T) {
	ctx := ctxFixture(t)
	res, err := ctx.RunLocator()
	if err != nil {
		t.Fatal(err)
	}
	if res.MedianRank["flat"] > res.MedianRank["basic"] {
		t.Fatalf("flat median %d worse than basic %d", res.MedianRank["flat"], res.MedianRank["basic"])
	}
	if res.MeanRank["combined"] > res.MeanRank["basic"] {
		t.Fatal("combined mean worse than basic")
	}
	// Fig. 10 property: improvement grows toward deeper basic-rank bins.
	nb := len(res.FlatImprovement)
	if res.FlatImprovement[nb-1] <= res.FlatImprovement[0] {
		t.Fatalf("rank improvement does not grow with depth: %v", res.FlatImprovement)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "combined") {
		t.Fatal("render misses the combined model")
	}
}

func TestDeploymentExperiment(t *testing.T) {
	ctx := ctxFixture(t)
	res, err := ctx.RunDeployment()
	if err != nil {
		t.Fatal(err)
	}
	if res.Dispatched != ctx.Cfg.BudgetN*len(ctx.Cfg.TestWeeks) {
		t.Fatalf("dispatched %d, want budget × weeks", res.Dispatched)
	}
	if res.UsefulDispatches > res.Dispatched {
		t.Fatal("more useful dispatches than dispatches")
	}
	if res.TicketsEliminated > res.TicketsInPeriod {
		t.Fatal("eliminated more tickets than existed")
	}
	// The whole point: proactive fixes must remove a meaningful share of
	// the ticket load.
	if res.Reduction < 0.05 {
		t.Fatalf("deployment eliminated only %s of tickets", pct(res.Reduction))
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "eliminated") {
		t.Fatal("render misses the headline")
	}
}

func TestATDSExperiment(t *testing.T) {
	ctx := ctxFixture(t)
	res, err := ctx.RunATDS()
	if err != nil {
		t.Fatal(err)
	}
	if res.PredictionsSubmitted != ctx.Cfg.BudgetN*len(ctx.Cfg.TestWeeks) {
		t.Fatalf("submitted %d predictions", res.PredictionsSubmitted)
	}
	if res.Predicted+res.ExpiredPredicted > res.PredictionsSubmitted {
		t.Fatal("more prediction outcomes than submissions")
	}
	if res.Customer == 0 {
		t.Fatal("no customer tickets worked")
	}
	// Customer tickets pre-empt predictions, so they cannot wait longer on
	// average.
	if res.MeanCustomerWaitDays > res.MeanPredictedWaitDays+1e-9 && res.Predicted > 0 {
		t.Fatalf("customer wait %.1f exceeds predicted wait %.1f",
			res.MeanCustomerWaitDays, res.MeanPredictedWaitDays)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "backlog") {
		t.Fatal("render misses the backlog")
	}
}

func TestBudgetSweep(t *testing.T) {
	ks := budgetSweep(400, 20000)
	if len(ks) == 0 || ks[0] != 100 {
		t.Fatalf("sweep = %v", ks)
	}
	for i := 1; i < len(ks); i++ {
		if ks[i] <= ks[i-1] {
			t.Fatalf("sweep not increasing: %v", ks)
		}
	}
	// Clamp: tiny population drops oversize points.
	ks = budgetSweep(400, 500)
	for _, k := range ks {
		if k > 500 {
			t.Fatalf("sweep exceeds population: %v", ks)
		}
	}
}

func TestSparkline(t *testing.T) {
	if s := sparkline([]int{0, 1, 2, 4}); len([]rune(s)) != 4 {
		t.Fatalf("sparkline %q", s)
	}
	if s := sparkline([]int{0, 0}); s != "" {
		t.Fatalf("empty sparkline = %q", s)
	}
}

func TestTableRender(t *testing.T) {
	var buf bytes.Buffer
	err := table(&buf, []string{"a", "b"}, [][]string{{"1", "2"}, {"333", "4"}})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("table has %d lines", len(lines))
	}
}

func TestFig9Experiment(t *testing.T) {
	ctx := ctxFixture(t)
	res, err := ctx.RunFig9()
	if err != nil {
		t.Fatal(err)
	}
	if res.Disposition == "" {
		t.Fatal("no disposition illustrated")
	}
	if !strings.Contains(res.Text, "Eq. 2") || !strings.Contains(res.Text, "weak learners") {
		t.Fatalf("illustration text incomplete:\n%s", res.Text)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Fig. 9") {
		t.Fatal("render misses the caption")
	}
}

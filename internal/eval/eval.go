// Package eval regenerates every table and figure of the paper's evaluation
// (§5 and §6.3) against the simulated substrate: one runner per artifact,
// each returning a typed result that renders as a text table. The
// per-experiment index lives in DESIGN.md; paper-vs-measured numbers are
// recorded in EXPERIMENTS.md.
package eval

import (
	"fmt"
	"io"
	"text/tabwriter"

	"nevermind/internal/core"
	"nevermind/internal/data"
	"nevermind/internal/features"
	"nevermind/internal/sim"
)

// Config sizes an experiment run. The defaults reproduce the shapes of the
// paper at laptop scale; Lines scales everything else.
type Config struct {
	// Lines is the subscriber population (the paper: millions; default
	// 20000 — every budget in the experiments scales with it).
	Lines int
	// Seed drives the simulation and every pipeline.
	Seed uint64
	// Rounds is the predictor boosting budget (paper: 800).
	Rounds int
	// LocRounds is the locator boosting budget (paper: 200).
	LocRounds int
	// MaxSelectExamples caps the feature-selection subsample.
	MaxSelectExamples int
	// TrainLo, TrainHi are the predictor training weeks, inclusive
	// (default 30..38 ≈ the paper's 08/01–09/31).
	TrainLo, TrainHi int
	// TestWeeks are the ranking weeks for evaluation (default 43..46, the
	// paper's "four contiguous weeks starting from 10/31").
	TestWeeks []int
	// BudgetN is the ATDS capacity per ranking (default Lines/50, the
	// 20K-of-a-million operating ratio).
	BudgetN int
	// Workers sizes the pipeline worker pools (0 = GOMAXPROCS,
	// 1 = sequential); results are bit-identical at any setting.
	Workers int
	// DisableCache turns off the cross-experiment encode/bin cache; every
	// experiment then recomputes its feature matrices from scratch. Results
	// are identical either way (see eval/cache_test.go) — this exists for
	// A/B verification and memory-constrained runs.
	DisableCache bool
	// CacheEntries bounds the cache (0 = features.DefaultCacheEntries).
	CacheEntries int
}

// Defaults fills zero fields.
func (c Config) Defaults() Config {
	if c.Lines == 0 {
		c.Lines = 20000
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Rounds == 0 {
		c.Rounds = 250
	}
	if c.LocRounds == 0 {
		c.LocRounds = 80
	}
	if c.MaxSelectExamples == 0 {
		c.MaxSelectExamples = 60000
	}
	if c.TrainLo == 0 {
		c.TrainLo = 30
	}
	if c.TrainHi == 0 {
		c.TrainHi = 38
	}
	if len(c.TestWeeks) == 0 {
		c.TestWeeks = []int{43, 44, 45, 46}
	}
	if c.BudgetN == 0 {
		c.BudgetN = c.Lines / 50
		if c.BudgetN < 10 {
			c.BudgetN = 10
		}
	}
	return c
}

// Context is one simulated year shared by all experiments.
type Context struct {
	Cfg Config
	Res *sim.Result
	DS  *data.Dataset
	Ix  *data.TicketIndex

	// Cache memoizes encoded/binned feature matrices across the
	// experiments (fig4/fig6–fig9/table5/trend all walk the same weeks);
	// nil when Cfg.DisableCache is set.
	Cache *features.Cache

	stdPred *core.TicketPredictor // lazily trained standard pipeline
}

// StandardPredictor returns the full-pipeline predictor trained on the
// standard split, shared by the experiments that evaluate it (Fig. 8,
// Table 5, not-on-site).
func (c *Context) StandardPredictor() (*core.TicketPredictor, error) {
	if c.stdPred == nil {
		p, err := core.TrainPredictorCached(c.DS, c.trainWeeks(), c.predictorConfig(), c.Cache)
		if err != nil {
			return nil, err
		}
		c.stdPred = p
	}
	return c.stdPred, nil
}

// NewContext simulates the year.
func NewContext(cfg Config) (*Context, error) {
	cfg = cfg.Defaults()
	if cfg.TrainHi < cfg.TrainLo {
		return nil, fmt.Errorf("eval: malformed training weeks [%d,%d]", cfg.TrainLo, cfg.TrainHi)
	}
	for _, w := range cfg.TestWeeks {
		if w <= cfg.TrainHi || w >= data.Weeks {
			return nil, fmt.Errorf("eval: test week %d overlaps training [%d,%d] or the calendar", w, cfg.TrainLo, cfg.TrainHi)
		}
	}
	res, err := sim.Run(sim.DefaultConfig(cfg.Lines, cfg.Seed))
	if err != nil {
		return nil, err
	}
	ctx := &Context{Cfg: cfg, Res: res, DS: res.Dataset, Ix: data.NewTicketIndex(res.Dataset)}
	if !cfg.DisableCache {
		ctx.Cache = features.NewCache(cfg.CacheEntries)
	}
	return ctx, nil
}

// predictorConfig builds the standard predictor configuration for this run.
func (c *Context) predictorConfig() core.PredictorConfig {
	cfg := core.DefaultPredictorConfig(c.Cfg.Lines, c.Cfg.Seed)
	cfg.Rounds = c.Cfg.Rounds
	cfg.BudgetN = c.Cfg.BudgetN
	cfg.MaxSelectExamples = c.Cfg.MaxSelectExamples
	cfg.Workers = c.Cfg.Workers
	return cfg
}

// trainWeeks returns the training week list.
func (c *Context) trainWeeks() []int {
	var out []int
	for w := c.Cfg.TrainLo; w <= c.Cfg.TrainHi; w++ {
		out = append(out, w)
	}
	return out
}

// --- rendering helpers ------------------------------------------------------

// table writes rows with aligned columns.
func table(w io.Writer, header []string, rows [][]string) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if header != nil {
		for i, h := range header {
			if i > 0 {
				fmt.Fprint(tw, "\t")
			}
			fmt.Fprint(tw, h)
		}
		fmt.Fprintln(tw)
	}
	for _, r := range rows {
		for i, cell := range r {
			if i > 0 {
				fmt.Fprint(tw, "\t")
			}
			fmt.Fprint(tw, cell)
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// sparkline renders counts as a unicode bar chart line.
func sparkline(counts []int) string {
	glyphs := []rune(" ▁▂▃▄▅▆▇█")
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max == 0 {
		return ""
	}
	out := make([]rune, len(counts))
	for i, c := range counts {
		g := (c*(len(glyphs)-1) + max - 1) / max
		out[i] = glyphs[g]
	}
	return string(out)
}

func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

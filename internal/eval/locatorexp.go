package eval

import (
	"fmt"
	"io"
	"sort"

	"nevermind/internal/core"
	"nevermind/internal/data"
	"nevermind/internal/faults"
)

// LocatorResult reproduces §6.3: the trouble-locator evaluation. It contains
// both the headline "tests needed to locate 50% of problems" comparison and
// the Fig. 10 rank-improvement-by-basic-rank-bin curves for the flat and
// combined models.
type LocatorResult struct {
	TrainCases, TestCases int
	Dispositions          int

	// MedianRank per model: the tests needed to locate half the problems.
	MedianRank map[string]int
	// MeanRank per model.
	MeanRank map[string]float64

	// Fig. 10: basic-rank bins and the average rank improvement
	// (basicRank − modelRank) per bin for flat and combined.
	BinLabels       []string
	FlatImprovement []float64
	CombImprovement []float64
	BinCounts       []int
}

// RunLocator trains on dispatches up to mid-September and evaluates on the
// rest of the year (the paper: 7 weeks of training, 7 of test).
func (c *Context) RunLocator() (*LocatorResult, error) {
	splitDay := data.DayOfDate(9, 19)
	train := core.CasesFromNotes(c.DS, data.FirstSaturday, splitDay-1)
	test := core.CasesFromNotes(c.DS, splitDay, data.DayOfDate(11, 6))
	cfg := core.DefaultLocatorConfig(c.Cfg.Seed)
	cfg.Rounds = c.Cfg.LocRounds
	cfg.Workers = c.Cfg.Workers
	loc, err := core.TrainLocatorCached(c.DS, train, cfg, c.Cache)
	if err != nil {
		return nil, err
	}

	res := &LocatorResult{
		TrainCases:   len(train),
		TestCases:    len(test),
		Dispositions: len(loc.Dispositions),
		MedianRank:   map[string]int{},
		MeanRank:     map[string]float64{},
	}

	ranks := map[core.LocatorModel][]int{}
	for _, m := range []core.LocatorModel{core.ModelBasic, core.ModelFlat, core.ModelCombined} {
		r, err := loc.RankOfTruth(c.DS, test, m)
		if err != nil {
			return nil, err
		}
		ranks[m] = r
		var valid []int
		sum := 0
		for _, v := range r {
			if v > 0 {
				valid = append(valid, v)
				sum += v
			}
		}
		if len(valid) == 0 {
			return nil, fmt.Errorf("eval: no rankable test cases for %v", m)
		}
		sort.Ints(valid)
		res.MedianRank[m.String()] = valid[len(valid)/2]
		res.MeanRank[m.String()] = float64(sum) / float64(len(valid))
	}

	// Fig. 10: bin test cases by their basic rank.
	bins := []struct {
		lo, hi int
		label  string
	}{
		{1, 5, "1-5"}, {6, 10, "6-10"}, {11, 15, "11-15"},
		{16, 20, "16-20"}, {21, 1 << 30, "21+"},
	}
	for _, b := range bins {
		var dFlat, dComb float64
		n := 0
		for i := range test {
			rb := ranks[core.ModelBasic][i]
			if rb < b.lo || rb > b.hi || ranks[core.ModelFlat][i] <= 0 {
				continue
			}
			n++
			dFlat += float64(rb - ranks[core.ModelFlat][i])
			dComb += float64(rb - ranks[core.ModelCombined][i])
		}
		res.BinLabels = append(res.BinLabels, b.label)
		res.BinCounts = append(res.BinCounts, n)
		if n > 0 {
			res.FlatImprovement = append(res.FlatImprovement, dFlat/float64(n))
			res.CombImprovement = append(res.CombImprovement, dComb/float64(n))
		} else {
			res.FlatImprovement = append(res.FlatImprovement, 0)
			res.CombImprovement = append(res.CombImprovement, 0)
		}
	}
	return res, nil
}

// Render prints the §6.3 headline and the Fig. 10 table.
func (r *LocatorResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "§6.3 — trouble locator (%d train dispatches, %d test, %d dispositions)\n\n",
		r.TrainCases, r.TestCases, r.Dispositions)
	if err := table(w, []string{"model", "median tests to locate", "mean rank"}, [][]string{
		{"basic", fmt.Sprint(r.MedianRank["basic"]), fmt.Sprintf("%.1f", r.MeanRank["basic"])},
		{"flat", fmt.Sprint(r.MedianRank["flat"]), fmt.Sprintf("%.1f", r.MeanRank["flat"])},
		{"combined", fmt.Sprint(r.MedianRank["combined"]), fmt.Sprintf("%.1f", r.MeanRank["combined"])},
	}); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nFig. 10 — average rank improvement over basic ranks, by basic-rank bin\n\n")
	header := []string{"basic rank", "cases", "flat model", "combined model"}
	var rows [][]string
	for i := range r.BinLabels {
		rows = append(rows, []string{
			r.BinLabels[i], fmt.Sprint(r.BinCounts[i]),
			fmt.Sprintf("%+.1f", r.FlatImprovement[i]),
			fmt.Sprintf("%+.1f", r.CombImprovement[i]),
		})
	}
	return table(w, header, rows)
}

// --- Table 1 / Fig. 2: the disposition mix ----------------------------------

// Table1Result summarises the disposition taxonomy and the observed mix of
// dispositions per major location over one month of dispatches (the paper
// studies August 2009).
type Table1Result struct {
	Month string
	// PerLocation maps location → (disposition name, share-of-location).
	PerLocation map[string][]NamedScore
	// LocationShare maps location → share of all dispatches.
	LocationShare map[string]float64
	Total         int
}

// RunTable1 tallies the August disposition notes.
func (c *Context) RunTable1() (*Table1Result, error) {
	lo, hi := data.DayOfDate(8, 1), data.DayOfDate(8, 31)
	counts := map[faults.DispositionID]int{}
	total := 0
	for _, n := range c.DS.Notes {
		if n.Day < lo || n.Day > hi {
			continue
		}
		counts[faults.DispositionID(n.Disposition)]++
		total++
	}
	if total == 0 {
		return nil, fmt.Errorf("eval: no August dispatches")
	}
	res := &Table1Result{
		Month:         "2009-08",
		PerLocation:   map[string][]NamedScore{},
		LocationShare: map[string]float64{},
		Total:         total,
	}
	for loc := faults.HN; loc < faults.NumLocations; loc++ {
		locTotal := 0
		for _, id := range faults.ByLocation(loc) {
			locTotal += counts[id]
		}
		res.LocationShare[loc.String()] = float64(locTotal) / float64(total)
		var xs []NamedScore
		for _, id := range faults.ByLocation(loc) {
			if counts[id] == 0 {
				continue
			}
			share := 0.0
			if locTotal > 0 {
				share = float64(counts[id]) / float64(locTotal)
			}
			xs = append(xs, NamedScore{faults.Catalog[id].Name, share})
		}
		sort.Slice(xs, func(a, b int) bool { return xs[a].Score > xs[b].Score })
		res.PerLocation[loc.String()] = xs
	}
	return res, nil
}

// Render prints the Table 1 style summary.
func (r *Table1Result) Render(w io.Writer) error {
	fmt.Fprintf(w, "Table 1 — dispositions by major location (%s, %d dispatches)\n\n", r.Month, r.Total)
	for _, loc := range []string{"HN", "F1", "DSLAM", "F2"} {
		key := loc
		if loc == "DSLAM" {
			key = "DS"
		}
		xs, ok := r.PerLocation[key]
		if !ok {
			continue
		}
		fmt.Fprintf(w, "%s (%s of all dispatches):\n", loc, pct(r.LocationShare[key]))
		for i, x := range xs {
			if i >= 6 {
				fmt.Fprintf(w, "  ... and %d more\n", len(xs)-i)
				break
			}
			fmt.Fprintf(w, "  %-42s %s\n", x.Name, pct(x.Score))
		}
		fmt.Fprintln(w)
	}
	return nil
}

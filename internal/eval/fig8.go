package eval

import (
	"fmt"
	"io"

	"nevermind/internal/data"
	"nevermind/internal/ml"
)

// Fig8Result reproduces Fig. 8: the CDF of the time from a prediction to the
// customer's ticket, for three selection sizes (the paper: top 10K/20K/100K).
// The paper reads off two operational numbers: fixing all predicted problems
// within two days misses at most 15% of the tickets, within three days at
// most 20%; and ~80% of predicted tickets arrive within two weeks.
type Fig8Result struct {
	BudgetN int
	Sizes   []int
	Days    []float64
	// CDFs[i][j] = P(days-to-ticket <= Days[j]) among true predictions in
	// the top Sizes[i].
	CDFs [][]float64
	// TruePredictions per size.
	TruePredictions []int
}

// RunFig8 ranks each test week with the full pipeline and follows each true
// prediction to its ticket. Each weekly ranking contributes its own top-k
// (the paper's 10K/20K/100K are weekly budgets).
func (c *Context) RunFig8() (*Fig8Result, error) {
	pred, err := c.StandardPredictor()
	if err != nil {
		return nil, err
	}
	sizes := []int{c.Cfg.BudgetN / 2, c.Cfg.BudgetN, 5 * c.Cfg.BudgetN}
	days := make([]float64, 30)
	for i := range days {
		days[i] = float64(i + 1)
	}
	res := &Fig8Result{BudgetN: c.Cfg.BudgetN, Sizes: sizes, Days: days}
	deltasBySize := make([][]float64, len(sizes))
	for _, week := range c.Cfg.TestWeeks {
		ranked, err := pred.Rank(c.DS, week)
		if err != nil {
			return nil, err
		}
		day := data.SaturdayOf(week)
		for si, size := range sizes {
			if size > len(ranked) {
				size = len(ranked)
			}
			for _, p := range ranked[:size] {
				if next, ok := c.Ix.Next(p.Line, day); ok && next-day <= 28 {
					deltasBySize[si] = append(deltasBySize[si], float64(next-day))
				}
			}
		}
	}
	for si := range sizes {
		res.CDFs = append(res.CDFs, ml.CDF(deltasBySize[si], days))
		res.TruePredictions = append(res.TruePredictions, len(deltasBySize[si]))
	}
	return res, nil
}

// At returns the CDF value for a selection size at a horizon of d days.
func (r *Fig8Result) At(sizeIdx int, d int) float64 {
	if d < 1 {
		return 0
	}
	if d > len(r.Days) {
		d = len(r.Days)
	}
	return r.CDFs[sizeIdx][d-1]
}

// Render prints the CDFs and the operational read-offs.
func (r *Fig8Result) Render(w io.Writer) error {
	fmt.Fprintf(w, "Fig. 8 — CDF of days from prediction to customer ticket\n\n")
	header := []string{"top-k", "true preds", "<=2d", "<=3d", "<=7d", "<=14d", "<=21d", "<=28d"}
	var rows [][]string
	for i, size := range r.Sizes {
		rows = append(rows, []string{
			fmt.Sprintf("%d", size),
			fmt.Sprintf("%d", r.TruePredictions[i]),
			pct(r.At(i, 2)), pct(r.At(i, 3)), pct(r.At(i, 7)),
			pct(r.At(i, 14)), pct(r.At(i, 21)), pct(r.At(i, 28)),
		})
	}
	if err := table(w, header, rows); err != nil {
		return err
	}
	// The paper's read-offs, against the budget row.
	bi := 1
	fmt.Fprintf(w, "\nfix-by-Monday (2 days) misses %s of predicted tickets; fix-in-3-days misses %s; %s arrive within two weeks\n",
		pct(r.At(bi, 2)), pct(r.At(bi, 3)), pct(r.At(bi, 14)))
	return nil
}

package eval

import (
	"fmt"
	"io"

	"nevermind/internal/data"
)

// NotOnSiteResult reproduces the §5.2 "customers not on site" analysis: an
// incorrect prediction is classified as not-on-site when the subscriber
// generated no traffic from one week before to one week after the prediction
// — a real problem nobody was home to notice. The paper samples subscribers
// under two BRAS servers and finds 16.7% (18 of 108).
type NotOnSiteResult struct {
	BudgetN   int
	Incorrect int
	NotOnSite int
	Fraction  float64
	// PopulationFraction is the same statistic over all lines: the
	// coincidence floor.
	PopulationFraction float64
}

// RunNotOnSite joins incorrect predictions with the per-subscriber daily
// traffic counters.
func (c *Context) RunNotOnSite() (*NotOnSiteResult, error) {
	pred, err := c.StandardPredictor()
	if err != nil {
		return nil, err
	}
	noTraffic := func(line data.LineID, day int) bool {
		for d := day - 7; d <= day+7; d++ {
			if d < 0 || d >= data.DaysInYear {
				continue
			}
			if c.DS.DailyBytes(line, d) > 0 {
				return false
			}
		}
		return true
	}

	res := &NotOnSiteResult{BudgetN: c.Cfg.BudgetN}
	for _, week := range c.Cfg.TestWeeks {
		top, err := pred.TopN(c.DS, week)
		if err != nil {
			return nil, err
		}
		day := data.SaturdayOf(week)
		for _, p := range top {
			if c.Ix.Within(p.Line, day, 28) {
				continue
			}
			res.Incorrect++
			if noTraffic(p.Line, day) {
				res.NotOnSite++
			}
		}
	}
	if res.Incorrect == 0 {
		return nil, fmt.Errorf("eval: no incorrect predictions to analyse")
	}
	res.Fraction = float64(res.NotOnSite) / float64(res.Incorrect)

	// Coincidence floor over a deterministic population sample at the
	// first test week.
	day := data.SaturdayOf(c.Cfg.TestWeeks[0])
	sampleEvery := c.DS.NumLines/2000 + 1
	pop, popAway := 0, 0
	for l := 0; l < c.DS.NumLines; l += sampleEvery {
		pop++
		if noTraffic(data.LineID(l), day) {
			popAway++
		}
	}
	res.PopulationFraction = float64(popAway) / float64(pop)
	return res, nil
}

// Render prints the analysis.
func (r *NotOnSiteResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "§5.2 — customers not on site\n\n")
	fmt.Fprintf(w, "incorrect predictions in top %d: %d\n", r.BudgetN, r.Incorrect)
	fmt.Fprintf(w, "with zero traffic ±1 week:      %d (%s)\n", r.NotOnSite, pct(r.Fraction))
	fmt.Fprintf(w, "population coincidence floor:   %s\n", pct(r.PopulationFraction))
	fmt.Fprintf(w, "\nThese are plausibly real customer-edge problems the subscriber was away for;\n")
	fmt.Fprintf(w, "the paper proposes prioritising predictions on lines with recent activity.\n")
	return nil
}

package eval

import (
	"fmt"
	"io"

	"nevermind/internal/data"
	"nevermind/internal/ml"
)

// Table5Result reproduces Table 5 and the §5.2 outage analysis: how many of
// the incorrect predictions are explained by the IVR scenario (the customer
// reported the problem during a DSLAM outage, so no ticket was issued), and
// the logistic-regression correlation between the number of top-N
// predictions at a DSLAM and future outage events there
// (logit(outage(d,t,T)) ~ #predictions(d,t)).
type Table5Result struct {
	BudgetN   int
	Incorrect int
	// ExplainedByOutage[t] is the fraction of incorrect predictions whose
	// DSLAM had an outage within (t+1) weeks of the prediction.
	ExplainedByOutage [4]float64
	// Coef and PValue are the logistic-regression slope per horizon, over
	// (DSLAM, week) observations.
	Coef, PValue [4]float64
	// BaseOutageRate[t] is the fraction of (DSLAM, week) observations with
	// an outage within (t+1) weeks — the coincidence floor.
	BaseOutageRate [4]float64
}

// RunTable5 ranks each test week and joins the incorrect predictions with
// the outage log.
func (c *Context) RunTable5() (*Table5Result, error) {
	pred, err := c.StandardPredictor()
	if err != nil {
		return nil, err
	}
	res := &Table5Result{BudgetN: c.Cfg.BudgetN}

	type weekTop struct {
		day           int
		predsPerDSLAM []float64
		incorrect     []data.LineID
	}
	var obs []weekTop
	for _, week := range c.Cfg.TestWeeks {
		top, err := pred.TopN(c.DS, week)
		if err != nil {
			return nil, err
		}
		wt := weekTop{day: data.SaturdayOf(week), predsPerDSLAM: make([]float64, c.DS.NumDSLAMs)}
		for _, p := range top {
			wt.predsPerDSLAM[c.DS.DSLAMOf[p.Line]]++
			if !c.Ix.Within(p.Line, wt.day, 28) {
				wt.incorrect = append(wt.incorrect, p.Line)
			}
		}
		res.Incorrect += len(wt.incorrect)
		obs = append(obs, wt)
	}
	if res.Incorrect == 0 {
		return nil, fmt.Errorf("eval: no incorrect predictions to analyse")
	}

	for t := 0; t < 4; t++ {
		horizon := 7 * (t + 1)
		// Fraction of incorrect predictions explained by an outage at their
		// DSLAM. The IVR may also have swallowed a call during an outage
		// shortly before the prediction, so the window opens a few days
		// early.
		n := 0
		for _, wt := range obs {
			for _, line := range wt.incorrect {
				if c.DS.OutageAt(int(c.DS.DSLAMOf[line]), wt.day-3, wt.day+horizon) {
					n++
				}
			}
		}
		res.ExplainedByOutage[t] = float64(n) / float64(res.Incorrect)

		// Logistic regression over (DSLAM, week) observations.
		var x [][]float64
		var y []bool
		pos := 0
		for _, wt := range obs {
			for d := 0; d < c.DS.NumDSLAMs; d++ {
				x = append(x, []float64{wt.predsPerDSLAM[d]})
				out := c.DS.OutageAt(d, wt.day-3, wt.day+horizon)
				y = append(y, out)
				if out {
					pos++
				}
			}
		}
		res.BaseOutageRate[t] = float64(pos) / float64(len(y))
		fit, err := ml.LogisticRegression(x, y, 50)
		if err != nil {
			return nil, err
		}
		res.Coef[t] = fit.Coef[1]
		res.PValue[t] = fit.PValue[1]
	}
	return res, nil
}

// Render prints the Table 5 rows.
func (r *Table5Result) Render(w io.Writer) error {
	fmt.Fprintf(w, "Table 5 — incorrect predictions explained by outages (top %d per week, %d incorrect)\n\n", r.BudgetN, r.Incorrect)
	header := []string{"", "1 week", "2 weeks", "3 weeks", "4 weeks"}
	rows := [][]string{
		{"% of incorrect predictions", pct(r.ExplainedByOutage[0]), pct(r.ExplainedByOutage[1]), pct(r.ExplainedByOutage[2]), pct(r.ExplainedByOutage[3])},
		{"(coincidence floor)", pct(r.BaseOutageRate[0]), pct(r.BaseOutageRate[1]), pct(r.BaseOutageRate[2]), pct(r.BaseOutageRate[3])},
		{"coef. for outage prediction", fmt.Sprintf("%.4f", r.Coef[0]), fmt.Sprintf("%.4f", r.Coef[1]), fmt.Sprintf("%.4f", r.Coef[2]), fmt.Sprintf("%.4f", r.Coef[3])},
		{"p-value", fmt.Sprintf("%.4f", r.PValue[0]), fmt.Sprintf("%.4f", r.PValue[1]), fmt.Sprintf("%.4f", r.PValue[2]), fmt.Sprintf("%.4f", r.PValue[3])},
	}
	return table(w, header, rows)
}

package eval

import (
	"fmt"
	"io"
	"time"

	"nevermind/internal/data"
)

// TrendResult reproduces the §3.3 observation: customer-edge ticket arrivals
// follow a clear weekly pattern, peaking on Monday and bottoming out over the
// weekend — which is why the Saturday line tests leave a quiet window to
// resolve predicted problems proactively.
type TrendResult struct {
	// ByWeekday counts customer-edge tickets per weekday, Sunday first.
	ByWeekday [7]int
	Total     int
}

// RunTrend tallies the year's ticket arrivals by weekday.
func (c *Context) RunTrend() (*TrendResult, error) {
	res := &TrendResult{}
	for _, t := range c.DS.Tickets {
		if t.Category != data.CatCustomerEdge {
			continue
		}
		res.ByWeekday[data.Weekday(t.Day)]++
		res.Total++
	}
	if res.Total == 0 {
		return nil, fmt.Errorf("eval: no customer-edge tickets")
	}
	return res, nil
}

// Peak returns the busiest weekday.
func (r *TrendResult) Peak() time.Weekday {
	best := 0
	for d := 1; d < 7; d++ {
		if r.ByWeekday[d] > r.ByWeekday[best] {
			best = d
		}
	}
	return time.Weekday(best)
}

// Render prints the weekday distribution.
func (r *TrendResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "§3.3 — weekly ticket arrival trend (%d customer-edge tickets)\n\n", r.Total)
	counts := make([]int, 7)
	var rows [][]string
	for d := 0; d < 7; d++ {
		counts[d] = r.ByWeekday[d]
		rows = append(rows, []string{
			time.Weekday(d).String(),
			fmt.Sprint(r.ByWeekday[d]),
			pct(float64(r.ByWeekday[d]) / float64(r.Total)),
		})
	}
	if err := table(w, []string{"weekday", "tickets", "share"}, rows); err != nil {
		return err
	}
	fmt.Fprintf(w, "\n%s  (peak: %s)\n", sparkline(counts), r.Peak())
	return nil
}

package eval

import (
	"fmt"
	"io"

	"nevermind/internal/core"
	"nevermind/internal/features"
	"nevermind/internal/ml"
)

// Fig6Result reproduces Fig. 6: ticket-prediction accuracy against the
// number of top predictions selected, for the five feature-selection methods
// of Table 4, each choosing 50 history features. The paper's claim: the
// top-N AP method wins below the budget N, while the AUC-based method
// catches up (and passes) far beyond it.
type Fig6Result struct {
	BudgetN int
	Ks      []int
	// Curves maps criterion name → precision at each K.
	Curves map[string][]float64
	Order  []string // render order
}

// RunFig6 trains one history-features-only predictor per criterion and
// evaluates precision at increasing selection sizes over the held-out test
// weeks (the budget applies per weekly ranking, so the pooled budget point
// is BudgetN × #weeks).
func (c *Context) RunFig6() (*Fig6Result, error) {
	budget := c.Cfg.BudgetN * len(c.Cfg.TestWeeks)
	ks := budgetSweep(budget, c.DS.NumLines*len(c.Cfg.TestWeeks))
	res := &Fig6Result{BudgetN: budget, Ks: ks, Curves: map[string][]float64{}}

	ex := features.ExamplesForWeeks(c.DS, c.Cfg.TestWeeks)
	y := features.Labels(c.Ix, ex, 28)

	// The criteria differ by ~1pp at this scale, inside single-run
	// selection noise, so each criterion's curve is averaged over several
	// pipeline seeds (the test set is shared, so the comparison is paired).
	const repeats = 3
	for _, crit := range ml.Criteria {
		acc := make([]float64, len(ks))
		for rep := 0; rep < repeats; rep++ {
			cfg := c.predictorConfig()
			cfg.Criterion = crit
			cfg.UseDerived = false
			// The paper keeps the top 50 of its feature space; the
			// selection pressure is what differentiates the criteria, so
			// keep the same keep-fraction against our 75 history features.
			cfg.SelectTopK = 12
			cfg.Seed = c.Cfg.Seed + uint64(rep)*1000
			cfg.CandidateGroups = []features.Group{features.GroupBasic, features.GroupDelta, features.GroupTS}
			pred, err := core.TrainPredictorCached(c.DS, c.trainWeeks(), cfg, c.Cache)
			if err != nil {
				return nil, fmt.Errorf("eval: fig6 criterion %v: %w", crit, err)
			}
			scores, err := pred.ScoreExamples(c.DS, ex)
			if err != nil {
				return nil, err
			}
			for i, p := range ml.PrecisionCurve(scores, y, ks) {
				acc[i] += p
			}
		}
		for i := range acc {
			acc[i] /= repeats
		}
		res.Curves[crit.String()] = acc
		res.Order = append(res.Order, crit.String())
	}
	return res, nil
}

// budgetSweep returns selection sizes bracketing the budget, clamped to the
// population.
func budgetSweep(budget, pop int) []int {
	fracs := []float64{0.25, 0.5, 1, 2, 5, 10}
	var ks []int
	for _, f := range fracs {
		k := int(f * float64(budget))
		if k >= 1 && k <= pop {
			ks = append(ks, k)
		}
	}
	return ks
}

// Render prints the accuracy-vs-k table.
func (r *Fig6Result) Render(w io.Writer) error {
	fmt.Fprintf(w, "Fig. 6 — accuracy vs number of predictions selected (budget N = %d)\n\n", r.BudgetN)
	header := []string{"selection method"}
	for _, k := range r.Ks {
		header = append(header, fmt.Sprintf("@%d", k))
	}
	var rows [][]string
	for _, name := range r.Order {
		row := []string{name}
		for _, p := range r.Curves[name] {
			row = append(row, pct(p))
		}
		rows = append(rows, row)
	}
	return table(w, header, rows)
}

// WinnerAtBudget returns the criterion with the highest precision at the
// budget point.
func (r *Fig6Result) WinnerAtBudget() string {
	bi := -1
	for i, k := range r.Ks {
		if k == r.BudgetN {
			bi = i
		}
	}
	if bi < 0 {
		return ""
	}
	best, bestP := "", -1.0
	for _, name := range r.Order {
		if p := r.Curves[name][bi]; p > bestP {
			best, bestP = name, p
		}
	}
	return best
}

package eval

import (
	"fmt"
	"io"

	"nevermind/internal/churn"
	"nevermind/internal/data"
)

// DeployResult is an extension beyond the paper's offline evaluation: the
// counterfactual operational deployment the paper was trialing at
// publication time ("we are currently focusing on trialing an operational
// deployment"). Each test week, the top-N predicted lines get a proactive
// dispatch two days after the Saturday ranking (inside the quiet weekend
// window of §3.3); a dispatch fixes whatever fault is actually active on the
// line, and every ticket that fault would have generated afterwards is
// counted as eliminated.
//
// The simulator's hidden ground truth makes the counterfactual exact — this
// is precisely the analysis an A/B trial would approximate.
type DeployResult struct {
	BudgetN int
	Weeks   []int
	// Dispatched is the number of proactive dispatches (budget × weeks,
	// minus duplicates already fixed).
	Dispatched int
	// UsefulDispatches found a live fault to fix.
	UsefulDispatches int
	// TicketsEliminated were headed to the call centre and never happened.
	TicketsEliminated int
	// TicketsInPeriod is the baseline ticket volume over the test weeks
	// plus the label window.
	TicketsInPeriod int
	// Reduction = eliminated / baseline.
	Reduction float64
	// ChurnersAverted and SavedUSD price the eliminated tickets with the
	// churn cost model (calls, truck rolls, retained revenue).
	ChurnersAverted float64
	SavedUSD        float64
}

// RunDeployment replays the test weeks with proactive fixes applied.
func (c *Context) RunDeployment() (*DeployResult, error) {
	pred, err := c.StandardPredictor()
	if err != nil {
		return nil, err
	}
	res := &DeployResult{BudgetN: c.Cfg.BudgetN, Weeks: c.Cfg.TestWeeks}

	// fixed marks fault instances (line, onset) already repaired
	// proactively in an earlier week.
	type faultKey struct {
		line  data.LineID
		onset int
	}
	fixed := map[faultKey]bool{}
	fixWindows := map[data.LineID][][2]int{}

	firstDay := data.SaturdayOf(c.Cfg.TestWeeks[0])
	lastDay := data.SaturdayOf(c.Cfg.TestWeeks[len(c.Cfg.TestWeeks)-1]) + 28

	for _, week := range c.Cfg.TestWeeks {
		top, err := pred.TopN(c.DS, week)
		if err != nil {
			return nil, err
		}
		day := data.SaturdayOf(week)
		fixDay := day + 2 // resolved by Monday, per the Fig. 8 read-off
		for _, p := range top {
			res.Dispatched++
			// Which fault is live on the line at the ranking Saturday?
			for fi := range c.Res.Truth[p.Line] {
				f := &c.Res.Truth[p.Line][fi]
				if f.Onset > day || day >= f.End {
					continue
				}
				key := faultKey{p.Line, f.Onset}
				if fixed[key] {
					break // already repaired in an earlier week
				}
				fixed[key] = true
				res.UsefulDispatches++
				// Record the window in which this fault's tickets are
				// averted: from the proactive fix to the fault's natural
				// end (+ a dispatch lag, since a reactively-reported
				// ticket can trail the fault's recorded end).
				fixWindows[p.Line] = append(fixWindows[p.Line], [2]int{fixDay, f.End + 7})
				break
			}
		}
	}

	// One pass over the ticket stream: count the period's tickets and mark
	// the eliminated ones.
	dispatchDay := make(map[int]int, len(c.DS.Notes))
	for _, n := range c.DS.Notes {
		dispatchDay[n.TicketID] = n.Day
	}
	model := churn.Default()
	priors := map[data.LineID]int{}
	for _, t := range c.DS.Tickets {
		if t.Category != data.CatCustomerEdge || t.Day < firstDay || t.Day > lastDay {
			continue
		}
		res.TicketsInPeriod++
		eliminated := false
		for _, w := range fixWindows[t.Line] {
			if t.Day >= w[0] && t.Day <= w[1] {
				eliminated = true
				break
			}
		}
		if !eliminated {
			continue
		}
		res.TicketsEliminated++
		// Price what never happened: the call, the truck roll if one was
		// headed out, and the averted churn hazard.
		res.SavedUSD += model.CallUSD
		latency := 0
		if dd, ok := dispatchDay[t.ID]; ok {
			res.SavedUSD += model.TruckRollUSD
			latency = dd - t.Day
		}
		p := model.TicketChurnProb(latency, priors[t.Line])
		res.ChurnersAverted += p
		res.SavedUSD += p * model.MonthlyRevenueUSD * model.HorizonMonths
		priors[t.Line]++
	}
	if res.TicketsInPeriod == 0 {
		return nil, fmt.Errorf("eval: no tickets in the deployment period")
	}
	res.Reduction = float64(res.TicketsEliminated) / float64(res.TicketsInPeriod)
	return res, nil
}

// Render prints the deployment summary.
func (r *DeployResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "Deployment counterfactual (extension) — proactive fixes over %d weeks\n\n", len(r.Weeks))
	fmt.Fprintf(w, "proactive dispatches:        %d (budget %d/week)\n", r.Dispatched, r.BudgetN)
	fmt.Fprintf(w, "found a live fault:          %d (%s)\n", r.UsefulDispatches, pct(float64(r.UsefulDispatches)/float64(r.Dispatched)))
	fmt.Fprintf(w, "customer tickets eliminated: %d of %d in the period (%s)\n",
		r.TicketsEliminated, r.TicketsInPeriod, pct(r.Reduction))
	fmt.Fprintf(w, "expected churners averted:   %.1f\n", r.ChurnersAverted)
	fmt.Fprintf(w, "support + churn cost saved:  $%.0f\n", r.SavedUSD)
	fmt.Fprintf(w, "\nEvery eliminated ticket is a call, an interview and often a truck roll that\n")
	fmt.Fprintf(w, "never happened — the paper's motivating arithmetic for proactive resolution.\n")
	return nil
}

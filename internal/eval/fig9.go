package eval

import (
	"fmt"
	"io"

	"nevermind/internal/core"
	"nevermind/internal/data"
	"nevermind/internal/faults"
)

// Fig9Result reproduces Fig. 9: the illustration of the combined inference
// model for the inside-wiring problem at the home network — the bottom-layer
// feature partitions feeding the two intermediate classifiers (f_IW and
// f_HN) whose scores combine into P(IW_adj | x) through Eq. 2.
type Fig9Result struct {
	Disposition string
	Text        string
}

// RunFig9 trains the locator (on the standard §6.3 split) and renders the
// combined model of the paper's example disposition.
func (c *Context) RunFig9() (*Fig9Result, error) {
	splitDay := data.DayOfDate(9, 19)
	train := core.CasesFromNotes(c.DS, data.FirstSaturday, splitDay-1)
	cfg := core.DefaultLocatorConfig(c.Cfg.Seed)
	cfg.Rounds = c.Cfg.LocRounds
	cfg.Workers = c.Cfg.Workers
	loc, err := core.TrainLocatorCached(c.DS, train, cfg, c.Cache)
	if err != nil {
		return nil, err
	}

	// The paper illustrates the inside-wiring (IW) problem at HN; our
	// catalog's closest disposition is "inside wire wet".
	var target faults.DispositionID = faults.None
	for _, d := range loc.Dispositions {
		if faults.Catalog[d].Name == "inside wire wet" {
			target = d
			break
		}
	}
	if target == faults.None {
		// Fall back to any HN disposition the locator kept.
		for _, d := range loc.Dispositions {
			if faults.Catalog[d].Loc == faults.HN {
				target = d
				break
			}
		}
	}
	if target == faults.None {
		return nil, fmt.Errorf("eval: locator kept no HN disposition to illustrate")
	}
	text, err := loc.ExplainCombined(target, 6)
	if err != nil {
		return nil, err
	}
	return &Fig9Result{Disposition: faults.Catalog[target].Name, Text: text}, nil
}

// Render prints the model illustration.
func (r *Fig9Result) Render(w io.Writer) error {
	fmt.Fprintf(w, "Fig. 9 — the combined inference model for %q\n\n", r.Disposition)
	_, err := io.WriteString(w, r.Text)
	return err
}

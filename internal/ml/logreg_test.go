package ml

import (
	"math"
	"testing"

	"nevermind/internal/rng"
)

func TestMatrixSolveKnownSystem(t *testing.T) {
	// A = [[4,2],[2,3]], b = [10, 9] → x = [1.5, 2]
	a := NewMatrix(2, 2)
	a.Set(0, 0, 4)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 3)
	x, err := a.CholeskySolve([]float64{10, 9})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1.5) > 1e-10 || math.Abs(x[1]-2) > 1e-10 {
		t.Fatalf("solve = %v", x)
	}
}

func TestMatrixInverse(t *testing.T) {
	a := NewMatrix(3, 3)
	vals := [][]float64{{5, 1, 0}, {1, 4, 1}, {0, 1, 3}}
	for i := range vals {
		for j := range vals[i] {
			a.Set(i, j, vals[i][j])
		}
	}
	inv, err := a.CholeskyInverse()
	if err != nil {
		t.Fatal(err)
	}
	// A · A⁻¹ = I.
	for i := 0; i < 3; i++ {
		col := make([]float64, 3)
		for j := 0; j < 3; j++ {
			col[j] = inv.At(j, i)
		}
		prod := a.MulVec(col)
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(prod[j]-want) > 1e-10 {
				t.Fatalf("A·A⁻¹ [%d,%d] = %v", j, i, prod[j])
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 5)
	a.Set(1, 0, 5)
	a.Set(1, 1, 1) // eigenvalues 6, -4
	if _, err := a.CholeskySolve([]float64{1, 1}); err == nil {
		t.Fatal("indefinite matrix accepted")
	}
}

func TestLogisticRecoversCoefficients(t *testing.T) {
	// Generate y ~ sigmoid(-1 + 2·x).
	r := rng.New(42)
	n := 20000
	x := make([][]float64, n)
	y := make([]bool, n)
	for i := 0; i < n; i++ {
		xi := r.Normal(0, 1)
		x[i] = []float64{xi}
		y[i] = r.Bool(sigmoid(-1 + 2*xi))
	}
	fit, err := LogisticRegression(x, y, 50)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Coef[0]+1) > 0.1 {
		t.Fatalf("intercept %v, want ~-1", fit.Coef[0])
	}
	if math.Abs(fit.Coef[1]-2) > 0.15 {
		t.Fatalf("slope %v, want ~2", fit.Coef[1])
	}
	// A strong effect over 20k samples must be overwhelmingly significant.
	if fit.PValue[1] > 1e-6 {
		t.Fatalf("p-value %v for a real effect", fit.PValue[1])
	}
}

func TestLogisticNullEffectNotSignificant(t *testing.T) {
	// x carries no signal: p-values should be uniform-ish; over many runs
	// a single fit should rarely be tiny. Use a fixed seed for stability.
	r := rng.New(7)
	n := 4000
	x := make([][]float64, n)
	y := make([]bool, n)
	for i := 0; i < n; i++ {
		x[i] = []float64{r.Normal(0, 1)}
		y[i] = r.Bool(0.3)
	}
	fit, err := LogisticRegression(x, y, 50)
	if err != nil {
		t.Fatal(err)
	}
	if fit.PValue[1] < 0.001 {
		t.Fatalf("null effect got p=%v", fit.PValue[1])
	}
	if math.Abs(fit.Coef[1]) > 0.2 {
		t.Fatalf("null slope %v", fit.Coef[1])
	}
}

func TestLogisticPredictConsistent(t *testing.T) {
	r := rng.New(9)
	n := 3000
	x := make([][]float64, n)
	y := make([]bool, n)
	for i := 0; i < n; i++ {
		a, b := r.Normal(0, 1), r.Normal(0, 1)
		x[i] = []float64{a, b}
		y[i] = r.Bool(sigmoid(0.5 + a - 2*b))
	}
	fit, err := LogisticRegression(x, y, 50)
	if err != nil {
		t.Fatal(err)
	}
	p := fit.Predict([]float64{0, 0})
	want := sigmoid(fit.Coef[0])
	if math.Abs(p-want) > 1e-12 {
		t.Fatalf("Predict(0) = %v, want %v", p, want)
	}
	// Mean predicted probability ≈ base rate (logistic regression is
	// calibrated in-sample).
	var mean, base float64
	for i := 0; i < n; i++ {
		mean += fit.Predict(x[i])
		if y[i] {
			base++
		}
	}
	if math.Abs(mean/float64(n)-base/float64(n)) > 0.01 {
		t.Fatalf("mean prediction %.3f vs base rate %.3f", mean/float64(n), base/float64(n))
	}
}

func TestLogisticRejectsBadInput(t *testing.T) {
	if _, err := LogisticRegression(nil, nil, 10); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := LogisticRegression([][]float64{{1}, {2, 3}}, []bool{true, false}, 10); err == nil {
		t.Fatal("ragged design accepted")
	}
	if _, err := LogisticRegression([][]float64{{1}}, []bool{true, false}, 10); err == nil {
		t.Fatal("mismatched labels accepted")
	}
}

func TestNormalSF(t *testing.T) {
	// Known values of the standard normal survival function.
	cases := map[float64]float64{0: 0.5, 1.6449: 0.05, 1.96: 0.025, 2.5758: 0.005}
	for z, want := range cases {
		if got := normalSF(z); math.Abs(got-want) > 5e-4 {
			t.Fatalf("SF(%v) = %v, want %v", z, got, want)
		}
	}
}

func BenchmarkLogisticRegression(b *testing.B) {
	r := rng.New(60)
	n := 5000
	x := make([][]float64, n)
	y := make([]bool, n)
	for i := 0; i < n; i++ {
		a, c := r.Normal(0, 1), r.Normal(0, 1)
		x[i] = []float64{a, c}
		y[i] = r.Bool(sigmoid(1 + a - c))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LogisticRegression(x, y, 50); err != nil {
			b.Fatal(err)
		}
	}
}

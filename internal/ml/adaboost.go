package ml

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"nevermind/internal/parallel"
)

// Stump is one weak learner: a one-level decision tree on a quantized
// feature. An example with bin(feature) <= Cut scores SLow, otherwise SHigh
// — the S−/S+ confidence-rated outputs of the paper's Fig. 5. Feature -1
// marks a constant stump (SLow == SHigh, no feature consulted), emitted for
// unsplittable tree partitions.
type Stump struct {
	Feature   int
	Cut       uint8
	SLow      float64
	SHigh     float64
	Threshold float32 // original-space cut value, for interpretability
}

// BStump is a boosted ensemble of decision stumps — the paper's classifier,
// after the BoosTexter implementation of Schapire & Singer's confidence-rated
// AdaBoost. The model stays linear in per-feature indicator functions, which
// the paper argues resists the mislabelled-negative noise of unreported
// problems.
type BStump struct {
	Stumps []Stump
	Names  []string // feature names, for Explain
	Calib  Calibration

	// compiled caches the per-bin table fold of this ensemble (see
	// compile.go). Unexported, so gob persistence skips it and loaded
	// models re-fold lazily on first use.
	compiled atomic.Pointer[CompiledScorer]
}

// TrainOptions tune boosting.
type TrainOptions struct {
	Rounds int
	// Smooth is the epsilon in the confidence-rated score
	// 0.5·ln((W+ + ε)/(W− + ε)); 0 means 1/(2n), the Schapire-Singer
	// default.
	Smooth float64
	// Features restricts training to the given feature indices; nil means
	// all features. Single-element slices give the per-feature predictors
	// of the top-N AP selection method.
	Features []int
	// Workers sizes the worker pool for the per-round stump search:
	// 0 = runtime.GOMAXPROCS, 1 = the exact sequential path. The trained
	// model is bit-identical at any setting (see DESIGN.md, "Parallelism
	// model").
	Workers int
	// TrimQuantile enables Friedman-style weight trimming: each round the
	// weak-learner search skips the lowest-weight examples whose cumulative
	// weight mass stays strictly below this quantile of the total, while
	// reweighting still sees every example. Must be in [0, 1); 0 (the
	// default) disables trimming, leaving the exact search untouched.
	TrimQuantile float64
}

// trimRows returns the ascending row indices kept for a round's weak-learner
// search under Friedman-style weight trimming: rows are ranked by ascending
// weight (index breaks ties, for determinism) and the largest low-weight
// prefix whose cumulative mass stays strictly below quantile·total is
// dropped. A nil result means every row is kept. buf is reused across rounds.
func trimRows(w []float64, quantile float64, buf []int) ([]int, []int) {
	if quantile <= 0 {
		return nil, buf
	}
	idx := buf[:0]
	total := 0.0
	for i, wi := range w {
		idx = append(idx, i)
		total += wi
	}
	sort.Slice(idx, func(a, b int) bool {
		if w[idx[a]] != w[idx[b]] {
			return w[idx[a]] < w[idx[b]]
		}
		return idx[a] < idx[b]
	})
	budget := quantile * total
	cum, drop := 0.0, 0
	for _, i := range idx {
		if cum+w[i] >= budget {
			break
		}
		cum += w[i]
		drop++
	}
	kept := idx[drop:]
	sort.Ints(kept)
	return kept, idx
}

// TrainBStump boosts decision stumps on the quantized design matrix.
// Labels are binary; weights start uniform.
func TrainBStump(bm *BinnedMatrix, q *Quantizer, y []bool, opt TrainOptions) (*BStump, error) {
	if bm.N == 0 || len(bm.Bins) == 0 {
		return nil, fmt.Errorf("ml: empty training matrix")
	}
	if len(y) != bm.N {
		return nil, fmt.Errorf("ml: %d labels for %d examples", len(y), bm.N)
	}
	if opt.Rounds <= 0 {
		return nil, fmt.Errorf("ml: Rounds must be positive")
	}
	features := opt.Features
	if features == nil {
		features = make([]int, len(bm.Bins))
		for i := range features {
			features[i] = i
		}
	}
	for _, f := range features {
		if f < 0 || f >= len(bm.Bins) {
			return nil, fmt.Errorf("ml: feature index %d out of range", f)
		}
	}
	if opt.TrimQuantile < 0 || opt.TrimQuantile >= 1 {
		return nil, fmt.Errorf("ml: TrimQuantile %g outside [0, 1)", opt.TrimQuantile)
	}
	eps := opt.Smooth
	if eps == 0 {
		eps = 1 / (2 * float64(bm.N))
	}

	n := bm.N
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / float64(n)
	}

	model := &BStump{Names: bm.Names}
	var trimBuf []int
	for t := 0; t < opt.Rounds; t++ {
		var rows []int
		rows, trimBuf = trimRows(w, opt.TrimQuantile, trimBuf)
		best, ok := bestStumpRows(bm, q, y, w, rows, features, eps, opt.Workers)
		if !ok {
			break // no splittable feature
		}
		model.Stumps = append(model.Stumps, best)

		// Reweight: w_i ← w_i · exp(−y_i · h_t(x_i)), renormalised.
		bins := bm.Bins[best.Feature]
		var total float64
		for i := range w {
			s := best.SHigh
			if bins[i] <= best.Cut {
				s = best.SLow
			}
			if y[i] {
				w[i] *= math.Exp(-s)
			} else {
				w[i] *= math.Exp(s)
			}
			total += w[i]
		}
		if total <= 0 || math.IsNaN(total) || math.IsInf(total, 0) {
			return nil, fmt.Errorf("ml: weight normalisation degenerated at round %d", t)
		}
		for i := range w {
			w[i] /= total
		}
	}
	if len(model.Stumps) == 0 {
		return nil, fmt.Errorf("ml: no stump could be trained (constant features?)")
	}
	return model, nil
}

// Score returns the raw ensemble score f(x) = Σ_t g_t(x) for example i.
func (m *BStump) Score(bm *BinnedMatrix, i int) float64 {
	s := 0.0
	for _, st := range m.Stumps {
		if st.Feature < 0 || bm.Bins[st.Feature][i] <= st.Cut {
			s += st.SLow
		} else {
			s += st.SHigh
		}
	}
	return s
}

// ScoreAll scores every example with the default worker count.
func (m *BStump) ScoreAll(bm *BinnedMatrix) []float64 {
	return m.ScoreAllWorkers(bm, 0)
}

// ScoreAllWorkers scores every example on the given number of workers
// (0 = GOMAXPROCS, 1 = sequential), stump-major within each example chunk
// for cache efficiency. Each example's score accumulates over stumps in
// ensemble order at any worker count, so the output is bit-identical to the
// sequential pass.
func (m *BStump) ScoreAllWorkers(bm *BinnedMatrix, workers int) []float64 {
	out := make([]float64, bm.N)
	parallel.For(bm.N, workers, func(_, start, end int) {
		for _, st := range m.Stumps {
			if st.Feature < 0 {
				for i := start; i < end; i++ {
					out[i] += st.SLow
				}
				continue
			}
			bins := bm.Bins[st.Feature]
			for i := start; i < end; i++ {
				if bins[i] <= st.Cut {
					out[i] += st.SLow
				} else {
					out[i] += st.SHigh
				}
			}
		}
	})
	return out
}

// Probability converts a raw score to P(y=1|x) via the fitted logistic
// calibration (the paper's "logistic calibration" of the BStump output).
// Calibrate must have been called.
func (m *BStump) Probability(score float64) float64 {
	return m.Calib.Apply(score)
}

// FeatureImportance returns, per feature, the total confidence swing
// |SHigh − SLow| accumulated across the ensemble's stumps — how much the
// model's output can move on account of that feature. Useful for the
// Fig. 5/Fig. 9 style model walkthroughs.
func (m *BStump) FeatureImportance() map[int]float64 {
	imp := map[int]float64{}
	for _, st := range m.Stumps {
		if st.Feature < 0 {
			continue // constant stump: no feature moves the output
		}
		d := st.SHigh - st.SLow
		if d < 0 {
			d = -d
		}
		imp[st.Feature] += d
	}
	return imp
}

// TopFeatures returns the k most important features as (name, weight)
// pairs, best first.
func (m *BStump) TopFeatures(k int) []struct {
	Name   string
	Weight float64
} {
	imp := m.FeatureImportance()
	type fw struct {
		f int
		w float64
	}
	var xs []fw
	for f, w := range imp {
		xs = append(xs, fw{f, w})
	}
	sort.Slice(xs, func(a, b int) bool {
		if xs[a].w != xs[b].w {
			return xs[a].w > xs[b].w
		}
		return xs[a].f < xs[b].f
	})
	if k > len(xs) {
		k = len(xs)
	}
	out := make([]struct {
		Name   string
		Weight float64
	}, k)
	for i := 0; i < k; i++ {
		name := fmt.Sprintf("f%d", xs[i].f)
		if xs[i].f < len(m.Names) && m.Names[xs[i].f] != "" {
			name = m.Names[xs[i].f]
		}
		out[i].Name = name
		out[i].Weight = xs[i].w
	}
	return out
}

// Explain returns a human-readable description of stump t, in the spirit of
// the paper's Fig. 5 walkthrough.
func (m *BStump) Explain(t int) string {
	st := m.Stumps[t]
	if st.Feature < 0 {
		return fmt.Sprintf("constant %+.3f", st.SLow)
	}
	name := fmt.Sprintf("f%d", st.Feature)
	if st.Feature < len(m.Names) && m.Names[st.Feature] != "" {
		name = m.Names[st.Feature]
	}
	return fmt.Sprintf("if %s <= %.4g then %+.3f else %+.3f", name, st.Threshold, st.SLow, st.SHigh)
}

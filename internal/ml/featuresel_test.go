package ml

import (
	"math"
	"testing"

	"nevermind/internal/rng"
)

// selProblem builds a feature-selection scenario with three kinds of
// features: "tail" is precise only in its extreme tail (high AP@N, mediocre
// AUC), "broad" is mildly informative everywhere (good AUC), and the rest
// are noise.
func selProblem(n int, seed uint64) ([]Column, []bool) {
	r := rng.New(seed)
	tail := make([]float32, n)
	broad := make([]float32, n)
	noise1 := make([]float32, n)
	noise2 := make([]float32, n)
	y := make([]bool, n)
	for i := 0; i < n; i++ {
		tv := r.Normal(0, 1)
		bv := r.Normal(0, 1)
		tail[i] = float32(tv)
		broad[i] = float32(bv)
		noise1[i] = float32(r.Normal(0, 1))
		noise2[i] = float32(r.Float64())
		p := 0.02 + 0.12*sigmoid(2*bv) // broad monotone lift: good AUC
		if tv > 2.2 {                  // rare but near-certain: good AP@N
			p = 0.9
		}
		y[i] = r.Bool(p)
	}
	return []Column{
		{Name: "tail", Values: tail},
		{Name: "broad", Values: broad},
		{Name: "noise1", Values: noise1},
		{Name: "noise2", Values: noise2},
	}, y
}

func TestFeatureScoresRankSignalAboveNoise(t *testing.T) {
	cols, y := selProblem(20000, 1)
	for _, crit := range []Criterion{CritTopNAP, CritAUC, CritAvgPrec, CritGainRatio} {
		scores, err := FeatureScores(cols, y, crit, SelectOptions{N: 600, Seed: 5})
		if err != nil {
			t.Fatalf("%v: %v", crit, err)
		}
		if len(scores) != 4 {
			t.Fatalf("%v returned %d scores", crit, len(scores))
		}
		best := RankDesc(scores)[0]
		if best != 0 && best != 1 {
			t.Fatalf("%v ranked %q first (scores %v)", crit, cols[best].Name, scores)
		}
	}
}

// The heart of §4.3: a feature that is precise in the budget-sized tail must
// beat a broadly-informative feature under top-N AP, while AUC prefers the
// broad one. This is the mechanism behind Fig. 6.
func TestTopNAPPrefersTailPrecision(t *testing.T) {
	cols, y := selProblem(30000, 2)
	apScores, err := FeatureScores(cols, y, CritTopNAP, SelectOptions{N: 450, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if apScores[0] <= apScores[1] {
		t.Fatalf("top-N AP: tail %v <= broad %v", apScores[0], apScores[1])
	}
	aucScores, err := FeatureScores(cols, y, CritAUC, SelectOptions{N: 450, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if aucScores[1] <= aucScores[0] {
		t.Fatalf("AUC: broad %v <= tail %v; broad feature should win on AUC", aucScores[1], aucScores[0])
	}
}

func TestSelectTopK(t *testing.T) {
	cols, y := selProblem(10000, 3)
	idx, err := SelectTopK(cols, y, CritTopNAP, 2, SelectOptions{N: 300, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 2 {
		t.Fatalf("selected %d features", len(idx))
	}
	if idx[0] == 2 || idx[0] == 3 {
		t.Fatalf("noise feature selected first: %v", idx)
	}
	// k larger than the feature count clamps.
	idx, err = SelectTopK(cols, y, CritGainRatio, 100, SelectOptions{N: 300, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 4 {
		t.Fatalf("clamped selection returned %d", len(idx))
	}
}

func TestSelectAboveThreshold(t *testing.T) {
	scores := []float64{0.5, 0.1, 0.3, 0.05}
	got := SelectAboveThreshold(scores, 0.2)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("threshold selection = %v", got)
	}
	if out := SelectAboveThreshold(scores, 0.9); len(out) != 0 {
		t.Fatalf("nothing above 0.9, got %v", out)
	}
}

func TestFeatureScoresSubsampling(t *testing.T) {
	cols, y := selProblem(20000, 4)
	full, err := FeatureScores(cols, y, CritTopNAP, SelectOptions{N: 400, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := FeatureScores(cols, y, CritTopNAP, SelectOptions{N: 400, Seed: 5, MaxExamples: 8000})
	if err != nil {
		t.Fatal(err)
	}
	// Subsampled scores should still rank a signal feature first.
	if b := RankDesc(sub)[0]; b != 0 && b != 1 {
		t.Fatalf("subsampled selection ranked %q first", cols[b].Name)
	}
	_ = full
}

func TestFeatureScoresErrors(t *testing.T) {
	if _, err := FeatureScores(nil, nil, CritAUC, SelectOptions{}); err == nil {
		t.Fatal("empty columns accepted")
	}
	cols, _ := selProblem(100, 5)
	if _, err := FeatureScores(cols, nil, CritAUC, SelectOptions{}); err == nil {
		t.Fatal("empty labels accepted")
	}
	// Single-class labels cannot be split-scored.
	y := make([]bool, 100)
	if _, err := FeatureScores(cols, y, CritTopNAP, SelectOptions{N: 10}); err == nil {
		t.Fatal("single-class labels accepted")
	}
}

func TestPCAScoresFavourCorrelatedBlock(t *testing.T) {
	// Three copies of one latent factor plus one independent noise feature:
	// PCA loadings must rank the correlated block above the noise.
	r := rng.New(11)
	n := 4000
	f := make([][]float32, 4)
	for j := range f {
		f[j] = make([]float32, n)
	}
	for i := 0; i < n; i++ {
		z := r.Normal(0, 1)
		f[0][i] = float32(z + r.Normal(0, 0.3))
		f[1][i] = float32(z + r.Normal(0, 0.3))
		f[2][i] = float32(-z + r.Normal(0, 0.3))
		f[3][i] = float32(r.Normal(0, 1))
	}
	cols := []Column{
		{Name: "a", Values: f[0]}, {Name: "b", Values: f[1]},
		{Name: "c", Values: f[2]}, {Name: "indep", Values: f[3]},
	}
	y := make([]bool, n)
	for i := range y {
		y[i] = i%7 == 0
	}
	scores, err := FeatureScores(cols, y, CritPCA, SelectOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	worst := RankDesc(scores)[3]
	if worst != 3 {
		t.Fatalf("PCA ranked %q last, want the independent feature (scores %v)", cols[worst].Name, scores)
	}
}

func TestFitPCAOrthonormalComponents(t *testing.T) {
	cols, _ := selProblem(2000, 12)
	pca, err := FitPCA(cols, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(pca.Components) == 0 {
		t.Fatal("no components")
	}
	for i, u := range pca.Components {
		if math.Abs(norm(u)-1) > 1e-6 {
			t.Fatalf("component %d not unit length", i)
		}
		for j := i + 1; j < len(pca.Components); j++ {
			dot := 0.0
			for k := range u {
				dot += u[k] * pca.Components[j][k]
			}
			if math.Abs(dot) > 1e-4 {
				t.Fatalf("components %d,%d not orthogonal: %v", i, j, dot)
			}
		}
	}
	// Eigenvalues descend.
	for i := 1; i < len(pca.Eigenvalue); i++ {
		if pca.Eigenvalue[i] > pca.Eigenvalue[i-1]+1e-9 {
			t.Fatalf("eigenvalues not descending: %v", pca.Eigenvalue)
		}
	}
}

func TestFitPCAErrors(t *testing.T) {
	if _, err := FitPCA(nil, 2, 1); err == nil {
		t.Fatal("empty PCA accepted")
	}
	if _, err := FitPCA([]Column{{Name: "x", Values: []float32{1}}}, 1, 1); err == nil {
		t.Fatal("single-example PCA accepted")
	}
}

func TestGainRatioKnownCases(t *testing.T) {
	// Perfectly informative binary feature.
	col := Column{Name: "f", Categorical: true, Values: []float32{0, 0, 1, 1}}
	y := []bool{false, false, true, true}
	if gr := GainRatio(col, y, 4); math.Abs(gr-1) > 1e-9 {
		t.Fatalf("perfect feature gain ratio %v, want 1", gr)
	}
	// Uninformative feature.
	y2 := []bool{true, false, true, false}
	if gr := GainRatio(col, y2, 4); gr > 1e-9 {
		t.Fatalf("uninformative gain ratio %v, want 0", gr)
	}
}

func TestGainRatioNonNegative(t *testing.T) {
	cols, y := selProblem(3000, 13)
	for _, c := range cols {
		if gr := GainRatio(c, y, 16); gr < 0 || math.IsNaN(gr) {
			t.Fatalf("gain ratio of %q = %v", c.Name, gr)
		}
	}
}

func TestCriterionStrings(t *testing.T) {
	for _, c := range Criteria {
		if c.String() == "" {
			t.Fatal("criterion without a name")
		}
	}
	if Criterion(99).String() != "Criterion(99)" {
		t.Fatal("unknown criterion string")
	}
}

// TestFeatureScoresSkipsBadColumns mixes a constant column and a NaN-bearing
// column into real features: the pass must not abort, the bad columns must be
// counted as skips with score 0, and the genuine features must still score.
func TestFeatureScoresSkipsBadColumns(t *testing.T) {
	cols, y := selProblem(8000, 3)
	n := len(y)
	constant := make([]float32, n)
	for i := range constant {
		constant[i] = 7.25
	}
	nans := make([]float32, n)
	for i := range nans {
		nans[i] = float32(math.NaN())
	}
	mixed := append([]Column{
		{Name: "allsame", Values: constant},
		{Name: "allnan", Values: nans},
	}, cols...)

	scores, skips, err := FeatureScoresDetail(mixed, y, CritTopNAP, SelectOptions{N: 200, Seed: 11})
	if err != nil {
		t.Fatalf("bad columns aborted the pass: %v", err)
	}
	if len(scores) != len(mixed) {
		t.Fatalf("got %d scores for %d columns", len(scores), len(mixed))
	}
	bySkip := map[int]SkippedColumn{}
	for _, s := range skips {
		bySkip[s.Index] = s
		if s.Stage != "train" && s.Stage != "transform" {
			t.Fatalf("skip %v has unknown stage %q", s, s.Stage)
		}
		if s.Err == nil {
			t.Fatalf("skip %v carries no error", s)
		}
		if scores[s.Index] != 0 {
			t.Fatalf("skipped column %d scored %v, want 0", s.Index, scores[s.Index])
		}
	}
	sk, ok := bySkip[0]
	if !ok {
		t.Fatalf("constant column not skipped (skips: %v)", skips)
	}
	if sk.Name != "allsame" {
		t.Fatalf("skip names %q, want allsame", sk.Name)
	}
	if _, ok := bySkip[1]; !ok && scores[1] != 0 {
		t.Fatalf("NaN column neither skipped nor zeroed: score %v", scores[1])
	}
	// Real features must be untouched: "tail" (index 2) still carries signal.
	if scores[2] <= 0 {
		t.Fatalf("tail feature scored %v with bad columns present", scores[2])
	}
	for i := 4; i < len(mixed); i++ { // noise columns: scored, not skipped
		if _, ok := bySkip[i]; ok {
			t.Fatalf("healthy column %d (%s) was skipped", i, mixed[i].Name)
		}
	}

	// The plain API returns the same zeros without the detail.
	plain, err := FeatureScores(mixed, y, CritTopNAP, SelectOptions{N: 200, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if plain[i] != scores[i] {
			t.Fatalf("FeatureScores[%d] = %v, Detail %v", i, plain[i], scores[i])
		}
	}
}

package ml

import (
	"testing"

	"nevermind/internal/rng"
)

// TestQuantizerBins256 pins the uint8 boundary: at the maximum alphabet a
// feature may carry 255 cuts (bins 0..255), every bin must survive the uint8
// round-trip, and each example must still sit between its bin's boundaries.
func TestQuantizerBins256(t *testing.T) {
	const n = 4096
	r := rng.New(77)
	vals := make([]float32, n)
	for i := range vals {
		vals[i] = float32(r.Float64()) * 1000 // thousands of distinct values
	}
	cols := []Column{{Name: "dense", Values: vals}}

	q, err := FitQuantizer(cols, 256)
	if err != nil {
		t.Fatal(err)
	}
	nb := q.NumBins(0)
	if nb < 2 || nb > 256 {
		t.Fatalf("NumBins = %d, want within [2,256]", nb)
	}
	if len(q.Cuts[0]) != nb-1 {
		t.Fatalf("cuts %d inconsistent with NumBins %d", len(q.Cuts[0]), nb)
	}

	bm, err := q.Transform(cols)
	if err != nil {
		t.Fatal(err)
	}
	cuts := q.Cuts[0]
	maxBin := 0
	for i, b := range bm.Bins[0] {
		if int(b) >= nb {
			t.Fatalf("example %d binned to %d, alphabet has %d bins", i, b, nb)
		}
		// bin = number of cuts <= v: the value lies in (cuts[bin-1], cuts[bin]].
		if b > 0 && vals[i] < cuts[b-1] {
			t.Fatalf("example %d (v=%v) below lower boundary %v of bin %d", i, vals[i], cuts[b-1], b)
		}
		if int(b) < len(cuts) && vals[i] >= cuts[b] {
			t.Fatalf("example %d (v=%v) at or above upper boundary %v of bin %d", i, vals[i], cuts[b], b)
		}
		if int(b) > maxBin {
			maxBin = int(b)
		}
	}
	if maxBin != nb-1 {
		t.Fatalf("top bin %d never used (max seen %d): uint8 overflow would shift it", nb-1, maxBin)
	}

	// CutValue must answer at both ends of the alphabet without stepping
	// outside the cuts slice.
	if got := q.CutValue(0, 0); got != cuts[0] {
		t.Fatalf("CutValue(0,0) = %v, want %v", got, cuts[0])
	}
	if got := q.CutValue(0, nb-1); got != cuts[len(cuts)-1] {
		t.Fatalf("CutValue(0,%d) = %v, want last cut %v", nb-1, got, cuts[len(cuts)-1])
	}

	if _, err := FitQuantizer(cols, 257); err == nil {
		t.Fatal("FitQuantizer accepted 257 bins: uint8 cannot index them")
	}
}

// TestQuantizerBins256IntegerLattice forces exactly 256 distinct values so
// every one of the 255 cuts survives dedup and bin 255 is reachable.
func TestQuantizerBins256IntegerLattice(t *testing.T) {
	n := 256 * 4
	vals := make([]float32, n)
	for i := range vals {
		vals[i] = float32(i % 256)
	}
	cols := []Column{{Name: "lattice", Values: vals}}
	q, err := FitQuantizer(cols, 256)
	if err != nil {
		t.Fatal(err)
	}
	if nb := q.NumBins(0); nb != 256 {
		t.Fatalf("NumBins = %d, want 256", nb)
	}
	bm, err := q.Transform(cols)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint8]bool{}
	for i, b := range bm.Bins[0] {
		seen[b] = true
		// 256 lattice values against 256 bins: value k lands in bin k.
		if int(b) != int(vals[i]) {
			t.Fatalf("value %v binned to %d", vals[i], b)
		}
	}
	if !seen[255] || !seen[0] {
		t.Fatalf("alphabet endpoints unused: bin0=%v bin255=%v", seen[0], seen[255])
	}
}

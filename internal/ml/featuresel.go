package ml

import (
	"fmt"

	"nevermind/internal/parallel"
	"nevermind/internal/rng"
)

// Criterion is a feature-selection criterion: the paper's novel top-N
// average precision method (§4.3) plus the four baselines of Table 4.
type Criterion int

const (
	// CritTopNAP ranks features by the top-N average precision of a
	// single-feature predictor on a held-out split — the paper's method.
	CritTopNAP Criterion = iota
	// CritAUC ranks by area under the ROC curve of the same per-feature
	// predictor.
	CritAUC
	// CritAvgPrec ranks by classical average precision on all samples.
	CritAvgPrec
	// CritPCA ranks by eigenvalue-weighted loadings on the top principal
	// components.
	CritPCA
	// CritGainRatio ranks by the entropy gain ratio of the discretized
	// feature.
	CritGainRatio
)

func (c Criterion) String() string {
	switch c {
	case CritTopNAP:
		return "top-N AP"
	case CritAUC:
		return "AUC"
	case CritAvgPrec:
		return "average precision"
	case CritPCA:
		return "PCA"
	case CritGainRatio:
		return "gain ratio"
	default:
		return fmt.Sprintf("Criterion(%d)", int(c))
	}
}

// Criteria lists all implemented criteria in presentation order.
var Criteria = []Criterion{CritAUC, CritAvgPrec, CritTopNAP, CritPCA, CritGainRatio}

// SelectOptions tunes feature scoring.
type SelectOptions struct {
	// N is the operational budget for top-N AP, expressed against the full
	// example population passed in (it is rescaled internally for splits
	// and subsampling).
	N int
	// Rounds is the boosting rounds for the per-feature predictors
	// (default 12: a handful of stumps on one feature is already a
	// piecewise-constant scorer).
	Rounds int
	// MaxExamples caps the examples used per feature score; 0 = all.
	MaxExamples int
	// TrainFrac is the train share of the internal split (default 0.7).
	TrainFrac float64
	// Bins is the quantizer resolution (default 64 for selection).
	Bins int
	// Seed drives the split and subsample.
	Seed uint64
	// Workers sizes the worker pool for the per-column scoring loop:
	// 0 = runtime.GOMAXPROCS, 1 = the exact sequential path. Columns are
	// scored independently, so scores are bit-identical at any setting.
	Workers int
}

func (o SelectOptions) defaults() SelectOptions {
	if o.Rounds == 0 {
		o.Rounds = 12
	}
	if o.TrainFrac == 0 {
		o.TrainFrac = 0.7
	}
	if o.Bins == 0 {
		o.Bins = 64
	}
	if o.N == 0 {
		o.N = 1
	}
	return o
}

// SkippedColumn records a candidate column that could not be scored and was
// assigned score 0 instead of aborting the selection pass. A skip is always
// counted and reported the same way whether the per-column failure happened
// while training the single-feature predictor or while quantizing/scoring it,
// so one malformed column can never kill a full selection run, and a skipped
// column is distinguishable from a genuinely zero-signal one.
type SkippedColumn struct {
	Index int    // position in the cols slice passed to FeatureScores
	Name  string // column name, for reporting
	Stage string // "train" or "transform": where the per-column pass failed
	Err   error  // the underlying error
}

func (s SkippedColumn) String() string {
	return fmt.Sprintf("column %d (%s) skipped at %s: %v", s.Index, s.Name, s.Stage, s.Err)
}

// FeatureScores returns the criterion score of every column; higher is
// better for all criteria. Columns that fail their per-column pass score 0;
// use FeatureScoresDetail to see which ones and why.
func FeatureScores(cols []Column, y []bool, crit Criterion, opt SelectOptions) ([]float64, error) {
	scores, _, err := FeatureScoresDetail(cols, y, crit, opt)
	return scores, err
}

// FeatureScoresDetail is FeatureScores plus the list of skipped columns,
// ascending by column index.
func FeatureScoresDetail(cols []Column, y []bool, crit Criterion, opt SelectOptions) ([]float64, []SkippedColumn, error) {
	if len(cols) == 0 {
		return nil, nil, fmt.Errorf("ml: no columns to score")
	}
	n := len(y)
	if n == 0 || len(cols[0].Values) != n {
		return nil, nil, fmt.Errorf("ml: labels/columns mismatch")
	}
	switch crit {
	case CritTopNAP, CritAUC, CritAvgPrec, CritPCA, CritGainRatio:
	default:
		return nil, nil, fmt.Errorf("ml: unknown criterion %v", crit)
	}
	opt = opt.defaults()

	// Deterministic subsample.
	sample := make([]int, n)
	for i := range sample {
		sample[i] = i
	}
	if opt.MaxExamples > 0 && n > opt.MaxExamples {
		perm := rng.Derive(opt.Seed, 0x5e1).Perm(n)
		sample = perm[:opt.MaxExamples]
	}
	used := len(sample)
	// The budget shrinks proportionally with the population in view.
	scaleN := func(pop int) int {
		nn := opt.N * pop / n
		if nn < 1 {
			nn = 1
		}
		return nn
	}

	sub := func(c Column) Column {
		v := make([]float32, used)
		for i, idx := range sample {
			v[i] = c.Values[idx]
		}
		return Column{Name: c.Name, Categorical: c.Categorical, Values: v}
	}
	ySub := make([]bool, used)
	for i, idx := range sample {
		ySub[i] = y[idx]
	}

	switch crit {
	case CritPCA:
		subCols := make([]Column, len(cols))
		for i := range cols {
			subCols[i] = sub(cols[i])
		}
		k := len(cols) / 4
		if k < 3 {
			k = min(3, len(cols))
		}
		pca, err := FitPCA(subCols, k, opt.Seed)
		if err != nil {
			return nil, nil, err
		}
		return pca.FeatureScores(), nil, nil

	case CritGainRatio:
		scores := make([]float64, len(cols))
		parallel.ForEach(len(cols), opt.Workers, func(i int) {
			scores[i] = GainRatio(sub(cols[i]), ySub, 16)
		})
		return scores, nil, nil
	}

	// Predictor-based criteria share the per-feature train/test machinery.
	split := int(float64(used) * opt.TrainFrac)
	if split < 2 || used-split < 2 {
		return nil, nil, fmt.Errorf("ml: %d examples too few to split for selection", used)
	}
	perm := rng.Derive(opt.Seed, 0x5717).Perm(used)
	trainIdx, testIdx := perm[:split], perm[split:]
	yTr := make([]bool, len(trainIdx))
	posTr := 0
	for i, idx := range trainIdx {
		yTr[i] = ySub[idx]
		if yTr[i] {
			posTr++
		}
	}
	yTe := make([]bool, len(testIdx))
	for i, idx := range testIdx {
		yTe[i] = ySub[idx]
	}
	if posTr == 0 || posTr == len(yTr) {
		return nil, nil, fmt.Errorf("ml: selection train split has a single class")
	}

	// Each column trains and scores its own single-feature predictor —
	// embarrassingly parallel. A failure anywhere in a column's pass skips
	// that column with score 0 and a recorded reason (never an abort): a
	// malformed column must not kill a 60k-example selection run, and it must
	// stay distinguishable from a real zero-signal feature. The inner
	// training runs sequentially (Workers: 1); the column axis carries the
	// parallelism.
	//
	// trSrc/teSrc compose the subsample and split permutations once, so each
	// worker gathers its train/test values straight from the original column
	// in one pass — the old per-column sub() materialized the whole sampled
	// column only to be gathered from again immediately, a second full pass
	// and allocation per column that the memory-bound worker loop paid on
	// every call. Index composition is exact, so scores are bit-identical.
	trSrc := make([]int, len(trainIdx))
	for i, idx := range trainIdx {
		trSrc[i] = sample[idx]
	}
	teSrc := make([]int, len(testIdx))
	for i, idx := range testIdx {
		teSrc[i] = sample[idx]
	}
	scores := make([]float64, len(cols))
	skips := make([]*SkippedColumn, len(cols))
	nEff := scaleN(len(testIdx))
	parallel.ForEach(len(cols), opt.Workers, func(ci int) {
		skip := func(stage string, err error) {
			scores[ci] = 0
			skips[ci] = &SkippedColumn{Index: ci, Name: cols[ci].Name, Stage: stage, Err: err}
		}
		c := cols[ci]
		tr := Column{Name: c.Name, Categorical: c.Categorical, Values: make([]float32, len(trSrc))}
		te := Column{Name: c.Name, Categorical: c.Categorical, Values: make([]float32, len(teSrc))}
		for i, idx := range trSrc {
			tr.Values[i] = c.Values[idx]
		}
		for i, idx := range teSrc {
			te.Values[i] = c.Values[idx]
		}
		q, err := FitQuantizer([]Column{tr}, opt.Bins)
		if err != nil {
			skip("transform", err)
			return
		}
		bmTr, err := q.TransformWorkers([]Column{tr}, 1)
		if err != nil {
			skip("transform", err)
			return
		}
		model, err := TrainBStump(bmTr, q, yTr, TrainOptions{Rounds: opt.Rounds, Workers: 1})
		if err != nil {
			// Constant feature, degenerate weights, ...: no signal here.
			skip("train", err)
			return
		}
		bmTe, err := q.TransformWorkers([]Column{te}, 1)
		if err != nil {
			skip("transform", err)
			return
		}
		s := model.ScoreAllWorkers(bmTe, 1)
		switch crit {
		case CritTopNAP:
			scores[ci] = TopNAveragePrecision(s, yTe, nEff)
		case CritAUC:
			scores[ci] = AUC(s, yTe)
		case CritAvgPrec:
			scores[ci] = AveragePrecision(s, yTe)
		}
	})
	var skipped []SkippedColumn
	for _, s := range skips {
		if s != nil {
			skipped = append(skipped, *s)
		}
	}
	return scores, skipped, nil
}

// SelectTopK returns the indices of the k highest-scoring features under
// the criterion, best first.
func SelectTopK(cols []Column, y []bool, crit Criterion, k int, opt SelectOptions) ([]int, error) {
	scores, err := FeatureScores(cols, y, crit, opt)
	if err != nil {
		return nil, err
	}
	order := RankDesc(scores)
	if k > len(order) {
		k = len(order)
	}
	return order[:k], nil
}

// SelectAboveThreshold returns the indices of features scoring strictly
// above the threshold, best first — the Fig. 4 selection rule (0.2 for
// history/customer and quadratic features, 0.3 for product features).
func SelectAboveThreshold(scores []float64, threshold float64) []int {
	var out []int
	for _, i := range RankDesc(scores) {
		if scores[i] > threshold {
			out = append(out, i)
		}
	}
	return out
}

package ml

import (
	"fmt"
	"math"
)

// LogisticFit is a fitted binary logistic regression with Wald inference,
// used for the paper's §5.2 outage-correlation analysis (Table 5 reports the
// coefficient and P-value of a logistic regression between top-20K
// predictions per DSLAM and future outage events).
type LogisticFit struct {
	// Coef[0] is the intercept; Coef[1:] align with the design columns.
	Coef   []float64
	StdErr []float64
	ZValue []float64
	PValue []float64
	// Iterations actually used and final log-likelihood.
	Iterations int
	LogLik     float64
}

// LogisticRegression fits y ~ sigmoid(b0 + b·x) by iteratively reweighted
// least squares with a small ridge term for stability. x is example-major:
// x[i] is the feature vector of example i.
func LogisticRegression(x [][]float64, y []bool, maxIter int) (*LogisticFit, error) {
	n := len(x)
	if n == 0 || len(y) != n {
		return nil, fmt.Errorf("ml: logistic regression needs matching non-empty x and y")
	}
	p := len(x[0]) + 1 // plus intercept
	for i := range x {
		if len(x[i])+1 != p {
			return nil, fmt.Errorf("ml: ragged design matrix at row %d", i)
		}
	}
	if maxIter <= 0 {
		maxIter = 50
	}
	const ridge = 1e-8

	beta := make([]float64, p)
	xt := func(i, j int) float64 { // design with intercept column
		if j == 0 {
			return 1
		}
		return x[i][j-1]
	}

	var fit LogisticFit
	h := NewMatrix(p, p)
	g := make([]float64, p)
	for iter := 0; iter < maxIter; iter++ {
		for j := range g {
			g[j] = 0
		}
		for a := 0; a < p; a++ {
			for b := 0; b < p; b++ {
				h.Set(a, b, 0)
			}
		}
		for i := 0; i < n; i++ {
			eta := 0.0
			for j := 0; j < p; j++ {
				eta += beta[j] * xt(i, j)
			}
			mu := sigmoid(eta)
			yi := 0.0
			if y[i] {
				yi = 1
			}
			w := mu * (1 - mu)
			if w < 1e-10 {
				w = 1e-10
			}
			for a := 0; a < p; a++ {
				g[a] += (yi - mu) * xt(i, a)
				for b := a; b < p; b++ {
					h.Set(a, b, h.At(a, b)+w*xt(i, a)*xt(i, b))
				}
			}
		}
		for a := 0; a < p; a++ {
			h.Set(a, a, h.At(a, a)+ridge)
			for b := 0; b < a; b++ {
				h.Set(a, b, h.At(b, a))
			}
		}
		delta, err := h.CholeskySolve(g)
		if err != nil {
			return nil, fmt.Errorf("ml: IRLS solve failed: %w", err)
		}
		step := 0.0
		for j := 0; j < p; j++ {
			beta[j] += delta[j]
			step += math.Abs(delta[j])
		}
		fit.Iterations = iter + 1
		if step < 1e-10 {
			break
		}
	}

	// Wald inference: Var(beta) = inverse of the final Hessian.
	inv, err := h.CholeskyInverse()
	if err != nil {
		return nil, fmt.Errorf("ml: covariance inversion failed: %w", err)
	}
	fit.Coef = beta
	fit.StdErr = make([]float64, p)
	fit.ZValue = make([]float64, p)
	fit.PValue = make([]float64, p)
	for j := 0; j < p; j++ {
		se := math.Sqrt(inv.At(j, j))
		fit.StdErr[j] = se
		if se > 0 {
			fit.ZValue[j] = beta[j] / se
			fit.PValue[j] = 2 * normalSF(math.Abs(fit.ZValue[j]))
		} else {
			fit.PValue[j] = 1
		}
	}
	for i := 0; i < n; i++ {
		eta := 0.0
		for j := 0; j < p; j++ {
			eta += beta[j] * xt(i, j)
		}
		if y[i] {
			fit.LogLik += -math.Log1p(math.Exp(-eta))
		} else {
			fit.LogLik += -math.Log1p(math.Exp(eta))
		}
	}
	return &fit, nil
}

// Predict returns the fitted probability for a feature vector.
func (f *LogisticFit) Predict(x []float64) float64 {
	eta := f.Coef[0]
	for j, v := range x {
		eta += f.Coef[j+1] * v
	}
	return sigmoid(eta)
}

// normalSF is the standard normal survival function P(Z > z).
func normalSF(z float64) float64 {
	return 0.5 * math.Erfc(z/math.Sqrt2)
}

package ml

import (
	"math"
	"testing"

	"nevermind/internal/rng"
)

// compiledTolerance is the acceptance bound for compiled-vs-reference score
// agreement: the fold only reassociates the ensemble-order sum, so the
// residual is pure floating-point noise.
const compiledTolerance = 1e-9

// randomBins builds a matrix of random uint8 bins. Feature 0 is left
// all-zero (an "empty-bin" feature: only bin 0 ever occurs), so tables must
// stay correct for bins the data never visits.
func randomBins(r *rng.RNG, nFeatures, n, maxBin int) *BinnedMatrix {
	bm := &BinnedMatrix{N: n, Bins: make([][]uint8, nFeatures)}
	for f := 0; f < nFeatures; f++ {
		row := make([]uint8, n)
		if f > 0 {
			for i := range row {
				row[i] = uint8(r.Intn(maxBin))
			}
		}
		bm.Bins[f] = row
	}
	return bm
}

// randomEnsemble builds stumps with random features (including repeats of
// the same feature at different cuts) and ~15% constant stumps.
func randomEnsemble(r *rng.RNG, nFeatures, rounds int) *BStump {
	m := &BStump{}
	for t := 0; t < rounds; t++ {
		if r.Bool(0.15) {
			s := r.Uniform(-1, 1)
			m.Stumps = append(m.Stumps, Stump{Feature: -1, Cut: 255, SLow: s, SHigh: s})
			continue
		}
		m.Stumps = append(m.Stumps, Stump{
			Feature: r.Intn(nFeatures),
			Cut:     uint8(r.Intn(256)),
			SLow:    r.Uniform(-1, 1),
			SHigh:   r.Uniform(-1, 1),
		})
	}
	return m
}

func maxAbsDiff(a, b []float64) float64 {
	worst := 0.0
	for i := range a {
		d := math.Abs(a[i] - b[i])
		if d > worst {
			worst = d
		}
	}
	return worst
}

// TestCompiledMatchesReferenceOnRandomEnsembles is the property-style
// equivalence check: random ensembles (constant stumps, repeated features
// with different cuts, an all-zero-bin feature) score identically through
// the compiled tables and the stump-major reference, at several worker
// counts.
func TestCompiledMatchesReferenceOnRandomEnsembles(t *testing.T) {
	r := rng.New(7)
	for trial := 0; trial < 25; trial++ {
		nFeatures := 1 + r.Intn(12)
		rounds := 1 + r.Intn(300)
		bm := randomBins(r, nFeatures, 200+r.Intn(800), 256)
		m := randomEnsemble(r, nFeatures, rounds)
		ref := m.ScoreAllWorkers(bm, 1)
		c := m.Compiled()
		for _, workers := range workerCounts() {
			got := c.ScoreAllWorkers(bm, workers)
			if d := maxAbsDiff(ref, got); d > compiledTolerance {
				t.Fatalf("trial %d workers %d: compiled diverges from reference by %g", trial, workers, d)
			}
		}
		for i := 0; i < bm.N; i += 97 {
			if d := math.Abs(c.Score(bm, i) - ref[i]); d > compiledTolerance {
				t.Fatalf("trial %d: Score(%d) off by %g", trial, i, d)
			}
		}
	}
}

// TestCompiledSingleFeatureAndConstantEnsembles pins the degenerate shapes:
// a single-feature ensemble uses exactly one table, and an all-constant
// ensemble folds entirely into Bias with no tables at all.
func TestCompiledSingleFeatureAndConstantEnsembles(t *testing.T) {
	r := rng.New(11)
	bm := randomBins(r, 3, 500, 256)

	single := &BStump{Stumps: []Stump{
		{Feature: 1, Cut: 10, SLow: -0.5, SHigh: 0.25},
		{Feature: 1, Cut: 200, SLow: 0.125, SHigh: -1},
		{Feature: 1, Cut: 10, SLow: 0.0625, SHigh: 0.5},
	}}
	c := single.Compiled()
	if len(c.Features) != 1 || c.Features[0] != 1 {
		t.Fatalf("single-feature ensemble compiled to features %v", c.Features)
	}
	if d := maxAbsDiff(single.ScoreAllWorkers(bm, 1), c.ScoreAll(bm)); d > compiledTolerance {
		t.Fatalf("single-feature compiled off by %g", d)
	}

	constant := &BStump{Stumps: []Stump{
		{Feature: -1, Cut: 255, SLow: 0.5, SHigh: 0.5},
		{Feature: -1, Cut: 255, SLow: -0.125, SHigh: -0.125},
	}}
	cc := constant.Compiled()
	if len(cc.Features) != 0 {
		t.Fatalf("all-constant ensemble compiled to features %v", cc.Features)
	}
	if cc.Bias != 0.375 {
		t.Fatalf("all-constant bias = %v, want 0.375", cc.Bias)
	}
	if d := maxAbsDiff(constant.ScoreAllWorkers(bm, 1), cc.ScoreAll(bm)); d > compiledTolerance {
		t.Fatalf("all-constant compiled off by %g", d)
	}
}

// TestCompiledTrainedEnsembleEquivalence runs the fold on a genuinely
// trained model and checks the table invariants (ascending, deduplicated
// features) alongside score agreement.
func TestCompiledTrainedEnsembleEquivalence(t *testing.T) {
	cols, y := synthProblem(4000, 23)
	q, err := FitQuantizer(cols, 32)
	if err != nil {
		t.Fatal(err)
	}
	bm, err := q.Transform(cols)
	if err != nil {
		t.Fatal(err)
	}
	m, err := TrainBStump(bm, q, y, TrainOptions{Rounds: 200})
	if err != nil {
		t.Fatal(err)
	}
	c := m.Compiled()
	if c.CompiledAt != len(m.Stumps) {
		t.Fatalf("CompiledAt = %d, want %d", c.CompiledAt, len(m.Stumps))
	}
	for k := 1; k < len(c.Features); k++ {
		if c.Features[k] <= c.Features[k-1] {
			t.Fatalf("Features not strictly ascending: %v", c.Features)
		}
	}
	ref := m.ScoreAllWorkers(bm, 1)
	if d := maxAbsDiff(ref, c.ScoreAll(bm)); d > compiledTolerance {
		t.Fatalf("trained compiled off by %g", d)
	}
}

// TestCompiledIdenticalAcrossWorkers: the compiled pass chunks examples, and
// each example's accumulation order is fixed, so output must be
// bit-identical (not merely within tolerance) at any worker count.
func TestCompiledIdenticalAcrossWorkers(t *testing.T) {
	r := rng.New(31)
	bm := randomBins(r, 8, 3000, 256)
	c := randomEnsemble(r, 8, 150).Compiled()
	want := c.ScoreAllWorkers(bm, 1)
	for _, workers := range workerCounts() {
		got := c.ScoreAllWorkers(bm, workers)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: score[%d] = %v, want bit-identical %v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestCompiledStalenessDetected is the guard for the CompiledAt contract:
// mutating the ensemble after a fold must invalidate the cached tables, and
// the next Compiled() call must re-fold over the full ensemble.
func TestCompiledStalenessDetected(t *testing.T) {
	bm := &BinnedMatrix{N: 1, Bins: [][]uint8{{0}}}
	m := &BStump{Stumps: []Stump{{Feature: 0, Cut: 5, SLow: 1, SHigh: -1}}}
	c1 := m.Compiled()
	if c1.StaleFor(len(m.Stumps)) {
		t.Fatal("fresh fold reported stale")
	}
	if got := c1.ScoreAll(bm)[0]; got != 1 {
		t.Fatalf("pre-mutation score = %v, want 1", got)
	}

	m.Stumps = append(m.Stumps, Stump{Feature: -1, Cut: 255, SLow: 0.5, SHigh: 0.5})
	if !c1.StaleFor(len(m.Stumps)) {
		t.Fatal("mutated ensemble not reported stale")
	}
	c2 := m.Compiled()
	if c2 == c1 {
		t.Fatal("Compiled() returned the stale fold after mutation")
	}
	if c2.CompiledAt != 2 {
		t.Fatalf("re-fold CompiledAt = %d, want 2", c2.CompiledAt)
	}
	if got := c2.ScoreAll(bm)[0]; got != 1.5 {
		t.Fatalf("post-mutation score = %v, want 1.5", got)
	}
}

// TestCompiledBTreeMatchesReference exercises the partial fold: trees whose
// children are constant or re-split the root feature land in tables, true
// two-feature trees stay in Residual, and the combined score matches the
// reference at the compiled tolerance.
func TestCompiledBTreeMatchesReference(t *testing.T) {
	cols, y := xorProblem(3000, 19)
	q, err := FitQuantizer(cols, 32)
	if err != nil {
		t.Fatal(err)
	}
	bm, err := q.Transform(cols)
	if err != nil {
		t.Fatal(err)
	}
	m, err := TrainBTree(bm, q, y, TrainOptions{Rounds: 30})
	if err != nil {
		t.Fatal(err)
	}
	c := m.Compiled()
	if c.CompiledAt != len(m.Trees) {
		t.Fatalf("CompiledAt = %d, want %d", c.CompiledAt, len(m.Trees))
	}
	// The XOR problem needs genuine two-feature interactions; at least one
	// tree must be unfoldable or the fold criterion is wrong.
	if len(c.Residual) == 0 && len(m.Trees) > 1 {
		t.Fatal("XOR ensemble folded with no residual trees")
	}
	ref := m.ScoreAllWorkers(bm, 1)
	for _, workers := range workerCounts() {
		if d := maxAbsDiff(ref, c.ScoreAllWorkers(bm, workers)); d > compiledTolerance {
			t.Fatalf("workers=%d: compiled BTree off by %g", workers, d)
		}
	}

	// A hand-built fully foldable ensemble (constant children and root
	// re-splits) must compile to tables only.
	foldable := &BTree{Trees: []Tree{
		{RootFeature: 0, RootCut: 3,
			Left:  Stump{Feature: -1, Cut: 255, SLow: 0.5, SHigh: 0.5},
			Right: Stump{Feature: 0, Cut: 9, SLow: -0.25, SHigh: 1}},
		{RootFeature: 1, RootCut: 7,
			Left:  Stump{Feature: 1, Cut: 2, SLow: 0.125, SHigh: -1},
			Right: Stump{Feature: -1, Cut: 255, SLow: 2, SHigh: 2}},
	}}
	fc := foldable.Compiled()
	if len(fc.Residual) != 0 {
		t.Fatalf("fully foldable ensemble kept %d residual trees", len(fc.Residual))
	}
	if d := maxAbsDiff(foldable.ScoreAllWorkers(bm, 1), fc.ScoreAll(bm)); d > compiledTolerance {
		t.Fatalf("foldable BTree compiled off by %g", d)
	}

	// BTree staleness: appending a tree must force a re-fold.
	foldable.Trees = append(foldable.Trees, Tree{RootFeature: 0, RootCut: 1,
		Left:  Stump{Feature: 1, Cut: 4, SLow: 1, SHigh: -1},
		Right: Stump{Feature: -1, Cut: 255, SLow: 0, SHigh: 0}})
	fc2 := foldable.Compiled()
	if fc2 == fc || fc2.CompiledAt != 3 {
		t.Fatalf("BTree re-fold after mutation: got CompiledAt %d", fc2.CompiledAt)
	}
	if d := maxAbsDiff(foldable.ScoreAllWorkers(bm, 1), fc2.ScoreAll(bm)); d > compiledTolerance {
		t.Fatalf("mutated BTree compiled off by %g", d)
	}
}

// TestTrimQuantileValidatedAndDeterministic covers the trimming knob: out of
// range values error, quantile 0 is the exact path, and a positive quantile
// still trains a deterministic, usable model.
func TestTrimQuantileValidatedAndDeterministic(t *testing.T) {
	cols, y := synthProblem(4000, 29)
	q, err := FitQuantizer(cols, 32)
	if err != nil {
		t.Fatal(err)
	}
	bm, err := q.Transform(cols)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []float64{-0.1, 1, 1.5} {
		if _, err := TrainBStump(bm, q, y, TrainOptions{Rounds: 5, TrimQuantile: bad}); err == nil {
			t.Fatalf("TrimQuantile %g accepted", bad)
		}
		if _, err := TrainBTree(bm, q, y, TrainOptions{Rounds: 5, TrimQuantile: bad}); err == nil {
			t.Fatalf("tree TrimQuantile %g accepted", bad)
		}
	}

	exact, err := TrainBStump(bm, q, y, TrainOptions{Rounds: 40})
	if err != nil {
		t.Fatal(err)
	}
	zero, err := TrainBStump(bm, q, y, TrainOptions{Rounds: 40, TrimQuantile: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(exact.Stumps) != len(zero.Stumps) {
		t.Fatalf("TrimQuantile 0 changed the model: %d vs %d stumps", len(zero.Stumps), len(exact.Stumps))
	}
	for i := range exact.Stumps {
		if exact.Stumps[i] != zero.Stumps[i] {
			t.Fatalf("TrimQuantile 0 changed stump %d: %+v vs %+v", i, zero.Stumps[i], exact.Stumps[i])
		}
	}

	trimmedA, err := TrainBStump(bm, q, y, TrainOptions{Rounds: 40, TrimQuantile: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	trimmedB, err := TrainBStump(bm, q, y, TrainOptions{Rounds: 40, TrimQuantile: 0.2, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range trimmedA.Stumps {
		if trimmedA.Stumps[i] != trimmedB.Stumps[i] {
			t.Fatalf("trimmed training not deterministic across workers at stump %d", i)
		}
	}
	// Trimming approximates the search, not the objective: the trimmed model
	// must still separate the synthetic problem clearly.
	scores := trimmedA.ScoreAll(bm)
	correct := 0
	for i, s := range scores {
		if (s > 0) == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(y)); acc < 0.7 {
		t.Fatalf("trimmed model accuracy %.3f, want >= 0.7", acc)
	}

	if _, err := TrainBTree(bm, q, y, TrainOptions{Rounds: 10, TrimQuantile: 0.2}); err != nil {
		t.Fatalf("trimmed tree training failed: %v", err)
	}
}

package ml

import (
	"fmt"
	"math"

	"nevermind/internal/rng"
)

// PCA holds the leading principal components of a standardized feature set.
type PCA struct {
	Components [][]float64 // per component, unit loading vector over features
	Eigenvalue []float64
	Mean, Std  []float64
}

// FitPCA computes the top k principal components of the columns by power
// iteration with deflation on the correlation matrix (features are
// standardized first, since Table 2 features live on wildly different
// scales).
func FitPCA(cols []Column, k int, seed uint64) (*PCA, error) {
	p := len(cols)
	if p == 0 {
		return nil, fmt.Errorf("ml: PCA of zero features")
	}
	n := len(cols[0].Values)
	if n < 2 {
		return nil, fmt.Errorf("ml: PCA needs at least 2 examples")
	}
	if k <= 0 || k > p {
		k = p
	}

	// Standardize.
	mean := make([]float64, p)
	std := make([]float64, p)
	for j, c := range cols {
		if len(c.Values) != n {
			return nil, fmt.Errorf("ml: ragged column %q", c.Name)
		}
		s := 0.0
		for _, v := range c.Values {
			s += float64(v)
		}
		mean[j] = s / float64(n)
		ss := 0.0
		for _, v := range c.Values {
			d := float64(v) - mean[j]
			ss += d * d
		}
		std[j] = math.Sqrt(ss / float64(n-1))
		if std[j] == 0 {
			std[j] = 1 // constant feature: contributes nothing
		}
	}

	// Correlation matrix.
	cov := NewMatrix(p, p)
	for a := 0; a < p; a++ {
		for b := a; b < p; b++ {
			s := 0.0
			for i := 0; i < n; i++ {
				s += (float64(cols[a].Values[i]) - mean[a]) / std[a] *
					((float64(cols[b].Values[i]) - mean[b]) / std[b])
			}
			v := s / float64(n-1)
			cov.Set(a, b, v)
			cov.Set(b, a, v)
		}
	}

	pca := &PCA{Mean: mean, Std: std}
	r := rng.Derive(seed, 0x9ca)
	work := cov
	for c := 0; c < k; c++ {
		v := make([]float64, p)
		for j := range v {
			v[j] = r.Normal(0, 1)
		}
		normalize(v)
		var lambda float64
		for iter := 0; iter < 500; iter++ {
			w := work.MulVec(v)
			l := norm(w)
			if l < 1e-14 {
				lambda = 0
				break
			}
			for j := range w {
				w[j] /= l
			}
			diff := 0.0
			for j := range w {
				diff += math.Abs(w[j] - v[j])
			}
			v = w
			lambda = l
			if diff < 1e-10 {
				break
			}
		}
		if lambda <= 1e-12 {
			break // remaining spectrum is numerically zero
		}
		pca.Components = append(pca.Components, v)
		pca.Eigenvalue = append(pca.Eigenvalue, lambda)
		// Deflate: work ← work − λ·v·vᵀ.
		for a := 0; a < p; a++ {
			for b := 0; b < p; b++ {
				work.Set(a, b, work.At(a, b)-lambda*v[a]*v[b])
			}
		}
	}
	if len(pca.Components) == 0 {
		return nil, fmt.Errorf("ml: PCA found no components with positive variance")
	}
	return pca, nil
}

// FeatureScores ranks features by eigenvalue-weighted absolute loading
// across the components — the "top principal components" feature-selection
// criterion of Table 4, mapped back to individual features.
func (p *PCA) FeatureScores() []float64 {
	scores := make([]float64, len(p.Mean))
	for c, comp := range p.Components {
		w := p.Eigenvalue[c]
		for j, l := range comp {
			scores[j] += w * math.Abs(l)
		}
	}
	return scores
}

func norm(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

func normalize(v []float64) {
	l := norm(v)
	if l == 0 {
		return
	}
	for i := range v {
		v[i] /= l
	}
}

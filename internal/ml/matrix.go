package ml

import (
	"fmt"
	"math"
)

// Matrix is a small dense row-major matrix — just enough linear algebra for
// IRLS (Cholesky solve/inverse) and PCA (covariance, power iteration). It is
// not a general-purpose BLAS; dimensions here are feature counts, not
// example counts.
type Matrix struct {
	Rows, Cols int
	a          []float64
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("ml: matrix dims %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, a: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.a[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.a[i*m.Cols+j] = v }

// MulVec returns m·v.
func (m *Matrix) MulVec(v []float64) []float64 {
	if len(v) != m.Cols {
		panic("ml: MulVec dimension mismatch")
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		row := m.a[i*m.Cols : (i+1)*m.Cols]
		for j, x := range v {
			s += row[j] * x
		}
		out[i] = s
	}
	return out
}

// cholesky returns the lower-triangular L with m = L·Lᵀ. m must be
// symmetric positive definite.
func (m *Matrix) cholesky() (*Matrix, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("ml: cholesky of non-square %dx%d", m.Rows, m.Cols)
	}
	n := m.Rows
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := m.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if s <= 0 {
					return nil, fmt.Errorf("ml: matrix not positive definite at pivot %d (%g)", i, s)
				}
				l.Set(i, i, math.Sqrt(s))
			} else {
				l.Set(i, j, s/l.At(j, j))
			}
		}
	}
	return l, nil
}

// CholeskySolve solves m·x = b for symmetric positive definite m.
func (m *Matrix) CholeskySolve(b []float64) ([]float64, error) {
	l, err := m.cholesky()
	if err != nil {
		return nil, err
	}
	n := m.Rows
	if len(b) != n {
		return nil, fmt.Errorf("ml: solve with %d-vector for %dx%d", len(b), n, n)
	}
	// Forward: L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// Back: Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x, nil
}

// CholeskyInverse returns m⁻¹ for symmetric positive definite m.
func (m *Matrix) CholeskyInverse() (*Matrix, error) {
	n := m.Rows
	inv := NewMatrix(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for k := range e {
			e[k] = 0
		}
		e[j] = 1
		col, err := m.CholeskySolve(e)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return inv, nil
}

package ml

import (
	"fmt"

	"nevermind/internal/rng"
)

// Cross-validation for the boosting budget. The paper fixes 800 rounds for
// the ticket predictor and 200 for the locator "based on cross-validation"
// (footnotes 4 and §6.3); this is that procedure. Because a boosted
// ensemble's first k stumps are themselves the k-round model, one training
// run per fold at the largest candidate evaluates every candidate via
// prefix scoring — no retraining per candidate.

// ScorePrefix returns the scores using only the first k stumps.
func (m *BStump) ScorePrefix(bm *BinnedMatrix, k int) []float64 {
	if k > len(m.Stumps) {
		k = len(m.Stumps)
	}
	out := make([]float64, bm.N)
	for _, st := range m.Stumps[:k] {
		if st.Feature < 0 {
			for i := range out {
				out[i] += st.SLow
			}
			continue
		}
		bins := bm.Bins[st.Feature]
		for i, b := range bins {
			if b <= st.Cut {
				out[i] += st.SLow
			} else {
				out[i] += st.SHigh
			}
		}
	}
	return out
}

// CVResult reports the cross-validated quality of each candidate round
// count.
type CVResult struct {
	Rounds []int
	Mean   []float64 // mean fold metric per candidate, aligned with Rounds
	Best   int       // the candidate with the highest mean metric
}

// CrossValidateRounds k-fold cross-validates the boosting budget. metric
// scores a fold (higher is better), e.g. a TopNAveragePrecision closure.
func CrossValidateRounds(cols []Column, y []bool, candidates []int, folds int, bins int, seed uint64,
	metric func(scores []float64, labels []bool) float64) (*CVResult, error) {
	if len(cols) == 0 || len(y) == 0 || len(cols[0].Values) != len(y) {
		return nil, fmt.Errorf("ml: cross-validation needs matching non-empty data")
	}
	if folds < 2 {
		return nil, fmt.Errorf("ml: need at least 2 folds")
	}
	if len(candidates) == 0 {
		return nil, fmt.Errorf("ml: no candidate round counts")
	}
	maxRounds := 0
	for _, c := range candidates {
		if c <= 0 {
			return nil, fmt.Errorf("ml: non-positive candidate rounds %d", c)
		}
		if c > maxRounds {
			maxRounds = c
		}
	}
	n := len(y)
	if n < folds*2 {
		return nil, fmt.Errorf("ml: %d examples too few for %d folds", n, folds)
	}

	perm := rng.Derive(seed, 0xcf).Perm(n)
	sums := make([]float64, len(candidates))
	for f := 0; f < folds; f++ {
		// Fold f is the validation slice of the permutation.
		lo, hi := f*n/folds, (f+1)*n/folds
		trainIdx := append(append([]int(nil), perm[:lo]...), perm[hi:]...)
		valIdx := perm[lo:hi]

		trCols := subsetColumns(cols, trainIdx)
		vaCols := subsetColumns(cols, valIdx)
		trY := subsetLabels(y, trainIdx)
		vaY := subsetLabels(y, valIdx)

		q, err := FitQuantizer(trCols, bins)
		if err != nil {
			return nil, err
		}
		bmTr, err := q.Transform(trCols)
		if err != nil {
			return nil, err
		}
		bmVa, err := q.Transform(vaCols)
		if err != nil {
			return nil, err
		}
		model, err := TrainBStump(bmTr, q, trY, TrainOptions{Rounds: maxRounds})
		if err != nil {
			return nil, fmt.Errorf("ml: fold %d: %w", f, err)
		}
		for ci, c := range candidates {
			sums[ci] += metric(model.ScorePrefix(bmVa, c), vaY)
		}
	}

	res := &CVResult{Rounds: candidates, Mean: make([]float64, len(candidates))}
	bestScore := -1.0
	for ci := range candidates {
		res.Mean[ci] = sums[ci] / float64(folds)
		if res.Mean[ci] > bestScore {
			bestScore = res.Mean[ci]
			res.Best = candidates[ci]
		}
	}
	return res, nil
}

func subsetColumns(cols []Column, idx []int) []Column {
	out := make([]Column, len(cols))
	for ci, c := range cols {
		v := make([]float32, len(idx))
		for i, r := range idx {
			v[i] = c.Values[r]
		}
		out[ci] = Column{Name: c.Name, Categorical: c.Categorical, Values: v}
	}
	return out
}

func subsetLabels(y []bool, idx []int) []bool {
	out := make([]bool, len(idx))
	for i, r := range idx {
		out[i] = y[r]
	}
	return out
}

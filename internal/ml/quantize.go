package ml

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"sort"

	"nevermind/internal/parallel"
)

// Column is one feature across all examples. Categorical columns must be
// binary indicators (the feature encoder expands multi-valued categoricals;
// §4.2, footnote 2), for which a threshold stump and an equality stump
// coincide.
type Column struct {
	Name        string
	Categorical bool
	Values      []float32
}

// Quantizer maps continuous features onto at most maxBins quantile bins so
// a boosting round can evaluate every stump threshold with one counting
// pass. Cuts are learned on the training distribution and then applied
// unchanged to test data, so train and test agree on the meaning of a bin.
type Quantizer struct {
	Cuts  [][]float32 // per feature, ascending bin upper boundaries (exclusive)
	Names []string
}

// maxStumpBins is the bin alphabet: uint8 bins keep the design matrix at one
// byte per cell.
const maxStumpBins = 256

// FitQuantizer learns quantile cuts from the columns. Binary categorical
// columns get the single natural cut at 0.5.
func FitQuantizer(cols []Column, maxBins int) (*Quantizer, error) {
	if maxBins < 2 || maxBins > maxStumpBins {
		return nil, fmt.Errorf("ml: maxBins %d outside [2,%d]", maxBins, maxStumpBins)
	}
	q := &Quantizer{Cuts: make([][]float32, len(cols)), Names: make([]string, len(cols))}
	for ci, col := range cols {
		q.Names[ci] = col.Name
		if col.Categorical {
			q.Cuts[ci] = []float32{0.5}
			continue
		}
		sorted := append([]float32(nil), col.Values...)
		sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
		var cuts []float32
		// Cuts must exceed the minimum so "bin <= cut" splits are never
		// empty on the left; a constant column therefore yields no cuts.
		prev := float32(math.Inf(-1))
		if len(sorted) > 0 {
			prev = sorted[0]
		}
		for b := 1; b < maxBins; b++ {
			v := sorted[len(sorted)*b/maxBins]
			if v > prev {
				cuts = append(cuts, v)
				prev = v
			}
		}
		q.Cuts[ci] = cuts
	}
	return q, nil
}

// BinnedMatrix is the quantized design matrix, feature-major.
type BinnedMatrix struct {
	N     int
	Names []string
	Bins  [][]uint8 // per feature, per example: index into [0, len(cuts)]
}

// Transform quantizes columns with the learned cuts using the default worker
// count. The columns must match the fitted schema.
func (q *Quantizer) Transform(cols []Column) (*BinnedMatrix, error) {
	return q.TransformWorkers(cols, 0)
}

// TransformWorkers quantizes columns on the given number of workers
// (0 = GOMAXPROCS, 1 = sequential). Example rows are chunked; every cell's
// bin depends only on its own value and the fitted cuts, so the matrix is
// bit-identical at any worker count.
func (q *Quantizer) TransformWorkers(cols []Column, workers int) (*BinnedMatrix, error) {
	if len(cols) != len(q.Cuts) {
		return nil, fmt.Errorf("ml: transform got %d columns, fitted %d", len(cols), len(q.Cuts))
	}
	if len(cols) == 0 {
		return &BinnedMatrix{}, nil
	}
	n := len(cols[0].Values)
	bm := &BinnedMatrix{N: n, Names: q.Names, Bins: make([][]uint8, len(cols))}
	for ci, col := range cols {
		if len(col.Values) != n {
			return nil, fmt.Errorf("ml: column %q has %d values, want %d", col.Name, len(col.Values), n)
		}
		bm.Bins[ci] = make([]uint8, n)
	}
	parallel.For(n, workers, func(_, start, end int) {
		for ci := range cols {
			cuts := q.Cuts[ci]
			vals := cols[ci].Values
			bins := bm.Bins[ci]
			for i := start; i < end; i++ {
				// First cut strictly greater than v; bin = count of cuts <= v.
				v := vals[i]
				bins[i] = uint8(sort.Search(len(cuts), func(j int) bool { return cuts[j] > v }))
			}
		}
	})
	return bm, nil
}

// SubsetRows returns a new BinnedMatrix holding the given example rows, in
// the given order. Used to carve held-out slices (e.g. the calibration
// holdout) out of an already-quantized training matrix without re-encoding.
func (bm *BinnedMatrix) SubsetRows(idx []int) *BinnedMatrix {
	out := &BinnedMatrix{N: len(idx), Names: bm.Names, Bins: make([][]uint8, len(bm.Bins))}
	for f, bins := range bm.Bins {
		sub := make([]uint8, len(idx))
		for i, r := range idx {
			sub[i] = bins[r]
		}
		out.Bins[f] = sub
	}
	return out
}

// Fingerprint identifies the fitted quantizer by content (feature names and
// exact cut bit patterns): two quantizers with equal fingerprints bin
// identical columns identically. Used as the quantizer-identity component of
// encode/bin cache keys, where pointer identity would be unsafe.
func (q *Quantizer) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [4]byte
	for _, cuts := range q.Cuts {
		binary.LittleEndian.PutUint32(buf[:], uint32(len(cuts)))
		h.Write(buf[:])
		for _, c := range cuts {
			binary.LittleEndian.PutUint32(buf[:], math.Float32bits(c))
			h.Write(buf[:])
		}
	}
	for _, n := range q.Names {
		io.WriteString(h, n)
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// NumBins returns the number of distinct bins for a feature (#cuts + 1).
func (q *Quantizer) NumBins(feature int) int { return len(q.Cuts[feature]) + 1 }

// CutValue returns the original-space threshold realised by "bin <= b" for a
// feature, for model interpretability (the paper's Fig. 5 shows thresholds
// like "delta upbr <= -112").
func (q *Quantizer) CutValue(feature, b int) float32 {
	cuts := q.Cuts[feature]
	if len(cuts) == 0 {
		return float32(math.NaN())
	}
	if b >= len(cuts) {
		b = len(cuts) - 1
	}
	if b < 0 {
		b = 0
	}
	return cuts[b]
}

package ml

import (
	"fmt"
	"math"
)

// Calibration is a logistic (Platt) calibration P(y=1|s) = σ(A·s + B),
// mapping raw classifier scores to posterior probabilities.
type Calibration struct {
	A, B   float64
	Fitted bool
}

// Apply maps a raw score to a probability. An unfitted calibration applies
// the identity logistic σ(s), which is the natural reading of a boosted
// margin.
func (c Calibration) Apply(score float64) float64 {
	if !c.Fitted {
		return sigmoid(score)
	}
	return sigmoid(c.A*score + c.B)
}

func sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}

// FitCalibration fits Platt scaling by Newton iterations on the regularised
// log-loss, using Platt's target smoothing to avoid saturated targets.
func FitCalibration(scores []float64, labels []bool) (Calibration, error) {
	if len(scores) != len(labels) || len(scores) == 0 {
		return Calibration{}, fmt.Errorf("ml: calibration needs matching non-empty scores and labels")
	}
	var nPos, nNeg float64
	for _, y := range labels {
		if y {
			nPos++
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return Calibration{}, fmt.Errorf("ml: calibration needs both classes")
	}
	tPos := (nPos + 1) / (nPos + 2)
	tNeg := 1 / (nNeg + 2)

	a, b := 1.0, 0.0
	for iter := 0; iter < 100; iter++ {
		var g1, g2 float64 // gradient wrt a, b
		var h11, h12, h22 float64
		for i, s := range scores {
			p := sigmoid(a*s + b)
			t := tNeg
			if labels[i] {
				t = tPos
			}
			d := p - t
			g1 += d * s
			g2 += d
			w := p * (1 - p)
			h11 += w * s * s
			h12 += w * s
			h22 += w
		}
		// Levenberg damping keeps the 2x2 solve well-posed.
		h11 += 1e-9
		h22 += 1e-9
		det := h11*h22 - h12*h12
		if det <= 0 {
			break
		}
		da := (h22*g1 - h12*g2) / det
		db := (h11*g2 - h12*g1) / det
		a -= da
		b -= db
		if math.Abs(da)+math.Abs(db) < 1e-10 {
			break
		}
	}
	if math.IsNaN(a) || math.IsNaN(b) {
		return Calibration{}, fmt.Errorf("ml: calibration diverged")
	}
	return Calibration{A: a, B: b, Fitted: true}, nil
}

// Calibrate fits the model's calibration on (typically held-out) scores.
func (m *BStump) Calibrate(scores []float64, labels []bool) error {
	c, err := FitCalibration(scores, labels)
	if err != nil {
		return err
	}
	m.Calib = c
	return nil
}

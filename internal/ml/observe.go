package ml

import (
	"sync/atomic"
	"time"
)

// scoreObserver, when installed, sees every compiled-scorer batch call:
// rows scored and wall time. The hook is process-global because compiled
// scorers are reached from deep call chains (core.Predictor → ml) that no
// per-server handle threads through; a serving binary installs exactly one
// observer at boot (cmd/nevermindd wires it to the server's metrics), and
// libraries never install any. The default (nil) costs one atomic load per
// batch call — nothing per row.
var scoreObserver atomic.Pointer[func(rows int, d time.Duration)]

// SetScoreObserver installs fn as the process-global compiled-scoring
// observer; nil uninstalls. Batch calls are reported after they complete,
// possibly concurrently — fn must be safe for concurrent use.
func SetScoreObserver(fn func(rows int, d time.Duration)) {
	if fn == nil {
		scoreObserver.Store(nil)
		return
	}
	scoreObserver.Store(&fn)
}

// observeScore reports one finished batch call to the installed observer,
// if any.
func observeScore(rows int, t0 time.Time) {
	if fn := scoreObserver.Load(); fn != nil {
		(*fn)(rows, time.Since(t0))
	}
}

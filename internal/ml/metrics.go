// Package ml is the machine-learning substrate NEVERMIND is built on,
// implemented from scratch on the standard library: confidence-rated
// AdaBoost over decision stumps (the paper's "BStump", after BoosTexter),
// logistic calibration, binary logistic regression with Wald tests, PCA,
// entropy criteria, ranking metrics including the paper's top-N average
// precision (§4.3), and the greedy feature-selection harness of Table 4.
package ml

import (
	"fmt"
	"math"
	"sort"
)

// RankDesc returns example indices ordered by descending score with a
// deterministic tie-break on index, so every metric and every experiment is
// reproducible bit-for-bit.
func RankDesc(scores []float64) []int {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if scores[idx[a]] != scores[idx[b]] {
			return scores[idx[a]] > scores[idx[b]]
		}
		return idx[a] < idx[b]
	})
	return idx
}

// PrecisionAtK returns the fraction of true labels among the k top-scored
// examples — the paper's "accuracy" metric for the ticket predictor (§5.1:
// the proportion of subscribers in the top N predictions who issued tickets
// within 4 weeks). k is clamped to the number of examples.
func PrecisionAtK(scores []float64, labels []bool, k int) float64 {
	if len(scores) != len(labels) {
		panic("ml: scores and labels length mismatch")
	}
	if k <= 0 {
		return 0
	}
	if k > len(scores) {
		k = len(scores)
	}
	idx := RankDesc(scores)
	hits := 0
	for _, i := range idx[:k] {
		if labels[i] {
			hits++
		}
	}
	return float64(hits) / float64(k)
}

// PrecisionCurve returns Precision@k for every k in ks (each clamped),
// sharing a single sort.
func PrecisionCurve(scores []float64, labels []bool, ks []int) []float64 {
	if len(scores) != len(labels) {
		panic("ml: scores and labels length mismatch")
	}
	idx := RankDesc(scores)
	out := make([]float64, len(ks))
	// Precompute cumulative hits.
	cum := make([]int, len(idx)+1)
	for r, i := range idx {
		cum[r+1] = cum[r]
		if labels[i] {
			cum[r+1]++
		}
	}
	for j, k := range ks {
		if k <= 0 {
			continue
		}
		if k > len(idx) {
			k = len(idx)
		}
		out[j] = float64(cum[k]) / float64(k)
	}
	return out
}

// TopNAveragePrecision is the paper's AP(N) (§4.3):
//
//	AP(N) = (1/N) * Σ_{r=1..N} Prec(r) · Tkt(u_r)
//
// the sum of precisions at every true prediction within the top N, averaged
// by N. Unlike classical average precision it is normalised by the budget N
// rather than by the number of positives, so it rewards packing true
// positives high inside the operational budget.
func TopNAveragePrecision(scores []float64, labels []bool, n int) float64 {
	if len(scores) != len(labels) {
		panic("ml: scores and labels length mismatch")
	}
	if n <= 0 {
		return 0
	}
	if n > len(scores) {
		n = len(scores)
	}
	idx := RankDesc(scores)
	hits := 0
	sum := 0.0
	for r := 1; r <= n; r++ {
		if labels[idx[r-1]] {
			hits++
			sum += float64(hits) / float64(r)
		}
	}
	return sum / float64(n)
}

// AveragePrecision is the classical average precision over all samples
// (Table 4's "average precision" criterion): mean of Prec(r) over the ranks
// of all positives.
func AveragePrecision(scores []float64, labels []bool) float64 {
	if len(scores) != len(labels) {
		panic("ml: scores and labels length mismatch")
	}
	idx := RankDesc(scores)
	hits := 0
	sum := 0.0
	for r := 1; r <= len(idx); r++ {
		if labels[idx[r-1]] {
			hits++
			sum += float64(hits) / float64(r)
		}
	}
	if hits == 0 {
		return 0
	}
	return sum / float64(hits)
}

// AUC returns the area under the ROC curve: the probability a random
// positive outscores a random negative (ties count half). It is computed
// from the Mann-Whitney U statistic in O(n log n).
func AUC(scores []float64, labels []bool) float64 {
	if len(scores) != len(labels) {
		panic("ml: scores and labels length mismatch")
	}
	type sl struct {
		s float64
		y bool
	}
	xs := make([]sl, len(scores))
	for i := range scores {
		xs[i] = sl{scores[i], labels[i]}
	}
	sort.Slice(xs, func(a, b int) bool { return xs[a].s < xs[b].s })

	var nPos, nNeg float64
	var rankSum float64
	i := 0
	rank := 1
	for i < len(xs) {
		j := i
		for j < len(xs) && xs[j].s == xs[i].s {
			j++
		}
		// Average rank for the tie group [i, j).
		avg := float64(rank+rank+(j-i)-1) / 2
		for k := i; k < j; k++ {
			if xs[k].y {
				rankSum += avg
				nPos++
			} else {
				nNeg++
			}
		}
		rank += j - i
		i = j
	}
	if nPos == 0 || nNeg == 0 {
		return 0.5
	}
	u := rankSum - nPos*(nPos+1)/2
	return u / (nPos * nNeg)
}

// CDF returns the empirical distribution of values evaluated at each point
// in xs: fraction of values <= x.
func CDF(values []float64, xs []float64) []float64 {
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	out := make([]float64, len(xs))
	if len(sorted) == 0 {
		return out
	}
	for i, x := range xs {
		out[i] = float64(sort.SearchFloat64s(sorted, math.Nextafter(x, math.Inf(1)))) / float64(len(sorted))
	}
	return out
}

// Histogram buckets values into equal-width bins over [lo, hi); values
// outside the range clamp to the edge bins.
func Histogram(values []float64, lo, hi float64, bins int) []int {
	if bins <= 0 || hi <= lo {
		panic(fmt.Sprintf("ml: bad histogram spec [%v,%v) bins=%d", lo, hi, bins))
	}
	h := make([]int, bins)
	w := (hi - lo) / float64(bins)
	for _, v := range values {
		b := int((v - lo) / w)
		if b < 0 {
			b = 0
		}
		if b >= bins {
			b = bins - 1
		}
		h[b]++
	}
	return h
}

// ReliabilityGap measures calibration error: predicted probabilities are
// bucketed into equal-count bins by rank, and the gap is the example-weighted
// mean of |mean predicted probability − empirical positive rate| across bins
// (the expected calibration error over a quantile binning). 0 is perfectly
// calibrated; an overconfident model — e.g. one whose calibration was fitted
// on its own inflated training margins — shows a large gap on held-out data.
func ReliabilityGap(probs []float64, labels []bool, bins int) float64 {
	n := len(probs)
	if n == 0 || len(labels) != n || bins <= 0 {
		panic(fmt.Sprintf("ml: bad reliability spec: %d probs, %d labels, %d bins", n, len(labels), bins))
	}
	if bins > n {
		bins = n
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return probs[order[a]] < probs[order[b]] })
	gap := 0.0
	for b := 0; b < bins; b++ {
		lo, hi := b*n/bins, (b+1)*n/bins
		if hi == lo {
			continue
		}
		var meanP, posRate float64
		for _, i := range order[lo:hi] {
			meanP += probs[i]
			if labels[i] {
				posRate++
			}
		}
		size := float64(hi - lo)
		meanP /= size
		posRate /= size
		gap += size / float64(n) * math.Abs(meanP-posRate)
	}
	return gap
}

package ml

import "math"

// GainRatio computes the gain-ratio feature-selection criterion of Table 4:
// the decrease in label entropy from knowing the (discretized) feature,
// normalised by the feature's own split entropy so many-valued features are
// not unfairly favoured. The feature is discretized into quantile bins.
func GainRatio(col Column, y []bool, bins int) float64 {
	if len(col.Values) != len(y) || len(y) == 0 {
		panic("ml: GainRatio needs matching non-empty column and labels")
	}
	if bins < 2 {
		bins = 2
	}
	q, err := FitQuantizer([]Column{col}, bins)
	if err != nil {
		return 0
	}
	bm, err := q.Transform([]Column{col})
	if err != nil {
		return 0
	}
	nb := q.NumBins(0)
	pos := make([]float64, nb)
	tot := make([]float64, nb)
	var nPos float64
	n := float64(len(y))
	for i, b := range bm.Bins[0] {
		tot[b]++
		if y[i] {
			pos[b]++
			nPos++
		}
	}

	hy := binaryEntropy(nPos / n)
	var cond, split float64
	for b := 0; b < nb; b++ {
		if tot[b] == 0 {
			continue
		}
		pb := tot[b] / n
		cond += pb * binaryEntropy(pos[b]/tot[b])
		split -= pb * math.Log2(pb)
	}
	gain := hy - cond
	if split <= 1e-12 {
		return 0 // single-bin feature carries no information
	}
	return gain / split
}

// binaryEntropy is H(p) in bits.
func binaryEntropy(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}

package ml

import (
	"math"
	"testing"
)

func TestScorePrefixMatchesFullAndPartial(t *testing.T) {
	cols, y := synthProblem(1000, 31)
	m, _, bm := trainOn(t, cols, y, 20)
	full := m.ScoreAll(bm)
	pre := m.ScorePrefix(bm, len(m.Stumps))
	for i := range full {
		if math.Abs(full[i]-pre[i]) > 1e-12 {
			t.Fatalf("full prefix differs at %d", i)
		}
	}
	// A 5-stump prefix equals a model truncated to 5 stumps.
	trunc := &BStump{Stumps: m.Stumps[:5]}
	want := trunc.ScoreAll(bm)
	got := m.ScorePrefix(bm, 5)
	for i := range want {
		if math.Abs(want[i]-got[i]) > 1e-12 {
			t.Fatalf("prefix-5 differs at %d", i)
		}
	}
	// Oversized k clamps.
	if s := m.ScorePrefix(bm, 10000); math.Abs(s[0]-full[0]) > 1e-12 {
		t.Fatal("oversized prefix should clamp to the full model")
	}
}

func TestCrossValidateRoundsPicksReasonableBudget(t *testing.T) {
	cols, y := synthProblem(4000, 32)
	res, err := CrossValidateRounds(cols, y, []int{1, 15, 60}, 4, 32, 7,
		func(s []float64, l []bool) float64 { return AUC(s, l) })
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Mean) != 3 {
		t.Fatalf("%d means", len(res.Mean))
	}
	// One stump cannot be the best model on a two-signal problem.
	if res.Best == 1 {
		t.Fatalf("CV picked a single round (means %v)", res.Mean)
	}
	for _, m := range res.Mean {
		if m < 0.4 || m > 1 {
			t.Fatalf("implausible fold metric %v", m)
		}
	}
}

func TestCrossValidateDeterministic(t *testing.T) {
	cols, y := synthProblem(1200, 33)
	metric := func(s []float64, l []bool) float64 { return AUC(s, l) }
	a, err := CrossValidateRounds(cols, y, []int{5, 25}, 3, 32, 9, metric)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CrossValidateRounds(cols, y, []int{5, 25}, 3, 32, 9, metric)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Mean {
		if a.Mean[i] != b.Mean[i] {
			t.Fatal("CV not deterministic")
		}
	}
}

func TestCrossValidateRejectsBadArgs(t *testing.T) {
	cols, y := synthProblem(100, 34)
	metric := func(s []float64, l []bool) float64 { return AUC(s, l) }
	if _, err := CrossValidateRounds(nil, nil, []int{5}, 3, 32, 1, metric); err == nil {
		t.Fatal("empty data accepted")
	}
	if _, err := CrossValidateRounds(cols, y, []int{5}, 1, 32, 1, metric); err == nil {
		t.Fatal("single fold accepted")
	}
	if _, err := CrossValidateRounds(cols, y, nil, 3, 32, 1, metric); err == nil {
		t.Fatal("no candidates accepted")
	}
	if _, err := CrossValidateRounds(cols, y, []int{0}, 3, 32, 1, metric); err == nil {
		t.Fatal("zero-round candidate accepted")
	}
	if _, err := CrossValidateRounds(cols[:1], y[:3], []int{5}, 3, 32, 1, metric); err == nil {
		t.Fatal("mismatched labels accepted")
	}
}

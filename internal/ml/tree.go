package ml

import (
	"fmt"
	"math"
)

// Depth-2 boosted trees: the non-linear alternative the paper declines in
// §4.4 — "because of the existence of such noise in the training data,
// sophisticated non-linear models overfit easily, we hence choose a linear
// model". TrainBTree exists to test that claim on the simulated substrate
// (the BenchmarkAblationDepth ablation): each weak learner is a two-level
// tree (a root split and one split per side, four confidence-rated leaves).

// Tree is one depth-2 weak learner. An example routes left when
// bin(RootFeature) <= RootCut, then through the side's stump to one of four
// leaf scores.
type Tree struct {
	RootFeature int
	RootCut     uint8
	Left, Right Stump // leaf scores live in the child stumps
}

// Score routes one example through the tree.
func (t *Tree) Score(bm *BinnedMatrix, i int) float64 {
	child := &t.Right
	if bm.Bins[t.RootFeature][i] <= t.RootCut {
		child = &t.Left
	}
	if bm.Bins[child.Feature][i] <= child.Cut {
		return child.SLow
	}
	return child.SHigh
}

// BTree is a boosted ensemble of depth-2 trees.
type BTree struct {
	Trees []Tree
	Calib Calibration
}

// TrainBTree boosts depth-2 trees. The greedy construction picks the best
// stump as the root, then fits the best stump inside each partition.
func TrainBTree(bm *BinnedMatrix, q *Quantizer, y []bool, opt TrainOptions) (*BTree, error) {
	if bm.N == 0 || len(bm.Bins) == 0 {
		return nil, fmt.Errorf("ml: empty training matrix")
	}
	if len(y) != bm.N {
		return nil, fmt.Errorf("ml: %d labels for %d examples", len(y), bm.N)
	}
	if opt.Rounds <= 0 {
		return nil, fmt.Errorf("ml: Rounds must be positive")
	}
	features := opt.Features
	if features == nil {
		features = make([]int, len(bm.Bins))
		for i := range features {
			features[i] = i
		}
	}
	eps := opt.Smooth
	if eps == 0 {
		eps = 1 / (2 * float64(bm.N))
	}

	n := bm.N
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / float64(n)
	}
	inLeft := make([]bool, n)

	model := &BTree{}
	for t := 0; t < opt.Rounds; t++ {
		root, ok := bestStump(bm, q, y, w, nil, features, eps)
		if !ok {
			break
		}
		rootBins := bm.Bins[root.Feature]
		for i := range inLeft {
			inLeft[i] = rootBins[i] <= root.Cut
		}
		left, okL := bestStumpMasked(bm, q, y, w, inLeft, true, features, eps)
		right, okR := bestStumpMasked(bm, q, y, w, inLeft, false, features, eps)
		if !okL {
			left = constantStump(y, w, inLeft, true, eps)
		}
		if !okR {
			right = constantStump(y, w, inLeft, false, eps)
		}
		tree := Tree{RootFeature: root.Feature, RootCut: root.Cut, Left: left, Right: right}
		model.Trees = append(model.Trees, tree)

		total := 0.0
		for i := range w {
			s := tree.Score(bm, i)
			if y[i] {
				w[i] *= math.Exp(-s)
			} else {
				w[i] *= math.Exp(s)
			}
			total += w[i]
		}
		if total <= 0 || math.IsNaN(total) || math.IsInf(total, 0) {
			return nil, fmt.Errorf("ml: tree boosting degenerated at round %d", t)
		}
		for i := range w {
			w[i] /= total
		}
	}
	if len(model.Trees) == 0 {
		return nil, fmt.Errorf("ml: no tree could be trained")
	}
	return model, nil
}

// ScoreAll scores every example.
func (m *BTree) ScoreAll(bm *BinnedMatrix) []float64 {
	out := make([]float64, bm.N)
	for ti := range m.Trees {
		t := &m.Trees[ti]
		for i := 0; i < bm.N; i++ {
			out[i] += t.Score(bm, i)
		}
	}
	return out
}

// Calibrate fits the ensemble's logistic calibration.
func (m *BTree) Calibrate(scores []float64, labels []bool) error {
	c, err := FitCalibration(scores, labels)
	if err != nil {
		return err
	}
	m.Calib = c
	return nil
}

// Probability converts a raw score to a posterior.
func (m *BTree) Probability(score float64) float64 { return m.Calib.Apply(score) }

// bestStump finds the Z-minimising stump over examples where mask is nil.
func bestStump(bm *BinnedMatrix, q *Quantizer, y []bool, w []float64, _ []bool, features []int, eps float64) (Stump, bool) {
	return bestStumpMasked(bm, q, y, w, nil, false, features, eps)
}

// bestStumpMasked finds the Z-minimising stump over the examples where
// inLeft[i] == wantLeft (or all examples when inLeft is nil).
func bestStumpMasked(bm *BinnedMatrix, q *Quantizer, y []bool, w []float64, inLeft []bool, wantLeft bool, features []int, eps float64) (Stump, bool) {
	var wp, wn [maxStumpBins]float64
	best := Stump{Feature: -1}
	bestZ := math.Inf(1)
	for _, f := range features {
		bins := bm.Bins[f]
		nb := q.NumBins(f)
		if nb < 2 {
			continue
		}
		for b := 0; b < nb; b++ {
			wp[b], wn[b] = 0, 0
		}
		for i, b := range bins {
			if inLeft != nil && inLeft[i] != wantLeft {
				continue
			}
			if y[i] {
				wp[b] += w[i]
			} else {
				wn[b] += w[i]
			}
		}
		var tp, tn float64
		for b := 0; b < nb; b++ {
			tp += wp[b]
			tn += wn[b]
		}
		if tp+tn == 0 {
			continue
		}
		var lp, ln float64
		for c := 0; c < nb-1; c++ {
			lp += wp[c]
			ln += wn[c]
			rp, rn := tp-lp, tn-ln
			z := 2 * (math.Sqrt(lp*ln) + math.Sqrt(rp*rn))
			if z < bestZ {
				bestZ = z
				best = Stump{
					Feature: f,
					Cut:     uint8(c),
					SLow:    0.5 * math.Log((lp+eps)/(ln+eps)),
					SHigh:   0.5 * math.Log((rp+eps)/(rn+eps)),
				}
			}
		}
	}
	if best.Feature < 0 {
		return best, false
	}
	best.Threshold = q.CutValue(best.Feature, int(best.Cut))
	return best, true
}

// constantStump emits the partition's prior score on both sides, for empty
// or unsplittable partitions.
func constantStump(y []bool, w []float64, inLeft []bool, wantLeft bool, eps float64) Stump {
	var wp, wn float64
	for i := range w {
		if inLeft != nil && inLeft[i] != wantLeft {
			continue
		}
		if y[i] {
			wp += w[i]
		} else {
			wn += w[i]
		}
	}
	s := 0.5 * math.Log((wp+eps)/(wn+eps))
	return Stump{Feature: 0, Cut: 255, SLow: s, SHigh: s}
}

package ml

import (
	"fmt"
	"math"
	"sync/atomic"

	"nevermind/internal/parallel"
)

// Depth-2 boosted trees: the non-linear alternative the paper declines in
// §4.4 — "because of the existence of such noise in the training data,
// sophisticated non-linear models overfit easily, we hence choose a linear
// model". TrainBTree exists to test that claim on the simulated substrate
// (the BenchmarkAblationDepth ablation): each weak learner is a two-level
// tree (a root split and one split per side, four confidence-rated leaves).

// Tree is one depth-2 weak learner. An example routes left when
// bin(RootFeature) <= RootCut, then through the side's stump to one of four
// leaf scores.
type Tree struct {
	RootFeature int
	RootCut     uint8
	Left, Right Stump // leaf scores live in the child stumps
}

// Score routes one example through the tree.
func (t *Tree) Score(bm *BinnedMatrix, i int) float64 {
	child := &t.Right
	if bm.Bins[t.RootFeature][i] <= t.RootCut {
		child = &t.Left
	}
	if child.Feature < 0 { // constant leaf: no feature is consulted
		return child.SLow
	}
	if bm.Bins[child.Feature][i] <= child.Cut {
		return child.SLow
	}
	return child.SHigh
}

// BTree is a boosted ensemble of depth-2 trees.
type BTree struct {
	Trees []Tree
	Calib Calibration

	// compiled caches the partial per-bin table fold of this ensemble (see
	// compile.go); unexported so gob persistence skips it.
	compiled atomic.Pointer[CompiledBTree]
}

// TrainBTree boosts depth-2 trees. The greedy construction picks the best
// stump as the root, then fits the best stump inside each partition.
func TrainBTree(bm *BinnedMatrix, q *Quantizer, y []bool, opt TrainOptions) (*BTree, error) {
	if bm.N == 0 || len(bm.Bins) == 0 {
		return nil, fmt.Errorf("ml: empty training matrix")
	}
	if len(y) != bm.N {
		return nil, fmt.Errorf("ml: %d labels for %d examples", len(y), bm.N)
	}
	if opt.Rounds <= 0 {
		return nil, fmt.Errorf("ml: Rounds must be positive")
	}
	features := opt.Features
	if features == nil {
		features = make([]int, len(bm.Bins))
		for i := range features {
			features[i] = i
		}
	}
	if opt.TrimQuantile < 0 || opt.TrimQuantile >= 1 {
		return nil, fmt.Errorf("ml: TrimQuantile %g outside [0, 1)", opt.TrimQuantile)
	}
	eps := opt.Smooth
	if eps == 0 {
		eps = 1 / (2 * float64(bm.N))
	}

	n := bm.N
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / float64(n)
	}
	// Partition row-index slices: each side's histogram build touches only
	// its own rows instead of rescanning all N with a mask test.
	leftRows := make([]int, 0, n)
	rightRows := make([]int, 0, n)
	var trimBuf []int

	model := &BTree{}
	for t := 0; t < opt.Rounds; t++ {
		var rows []int
		rows, trimBuf = trimRows(w, opt.TrimQuantile, trimBuf)
		root, ok := bestStumpRows(bm, q, y, w, rows, features, eps, opt.Workers)
		if !ok {
			break
		}
		rootBins := bm.Bins[root.Feature]
		leftRows, rightRows = leftRows[:0], rightRows[:0]
		if rows == nil {
			for i := 0; i < n; i++ {
				if rootBins[i] <= root.Cut {
					leftRows = append(leftRows, i)
				} else {
					rightRows = append(rightRows, i)
				}
			}
		} else {
			for _, i := range rows {
				if rootBins[i] <= root.Cut {
					leftRows = append(leftRows, i)
				} else {
					rightRows = append(rightRows, i)
				}
			}
		}
		left, okL := bestStumpRows(bm, q, y, w, leftRows, features, eps, opt.Workers)
		right, okR := bestStumpRows(bm, q, y, w, rightRows, features, eps, opt.Workers)
		if !okL {
			left = constantStump(y, w, leftRows, eps)
		}
		if !okR {
			right = constantStump(y, w, rightRows, eps)
		}
		tree := Tree{RootFeature: root.Feature, RootCut: root.Cut, Left: left, Right: right}
		model.Trees = append(model.Trees, tree)

		total := 0.0
		for i := range w {
			s := tree.Score(bm, i)
			if y[i] {
				w[i] *= math.Exp(-s)
			} else {
				w[i] *= math.Exp(s)
			}
			total += w[i]
		}
		if total <= 0 || math.IsNaN(total) || math.IsInf(total, 0) {
			return nil, fmt.Errorf("ml: tree boosting degenerated at round %d", t)
		}
		for i := range w {
			w[i] /= total
		}
	}
	if len(model.Trees) == 0 {
		return nil, fmt.Errorf("ml: no tree could be trained")
	}
	return model, nil
}

// ScoreAll scores every example with the default worker count.
func (m *BTree) ScoreAll(bm *BinnedMatrix) []float64 {
	return m.ScoreAllWorkers(bm, 0)
}

// ScoreAllWorkers scores every example on the given number of workers
// (0 = GOMAXPROCS, 1 = sequential). Examples are chunked; each example's
// score accumulates over trees in ensemble order regardless of the worker
// count, so the output is bit-identical at any setting.
func (m *BTree) ScoreAllWorkers(bm *BinnedMatrix, workers int) []float64 {
	out := make([]float64, bm.N)
	parallel.For(bm.N, workers, func(_, start, end int) {
		for ti := range m.Trees {
			t := &m.Trees[ti]
			for i := start; i < end; i++ {
				out[i] += t.Score(bm, i)
			}
		}
	})
	return out
}

// Calibrate fits the ensemble's logistic calibration.
func (m *BTree) Calibrate(scores []float64, labels []bool) error {
	c, err := FitCalibration(scores, labels)
	if err != nil {
		return err
	}
	m.Calib = c
	return nil
}

// Probability converts a raw score to a posterior.
func (m *BTree) Probability(score float64) float64 { return m.Calib.Apply(score) }

// bestStumpRows finds the Z-minimising stump over the given example rows
// (nil = every example; row order must be ascending so weight sums keep the
// sequential accumulation order), searching the feature axis on the given
// number of workers (0 = GOMAXPROCS). TrainBTree passes each side's
// partition as a row-index slice, so a side's histogram build touches only
// its own rows instead of rescanning all N with a mask test.
//
// The reduction is order-fixed so the result is bit-identical to the
// sequential scan at any worker count: each worker scans one contiguous shard
// of the features slice with the sequential rule (strictly lower Z wins, so
// within a shard the earliest feature position and lowest cut break ties),
// and the per-shard winners are merged in shard order under the same strict
// rule. The composed comparison therefore realises exactly the sequential
// tie-break: lowest Z, then lowest position in features, then lowest cut.
func bestStumpRows(bm *BinnedMatrix, q *Quantizer, y []bool, w []float64, rows []int, features []int, eps float64, workers int) (Stump, bool) {
	type shardBest struct {
		stump Stump
		z     float64
	}
	shards := parallel.Chunks(len(features), workers)
	partial := make([]shardBest, len(shards))
	parallel.For(len(features), workers, func(shard, start, end int) {
		var wp, wn [maxStumpBins]float64
		best := Stump{Feature: -1}
		bestZ := math.Inf(1)
		for _, f := range features[start:end] {
			bins := bm.Bins[f]
			nb := q.NumBins(f)
			if nb < 2 {
				continue
			}
			for b := 0; b < nb; b++ {
				wp[b], wn[b] = 0, 0
			}
			if rows == nil {
				for i, b := range bins {
					if y[i] {
						wp[b] += w[i]
					} else {
						wn[b] += w[i]
					}
				}
			} else {
				for _, i := range rows {
					if y[i] {
						wp[bins[i]] += w[i]
					} else {
						wn[bins[i]] += w[i]
					}
				}
			}
			var tp, tn float64
			for b := 0; b < nb; b++ {
				tp += wp[b]
				tn += wn[b]
			}
			if tp+tn == 0 {
				continue
			}
			var lp, ln float64
			for c := 0; c < nb-1; c++ {
				lp += wp[c]
				ln += wn[c]
				rp, rn := tp-lp, tn-ln
				z := 2 * (math.Sqrt(lp*ln) + math.Sqrt(rp*rn))
				if z < bestZ {
					bestZ = z
					best = Stump{
						Feature: f,
						Cut:     uint8(c),
						SLow:    0.5 * math.Log((lp+eps)/(ln+eps)),
						SHigh:   0.5 * math.Log((rp+eps)/(rn+eps)),
					}
				}
			}
		}
		partial[shard] = shardBest{stump: best, z: bestZ}
	})
	best := Stump{Feature: -1}
	bestZ := math.Inf(1)
	for _, p := range partial {
		if p.stump.Feature >= 0 && p.z < bestZ {
			bestZ = p.z
			best = p.stump
		}
	}
	if best.Feature < 0 {
		return best, false
	}
	best.Threshold = q.CutValue(best.Feature, int(best.Cut))
	return best, true
}

// constantStump emits the partition's prior score on both sides, for empty
// or unsplittable partitions (rows nil = every example). Feature -1 marks
// the stump as constant so scoring and explanation never attribute it to a
// real feature (it used to reuse feature 0 with a bogus threshold, which
// misled Explain/TopFeatures).
func constantStump(y []bool, w []float64, rows []int, eps float64) Stump {
	var wp, wn float64
	if rows == nil {
		for i := range w {
			if y[i] {
				wp += w[i]
			} else {
				wn += w[i]
			}
		}
	} else {
		for _, i := range rows {
			if y[i] {
				wp += w[i]
			} else {
				wn += w[i]
			}
		}
	}
	s := 0.5 * math.Log((wp+eps)/(wn+eps))
	return Stump{Feature: -1, Cut: 255, SLow: s, SHigh: s, Threshold: float32(math.NaN())}
}

package ml

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"nevermind/internal/rng"
)

// synthProblem builds a learnable two-feature problem: y depends on a
// threshold of feature 0 and weakly on feature 1; feature 2 is pure noise.
func synthProblem(n int, seed uint64) ([]Column, []bool) {
	r := rng.New(seed)
	f0 := make([]float32, n)
	f1 := make([]float32, n)
	f2 := make([]float32, n)
	y := make([]bool, n)
	for i := 0; i < n; i++ {
		f0[i] = float32(r.Normal(0, 1))
		f1[i] = float32(r.Normal(0, 1))
		f2[i] = float32(r.Normal(0, 1))
		p := 0.08
		if f0[i] > 0.8 {
			p += 0.7
		}
		if f1[i] < -1 {
			p += 0.15
		}
		y[i] = r.Bool(p)
	}
	return []Column{
		{Name: "signal", Values: f0},
		{Name: "weak", Values: f1},
		{Name: "noise", Values: f2},
	}, y
}

func trainOn(t *testing.T, cols []Column, y []bool, rounds int) (*BStump, *Quantizer, *BinnedMatrix) {
	t.Helper()
	q, err := FitQuantizer(cols, 64)
	if err != nil {
		t.Fatal(err)
	}
	bm, err := q.Transform(cols)
	if err != nil {
		t.Fatal(err)
	}
	m, err := TrainBStump(bm, q, y, TrainOptions{Rounds: rounds})
	if err != nil {
		t.Fatal(err)
	}
	return m, q, bm
}

func TestQuantizerRoundTrip(t *testing.T) {
	cols, _ := synthProblem(500, 1)
	q, err := FitQuantizer(cols, 32)
	if err != nil {
		t.Fatal(err)
	}
	bm, err := q.Transform(cols)
	if err != nil {
		t.Fatal(err)
	}
	if bm.N != 500 || len(bm.Bins) != 3 {
		t.Fatalf("binned shape %dx%d", bm.N, len(bm.Bins))
	}
	// Bin order must respect value order.
	for f := 0; f < 3; f++ {
		for i := 0; i < bm.N; i++ {
			for j := 0; j < bm.N; j++ {
				if cols[f].Values[i] < cols[f].Values[j] && bm.Bins[f][i] > bm.Bins[f][j] {
					t.Fatalf("binning not monotone on feature %d", f)
				}
			}
		}
		break // one feature is plenty for the O(n^2) check
	}
}

func TestQuantizerCategorical(t *testing.T) {
	col := Column{Name: "flag", Categorical: true, Values: []float32{0, 1, 0, 1, 1}}
	q, err := FitQuantizer([]Column{col}, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Cuts[0]) != 1 || q.Cuts[0][0] != 0.5 {
		t.Fatalf("categorical cuts = %v", q.Cuts[0])
	}
	bm, _ := q.Transform([]Column{col})
	for i, v := range col.Values {
		want := uint8(0)
		if v == 1 {
			want = 1
		}
		if bm.Bins[0][i] != want {
			t.Fatalf("categorical bin of %v = %d", v, bm.Bins[0][i])
		}
	}
}

func TestQuantizerRejectsBadArgs(t *testing.T) {
	cols, _ := synthProblem(10, 1)
	if _, err := FitQuantizer(cols, 1); err == nil {
		t.Fatal("maxBins=1 accepted")
	}
	if _, err := FitQuantizer(cols, 1000); err == nil {
		t.Fatal("maxBins>256 accepted")
	}
	q, _ := FitQuantizer(cols, 16)
	if _, err := q.Transform(cols[:1]); err == nil {
		t.Fatal("schema mismatch accepted")
	}
	bad := []Column{cols[0], cols[1], {Name: "short", Values: []float32{1}}}
	if _, err := q.Transform(bad); err == nil {
		t.Fatal("ragged columns accepted")
	}
}

func TestBStumpLearnsSignal(t *testing.T) {
	cols, y := synthProblem(4000, 2)
	m, q, _ := trainOn(t, cols, y, 60)

	// Held-out data.
	testCols, testY := synthProblem(2000, 3)
	bmTest, err := q.Transform(testCols)
	if err != nil {
		t.Fatal(err)
	}
	scores := m.ScoreAll(bmTest)
	if auc := AUC(scores, testY); auc < 0.80 {
		t.Fatalf("held-out AUC %.3f, the problem is learnable to >0.8", auc)
	}
	// The first stump must split on the signal feature.
	if m.Stumps[0].Feature != 0 {
		t.Fatalf("first stump used feature %d, want the signal", m.Stumps[0].Feature)
	}
}

func TestBStumpTrainingErrorDecreases(t *testing.T) {
	cols, y := synthProblem(1500, 4)
	q, _ := FitQuantizer(cols, 64)
	bm, _ := q.Transform(cols)
	short, err := TrainBStump(bm, q, y, TrainOptions{Rounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	long, err := TrainBStump(bm, q, y, TrainOptions{Rounds: 80})
	if err != nil {
		t.Fatal(err)
	}
	errRate := func(m *BStump) float64 {
		s := m.ScoreAll(bm)
		wrong := 0
		for i := range s {
			if (s[i] > 0) != y[i] {
				wrong++
			}
		}
		return float64(wrong) / float64(len(y))
	}
	if errRate(long) > errRate(short) {
		t.Fatalf("training error rose with more rounds: %v → %v", errRate(short), errRate(long))
	}
}

func TestScoreAllMatchesScore(t *testing.T) {
	cols, y := synthProblem(600, 5)
	m, _, bm := trainOn(t, cols, y, 25)
	all := m.ScoreAll(bm)
	for i := 0; i < bm.N; i += 37 {
		if math.Abs(all[i]-m.Score(bm, i)) > 1e-12 {
			t.Fatalf("ScoreAll[%d]=%v but Score=%v", i, all[i], m.Score(bm, i))
		}
	}
}

func TestTrainDeterministic(t *testing.T) {
	cols, y := synthProblem(800, 6)
	a, _, _ := trainOn(t, cols, y, 30)
	b, _, _ := trainOn(t, cols, y, 30)
	if len(a.Stumps) != len(b.Stumps) {
		t.Fatal("stump counts differ across identical trainings")
	}
	for i := range a.Stumps {
		if a.Stumps[i] != b.Stumps[i] {
			t.Fatalf("stump %d differs", i)
		}
	}
}

func TestTrainOptionsValidation(t *testing.T) {
	cols, y := synthProblem(100, 7)
	q, _ := FitQuantizer(cols, 16)
	bm, _ := q.Transform(cols)
	if _, err := TrainBStump(bm, q, y, TrainOptions{Rounds: 0}); err == nil {
		t.Fatal("zero rounds accepted")
	}
	if _, err := TrainBStump(bm, q, y[:10], TrainOptions{Rounds: 5}); err == nil {
		t.Fatal("label mismatch accepted")
	}
	if _, err := TrainBStump(bm, q, y, TrainOptions{Rounds: 5, Features: []int{99}}); err == nil {
		t.Fatal("out-of-range feature restriction accepted")
	}
	if _, err := TrainBStump(&BinnedMatrix{}, q, nil, TrainOptions{Rounds: 5}); err == nil {
		t.Fatal("empty matrix accepted")
	}
}

func TestFeatureRestriction(t *testing.T) {
	cols, y := synthProblem(1500, 8)
	q, _ := FitQuantizer(cols, 64)
	bm, _ := q.Transform(cols)
	m, err := TrainBStump(bm, q, y, TrainOptions{Rounds: 20, Features: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range m.Stumps {
		if st.Feature != 2 {
			t.Fatalf("restricted training used feature %d", st.Feature)
		}
	}
}

func TestConstantFeaturesRejected(t *testing.T) {
	n := 50
	c := Column{Name: "const", Values: make([]float32, n)}
	y := make([]bool, n)
	for i := range y {
		y[i] = i%2 == 0
	}
	q, _ := FitQuantizer([]Column{c}, 16)
	bm, _ := q.Transform([]Column{c})
	if _, err := TrainBStump(bm, q, y, TrainOptions{Rounds: 5}); err == nil {
		t.Fatal("training on a constant feature should fail")
	}
}

func TestExplainMentionsFeatureName(t *testing.T) {
	cols, y := synthProblem(800, 9)
	m, _, _ := trainOn(t, cols, y, 5)
	s := m.Explain(0)
	if !strings.Contains(s, "signal") && !strings.Contains(s, "weak") && !strings.Contains(s, "noise") {
		t.Fatalf("Explain(0) = %q lacks a feature name", s)
	}
	if !strings.Contains(s, "then") {
		t.Fatalf("Explain(0) = %q not in rule form", s)
	}
}

// Property: on random labelable data, training must terminate and produce
// finite scores.
func TestTrainFiniteScoresProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		cols, y := synthProblem(200, seed)
		// Ensure both classes present.
		hasPos, hasNeg := false, false
		for _, v := range y {
			if v {
				hasPos = true
			} else {
				hasNeg = true
			}
		}
		if !hasPos || !hasNeg {
			return true
		}
		q, err := FitQuantizer(cols, 32)
		if err != nil {
			return false
		}
		bm, err := q.Transform(cols)
		if err != nil {
			return false
		}
		m, err := TrainBStump(bm, q, y, TrainOptions{Rounds: 15})
		if err != nil {
			return false
		}
		for _, s := range m.ScoreAll(bm) {
			if math.IsNaN(s) || math.IsInf(s, 0) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCalibrationMapsToProbabilities(t *testing.T) {
	cols, y := synthProblem(3000, 10)
	m, q, bm := trainOn(t, cols, y, 40)
	scores := m.ScoreAll(bm)
	if err := m.Calibrate(scores, y); err != nil {
		t.Fatal(err)
	}
	testCols, testY := synthProblem(3000, 11)
	bmT, _ := q.Transform(testCols)
	testScores := m.ScoreAll(bmT)

	// Probabilities must be in (0,1) and monotone in the score.
	prev := -1.0
	for _, s := range []float64{-5, -1, 0, 1, 5} {
		p := m.Probability(s)
		if p <= 0 || p >= 1 {
			t.Fatalf("P(%v) = %v", s, p)
		}
		if p < prev {
			t.Fatalf("calibration not monotone at %v", s)
		}
		prev = p
	}

	// Reliability: among high-probability test examples the positive rate
	// should exceed the base rate substantially.
	base := 0.0
	for _, v := range testY {
		if v {
			base++
		}
	}
	base /= float64(len(testY))
	var hi, hiPos float64
	for i, s := range testScores {
		if m.Probability(s) > 0.5 {
			hi++
			if testY[i] {
				hiPos++
			}
		}
	}
	if hi > 20 && hiPos/hi < 2*base {
		t.Fatalf("calibrated >0.5 bucket has positive rate %.2f vs base %.2f", hiPos/hi, base)
	}
}

func TestCalibrationRejectsDegenerate(t *testing.T) {
	if _, err := FitCalibration([]float64{1, 2}, []bool{true, true}); err == nil {
		t.Fatal("single-class calibration accepted")
	}
	if _, err := FitCalibration(nil, nil); err == nil {
		t.Fatal("empty calibration accepted")
	}
	if _, err := FitCalibration([]float64{1}, []bool{true, false}); err == nil {
		t.Fatal("mismatched calibration accepted")
	}
}

func TestUncalibratedProbabilityIsSigmoid(t *testing.T) {
	m := &BStump{}
	if p := m.Probability(0); math.Abs(p-0.5) > 1e-12 {
		t.Fatalf("sigma(0) = %v", p)
	}
	if p := m.Probability(3); math.Abs(p-1/(1+math.Exp(-3))) > 1e-12 {
		t.Fatalf("sigma(3) = %v", p)
	}
}

func TestFeatureImportance(t *testing.T) {
	cols, y := synthProblem(2500, 12)
	m, _, _ := trainOn(t, cols, y, 40)
	imp := m.FeatureImportance()
	if len(imp) == 0 {
		t.Fatal("no feature importance")
	}
	// The signal feature must dominate the noise feature.
	if imp[0] <= imp[2] {
		t.Fatalf("signal importance %v <= noise importance %v", imp[0], imp[2])
	}
	// Importance sums the per-stump swings.
	var total float64
	for _, st := range m.Stumps {
		d := st.SHigh - st.SLow
		if d < 0 {
			d = -d
		}
		total += d
	}
	var sum float64
	for _, w := range imp {
		sum += w
	}
	if math.Abs(sum-total) > 1e-9 {
		t.Fatalf("importance mass %v != stump swings %v", sum, total)
	}
}

func TestTopFeatures(t *testing.T) {
	cols, y := synthProblem(2500, 13)
	m, _, _ := trainOn(t, cols, y, 40)
	top := m.TopFeatures(2)
	if len(top) != 2 {
		t.Fatalf("%d top features", len(top))
	}
	if top[0].Weight < top[1].Weight {
		t.Fatal("top features not sorted")
	}
	if top[0].Name != "signal" {
		t.Fatalf("top feature %q, want the signal", top[0].Name)
	}
	// Oversized k clamps.
	if got := m.TopFeatures(100); len(got) > 3 {
		t.Fatalf("%d features from a 3-feature problem", len(got))
	}
}

func BenchmarkFitQuantizer(b *testing.B) {
	cols, _ := synthProblem(20000, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitQuantizer(cols, 128); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTransform(b *testing.B) {
	cols, _ := synthProblem(20000, 51)
	q, _ := FitQuantizer(cols, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.Transform(cols); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainBStump100Rounds(b *testing.B) {
	cols, y := synthProblem(20000, 52)
	q, _ := FitQuantizer(cols, 128)
	bm, _ := q.Transform(cols)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TrainBStump(bm, q, y, TrainOptions{Rounds: 100}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScoreAll(b *testing.B) {
	cols, y := synthProblem(20000, 53)
	q, _ := FitQuantizer(cols, 128)
	bm, _ := q.Transform(cols)
	m, _ := TrainBStump(bm, q, y, TrainOptions{Rounds: 100})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.ScoreAll(bm)
	}
}

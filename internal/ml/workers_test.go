package ml

import (
	"math"
	"runtime"
	"testing"
)

// workerCounts are the knob settings every determinism test sweeps: the exact
// sequential path, a forced multi-chunk path, and the machine default.
func workerCounts() []int {
	return []int{1, 2, 4, runtime.GOMAXPROCS(0)}
}

// TestTrainBStumpIdenticalAcrossWorkers is the tentpole's contract: the
// parallel stump search merges per-shard argmins in shard order, so the
// trained model is bit-identical at any worker count.
func TestTrainBStumpIdenticalAcrossWorkers(t *testing.T) {
	cols, y := synthProblem(5000, 31)
	q, err := FitQuantizer(cols, 64)
	if err != nil {
		t.Fatal(err)
	}
	bm, err := q.Transform(cols)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := TrainBStump(bm, q, y, TrainOptions{Rounds: 40, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workerCounts() {
		m, err := TrainBStump(bm, q, y, TrainOptions{Rounds: 40, Workers: w})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if len(m.Stumps) != len(ref.Stumps) {
			t.Fatalf("workers=%d: %d stumps vs %d sequential", w, len(m.Stumps), len(ref.Stumps))
		}
		for i := range m.Stumps {
			if m.Stumps[i] != ref.Stumps[i] {
				t.Fatalf("workers=%d: stump %d = %+v, sequential %+v", w, i, m.Stumps[i], ref.Stumps[i])
			}
		}
	}
}

func TestTrainBTreeIdenticalAcrossWorkers(t *testing.T) {
	cols, y := xorProblem(3000, 9)
	q, _ := FitQuantizer(cols, 64)
	bm, _ := q.Transform(cols)
	ref, err := TrainBTree(bm, q, y, TrainOptions{Rounds: 20, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workerCounts() {
		m, err := TrainBTree(bm, q, y, TrainOptions{Rounds: 20, Workers: w})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if len(m.Trees) != len(ref.Trees) {
			t.Fatalf("workers=%d: %d trees vs %d", w, len(m.Trees), len(ref.Trees))
		}
		for i := range m.Trees {
			if m.Trees[i] != ref.Trees[i] {
				t.Fatalf("workers=%d: tree %d differs", w, i)
			}
		}
	}
}

func TestFeatureScoresIdenticalAcrossWorkers(t *testing.T) {
	cols, y := selProblem(12000, 21)
	for _, crit := range []Criterion{CritTopNAP, CritAUC, CritAvgPrec, CritGainRatio} {
		ref, err := FeatureScores(cols, y, crit, SelectOptions{N: 400, Seed: 5, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range workerCounts() {
			got, err := FeatureScores(cols, y, crit, SelectOptions{N: 400, Seed: 5, Workers: w})
			if err != nil {
				t.Fatalf("%v workers=%d: %v", crit, w, err)
			}
			for i := range got {
				if got[i] != ref[i] {
					t.Fatalf("%v workers=%d: score[%d] = %v, sequential %v", crit, w, i, got[i], ref[i])
				}
			}
		}
	}
}

func TestScoreAllIdenticalAcrossWorkers(t *testing.T) {
	cols, y := synthProblem(7001, 13) // odd length: uneven chunks
	q, _ := FitQuantizer(cols, 64)
	bm, _ := q.Transform(cols)
	m, err := TrainBStump(bm, q, y, TrainOptions{Rounds: 30})
	if err != nil {
		t.Fatal(err)
	}
	ref := m.ScoreAllWorkers(bm, 1)
	for _, w := range workerCounts() {
		got := m.ScoreAllWorkers(bm, w)
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: score[%d] = %v, sequential %v", w, i, got[i], ref[i])
			}
		}
	}
	tr, err := TrainBTree(bm, q, y, TrainOptions{Rounds: 10})
	if err != nil {
		t.Fatal(err)
	}
	refT := tr.ScoreAllWorkers(bm, 1)
	for _, w := range workerCounts() {
		got := tr.ScoreAllWorkers(bm, w)
		for i := range got {
			if got[i] != refT[i] {
				t.Fatalf("tree workers=%d: score[%d] differs", w, i)
			}
		}
	}
}

func TestTransformIdenticalAcrossWorkers(t *testing.T) {
	cols, _ := synthProblem(4999, 17)
	q, err := FitQuantizer(cols, 128)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := q.TransformWorkers(cols, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workerCounts() {
		got, err := q.TransformWorkers(cols, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for f := range ref.Bins {
			for i := range ref.Bins[f] {
				if got.Bins[f][i] != ref.Bins[f][i] {
					t.Fatalf("workers=%d: bin[%d][%d] differs", w, f, i)
				}
			}
		}
	}
}

// TestBestStumpTieBreakAcrossWorkers plants an exact Z tie between a feature
// in the first shard and one in a later shard: the merged winner must be the
// earlier feature at every worker count, as in the sequential scan.
func TestBestStumpTieBreakAcrossWorkers(t *testing.T) {
	n := 1000
	dup := make([]float32, n)
	y := make([]bool, n)
	for i := 0; i < n; i++ {
		dup[i] = float32(i % 7)
		y[i] = i%7 >= 4
	}
	// Eight identical copies: every split has identical Z on every feature.
	cols := make([]Column, 8)
	for c := range cols {
		cols[c] = Column{Name: "f", Values: dup}
	}
	q, _ := FitQuantizer(cols, 16)
	bm, _ := q.Transform(cols)
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / float64(n)
	}
	feats := make([]int, len(cols))
	for i := range feats {
		feats[i] = i
	}
	for _, workers := range []int{1, 2, 3, 8} {
		best, ok := bestStumpRows(bm, q, y, w, nil, feats, 1e-4, workers)
		if !ok {
			t.Fatalf("workers=%d: no stump", workers)
		}
		if best.Feature != 0 {
			t.Fatalf("workers=%d: tie broken to feature %d, want 0", workers, best.Feature)
		}
	}
}

// TestConstantStumpMarkedAndScored covers the constant-stump fix: a tree
// partition that cannot be split yields Feature -1, which Score/ScoreAll
// treat as an unconditional leaf and Explain renders without attributing a
// feature-0 threshold.
func TestConstantStumpMarkedAndScored(t *testing.T) {
	st := constantStump([]bool{true, true, false}, []float64{0.5, 0.25, 0.25}, nil, 1e-3)
	if st.Feature != -1 {
		t.Fatalf("constant stump Feature = %d, want -1", st.Feature)
	}
	if st.SLow != st.SHigh {
		t.Fatalf("constant stump scores differ: %v vs %v", st.SLow, st.SHigh)
	}
	if !math.IsNaN(float64(st.Threshold)) {
		t.Fatalf("constant stump carries threshold %v", st.Threshold)
	}

	bm := &BinnedMatrix{N: 2, Names: []string{"real"}, Bins: [][]uint8{{0, 3}}}
	m := &BStump{
		Stumps: []Stump{
			{Feature: 0, Cut: 1, SLow: -1, SHigh: 1, Threshold: 2.5},
			{Feature: -1, Cut: 255, SLow: 0.25, SHigh: 0.25},
		},
		Names: []string{"real"},
	}
	want := []float64{-0.75, 1.25}
	all := m.ScoreAll(bm)
	for i := range want {
		if all[i] != want[i] {
			t.Fatalf("ScoreAll[%d] = %v, want %v", i, all[i], want[i])
		}
		if s := m.Score(bm, i); s != want[i] {
			t.Fatalf("Score(%d) = %v, want %v", i, s, want[i])
		}
	}
	if pre := m.ScorePrefix(bm, 2); pre[0] != want[0] || pre[1] != want[1] {
		t.Fatalf("ScorePrefix = %v, want %v", pre, want)
	}

	if got := m.Explain(1); got != "constant +0.250" {
		t.Fatalf("Explain(constant) = %q", got)
	}
	if imp := m.FeatureImportance(); imp[-1] != 0 || len(imp) != 1 {
		t.Fatalf("constant stump leaked into importance: %v", imp)
	}

	// A tree whose left partition is constant routes through it without
	// consulting any feature.
	tree := Tree{
		RootFeature: 0, RootCut: 0,
		Left:  Stump{Feature: -1, Cut: 255, SLow: 2, SHigh: 2},
		Right: Stump{Feature: 0, Cut: 2, SLow: -1, SHigh: 1},
	}
	if got := tree.Score(bm, 0); got != 2 {
		t.Fatalf("constant left leaf scored %v, want 2", got)
	}
	if got := tree.Score(bm, 1); got != 1 {
		t.Fatalf("right leaf scored %v, want 1", got)
	}
}

func TestSubsetRows(t *testing.T) {
	bm := &BinnedMatrix{N: 5, Names: []string{"a", "b"}, Bins: [][]uint8{
		{0, 1, 2, 3, 4},
		{9, 8, 7, 6, 5},
	}}
	sub := bm.SubsetRows([]int{4, 0, 2})
	if sub.N != 3 {
		t.Fatalf("subset N = %d", sub.N)
	}
	if sub.Bins[0][0] != 4 || sub.Bins[0][1] != 0 || sub.Bins[0][2] != 2 {
		t.Fatalf("subset feature 0 = %v", sub.Bins[0])
	}
	if sub.Bins[1][0] != 5 || sub.Bins[1][1] != 9 || sub.Bins[1][2] != 7 {
		t.Fatalf("subset feature 1 = %v", sub.Bins[1])
	}
}

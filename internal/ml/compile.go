package ml

import (
	"sort"
	"time"

	"nevermind/internal/parallel"
)

// Compiled inference: a trained ensemble folded into per-(feature, bin)
// score lookup tables — the LightGBM-style leaf-table trick. A boosted-stump
// score f(x) = Σ_t g_t(x) is a sum of per-feature step functions, so every
// stump on feature f can be pre-summed into a table of f's possible bins
// (uint8, at most maxStumpBins entries). Batch scoring then costs one table
// lookup per *used feature* per example, independent of the round count T —
// at T = 200+ rounds over a few dozen features this is several times faster
// than the stump-major reference pass (see BenchmarkScoreCompiled).
//
// Determinism contract (what "the same model" means after folding):
//
//   - each feature's per-bin contribution accumulates over the ensemble in
//     training order (stump t before stump t+1);
//   - constant stumps (Feature == -1) fold into a single Bias term, in
//     training order;
//   - an example's score sums Bias first, then the feature groups in
//     ascending feature order.
//
// The construction is therefore a pure function of the ensemble, identical
// at any worker count, and bit-identical run to run. The folded sum
// reassociates the reference ensemble-order sum, so compiled and reference
// scores agree to floating-point error (≤ 1e-9; enforced by the Compiled*
// equivalence tests), not bit-for-bit.

// CompiledScorer is a BStump ensemble folded into per-bin score tables.
type CompiledScorer struct {
	// Bias is the summed output of every constant (Feature == -1) stump.
	Bias float64
	// Features lists the real features the ensemble consults, ascending.
	Features []int
	// Tables[k][b] is the total contribution of feature Features[k] when an
	// example's bin is b, accumulated over the ensemble in training order.
	// Every table has maxStumpBins entries so a uint8 bin can never miss.
	Tables [][]float64
	// CompiledAt is the ensemble length the tables were folded from. The
	// scorer is stale for an ensemble of any other length (see StaleFor);
	// BStump.Compiled uses it to re-fold after ensemble mutation.
	CompiledAt int
}

// CompileBStump folds the ensemble into per-bin tables. The model is not
// retained; use BStump.Compiled for the cached, staleness-checked accessor.
func CompileBStump(m *BStump) *CompiledScorer {
	c := &CompiledScorer{CompiledAt: len(m.Stumps)}
	tabs := map[int][]float64{}
	for _, st := range m.Stumps {
		if st.Feature < 0 {
			c.Bias += st.SLow // constant stump: SLow == SHigh
			continue
		}
		tab := tabs[st.Feature]
		if tab == nil {
			tab = make([]float64, maxStumpBins)
			tabs[st.Feature] = tab
		}
		cut := int(st.Cut)
		for b := 0; b <= cut; b++ {
			tab[b] += st.SLow
		}
		for b := cut + 1; b < maxStumpBins; b++ {
			tab[b] += st.SHigh
		}
	}
	c.Features = make([]int, 0, len(tabs))
	for f := range tabs {
		c.Features = append(c.Features, f)
	}
	sort.Ints(c.Features)
	c.Tables = make([][]float64, len(c.Features))
	for k, f := range c.Features {
		c.Tables[k] = tabs[f]
	}
	return c
}

// StaleFor reports whether the tables were folded from an ensemble of a
// different length than rounds (the cheap mutation signal: boosting only
// ever appends weak learners).
func (c *CompiledScorer) StaleFor(rounds int) bool {
	return c == nil || c.CompiledAt != rounds
}

// Score returns the compiled score of example i.
func (c *CompiledScorer) Score(bm *BinnedMatrix, i int) float64 {
	s := c.Bias
	for k, f := range c.Features {
		s += c.Tables[k][bm.Bins[f][i]]
	}
	return s
}

// ScoreAll scores every example with the default worker count.
func (c *CompiledScorer) ScoreAll(bm *BinnedMatrix) []float64 {
	return c.ScoreAllWorkers(bm, 0)
}

// ScoreAllWorkers scores every example on the given number of workers
// (0 = GOMAXPROCS, 1 = sequential), feature-major within each example chunk.
// Per example the accumulation order is fixed (Bias, then ascending
// features), so the output is bit-identical at any worker count.
func (c *CompiledScorer) ScoreAllWorkers(bm *BinnedMatrix, workers int) []float64 {
	if scoreObserver.Load() != nil {
		defer observeScore(bm.N, time.Now())
	}
	out := make([]float64, bm.N)
	parallel.For(bm.N, workers, func(_, start, end int) {
		if c.Bias != 0 {
			for i := start; i < end; i++ {
				out[i] = c.Bias
			}
		}
		for k, f := range c.Features {
			tab := c.Tables[k][:maxStumpBins] // len hint: uint8 index can't miss
			bins := bm.Bins[f]
			for i := start; i < end; i++ {
				out[i] += tab[bins[i]]
			}
		}
	})
	return out
}

// Compiled returns the ensemble folded into per-bin tables, compiling on
// first use and re-folding whenever the ensemble length changed since the
// last fold. Safe for concurrent scorers; the field is never serialised, so
// a gob-loaded model simply re-folds on first use.
func (m *BStump) Compiled() *CompiledScorer {
	if c := m.compiled.Load(); !c.StaleFor(len(m.Stumps)) {
		return c
	}
	c := CompileBStump(m)
	m.compiled.Store(c)
	return c
}

// CompiledBTree is a BTree ensemble folded as far as depth-2 trees allow.
// A tree whose two children are constant leaves or split the root feature
// again is a step function of the root bin alone and folds into a per-bin
// table exactly like a stump. Trees whose children consult a second feature
// are genuine two-feature interactions — no additive per-feature table can
// represent them — and stay in Residual, scored directly (still branch-free
// on hoisted bin rows). Table contributions accumulate in training order;
// an example's score sums the feature groups ascending, then the residual
// trees in training order.
type CompiledBTree struct {
	Features   []int
	Tables     [][]float64
	Residual   []Tree
	CompiledAt int
}

// foldableSide reports whether a child stump depends on nothing beyond the
// root feature's bin.
func foldableSide(root int, s Stump) bool {
	return s.Feature < 0 || s.Feature == root
}

// sideValue evaluates a foldable child at root bin b.
func sideValue(s Stump, b int) float64 {
	if s.Feature < 0 || b <= int(s.Cut) {
		return s.SLow
	}
	return s.SHigh
}

// CompileBTree folds the ensemble. Use BTree.Compiled for the cached,
// staleness-checked accessor.
func CompileBTree(m *BTree) *CompiledBTree {
	c := &CompiledBTree{CompiledAt: len(m.Trees)}
	tabs := map[int][]float64{}
	for _, t := range m.Trees {
		if !foldableSide(t.RootFeature, t.Left) || !foldableSide(t.RootFeature, t.Right) {
			c.Residual = append(c.Residual, t)
			continue
		}
		tab := tabs[t.RootFeature]
		if tab == nil {
			tab = make([]float64, maxStumpBins)
			tabs[t.RootFeature] = tab
		}
		for b := 0; b < maxStumpBins; b++ {
			if b <= int(t.RootCut) {
				tab[b] += sideValue(t.Left, b)
			} else {
				tab[b] += sideValue(t.Right, b)
			}
		}
	}
	c.Features = make([]int, 0, len(tabs))
	for f := range tabs {
		c.Features = append(c.Features, f)
	}
	sort.Ints(c.Features)
	c.Tables = make([][]float64, len(c.Features))
	for k, f := range c.Features {
		c.Tables[k] = tabs[f]
	}
	return c
}

// StaleFor reports whether the fold predates an ensemble of length rounds.
func (c *CompiledBTree) StaleFor(rounds int) bool {
	return c == nil || c.CompiledAt != rounds
}

// ScoreAll scores every example with the default worker count.
func (c *CompiledBTree) ScoreAll(bm *BinnedMatrix) []float64 {
	return c.ScoreAllWorkers(bm, 0)
}

// ScoreAllWorkers scores every example; bit-identical at any worker count
// (fixed per-example accumulation order: tables ascending by feature, then
// residual trees in training order).
func (c *CompiledBTree) ScoreAllWorkers(bm *BinnedMatrix, workers int) []float64 {
	if scoreObserver.Load() != nil {
		defer observeScore(bm.N, time.Now())
	}
	out := make([]float64, bm.N)
	parallel.For(bm.N, workers, func(_, start, end int) {
		for k, f := range c.Features {
			tab := c.Tables[k][:maxStumpBins]
			bins := bm.Bins[f]
			for i := start; i < end; i++ {
				out[i] += tab[bins[i]]
			}
		}
		for ti := range c.Residual {
			t := &c.Residual[ti]
			rootBins := bm.Bins[t.RootFeature]
			var leftBins, rightBins []uint8
			if t.Left.Feature >= 0 {
				leftBins = bm.Bins[t.Left.Feature]
			}
			if t.Right.Feature >= 0 {
				rightBins = bm.Bins[t.Right.Feature]
			}
			for i := start; i < end; i++ {
				child, childBins := &t.Left, leftBins
				if rootBins[i] > t.RootCut {
					child, childBins = &t.Right, rightBins
				}
				switch {
				case childBins == nil: // constant leaf
					out[i] += child.SLow
				case childBins[i] <= child.Cut:
					out[i] += child.SLow
				default:
					out[i] += child.SHigh
				}
			}
		}
	})
	return out
}

// Compiled returns the cached fold, re-folding after ensemble mutation.
func (m *BTree) Compiled() *CompiledBTree {
	if c := m.compiled.Load(); !c.StaleFor(len(m.Trees)) {
		return c
	}
	c := CompileBTree(m)
	m.compiled.Store(c)
	return c
}

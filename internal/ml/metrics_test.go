package ml

import (
	"math"
	"testing"
	"testing/quick"

	"nevermind/internal/rng"
)

func TestRankDescOrdersAndBreaksTies(t *testing.T) {
	idx := RankDesc([]float64{1, 3, 3, 0, 2})
	want := []int{1, 2, 4, 0, 3}
	for i := range want {
		if idx[i] != want[i] {
			t.Fatalf("RankDesc = %v, want %v", idx, want)
		}
	}
}

func TestPrecisionAtK(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.7, 0.6, 0.5}
	labels := []bool{true, false, true, false, false}
	if p := PrecisionAtK(scores, labels, 1); p != 1 {
		t.Fatalf("P@1 = %v", p)
	}
	if p := PrecisionAtK(scores, labels, 2); p != 0.5 {
		t.Fatalf("P@2 = %v", p)
	}
	if p := PrecisionAtK(scores, labels, 5); p != 0.4 {
		t.Fatalf("P@5 = %v", p)
	}
	if p := PrecisionAtK(scores, labels, 100); p != 0.4 {
		t.Fatalf("P@100 (clamped) = %v", p)
	}
	if p := PrecisionAtK(scores, labels, 0); p != 0 {
		t.Fatalf("P@0 = %v", p)
	}
}

func TestPrecisionCurveMatchesPointwise(t *testing.T) {
	r := rng.New(3)
	n := 500
	scores := make([]float64, n)
	labels := make([]bool, n)
	for i := range scores {
		scores[i] = r.Float64()
		labels[i] = r.Bool(0.3)
	}
	ks := []int{1, 7, 50, 123, 500}
	curve := PrecisionCurve(scores, labels, ks)
	for j, k := range ks {
		if want := PrecisionAtK(scores, labels, k); math.Abs(curve[j]-want) > 1e-12 {
			t.Fatalf("curve@%d = %v, pointwise %v", k, curve[j], want)
		}
	}
}

func TestTopNAPPerfectRanking(t *testing.T) {
	// All positives ranked first: Prec(r) = 1 at each positive rank.
	scores := []float64{5, 4, 3, 2, 1}
	labels := []bool{true, true, false, false, false}
	// AP(2) = (1 + 1)/2 = 1.
	if ap := TopNAveragePrecision(scores, labels, 2); math.Abs(ap-1) > 1e-12 {
		t.Fatalf("AP(2) = %v, want 1", ap)
	}
	// AP(5) = (1+1)/5 = 0.4: normalised by N, not by #positives.
	if ap := TopNAveragePrecision(scores, labels, 5); math.Abs(ap-0.4) > 1e-12 {
		t.Fatalf("AP(5) = %v, want 0.4", ap)
	}
}

func TestTopNAPWorstRanking(t *testing.T) {
	scores := []float64{5, 4, 3}
	labels := []bool{false, false, true}
	// Positive at rank 3: AP(3) = (1/3)/3.
	if ap := TopNAveragePrecision(scores, labels, 3); math.Abs(ap-1.0/9) > 1e-12 {
		t.Fatalf("AP(3) = %v, want 1/9", ap)
	}
	// Budget 2 misses the positive entirely.
	if ap := TopNAveragePrecision(scores, labels, 2); ap != 0 {
		t.Fatalf("AP(2) = %v, want 0", ap)
	}
}

func TestTopNAPInUnitInterval(t *testing.T) {
	err := quick.Check(func(seed uint64, nRaw uint8) bool {
		r := rng.New(seed)
		n := int(nRaw)%50 + 2
		scores := make([]float64, n)
		labels := make([]bool, n)
		for i := range scores {
			scores[i] = r.Float64()
			labels[i] = r.Bool(0.4)
		}
		ap := TopNAveragePrecision(scores, labels, n/2+1)
		return ap >= 0 && ap <= 1
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

// AP(N) must favour rankings that pack positives high: swapping a positive
// above an adjacent negative can never decrease it.
func TestTopNAPMonotoneUnderSwaps(t *testing.T) {
	labels := []bool{false, true, false, true, false, false}
	base := []float64{6, 5, 4, 3, 2, 1}
	apBase := TopNAveragePrecision(base, labels, 4)
	better := []float64{6, 7, 4, 3, 2, 1} // positive moves to rank 1
	if TopNAveragePrecision(better, labels, 4) < apBase {
		t.Fatal("promoting a positive lowered AP(N)")
	}
}

func TestAveragePrecisionClassic(t *testing.T) {
	scores := []float64{4, 3, 2, 1}
	labels := []bool{true, false, true, false}
	// positives at ranks 1 and 3: AP = (1/1 + 2/3)/2.
	want := (1.0 + 2.0/3) / 2
	if ap := AveragePrecision(scores, labels); math.Abs(ap-want) > 1e-12 {
		t.Fatalf("AP = %v, want %v", ap, want)
	}
	if ap := AveragePrecision(scores, []bool{false, false, false, false}); ap != 0 {
		t.Fatalf("AP with no positives = %v", ap)
	}
}

func TestAUCKnownValues(t *testing.T) {
	// Perfect separation.
	if a := AUC([]float64{3, 2, 1, 0}, []bool{true, true, false, false}); a != 1 {
		t.Fatalf("perfect AUC = %v", a)
	}
	// Inverted.
	if a := AUC([]float64{0, 1, 2, 3}, []bool{true, true, false, false}); a != 0 {
		t.Fatalf("inverted AUC = %v", a)
	}
	// All ties → 0.5.
	if a := AUC([]float64{1, 1, 1, 1}, []bool{true, false, true, false}); a != 0.5 {
		t.Fatalf("tied AUC = %v", a)
	}
	// Single class → 0.5 by convention.
	if a := AUC([]float64{1, 2}, []bool{true, true}); a != 0.5 {
		t.Fatalf("single-class AUC = %v", a)
	}
}

func TestAUCMatchesBruteForce(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		n := 40
		scores := make([]float64, n)
		labels := make([]bool, n)
		for i := range scores {
			scores[i] = float64(r.Intn(10)) // force ties
			labels[i] = r.Bool(0.5)
		}
		got := AUC(scores, labels)
		// Brute force over positive-negative pairs.
		var wins, ties, pairs float64
		for i := 0; i < n; i++ {
			if !labels[i] {
				continue
			}
			for j := 0; j < n; j++ {
				if labels[j] {
					continue
				}
				pairs++
				switch {
				case scores[i] > scores[j]:
					wins++
				case scores[i] == scores[j]:
					ties++
				}
			}
		}
		want := 0.5
		if pairs > 0 {
			want = (wins + ties/2) / pairs
		}
		return math.Abs(got-want) < 1e-9
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCDF(t *testing.T) {
	values := []float64{1, 2, 2, 5}
	got := CDF(values, []float64{0, 1, 2, 4.9, 5, 10})
	want := []float64{0, 0.25, 0.75, 0.75, 1, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("CDF = %v, want %v", got, want)
		}
	}
	if out := CDF(nil, []float64{1}); out[0] != 0 {
		t.Fatal("empty CDF should be zero")
	}
}

func TestCDFMonotone(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		values := make([]float64, 30)
		for i := range values {
			values[i] = r.Normal(0, 2)
		}
		xs := []float64{-3, -1, 0, 1, 3}
		cdf := CDF(values, xs)
		for i := 1; i < len(cdf); i++ {
			if cdf[i] < cdf[i-1] {
				return false
			}
		}
		return cdf[0] >= 0 && cdf[len(cdf)-1] <= 1
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]float64{0.05, 0.15, 0.15, 0.95, -3, 99}, 0, 1, 10)
	if h[0] != 2 { // 0.05 and the clamped -3
		t.Fatalf("bin 0 = %d", h[0])
	}
	if h[1] != 2 {
		t.Fatalf("bin 1 = %d", h[1])
	}
	if h[9] != 2 { // 0.95 and the clamped 99
		t.Fatalf("bin 9 = %d", h[9])
	}
	total := 0
	for _, c := range h {
		total += c
	}
	if total != 6 {
		t.Fatalf("histogram loses mass: %d", total)
	}
}

func TestMetricsPanicOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch should panic")
		}
	}()
	PrecisionAtK([]float64{1}, []bool{true, false}, 1)
}

package ml

import (
	"math"
	"testing"

	"nevermind/internal/rng"
)

// xorProblem builds a pure interaction: y depends on the XOR of two signs,
// which no additive-in-features model can express but a depth-2 tree can.
func xorProblem(n int, seed uint64) ([]Column, []bool) {
	r := rng.New(seed)
	a := make([]float32, n)
	b := make([]float32, n)
	y := make([]bool, n)
	for i := 0; i < n; i++ {
		a[i] = float32(r.Normal(0, 1))
		b[i] = float32(r.Normal(0, 1))
		p := 0.1
		if (a[i] > 0) != (b[i] > 0) {
			p = 0.9
		}
		y[i] = r.Bool(p)
	}
	return []Column{{Name: "a", Values: a}, {Name: "b", Values: b}}, y
}

func TestBTreeSolvesXOR(t *testing.T) {
	cols, y := xorProblem(4000, 1)
	q, err := FitQuantizer(cols, 64)
	if err != nil {
		t.Fatal(err)
	}
	bm, _ := q.Transform(cols)

	stumps, err := TrainBStump(bm, q, y, TrainOptions{Rounds: 60})
	if err != nil {
		t.Fatal(err)
	}
	trees, err := TrainBTree(bm, q, y, TrainOptions{Rounds: 60})
	if err != nil {
		t.Fatal(err)
	}

	testCols, testY := xorProblem(3000, 2)
	bmT, _ := q.Transform(testCols)
	aucStumps := AUC(stumps.ScoreAll(bmT), testY)
	aucTrees := AUC(trees.ScoreAll(bmT), testY)
	if aucTrees < 0.85 {
		t.Fatalf("depth-2 trees should crack XOR: AUC %.3f", aucTrees)
	}
	if aucStumps > aucTrees-0.1 {
		t.Fatalf("stumps (%.3f) should trail trees (%.3f) badly on XOR", aucStumps, aucTrees)
	}
}

func TestBTreeLearnsAdditiveToo(t *testing.T) {
	cols, y := synthProblem(3000, 3)
	q, _ := FitQuantizer(cols, 64)
	bm, _ := q.Transform(cols)
	trees, err := TrainBTree(bm, q, y, TrainOptions{Rounds: 40})
	if err != nil {
		t.Fatal(err)
	}
	testCols, testY := synthProblem(2000, 4)
	bmT, _ := q.Transform(testCols)
	if auc := AUC(trees.ScoreAll(bmT), testY); auc < 0.75 {
		t.Fatalf("tree boosting held-out AUC %.3f", auc)
	}
}

func TestBTreeScoresFinite(t *testing.T) {
	cols, y := synthProblem(500, 5)
	q, _ := FitQuantizer(cols, 32)
	bm, _ := q.Transform(cols)
	m, err := TrainBTree(bm, q, y, TrainOptions{Rounds: 20})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range m.ScoreAll(bm) {
		if math.IsNaN(s) || math.IsInf(s, 0) {
			t.Fatal("non-finite tree score")
		}
	}
}

func TestBTreeDeterministic(t *testing.T) {
	cols, y := synthProblem(800, 6)
	q, _ := FitQuantizer(cols, 32)
	bm, _ := q.Transform(cols)
	a, err := TrainBTree(bm, q, y, TrainOptions{Rounds: 15})
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrainBTree(bm, q, y, TrainOptions{Rounds: 15})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Trees) != len(b.Trees) {
		t.Fatal("tree counts differ")
	}
	for i := range a.Trees {
		if a.Trees[i] != b.Trees[i] {
			t.Fatalf("tree %d differs", i)
		}
	}
}

func TestBTreeValidation(t *testing.T) {
	cols, y := synthProblem(100, 7)
	q, _ := FitQuantizer(cols, 16)
	bm, _ := q.Transform(cols)
	if _, err := TrainBTree(bm, q, y, TrainOptions{Rounds: 0}); err == nil {
		t.Fatal("zero rounds accepted")
	}
	if _, err := TrainBTree(bm, q, y[:10], TrainOptions{Rounds: 5}); err == nil {
		t.Fatal("label mismatch accepted")
	}
	if _, err := TrainBTree(&BinnedMatrix{}, q, nil, TrainOptions{Rounds: 5}); err == nil {
		t.Fatal("empty matrix accepted")
	}
}

func TestBTreeCalibration(t *testing.T) {
	cols, y := synthProblem(2000, 8)
	q, _ := FitQuantizer(cols, 64)
	bm, _ := q.Transform(cols)
	m, err := TrainBTree(bm, q, y, TrainOptions{Rounds: 30})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Calibrate(m.ScoreAll(bm), y); err != nil {
		t.Fatal(err)
	}
	if p := m.Probability(0); p <= 0 || p >= 1 {
		t.Fatalf("calibrated probability %v", p)
	}
}

func TestTreeRouting(t *testing.T) {
	// Hand-built tree: root on feature 0 at cut 1; left child splits
	// feature 1 at cut 0 with scores -1/+1; right child constant +5.
	tree := Tree{
		RootFeature: 0, RootCut: 1,
		Left:  Stump{Feature: 1, Cut: 0, SLow: -1, SHigh: 1},
		Right: Stump{Feature: 1, Cut: 255, SLow: 5, SHigh: 5},
	}
	bm := &BinnedMatrix{
		N:    3,
		Bins: [][]uint8{{0, 1, 2}, {0, 1, 0}},
	}
	want := []float64{-1, 1, 5}
	for i, w := range want {
		if got := tree.Score(bm, i); got != w {
			t.Fatalf("example %d routed to %v, want %v", i, got, w)
		}
	}
}

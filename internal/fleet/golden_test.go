package fleet_test

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"nevermind/internal/data"
	"nevermind/internal/fleet"
	"nevermind/internal/serve"
	"nevermind/internal/sim"
)

// TestFleetGoldenEndToEndReplay replays the exact fixed-seed four-week run
// that internal/serve's golden pins — but drives every week through a
// 1-shard fleet: gateway in front, the daemon behind it, the fleet pipeline
// orchestrating. The output must match serve's e2e_replay.golden byte for
// byte, WITHOUT regenerating it: interposing the gateway and swapping the
// single-node pipeline for the fleet one may not move a single bit. The
// rank and locate sections are reconstructed from the gateway's HTTP
// responses (there is no store to reach into from out here), which also
// pins that the wire encoding round-trips float64s exactly.
func TestFleetGoldenEndToEndReplay(t *testing.T) {
	ds, _, loc := fixture(t)
	tf := newTestFleet(t, 1, nil, serve.RetryConfig{MaxAttempts: 2})

	src, err := sim.NewSource(ds, 40, 43)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	pl, err := fleet.NewPipeline(tf.gw, fleet.PipelineConfig{
		Source: serve.SimFeed(src),
		Sleep:  func(time.Duration) {},
		OnWeek: func(r serve.WeekReport) {
			fmt.Fprintf(&b, "week %d ingested_tests=%d ingested_tickets=%d submitted=%d pending=%d retries=%d\n",
				r.Week, r.IngestedTests, r.IngestedTickets, r.Submitted, r.Pending, r.Retries)
			fmt.Fprintf(&b, "week %d stats customer=%d predicted=%d expired=%d worked_within=%d cust_wait=%s pred_wait=%s\n",
				r.Week, r.Stats.Customer, r.Stats.Predicted, r.Stats.ExpiredPredicted,
				r.Stats.WorkedWithinBudgetHorizon,
				f64bits(r.Stats.MeanCustomerWaitDays), f64bits(r.Stats.MeanPredictedWaitDays))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Run(t.Context()); err != nil {
		t.Fatal(err)
	}

	// The final ranking, reconstructed from the gateway's answers alone.
	var hv struct {
		LatestWeek int `json:"latest_week"`
	}
	h := do(t, tf.gw.Handler(), http.MethodGet, "/healthz", nil)
	if err := json.Unmarshal(h.body, &hv); err != nil {
		t.Fatal(err)
	}
	week := hv.LatestWeek
	r := do(t, tf.gw.Handler(), http.MethodGet, fmt.Sprintf("/v1/rank?week=%d&n=16", week), nil)
	if r.status != http.StatusOK {
		t.Fatalf("rank: %d %s", r.status, truncate(r.body))
	}
	var rv struct {
		Population  int `json:"population"`
		Predictions []struct {
			Line        data.LineID `json:"line"`
			Score       float64     `json:"score"`
			Probability float64     `json:"probability"`
		} `json:"predictions"`
	}
	if err := json.Unmarshal(r.body, &rv); err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&b, "rank week=%d population=%d\n", week, rv.Population)
	for i, p := range rv.Predictions {
		fmt.Fprintf(&b, "rank %2d line=%d score=%s prob=%s\n", i, p.Line, f64bits(p.Score), f64bits(p.Probability))
	}

	// Locator posterior for the top line, printed in model order: the wire
	// response sorts by probability, so invert that through disposition ids.
	top := rv.Predictions[0].Line
	lr := do(t, tf.gw.Handler(), http.MethodPost, "/v1/locate",
		[]byte(fmt.Sprintf(`{"line":%d,"week":%d,"model":"combined"}`, top, week)))
	if lr.status != http.StatusOK {
		t.Fatalf("locate: %d %s", lr.status, truncate(lr.body))
	}
	var lv struct {
		Dispositions []struct {
			ID          int     `json:"id"`
			Probability float64 `json:"probability"`
		} `json:"dispositions"`
	}
	if err := json.Unmarshal(lr.body, &lv); err != nil {
		t.Fatal(err)
	}
	byID := make(map[int]float64, len(lv.Dispositions))
	for _, d := range lv.Dispositions {
		byID[d.ID] = d.Probability
	}
	fmt.Fprintf(&b, "locate line=%d week=%d\n", top, week)
	for _, d := range loc.Dispositions {
		fmt.Fprintf(&b, "locate disp=%d posterior=%s\n", int(d), f64bits(byID[int(d)]))
	}

	want, err := os.ReadFile(filepath.Join("..", "serve", "testdata", "e2e_replay.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != string(want) {
		t.Fatalf("fleet replay diverged from serve's golden:\n%s", diffLines(string(want), got))
	}
}

// TestFleetPipelineTwoShards runs the same four-week pipeline over a 2-shard
// fleet and pins the orchestration invariants that hold regardless of shard
// count: every week's ingest totals equal the feed's, the freshness gate
// leaves no shard lagging, and the fleet-wide version equals the sum of per-
// shard ingest clocks.
func TestFleetPipelineTwoShards(t *testing.T) {
	ds, _, _ := fixture(t)
	tf := newTestFleet(t, 2, nil, serve.RetryConfig{MaxAttempts: 2})

	src, err := sim.NewSource(ds, 40, 43)
	if err != nil {
		t.Fatal(err)
	}
	weeks := 0
	pl, err := fleet.NewPipeline(tf.gw, fleet.PipelineConfig{
		Source: serve.SimFeed(src),
		Sleep:  func(time.Duration) {},
		OnWeek: func(r serve.WeekReport) {
			weeks++
			if r.IngestedTests != ds.NumLines {
				t.Errorf("week %d ingested %d tests, want %d", r.Week, r.IngestedTests, ds.NumLines)
			}
			if r.Submitted == 0 {
				t.Errorf("week %d submitted nothing", r.Week)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Run(t.Context()); err != nil {
		t.Fatal(err)
	}
	if weeks != 4 {
		t.Fatalf("pipeline completed %d weeks, want 4", weeks)
	}
	tot := pl.Totals()
	if tot.Customer == 0 || tot.Predicted == 0 {
		t.Fatalf("degenerate totals: %+v", tot)
	}

	h := do(t, tf.gw.Handler(), http.MethodGet, "/healthz", nil)
	var hv struct {
		Status  string `json:"status"`
		Version uint64 `json:"version"`
		Shards  []struct {
			Up          bool   `json:"up"`
			Version     uint64 `json:"version"`
			SnapshotLag uint64 `json:"snapshot_lag"`
		} `json:"shards"`
	}
	if err := json.Unmarshal(h.body, &hv); err != nil {
		t.Fatal(err)
	}
	if hv.Status != "ok" {
		t.Fatalf("fleet not healthy after run: %s", h.body)
	}
	var sum uint64
	for i, sh := range hv.Shards {
		if !sh.Up {
			t.Fatalf("shard %d down after run", i)
		}
		if sh.SnapshotLag != 0 {
			t.Fatalf("shard %d snapshot lag %d after freshness-gated run", i, sh.SnapshotLag)
		}
		sum += sh.Version
	}
	if hv.Version != sum {
		t.Fatalf("fleet version %d != shard sum %d", hv.Version, sum)
	}
}

// f64bits renders a float64 as value plus exact bit pattern, mirroring the
// golden's format from internal/serve.
func f64bits(v float64) string {
	return fmt.Sprintf("%g[%016x]", v, math.Float64bits(v))
}

// diffLines renders the first few diverging lines of two golden texts.
func diffLines(want, got string) string {
	w, g := strings.Split(want, "\n"), strings.Split(got, "\n")
	var b strings.Builder
	shown := 0
	for i := 0; i < len(w) || i < len(g); i++ {
		var lw, lg string
		if i < len(w) {
			lw = w[i]
		}
		if i < len(g) {
			lg = g[i]
		}
		if lw != lg {
			fmt.Fprintf(&b, "line %d:\n  want: %s\n  got:  %s\n", i+1, lw, lg)
			if shown++; shown >= 8 {
				b.WriteString("  ... (more diffs elided)\n")
				break
			}
		}
	}
	return b.String()
}

package fleet

import (
	"fmt"
	"testing"

	"nevermind/internal/data"
	"nevermind/internal/serve"
)

// TestRingTotalOwnership checks the first ring property: every line id the
// store can hold maps to exactly one shard, and the per-shard arcs partition
// the id space (counts sum back to the population).
func TestRingTotalOwnership(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		names := shardNames(n)
		r, err := NewRing(names, 0)
		if err != nil {
			t.Fatalf("NewRing(%d): %v", n, err)
		}
		counts := make([]int, n)
		for l := 0; l < serve.MaxLineID; l++ {
			o := r.Owner(data.LineID(l))
			if o < 0 || o >= n {
				t.Fatalf("n=%d line %d: owner %d out of range", n, l, o)
			}
			counts[o]++
		}
		total := 0
		for si, c := range counts {
			total += c
			if n > 1 && c == 0 {
				t.Errorf("n=%d shard %s owns zero lines", n, names[si])
			}
		}
		if total != serve.MaxLineID {
			t.Fatalf("n=%d: counts sum to %d, want %d", n, total, serve.MaxLineID)
		}
		// Consistent hashing is not perfectly uniform, but with 128 vnodes a
		// shard drifting past 2x its fair share would mean the hash mix is
		// broken, not just unlucky.
		for si, c := range counts {
			if fair := serve.MaxLineID / n; c > 2*fair {
				t.Errorf("n=%d shard %s owns %d lines, > 2x fair share %d", n, names[si], c, fair)
			}
		}
	}
}

// TestRingOrderIndependence checks the second property: ownership is a
// function of the shard name *set*. Reordering the list relabels indices but
// every line still lands on the same named shard.
func TestRingOrderIndependence(t *testing.T) {
	names := shardNames(5)
	perm := []string{names[3], names[0], names[4], names[2], names[1]}
	a, err := NewRing(names, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing(perm, 0)
	if err != nil {
		t.Fatal(err)
	}
	for l := 0; l < serve.MaxLineID; l++ {
		id := data.LineID(l)
		if an, bn := a.OwnerName(id), b.OwnerName(id); an != bn {
			t.Fatalf("line %d: owner %q under %v but %q under %v", l, an, names, bn, perm)
		}
	}
}

// TestRingMinimalMovement checks the third property: growing the fleet from
// N to N+1 shards reassigns roughly 1/(N+1) of the keys — and every moved
// key moves *to* the new shard, never between survivors.
func TestRingMinimalMovement(t *testing.T) {
	for _, n := range []int{2, 4, 7} {
		names := shardNames(n)
		before, err := NewRing(names, 0)
		if err != nil {
			t.Fatal(err)
		}
		after, err := NewRing(append(shardNames(n), "shard-new"), 0)
		if err != nil {
			t.Fatal(err)
		}
		moved := 0
		for l := 0; l < serve.MaxLineID; l++ {
			id := data.LineID(l)
			bn, an := before.OwnerName(id), after.OwnerName(id)
			if bn == an {
				continue
			}
			if an != "shard-new" {
				t.Fatalf("n=%d line %d moved %q -> %q between surviving shards", n, l, bn, an)
			}
			moved++
		}
		frac := float64(moved) / float64(serve.MaxLineID)
		ideal := 1.0 / float64(n+1)
		if frac < ideal/2 || frac > ideal*2 {
			t.Errorf("n=%d -> %d: moved %.4f of keys, want ~%.4f (within 2x)", n, n+1, frac, ideal)
		}
	}
}

// TestRingOwnsPredicate checks that the per-shard ownership filter agrees
// with Owner and that the predicates partition the population.
func TestRingOwnsPredicate(t *testing.T) {
	names := shardNames(3)
	r, err := NewRing(names, 0)
	if err != nil {
		t.Fatal(err)
	}
	preds := make([]func(data.LineID) bool, len(names))
	for i, n := range names {
		p, err := r.Owns(n)
		if err != nil {
			t.Fatal(err)
		}
		preds[i] = p
	}
	if _, err := r.Owns("nope"); err == nil {
		t.Fatal("Owns of unknown shard: want error")
	}
	for l := 0; l < serve.MaxLineID; l += 17 {
		id := data.LineID(l)
		owners := 0
		for i, p := range preds {
			if p(id) {
				owners++
				if i != r.Owner(id) {
					t.Fatalf("line %d: predicate %d claims it but Owner says %d", l, i, r.Owner(id))
				}
			}
		}
		if owners != 1 {
			t.Fatalf("line %d: %d predicates claim it", l, owners)
		}
	}
}

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty ring: want error")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Error("empty name: want error")
	}
	if _, err := NewRing([]string{"a", "b", "a"}, 0); err == nil {
		t.Error("duplicate name: want error")
	}
}

func shardNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("shard-%d", i)
	}
	return names
}

package fleet_test

import (
	"bytes"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"testing"

	"nevermind/internal/serve"
)

// fuzzMethods is the closed method set the fuzzer steers with its selector
// byte; arbitrary method strings would only exercise net/http's validation.
var fuzzMethods = []string{
	http.MethodGet, http.MethodPost, http.MethodPut,
	http.MethodDelete, http.MethodHead, http.MethodPatch,
}

var (
	fuzzOnce  sync.Once
	fuzzFleet *testFleet
)

// FuzzGatewayRoute throws fuzzed (method, path, body) triples at a 1-shard
// gateway and a bare daemon side by side and requires byte-identical
// answers: malformed bodies, unknown routes, bogus query strings and
// trailing garbage must all come back with exactly the error bytes a single
// nevermindd produces. Both sides receive every input, so mutating requests
// (ingests the fuzzer happens to make well-formed) keep the two stores in
// lockstep and later inputs compare against identical state.
func FuzzGatewayRoute(f *testing.F) {
	f.Add(0, "/v1/ingest", []byte(`{`))
	f.Add(1, "/v1/ingest", []byte(`{"tests":[],"bogus":1}`))
	f.Add(1, "/v1/ingest", []byte(`{"tests":[{"line":0,"week":999}]}`))
	f.Add(1, "/v1/score", []byte(`{"examples":[{"line":0,"week":40}]}`))
	f.Add(1, "/v1/score", []byte(`{"examples":[{"line":0,"week":40}]}garbage`))
	f.Add(1, "/v1/score", []byte(`not json`))
	f.Add(0, "/v1/rank", []byte(nil))
	f.Add(0, "/v1/rank?week=banana", []byte(nil))
	f.Add(0, "/v1/rank?week=40&n=0", []byte(nil))
	f.Add(1, "/v1/locate", []byte(`{"line":0,"week":40}`))
	f.Add(1, "/v1/locate", []byte(`{"line":1,"week":-2,"model":"wrong"}`))
	f.Add(1, "/v1/reload", []byte(nil))
	f.Add(0, "/v1/nope", []byte(nil))
	f.Add(2, "/v1/rank", []byte(nil))
	f.Add(0, "/", []byte("x"))

	f.Fuzz(func(t *testing.T, methodSel int, path string, body []byte) {
		fuzzOnce.Do(func() {
			fuzzFleet = newTestFleet(t, 1, nil, serve.RetryConfig{MaxAttempts: 2})
		})
		if methodSel < 0 {
			methodSel = -methodSel
		}
		method := fuzzMethods[methodSel%len(fuzzMethods)]
		if !strings.HasPrefix(path, "/") || strings.ContainsAny(path, " \t\r\n#%\x00") {
			t.Skip("not a routable path")
		}
		if _, err := url.ParseRequestURI("http://host" + path); err != nil {
			t.Skip("unparseable path")
		}
		// The monitoring surfaces are fleet-shaped by design — the gateway's
		// healthz/metrics/trace describe the fleet, not one daemon — so they
		// sit outside the byte contract.
		for _, p := range []string{"/healthz", "/metrics", "/debug/", "/v1/trace"} {
			if strings.HasPrefix(path, p) {
				t.Skip("monitoring route outside the byte contract")
			}
		}
		g := do(t, fuzzFleet.gw.Handler(), method, path, body)
		s := do(t, fuzzFleet.single.Handler(), method, path, body)
		if g.status != s.status || !bytes.Equal(g.body, s.body) {
			t.Fatalf("%s %s body=%q diverged:\n  gateway: %d %q\n  single:  %d %q",
				method, path, body, g.status, truncate(g.body), s.status, truncate(s.body))
		}
	})
}

package fleet

import (
	"net/http"
	"time"

	"nevermind/internal/obs"
)

// Gateway routes preset at construction, like the daemon's, so the /metrics
// series set is deterministic from boot.
var gwRoutes = []string{"healthz", "ingest", "locate", "metrics", "rank", "reload", "score"}

// gwMetrics owns the gateway's observability state: per-route traffic, and
// the per-shard health gauges the degradation contract is read from. The
// registry is per-gateway, never process-global, for the same reason the
// daemon's is — tests run many of them.
type gwMetrics struct {
	start time.Time
	reg   *obs.Registry

	requests *obs.CounterVec
	errors   *obs.CounterVec
	latency  *obs.HistogramVec

	// Per-shard health, refreshed by the prober and by data-plane outcomes:
	// up flips 0 the moment a shard exhausts a retry budget, not only on the
	// next probe tick, so /metrics reflects a kill promptly.
	shardUp      *obs.GaugeVec
	shardLines   *obs.GaugeVec
	shardWeek    *obs.GaugeVec
	shardLag     *obs.GaugeVec
	shardRetries *obs.CounterVec
	shardErrors  *obs.CounterVec

	// Per-replica routing state, refreshed by the prober and by read-path
	// fallbacks. readFallbacks counts reads a replica lost to the leader
	// mid-request.
	replicaUp     *obs.GaugeVec
	replicaLag    *obs.GaugeVec
	replicaReads  *obs.CounterVec
	replicaErrors *obs.CounterVec
	readFallbacks *obs.Counter

	// degraded counts shards currently considered down; partialRanks counts
	// /v1/rank responses served from a subset of the fleet.
	degraded     *obs.Gauge
	partialRanks *obs.Counter
}

func newGwMetrics(shardNames, replicaNames []string) *gwMetrics {
	reg := obs.NewRegistry()
	m := &gwMetrics{start: time.Now(), reg: reg}
	m.requests = reg.CounterVec("fleet_http_requests_total",
		"Gateway requests served, by route.", "route").Preset(gwRoutes...)
	m.errors = reg.CounterVec("fleet_http_request_errors_total",
		"Gateway responses with status >= 400, by route.", "route").Preset(gwRoutes...)
	m.latency = reg.HistogramVec("fleet_http_request_duration_seconds",
		"Gateway request handling time, by route.", "route", nil).Preset(gwRoutes...)

	m.shardUp = reg.GaugeVec("fleet_shard_up",
		"1 while the shard answers its health probe, else 0.", "shard").Preset(shardNames...)
	m.shardLines = reg.GaugeVec("fleet_shard_lines",
		"Distinct lines the shard's store holds, per last probe.", "shard").Preset(shardNames...)
	m.shardWeek = reg.GaugeVec("fleet_shard_latest_week",
		"Newest ingested week the shard reports (-1 before the first).", "shard").Preset(shardNames...)
	m.shardLag = reg.GaugeVec("fleet_shard_snapshot_lag",
		"Ingest versions the shard's snapshot trails its store (0 = fresh).", "shard").Preset(shardNames...)
	m.shardRetries = reg.CounterVec("fleet_shard_retries_total",
		"Shard requests retried after a transient failure, by shard.", "shard").Preset(shardNames...)
	m.shardErrors = reg.CounterVec("fleet_shard_errors_total",
		"Shard requests that exhausted the retry budget, by shard.", "shard").Preset(shardNames...)

	m.replicaUp = reg.GaugeVec("fleet_replica_up",
		"1 while the replica answers its probe and serves reads, else 0.", "replica").Preset(replicaNames...)
	m.replicaLag = reg.GaugeVec("fleet_replica_lag_versions",
		"Ingest versions the replica trails its leader, per last probe.", "replica").Preset(replicaNames...)
	m.replicaReads = reg.CounterVec("fleet_replica_reads_total",
		"Read requests served by the replica.", "replica").Preset(replicaNames...)
	m.replicaErrors = reg.CounterVec("fleet_replica_errors_total",
		"Replica read attempts that failed over to the leader.", "replica").Preset(replicaNames...)
	m.readFallbacks = reg.Counter("fleet_read_fallbacks_total",
		"Reads that fell back to a leader after a replica failure.")

	m.degraded = reg.Gauge("fleet_degraded_shards",
		"Shards currently down; > 0 means rank answers may be partial.")
	m.partialRanks = reg.Counter("fleet_partial_ranks_total",
		"/v1/rank responses merged from a subset of the fleet.")

	reg.GaugeFunc("fleet_uptime_seconds",
		"Seconds since the gateway was built.", obs.Uptime(m.start))
	return m
}

// statusWriter mirrors the daemon's: capture the status for error counting.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (m *gwMetrics) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	requests := m.requests.With(name)
	errors := m.errors.With(name)
	latency := m.latency.With(name)
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		t0 := time.Now()
		h(sw, r)
		requests.Add(1)
		latency.Observe(time.Since(t0))
		if sw.status >= 400 {
			errors.Add(1)
		}
	}
}

package fleet_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"

	"nevermind/internal/data"
	"nevermind/internal/fleet"
	"nevermind/internal/serve"
)

func ingestBodyFor(t *testing.T, lo, hi int) []byte {
	t.Helper()
	ds, _, _ := fixture(t)
	tests, tickets := recordsFor(ds, lo, hi)
	b, err := json.Marshal(serve.IngestRequest{Tests: tests, Tickets: tickets})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestGatewayOneShardByteIdentity pins the fleet's core contract: a gateway
// over a single shard answers every data-plane request — success paths,
// every error shape, empty-store ordering, mux 404/405s — with exactly the
// bytes a bare nevermindd produces.
func TestGatewayOneShardByteIdentity(t *testing.T) {
	tf := newTestFleet(t, 1, nil, serve.RetryConfig{MaxAttempts: 2})

	// Empty-store ordering: these 503s/400s fire before any data exists.
	tf.both(t, http.MethodPost, "/v1/score", []byte(`{"examples":[{"line":0,"week":40}]}`))
	tf.both(t, http.MethodGet, "/v1/rank", nil)
	tf.both(t, http.MethodGet, "/v1/rank?week=40", nil)
	tf.both(t, http.MethodPost, "/v1/locate", []byte(`{"line":0,"week":40}`))

	// Malformed and invalid ingests, rejected identically with no state change.
	tf.both(t, http.MethodPost, "/v1/ingest", []byte(`{`))
	tf.both(t, http.MethodPost, "/v1/ingest", []byte(`{"tests":[],"bogus":1}`))
	tf.both(t, http.MethodPost, "/v1/ingest", []byte(`{"tests":[{"line":0,"week":999}]}`))
	tf.both(t, http.MethodPost, "/v1/ingest", []byte(`{"tickets":[{"id":1,"line":-3,"day":10,"category":0}]}`))

	// A real ingest, applied to both sides.
	body := ingestBodyFor(t, 39, 41)
	tf.both(t, http.MethodPost, "/v1/ingest", body)

	// Scoring: fast path, error ordering, strict-decoder failures.
	tf.both(t, http.MethodPost, "/v1/score",
		[]byte(`{"examples":[{"line":0,"week":41},{"line":5,"week":41},{"line":9,"week":40}]}`))
	tf.both(t, http.MethodPost, "/v1/score",
		[]byte(`{"examples":[{"line":3,"week":40},{"line":3,"week":41}]}`))
	tf.both(t, http.MethodPost, "/v1/score", []byte(`{"examples":[]}`))
	tf.both(t, http.MethodPost, "/v1/score", []byte(`{"examples":[{"line":0,"week":77}]}`))
	tf.both(t, http.MethodPost, "/v1/score", []byte(`{"examples":[{"line":999999,"week":41}]}`))
	tf.both(t, http.MethodPost, "/v1/score", []byte(`{"examples":[{"line":0,"week":41}]}garbage`))
	tf.both(t, http.MethodPost, "/v1/score", []byte(`not json`))

	// Ranking: defaults, explicit params, parameter errors.
	tf.both(t, http.MethodGet, "/v1/rank", nil)
	tf.both(t, http.MethodGet, "/v1/rank?week=41&n=25", nil)
	tf.both(t, http.MethodGet, "/v1/rank?week=40", nil)
	tf.both(t, http.MethodGet, "/v1/rank?week=banana", nil)
	tf.both(t, http.MethodGet, "/v1/rank?n=0", nil)

	// Locate: relay path and error shapes.
	tf.both(t, http.MethodPost, "/v1/locate", []byte(`{"line":7,"week":41,"model":"combined"}`))
	tf.both(t, http.MethodPost, "/v1/locate", []byte(`{"line":7,"week":41,"model":"wrong"}`))
	tf.both(t, http.MethodPost, "/v1/locate", []byte(`{"line":999999,"week":41}`))
	tf.both(t, http.MethodPost, "/v1/locate", []byte(`{"line":1,"week":-2}`))

	// Reload without model paths fails the same way on both.
	tf.both(t, http.MethodPost, "/v1/reload", nil)

	// Mux-level 404/405 bytes.
	tf.both(t, http.MethodGet, "/v1/nope", nil)
	tf.both(t, http.MethodGet, "/v1/ingest", nil)
	tf.both(t, http.MethodPost, "/v1/rank", nil)
	tf.both(t, http.MethodGet, "/", nil)
}

// TestGatewayShardedEqualsSingle pins the scale-out contract: a 3-shard
// fleet — each daemon holding only its ring slice — answers scoring,
// ranking and locating byte-identically to one daemon holding everything.
// Nine weeks of history are ingested so every line has a present record
// inside the imputation window: a line dark across the whole stored window
// would be scored from the population-mean fallback vector, which is a
// shard-local statistic — the one documented place sharding can diverge.
func TestGatewayShardedEqualsSingle(t *testing.T) {
	tf := newTestFleet(t, 3, nil, serve.RetryConfig{MaxAttempts: 2})
	body := ingestBodyFor(t, 33, 41)
	tf.bothModuloVersion(t, http.MethodPost, "/v1/ingest", body)

	// Shards hold disjoint slices that cover everything exactly once.
	ring := tf.gw.Ring()
	total := 0
	for _, srv := range tf.shards {
		total += srv.Store().NumLines()
	}
	ds, _, _ := fixture(t)
	if total != ds.NumLines {
		t.Fatalf("shards hold %d lines, dataset has %d", total, ds.NumLines)
	}
	// Behind the gateway nothing is filtered — sub-batches arrive already
	// partitioned. The daemon-side ownership filter is what protects a shard
	// fed the raw full feed (the -fleet.id deployment without a partitioning
	// gateway upstream): replay the whole batch straight into shard 0 and it
	// must drop every foreign record and hold exactly the same lines.
	direct, err := serve.New(serve.Config{Predictor: tf.single.Models().Pred})
	if err != nil {
		t.Fatal(err)
	}
	owns, err := ring.Owns(tf.names[0])
	if err != nil {
		t.Fatal(err)
	}
	direct.Store().SetOwner(owns)
	if r := do(t, direct.Handler(), http.MethodPost, "/v1/ingest", body); r.status != http.StatusOK {
		t.Fatalf("direct full-feed ingest: %d %s", r.status, truncate(r.body))
	}
	if direct.Store().FilteredRecords() == 0 {
		t.Fatal("full-feed ingest into an owning shard filtered nothing")
	}
	if got, want := direct.Store().NumLines(), tf.shards[0].Store().NumLines(); got != want {
		t.Fatalf("full-feed shard holds %d lines, partitioned shard holds %d", got, want)
	}

	// Scoring routes by ring ownership and splices in request order.
	var exs []string
	for l := 0; l < 60; l += 3 {
		exs = append(exs, fmt.Sprintf(`{"line":%d,"week":41}`, l))
	}
	tf.bothModuloVersion(t, http.MethodPost, "/v1/score", []byte(`{"examples":[`+strings.Join(exs, ",")+`]}`))

	// Rank: the streamed k-way merge must reproduce the single ranking
	// exactly — same ids, same order, same float bits.
	tf.both(t, http.MethodGet, "/v1/rank?week=41&n=40", nil)
	tf.both(t, http.MethodGet, "/v1/rank", nil)
	tf.both(t, http.MethodGet, "/v1/rank?week=40&n=7", nil)

	// Locate relays from whichever shard owns the line.
	for _, l := range []data.LineID{2, 11, 29} {
		o := ring.Owner(l)
		if o < 0 || o >= 3 {
			t.Fatalf("line %d owner %d out of range", l, o)
		}
		tf.both(t, http.MethodPost, "/v1/locate", []byte(fmt.Sprintf(`{"line":%d,"week":41}`, l)))
	}

	// The gateway's own healthz reports the aggregate fleet view.
	h := do(t, tf.gw.Handler(), http.MethodGet, "/healthz", nil)
	var hv struct {
		Status    string `json:"status"`
		ShardsUp  int    `json:"shards_up"`
		GridLines int    `json:"grid_lines"`
		Lines     int    `json:"lines"`
	}
	if err := json.Unmarshal(h.body, &hv); err != nil {
		t.Fatal(err)
	}
	if hv.Status != "ok" || hv.ShardsUp != 3 || hv.Lines != ds.NumLines || hv.GridLines != ds.NumLines {
		t.Fatalf("fleet healthz: %+v", hv)
	}
}

// TestGatewayDegradedShard pins the degradation contract: with one shard
// killed the gateway keeps serving /v1/rank as an explicitly partial answer,
// refuses writes with the shard's failure relayed, reports the outage on
// /metrics — and converges bit-identically once the shard returns.
func TestGatewayDegradedShard(t *testing.T) {
	var mu sync.Mutex
	killed := map[string]bool{}
	hooks := &fleet.FaultHooks{
		ShardRequest: func(shard, route string) error {
			mu.Lock()
			defer mu.Unlock()
			if killed[shard] {
				return fmt.Errorf("injected kill: %s %s", shard, route)
			}
			return nil
		},
	}
	tf := newTestFleet(t, 3, hooks, serve.RetryConfig{MaxAttempts: 2})
	body := ingestBodyFor(t, 33, 41)
	tf.bothModuloVersion(t, http.MethodPost, "/v1/ingest", body)
	tf.both(t, http.MethodGet, "/v1/rank?week=41&n=30", nil)

	mu.Lock()
	killed["shard-1"] = true
	mu.Unlock()

	// Partial rank: 200, flagged, every prediction from a surviving shard.
	r := do(t, tf.gw.Handler(), http.MethodGet, "/v1/rank?week=41&n=30", nil)
	if r.status != http.StatusOK {
		t.Fatalf("degraded rank: %d %s", r.status, truncate(r.body))
	}
	if r.header.Get("X-Fleet-Partial") != "true" {
		t.Fatal("degraded rank not flagged partial")
	}
	var rv struct {
		N           int `json:"n"`
		Predictions []struct {
			Line data.LineID `json:"line"`
		} `json:"predictions"`
	}
	if err := json.Unmarshal(r.body, &rv); err != nil {
		t.Fatal(err)
	}
	if rv.N == 0 || len(rv.Predictions) != rv.N {
		t.Fatalf("degraded rank shape: n=%d len=%d", rv.N, len(rv.Predictions))
	}
	for _, p := range rv.Predictions {
		if got := tf.gw.Ring().OwnerName(p.Line); got == "shard-1" {
			t.Fatalf("partial rank contains line %d owned by the dead shard", p.Line)
		}
	}

	// The outage is visible on the gateway's metrics surface.
	m := do(t, tf.gw.Handler(), http.MethodGet, "/metrics", nil)
	for _, want := range []string{
		"fleet_degraded_shards 1",
		`fleet_shard_up{shard="shard-1"} 0`,
		`fleet_shard_up{shard="shard-0"} 1`,
		"fleet_partial_ranks_total 1",
	} {
		if !bytes.Contains(m.body, []byte(want)) {
			t.Fatalf("metrics missing %q:\n%s", want, m.body)
		}
	}

	// Writes fail loudly: the dead shard's synthesized failure is relayed.
	w := do(t, tf.gw.Handler(), http.MethodPost, "/v1/ingest", body)
	if w.status != http.StatusServiceUnavailable ||
		!bytes.Contains(w.body, []byte(`"error":"shard shard-1 unavailable`)) {
		t.Fatalf("ingest with dead shard: %d %s", w.status, truncate(w.body))
	}

	mu.Lock()
	killed["shard-1"] = false
	mu.Unlock()

	// Recovery: re-deliver the week (ingest is idempotent), and the fleet
	// answers bit-identically to the never-faulted single daemon again.
	if g := do(t, tf.gw.Handler(), http.MethodPost, "/v1/ingest", body); g.status != http.StatusOK {
		t.Fatalf("recovery ingest: %d %s", g.status, truncate(g.body))
	}
	g := do(t, tf.gw.Handler(), http.MethodGet, "/v1/rank?week=41&n=30", nil)
	s := do(t, tf.single.Handler(), http.MethodGet, "/v1/rank?week=41&n=30", nil)
	if g.status != http.StatusOK || !bytes.Equal(g.body, s.body) {
		t.Fatalf("post-recovery rank diverged:\n  gateway: %d %q\n  single:  %d %q",
			g.status, truncate(g.body), s.status, truncate(s.body))
	}
	if g.header.Get("X-Fleet-Partial") != "" {
		t.Fatal("recovered rank still flagged partial")
	}
	mm := do(t, tf.gw.Handler(), http.MethodGet, "/metrics", nil)
	if !bytes.Contains(mm.body, []byte("fleet_degraded_shards 0")) {
		t.Fatal("degraded gauge did not return to 0 after recovery")
	}
}

package fleet

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"time"

	"nevermind/internal/serve"
)

// FaultHooks is the fleet's chaos seam, mirroring serve.FaultHooks: the
// chaos injector hands the gateway a ShardRequest hook that can fail a
// shard call before it leaves the client — the network-flake and
// shard-kill fault families ride through it.
type FaultHooks struct {
	// ShardRequest fires before every request to a shard; a non-nil error
	// is treated exactly like a network failure (retried with backoff, then
	// surfaced as the shard being unavailable).
	ShardRequest func(shard, route string) error
}

// Response is one shard's reply, captured fully so the gateway can relay it
// byte-for-byte: the whole 1-shard identity contract rests on nothing being
// re-encoded on the relay path.
type Response struct {
	Status      int
	ContentType string
	RetryAfter  string
	Body        []byte
}

// relay writes the shard response to the client verbatim.
func (r *Response) relay(w http.ResponseWriter) {
	if r.ContentType != "" {
		w.Header().Set("Content-Type", r.ContentType)
	}
	if r.RetryAfter != "" {
		w.Header().Set("Retry-After", r.RetryAfter)
	}
	w.WriteHeader(r.Status)
	w.Write(r.Body)
}

// ShardClient is the gateway's connection to one nevermindd shard: a pooled
// HTTP client plus the retry policy for transient failures. Retryable means
// the shard did not answer (network error, injected fault) or answered a
// load-shed 503 — the one response that is explicitly an invitation to come
// back after backoff (it carries Retry-After). Every other response,
// including an empty-store 503 or a request-timeout 503, is the shard's
// actual answer and is relayed untouched.
type ShardClient struct {
	name  string
	base  string
	index int
	hc    *http.Client
	retry serve.RetryConfig
	sleep func(time.Duration)
	hooks *FaultHooks

	// attempts counts tries beyond the first (the gateway's retry gauge
	// feeds from it); nil-safe.
	onRetry func()
}

// newShardClient builds a client for one shard. transport nil gets a pooled
// dedicated http.Transport; benchmarks and fuzz harnesses pass an in-process
// RoundTripper to cut the TCP stack out of the measurement.
func newShardClient(name, base string, index int, retry serve.RetryConfig, transport http.RoundTripper, sleep func(time.Duration)) *ShardClient {
	if transport == nil {
		transport = &http.Transport{
			MaxIdleConns:        64,
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		}
	}
	if sleep == nil {
		sleep = time.Sleep
	}
	return &ShardClient{
		name:  name,
		base:  base,
		index: index,
		hc:    &http.Client{Transport: transport},
		retry: retry,
		sleep: sleep,
	}
}

// Name returns the shard's ring name.
func (c *ShardClient) Name() string { return c.name }

// maxAttempts mirrors the pipeline's default attempt budget.
func (c *ShardClient) maxAttempts() int {
	if c.retry.MaxAttempts > 0 {
		return c.retry.MaxAttempts
	}
	return 6
}

// retryable reports whether a shard response asks to be retried rather than
// relayed: only the admission-control load shed does (503 + Retry-After).
func retryable(r *Response) bool {
	return r.Status == http.StatusServiceUnavailable && r.RetryAfter != ""
}

// Do sends one request to the shard with bounded retries on transient
// failures. It returns the shard's response — possibly an error response,
// which the caller relays — or an error after the attempt budget is spent
// without the shard answering. op keys the deterministic backoff stream.
func (c *ShardClient) Do(ctx context.Context, op, method, path, contentType string, body []byte) (*Response, error) {
	var lastErr error
	var lastShed *Response
	for attempt := 1; ; attempt++ {
		resp, err := c.roundTrip(ctx, method, path, contentType, body)
		if err == nil && !retryable(resp) {
			return resp, nil
		}
		if err != nil {
			lastErr = err
		} else {
			lastShed = resp
			lastErr = fmt.Errorf("load shed (503, Retry-After %s)", resp.RetryAfter)
		}
		if attempt >= c.maxAttempts() || ctx.Err() != nil {
			if lastShed != nil && err == nil {
				// The shard is alive but shedding; its last answer is more
				// honest than a synthesized gateway error.
				return lastShed, nil
			}
			return nil, fmt.Errorf("shard %s unavailable: %w", c.name, lastErr)
		}
		if c.onRetry != nil {
			c.onRetry()
		}
		c.sleep(c.retry.Backoff(op, c.index, attempt))
	}
}

func (c *ShardClient) roundTrip(ctx context.Context, method, path, contentType string, body []byte) (*Response, error) {
	if h := c.hooks; h != nil && h.ShardRequest != nil {
		if err := h.ShardRequest(c.name, path); err != nil {
			return nil, err
		}
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return &Response{
		Status:      resp.StatusCode,
		ContentType: resp.Header.Get("Content-Type"),
		RetryAfter:  resp.Header.Get("Retry-After"),
		Body:        b,
	}, nil
}

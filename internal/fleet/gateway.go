package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"nevermind/internal/data"
	"nevermind/internal/obs"
	"nevermind/internal/serve"
)

// ShardSpec names one fleet member: its ring name (the identity ownership
// hashes over — stable across restarts and address changes) and its base
// URL ("http://host:port").
type ShardSpec struct {
	Name string
	URL  string
	// Replicas lists read-replica base URLs for this shard (nevermindd
	// -replica.of pointed at URL). Reads prefer a healthy, fresh-enough
	// replica; ingest and fleet control always go to the leader.
	Replicas []string
}

// Config assembles a Gateway.
type Config struct {
	// Shards is the fleet membership. Every member must run nevermindd with
	// the same -fleet.peers list so its store filter agrees with the ring.
	Shards []ShardSpec
	// Replicas is the virtual-node count per shard (0 = DefaultReplicas).
	Replicas int
	// Retry bounds per-shard-call retries; zero values take the pipeline
	// defaults (6 attempts, 50ms..2s exponential backoff with jitter).
	Retry serve.RetryConfig
	// Transport, when set, replaces the pooled TCP transport on every shard
	// client — benchmarks and fuzz harnesses splice shards in-process.
	Transport http.RoundTripper
	// ProbeInterval paces the background health prober (0 = 1s).
	ProbeInterval time.Duration
	// DrainTimeout bounds graceful shutdown (0 = 10s).
	DrainTimeout time.Duration
	// MaxReplicaLag is the staleness bound for replica reads: a replica
	// whose last probe reported more versions of lag than this is skipped
	// and the read goes to the leader. 0 = DefaultMaxReplicaLag.
	MaxReplicaLag uint64
	// Sleep replaces time.Sleep for retry backoff; tests inject an instant
	// fake. nil = time.Sleep.
	Sleep func(time.Duration)
	// Hooks is the chaos injection seam; nil in production.
	Hooks *FaultHooks
}

// Gateway fronts a consistent-hash sharded nevermindd fleet: per-line routes
// (/v1/ingest, /v1/score, /v1/locate) go to the owning shard, /v1/rank
// scatter-gathers the per-shard top-N exports through a streaming merge, and
// /metrics carries per-shard health gauges. The data-plane contract: a
// 1-shard gateway answers byte-for-byte as the bare daemon would; the
// gateway's own monitoring endpoints (/healthz, /metrics) are fleet-shaped
// and outside that contract.
type Gateway struct {
	ring         *Ring
	clients      []*ShardClient
	replicas     []*replicaSet // parallel to clients; entries may be empty
	maxLag       uint64
	m            *gwMetrics
	mux          *http.ServeMux
	prober       *prober
	drainTimeout time.Duration

	startOnce sync.Once
	stopOnce  sync.Once
	started   bool
}

// NewGateway builds a gateway over the given fleet.
func NewGateway(cfg Config) (*Gateway, error) {
	names := make([]string, len(cfg.Shards))
	for i, s := range cfg.Shards {
		names[i] = s.Name
	}
	ring, err := NewRing(names, cfg.Replicas)
	if err != nil {
		return nil, err
	}
	var replicaNames []string
	for _, s := range cfg.Shards {
		for k := range s.Replicas {
			replicaNames = append(replicaNames, replicaName(s.Name, k))
		}
	}
	g := &Gateway{
		ring:         ring,
		maxLag:       cfg.MaxReplicaLag,
		m:            newGwMetrics(names, replicaNames),
		drainTimeout: cfg.DrainTimeout,
	}
	if g.maxLag == 0 {
		g.maxLag = DefaultMaxReplicaLag
	}
	if g.drainTimeout <= 0 {
		g.drainTimeout = 10 * time.Second
	}
	g.clients = make([]*ShardClient, len(cfg.Shards))
	g.replicas = make([]*replicaSet, len(cfg.Shards))
	for i, s := range cfg.Shards {
		if s.URL == "" {
			return nil, fmt.Errorf("fleet: shard %q has no URL", s.Name)
		}
		c := newShardClient(s.Name, s.URL, i, cfg.Retry, cfg.Transport, cfg.Sleep)
		c.hooks = cfg.Hooks
		retries := g.m.shardRetries.With(s.Name)
		c.onRetry = func() { retries.Add(1) }
		g.clients[i] = c
		// Optimistic until the first probe or failure says otherwise.
		g.m.shardUp.With(s.Name).Set(1)

		rs := &replicaSet{}
		for k, u := range s.Replicas {
			if u == "" {
				return nil, fmt.Errorf("fleet: shard %q replica %d has no URL", s.Name, k)
			}
			name := replicaName(s.Name, k)
			// Replicas retry at most once: the leader is the fallback, so a
			// flaky replica should lose the request quickly, not hold it
			// through a full backoff ladder.
			retry := cfg.Retry
			retry.MaxAttempts = 2
			rc := &replicaState{client: newShardClient(name, u, i, retry, cfg.Transport, cfg.Sleep)}
			rc.client.hooks = cfg.Hooks
			rs.members = append(rs.members, rc)
			g.m.replicaUp.With(name).Set(0) // pessimistic until probed
		}
		g.replicas[i] = rs
	}
	g.prober = newProber(g, cfg.ProbeInterval)

	// The data-plane patterns mirror the daemon's registrations exactly, so
	// unknown routes and wrong methods produce the same ServeMux-generated
	// 404/405 bytes a bare daemon produces.
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/ingest", g.m.instrument("ingest", g.handleIngest))
	mux.HandleFunc("POST /v1/score", g.m.instrument("score", g.handleScore))
	mux.HandleFunc("GET /v1/rank", g.m.instrument("rank", g.handleRank))
	mux.HandleFunc("POST /v1/locate", g.m.instrument("locate", g.handleLocate))
	mux.HandleFunc("POST /v1/reload", g.m.instrument("reload", g.handleReload))
	mux.HandleFunc("GET /healthz", g.m.instrument("healthz", g.handleHealthz))
	mux.HandleFunc("GET /metrics", g.m.instrument("metrics", g.handleMetrics))
	g.mux = mux
	return g, nil
}

// Ring exposes the gateway's ownership ring.
func (g *Gateway) Ring() *Ring { return g.ring }

// Registry exposes the gateway's metrics registry.
func (g *Gateway) Registry() *obs.Registry { return g.m.reg }

// Handler returns the gateway's HTTP handler.
func (g *Gateway) Handler() http.Handler { return g.mux }

// Start launches the background health prober. Idempotent.
func (g *Gateway) Start() {
	g.startOnce.Do(func() {
		g.started = true
		go g.prober.run()
	})
}

// Stop ends the prober if Start launched it. Idempotent.
func (g *Gateway) Stop() {
	g.stopOnce.Do(func() {
		close(g.prober.stop)
		if g.started {
			<-g.prober.done
		}
	})
}

// Serve runs the gateway on ln until ctx is cancelled, then drains exactly
// as the daemon does.
func (g *Gateway) Serve(ctx context.Context, ln net.Listener) error {
	g.Start()
	defer g.Stop()
	srv := &http.Server{Handler: g.mux, ReadHeaderTimeout: 10 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	dctx, cancel := context.WithTimeout(context.Background(), g.drainTimeout)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		return fmt.Errorf("fleet: drain: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// writeJSON/writeError replicate the daemon's encoders byte-for-byte
// (json.Encoder output is newline-terminated; map keys encode sorted).
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func writeRawJSON(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// DefaultMaxReplicaLag is the staleness bound for replica reads when the
// config leaves it zero: a replica trailing the leader by more ingest
// versions than this serves no reads until it catches up.
const DefaultMaxReplicaLag = 64

// replicaName labels shard s's k-th replica in metrics and errors.
func replicaName(shard string, k int) string {
	return fmt.Sprintf("%s-r%d", shard, k)
}

// replicaState is one replica's client plus the health the prober last saw.
// up starts false: a replica serves no reads until a probe has proven it
// reachable and fresh enough.
type replicaState struct {
	client *ShardClient
	up     atomic.Bool
	lag    atomic.Uint64
}

// replicaSet is one shard's replicas plus the round-robin cursor reads
// rotate through.
type replicaSet struct {
	members []*replicaState
	next    atomic.Uint32
}

// pickReplica returns the next healthy, fresh-enough replica for a shard, or
// nil when the leader should serve the read itself.
func (g *Gateway) pickReplica(idx int) *replicaState {
	rs := g.replicas[idx]
	if rs == nil || len(rs.members) == 0 {
		return nil
	}
	start := int(rs.next.Add(1))
	for k := 0; k < len(rs.members); k++ {
		rc := rs.members[(start+k)%len(rs.members)]
		if rc.up.Load() && rc.lag.Load() <= g.maxLag {
			return rc
		}
	}
	return nil
}

// readCall serves one read-path shard request (score, locate, rank legs):
// it prefers a replica, and on replica failure — transport error or a 5xx —
// falls back to the leader within the same request, marking the replica down
// so the next read skips it until a probe brings it back. Ingest, reload and
// health always use shardCall directly.
func (g *Gateway) readCall(ctx context.Context, idx int, op, method, path, ct string, body []byte) (*Response, error) {
	if rc := g.pickReplica(idx); rc != nil {
		resp, err := rc.client.Do(ctx, op, method, path, ct, body)
		if err == nil && resp.Status < 500 {
			g.m.replicaReads.With(rc.client.name).Add(1)
			return resp, nil
		}
		// A 5xx from a replica (empty store mid-bootstrap, drain) is not the
		// fleet's answer while the leader can still give a real one.
		g.m.replicaErrors.With(rc.client.name).Add(1)
		g.m.readFallbacks.Add(1)
		rc.up.Store(false)
		g.m.replicaUp.With(rc.client.name).Set(0)
	}
	return g.shardCall(ctx, idx, op, method, path, ct, body)
}

// shardCall performs one retried shard request, downgrading the shard's
// health state the moment its retry budget is exhausted (rather than on the
// next probe tick).
func (g *Gateway) shardCall(ctx context.Context, idx int, op, method, path, ct string, body []byte) (*Response, error) {
	c := g.clients[idx]
	resp, err := c.Do(ctx, op, method, path, ct, body)
	if err != nil {
		g.m.shardErrors.With(c.name).Add(1)
		g.prober.setDown(c.name, true)
		return nil, err
	}
	g.prober.setDown(c.name, false)
	return resp, nil
}

// shardResult is one scatter leg's outcome.
type shardResult struct {
	resp *Response
	err  error
}

// relayFirstFailure writes the lowest-shard-index failure: a shard's own
// error response verbatim (so a 1-shard fleet relays exactly what the bare
// daemon said), or a synthesized 503 when the shard never answered.
func relayFirstFailure(w http.ResponseWriter, results []shardResult, contacted []int) {
	for _, i := range contacted {
		r := results[i]
		if r.err != nil {
			writeError(w, http.StatusServiceUnavailable, r.err)
			return
		}
		if r.resp != nil && r.resp.Status != http.StatusOK {
			r.resp.relay(w)
			return
		}
	}
	writeError(w, http.StatusInternalServerError, errors.New("fleet: no failure to relay"))
}

// --- ingest --------------------------------------------------------------------

// ingestReply mirrors the daemon's /v1/ingest response body.
type ingestReply struct {
	IngestedTests   int    `json:"ingested_tests"`
	IngestedTickets int    `json:"ingested_tickets"`
	Lines           int    `json:"lines"`
	Version         uint64 `json:"version"`
}

func (g *Gateway) handleIngest(w http.ResponseWriter, r *http.Request) {
	var req serve.IngestRequest
	if err := serve.DecodeStrict(http.MaxBytesReader(w, r.Body, serve.MaxBodyBytes), &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Whole-batch validation before any scatter: a bad batch is rejected
	// atomically fleet-wide with the daemon's exact error text, and no shard
	// ever sees part of one.
	if err := serve.ValidateIngest(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	nsh := len(g.clients)
	subs := make([]serve.IngestRequest, nsh)
	for _, t := range req.Tests {
		o := g.ring.Owner(t.Line)
		subs[o].Tests = append(subs[o].Tests, t)
	}
	for _, t := range req.Tickets {
		o := g.ring.Owner(t.Line)
		subs[o].Tickets = append(subs[o].Tickets, t)
	}
	// Every shard gets its slice — empty slices included, so the merged
	// lines/version totals are fresh across the whole fleet (an empty ingest
	// does not bump a shard's version, it just reports current state).
	results := make([]shardResult, nsh)
	contacted := make([]int, 0, nsh)
	var wg sync.WaitGroup
	for i := 0; i < nsh; i++ {
		body, err := json.Marshal(&subs[i])
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		contacted = append(contacted, i)
		wg.Add(1)
		go func(i int, body []byte) {
			defer wg.Done()
			results[i].resp, results[i].err = g.shardCall(r.Context(), i,
				"ingest", http.MethodPost, "/v1/ingest", "application/json", body)
		}(i, body)
	}
	wg.Wait()
	var merged ingestReply
	for _, i := range contacted {
		res := results[i]
		if res.err != nil || res.resp.Status != http.StatusOK {
			relayFirstFailure(w, results, contacted)
			return
		}
		var rep ingestReply
		if err := json.Unmarshal(res.resp.Body, &rep); err != nil {
			writeError(w, http.StatusBadGateway, fmt.Errorf("shard %s: %w", g.clients[i].name, err))
			return
		}
		merged.IngestedTests += rep.IngestedTests
		merged.IngestedTickets += rep.IngestedTickets
		merged.Lines += rep.Lines
		merged.Version += rep.Version
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"ingested_tests":   merged.IngestedTests,
		"ingested_tickets": merged.IngestedTickets,
		"lines":            merged.Lines,
		"version":          merged.Version,
	})
}

// --- score ---------------------------------------------------------------------

func (g *Gateway) handleScore(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, serve.MaxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	exs, err := serve.ParseScoreExamples(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(exs) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("no examples"))
		return
	}
	nsh := len(g.clients)
	// Partition by owner, remembering each example's position so shard
	// fragments splice back in request order.
	subs := make([][]serve.ScoreExample, nsh)
	origIdx := make([][]int, nsh)
	for i, e := range exs {
		o := g.ring.Owner(e.Line)
		subs[o] = append(subs[o], e)
		origIdx[o] = append(origIdx[o], i)
	}
	results := make([]shardResult, nsh)
	contacted := make([]int, 0, nsh)
	var wg sync.WaitGroup
	for i := 0; i < nsh; i++ {
		if len(subs[i]) == 0 {
			continue
		}
		sub, err := json.Marshal(struct {
			Examples []serve.ScoreExample `json:"examples"`
		}{subs[i]})
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		contacted = append(contacted, i)
		wg.Add(1)
		go func(i int, body []byte) {
			defer wg.Done()
			results[i].resp, results[i].err = g.readCall(r.Context(), i,
				"score", http.MethodPost, "/v1/score", "application/json", body)
		}(i, sub)
	}
	wg.Wait()
	frags := make([][]byte, len(exs))
	var version uint64
	for _, i := range contacted {
		res := results[i]
		if res.err != nil || res.resp.Status != http.StatusOK {
			relayFirstFailure(w, results, contacted)
			return
		}
		shardFrags, err := splitArray(res.resp.Body, "predictions")
		if err != nil {
			writeError(w, http.StatusBadGateway, fmt.Errorf("shard %s: %w", g.clients[i].name, err))
			return
		}
		if len(shardFrags) != len(origIdx[i]) {
			writeError(w, http.StatusBadGateway, fmt.Errorf("shard %s returned %d predictions for %d examples",
				g.clients[i].name, len(shardFrags), len(origIdx[i])))
			return
		}
		v, err := fieldUint(res.resp.Body, "version")
		if err != nil {
			writeError(w, http.StatusBadGateway, fmt.Errorf("shard %s: %w", g.clients[i].name, err))
			return
		}
		version += v
		for k, f := range shardFrags {
			frags[origIdx[i][k]] = f
		}
	}
	// Splice the shard-rendered fragments into the daemon's exact envelope.
	// version is the sum of shard store versions — equal to the single
	// store's version when the fleet is one shard, and a consistent
	// monotonic fleet-wide ingest clock at any size.
	buf := make([]byte, 0, len(body)+len(exs)*80)
	buf = append(buf, `{"predictions":[`...)
	for i, f := range frags {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, f...)
	}
	buf = append(buf, `],"version":`...)
	buf = strconv.AppendUint(buf, version, 10)
	buf = append(buf, '}', '\n')
	writeRawJSON(w, buf)
}

// --- locate --------------------------------------------------------------------

func (g *Gateway) handleLocate(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, serve.MaxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Decode only to learn the owner (and to reject malformed bodies with
	// the daemon's exact error); the owning shard gets the raw body and its
	// answer is relayed untouched.
	var req struct {
		Line  data.LineID `json:"line"`
		Week  int         `json:"week"`
		Model string      `json:"model"`
	}
	if err := serve.DecodeStrict(bytes.NewReader(body), &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	o := g.ring.Owner(req.Line)
	resp, err := g.readCall(r.Context(), o, "locate", http.MethodPost, "/v1/locate", "application/json", body)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	resp.relay(w)
}

// --- rank ----------------------------------------------------------------------

// probeShards scatters a live /healthz to every shard, updating the health
// gauges as a side effect. Returns per-shard health (nil where the probe
// failed) and the matching errors.
func (g *Gateway) probeShards(ctx context.Context) ([]*ShardHealth, []error) {
	hs := make([]*ShardHealth, len(g.clients))
	errs := make([]error, len(g.clients))
	var wg sync.WaitGroup
	for i, c := range g.clients {
		wg.Add(1)
		go func(i int, c *ShardClient) {
			defer wg.Done()
			h, err := c.Health(ctx)
			if err != nil {
				errs[i] = err
				g.m.shardErrors.With(c.name).Add(1)
				g.prober.setDown(c.name, true)
				return
			}
			hs[i] = h
			g.m.shardLines.With(c.name).Set(int64(h.Lines))
			g.m.shardWeek.With(c.name).Set(int64(h.LatestWeek))
			g.m.shardLag.With(c.name).Set(int64(h.SnapshotLag))
			g.prober.setDown(c.name, false)
		}(i, c)
	}
	wg.Wait()
	return hs, errs
}

func (g *Gateway) handleRank(w http.ResponseWriter, r *http.Request) {
	// Resolve fleet state first: the daemon's error ordering is empty-store
	// 503 before any parameter parsing, and the rank defaults (latest week,
	// budget n) live on the shards.
	hs, errs := g.probeShards(r.Context())
	var healthy, down []int
	for i := range hs {
		if hs[i] != nil {
			healthy = append(healthy, i)
		} else {
			down = append(down, i)
		}
	}
	if len(healthy) == 0 {
		writeError(w, http.StatusServiceUnavailable, errs[down[0]])
		return
	}
	empty := true
	for _, i := range healthy {
		if hs[i].GridLines > 0 {
			empty = false
		}
	}
	if empty {
		if len(down) > 0 {
			// A down shard might hold the only data; "empty" would be a lie.
			writeError(w, http.StatusServiceUnavailable, errs[down[0]])
			return
		}
		writeError(w, http.StatusServiceUnavailable, errors.New("store is empty; ingest line tests first"))
		return
	}
	defWeek, defN := -1, hs[healthy[0]].BudgetN
	for _, i := range healthy {
		if hs[i].LatestWeek > defWeek {
			defWeek = hs[i].LatestWeek
		}
	}
	var q url.Values
	if r.URL.RawQuery != "" {
		q = r.URL.Query()
	}
	week, n, err := serve.ParseRankParams(q, defWeek, defN)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	// Scatter the resolved query to every healthy shard holding data; each
	// answers with its local top-n heap export in rank order.
	var eligible []int
	for _, i := range healthy {
		if hs[i].GridLines > 0 {
			eligible = append(eligible, i)
		}
	}
	path := "/v1/rank?week=" + strconv.Itoa(week) + "&n=" + strconv.Itoa(n)
	results := make([]shardResult, len(g.clients))
	var wg sync.WaitGroup
	for _, i := range eligible {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i].resp, results[i].err = g.readCall(r.Context(), i,
				"rank", http.MethodGet, path, "", nil)
		}(i)
	}
	wg.Wait()
	var ok, failed []int
	for _, i := range eligible {
		if results[i].err == nil && results[i].resp.Status == http.StatusOK {
			ok = append(ok, i)
		} else {
			failed = append(failed, i)
		}
	}
	if len(ok) == 0 {
		relayFirstFailure(w, results, eligible)
		return
	}
	perShard := make([][][]byte, 0, len(ok))
	population := int64(0)
	for _, i := range ok {
		body := results[i].resp.Body
		frags, err := splitArray(body, "predictions")
		if err != nil {
			writeError(w, http.StatusBadGateway, fmt.Errorf("shard %s: %w", g.clients[i].name, err))
			return
		}
		pop, err := fieldInt(body, "population")
		if err != nil {
			writeError(w, http.StatusBadGateway, fmt.Errorf("shard %s: %w", g.clients[i].name, err))
			return
		}
		population += pop
		perShard = append(perShard, frags)
	}
	buf := make([]byte, 0, 1<<12)
	buf = append(buf, `{"n":`...)
	merged, emitted, err := mergeRank(nil, perShard, n)
	if err != nil {
		writeError(w, http.StatusBadGateway, err)
		return
	}
	buf = strconv.AppendInt(buf, int64(emitted), 10)
	buf = append(buf, `,"population":`...)
	buf = strconv.AppendInt(buf, population, 10)
	buf = append(buf, `,"predictions":[`...)
	buf = append(buf, merged...)
	buf = append(buf, `],"week":`...)
	buf = strconv.AppendInt(buf, int64(week), 10)
	buf = append(buf, '}', '\n')
	// Degraded-but-serving: a subset answer is flagged, never silently
	// passed off as the whole fleet's ranking.
	if len(down) > 0 || len(failed) > 0 {
		w.Header().Set("X-Fleet-Partial", "true")
		g.m.partialRanks.Add(1)
	}
	writeRawJSON(w, buf)
}

// --- reload --------------------------------------------------------------------

func (g *Gateway) handleReload(w http.ResponseWriter, r *http.Request) {
	results := make([]shardResult, len(g.clients))
	contacted := make([]int, 0, len(g.clients))
	var wg sync.WaitGroup
	for i := range g.clients {
		contacted = append(contacted, i)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i].resp, results[i].err = g.shardCall(r.Context(), i,
				"reload", http.MethodPost, "/v1/reload", "", nil)
		}(i)
	}
	wg.Wait()
	merged := serve.ReloadResult{Identical: true}
	for _, i := range contacted {
		res := results[i]
		if res.err != nil || res.resp.Status != http.StatusOK {
			relayFirstFailure(w, results, contacted)
			return
		}
		var rr serve.ReloadResult
		if err := json.Unmarshal(res.resp.Body, &rr); err != nil {
			writeError(w, http.StatusBadGateway, fmt.Errorf("shard %s: %w", g.clients[i].name, err))
			return
		}
		merged.ProbeExamples += rr.ProbeExamples
		merged.Identical = merged.Identical && rr.Identical
		if rr.MaxAbsDiff > merged.MaxAbsDiff {
			merged.MaxAbsDiff = rr.MaxAbsDiff
		}
		if merged.SchemaFingerprint == "" {
			merged.SchemaFingerprint = rr.SchemaFingerprint
		}
	}
	writeJSON(w, http.StatusOK, &merged)
}

// --- monitoring ----------------------------------------------------------------

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	hs, errs := g.probeShards(r.Context())
	shards := make([]map[string]any, len(g.clients))
	var lines int
	var version uint64
	latestWeek, gridLines, up := -1, 0, 0
	var lag uint64
	budgetN := 0
	for i, c := range g.clients {
		if hs[i] == nil {
			shards[i] = map[string]any{
				"name":  c.name,
				"up":    false,
				"error": errs[i].Error(),
			}
			continue
		}
		h := hs[i]
		up++
		lines += h.Lines
		version += h.Version
		if h.LatestWeek > latestWeek {
			latestWeek = h.LatestWeek
		}
		if h.GridLines > gridLines {
			gridLines = h.GridLines
		}
		if h.SnapshotLag > lag {
			lag = h.SnapshotLag
		}
		if budgetN == 0 {
			budgetN = h.BudgetN
		}
		shards[i] = map[string]any{
			"name":         c.name,
			"up":           true,
			"lines":        h.Lines,
			"latest_week":  h.LatestWeek,
			"grid_lines":   h.GridLines,
			"version":      h.Version,
			"snapshot_lag": h.SnapshotLag,
		}
	}
	status := "ok"
	if up < len(g.clients) {
		status = "degraded"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":       status,
		"shards_total": len(g.clients),
		"shards_up":    up,
		"lines":        lines,
		"version":      version,
		"latest_week":  latestWeek,
		"grid_lines":   gridLines,
		"snapshot_lag": lag,
		"budget_n":     budgetN,
		"shards":       shards,
	})
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	g.m.reg.WritePrometheus(w)
}

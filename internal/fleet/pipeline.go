package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"nevermind/internal/atds"
	"nevermind/internal/data"
	"nevermind/internal/serve"
	"nevermind/internal/sim"
)

// PipelineConfig drives the fleet-orchestration mode: the weekly serving
// loop of serve.Pipeline run against a sharded fleet through its gateway.
// The semantics mirror the single-node pipeline operation for operation —
// same retry taxonomy, same exactly-once dispatch, same freshness rule —
// with the store operations replaced by gateway HTTP calls, so the ring
// partitions every week's feed across the fleet and the shards ingest their
// slices in parallel.
type PipelineConfig struct {
	// Source feeds one weekly batch per tick (wrap a *sim.Source with
	// serve.SimFeed).
	Source serve.Source
	// Queue is the ATDS dispatch queue; nil builds a default-sized queue
	// from the fleet's grid width on the first completed week.
	Queue *atds.Queue
	// Tick spaces the weeks in wall-clock time; <= 0 runs back to back.
	Tick time.Duration
	// Retry bounds the per-week attempt budget, exactly as in serve.
	Retry serve.RetryConfig
	// Sleep replaces time.Sleep for backoff waits (tests inject a fake).
	Sleep func(time.Duration)
	// OnWeek and OnRetry observe completed weeks and backed-off attempts.
	OnWeek  func(serve.WeekReport)
	OnRetry func(serve.RetryEvent)
}

// Pipeline is the fleet counterpart of serve.Pipeline. Each Step pulls the
// next week from the source, pushes it through the gateway (which ring-
// partitions it and ingests the shards in parallel), ranks fleet-wide, and
// dispatches the budgeted TopN plus the week's tickets into the local ATDS
// queue. Failure handling follows the single-node taxonomy: a bad batch is
// re-pulled, a transient failure (shard down, load shed, network fault) is
// retried with the same deterministic backoff schedule, and a ranking never
// runs over partial data — the snapshot-freshness loop demands every shard
// up and every data-holding shard's snapshot caught up to the ingest before
// a week's ranking is accepted.
type Pipeline struct {
	gw  *Gateway
	hc  *http.Client
	cfg PipelineConfig

	total     atds.Stats
	lastWeek  int
	haveWeeks bool
}

// NewPipeline binds a fleet pipeline to the gateway it runs inside. All
// traffic goes through the gateway's own handler in-process, so the loop
// exercises exactly the routing and merging external clients see.
func NewPipeline(gw *Gateway, cfg PipelineConfig) (*Pipeline, error) {
	if cfg.Source == nil {
		return nil, fmt.Errorf("fleet: pipeline needs a source")
	}
	// Backoff defaults the delays itself; the attempt budget is the one
	// knob the loop reads directly.
	if cfg.Retry.MaxAttempts <= 0 {
		cfg.Retry.MaxAttempts = 6
	}
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	return &Pipeline{
		gw:  gw,
		hc:  &http.Client{Transport: HandlerTransport{gw.Handler()}},
		cfg: cfg,
	}, nil
}

// Totals returns the outcome stats accumulated across completed weeks.
func (p *Pipeline) Totals() atds.Stats { return p.total }

// Run executes the loop until the source is exhausted or ctx is cancelled.
func (p *Pipeline) Run(ctx context.Context) error {
	var tick <-chan time.Time
	if p.cfg.Tick > 0 {
		t := time.NewTicker(p.cfg.Tick)
		defer t.Stop()
		tick = t.C
	}
	for p.cfg.Source.Remaining() > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		if _, err := p.Step(ctx); err != nil {
			return err
		}
		if tick != nil && p.cfg.Source.Remaining() > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-tick:
			}
		}
	}
	return nil
}

// call performs one gateway request and classifies the reply into the
// pipeline's error taxonomy: a "bad batch" 400 reconstructs serve.ErrBadBatch
// (the sentinel survives the HTTP hop by its stable message prefix), any
// other 4xx is terminal, and 5xx — a down shard, a shed, a mid-rebuild
// failure — is transient.
func (p *Pipeline) call(ctx context.Context, method, path string, body []byte) ([]byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, "http://gateway"+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := p.hc.Do(req)
	if err != nil {
		return nil, serve.Transient(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, serve.Transient(err)
	}
	if resp.StatusCode == http.StatusOK {
		return b, nil
	}
	msg := string(b)
	var ej struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(b, &ej) == nil && ej.Error != "" {
		msg = ej.Error
	}
	if resp.StatusCode >= 500 {
		return nil, serve.Transient(errors.New(msg))
	}
	if rest, ok := strings.CutPrefix(msg, serve.ErrBadBatch.Error()); ok {
		return nil, fmt.Errorf("%w%s", serve.ErrBadBatch, rest)
	}
	return nil, errors.New(msg)
}

// fleetHealth is the gateway's own /healthz body, as the pipeline's
// freshness check consumes it.
type fleetHealth struct {
	Status     string `json:"status"`
	ShardsUp   int    `json:"shards_up"`
	ShardsAll  int    `json:"shards_total"`
	Version    uint64 `json:"version"`
	GridLines  int    `json:"grid_lines"`
	LatestWeek int    `json:"latest_week"`
	Shards     []struct {
		Name        string `json:"name"`
		Up          bool   `json:"up"`
		GridLines   int    `json:"grid_lines"`
		SnapshotLag uint64 `json:"snapshot_lag"`
	} `json:"shards"`
}

// errStaleFleet is the retryable "some shard's ranking state trails the
// ingest" condition — the fleet's analogue of serve's stale-snapshot error.
var errStaleFleet = errors.New("fleet snapshot stale after ingest")

// fresh reports whether the fleet has fully absorbed the week: every shard
// up, the summed store version at least the post-ingest value, and every
// shard that holds grid data serving a snapshot with zero lag.
func (h *fleetHealth) fresh(wantVersion uint64) bool {
	if h.ShardsUp < h.ShardsAll || h.Version < wantVersion {
		return false
	}
	for _, s := range h.Shards {
		if !s.Up || (s.GridLines > 0 && s.SnapshotLag != 0) {
			return false
		}
	}
	return true
}

// retry mirrors serve.Pipeline.retry: record, back off, report budget room.
func (p *Pipeline) retry(rep *serve.WeekReport, op string, week int, attempt *int, cause error) bool {
	*attempt++
	if *attempt >= p.cfg.Retry.MaxAttempts {
		return false
	}
	d := p.cfg.Retry.Backoff(op, week, *attempt)
	rep.Retries++
	if p.cfg.OnRetry != nil {
		p.cfg.OnRetry(serve.RetryEvent{Week: week, Op: op, Attempt: *attempt, Err: cause, Backoff: d})
	}
	p.cfg.Sleep(d)
	return true
}

// ingestBody renders one simulated batch as the /v1/ingest request the
// gateway partitions, mirroring serve.Pipeline.ingest's record mapping.
func ingestBody(batch *sim.Batch) ([]byte, error) {
	req := serve.IngestRequest{
		Tests:   make([]serve.TestRecord, len(batch.Tests)),
		Tickets: make([]serve.TicketRecord, len(batch.Tickets)),
	}
	for i, t := range batch.Tests {
		req.Tests[i] = serve.TestRecord{
			Line: t.M.Line, Week: t.M.Week, Missing: t.M.Missing, F: t.M.F[:],
			Profile: t.Profile, DSLAM: t.DSLAM, Usage: t.Usage,
		}
	}
	for i, t := range batch.Tickets {
		req.Tickets[i] = serve.TicketRecord{ID: t.ID, Line: t.Line, Day: t.Day, Category: uint8(t.Category)}
	}
	return json.Marshal(&req)
}

// Step runs one tick: pull the next week, ingest it through the gateway,
// wait for fleet-wide freshness, rank, dispatch, advance. ok == false once
// the source is exhausted.
func (p *Pipeline) Step(ctx context.Context) (ok bool, err error) {
	var rep serve.WeekReport
	var batch sim.Batch
	var wantVersion uint64
	attempt := 0

	// Pull + ingest under one shared attempt budget, exactly the single-node
	// taxonomy: transient pull → re-pull; bad batch → re-pull (the feed
	// re-serves the week); transient ingest (a down shard, a shed) → re-send
	// the same batch (ingest is idempotent shard-by-shard); anything else is
	// terminal.
pull:
	for {
		b, more, perr := p.cfg.Source.Next()
		if !more {
			return false, nil
		}
		batch = b
		rep.Week = batch.Week
		if perr != nil {
			if !serve.IsTransient(perr) {
				return false, fmt.Errorf("fleet: pipeline week %d pull: %w", batch.Week, perr)
			}
			if !p.retry(&rep, "pull", batch.Week, &attempt, perr) {
				return false, fmt.Errorf("fleet: pipeline week %d pull failed after %d attempts: %w",
					batch.Week, attempt, perr)
			}
			continue
		}
		body, berr := ingestBody(&batch)
		if berr != nil {
			return false, berr
		}
		for {
			reply, ierr := p.call(ctx, http.MethodPost, "/v1/ingest", body)
			if ierr == nil {
				var rj struct {
					Tests   int    `json:"ingested_tests"`
					Tickets int    `json:"ingested_tickets"`
					Version uint64 `json:"version"`
				}
				if err := json.Unmarshal(reply, &rj); err != nil {
					return false, fmt.Errorf("fleet: pipeline week %d ingest reply: %w", batch.Week, err)
				}
				rep.IngestedTests, rep.IngestedTickets = rj.Tests, rj.Tickets
				wantVersion = rj.Version
				break pull
			}
			switch {
			case serve.IsBadBatch(ierr):
				if !p.retry(&rep, "ingest", batch.Week, &attempt, ierr) {
					return false, fmt.Errorf("fleet: pipeline week %d: bad batches exhausted %d attempts: %w",
						batch.Week, attempt, ierr)
				}
				continue pull
			case serve.IsTransient(ierr):
				if !p.retry(&rep, "ingest", batch.Week, &attempt, ierr) {
					return false, fmt.Errorf("fleet: pipeline week %d ingest failed after %d attempts: %w",
						batch.Week, attempt, ierr)
				}
				continue
			default:
				return false, fmt.Errorf("fleet: pipeline week %d ingest: %w", batch.Week, ierr)
			}
		}
	}

	// Freshness: the ranking must see this week's data on every shard. A
	// /v1/rank pass makes each data-holding shard rebuild its snapshot (or
	// keep serving the stale one if the rebuild fails); the gateway healthz
	// then reports whether any shard still lags the post-ingest version.
	// Only a rank taken immediately before an all-fresh healthz is accepted.
	rankPath := "/v1/rank?week=" + strconv.Itoa(batch.Week)
	var rankBody []byte
	var health fleetHealth
	for {
		rb, rerr := p.call(ctx, http.MethodGet, rankPath, nil)
		if rerr == nil {
			hb, herr := p.call(ctx, http.MethodGet, "/healthz", nil)
			if herr == nil && json.Unmarshal(hb, &health) == nil && health.fresh(wantVersion) {
				rankBody = rb
				break
			}
			rerr = errStaleFleet
		}
		if !serve.IsTransient(rerr) && !errors.Is(rerr, errStaleFleet) {
			return false, fmt.Errorf("fleet: pipeline week %d rank: %w", batch.Week, rerr)
		}
		if !p.retry(&rep, "snapshot", batch.Week, &attempt, rerr) {
			return false, fmt.Errorf("fleet: pipeline week %d: %w after %d attempts",
				batch.Week, errStaleFleet, attempt)
		}
	}

	if p.cfg.Queue == nil {
		// The fleet's grid width — max over shards of (highest owned test
		// line + 1) — equals the single store's width, so the queue capacity
		// derived from it is identical.
		q, err := atds.NewQueue(atds.DefaultConfig(health.GridLines), data.SaturdayOf(batch.Week))
		if err != nil {
			return false, err
		}
		p.cfg.Queue = q
	}

	// Exactly-once dispatch, as in serve: a week enters ATDS the first time
	// it completes ingest+rank, never again.
	if p.haveWeeks && batch.Week <= p.lastWeek {
		return true, nil
	}

	// The accepted rank body is the merged fleet-wide TopN in rank order.
	frags, err := splitArray(rankBody, "predictions")
	if err != nil {
		return false, fmt.Errorf("fleet: pipeline week %d rank: %w", batch.Week, err)
	}
	for rank, frag := range frags {
		line, err := fieldInt(frag, "line")
		if err != nil {
			return false, fmt.Errorf("fleet: pipeline week %d rank: %w", batch.Week, err)
		}
		p.cfg.Queue.Submit(data.LineID(line), atds.PriorityPredicted, rank)
	}
	rep.Submitted = len(frags)

	// The week's customer tickets contend for the same capacity and win it;
	// the backfilled history in the first batch is features-only, not work.
	weekStart := data.SaturdayOf(batch.Week) - 6
	for _, t := range batch.Tickets {
		if t.Day >= weekStart {
			p.cfg.Queue.Submit(t.Line, atds.PriorityCustomer, 0)
		}
	}
	p.lastWeek, p.haveWeeks = batch.Week, true

	var outcomes []atds.Outcome
	for d := 0; d < 7; d++ {
		outcomes = append(outcomes, p.cfg.Queue.Advance()...)
	}
	rep.Stats = atds.Summarize(outcomes)
	rep.Pending = p.cfg.Queue.Pending()
	p.total.Add(rep.Stats)

	if p.cfg.OnWeek != nil {
		p.cfg.OnWeek(rep)
	}
	return true, nil
}

package fleet

import (
	"bytes"
	"container/heap"
	"fmt"
	"strconv"
)

// The rank merge works on the shards' prerendered JSON prediction fragments
// without re-encoding them: each shard's /v1/rank body is split into its
// `{"line":..,"week":..,"score":..,"probability":..}` objects, the merge
// orders them by (score desc, line asc) — the exact total order every shard
// ranked by — and the gateway splices the winning fragments verbatim into
// its own envelope. Scores parse bit-exactly because the daemon renders
// float64s in shortest-round-trip form (the encoding/json contract the fast
// path reproduces), so strconv.ParseFloat recovers the identical bits and
// cross-shard comparisons agree with what a single node holding all the
// lines would have computed.

// splitArray returns the top-level `{...}` objects of the JSON array that
// follows the given key in body, as subslices of body (no copying). The
// daemon's compact rendering guarantees no whitespace and no strings
// containing braces inside the fragments; depth counting keeps this correct
// even if that rendering ever grows nested objects.
func splitArray(body []byte, key string) ([][]byte, error) {
	marker := `"` + key + `":[`
	i := bytes.Index(body, []byte(marker))
	if i < 0 {
		return nil, fmt.Errorf("fleet: no %q array in shard response", key)
	}
	i += len(marker)
	var frags [][]byte
	for i < len(body) && body[i] != ']' {
		if body[i] == ',' {
			i++
			continue
		}
		if body[i] != '{' {
			return nil, fmt.Errorf("fleet: malformed %q array in shard response", key)
		}
		start, depth := i, 0
		for ; i < len(body); i++ {
			switch body[i] {
			case '{':
				depth++
			case '}':
				depth--
			}
			if depth == 0 {
				break
			}
		}
		if i == len(body) {
			return nil, fmt.Errorf("fleet: unterminated object in %q array", key)
		}
		i++
		frags = append(frags, body[start:i])
	}
	if i == len(body) {
		return nil, fmt.Errorf("fleet: unterminated %q array", key)
	}
	return frags, nil
}

// fieldValue returns the raw bytes of a top-level numeric/atomic field value
// inside a compact JSON object or body.
func fieldValue(b []byte, key string) ([]byte, error) {
	marker := `"` + key + `":`
	i := bytes.Index(b, []byte(marker))
	if i < 0 {
		return nil, fmt.Errorf("fleet: no %q field in shard response", key)
	}
	i += len(marker)
	j := i
	for j < len(b) && b[j] != ',' && b[j] != '}' && b[j] != ']' {
		j++
	}
	return b[i:j], nil
}

func fieldInt(b []byte, key string) (int64, error) {
	v, err := fieldValue(b, key)
	if err != nil {
		return 0, err
	}
	return strconv.ParseInt(string(v), 10, 64)
}

func fieldUint(b []byte, key string) (uint64, error) {
	v, err := fieldValue(b, key)
	if err != nil {
		return 0, err
	}
	return strconv.ParseUint(string(v), 10, 64)
}

func fieldFloat(b []byte, key string) (float64, error) {
	v, err := fieldValue(b, key)
	if err != nil {
		return 0, err
	}
	return strconv.ParseFloat(string(v), 64)
}

// rankCursor walks one shard's fragment list in the shard's own rank order.
type rankCursor struct {
	frags [][]byte
	i     int
	line  int64
	score float64
}

func (c *rankCursor) load() error {
	frag := c.frags[c.i]
	var err error
	if c.line, err = fieldInt(frag, "line"); err != nil {
		return err
	}
	c.score, err = fieldFloat(frag, "score")
	return err
}

// rankHeap is a max-heap by (score desc, line asc) — the daemon's ranking
// order, so popping the heap replays exactly the global ranked sequence.
type rankHeap []*rankCursor

func (h rankHeap) Len() int { return len(h) }
func (h rankHeap) Less(a, b int) bool {
	if h[a].score != h[b].score {
		return h[a].score > h[b].score
	}
	return h[a].line < h[b].line
}
func (h rankHeap) Swap(a, b int)   { h[a], h[b] = h[b], h[a] }
func (h *rankHeap) Push(x any)     { *h = append(*h, x.(*rankCursor)) }
func (h *rankHeap) Pop() any       { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
func (h rankHeap) peek() *rankCursor { return h[0] }

// mergeRank streams the top n fragments from the per-shard lists into buf,
// comma-separated. Each shard's list is already its top-n heap export in
// rank order; the k-way merge touches only the fragments it emits plus one
// lookahead per shard — no full-population materialization.
func mergeRank(buf []byte, perShard [][][]byte, n int) ([]byte, int, error) {
	h := make(rankHeap, 0, len(perShard))
	for _, frags := range perShard {
		if len(frags) == 0 {
			continue
		}
		c := &rankCursor{frags: frags}
		if err := c.load(); err != nil {
			return buf, 0, err
		}
		h = append(h, c)
	}
	heap.Init(&h)
	emitted := 0
	for emitted < n && h.Len() > 0 {
		c := h.peek()
		if emitted > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, c.frags[c.i]...)
		emitted++
		c.i++
		if c.i == len(c.frags) {
			heap.Pop(&h)
			continue
		}
		if err := c.load(); err != nil {
			return buf, emitted, err
		}
		heap.Fix(&h, 0)
	}
	return buf, emitted, nil
}

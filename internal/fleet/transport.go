package fleet

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
)

// HandlerTransport adapts an http.Handler into an http.RoundTripper: the
// request is served in-process, no sockets involved. The fleet pipeline uses
// it to drive the gateway it is embedded in, and the benchmarks/fuzz
// harnesses use it to splice whole shard daemons into a gateway so the
// measurement (or the byte-equality check) excludes the TCP stack.
type HandlerTransport struct {
	H http.Handler
}

// HostTransport routes in-process requests to handlers by URL host — the
// multi-shard counterpart of HandlerTransport. A gateway configured with
// shard URLs like "http://shard-0" and a HostTransport mapping each host to
// that shard's serve handler runs a whole fleet in one process.
type HostTransport map[string]http.Handler

// RoundTrip dispatches to the handler registered for the request's host.
func (t HostTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	h, ok := t[req.URL.Host]
	if !ok {
		return nil, fmt.Errorf("fleet: no in-process handler for host %q", req.URL.Host)
	}
	return HandlerTransport{h}.RoundTrip(req)
}

// respRecorder is the minimal in-process ResponseWriter behind
// HandlerTransport (the stdlib's recorder lives in a test-only package).
type respRecorder struct {
	header http.Header
	code   int
	wrote  bool
	buf    bytes.Buffer
}

func (r *respRecorder) Header() http.Header { return r.header }

func (r *respRecorder) WriteHeader(code int) {
	if !r.wrote {
		r.code = code
		r.wrote = true
	}
}

func (r *respRecorder) Write(b []byte) (int, error) {
	if !r.wrote {
		r.WriteHeader(http.StatusOK)
	}
	return r.buf.Write(b)
}

// RoundTrip serves req against the wrapped handler and packages the reply as
// a client-side *http.Response.
func (t HandlerTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	rec := &respRecorder{header: make(http.Header), code: http.StatusOK}
	t.H.ServeHTTP(rec, req)
	if req.Body != nil {
		io.Copy(io.Discard, req.Body)
		req.Body.Close()
	}
	return &http.Response{
		Status:        fmt.Sprintf("%d %s", rec.code, http.StatusText(rec.code)),
		StatusCode:    rec.code,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        rec.header,
		Body:          io.NopCloser(bytes.NewReader(rec.buf.Bytes())),
		ContentLength: int64(rec.buf.Len()),
		Request:       req,
	}, nil
}

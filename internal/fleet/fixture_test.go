package fleet_test

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"testing"
	"time"

	"nevermind/internal/core"
	"nevermind/internal/data"
	"nevermind/internal/features"
	"nevermind/internal/fleet"
	"nevermind/internal/serve"
	"nevermind/internal/sim"
)

// The fixture mirrors internal/serve's exactly — same population, seed and
// training config — because the golden replay test here must reproduce the
// byte-identical output serve's golden pins.
var (
	fixtureDS   *data.Dataset
	fixturePred *core.TicketPredictor
	fixtureLoc  *core.TroubleLocator
)

func fixture(t *testing.T) (*data.Dataset, *core.TicketPredictor, *core.TroubleLocator) {
	t.Helper()
	if fixtureDS == nil {
		res, err := sim.Run(sim.DefaultConfig(2000, 11))
		if err != nil {
			t.Fatal(err)
		}
		fixtureDS = res.Dataset

		cfg := core.DefaultPredictorConfig(fixtureDS.NumLines, 11)
		cfg.Rounds = 40
		cfg.MaxSelectExamples = 12000
		pred, err := core.TrainPredictor(fixtureDS, features.WeekRange(32, 38), cfg)
		if err != nil {
			t.Fatal(err)
		}
		fixturePred = pred

		lcfg := core.DefaultLocatorConfig(11)
		lcfg.Rounds = 20
		lcfg.MinCases = 5
		cases := core.CasesFromNotes(fixtureDS, data.FirstSaturday, data.SaturdayOf(40)-1)
		loc, err := core.TrainLocator(fixtureDS, cases, lcfg)
		if err != nil {
			t.Fatal(err)
		}
		fixtureLoc = loc
	}
	return fixtureDS, fixturePred, fixtureLoc
}

// recordsFor converts weeks [lo, hi] of the dataset into ingest records,
// exactly as serve's tests do.
func recordsFor(ds *data.Dataset, lo, hi int) ([]serve.TestRecord, []serve.TicketRecord) {
	var tests []serve.TestRecord
	for w := lo; w <= hi; w++ {
		for li := 0; li < ds.NumLines; li++ {
			m := ds.At(data.LineID(li), w)
			tests = append(tests, serve.TestRecord{
				Line: m.Line, Week: w, Missing: m.Missing, F: append([]float32(nil), m.F[:]...),
				Profile: ds.ProfileOf[li], DSLAM: ds.DSLAMOf[li], Usage: ds.UsageOf[li],
			})
		}
	}
	var tickets []serve.TicketRecord
	for _, tk := range ds.Tickets {
		if tk.Day <= data.SaturdayOf(hi) {
			tickets = append(tickets, serve.TicketRecord{ID: tk.ID, Line: tk.Line, Day: tk.Day, Category: uint8(tk.Category)})
		}
	}
	return tests, tickets
}

// testFleet is an in-process fleet: n shard daemons spliced into a gateway
// by host-routed transport, plus a bare single daemon holding the same data
// for byte-equality comparison.
type testFleet struct {
	gw     *fleet.Gateway
	shards []*serve.Server
	single *serve.Server
	names  []string
}

// newTestFleet builds an n-shard gateway and the reference single daemon.
// hooks and retry tune failure behaviour; both may be zero-valued.
func newTestFleet(t *testing.T, n int, hooks *fleet.FaultHooks, retry serve.RetryConfig) *testFleet {
	t.Helper()
	_, pred, loc := fixture(t)
	tf := &testFleet{}
	ht := fleet.HostTransport{}
	specs := make([]fleet.ShardSpec, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("shard-%d", i)
		srv, err := serve.New(serve.Config{Predictor: pred, Locator: loc})
		if err != nil {
			t.Fatal(err)
		}
		tf.shards = append(tf.shards, srv)
		tf.names = append(tf.names, name)
		specs[i] = fleet.ShardSpec{Name: name, URL: "http://" + name}
		ht[name] = srv.Handler()
	}
	ring, err := fleet.NewRing(tf.names, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n > 1 {
		// Each shard filters ingest to its ring slice, as -fleet.id does.
		for i, srv := range tf.shards {
			owns, err := ring.Owns(tf.names[i])
			if err != nil {
				t.Fatal(err)
			}
			srv.Store().SetOwner(owns)
		}
	}
	tf.gw, err = fleet.NewGateway(fleet.Config{
		Shards:    specs,
		Retry:     retry,
		Transport: ht,
		Sleep:     func(time.Duration) {},
		Hooks:     hooks,
	})
	if err != nil {
		t.Fatal(err)
	}
	tf.single, err = serve.New(serve.Config{Predictor: pred, Locator: loc})
	if err != nil {
		t.Fatal(err)
	}
	return tf
}

// reply is one handler's full observable response.
type reply struct {
	status int
	header http.Header
	body   []byte
}

// do drives one request through a handler in-process.
func do(t *testing.T, h http.Handler, method, path string, body []byte) reply {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req := httptest.NewRequest(method, "http://host"+path, rd)
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return reply{status: rec.Code, header: rec.Header(), body: rec.Body.Bytes()}
}

// both drives the same request through the gateway and the single daemon and
// requires byte-identical answers; returns the (shared) reply.
func (tf *testFleet) both(t *testing.T, method, path string, body []byte) reply {
	t.Helper()
	g := do(t, tf.gw.Handler(), method, path, body)
	s := do(t, tf.single.Handler(), method, path, body)
	if g.status != s.status || !bytes.Equal(g.body, s.body) {
		t.Fatalf("%s %s diverged:\n  gateway: %d %q\n  single:  %d %q",
			method, path, g.status, truncate(g.body), s.status, truncate(s.body))
	}
	return g
}

var versionField = regexp.MustCompile(`"version":\d+`)

// bothModuloVersion is both for N-shard fleets on responses carrying the
// store-version field: the fleet's version is the sum of shard versions (a
// fleet-wide ingest clock), deliberately not the single store's counter, so
// the comparison normalizes that one field and requires everything else
// byte-identical.
func (tf *testFleet) bothModuloVersion(t *testing.T, method, path string, body []byte) {
	t.Helper()
	g := do(t, tf.gw.Handler(), method, path, body)
	s := do(t, tf.single.Handler(), method, path, body)
	gb := versionField.ReplaceAll(g.body, []byte(`"version":X`))
	sb := versionField.ReplaceAll(s.body, []byte(`"version":X`))
	if g.status != s.status || !bytes.Equal(gb, sb) {
		t.Fatalf("%s %s diverged (version normalized):\n  gateway: %d %q\n  single:  %d %q",
			method, path, g.status, truncate(gb), s.status, truncate(sb))
	}
}

func truncate(b []byte) []byte {
	if len(b) > 300 {
		return append(append([]byte{}, b[:300]...), "..."...)
	}
	return b
}

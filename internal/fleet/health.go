package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// ShardHealth is what a shard's /healthz reports, as the gateway consumes
// it. Decoding is deliberately loose (plain json.Unmarshal, extra fields
// ignored): the monitoring surface may grow fields without a lockstep
// gateway upgrade.
type ShardHealth struct {
	Status            string `json:"status"`
	Lines             int    `json:"lines"`
	LatestWeek        int    `json:"latest_week"`
	BudgetN           int    `json:"budget_n"`
	GridLines         int    `json:"grid_lines"`
	Version           uint64 `json:"version"`
	SnapshotLag       uint64 `json:"snapshot_lag"`
	SchemaFingerprint string `json:"schema_fingerprint"`
	// Replica fields, present only on followers (-replica.of): absent on a
	// leader both decode to the zero value, which reads as "no lag" —
	// correct, since a leader IS the source of truth.
	Replica          bool   `json:"replica"`
	ReplicaLag       uint64 `json:"replica_lag"`
	ReplicaConnected bool   `json:"replica_connected"`
}

// Health probes one shard's /healthz through the normal retrying client.
func (c *ShardClient) Health(ctx context.Context) (*ShardHealth, error) {
	resp, err := c.Do(ctx, "health", http.MethodGet, "/healthz", "", nil)
	if err != nil {
		return nil, err
	}
	if resp.Status != http.StatusOK {
		return nil, fmt.Errorf("shard %s healthz: status %d", c.name, resp.Status)
	}
	var h ShardHealth
	if err := json.Unmarshal(resp.Body, &h); err != nil {
		return nil, fmt.Errorf("shard %s healthz: %w", c.name, err)
	}
	return &h, nil
}

// prober polls every shard's /healthz on an interval, feeding the per-shard
// gauges and the degraded count. Data-plane failures also mark a shard down
// immediately (markShardDown), so the gauges never wait a full tick to admit
// a kill; the next successful probe marks it back up.
type prober struct {
	gw       *Gateway
	interval time.Duration

	mu   sync.Mutex
	down map[string]bool // shard name -> currently considered down

	stop chan struct{}
	done chan struct{}
}

func newProber(gw *Gateway, interval time.Duration) *prober {
	if interval <= 0 {
		interval = time.Second
	}
	return &prober{
		gw:       gw,
		interval: interval,
		down:     make(map[string]bool),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// run is the probe loop; Start launches it, Stop joins it.
func (p *prober) run() {
	defer close(p.done)
	t := time.NewTicker(p.interval)
	defer t.Stop()
	p.probeAll()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.probeAll()
		}
	}
}

func (p *prober) probeAll() {
	ctx, cancel := context.WithTimeout(context.Background(), p.interval*4)
	defer cancel()
	var wg sync.WaitGroup
	for _, c := range p.gw.clients {
		wg.Add(1)
		go func(c *ShardClient) {
			defer wg.Done()
			h, err := c.Health(ctx)
			if err != nil {
				p.setDown(c.name, true)
				return
			}
			m := p.gw.m
			m.shardLines.With(c.name).Set(int64(h.Lines))
			m.shardWeek.With(c.name).Set(int64(h.LatestWeek))
			m.shardLag.With(c.name).Set(int64(h.SnapshotLag))
			p.setDown(c.name, false)
		}(c)
	}
	for _, rs := range p.gw.replicas {
		if rs == nil {
			continue
		}
		for _, rc := range rs.members {
			wg.Add(1)
			go func(rc *replicaState) {
				defer wg.Done()
				p.probeReplica(ctx, rc)
			}(rc)
		}
	}
	wg.Wait()
}

// probeReplica refreshes one replica's routing state: reachable + its
// reported replication lag. The up/lag pair is what pickReplica gates on, so
// a dead or lapsed replica stops taking reads within one probe interval.
func (p *prober) probeReplica(ctx context.Context, rc *replicaState) {
	m := p.gw.m
	h, err := rc.client.Health(ctx)
	if err != nil {
		rc.up.Store(false)
		m.replicaUp.With(rc.client.name).Set(0)
		return
	}
	rc.lag.Store(h.ReplicaLag)
	rc.up.Store(true)
	m.replicaUp.With(rc.client.name).Set(1)
	m.replicaLag.With(rc.client.name).Set(int64(h.ReplicaLag))
}

// setDown records a shard's up/down transition and keeps the degraded count
// equal to the number of down shards.
func (p *prober) setDown(name string, down bool) {
	p.mu.Lock()
	was := p.down[name]
	p.down[name] = down
	p.mu.Unlock()
	m := p.gw.m
	if down {
		m.shardUp.With(name).Set(0)
		if !was {
			m.degraded.Add(1)
		}
	} else {
		m.shardUp.With(name).Set(1)
		if was {
			m.degraded.Add(-1)
		}
	}
}

// Package fleet scales the serving subsystem horizontally: a consistent-hash
// ring partitions the line population across N nevermindd shard daemons, and
// a gateway (cmd/nevermindgw) routes per-line traffic to the owning shard
// while answering population-wide queries (/v1/rank) by scatter-gathering
// per-shard top-N heaps through a streaming k-way merge. The contract the
// whole package is built around: a 1-shard fleet answers every data-plane
// request byte-for-byte as a bare nevermindd would, and an N-shard fleet's
// ranking is exactly the single-node ranking (same ids, same order) for any
// line whose features are shard-local (see DESIGN.md "Fleet" for the one
// documented exception: population-mean imputation of never-measured lines).
package fleet

import (
	"fmt"
	"sort"

	"nevermind/internal/data"
)

// DefaultReplicas is the default number of virtual nodes per shard. 128
// points per shard keeps the expected ownership imbalance between shards in
// the low single-digit percents while the ring stays small enough that
// building it is microseconds.
const DefaultReplicas = 128

// point is one virtual node on the ring: the position hash and the index of
// the shard owning the arc that ends at it.
type point struct {
	hash  uint64
	shard int32
}

// Ring maps line ids to shards by consistent hashing. Ownership depends only
// on the set of shard *names* (not their order, not their addresses): every
// member of the fleet — gateway and shards alike — builds the same ring from
// the same name set and agrees on who owns every line. Adding or removing a
// shard moves only the arcs adjacent to its virtual nodes, ~1/N of the key
// space.
type Ring struct {
	names  []string
	points []point
}

// hash64 is the 64-bit avalanche finalizer from MurmurHash3 — a full-period
// mix whose output bits all depend on all input bits, which is what spreads
// consecutive line ids uniformly around the ring.
func hash64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// hashString folds a shard name into a 64-bit seed (FNV-1a, then
// avalanched); virtual node i of the shard sits at hash64(seed + i).
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return hash64(h)
}

// NewRing builds a ring over the named shards with the given number of
// virtual nodes per shard (<= 0 means DefaultReplicas). Names must be
// non-empty and unique — two shards with one name would silently split one
// arc set between them.
func NewRing(names []string, replicas int) (*Ring, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("fleet: ring needs at least one shard")
	}
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	seen := make(map[string]bool, len(names))
	for _, n := range names {
		if n == "" {
			return nil, fmt.Errorf("fleet: empty shard name")
		}
		if seen[n] {
			return nil, fmt.Errorf("fleet: duplicate shard name %q", n)
		}
		seen[n] = true
	}
	r := &Ring{
		names:  append([]string(nil), names...),
		points: make([]point, 0, len(names)*replicas),
	}
	for si, name := range r.names {
		seed := hashString(name)
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, point{hash: hash64(seed + uint64(v)), shard: int32(si)})
		}
	}
	// Ties between points of different shards (astronomically unlikely but
	// possible) break by name so the winner does not depend on list order.
	sort.Slice(r.points, func(a, b int) bool {
		pa, pb := r.points[a], r.points[b]
		if pa.hash != pb.hash {
			return pa.hash < pb.hash
		}
		return r.names[pa.shard] < r.names[pb.shard]
	})
	return r, nil
}

// NumShards returns the number of shards on the ring.
func (r *Ring) NumShards() int { return len(r.names) }

// Names returns the shard names in construction order. Callers must not
// modify the slice.
func (r *Ring) Names() []string { return r.names }

// Owner returns the index (into Names) of the shard owning the line: the
// shard whose first virtual node at or clockwise past hash(line) is reached,
// wrapping at the top of the key space.
func (r *Ring) Owner(line data.LineID) int {
	h := hash64(uint64(int64(line)))
	pts := r.points
	i := sort.Search(len(pts), func(i int) bool { return pts[i].hash >= h })
	if i == len(pts) {
		i = 0
	}
	return int(pts[i].shard)
}

// OwnerName returns the name of the shard owning the line.
func (r *Ring) OwnerName(line data.LineID) string { return r.names[r.Owner(line)] }

// Owns returns an ownership predicate for the named shard — the filter a
// nevermindd running as a fleet member installs on its store so misrouted
// records cannot take up residence. Errors if the name is not on the ring.
func (r *Ring) Owns(name string) (func(data.LineID) bool, error) {
	for si, n := range r.names {
		if n == name {
			return func(l data.LineID) bool { return r.Owner(l) == si }, nil
		}
	}
	return nil, fmt.Errorf("fleet: shard %q is not on the ring %v", name, r.names)
}

package faults

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCatalogSize(t *testing.T) {
	if NumDispositions != 52 {
		t.Fatalf("catalog has %d dispositions, the paper selects 52", NumDispositions)
	}
}

func TestCatalogIDsMatchPositions(t *testing.T) {
	for i, d := range Catalog {
		if int(d.ID) != i {
			t.Fatalf("disposition %q has ID %d at position %d", d.Name, d.ID, i)
		}
	}
}

func TestCatalogNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, d := range Catalog {
		if d.Name == "" {
			t.Fatal("unnamed disposition")
		}
		if seen[d.Name] {
			t.Fatalf("duplicate disposition name %q", d.Name)
		}
		seen[d.Name] = true
	}
}

func TestAllLocationsPopulated(t *testing.T) {
	for loc := HN; loc < NumLocations; loc++ {
		ids := ByLocation(loc)
		if len(ids) < 10 {
			t.Fatalf("location %v has only %d dispositions", loc, len(ids))
		}
		for _, id := range ids {
			if Catalog[id].Loc != loc {
				t.Fatalf("ByLocation(%v) returned %v disposition", loc, Catalog[id].Loc)
			}
		}
	}
}

// The paper notes there is no dominant disposition within a major location
// (Table 1 discussion), which is why location cannot be decided from priors
// alone. Check the hazard mix preserves that.
func TestNoDominantDispositionPerLocation(t *testing.T) {
	for loc := HN; loc < NumLocations; loc++ {
		total, max := 0.0, 0.0
		for _, id := range ByLocation(loc) {
			h := Catalog[id].Hazard
			total += h
			if h > max {
				max = h
			}
		}
		if max/total > 0.40 {
			t.Fatalf("location %v has a dominant disposition: %.0f%% of hazard", loc, 100*max/total)
		}
	}
}

func TestHNIsLargestLocation(t *testing.T) {
	byLoc := map[Location]float64{}
	for _, d := range Catalog {
		byLoc[d.Loc] += d.Hazard
	}
	for loc := F2; loc < NumLocations; loc++ {
		if byLoc[loc] >= byLoc[HN] {
			t.Fatalf("location %v hazard %.2g >= HN %.2g; customer-edge problems should concentrate at HN", loc, byLoc[loc], byLoc[HN])
		}
	}
}

func TestCatalogFieldSanity(t *testing.T) {
	for _, d := range Catalog {
		if d.Hazard <= 0 || d.Hazard > 1e-3 {
			t.Fatalf("%q hazard %v out of range", d.Name, d.Hazard)
		}
		if d.SeverityLo <= 0 || d.SeverityHi < d.SeverityLo {
			t.Fatalf("%q severity range [%v,%v] malformed", d.Name, d.SeverityLo, d.SeverityHi)
		}
		if d.Perceivability <= 0 || d.Perceivability > 1 {
			t.Fatalf("%q perceivability %v out of (0,1]", d.Name, d.Perceivability)
		}
		e := d.Effect
		if e.RateFactor <= 0 || e.RateFactor > 1 {
			t.Fatalf("%q rate factor %v out of (0,1]", d.Name, e.RateFactor)
		}
		if e.CellsFactor < 0 || e.CellsFactor > 1 {
			t.Fatalf("%q cells factor %v out of [0,1]", d.Name, e.CellsFactor)
		}
		if e.MarginDelta > 0 {
			t.Fatalf("%q raises the noise margin", d.Name)
		}
		if e.AttenDelta < 0 {
			t.Fatalf("%q lowers attenuation", d.Name)
		}
		if e.OffProb < 0 || e.OffProb > 1 {
			t.Fatalf("%q off probability %v", d.Name, e.OffProb)
		}
		if e.CVRate < 0 || e.ESRate < 0 || e.FECRate < 0 {
			t.Fatalf("%q has negative error rates", d.Name)
		}
	}
}

func TestProximityOrdersByLocation(t *testing.T) {
	// Proximity must be strictly increasing and group HN < F2 < F1 < DS so
	// "closest to the end host" labelling is well defined.
	order := map[Location]int{HN: 0, F2: 1, F1: 2, DS: 3}
	prev := -1
	prevLoc := -1
	for _, d := range Catalog {
		if d.Proximity <= prev {
			t.Fatalf("%q proximity %d not increasing", d.Name, d.Proximity)
		}
		prev = d.Proximity
		if order[d.Loc] < prevLoc {
			t.Fatalf("%q at %v appears after a farther location", d.Name, d.Loc)
		}
		prevLoc = order[d.Loc]
	}
}

func TestScaleAtZeroIsIdentity(t *testing.T) {
	for _, d := range Catalog {
		s := d.Effect.Scale(0)
		if s.RateFactor != 1 || s.CellsFactor != 1 || s.MarginDelta != 0 ||
			s.CVRate != 0 || s.OffProb != 0 || s.AttenDelta != 0 {
			t.Fatalf("%q Scale(0) is not the identity: %+v", d.Name, s)
		}
	}
}

func TestScaleAtOneIsTemplate(t *testing.T) {
	for _, d := range Catalog {
		s := d.Effect.Scale(1)
		if math.Abs(s.RateFactor-d.Effect.RateFactor) > 1e-12 ||
			math.Abs(s.MarginDelta-d.Effect.MarginDelta) > 1e-12 ||
			math.Abs(s.CVRate-d.Effect.CVRate) > 1e-12 {
			t.Fatalf("%q Scale(1) differs from template", d.Name)
		}
	}
}

func TestScaleMonotoneAndClamped(t *testing.T) {
	err := quick.Check(func(sevRaw uint8) bool {
		sev := float64(sevRaw) / 32 // 0..~8
		for _, d := range Catalog {
			s := d.Effect.Scale(sev)
			if s.RateFactor < 0.02-1e-12 || s.OffProb > 0.95+1e-12 || s.CellsFactor < 0 {
				return false
			}
			if s.MarginDelta > 0 || s.CVRate < 0 {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func effectsClose(a, b Effect) bool {
	const eps = 1e-12
	return math.Abs(a.RateFactor-b.RateFactor) < eps &&
		math.Abs(a.CellsFactor-b.CellsFactor) < eps &&
		math.Abs(a.MarginDelta-b.MarginDelta) < eps &&
		math.Abs(a.AttenDelta-b.AttenDelta) < eps &&
		math.Abs(a.CVRate-b.CVRate) < eps &&
		math.Abs(a.ESRate-b.ESRate) < eps &&
		math.Abs(a.FECRate-b.FECRate) < eps &&
		math.Abs(a.OffProb-b.OffProb) < eps &&
		math.Abs(a.PowerDelta-b.PowerDelta) < eps &&
		a.BridgeTap == b.BridgeTap && a.Crosstalk == b.Crosstalk
}

func TestCombineIdentity(t *testing.T) {
	for _, d := range Catalog {
		e := d.Effect.Scale(0.8)
		if c := e.Combine(NoEffect); !effectsClose(c, e) {
			t.Fatalf("%q Combine(NoEffect) altered the effect", d.Name)
		}
		if c := NoEffect.Combine(e); !effectsClose(c, e) {
			t.Fatalf("%q NoEffect.Combine(e) != e", d.Name)
		}
	}
}

func TestCombineAccumulates(t *testing.T) {
	a := Effect{RateFactor: 0.5, CellsFactor: 0.8, MarginDelta: -2, CVRate: 10, OffProb: 0.5}
	b := Effect{RateFactor: 0.5, CellsFactor: 0.5, MarginDelta: -3, CVRate: 5, OffProb: 0.5, BridgeTap: true}
	c := a.Combine(b)
	if c.RateFactor != 0.25 || c.CellsFactor != 0.4 {
		t.Fatalf("multiplicative combine wrong: %+v", c)
	}
	if c.MarginDelta != -5 || c.CVRate != 15 {
		t.Fatalf("additive combine wrong: %+v", c)
	}
	if math.Abs(c.OffProb-0.75) > 1e-12 {
		t.Fatalf("OffProb combine = %v, want 0.75", c.OffProb)
	}
	if !c.BridgeTap || c.Crosstalk {
		t.Fatalf("boolean combine wrong: %+v", c)
	}
}

func TestCombineCommutes(t *testing.T) {
	err := quick.Check(func(i, j uint8) bool {
		a := Catalog[int(i)%NumDispositions].Effect.Scale(1.1)
		b := Catalog[int(j)%NumDispositions].Effect.Scale(0.7)
		ab, ba := a.Combine(b), b.Combine(a)
		return math.Abs(ab.RateFactor-ba.RateFactor) < 1e-12 &&
			math.Abs(ab.MarginDelta-ba.MarginDelta) < 1e-12 &&
			math.Abs(ab.OffProb-ba.OffProb) < 1e-12 &&
			ab.BridgeTap == ba.BridgeTap && ab.Crosstalk == ba.Crosstalk
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestTotalHazardInOperatingRange(t *testing.T) {
	h := TotalHazard()
	// Roughly 0.2-0.6 customer-edge faults per line per year keeps weekly
	// ticket volume in the regime the paper reports.
	if h*365 < 0.2 || h*365 > 0.8 {
		t.Fatalf("total hazard %.3g/day → %.2f faults/line/year outside operating range", h, h*365)
	}
}

func TestLocationString(t *testing.T) {
	cases := map[Location]string{HN: "HN", F2: "F2", F1: "F1", DS: "DS", Location(9): "Location(9)"}
	for loc, want := range cases {
		if got := loc.String(); got != want {
			t.Fatalf("Location(%d).String() = %q, want %q", loc, got, want)
		}
	}
}

// Package faults models what breaks on a DSL line: the catalog of 52
// dispositions a field technician can resolve (the paper's Table 1), the
// four major locations they group into (Fig. 2), each disposition's effect
// on the physical-layer line features, and the DSLAM outage process used by
// the §5.2 analyses.
//
// A disposition is the paper's unit of ground truth: the device or action a
// dispatch note records ("defective DSL modem", "wet conductor", "reduce
// speed to stabilize the line"). The simulator injects faults by disposition;
// the trouble locator learns to rank dispositions from line measurements.
package faults

import "fmt"

// Location is one of the four major problem locations of Fig. 2. Field
// technicians break the end-to-end path into these and troubleshoot by
// location.
type Location uint8

const (
	HN Location = iota // home network: inside the customer premises
	F2                 // the path between the home network and the crossbox
	F1                 // the path between the crossbox and the DSLAM
	DS                 // the DSLAM itself and its uplink
	NumLocations
)

func (l Location) String() string {
	switch l {
	case HN:
		return "HN"
	case F2:
		return "F2"
	case F1:
		return "F1"
	case DS:
		return "DS"
	default:
		return fmt.Sprintf("Location(%d)", uint8(l))
	}
}

// DispositionID indexes the Catalog.
type DispositionID int

// None marks the absence of a disposition (e.g. a ticket with no dispatch).
const None DispositionID = -1

// Effect is a disposition's signature on the Table 2 line features, at unit
// severity. The simulator scales it by the severity drawn at fault onset and
// feeds it to the physical-layer model.
type Effect struct {
	RateFactor  float64 // multiplies attainable bit rate, 1 = no effect
	MarginDelta float64 // dB subtracted from the noise margin
	AttenDelta  float64 // dB added to signal attenuation
	CVRate      float64 // added mean code violations per test window
	ESRate      float64 // added mean errored seconds per test window
	FECRate     float64 // added mean FEC corrections per test window
	OffProb     float64 // probability the modem shows no sync during a test
	PowerDelta  float64 // dB change in signal power
	CellsFactor float64 // multiplies cell counters, 1 = no effect
	BridgeTap   bool    // introduces a bridge tap signature
	Crosstalk   bool    // introduces a crosstalk signature
}

// Scale returns the effect at the given severity. Multiplicative factors are
// interpolated toward their value; additive terms scale linearly.
func (e Effect) Scale(severity float64) Effect {
	if severity < 0 {
		severity = 0
	}
	s := e
	s.RateFactor = 1 + severity*(e.RateFactor-1)
	if s.RateFactor < 0.02 {
		s.RateFactor = 0.02
	}
	s.CellsFactor = 1 + severity*(e.CellsFactor-1)
	if s.CellsFactor < 0 {
		s.CellsFactor = 0
	}
	s.MarginDelta = severity * e.MarginDelta
	s.AttenDelta = severity * e.AttenDelta
	s.CVRate = severity * e.CVRate
	s.ESRate = severity * e.ESRate
	s.FECRate = severity * e.FECRate
	s.PowerDelta = severity * e.PowerDelta
	s.OffProb = severity * e.OffProb
	if s.OffProb > 0.95 {
		s.OffProb = 0.95
	}
	return s
}

// Combine overlays another active effect on this one. Multiplicative factors
// multiply, additive terms add, probabilities combine independently, and the
// boolean signatures OR.
func (e Effect) Combine(other Effect) Effect {
	c := e
	c.RateFactor *= other.RateFactor
	c.CellsFactor *= other.CellsFactor
	c.MarginDelta += other.MarginDelta
	c.AttenDelta += other.AttenDelta
	c.CVRate += other.CVRate
	c.ESRate += other.ESRate
	c.FECRate += other.FECRate
	c.PowerDelta += other.PowerDelta
	c.OffProb = 1 - (1-e.OffProb)*(1-other.OffProb)
	c.BridgeTap = e.BridgeTap || other.BridgeTap
	c.Crosstalk = e.Crosstalk || other.Crosstalk
	return c
}

// NoEffect is the identity for Combine.
var NoEffect = Effect{RateFactor: 1, CellsFactor: 1}

// Disposition describes one entry of the Table 1 catalog.
type Disposition struct {
	ID   DispositionID
	Name string
	Loc  Location

	// Hazard is the per-line per-day probability of this fault's onset.
	Hazard float64
	// SeverityLo/Hi bound the uniform severity drawn at onset.
	SeverityLo, SeverityHi float64
	// Effect is the unit-severity feature signature.
	Effect Effect
	// Proximity orders devices by distance from the end host; when several
	// faults are active, the dispatch note blames the closest one (§3.3:
	// "the code is always associated with the device closest to the end
	// host"). Lower is closer.
	Proximity int
	// Perceivability scales how noticeable the problem is to the customer
	// at unit severity: 1 means an attentive customer notices the first
	// time they use the line, lower values mean intermittent or subtle
	// symptoms (slow browsing) that take longer to report.
	Perceivability float64
	// WeatherSensitive marks moisture-driven dispositions (wet conductors,
	// corrosion, splice-case moisture): their onset hazard tracks the
	// regional wetness process in the simulator.
	WeatherSensitive bool
}

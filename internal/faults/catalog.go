package faults

// The disposition catalog. The paper selects the 52 dispositions that appear
// more than 20 times in its data, covering 81.9% of all customer edge
// problems, and categorises them into the four major locations of Table 1.
// This catalog reconstructs those 52 from the representative dispositions the
// paper lists, with effect signatures chosen so that each family of problems
// perturbs the line features the way the underlying physics would:
//
//   - cuts and dead devices kill sync (modem appears off, cells collapse);
//   - moisture/corrosion raises code violations, errored seconds and FEC
//     counts and eats noise margin;
//   - cable-plant damage additionally raises attenuation;
//   - bridge taps and stubs cap the attainable rate and flag bt;
//   - binder-group problems flag crosstalk;
//   - DSLAM-side problems show intermittent sync and low cell counts with
//     little attenuation change.
//
// Hazard tiers control the overall ticket volume; the mix keeps HN the
// largest location (customer-edge problems concentrate in the home) with no
// dominant disposition inside any location, as the paper observes.
const (
	hazCommon   = 7.0e-5 // per line-day
	hazMedium   = 3.5e-5
	hazUncommon = 1.7e-5
	hazRare     = 8.0e-6
)

// catalogSpec is the single source of truth; Catalog is built from it in
// init so IDs always equal slice positions.
var catalogSpec = []Disposition{
	// --- Home network (HN): proximity 0..13 -----------------------------
	{Name: "defective DSL modem", Loc: HN, Hazard: hazCommon, SeverityLo: 0.6, SeverityHi: 1.4, Perceivability: 0.9,
		Effect: Effect{RateFactor: 0.5, CellsFactor: 0.3, OffProb: 0.5, MarginDelta: -2, CVRate: 20, ESRate: 8, FECRate: 20}},
	{Name: "filter issue", Loc: HN, Hazard: hazCommon, SeverityLo: 0.4, SeverityHi: 1.3, Perceivability: 0.5,
		Effect: Effect{RateFactor: 0.9, CellsFactor: 0.9, MarginDelta: -4, CVRate: 40, ESRate: 15, FECRate: 50}},
	{Name: "splitter issue", Loc: HN, Hazard: hazMedium, SeverityLo: 0.4, SeverityHi: 1.2, Perceivability: 0.5,
		Effect: Effect{RateFactor: 0.85, CellsFactor: 0.9, MarginDelta: -3, CVRate: 25, ESRate: 10, FECRate: 35}},
	{Name: "network cable issue", Loc: HN, Hazard: hazCommon, SeverityLo: 0.5, SeverityHi: 1.3, Perceivability: 0.8,
		Effect: Effect{RateFactor: 0.8, CellsFactor: 0.5, OffProb: 0.2, CVRate: 5}},
	{Name: "inside wire wet", WeatherSensitive: true, Loc: HN, Hazard: hazCommon, SeverityLo: 0.5, SeverityHi: 1.5, Perceivability: 0.55,
		Effect: Effect{RateFactor: 0.8, CellsFactor: 0.85, MarginDelta: -6, AttenDelta: 1, CVRate: 80, ESRate: 30, FECRate: 120}},
	{Name: "inside wire corroded", WeatherSensitive: true, Loc: HN, Hazard: hazMedium, SeverityLo: 0.5, SeverityHi: 1.4, Perceivability: 0.5,
		Effect: Effect{RateFactor: 0.85, CellsFactor: 0.9, MarginDelta: -5, AttenDelta: 2, CVRate: 60, ESRate: 25, FECRate: 100}},
	{Name: "inside wire cut", Loc: HN, Hazard: hazUncommon, SeverityLo: 0.9, SeverityHi: 1.3, Perceivability: 1.0,
		Effect: Effect{RateFactor: 0.3, CellsFactor: 0.1, OffProb: 0.8, MarginDelta: -4, CVRate: 30, ESRate: 20}},
	{Name: "jack issue", Loc: HN, Hazard: hazMedium, SeverityLo: 0.4, SeverityHi: 1.2, Perceivability: 0.45,
		Effect: Effect{RateFactor: 0.95, CellsFactor: 0.95, MarginDelta: -2, CVRate: 20, ESRate: 8, FECRate: 25}},
	{Name: "software issue", Loc: HN, Hazard: hazCommon, SeverityLo: 0.5, SeverityHi: 1.2, Perceivability: 0.7,
		Effect: Effect{RateFactor: 1, CellsFactor: 0.4, OffProb: 0.15}},
	{Name: "NIC issue", Loc: HN, Hazard: hazMedium, SeverityLo: 0.5, SeverityHi: 1.2, Perceivability: 0.75,
		Effect: Effect{RateFactor: 1, CellsFactor: 0.3, OffProb: 0.1}},
	{Name: "modem misconfiguration", Loc: HN, Hazard: hazMedium, SeverityLo: 0.5, SeverityHi: 1.2, Perceivability: 0.6,
		Effect: Effect{RateFactor: 0.6, CellsFactor: 0.7, MarginDelta: -1, CVRate: 10}},
	{Name: "modem power adapter", Loc: HN, Hazard: hazUncommon, SeverityLo: 0.8, SeverityHi: 1.3, Perceivability: 0.85,
		Effect: Effect{RateFactor: 0.9, CellsFactor: 0.2, OffProb: 0.6}},
	{Name: "home router issue", Loc: HN, Hazard: hazMedium, SeverityLo: 0.5, SeverityHi: 1.2, Perceivability: 0.7,
		Effect: Effect{RateFactor: 1, CellsFactor: 0.4}},
	{Name: "worn phone cord", WeatherSensitive: true, Loc: HN, Hazard: hazMedium, SeverityLo: 0.4, SeverityHi: 1.2, Perceivability: 0.45,
		Effect: Effect{RateFactor: 0.92, CellsFactor: 0.95, MarginDelta: -3, CVRate: 30, ESRate: 10, FECRate: 40}},

	// --- HN-to-crossbox path (F2): proximity 14..25 ---------------------
	{Name: "aerial drop replaced", WeatherSensitive: true, Loc: F2, Hazard: hazCommon, SeverityLo: 0.5, SeverityHi: 1.5, Perceivability: 0.6,
		Effect: Effect{RateFactor: 0.8, CellsFactor: 0.85, MarginDelta: -5, AttenDelta: 4, CVRate: 70, ESRate: 25, FECRate: 90}},
	{Name: "access point (DEMARC)", Loc: F2, Hazard: hazMedium, SeverityLo: 0.4, SeverityHi: 1.3, Perceivability: 0.5,
		Effect: Effect{RateFactor: 0.9, CellsFactor: 0.9, MarginDelta: -3, CVRate: 35, ESRate: 12, FECRate: 45}},
	{Name: "buried service wire repaired", WeatherSensitive: true, Loc: F2, Hazard: hazMedium, SeverityLo: 0.5, SeverityHi: 1.4, Perceivability: 0.55,
		Effect: Effect{RateFactor: 0.85, CellsFactor: 0.9, MarginDelta: -4, AttenDelta: 3, CVRate: 55, ESRate: 20, FECRate: 90}},
	{Name: "defect in protector unit", Loc: F2, Hazard: hazMedium, SeverityLo: 0.5, SeverityHi: 1.4, Perceivability: 0.5,
		Effect: Effect{RateFactor: 0.85, CellsFactor: 0.9, MarginDelta: -5, CVRate: 65, ESRate: 20, FECRate: 70}},
	{Name: "wire protector to DEMARC", Loc: F2, Hazard: hazUncommon, SeverityLo: 0.4, SeverityHi: 1.2, Perceivability: 0.45,
		Effect: Effect{RateFactor: 0.9, CellsFactor: 0.95, MarginDelta: -3, CVRate: 40, ESRate: 14, FECRate: 50}},
	{Name: "jumper defect", Loc: F2, Hazard: hazUncommon, SeverityLo: 0.4, SeverityHi: 1.2, Perceivability: 0.45,
		Effect: Effect{RateFactor: 0.92, CellsFactor: 0.95, MarginDelta: -2.5, CVRate: 30, ESRate: 10, FECRate: 35}},
	{Name: "defective MTU", Loc: F2, Hazard: hazUncommon, SeverityLo: 0.5, SeverityHi: 1.3, Perceivability: 0.5,
		Effect: Effect{RateFactor: 0.85, CellsFactor: 0.9, MarginDelta: -4, CVRate: 45, ESRate: 16, FECRate: 55}},
	{Name: "drop splice corrosion", WeatherSensitive: true, Loc: F2, Hazard: hazMedium, SeverityLo: 0.5, SeverityHi: 1.4, Perceivability: 0.5,
		Effect: Effect{RateFactor: 0.85, CellsFactor: 0.9, MarginDelta: -4.5, AttenDelta: 3.5, CVRate: 60, ESRate: 22, FECRate: 80}},
	{Name: "pedestal terminal defect", WeatherSensitive: true, Loc: F2, Hazard: hazUncommon, SeverityLo: 0.4, SeverityHi: 1.3, Perceivability: 0.45,
		Effect: Effect{RateFactor: 0.9, CellsFactor: 0.92, MarginDelta: -3, CVRate: 35, ESRate: 12, FECRate: 40}},
	{Name: "ground fault at protector", WeatherSensitive: true, Loc: F2, Hazard: hazRare, SeverityLo: 0.6, SeverityHi: 1.5, Perceivability: 0.6,
		Effect: Effect{RateFactor: 0.75, CellsFactor: 0.8, MarginDelta: -6, CVRate: 90, ESRate: 35, FECRate: 110}},
	{Name: "drop chew damage", Loc: F2, Hazard: hazRare, SeverityLo: 0.6, SeverityHi: 1.5, Perceivability: 0.8,
		Effect: Effect{RateFactor: 0.6, CellsFactor: 0.6, OffProb: 0.2, MarginDelta: -6, AttenDelta: 5, CVRate: 100, ESRate: 40, FECRate: 120}},
	{Name: "corroded binding post", WeatherSensitive: true, Loc: F2, Hazard: hazUncommon, SeverityLo: 0.4, SeverityHi: 1.3, Perceivability: 0.45,
		Effect: Effect{RateFactor: 0.9, CellsFactor: 0.92, MarginDelta: -4, CVRate: 50, ESRate: 18, FECRate: 70}},

	// --- Crossbox-to-DSLAM path (F1): proximity 26..38 -------------------
	{Name: "transfer to another cable pair", Loc: F1, Hazard: hazMedium, SeverityLo: 0.5, SeverityHi: 1.4, Perceivability: 0.5,
		Effect: Effect{RateFactor: 0.85, CellsFactor: 0.9, MarginDelta: -5, AttenDelta: 2, CVRate: 70, ESRate: 25, FECRate: 90}},
	{Name: "bridge tap removal", Loc: F1, Hazard: hazMedium, SeverityLo: 0.6, SeverityHi: 1.3, Perceivability: 0.4,
		Effect: Effect{RateFactor: 0.75, CellsFactor: 0.95, MarginDelta: -2, CVRate: 15, FECRate: 30, BridgeTap: true}},
	{Name: "wet conductor (F1)", WeatherSensitive: true, Loc: F1, Hazard: hazCommon, SeverityLo: 0.5, SeverityHi: 1.5, Perceivability: 0.55,
		Effect: Effect{RateFactor: 0.8, CellsFactor: 0.85, MarginDelta: -7, AttenDelta: 1.5, CVRate: 110, ESRate: 45, FECRate: 150}},
	{Name: "corroded conductor (F1)", WeatherSensitive: true, Loc: F1, Hazard: hazMedium, SeverityLo: 0.5, SeverityHi: 1.4, Perceivability: 0.5,
		Effect: Effect{RateFactor: 0.85, CellsFactor: 0.9, MarginDelta: -5.5, AttenDelta: 2.5, CVRate: 75, ESRate: 28, FECRate: 110}},
	{Name: "defect found in crossbox", Loc: F1, Hazard: hazMedium, SeverityLo: 0.4, SeverityHi: 1.3, Perceivability: 0.5,
		Effect: Effect{RateFactor: 0.88, CellsFactor: 0.9, MarginDelta: -4, CVRate: 55, ESRate: 18, FECRate: 60}},
	{Name: "defective buried ready access terminal", Loc: F1, Hazard: hazUncommon, SeverityLo: 0.4, SeverityHi: 1.3, Perceivability: 0.5,
		Effect: Effect{RateFactor: 0.88, CellsFactor: 0.9, MarginDelta: -4.5, CVRate: 60, ESRate: 20, FECRate: 70}},
	{Name: "pair cut", Loc: F1, Hazard: hazUncommon, SeverityLo: 0.9, SeverityHi: 1.3, Perceivability: 1.0,
		Effect: Effect{RateFactor: 0.25, CellsFactor: 0.05, OffProb: 0.85, MarginDelta: -5, CVRate: 40, ESRate: 25}},
	{Name: "defect cable section", WeatherSensitive: true, Loc: F1, Hazard: hazMedium, SeverityLo: 0.5, SeverityHi: 1.4, Perceivability: 0.55,
		Effect: Effect{RateFactor: 0.82, CellsFactor: 0.88, MarginDelta: -5, AttenDelta: 4, CVRate: 80, ESRate: 30, FECRate: 100}},
	{Name: "cable stub", Loc: F1, Hazard: hazUncommon, SeverityLo: 0.5, SeverityHi: 1.3, Perceivability: 0.4,
		Effect: Effect{RateFactor: 0.8, CellsFactor: 0.95, MarginDelta: -2.5, CVRate: 20, FECRate: 35, BridgeTap: true}},
	{Name: "load coil left on loop", Loc: F1, Hazard: hazRare, SeverityLo: 0.7, SeverityHi: 1.3, Perceivability: 0.7,
		Effect: Effect{RateFactor: 0.4, CellsFactor: 0.7, MarginDelta: -3, AttenDelta: 6, CVRate: 30}},
	{Name: "splice case moisture", WeatherSensitive: true, Loc: F1, Hazard: hazUncommon, SeverityLo: 0.5, SeverityHi: 1.5, Perceivability: 0.5,
		Effect: Effect{RateFactor: 0.82, CellsFactor: 0.88, MarginDelta: -6, AttenDelta: 1, CVRate: 95, ESRate: 38, FECRate: 130}},
	{Name: "binder group crosstalk", Loc: F1, Hazard: hazUncommon, SeverityLo: 0.4, SeverityHi: 1.3, Perceivability: 0.45,
		Effect: Effect{RateFactor: 0.88, CellsFactor: 0.92, MarginDelta: -3.5, CVRate: 45, ESRate: 15, FECRate: 60, Crosstalk: true}},
	{Name: "cable rearrangement error", Loc: F1, Hazard: hazRare, SeverityLo: 0.7, SeverityHi: 1.3, Perceivability: 0.85,
		Effect: Effect{RateFactor: 0.5, CellsFactor: 0.2, OffProb: 0.5, MarginDelta: -3, CVRate: 35, ESRate: 18}},

	// --- DSLAM (DS): proximity 39..51 ------------------------------------
	{Name: "reduce speed to stabilize the line", Loc: DS, Hazard: hazCommon, SeverityLo: 0.5, SeverityHi: 1.4, Perceivability: 0.5,
		Effect: Effect{RateFactor: 0.9, CellsFactor: 0.9, MarginDelta: -4, CVRate: 60, ESRate: 22, FECRate: 80}},
	{Name: "digital stream transport", Loc: DS, Hazard: hazUncommon, SeverityLo: 0.5, SeverityHi: 1.3, Perceivability: 0.6,
		Effect: Effect{RateFactor: 0.9, CellsFactor: 0.4, OffProb: 0.3, CVRate: 50, ESRate: 30}},
	{Name: "wiring at DSLAM", Loc: DS, Hazard: hazMedium, SeverityLo: 0.4, SeverityHi: 1.3, Perceivability: 0.5,
		Effect: Effect{RateFactor: 0.88, CellsFactor: 0.9, MarginDelta: -4, CVRate: 55, ESRate: 18, FECRate: 60}},
	{Name: "DSLAM pronto card ABCU", Loc: DS, Hazard: hazMedium, SeverityLo: 0.5, SeverityHi: 1.4, Perceivability: 0.65,
		Effect: Effect{RateFactor: 0.85, CellsFactor: 0.3, OffProb: 0.45, CVRate: 70, ESRate: 28}},
	{Name: "DSLAM pronto card ADLU", Loc: DS, Hazard: hazMedium, SeverityLo: 0.5, SeverityHi: 1.4, Perceivability: 0.65,
		Effect: Effect{RateFactor: 0.85, CellsFactor: 0.35, OffProb: 0.4, CVRate: 65, ESRate: 25}},
	{Name: "porting error", Loc: DS, Hazard: hazUncommon, SeverityLo: 0.7, SeverityHi: 1.3, Perceivability: 0.9,
		Effect: Effect{RateFactor: 0.4, CellsFactor: 0.15, OffProb: 0.6}},
	{Name: "ATM switch port", Loc: DS, Hazard: hazUncommon, SeverityLo: 0.5, SeverityHi: 1.3, Perceivability: 0.6,
		Effect: Effect{RateFactor: 1, CellsFactor: 0.3, OffProb: 0.2, ESRate: 20}},
	{Name: "line card reset required", Loc: DS, Hazard: hazMedium, SeverityLo: 0.5, SeverityHi: 1.2, Perceivability: 0.8,
		Effect: Effect{RateFactor: 0.9, CellsFactor: 0.3, OffProb: 0.5, CVRate: 40}},
	{Name: "DSLAM backplane", Loc: DS, Hazard: hazRare, SeverityLo: 0.6, SeverityHi: 1.4, Perceivability: 0.6,
		Effect: Effect{RateFactor: 0.85, CellsFactor: 0.6, OffProb: 0.35, CVRate: 60, ESRate: 30}},
	{Name: "DSLAM power supply", Loc: DS, Hazard: hazRare, SeverityLo: 0.8, SeverityHi: 1.3, Perceivability: 0.9,
		Effect: Effect{RateFactor: 0.8, CellsFactor: 0.1, OffProb: 0.7}},
	{Name: "uplink congestion", Loc: DS, Hazard: hazUncommon, SeverityLo: 0.4, SeverityHi: 1.2, Perceivability: 0.4,
		Effect: Effect{RateFactor: 1, CellsFactor: 0.5}},
	{Name: "port reprovision", Loc: DS, Hazard: hazUncommon, SeverityLo: 0.5, SeverityHi: 1.2, Perceivability: 0.6,
		Effect: Effect{RateFactor: 0.55, CellsFactor: 0.7, MarginDelta: -2}},
	{Name: "card firmware fault", Loc: DS, Hazard: hazRare, SeverityLo: 0.5, SeverityHi: 1.4, Perceivability: 0.5,
		Effect: Effect{RateFactor: 0.88, CellsFactor: 0.7, OffProb: 0.25, CVRate: 85, ESRate: 35}},
}

// Catalog is the immutable list of all dispositions, indexed by
// DispositionID. Callers must not modify it.
var Catalog []Disposition

// NumDispositions is len(Catalog); the paper's 52.
var NumDispositions int

func init() {
	Catalog = catalogSpec
	NumDispositions = len(Catalog)
	for i := range Catalog {
		Catalog[i].ID = DispositionID(i)
		Catalog[i].Proximity = i // spec order runs HN → F2 → F1 → DS, nearest first
	}
}

// ByLocation returns the IDs of all dispositions at a major location.
func ByLocation(loc Location) []DispositionID {
	var ids []DispositionID
	for i := range Catalog {
		if Catalog[i].Loc == loc {
			ids = append(ids, Catalog[i].ID)
		}
	}
	return ids
}

// TotalHazard returns the summed per-line per-day onset probability across
// the catalog, the rate at which customer-edge faults appear on a line.
func TotalHazard() float64 {
	total := 0.0
	for i := range Catalog {
		total += Catalog[i].Hazard
	}
	return total
}

// OutageConfig parameterises the DSLAM outage process (§2.2, §5.2): a
// network problem between a BRAS and a DSLAM that affects every customer the
// DSLAM serves, triggers the IVR, and suppresses individual tickets.
type OutageConfig struct {
	// HazardPerDSLAMDay is the per-DSLAM per-day probability an outage starts.
	HazardPerDSLAMDay float64
	// MeanDurationDays is the mean of the (geometric) outage duration.
	MeanDurationDays float64
}

// DefaultOutageConfig matches the simulator defaults: a DSLAM suffers about
// one outage every two years, lasting a couple of days. The rate is high
// enough that the §5.2 outage/IVR analysis has statistical support at
// tens-of-thousands-of-lines scale.
var DefaultOutageConfig = OutageConfig{HazardPerDSLAMDay: 1.5e-3, MeanDurationDays: 2.5}

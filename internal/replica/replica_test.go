package replica_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"nevermind/internal/core"
	"nevermind/internal/data"
	"nevermind/internal/features"
	"nevermind/internal/replica"
	"nevermind/internal/serve"
	"nevermind/internal/sim"
	"nevermind/internal/wal"
)

// The fixture mirrors internal/fleet's: same population, seed and training
// config. The leader and replica daemons load the SAME trained models — that
// is the deployment contract (-model/-locator files or identical training
// flags), and it is what makes follower responses a pure function of the
// replicated store.
var (
	fixtureDS   *data.Dataset
	fixturePred *core.TicketPredictor
	fixtureLoc  *core.TroubleLocator
)

func fixture(t *testing.T) (*data.Dataset, *core.TicketPredictor, *core.TroubleLocator) {
	t.Helper()
	if fixtureDS == nil {
		res, err := sim.Run(sim.DefaultConfig(2000, 11))
		if err != nil {
			t.Fatal(err)
		}
		fixtureDS = res.Dataset

		cfg := core.DefaultPredictorConfig(fixtureDS.NumLines, 11)
		cfg.Rounds = 40
		cfg.MaxSelectExamples = 12000
		pred, err := core.TrainPredictor(fixtureDS, features.WeekRange(32, 38), cfg)
		if err != nil {
			t.Fatal(err)
		}
		fixturePred = pred

		lcfg := core.DefaultLocatorConfig(11)
		lcfg.Rounds = 20
		lcfg.MinCases = 5
		cases := core.CasesFromNotes(fixtureDS, data.FirstSaturday, data.SaturdayOf(40)-1)
		loc, err := core.TrainLocator(fixtureDS, cases, lcfg)
		if err != nil {
			t.Fatal(err)
		}
		fixtureLoc = loc
	}
	return fixtureDS, fixturePred, fixtureLoc
}

// leaderUnderTest is a daemon with durability on and the replication source
// mounted, exactly as nevermindd -wal.dir assembles it.
type leaderUnderTest struct {
	srv *serve.Server
	dur *serve.Durability
	src *replica.Source
	ts  *httptest.Server
}

func newLeader(t *testing.T, pred *core.TicketPredictor, loc *core.TroubleLocator, cfg serve.DurabilityConfig) *leaderUnderTest {
	t.Helper()
	srv, err := serve.New(serve.Config{Predictor: pred, Locator: loc})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	if cfg.Sync == 0 {
		cfg.Sync = wal.SyncNever
	}
	dur, err := serve.OpenDurability(srv.Store(), nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	src, err := replica.NewSource(replica.SourceConfig{
		Dir:         cfg.Dir,
		LastVersion: dur.LogVersion,
	})
	if err != nil {
		t.Fatal(err)
	}
	dur.SetOnAppend(src.Wake)
	dur.SetRetention(src.Retain)
	srv.MountReplication(src.Handler())
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); dur.Abandon() })
	return &leaderUnderTest{srv: srv, dur: dur, src: src, ts: ts}
}

// ingestWeek pushes one week of the dataset into the leader's store (which
// logs it to the WAL through the sink): one tests version, one tickets
// version when the week has new tickets.
func ingestWeek(t *testing.T, ds *data.Dataset, st *serve.Store, w int) {
	t.Helper()
	var tests []serve.TestRecord
	for li := 0; li < ds.NumLines; li++ {
		m := ds.At(data.LineID(li), w)
		tests = append(tests, serve.TestRecord{
			Line: m.Line, Week: w, Missing: m.Missing, F: append([]float32(nil), m.F[:]...),
			Profile: ds.ProfileOf[li], DSLAM: ds.DSLAMOf[li], Usage: ds.UsageOf[li],
		})
	}
	if _, err := st.IngestTests(tests); err != nil {
		t.Fatal(err)
	}
	var tickets []serve.TicketRecord
	for _, tk := range ds.Tickets {
		if tk.Day > data.SaturdayOf(w-1) && tk.Day <= data.SaturdayOf(w) {
			tickets = append(tickets, serve.TicketRecord{ID: tk.ID, Line: tk.Line, Day: tk.Day, Category: uint8(tk.Category)})
		}
	}
	if len(tickets) > 0 {
		if _, err := st.IngestTickets(tickets); err != nil {
			t.Fatal(err)
		}
	}
}

// reply is one handler's observable response.
type reply struct {
	status int
	header http.Header
	body   []byte
}

func do(t *testing.T, h http.Handler, method, path string, body []byte) reply {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req := httptest.NewRequest(method, "http://host"+path, rd)
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return reply{status: rec.Code, header: rec.Header(), body: rec.Body.Bytes()}
}

func waitConverged(t *testing.T, fol *replica.Follower, st func() *serve.Store, want uint64) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for st().Version() != want {
		if time.Now().After(deadline) {
			t.Fatalf("replica stuck at version %d (leader %d); status %+v",
				st().Version(), want, fol.Status())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestReplicaByteIdentity bootstraps a follower mid-stream — after the
// leader has checkpointed and kept ingesting — and requires every read
// endpoint to answer byte-identically to the leader at the same version.
// This is the tentpole contract: a replica at version V IS the leader at
// version V, bit for bit, so the gateway may serve reads from either.
func TestReplicaByteIdentity(t *testing.T) {
	ds, pred, loc := fixture(t)
	leader := newLeader(t, pred, loc, serve.DurabilityConfig{CheckpointEvery: -1, KeepCheckpoints: 2})

	// Phase 1: two weeks land and are checkpointed before the follower is
	// born — the bootstrap must come from the checkpoint, not a full replay.
	ingestWeek(t, ds, leader.srv.Store(), 40)
	ingestWeek(t, ds, leader.srv.Store(), 41)
	leader.dur.Checkpoint()

	var fol *replica.Follower
	fsrv, err := serve.New(serve.Config{
		Predictor: pred,
		Locator:   loc,
		ReadOnly:  true,
		ReplicaStatus: func() serve.ReplicaStatus {
			if fol == nil {
				return serve.ReplicaStatus{}
			}
			return fol.Status()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	fol, err = replica.NewFollower(replica.FollowerConfig{
		Leader:    leader.ts.URL,
		ID:        "identity-test",
		Shards:    4, // deliberately different from the leader's shard count
		SwapStore: fsrv.SwapStore,
		PollWait:  100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := fol.Bootstrap(t.Context()); err != nil {
		t.Fatal(err)
	}
	if got, want := fsrv.Store().Version(), leader.srv.Store().Version(); got != want {
		t.Fatalf("bootstrap stopped at version %d, leader at %d", got, want)
	}

	// Phase 2: the leader keeps ingesting while the follower tails live.
	ctx, cancel := context.WithCancel(t.Context())
	defer cancel()
	runDone := make(chan struct{})
	go func() { defer close(runDone); fol.Run(ctx) }()
	ingestWeek(t, ds, leader.srv.Store(), 42)
	ingestWeek(t, ds, leader.srv.Store(), 43)
	waitConverged(t, fol, fsrv.Store, leader.srv.Store().Version())

	// Every read endpoint answers byte-for-byte as the leader does.
	var scoreBody strings.Builder
	scoreBody.WriteString(`{"examples":[`)
	for i := 0; i < 64; i++ {
		if i > 0 {
			scoreBody.WriteByte(',')
		}
		fmt.Fprintf(&scoreBody, `{"line":%d,"week":43}`, (i*31)%ds.NumLines)
	}
	scoreBody.WriteString(`]}`)
	checks := []struct {
		name, method, path string
		body               []byte
	}{
		{"score", http.MethodPost, "/v1/score", []byte(scoreBody.String())},
		{"rank", http.MethodGet, "/v1/rank?week=43&n=32", nil},
		{"rank-default", http.MethodGet, "/v1/rank", nil},
	}
	for _, c := range checks {
		l := do(t, leader.srv.Handler(), c.method, c.path, c.body)
		f := do(t, fsrv.Handler(), c.method, c.path, c.body)
		if l.status != f.status || !bytes.Equal(l.body, f.body) {
			t.Fatalf("%s diverged:\n  leader:  %d %.300s\n  replica: %d %.300s",
				c.name, l.status, l.body, f.status, f.body)
		}
		if c.name == "score" {
			if got := f.header.Get("X-Replica-Lag"); got != "0" {
				t.Fatalf("replica score X-Replica-Lag = %q, want \"0\"", got)
			}
			if got := l.header.Get("X-Replica-Lag"); got != "" {
				t.Fatalf("leader emitted X-Replica-Lag %q", got)
			}
		}
	}

	// Locate for the top-ranked line: take it from the (identical) rank body.
	rank := do(t, leader.srv.Handler(), http.MethodGet, "/v1/rank?week=43&n=1", nil)
	var top struct {
		Predictions []struct {
			Line data.LineID `json:"line"`
		} `json:"predictions"`
	}
	if err := json.Unmarshal(rank.body, &top); err != nil || len(top.Predictions) == 0 {
		t.Fatalf("rank body undecodable: %v %.200s", err, rank.body)
	}
	locBody := fmt.Appendf(nil, `{"line":%d,"week":43,"model":"combined"}`, top.Predictions[0].Line)
	l := do(t, leader.srv.Handler(), http.MethodPost, "/v1/locate", locBody)
	f := do(t, fsrv.Handler(), http.MethodPost, "/v1/locate", locBody)
	if l.status != f.status || !bytes.Equal(l.body, f.body) {
		t.Fatalf("locate diverged:\n  leader:  %d %.300s\n  replica: %d %.300s",
			l.status, l.body, f.status, f.body)
	}

	// The follower is read-only: ingest is refused, and the refusal names
	// the leader as the write path.
	ing := do(t, fsrv.Handler(), http.MethodPost, "/v1/ingest", []byte(`{"tests":[{"line":1,"week":43}]}`))
	if ing.status != http.StatusForbidden || !bytes.Contains(ing.body, []byte("read-only")) {
		t.Fatalf("replica ingest: %d %.200s, want 403 read-only", ing.status, ing.body)
	}
	if got := fol.Bootstraps(); got != 1 {
		t.Fatalf("follower bootstrapped %d times, want 1", got)
	}

	// Healthz carries the replica fields the gateway's lag gating reads.
	hz := do(t, fsrv.Handler(), http.MethodGet, "/healthz", nil)
	for _, want := range []string{`"replica":true`, `"replica_lag":0`, `"replica_applied":`} {
		if !bytes.Contains(hz.body, []byte(want)) {
			t.Fatalf("replica healthz missing %s: %.300s", want, hz.body)
		}
	}
}

// TestSourceGoneAndRetention pins the catch-up protocol's edges without
// models: a follower position the WAL no longer reaches gets 410 Gone, an
// active follower's retention claim holds truncation back, and an expired
// claim releases it.
func TestSourceGoneAndRetention(t *testing.T) {
	dir := t.TempDir()
	st := serve.NewStore(2)
	dur, err := serve.OpenDurability(st, nil, serve.DurabilityConfig{
		Dir: dir, Sync: wal.SyncNever,
		CheckpointEvery: -1, SegmentBytes: 2 << 10, KeepCheckpoints: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dur.Abandon()
	src, err := replica.NewSource(replica.SourceConfig{
		Dir:          dir,
		LastVersion:  dur.LogVersion,
		RetentionTTL: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	dur.SetOnAppend(src.Wake)
	dur.SetRetention(src.Retain)
	h := src.Handler()

	ingest := func(n int) {
		for i := 0; i < n; i++ {
			v := int(st.Version())
			recs := make([]serve.TestRecord, 8)
			for j := range recs {
				recs[j] = serve.TestRecord{
					Line: data.LineID((v*8 + j) % 300), Week: 40 + v%4,
					F: make([]float32, data.NumBasicFeatures),
				}
			}
			if _, err := st.IngestTests(recs); err != nil {
				t.Fatal(err)
			}
		}
	}

	// A fresh stream from 0 with a live claim: works, and the claim pins
	// the WAL while it is fresh.
	ingest(6)
	r := do(t, h, http.MethodGet, "/v1/repl/wal?from=0&id=slow", nil)
	if r.status != http.StatusOK {
		t.Fatalf("stream from 0: %d %.200s", r.status, r.body)
	}
	if floor, ok := src.Retain(); !ok || floor != 0 {
		t.Fatalf("Retain() = (%d, %v), want (0, true)", floor, ok)
	}

	// Past the tail is Gone: a follower ahead of this leader's durable log
	// can only be resolved by a checkpoint.
	r = do(t, h, http.MethodGet, "/v1/repl/wal?from=999", nil)
	if r.status != http.StatusGone {
		t.Fatalf("stream past tail: %d, want 410", r.status)
	}

	// Let the claim lapse, checkpoint (which truncates), and the follower's
	// old position is gone — it must re-bootstrap.
	time.Sleep(80 * time.Millisecond)
	if _, ok := src.Retain(); ok {
		t.Fatal("lapsed claim still retained")
	}
	ingest(20)
	dur.Checkpoint()
	probe := errors.New("probe")
	opened := false
	for i := 0; i < 40 && !opened; i++ {
		_, err := wal.Replay(dir, 0, func(*wal.Record) error { return probe })
		if opened = errors.Is(err, wal.ErrReplayGap); !opened {
			ingest(6)
			dur.Checkpoint()
		}
	}
	if !opened {
		t.Fatal("truncation never opened a replay gap; segment sizing changed")
	}
	r = do(t, h, http.MethodGet, "/v1/repl/wal?from=0&id=slow", nil)
	if r.status != http.StatusGone {
		t.Fatalf("stream from pruned position: %d %.200s, want 410", r.status, r.body)
	}

	// The checkpoint endpoint serves the newest checkpoint with its version.
	r = do(t, h, http.MethodGet, "/v1/repl/checkpoint", nil)
	if r.status != http.StatusOK {
		t.Fatalf("checkpoint: %d %.200s", r.status, r.body)
	}
	var state serve.StoreState
	v, err := wal.ReadCheckpoint(bytes.NewReader(r.body), &state)
	if err != nil {
		t.Fatalf("served checkpoint undecodable: %v", err)
	}
	if got := r.header.Get("X-Checkpoint-Version"); got != fmt.Sprint(v) {
		t.Fatalf("X-Checkpoint-Version %q, checkpoint says %d", got, v)
	}
	if v != st.Version() {
		t.Fatalf("checkpoint version %d, store at %d", v, st.Version())
	}
}

// TestFollowerRebootstrapOn410 drives the full lapse cycle through the
// Follower: bootstrap, fall far behind while the leader prunes, then observe
// the 410 → fresh-store re-bootstrap → converge path, with the swap visible
// as an atomic store replacement (never a torn intermediate).
func TestFollowerRebootstrapOn410(t *testing.T) {
	dir := t.TempDir()
	st := serve.NewStore(2)
	dur, err := serve.OpenDurability(st, nil, serve.DurabilityConfig{
		Dir: dir, Sync: wal.SyncNever,
		CheckpointEvery: -1, SegmentBytes: 2 << 10, KeepCheckpoints: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dur.Abandon()
	src, err := replica.NewSource(replica.SourceConfig{
		Dir: dir, LastVersion: dur.LogVersion, RetentionTTL: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	dur.SetOnAppend(src.Wake)
	dur.SetRetention(src.Retain)
	ts := httptest.NewServer(src.Handler())
	defer ts.Close()

	ingest := func(n int) {
		for i := 0; i < n; i++ {
			v := int(st.Version())
			recs := make([]serve.TestRecord, 8)
			for j := range recs {
				recs[j] = serve.TestRecord{
					Line: data.LineID((v*8 + j) % 300), Week: 40 + v%4,
					F: make([]float32, data.NumBasicFeatures),
				}
			}
			if _, err := st.IngestTests(recs); err != nil {
				t.Fatal(err)
			}
		}
	}
	ingest(8)
	dur.Checkpoint()

	var published atomic.Pointer[serve.Store]
	fol, err := replica.NewFollower(replica.FollowerConfig{
		Leader: ts.URL, ID: "lapser", Shards: 2,
		SwapStore: published.Store,
		PollWait:  20 * time.Millisecond,
		RetryBase: time.Millisecond, RetryMax: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := fol.Bootstrap(t.Context()); err != nil {
		t.Fatal(err)
	}
	v0 := published.Load().Version()

	// While the follower sleeps, its claim lapses and the leader prunes
	// past it: keep ingesting + checkpointing until the probe sees a gap.
	time.Sleep(60 * time.Millisecond)
	probe := errors.New("probe")
	opened := false
	for i := 0; i < 40 && !opened; i++ {
		ingest(6)
		dur.Checkpoint()
		_, err := wal.Replay(dir, v0, func(*wal.Record) error { return probe })
		opened = errors.Is(err, wal.ErrReplayGap)
	}
	if !opened {
		t.Fatal("could not open a replay gap past the follower's position")
	}

	ctx, cancel := context.WithCancel(t.Context())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); fol.Run(ctx) }()
	deadline := time.Now().Add(10 * time.Second)
	for fol.Status().Applied != st.Version() || fol.Bootstraps() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("no re-bootstrap convergence: status %+v bootstraps %d leader %d",
				fol.Status(), fol.Bootstraps(), st.Version())
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	<-done

	if got := published.Load().Version(); got != st.Version() {
		t.Fatalf("published store at %d, leader at %d", got, st.Version())
	}
	if got := fol.Bootstraps(); got < 2 {
		t.Fatalf("bootstraps = %d, want >= 2 (initial + 410-triggered)", got)
	}
}

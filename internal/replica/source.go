// Package replica implements leader→follower replication for the serving
// store. The leader side (Source) serves the durability directory read-only:
// a follower bootstraps from the newest checkpoint (GET /v1/repl/checkpoint),
// then streams the WAL tail and live appends (GET /v1/repl/wal?from=V,
// long-polled) in the exact segment record format, applying each record
// through Store.ApplyWALRecord — so a follower at version V is bit-identical
// to the leader at version V. The follower side (Follower) owns bootstrap,
// the tail loop, and re-bootstrap when the leader has pruned past it.
package replica

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"nevermind/internal/obs"
	"nevermind/internal/wal"
)

// SourceConfig assembles the leader-side replication server.
type SourceConfig struct {
	// Dir is the durability directory (WAL segments + checkpoints) to serve.
	Dir string
	// LastVersion returns the durable log tail — how far a stream may read.
	// Serving only durable versions keeps a follower from ever being ahead
	// of what the leader would recover to after a crash.
	LastVersion func() uint64
	// RetentionTTL expires a follower's retention claim this long after its
	// last stream request; an expired follower re-bootstraps instead of
	// pinning WAL segments forever. Default 5m.
	RetentionTTL time.Duration
	// MaxWait caps a stream request's long-poll wait. Default 30s.
	MaxWait time.Duration
	// MaxStreamRecords caps records per stream response; a bootstrapping
	// follower just polls again from its new position. Default 4096.
	MaxStreamRecords int
	// Reg, when non-nil, registers the leader-side replication metrics.
	Reg *obs.Registry
}

// followerPos is one follower's retention claim: the version its last stream
// request started from, and when it was seen.
type followerPos struct {
	from uint64
	seen time.Time
}

// Source serves checkpoints and WAL streams off a leader's durability
// directory. All reads are read-only and tolerate racing the checkpoint
// pruner: a segment vanishing mid-stream just ends the response at a frame
// boundary, and a follower that lost the race to truncation gets 410 Gone
// and re-bootstraps.
type Source struct {
	cfg SourceConfig

	mu        sync.Mutex
	followers map[string]followerPos
	wake      chan struct{}

	streams    atomic.Uint64
	streamRecs atomic.Uint64
	ckpts      atomic.Uint64
	gone       atomic.Uint64
}

// NewSource builds a Source over a durability directory.
func NewSource(cfg SourceConfig) (*Source, error) {
	if cfg.Dir == "" {
		return nil, errors.New("replica: source needs a durability directory")
	}
	if cfg.LastVersion == nil {
		return nil, errors.New("replica: source needs a LastVersion func")
	}
	if cfg.RetentionTTL <= 0 {
		cfg.RetentionTTL = 5 * time.Minute
	}
	if cfg.MaxWait <= 0 {
		cfg.MaxWait = 30 * time.Second
	}
	if cfg.MaxStreamRecords <= 0 {
		cfg.MaxStreamRecords = 4096
	}
	s := &Source{
		cfg:       cfg,
		followers: make(map[string]followerPos),
		wake:      make(chan struct{}),
	}
	if cfg.Reg != nil {
		s.register(cfg.Reg)
	}
	return s, nil
}

// Handler returns the replication endpoints, mounted by the serve layer
// under /v1/repl/ (serve.Server.MountReplication).
func (s *Source) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/repl/checkpoint", s.handleCheckpoint)
	mux.HandleFunc("GET /v1/repl/wal", s.handleWAL)
	return mux
}

// Wake notifies blocked long-poll streams that the durable tail advanced.
// Wired to Durability.SetOnAppend.
func (s *Source) Wake(version uint64) {
	s.mu.Lock()
	close(s.wake)
	s.wake = make(chan struct{})
	s.mu.Unlock()
}

// wakeCh returns the channel the next Wake will close.
func (s *Source) wakeCh() <-chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wake
}

// Retain is the durability retention hook: the lowest version an active
// (seen within RetentionTTL) follower last streamed from, ok=false when no
// follower is active. Records at or below the floor are safe to truncate.
func (s *Source) Retain() (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cutoff := time.Now().Add(-s.cfg.RetentionTTL)
	var floor uint64
	ok := false
	for id, fp := range s.followers {
		if fp.seen.Before(cutoff) {
			delete(s.followers, id)
			continue
		}
		if !ok || fp.from < floor {
			floor, ok = fp.from, true
		}
	}
	return floor, ok
}

// observe records a follower's stream position for Retain.
func (s *Source) observe(id string, from uint64) {
	if id == "" {
		return
	}
	s.mu.Lock()
	s.followers[id] = followerPos{from: from, seen: time.Now()}
	s.mu.Unlock()
}

// activeFollowers counts followers seen within the TTL.
func (s *Source) activeFollowers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	cutoff := time.Now().Add(-s.cfg.RetentionTTL)
	n := 0
	for _, fp := range s.followers {
		if !fp.seen.Before(cutoff) {
			n++
		}
	}
	return n
}

// handleCheckpoint serves the newest checkpoint file verbatim (the follower
// decodes it with wal.ReadCheckpoint). ?before=V skips checkpoints at or
// past V — the walk-back a follower uses when the newest one fails to
// decode. 404 when none qualify: the follower then streams from version 0.
func (s *Source) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	var before uint64
	if v := r.URL.Query().Get("before"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("bad before %q", v))
			return
		}
		before = n
	}
	cks, err := wal.Checkpoints(s.cfg.Dir)
	if err != nil {
		writeJSONError(w, http.StatusInternalServerError, err.Error())
		return
	}
	for i := len(cks) - 1; i >= 0; i-- {
		if before != 0 && cks[i].Version >= before {
			continue
		}
		f, err := openCheckpoint(cks[i].Path)
		if err != nil {
			continue // pruned underneath us; fall back to an older one
		}
		s.ckpts.Add(1)
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("X-Checkpoint-Version", strconv.FormatUint(cks[i].Version, 10))
		serveFile(w, f)
		return
	}
	writeJSONError(w, http.StatusNotFound, "no checkpoint available")
}

// handleWAL streams WAL records with versions in (from, tail]. With nothing
// past from it long-polls up to min(wait, MaxWait) for an append, then
// answers an empty stream (header only). 410 Gone means the chain no longer
// reaches from — the follower must re-bootstrap from a checkpoint.
func (s *Source) handleWAL(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	from, err := strconv.ParseUint(q.Get("from"), 10, 64)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("bad from %q", q.Get("from")))
		return
	}
	var maxWait time.Duration
	if v := q.Get("wait"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("bad wait %q", v))
			return
		}
		maxWait = min(d, s.cfg.MaxWait)
	}
	s.observe(q.Get("id"), from)
	s.streams.Add(1)

	tail := s.cfg.LastVersion()
	if tail < from {
		// The follower is ahead of anything this leader can durably serve —
		// a different (or reset) history. Only a checkpoint can resolve it.
		s.gone.Add(1)
		writeJSONError(w, http.StatusGone, fmt.Sprintf("follower at %d is ahead of the log tail %d", from, tail))
		return
	}
	if tail == from && maxWait > 0 {
		timer := time.NewTimer(maxWait)
		defer timer.Stop()
	poll:
		for {
			ch := s.wakeCh()
			if tail = s.cfg.LastVersion(); tail > from {
				break
			}
			select {
			case <-ch:
			case <-timer.C:
				break poll
			case <-r.Context().Done():
				return
			}
		}
	}

	// Stream lazily: the header is only written once the first record is in
	// hand, so a replay gap can still answer 410 instead of a torn 200.
	var sw *wal.StreamWriter
	errStreamFull := errors.New("stream record cap reached")
	sent := 0
	start := func() error {
		if sw != nil {
			return nil
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("X-Leader-Version", strconv.FormatUint(tail, 10))
		var err error
		sw, err = wal.NewStreamWriter(w, tail)
		return err
	}
	_, rerr := wal.Replay(s.cfg.Dir, from, func(rec *wal.Record) error {
		if rec.Version > tail {
			return errStreamFull // never ship past the durable tail
		}
		if sent >= s.cfg.MaxStreamRecords {
			return errStreamFull
		}
		if err := start(); err != nil {
			return err
		}
		if err := sw.WriteRecord(rec); err != nil {
			return err
		}
		sent++
		return nil
	})
	if sw == nil {
		if rerr != nil && errors.Is(rerr, wal.ErrReplayGap) {
			s.gone.Add(1)
			writeJSONError(w, http.StatusGone, rerr.Error())
			return
		}
		if err := start(); err != nil {
			return // client went away; nothing to salvage
		}
	}
	// Any other mid-stream error (truncation race, client gone) just ends
	// the response at a frame boundary; the follower re-polls from its new
	// applied version.
	s.streamRecs.Add(uint64(sent))
}

func (s *Source) register(reg *obs.Registry) {
	reg.CounterFunc("nevermind_repl_streams_total",
		"WAL stream requests served to followers.",
		func() float64 { return float64(s.streams.Load()) })
	reg.CounterFunc("nevermind_repl_stream_records_total",
		"WAL records shipped to followers.",
		func() float64 { return float64(s.streamRecs.Load()) })
	reg.CounterFunc("nevermind_repl_checkpoints_served_total",
		"Checkpoint downloads served to bootstrapping followers.",
		func() float64 { return float64(s.ckpts.Load()) })
	reg.CounterFunc("nevermind_repl_gone_total",
		"Stream requests answered 410 Gone (follower must re-bootstrap).",
		func() float64 { return float64(s.gone.Load()) })
	reg.GaugeFunc("nevermind_repl_followers",
		"Followers seen within the retention TTL.",
		func() float64 { return float64(s.activeFollowers()) })
}

// openCheckpoint opens a checkpoint file for verbatim serving; the caller
// falls back to an older checkpoint when the newest vanished under us.
func openCheckpoint(path string) (*os.File, error) {
	return os.Open(path)
}

// serveFile copies the file to the response and closes it. A copy error
// means the client went away or the file was truncated mid-read; the
// follower's decode (wal.ReadCheckpoint) catches either via the CRC.
func serveFile(w http.ResponseWriter, f *os.File) {
	defer f.Close()
	_, _ = io.Copy(w, f)
}

func writeJSONError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	fmt.Fprintf(w, "{%q:%q}\n", "error", msg)
}
